// Unit tests for the ClassAd-lite matchmaking language: lexer, parser,
// evaluation semantics (including UNDEFINED propagation), and two-sided
// matching with ranks.
#include <gtest/gtest.h>

#include "match/classad.hpp"
#include "match/lexer.hpp"
#include "match/parser.hpp"

namespace resmatch::match {
namespace {

Value eval_str(const std::string& src, const ClassAd* self = nullptr,
               const ClassAd* other = nullptr) {
  auto expr = parse_expression(src);
  EXPECT_TRUE(expr.has_value()) << src << ": "
                                << (expr ? "" : expr.error());
  return evaluate(*expr.value(), self, other);
}

TEST(Lexer, TokenizesOperators) {
  const auto tokens = tokenize("a <= 3 && b != \"x\" || !c");
  ASSERT_TRUE(tokens.has_value());
  // a <= 3 && b != "x" || ! c END = 11 tokens
  EXPECT_EQ(tokens.value().size(), 11u);
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kLessEq);
  EXPECT_EQ(tokens.value()[3].kind, TokenKind::kAndAnd);
}

TEST(Lexer, NumbersIncludingScientific) {
  const auto tokens = tokenize("3.5 1e3 .25");
  ASSERT_TRUE(tokens.has_value());
  EXPECT_DOUBLE_EQ(tokens.value()[0].number, 3.5);
  EXPECT_DOUBLE_EQ(tokens.value()[1].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens.value()[2].number, 0.25);
}

TEST(Lexer, StringsWithEscapes) {
  const auto tokens = tokenize("\"a\\\"b\"");
  ASSERT_TRUE(tokens.has_value());
  EXPECT_EQ(tokens.value()[0].text, "a\"b");
}

TEST(Lexer, ErrorsOnUnterminatedString) {
  EXPECT_FALSE(tokenize("\"abc").has_value());
}

TEST(Lexer, ErrorsOnSingleAmpersand) {
  EXPECT_FALSE(tokenize("a & b").has_value());
}

TEST(Lexer, ErrorsOnSingleEquals) {
  EXPECT_FALSE(tokenize("a = b").has_value());
}

TEST(Parser, PrecedenceArithmetic) {
  EXPECT_DOUBLE_EQ(eval_str("2 + 3 * 4").as_number(), 14.0);
  EXPECT_DOUBLE_EQ(eval_str("(2 + 3) * 4").as_number(), 20.0);
  EXPECT_DOUBLE_EQ(eval_str("10 - 4 - 3").as_number(), 3.0);  // left assoc
  EXPECT_DOUBLE_EQ(eval_str("2 * 3 % 4").as_number(), 2.0);
}

TEST(Parser, PrecedenceBooleanVsComparison) {
  EXPECT_TRUE(eval_str("1 < 2 && 3 > 2").as_bool());
  EXPECT_TRUE(eval_str("false || 2 >= 2").as_bool());
}

TEST(Parser, UnaryOperators) {
  EXPECT_DOUBLE_EQ(eval_str("-3 + 5").as_number(), 2.0);
  EXPECT_TRUE(eval_str("!false").as_bool());
  EXPECT_DOUBLE_EQ(eval_str("--4").as_number(), 4.0);
}

TEST(Parser, Ternary) {
  EXPECT_DOUBLE_EQ(eval_str("true ? 1 : 2").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(eval_str("1 > 2 ? 1 : 2").as_number(), 2.0);
  // Nested in the else branch.
  EXPECT_DOUBLE_EQ(eval_str("false ? 1 : false ? 2 : 3").as_number(), 3.0);
}

TEST(Parser, RejectsTrailingInput) {
  EXPECT_FALSE(parse_expression("1 + 2 3").has_value());
}

TEST(Parser, RejectsDanglingOperator) {
  EXPECT_FALSE(parse_expression("1 +").has_value());
  EXPECT_FALSE(parse_expression("&& 1").has_value());
}

TEST(Parser, RoundTripToString) {
  auto expr = parse_expression("my.mem >= other.req && rank > 0");
  ASSERT_TRUE(expr.has_value());
  const std::string text = to_string(*expr.value());
  EXPECT_NE(text.find("my.mem"), std::string::npos);
  EXPECT_NE(text.find("other.req"), std::string::npos);
}

TEST(Eval, UndefinedPropagatesThroughArithmetic) {
  EXPECT_TRUE(eval_str("undefined + 1").is_undefined());
  EXPECT_TRUE(eval_str("missing_attr * 2").is_undefined());
  EXPECT_TRUE(eval_str("1 < undefined").is_undefined());
}

TEST(Eval, LazyBooleansAbsorbUndefined) {
  EXPECT_FALSE(eval_str("false && undefined").as_bool());
  EXPECT_TRUE(eval_str("true || undefined").as_bool());
  EXPECT_TRUE(eval_str("undefined || true").as_bool());
  EXPECT_FALSE(eval_str("undefined && false").as_bool());
  EXPECT_TRUE(eval_str("true && undefined").is_undefined());
  EXPECT_TRUE(eval_str("false || undefined").is_undefined());
}

TEST(Eval, DivisionByZeroIsUndefined) {
  EXPECT_TRUE(eval_str("1 / 0").is_undefined());
  EXPECT_TRUE(eval_str("1 % 0").is_undefined());
}

TEST(Eval, StringOperations) {
  EXPECT_TRUE(eval_str("\"abc\" == \"abc\"").as_bool());
  EXPECT_TRUE(eval_str("\"abc\" < \"abd\"").as_bool());
  EXPECT_EQ(eval_str("\"foo\" + \"bar\"").as_string(), "foobar");
}

TEST(Eval, CrossTypeEqualityIsUndefined) {
  EXPECT_TRUE(eval_str("1 == \"1\"").is_undefined());
  EXPECT_TRUE(eval_str("true == 1").is_undefined());
}

TEST(Eval, Builtins) {
  EXPECT_DOUBLE_EQ(eval_str("min(3, 5)").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(eval_str("max(3, 5)").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(eval_str("pow(2, 10)").as_number(), 1024.0);
  EXPECT_DOUBLE_EQ(eval_str("floor(3.7)").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(eval_str("ceil(3.2)").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(eval_str("abs(-2)").as_number(), 2.0);
  EXPECT_TRUE(eval_str("isUndefined(undefined)").as_bool());
  EXPECT_FALSE(eval_str("isUndefined(1)").as_bool());
  EXPECT_DOUBLE_EQ(eval_str("ifThenElse(true, 1, 2)").as_number(), 1.0);
}

TEST(Eval, UnknownFunctionIsUndefined) {
  EXPECT_TRUE(eval_str("frobnicate(1)").is_undefined());
}

TEST(ClassAd, AttributeLookupOrder) {
  ClassAd self, other;
  self.set("x", 1.0);
  other.set("x", 2.0);
  other.set("y", 3.0);
  // Bare name: self first, then other.
  EXPECT_DOUBLE_EQ(eval_str("x", &self, &other).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(eval_str("y", &self, &other).as_number(), 3.0);
  EXPECT_DOUBLE_EQ(eval_str("my.x", &self, &other).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(eval_str("other.x", &self, &other).as_number(), 2.0);
  EXPECT_TRUE(eval_str("other.z", &self, &other).is_undefined());
}

TEST(ClassAd, ComputedAttributes) {
  ClassAd ad;
  ad.set("base", 10.0);
  ASSERT_TRUE(ad.set_expr("doubled", "base * 2"));
  EXPECT_DOUBLE_EQ(ad.evaluate("doubled").as_number(), 20.0);
}

TEST(ClassAd, SetExprRejectsBadSource) {
  ClassAd ad;
  EXPECT_FALSE(ad.set_expr("bad", "1 +"));
  EXPECT_FALSE(ad.has("bad"));
}

TEST(ClassAd, CyclicReferencesYieldUndefined) {
  ClassAd ad;
  ASSERT_TRUE(ad.set_expr("a", "b + 1"));
  ASSERT_TRUE(ad.set_expr("b", "a + 1"));
  EXPECT_TRUE(ad.evaluate("a").is_undefined());
}

TEST(ClassAd, ScopeSwitchesAcrossAds) {
  // A machine ad whose rank consults the job's attributes.
  ClassAd machine, job;
  machine.set("memory", 32.0);
  job.set("req_memory", 8.0);
  ASSERT_TRUE(machine.set_expr("headroom", "my.memory - other.req_memory"));
  EXPECT_DOUBLE_EQ(machine.evaluate("headroom", &job).as_number(), 24.0);
}

TEST(Matchmaking, SymmetricRequirements) {
  ClassAd job, machine;
  job.set("req_memory", 16.0);
  ASSERT_TRUE(job.set_expr("requirements", "other.memory >= my.req_memory"));
  machine.set("memory", 32.0);
  ASSERT_TRUE(machine.set_expr("requirements", "other.req_memory <= 64"));
  EXPECT_TRUE(match_ads(job, machine).matched);

  machine.set("memory", 8.0);
  EXPECT_FALSE(match_ads(job, machine).matched);
}

TEST(Matchmaking, MissingRequirementsAcceptsAll) {
  ClassAd a, b;
  a.set("x", 1.0);
  b.set("y", 2.0);
  EXPECT_TRUE(match_ads(a, b).matched);
}

TEST(Matchmaking, UndefinedRequirementRejects) {
  ClassAd job, machine;
  ASSERT_TRUE(job.set_expr("requirements", "other.nonexistent >= 4"));
  machine.set("memory", 32.0);
  EXPECT_FALSE(match_ads(job, machine).matched);
}

TEST(Matchmaking, RanksEvaluated) {
  ClassAd job, machine;
  ASSERT_TRUE(job.set_expr("rank", "other.memory"));
  machine.set("memory", 24.0);
  const MatchResult m = match_ads(job, machine);
  ASSERT_TRUE(m.matched);
  EXPECT_DOUBLE_EQ(m.rank_a, 24.0);
}

TEST(Matchmaking, RankMatchesSortsDescending) {
  ClassAd job;
  job.set("req_memory", 8.0);
  ASSERT_TRUE(job.set_expr("requirements", "other.memory >= my.req_memory"));
  ASSERT_TRUE(job.set_expr("rank", "other.memory"));

  std::vector<ClassAd> machines(3);
  machines[0].set("memory", 16.0);
  machines[1].set("memory", 4.0);   // fails requirements
  machines[2].set("memory", 32.0);

  const auto ranked = rank_matches(job, machines);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 2u);  // 32 MiB first
  EXPECT_EQ(ranked[1], 0u);
}

TEST(Matchmaking, PackagePrerequisiteScenario) {
  // The paper's software-package resource: a job requires a package only
  // some machines advertise.
  ClassAd job, with_pkg, without_pkg;
  job.set("needs_blas", true);
  ASSERT_TRUE(job.set_expr(
      "requirements", "!my.needs_blas || other.has_blas == true"));
  with_pkg.set("has_blas", true);
  // without_pkg simply doesn't define has_blas.
  EXPECT_TRUE(match_ads(job, with_pkg).matched);
  EXPECT_FALSE(match_ads(job, without_pkg).matched);

  // Once estimation drops the prerequisite, both machines qualify.
  job.set("needs_blas", false);
  EXPECT_TRUE(match_ads(job, with_pkg).matched);
  EXPECT_TRUE(match_ads(job, without_pkg).matched);
}

TEST(ClassAd, ToStringListsAttributes) {
  ClassAd ad;
  ad.set("a", 1.0);
  ad.set("b", "text");
  const std::string s = ad.to_string();
  EXPECT_NE(s.find("a = 1"), std::string::npos);
  EXPECT_NE(s.find("b = \"text\""), std::string::npos);
}

TEST(Value, EqualsSemantics) {
  EXPECT_TRUE(Value(1.0).equals(Value(1.0)));
  EXPECT_FALSE(Value(1.0).equals(Value(2.0)));
  EXPECT_TRUE(Value(Undefined{}).equals(Value(Undefined{})));
  EXPECT_FALSE(Value(1.0).equals(Value(Undefined{})));
  EXPECT_FALSE(Value(true).equals(Value(1.0)));
}

}  // namespace
}  // namespace resmatch::match
