// Property tests for the ClassAd-lite expression language: randomly
// generated expressions must round-trip through to_string/parse with
// identical evaluation, and evaluation must be total (never crash) on
// arbitrary well-formed input.
#include <gtest/gtest.h>

#include "match/classad.hpp"
#include "match/parser.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace resmatch::match {
namespace {

/// Random well-formed expression source, grammar-directed.
class ExprGenerator {
 public:
  explicit ExprGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string expression(int depth = 0) {
    if (depth >= 4 || rng_.bernoulli(0.3)) return atom();
    switch (rng_.uniform_int(0, 5)) {
      case 0:
        return "(" + expression(depth + 1) + " " + binary_op() + " " +
               expression(depth + 1) + ")";
      case 1:
        return "!(" + expression(depth + 1) + ")";
      case 2:
        return "-(" + expression(depth + 1) + ")";
      case 3:
        return "(" + expression(depth + 1) + " ? " + expression(depth + 1) +
               " : " + expression(depth + 1) + ")";
      case 4:
        return function_call(depth);
      default:
        return atom();
    }
  }

 private:
  std::string atom() {
    switch (rng_.uniform_int(0, 4)) {
      case 0:
        return util::format_number(rng_.uniform(-100.0, 100.0), 3);
      case 1:
        return rng_.bernoulli(0.5) ? "true" : "false";
      case 2:
        return "undefined";
      case 3: {
        static const char* names[] = {"memory", "req_memory", "x", "rank_attr"};
        std::string base = names[rng_.uniform_int(0, 3)];
        const auto scope = rng_.uniform_int(0, 2);
        if (scope == 1) return "my." + base;
        if (scope == 2) return "other." + base;
        return base;
      }
      default:
        return "\"s" + util::format("%d", static_cast<int>(rng_.uniform_int(0, 9))) +
               "\"";
    }
  }

  std::string binary_op() {
    static const char* ops[] = {"+",  "-",  "*",  "/",  "%",  "<",
                                "<=", ">",  ">=", "==", "!=", "&&",
                                "||"};
    return ops[rng_.uniform_int(0, 12)];
  }

  std::string function_call(int depth) {
    static const char* fns1[] = {"floor", "ceil", "abs", "isUndefined"};
    static const char* fns2[] = {"min", "max", "pow"};
    if (rng_.bernoulli(0.5)) {
      return std::string(fns1[rng_.uniform_int(0, 3)]) + "(" +
             expression(depth + 1) + ")";
    }
    return std::string(fns2[rng_.uniform_int(0, 2)]) + "(" +
           expression(depth + 1) + ", " + expression(depth + 1) + ")";
  }

  util::Rng rng_;
};

ClassAd sample_self() {
  ClassAd ad;
  ad.set("memory", 32.0);
  ad.set("x", 7.0);
  ad.set("rank_attr", true);
  return ad;
}

ClassAd sample_other() {
  ClassAd ad;
  ad.set("memory", 8.0);
  ad.set("req_memory", 4.0);
  return ad;
}

class ExprRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExprRoundTrip, ToStringReparsesWithIdenticalEvaluation) {
  ExprGenerator gen(GetParam());
  const ClassAd self = sample_self();
  const ClassAd other = sample_other();
  for (int i = 0; i < 200; ++i) {
    const std::string source = gen.expression();
    auto parsed = parse_expression(source);
    ASSERT_TRUE(parsed.has_value()) << source << ": " << parsed.error();

    const std::string rendered = to_string(*parsed.value());
    auto reparsed = parse_expression(rendered);
    ASSERT_TRUE(reparsed.has_value())
        << "rendered form failed to parse: " << rendered;

    const Value v1 = evaluate(*parsed.value(), &self, &other);
    const Value v2 = evaluate(*reparsed.value(), &self, &other);
    ASSERT_TRUE(v1.equals(v2))
        << source << " => " << rendered << " : " << v1.to_string() << " vs "
        << v2.to_string();
  }
}

TEST_P(ExprRoundTrip, EvaluationIsTotalWithoutAds) {
  // No self/other ads at all: every attribute is UNDEFINED; evaluation
  // must still terminate with a well-formed value.
  ExprGenerator gen(GetParam() ^ 0xABCDEFULL);
  for (int i = 0; i < 200; ++i) {
    const std::string source = gen.expression();
    auto parsed = parse_expression(source);
    ASSERT_TRUE(parsed.has_value()) << source;
    const Value v = evaluate(*parsed.value(), nullptr, nullptr);
    // Just classify it — the point is that we got here.
    (void)(v.is_undefined() || v.is_bool() || v.is_number() || v.is_string());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(MatchProperty, RankMatchesSubsetOfMatchAds) {
  // rank_matches must return exactly the candidates match_ads accepts.
  util::Rng rng(77);
  ClassAd job;
  job.set("req_memory", 16.0);
  job.set_expr("requirements", "other.memory >= my.req_memory");
  job.set_expr("rank", "other.memory");
  for (int round = 0; round < 30; ++round) {
    std::vector<ClassAd> machines(8);
    for (auto& m : machines) {
      m.set("memory", static_cast<double>(rng.uniform_int(1, 64)));
    }
    const auto ranked = rank_matches(job, machines);
    std::vector<bool> in_ranked(machines.size(), false);
    for (const auto idx : ranked) in_ranked[idx] = true;
    for (std::size_t i = 0; i < machines.size(); ++i) {
      EXPECT_EQ(in_ranked[i], match_ads(job, machines[i]).matched);
    }
    // And ranks are non-increasing.
    for (std::size_t i = 1; i < ranked.size(); ++i) {
      const double prev =
          machines[ranked[i - 1]].evaluate("memory").as_number();
      const double cur = machines[ranked[i]].evaluate("memory").as_number();
      EXPECT_GE(prev, cur);
    }
  }
}

}  // namespace
}  // namespace resmatch::match
