// Tests for workload profiling/reporting.
#include <gtest/gtest.h>

#include "trace/cm5_model.hpp"
#include "trace/report.hpp"

namespace resmatch::trace {
namespace {

JobRecord make_job(JobId id, UserId user, AppId app, Seconds runtime,
                   std::uint32_t nodes, MiB req, MiB used) {
  JobRecord j;
  j.id = id;
  j.submit = static_cast<double>(id) * 10.0;
  j.user = user;
  j.app = app;
  j.runtime = runtime;
  j.requested_time = runtime * 2;
  j.nodes = nodes;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  return j;
}

TEST(Report, EmptyWorkload) {
  const auto p = profile_workload(Workload{});
  EXPECT_EQ(p.jobs, 0u);
  EXPECT_EQ(p.users, 0u);
  // Rendering an empty profile must not crash.
  EXPECT_FALSE(render_profile(p, "empty").empty());
}

TEST(Report, CountsPopulations) {
  Workload w;
  w.jobs = {make_job(1, 1, 1, 100, 4, 32, 8),
            make_job(2, 1, 2, 200, 8, 32, 16),
            make_job(3, 2, 1, 300, 16, 16, 16)};
  const auto p = profile_workload(w);
  EXPECT_EQ(p.jobs, 3u);
  EXPECT_EQ(p.users, 2u);
  EXPECT_EQ(p.apps, 3u);  // (1,1), (1,2), (2,1)
  EXPECT_DOUBLE_EQ(p.runtime_mean, 200.0);
  EXPECT_EQ(p.nodes_min, 4u);
  EXPECT_EQ(p.nodes_max, 16u);
  EXPECT_DOUBLE_EQ(p.total_node_seconds, 400.0 + 1600.0 + 4800.0);
}

TEST(Report, OverprovisionStatistics) {
  Workload w;
  w.jobs = {make_job(1, 1, 1, 100, 4, 32, 8),   // 4x
            make_job(2, 1, 2, 100, 4, 32, 32),  // 1x
            make_job(3, 2, 1, 100, 4, 32, 4)};  // 8x
  const auto p = profile_workload(w);
  EXPECT_NEAR(p.overprovision_ge2_fraction, 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.overprovision_max, 8.0);
}

TEST(Report, FailureFraction) {
  Workload w;
  auto ok = make_job(1, 1, 1, 100, 4, 32, 8);
  auto bad = make_job(2, 1, 1, 100, 4, 32, 8);
  bad.status = JobStatus::kFailed;
  w.jobs = {ok, bad};
  EXPECT_DOUBLE_EQ(profile_workload(w).failed_fraction, 0.5);
}

TEST(Report, RenderedReportNamesKeyQuantities) {
  const Workload w = generate_cm5_small(5, 2000);
  const auto p = profile_workload(w);
  const std::string text = render_profile(p, w.name);
  EXPECT_NE(text.find("cm5-synthetic"), std::string::npos);
  EXPECT_NE(text.find("jobs"), std::string::npos);
  EXPECT_NE(text.find("similarity groups"), std::string::npos);
  EXPECT_NE(text.find("over-provisioned >= 2x"), std::string::npos);
}

TEST(Report, MatchesAnalysisModuleOnCm5) {
  const Workload w = generate_cm5_small(5, 3000);
  const auto p = profile_workload(w);
  EXPECT_EQ(p.jobs, 3000u);
  EXPECT_GT(p.similarity_groups, 100u);
  EXPECT_GT(p.large_group_job_coverage, 0.5);
  EXPECT_GT(p.overprovision_ge2_fraction, 0.15);
}

}  // namespace
}  // namespace resmatch::trace
