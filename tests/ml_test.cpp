// Unit tests for the ML substrate: feature extraction, k-NN regression,
// discretization, tabular Q-learning, and online quantile regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ml/discretizer.hpp"
#include "ml/features.hpp"
#include "ml/knn.hpp"
#include "ml/qlearning.hpp"
#include "ml/quantile.hpp"

namespace resmatch::ml {
namespace {

trace::JobRecord job_with(MiB req, MiB used, std::uint32_t nodes = 32,
                          UserId user = 1, AppId app = 1) {
  trace::JobRecord j;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  j.nodes = nodes;
  j.user = user;
  j.app = app;
  j.requested_time = 600;
  j.runtime = 300;
  return j;
}

TEST(Features, DimensionMatchesConstant) {
  EXPECT_EQ(job_features(job_with(32, 8)).size(), kJobFeatureCount);
}

TEST(Features, UsageNeverLeaksIntoFeatures) {
  auto a = job_with(32, 1);
  auto b = job_with(32, 30);
  EXPECT_EQ(job_features(a), job_features(b));
}

TEST(Features, LogScalesRequest) {
  const auto f = job_features(job_with(32, 8));
  EXPECT_DOUBLE_EQ(f[0], 5.0);  // log2(32)
  EXPECT_DOUBLE_EQ(f[1], 5.0);  // log2(32 nodes)
}

TEST(Features, HashBucketsStablePerUser) {
  const auto a = job_features(job_with(32, 8, 32, /*user=*/7));
  const auto b = job_features(job_with(16, 4, 64, /*user=*/7));
  EXPECT_DOUBLE_EQ(a[3], b[3]);
  const auto c = job_features(job_with(32, 8, 32, /*user=*/8));
  EXPECT_NE(a[3], c[3]);
}

TEST(Features, TargetRoundTrips) {
  const auto j = job_with(32, 5.5);
  EXPECT_NEAR(target_to_mib(usage_target(j)), 5.5, 1e-9);
}

TEST(Knn, PredictsNearestTarget) {
  KnnRegressor knn(1);
  knn.add({0.0, 0.0}, 1.0);
  knn.add({10.0, 10.0}, 9.0);
  EXPECT_NEAR(knn.predict({0.1, 0.1}, 0.0), 1.0, 1e-6);
  EXPECT_NEAR(knn.predict({9.9, 9.9}, 0.0), 9.0, 1e-6);
}

TEST(Knn, FallbackWhenEmpty) {
  KnnRegressor knn(3);
  EXPECT_DOUBLE_EQ(knn.predict({1.0}, 42.0), 42.0);
}

TEST(Knn, DistanceWeightedBlend) {
  KnnRegressor knn(2);
  knn.add({0.0}, 0.0);
  knn.add({1.0}, 10.0);
  const double mid = knn.predict({0.5}, -1.0);
  EXPECT_NEAR(mid, 5.0, 1e-6);
  // Closer to the first point: prediction leans toward 0.
  EXPECT_LT(knn.predict({0.1}, -1.0), 2.0);
}

TEST(Knn, EvictsOldestWhenFull) {
  KnnRegressor knn(1, /*max_points=*/2);
  knn.add({0.0}, 1.0);
  knn.add({1.0}, 2.0);
  knn.add({2.0}, 3.0);  // evicts the {0} point
  EXPECT_EQ(knn.size(), 2u);
  EXPECT_NEAR(knn.predict({0.0}, 0.0), 2.0, 1e-6);  // nearest is now {1}
}

TEST(Knn, RingOverwritesOldestAcrossMultipleWraps) {
  KnnRegressor knn(1, /*max_points=*/2);
  for (int i = 0; i < 7; ++i) {
    knn.add({static_cast<double>(i)}, static_cast<double>(i));
  }
  // Seven adds through a 2-slot ring: three full wraps leave exactly the
  // two newest points, in either slot.
  EXPECT_EQ(knn.size(), 2u);
  EXPECT_NEAR(knn.predict({6.0}, -1.0), 6.0, 1e-9);
  EXPECT_NEAR(knn.predict({5.0}, -1.0), 5.0, 1e-9);
  // The oldest survivor is 5: a query at the long-evicted origin lands on
  // it, not on the stale point that used to live there.
  EXPECT_NEAR(knn.predict({0.0}, -1.0), 5.0, 1e-9);
}

TEST(Knn, RepeatedPredictionsAreBitIdentical) {
  // predict() reuses an internal scratch buffer across calls; the reuse
  // must be invisible — repeated queries (and queries interleaved with
  // other queries) return bit-identical results.
  KnnRegressor knn(3);
  for (int i = 0; i < 32; ++i) {
    const double v = static_cast<double>(i);
    knn.add({v * 0.25, std::sin(v)}, std::cos(v));
  }
  const std::vector<double> q1{1.3, 0.4};
  const std::vector<double> q2{7.7, -0.2};
  const double first1 = knn.predict(q1, 0.0);
  const double first2 = knn.predict(q2, 0.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(knn.predict(q1, 0.0), first1);
    EXPECT_EQ(knn.predict(q2, 0.0), first2);
  }
}

TEST(Discretizer, BucketsAndClamping) {
  Discretizer d(0.0, 10.0, 5);
  EXPECT_EQ(d.bucket(-1.0), 0u);
  EXPECT_EQ(d.bucket(0.0), 0u);
  EXPECT_EQ(d.bucket(3.0), 1u);
  EXPECT_EQ(d.bucket(9.99), 4u);
  EXPECT_EQ(d.bucket(10.0), 4u);
  EXPECT_EQ(d.bucket(100.0), 4u);
}

TEST(Discretizer, Midpoints) {
  Discretizer d(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(d.midpoint(0), 1.0);
  EXPECT_DOUBLE_EQ(d.midpoint(4), 9.0);
}

TEST(Discretizer, InternalEdgesBelongToTheUpperBucket) {
  Discretizer d(0.0, 10.0, 5);
  EXPECT_EQ(d.bucket(2.0), 1u);
  EXPECT_EQ(d.bucket(4.0), 2u);
  EXPECT_EQ(d.bucket(6.0), 3u);
  EXPECT_EQ(d.bucket(8.0), 4u);
  // Just below an edge stays in the lower bucket.
  EXPECT_EQ(d.bucket(std::nextafter(2.0, 0.0)), 0u);
}

TEST(Discretizer, SingleBucketAbsorbsEverything) {
  Discretizer d(-5.0, 5.0, 1);
  EXPECT_EQ(d.bucket(-100.0), 0u);
  EXPECT_EQ(d.bucket(0.0), 0u);
  EXPECT_EQ(d.bucket(100.0), 0u);
  EXPECT_DOUBLE_EQ(d.midpoint(0), 0.0);
}

TEST(StateSpace, RowMajorIndexing) {
  StateSpace space({Discretizer(0, 1, 2), Discretizer(0, 1, 3)});
  EXPECT_EQ(space.state_count(), 6u);
  EXPECT_EQ(space.index({0.0, 0.0}), 0u);
  EXPECT_EQ(space.index({0.9, 0.9}), 5u);
  EXPECT_EQ(space.index({0.0, 0.9}), 2u);
  EXPECT_EQ(space.index({0.9, 0.0}), 3u);
}

TEST(QLearning, ConvergesToBetterAction) {
  QLearningConfig cfg;
  cfg.learning_rate = 0.2;
  cfg.epsilon = 0.2;
  QLearningAgent agent(1, 2, cfg, 42);
  // Action 1 always pays more.
  for (int i = 0; i < 2000; ++i) {
    const std::size_t a = agent.select_action(0);
    agent.update(0, a, a == 1 ? 1.0 : 0.1, agent.states());
  }
  EXPECT_EQ(agent.best_action(0), 1u);
  EXPECT_GT(agent.q_value(0, 1), agent.q_value(0, 0));
}

TEST(QLearning, EpsilonDecays) {
  QLearningConfig cfg;
  cfg.epsilon = 0.5;
  cfg.epsilon_decay = 0.9;
  cfg.epsilon_min = 0.05;
  QLearningAgent agent(1, 2, cfg, 1);
  for (int i = 0; i < 100; ++i) agent.update(0, 0, 0.0, agent.states());
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.05);
  EXPECT_EQ(agent.updates(), 100u);
}

TEST(QLearning, EpsilonNeverCrossesTheFloorMidDecay) {
  // A decay step that would land below the floor clamps exactly onto it;
  // further updates stay pinned rather than drifting back up or below.
  QLearningConfig cfg;
  cfg.epsilon = 0.1;
  cfg.epsilon_decay = 0.5;
  cfg.epsilon_min = 0.04;
  QLearningAgent agent(1, 1, cfg, 2);
  agent.update(0, 0, 0.0, agent.states());
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.05);  // 0.1 * 0.5, still above floor
  agent.update(0, 0, 0.0, agent.states());
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.04);  // 0.025 would undershoot: clamp
  for (int i = 0; i < 50; ++i) agent.update(0, 0, 0.0, agent.states());
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.04);
}

TEST(QLearning, TerminalTransitionDoesNotBootstrap) {
  QLearningConfig cfg;
  cfg.learning_rate = 1.0;
  cfg.discount = 1.0;
  cfg.epsilon = 0.0;
  QLearningAgent agent(2, 1, cfg, 7);
  agent.update(1, 0, 10.0, agent.states());  // terminal: Q(1,0) = 10
  // A terminal update in state 0 must not pull in state 1's value, even
  // at discount 1 — `next_state == states()` means "no successor".
  agent.update(0, 0, 0.0, agent.states());
  EXPECT_DOUBLE_EQ(agent.q_value(0, 0), 0.0);
  // The same transition declared non-terminal does bootstrap.
  agent.update(0, 0, 0.0, 1);
  EXPECT_DOUBLE_EQ(agent.q_value(0, 0), 10.0);
}

TEST(QLearning, StatesAreIndependent) {
  QLearningConfig cfg;
  cfg.epsilon = 0.0;
  QLearningAgent agent(2, 2, cfg, 3);
  for (int i = 0; i < 500; ++i) {
    agent.update(0, 0, 1.0, agent.states());
    agent.update(1, 1, 1.0, agent.states());
  }
  EXPECT_EQ(agent.best_action(0), 0u);
  EXPECT_EQ(agent.best_action(1), 1u);
}

TEST(QLearning, DiscountBootstrapsNextState) {
  QLearningConfig cfg;
  cfg.learning_rate = 1.0;
  cfg.discount = 0.5;
  cfg.epsilon = 0.0;
  QLearningAgent agent(2, 1, cfg, 5);
  // State 1 terminal reward 10 -> Q(1,0)=10 after one update.
  agent.update(1, 0, 10.0, agent.states());
  // State 0 transitions into state 1 with zero reward: Q(0,0)=0.5*10.
  agent.update(0, 0, 0.0, 1);
  EXPECT_DOUBLE_EQ(agent.q_value(0, 0), 5.0);
}

TEST(QLearning, DeterministicGivenSeed) {
  QLearningConfig cfg;
  cfg.epsilon = 0.3;
  QLearningAgent a(4, 3, cfg, 9), b(4, 3, cfg, 9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.select_action(i % 4), b.select_action(i % 4));
    a.update(i % 4, 0, 0.5, a.states());
    b.update(i % 4, 0, 0.5, b.states());
  }
}

TEST(QuantileRegressor, NormalizedStepsMovePredictionByExactlyTheGain) {
  // The subgradient is normalized by the squared feature norm, so one
  // observation moves the prediction AT THAT POINT by exactly lr*tau
  // (under-prediction) or lr*(1-tau) (covered), whatever the feature
  // scale. averaging_horizon <= 1 exposes the raw iterate.
  QuantileRegressorConfig cfg;
  cfg.tau = 0.9;
  cfg.learning_rate = 0.5;
  cfg.averaging_horizon = 0.0;
  OnlineQuantileRegressor reg(1, cfg);
  const std::vector<double> x{3.0};
  reg.update(x, 100.0);  // y > prediction: up by 0.5 * 0.9
  EXPECT_NEAR(reg.predict(x), 0.45, 1e-12);
  reg.update(x, -100.0);  // covered: down by 0.5 * 0.1
  EXPECT_NEAR(reg.predict(x), 0.40, 1e-12);
  EXPECT_EQ(reg.observations(), 2u);
}

TEST(QuantileRegressor, ConvergesToTheEmpiricalQuantile) {
  QuantileRegressorConfig cfg;
  cfg.tau = 0.9;
  OnlineQuantileRegressor reg(0, cfg);  // bias-only model
  for (int pass = 0; pass < 30; ++pass) {
    for (int y = 1; y <= 100; ++y) reg.update({}, static_cast<double>(y));
  }
  // 90th percentile of the uniform 1..100 stream.
  EXPECT_NEAR(reg.predict({}), 90.0, 3.0);
}

TEST(QuantileRegressor, AveragingDampsTheSawtooth) {
  // Constant-step pinball SGD oscillates around the quantile; the EWMA of
  // iterates that serves predictions must visibly shrink that hop.
  QuantileRegressorConfig averaged;
  averaged.tau = 0.9;
  QuantileRegressorConfig raw = averaged;
  raw.averaging_horizon = 0.0;
  OnlineQuantileRegressor a(0, averaged), b(0, raw);
  const auto spread_after_burn_in = [](OnlineQuantileRegressor& reg) {
    double lo = 1e300, hi = -1e300;
    for (int pass = 0; pass < 30; ++pass) {
      for (int y = 1; y <= 100; ++y) {
        reg.update({}, static_cast<double>(y));
        if (pass >= 25) {
          lo = std::min(lo, reg.predict({}));
          hi = std::max(hi, reg.predict({}));
        }
      }
    }
    return hi - lo;
  };
  EXPECT_LT(spread_after_burn_in(a), spread_after_burn_in(b));
}

TEST(QuantileRegressor, StateRoundTripsIntoADecisionTwin) {
  QuantileRegressorConfig cfg;
  OnlineQuantileRegressor a(3, cfg);
  for (int i = 0; i < 200; ++i) {
    const double v = static_cast<double>(i % 17);
    a.update({v, std::sin(v), 1.0 / (1.0 + v)}, 5.0 + 0.3 * v);
  }
  const auto state = a.state();
  ASSERT_EQ(state.size(), 1u + 2u * 4u);  // obs + (w,b) + averaged (w,b)
  OnlineQuantileRegressor b(3, cfg);
  ASSERT_TRUE(b.restore(state));
  EXPECT_EQ(b.observations(), a.observations());
  const std::vector<double> probe{2.5, 0.1, 0.4};
  EXPECT_EQ(b.predict(probe), a.predict(probe));  // bit-identical
  // Training continues in lockstep: the averaging ramp and the raw
  // iterate were both restored, so the twins cannot diverge.
  a.update(probe, 9.0);
  b.update(probe, 9.0);
  EXPECT_EQ(b.predict(probe), a.predict(probe));
  EXPECT_EQ(b.state(), a.state());
}

TEST(QuantileRegressor, RestoreRejectsMalformedStateUnchanged) {
  OnlineQuantileRegressor reg(2, {});
  reg.update({1.0, 2.0}, 3.0);
  const auto good = reg.state();
  std::vector<double> truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(reg.restore(truncated));
  auto poisoned = good;
  poisoned[2] = std::nan("");
  EXPECT_FALSE(reg.restore(poisoned));
  auto negative_obs = good;
  negative_obs[0] = -1.0;
  EXPECT_FALSE(reg.restore(negative_obs));
  // Every rejected restore left the model untouched.
  EXPECT_EQ(reg.state(), good);
  EXPECT_TRUE(reg.restore(good));
}

}  // namespace
}  // namespace resmatch::ml
