// Unit tests for the ML substrate: feature extraction, k-NN regression,
// discretization, and tabular Q-learning.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/discretizer.hpp"
#include "ml/features.hpp"
#include "ml/knn.hpp"
#include "ml/qlearning.hpp"

namespace resmatch::ml {
namespace {

trace::JobRecord job_with(MiB req, MiB used, std::uint32_t nodes = 32,
                          UserId user = 1, AppId app = 1) {
  trace::JobRecord j;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  j.nodes = nodes;
  j.user = user;
  j.app = app;
  j.requested_time = 600;
  j.runtime = 300;
  return j;
}

TEST(Features, DimensionMatchesConstant) {
  EXPECT_EQ(job_features(job_with(32, 8)).size(), kJobFeatureCount);
}

TEST(Features, UsageNeverLeaksIntoFeatures) {
  auto a = job_with(32, 1);
  auto b = job_with(32, 30);
  EXPECT_EQ(job_features(a), job_features(b));
}

TEST(Features, LogScalesRequest) {
  const auto f = job_features(job_with(32, 8));
  EXPECT_DOUBLE_EQ(f[0], 5.0);  // log2(32)
  EXPECT_DOUBLE_EQ(f[1], 5.0);  // log2(32 nodes)
}

TEST(Features, HashBucketsStablePerUser) {
  const auto a = job_features(job_with(32, 8, 32, /*user=*/7));
  const auto b = job_features(job_with(16, 4, 64, /*user=*/7));
  EXPECT_DOUBLE_EQ(a[3], b[3]);
  const auto c = job_features(job_with(32, 8, 32, /*user=*/8));
  EXPECT_NE(a[3], c[3]);
}

TEST(Features, TargetRoundTrips) {
  const auto j = job_with(32, 5.5);
  EXPECT_NEAR(target_to_mib(usage_target(j)), 5.5, 1e-9);
}

TEST(Knn, PredictsNearestTarget) {
  KnnRegressor knn(1);
  knn.add({0.0, 0.0}, 1.0);
  knn.add({10.0, 10.0}, 9.0);
  EXPECT_NEAR(knn.predict({0.1, 0.1}, 0.0), 1.0, 1e-6);
  EXPECT_NEAR(knn.predict({9.9, 9.9}, 0.0), 9.0, 1e-6);
}

TEST(Knn, FallbackWhenEmpty) {
  KnnRegressor knn(3);
  EXPECT_DOUBLE_EQ(knn.predict({1.0}, 42.0), 42.0);
}

TEST(Knn, DistanceWeightedBlend) {
  KnnRegressor knn(2);
  knn.add({0.0}, 0.0);
  knn.add({1.0}, 10.0);
  const double mid = knn.predict({0.5}, -1.0);
  EXPECT_NEAR(mid, 5.0, 1e-6);
  // Closer to the first point: prediction leans toward 0.
  EXPECT_LT(knn.predict({0.1}, -1.0), 2.0);
}

TEST(Knn, EvictsOldestWhenFull) {
  KnnRegressor knn(1, /*max_points=*/2);
  knn.add({0.0}, 1.0);
  knn.add({1.0}, 2.0);
  knn.add({2.0}, 3.0);  // evicts the {0} point
  EXPECT_EQ(knn.size(), 2u);
  EXPECT_NEAR(knn.predict({0.0}, 0.0), 2.0, 1e-6);  // nearest is now {1}
}

TEST(Discretizer, BucketsAndClamping) {
  Discretizer d(0.0, 10.0, 5);
  EXPECT_EQ(d.bucket(-1.0), 0u);
  EXPECT_EQ(d.bucket(0.0), 0u);
  EXPECT_EQ(d.bucket(3.0), 1u);
  EXPECT_EQ(d.bucket(9.99), 4u);
  EXPECT_EQ(d.bucket(10.0), 4u);
  EXPECT_EQ(d.bucket(100.0), 4u);
}

TEST(Discretizer, Midpoints) {
  Discretizer d(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(d.midpoint(0), 1.0);
  EXPECT_DOUBLE_EQ(d.midpoint(4), 9.0);
}

TEST(StateSpace, RowMajorIndexing) {
  StateSpace space({Discretizer(0, 1, 2), Discretizer(0, 1, 3)});
  EXPECT_EQ(space.state_count(), 6u);
  EXPECT_EQ(space.index({0.0, 0.0}), 0u);
  EXPECT_EQ(space.index({0.9, 0.9}), 5u);
  EXPECT_EQ(space.index({0.0, 0.9}), 2u);
  EXPECT_EQ(space.index({0.9, 0.0}), 3u);
}

TEST(QLearning, ConvergesToBetterAction) {
  QLearningConfig cfg;
  cfg.learning_rate = 0.2;
  cfg.epsilon = 0.2;
  QLearningAgent agent(1, 2, cfg, 42);
  // Action 1 always pays more.
  for (int i = 0; i < 2000; ++i) {
    const std::size_t a = agent.select_action(0);
    agent.update(0, a, a == 1 ? 1.0 : 0.1, agent.states());
  }
  EXPECT_EQ(agent.best_action(0), 1u);
  EXPECT_GT(agent.q_value(0, 1), agent.q_value(0, 0));
}

TEST(QLearning, EpsilonDecays) {
  QLearningConfig cfg;
  cfg.epsilon = 0.5;
  cfg.epsilon_decay = 0.9;
  cfg.epsilon_min = 0.05;
  QLearningAgent agent(1, 2, cfg, 1);
  for (int i = 0; i < 100; ++i) agent.update(0, 0, 0.0, agent.states());
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.05);
  EXPECT_EQ(agent.updates(), 100u);
}

TEST(QLearning, StatesAreIndependent) {
  QLearningConfig cfg;
  cfg.epsilon = 0.0;
  QLearningAgent agent(2, 2, cfg, 3);
  for (int i = 0; i < 500; ++i) {
    agent.update(0, 0, 1.0, agent.states());
    agent.update(1, 1, 1.0, agent.states());
  }
  EXPECT_EQ(agent.best_action(0), 0u);
  EXPECT_EQ(agent.best_action(1), 1u);
}

TEST(QLearning, DiscountBootstrapsNextState) {
  QLearningConfig cfg;
  cfg.learning_rate = 1.0;
  cfg.discount = 0.5;
  cfg.epsilon = 0.0;
  QLearningAgent agent(2, 1, cfg, 5);
  // State 1 terminal reward 10 -> Q(1,0)=10 after one update.
  agent.update(1, 0, 10.0, agent.states());
  // State 0 transitions into state 1 with zero reward: Q(0,0)=0.5*10.
  agent.update(0, 0, 0.0, 1);
  EXPECT_DOUBLE_EQ(agent.q_value(0, 0), 5.0);
}

TEST(QLearning, DeterministicGivenSeed) {
  QLearningConfig cfg;
  cfg.epsilon = 0.3;
  QLearningAgent a(4, 3, cfg, 9), b(4, 3, cfg, 9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.select_action(i % 4), b.select_action(i % 4));
    a.update(i % 4, 0, 0.5, a.states());
    b.update(i % 4, 0, 0.5, b.states());
  }
}

}  // namespace
}  // namespace resmatch::ml
