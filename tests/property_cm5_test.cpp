// Cross-seed property tests for the synthetic CM5 model: the calibration
// must be a property of the generator, not of one lucky seed.
#include <gtest/gtest.h>

#include <set>

#include "trace/analysis.hpp"
#include "trace/cm5_model.hpp"

namespace resmatch::trace {
namespace {

class Cm5SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static Workload make(std::uint64_t seed) {
    Cm5ModelConfig cfg;
    cfg.seed = seed;
    cfg.job_count = 20000;
    cfg.group_count = 1620;
    cfg.user_count = 40;
    return generate_cm5(cfg);
  }
};

TEST_P(Cm5SeedSweep, OverprovisioningCalibrationHolds) {
  const Workload w = make(GetParam());
  const auto analysis = analyze_overprovisioning(w);
  EXPECT_NEAR(analysis.fraction_ge2, 0.328, 0.06) << "seed " << GetParam();
  EXPECT_GT(analysis.max_ratio_seen, 40.0);
  EXPECT_LE(analysis.max_ratio_seen, 131.0);
  EXPECT_LT(analysis.log_fit.slope, 0.0);
}

TEST_P(Cm5SeedSweep, GroupStructureHolds) {
  const Workload w = make(GetParam());
  const auto groups = profile_groups(w);
  EXPECT_EQ(groups.size(), 1620u);
  const auto dist = group_size_distribution(groups, 10);
  EXPECT_NEAR(dist.fraction_groups_ge_threshold, 0.194, 0.07);
  EXPECT_NEAR(dist.fraction_jobs_ge_threshold, 0.83, 0.09);
}

TEST_P(Cm5SeedSweep, EveryJobSimulatable) {
  const Workload w = make(GetParam());
  for (const auto& job : w.jobs) {
    ASSERT_TRUE(is_simulatable(job)) << to_string(job);
  }
}

TEST_P(Cm5SeedSweep, UsageWithinGroupRespectsRangeCap) {
  const Workload w = make(GetParam());
  Cm5ModelConfig cfg;  // defaults carry the cap used above
  const auto groups = profile_groups(w);
  for (const auto& g : groups) {
    if (g.size < 2) continue;
    ASSERT_LE(g.similarity_range(), cfg.range_cap * (1.0 + 1e-9));
  }
}

TEST_P(Cm5SeedSweep, IdenticalUsageGroupsExist) {
  // A majority of multi-member groups should have exactly identical
  // usage (repeated deterministic programs) — the paper's near-zero
  // failure rate depends on it.
  const Workload w = make(GetParam());
  const auto groups = profile_groups(w);
  std::size_t multi = 0, identical = 0;
  for (const auto& g : groups) {
    if (g.size < 3) continue;
    ++multi;
    if (g.similarity_range() < 1.0 + 1e-9) ++identical;
  }
  ASSERT_GT(multi, 100u);
  EXPECT_GT(static_cast<double>(identical) / static_cast<double>(multi), 0.4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Cm5SeedSweep,
                         ::testing::Values(1u, 17u, 4242u, 900001u));

}  // namespace
}  // namespace resmatch::trace
