// Tests for the offline similarity-key search (paper §2.2's
// trial-and-error phase, systematized).
#include <gtest/gtest.h>

#include <cmath>

#include "core/key_search.hpp"
#include "trace/cm5_model.hpp"

namespace resmatch::core {
namespace {

constexpr KeyMask kUser = static_cast<KeyMask>(KeyAttribute::kUser);
constexpr KeyMask kApp = static_cast<KeyMask>(KeyAttribute::kApp);
constexpr KeyMask kMem = static_cast<KeyMask>(KeyAttribute::kRequestedMemory);
constexpr KeyMask kNodes = static_cast<KeyMask>(KeyAttribute::kNodes);

trace::JobRecord make_job(UserId user, AppId app, MiB req, MiB used,
                          std::uint32_t nodes = 32) {
  trace::JobRecord j;
  j.user = user;
  j.app = app;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  j.nodes = nodes;
  j.runtime = 100;
  j.requested_time = 200;
  return j;
}

TEST(KeySearch, EnumerateMasksIsPowerSetMinusEmpty) {
  const auto masks = enumerate_key_masks(
      {KeyAttribute::kUser, KeyAttribute::kApp,
       KeyAttribute::kRequestedMemory});
  EXPECT_EQ(masks.size(), 7u);  // 2^3 - 1
}

TEST(KeySearch, DescribeKeyNamesComponents) {
  EXPECT_EQ(describe_key(kUser | kApp | kMem), "user+app+req_mem");
  EXPECT_EQ(describe_key(kNodes), "nodes");
  EXPECT_EQ(describe_key(0), "(empty)");
}

TEST(KeySearch, HashRespectsMaskComponents) {
  const auto a = make_job(1, 1, 32, 8);
  const auto b = make_job(1, 2, 32, 8);  // different app
  // A user-only key merges them; a user+app key separates them.
  EXPECT_EQ(key_hash(kUser, a), key_hash(kUser, b));
  EXPECT_NE(key_hash(kUser | kApp, a), key_hash(kUser | kApp, b));
}

TEST(KeySearch, HashIgnoresExcludedAttributes) {
  auto a = make_job(1, 1, 32, 8, /*nodes=*/32);
  auto b = make_job(1, 1, 32, 2, /*nodes=*/256);
  EXPECT_EQ(key_hash(kUser | kApp | kMem, a), key_hash(kUser | kApp | kMem, b));
  EXPECT_NE(key_hash(kUser | kApp | kMem | kNodes, a),
            key_hash(kUser | kApp | kMem | kNodes, b));
}

TEST(KeySearch, QualityOfPerfectKey) {
  // Two job classes that a (user) key separates perfectly: each class has
  // constant usage, so tightness must be 1 and coverage 1.
  trace::Workload w;
  for (int i = 0; i < 20; ++i) {
    w.jobs.push_back(make_job(1, 1, 32, 4));
    w.jobs.push_back(make_job(2, 1, 32, 16));
  }
  const auto q = evaluate_key(w, kUser);
  EXPECT_EQ(q.group_count, 2u);
  EXPECT_DOUBLE_EQ(q.coverage, 1.0);
  EXPECT_DOUBLE_EQ(q.tightness, 1.0);
  EXPECT_GT(q.mean_log2_gain, 1.0);  // gains of 8x and 2x
  EXPECT_GT(q.score, 0.0);
}

TEST(KeySearch, CoarseKeyScoresWorseThanDiscriminatingKey) {
  // Users share an app but have very different usage; merging them under
  // an app-only key destroys tightness.
  trace::Workload w;
  for (int i = 0; i < 30; ++i) {
    w.jobs.push_back(make_job(1, 7, 32, 2));
    w.jobs.push_back(make_job(2, 7, 32, 28));
  }
  const auto fine = evaluate_key(w, kUser | kApp);
  const auto coarse = evaluate_key(w, kApp);
  EXPECT_GT(fine.tightness, coarse.tightness);
  EXPECT_GT(fine.score, coarse.score);
}

TEST(KeySearch, OverSpecificKeyLosesCoverage) {
  // Adding a noisy attribute (runtime decade differs per submission)
  // shatters groups below the large-group threshold: coverage collapses.
  trace::Workload w;
  for (int i = 0; i < 40; ++i) {
    auto job = make_job(1, 1, 32, 4);
    job.requested_time = std::pow(10.0, 1 + (i % 5));  // 5 decades
    w.jobs.push_back(job);
  }
  const auto plain = evaluate_key(w, kUser | kApp);
  const auto shattered = evaluate_key(
      w, kUser | kApp | static_cast<KeyMask>(KeyAttribute::kRuntimeBucket));
  EXPECT_DOUBLE_EQ(plain.coverage, 1.0);
  EXPECT_LT(shattered.coverage, plain.coverage);
}

TEST(KeySearch, SearchRanksByScoreDescending) {
  const trace::Workload w = trace::generate_cm5_small(11, 3000);
  const auto masks = enumerate_key_masks(
      {KeyAttribute::kUser, KeyAttribute::kApp,
       KeyAttribute::kRequestedMemory, KeyAttribute::kNodes});
  const auto ranked = search_keys(w, masks);
  ASSERT_EQ(ranked.size(), masks.size());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
}

TEST(KeySearch, PaperKeyIsCompetitiveOnCm5Workload) {
  // §2.2 picked (user, app, requested memory); on the calibrated trace it
  // should rank near the top among all 15 subsets.
  const trace::Workload w = trace::generate_cm5_small(11, 5000);
  const auto masks = enumerate_key_masks(
      {KeyAttribute::kUser, KeyAttribute::kApp,
       KeyAttribute::kRequestedMemory, KeyAttribute::kNodes});
  const auto ranked = search_keys(w, masks);
  const KeyMask paper_key = kUser | kApp | kMem;
  std::size_t position = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].mask == paper_key) position = i;
  }
  ASSERT_LT(position, ranked.size());
  EXPECT_LT(position, 5u) << "paper key ranked " << position;
}

TEST(KeySearch, EmptyWorkloadYieldsZeroScores) {
  trace::Workload w;
  const auto q = evaluate_key(w, kUser);
  EXPECT_EQ(q.group_count, 0u);
  EXPECT_DOUBLE_EQ(q.score, 0.0);
}

}  // namespace
}  // namespace resmatch::core
