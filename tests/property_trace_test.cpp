// Property tests for trace I/O and the capacity ladder: SWF round-trips
// over randomized records, and order/idempotence laws of the ladder.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/capacity_ladder.hpp"
#include "trace/swf.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"

namespace resmatch::trace {
namespace {

class SwfRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

JobRecord random_record(util::Rng& rng, JobId id) {
  JobRecord j;
  j.id = id;
  j.submit = std::floor(rng.uniform(0.0, 1e6));
  j.runtime = std::floor(rng.uniform(1.0, 1e5));
  j.requested_time = std::floor(j.runtime * rng.uniform(1.0, 4.0));
  j.nodes = static_cast<std::uint32_t>(rng.uniform_int(1, 1024));
  // Quarter-MiB quantized so the KB conversion is exact in both
  // directions (SWF memory is integer-ish KB).
  j.requested_mem_mib = static_cast<double>(rng.uniform_int(1, 128)) / 4.0;
  j.used_mem_mib =
      std::max(0.25, j.requested_mem_mib *
                         static_cast<double>(rng.uniform_int(1, 4)) / 4.0);
  j.used_mem_mib = std::min(j.used_mem_mib, j.requested_mem_mib);
  j.user = static_cast<UserId>(rng.uniform_int(1, 500));
  j.app = static_cast<AppId>(rng.uniform_int(1, 99));
  j.status = rng.bernoulli(0.9) ? JobStatus::kCompleted : JobStatus::kFailed;
  return j;
}

TEST_P(SwfRoundTrip, WholeWorkloadSurvivesWriteRead) {
  util::Rng rng(GetParam());
  Workload original;
  original.name = "prop";
  for (JobId id = 1; id <= 300; ++id) {
    original.jobs.push_back(random_record(rng, id));
  }

  std::ostringstream out;
  write_swf(out, original);
  std::istringstream in(out.str());
  const auto result = read_swf(in, "prop");
  ASSERT_TRUE(result.has_value()) << result.error();
  const Workload& readback = result.value().workload;
  ASSERT_EQ(readback.jobs.size(), original.jobs.size());
  EXPECT_EQ(result.value().skipped, 0u);

  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const JobRecord& a = original.jobs[i];
    const JobRecord& b = readback.jobs[i];
    ASSERT_EQ(a.id, b.id);
    ASSERT_DOUBLE_EQ(a.submit, b.submit);
    ASSERT_DOUBLE_EQ(a.runtime, b.runtime);
    ASSERT_EQ(a.nodes, b.nodes);
    ASSERT_NEAR(a.requested_mem_mib, b.requested_mem_mib, 1e-9);
    ASSERT_NEAR(a.used_mem_mib, b.used_mem_mib, 1e-9);
    ASSERT_EQ(a.user, b.user);
    ASSERT_EQ(a.app, b.app);
    ASSERT_EQ(a.status, b.status);
  }
}

TEST_P(SwfRoundTrip, ScaleToLoadIsExactForAnyTarget) {
  util::Rng rng(GetParam() ^ 0x5555);
  Workload w;
  for (JobId id = 1; id <= 200; ++id) {
    w.jobs.push_back(random_record(rng, id));
  }
  for (const double target : {0.1, 0.5, 1.0, 2.0}) {
    const Workload scaled = scale_to_load(w, 256, target);
    EXPECT_NEAR(scaled.offered_load(256), target, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwfRoundTrip,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace resmatch::trace

namespace resmatch::core {
namespace {

class LadderProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static CapacityLadder random_ladder(util::Rng& rng) {
    std::vector<MiB> rungs;
    const auto n = rng.uniform_int(1, 12);
    for (int i = 0; i < n; ++i) {
      rungs.push_back(static_cast<double>(rng.uniform_int(1, 256)) / 4.0);
    }
    return CapacityLadder(std::move(rungs));
  }
};

TEST_P(LadderProperty, RoundUpLaws) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const CapacityLadder ladder = random_ladder(rng);
    for (int i = 0; i < 100; ++i) {
      const double x = rng.uniform(0.1, 80.0);
      const double up = ladder.round_up(x);
      // round_up never goes below the input.
      ASSERT_GE(up, x - 1e-9);
      // Idempotent.
      ASSERT_DOUBLE_EQ(ladder.round_up(up), up);
      // Result is a rung, unless x exceeds every rung (identity).
      if (x <= ladder.max() + 1e-9) {
        bool is_rung = false;
        for (const MiB r : ladder.rungs()) {
          if (std::fabs(r - up) < 1e-9) is_rung = true;
        }
        ASSERT_TRUE(is_rung) << x << " -> " << up;
      } else {
        ASSERT_DOUBLE_EQ(up, x);
      }
    }
  }
}

TEST_P(LadderProperty, RoundDownAndNextAboveConsistency) {
  util::Rng rng(GetParam() ^ 0x1234);
  for (int round = 0; round < 50; ++round) {
    const CapacityLadder ladder = random_ladder(rng);
    for (int i = 0; i < 100; ++i) {
      const double x = rng.uniform(0.1, 80.0);
      const auto down = ladder.round_down(x);
      if (down) {
        ASSERT_LE(*down, x + 1e-9);
        // Nothing between down and x: round_up of anything in (down, x]
        // that is a rung must be >= ... verified via next_above.
        const auto above_down = ladder.next_above(*down);
        if (above_down) {
          ASSERT_GT(*above_down, x - 1e-9);
        }
      } else {
        // No rung at or below x: every rung is above.
        ASSERT_GT(ladder.min(), x - 1e-9);
      }
      const auto above = ladder.next_above(x);
      if (above) {
        ASSERT_GT(*above, x);
      } else {
        ASSERT_LE(ladder.max(), x + 1e-9);
      }
    }
  }
}

TEST_P(LadderProperty, RungsSortedAndUnique) {
  util::Rng rng(GetParam() ^ 0x9876);
  for (int round = 0; round < 50; ++round) {
    const CapacityLadder ladder = random_ladder(rng);
    const auto& rungs = ladder.rungs();
    for (std::size_t i = 1; i < rungs.size(); ++i) {
      ASSERT_LT(rungs[i - 1], rungs[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadderProperty,
                         ::testing::Values(7u, 8u, 9u));

}  // namespace
}  // namespace resmatch::core
