// End-to-end integration tests: the paper's headline claims reproduced at
// reduced scale (a few thousand jobs, a 128-machine two-pool cluster).
// These are the same pipelines the bench binaries run at full scale.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "trace/analysis.hpp"

namespace resmatch::exp {
namespace {

/// Reduced-scale paper scenario: same distributional shape as the full
/// trace, partitions scaled from 32..512 nodes to 4..32 so a 128-machine
/// cluster plays the role of the 1024-node CM5.
trace::Workload small_paper_trace(std::uint64_t seed,
                                  std::size_t jobs = 4000) {
  trace::Cm5ModelConfig cfg;
  cfg.seed = seed;
  cfg.job_count = jobs;
  cfg.group_count = std::max<std::size_t>(1, jobs / 12);
  cfg.user_count = 12;
  cfg.partition_sizes = {4, 8, 16, 32};
  cfg.partition_weights = {0.42, 0.27, 0.21, 0.10};
  cfg.nominal_machines = 128;
  return trace::sort_by_submit(trace::generate_cm5(cfg));
}

const trace::Workload& shared_trace() {
  static const trace::Workload w = small_paper_trace(2026);
  return w;
}

/// The paper's Figure 5/6 cluster, scaled: 64 x 32 MiB + 64 x 24 MiB.
sim::ClusterSpec paper_cluster() { return sim::cm5_heterogeneous(24.0, 64); }

TEST(Integration, Figure5_EstimationImprovesSaturationUtilization) {
  RunSpec spec;  // successive-approximation, fcfs, alpha=2, beta=0
  const auto sweep = load_sweep(shared_trace(), paper_cluster(),
                                {0.5, 0.9, 1.2}, spec).points;
  const double with_est = saturation_utilization(sweep, true);
  const double without = saturation_utilization(sweep, false);
  ASSERT_GT(without, 0.0);
  // Paper: +58% at saturation. At this reduced scale (smaller partitions
  // pack the two pools better, so the baseline saturates higher) the gain
  // compresses; the full-scale bench reproduces the paper's ratio.
  EXPECT_GT(with_est / without, 1.10);
}

TEST(Integration, Figure6_SlowdownNeverMeaningfullyWorse) {
  RunSpec spec;
  const auto sweep =
      load_sweep(shared_trace(), paper_cluster(), {0.4, 0.7, 1.0}, spec)
          .points;
  for (const auto& point : sweep) {
    // Paper: "resource estimation never causes slowdown to increase".
    // Allow a small tolerance for retry noise at reduced scale.
    const auto ratio = point.slowdown_ratio();
    ASSERT_TRUE(ratio.has_value()) << "load " << point.load;
    EXPECT_GT(*ratio, 0.9) << "load " << point.load;
  }
  // And at some load the improvement is material.
  double best = 0.0;
  for (const auto& point : sweep) {
    best = std::max(best, point.slowdown_ratio().value_or(0.0));
  }
  EXPECT_GT(best, 1.2);
}

TEST(Integration, Section32_EstimatorIsConservative) {
  // Paper §3.2: at most ~0.01% of executions fail from under-estimation,
  // while 15-40% of jobs are submitted with lowered requests.
  RunSpec spec;
  trace::Workload scaled = trace::sort_by_submit(
      trace::scale_to_load(shared_trace(), 128, 0.9));
  const auto result = run_once(scaled, paper_cluster(), spec);
  EXPECT_LE(result.resource_failure_fraction(), 0.01);
  EXPECT_GE(result.lowered_fraction(), 0.10);
  EXPECT_LE(result.lowered_fraction(), 0.60);
  EXPECT_EQ(result.dropped_unschedulable, 0u);
}

TEST(Integration, Figure8_GainBandMatchesPaperShape) {
  RunSpec spec;
  const auto sweep = cluster_sweep(shared_trace(), {8.0, 24.0, 32.0}, 1.0,
                                   spec, /*pool_size=*/64)
                         .points;
  ASSERT_EQ(sweep.size(), 3u);
  for (const auto& point : sweep) {
    ASSERT_TRUE(point.utilization_ratio().has_value());
  }
  // 8 MiB second pool: the alpha = 2 ladder stalls at 16 -> rounds to 32,
  // so the small pool stays unreachable: no meaningful gain.
  EXPECT_LT(*sweep[0].utilization_ratio(), 1.1);
  // 24 MiB: the paper's sweet spot.
  EXPECT_GT(*sweep[1].utilization_ratio(), 1.15);
  // 32 MiB: homogeneous cluster, nothing to gain.
  EXPECT_NEAR(*sweep[2].utilization_ratio(), 1.0, 0.05);
  // The gain correlates with benefiting node counts (paper's R²=0.991
  // observation): the 24 MiB point must dominate.
  EXPECT_GT(sweep[1].with_estimation.benefiting_nodes,
            sweep[0].with_estimation.benefiting_nodes);
}

TEST(Integration, Table1_AllQuadrantsRunAndNeverLoseJobs) {
  trace::Workload scaled = trace::sort_by_submit(
      trace::scale_to_load(shared_trace(), 128, 0.8));
  for (const auto& name : core::estimator_names()) {
    RunSpec spec;
    spec.estimator = name;
    const auto result = run_once(scaled, paper_cluster(), spec);
    EXPECT_EQ(result.completed + result.intrinsic_failed +
                  result.dropped_unschedulable + result.dropped_attempt_cap,
              result.submitted)
        << name;
    EXPECT_EQ(result.dropped_attempt_cap, 0u) << name;
  }
}

TEST(Integration, Table1_ExplicitFeedbackBeatsImplicitOnUtilization) {
  // Explicit last-instance knows exact usage; it should save at least as
  // much as the implicit successive-approximation probe at saturation.
  trace::Workload scaled = trace::sort_by_submit(
      trace::scale_to_load(shared_trace(), 128, 1.2));
  RunSpec implicit;
  implicit.estimator = "successive-approximation";
  RunSpec explicit_spec;
  explicit_spec.estimator = "last-instance";
  const auto implicit_result = run_once(scaled, paper_cluster(), implicit);
  const auto explicit_result =
      run_once(scaled, paper_cluster(), explicit_spec);
  EXPECT_GE(explicit_result.utilization, implicit_result.utilization * 0.95);
  // And both beat no estimation.
  RunSpec none;
  none.estimator = "none";
  const auto baseline = run_once(scaled, paper_cluster(), none);
  EXPECT_GT(explicit_result.utilization, baseline.utilization);
  EXPECT_GT(implicit_result.utilization, baseline.utilization);
}

TEST(Integration, PolicyIndependence_EstimationHelpsUnderSjfAndBackfill) {
  // Paper §1.3/§3.1: the estimator composes with any policy and the gains
  // should carry over (left as future work there; verified here).
  trace::Workload scaled = trace::sort_by_submit(
      trace::scale_to_load(shared_trace(), 128, 1.1));
  for (const auto& policy : {"sjf", "easy-backfill"}) {
    RunSpec with_est;
    with_est.policy = policy;
    RunSpec without;
    without.policy = policy;
    without.estimator = "none";
    const auto a = run_once(scaled, paper_cluster(), with_est);
    const auto b = run_once(scaled, paper_cluster(), without);
    // Estimation must never hurt under any policy...
    EXPECT_GE(a.utilization, b.utilization * 0.99) << policy;
    // ...and must still help materially under SJF. EASY backfilling
    // already fills most of the holes head-of-line blocking leaves, so
    // estimation's residual gain there is small — a real finding the
    // ablation_policies bench quantifies.
    if (std::string(policy) == "sjf") {
      EXPECT_GT(a.utilization, b.utilization * 1.05) << policy;
    }
  }
}

TEST(Integration, FalsePositives_IntrinsicFailuresOnlySlowLearning) {
  // Paper §2.1: implicit feedback is prone to false positives from faulty
  // programs. They freeze groups early (beta = 0) but must not cause
  // under-provisioning failures or lost jobs.
  trace::Cm5ModelConfig cfg;
  cfg.seed = 5;
  cfg.job_count = 3000;
  cfg.group_count = 250;
  cfg.user_count = 10;
  cfg.partition_sizes = {4, 8, 16, 32};
  cfg.partition_weights = {0.42, 0.27, 0.21, 0.10};
  cfg.nominal_machines = 128;
  cfg.intrinsic_failure_fraction = 0.05;
  trace::Workload noisy = trace::sort_by_submit(trace::generate_cm5(cfg));
  noisy = trace::sort_by_submit(trace::scale_to_load(noisy, 128, 0.9));

  RunSpec spec;
  const auto result = run_once(noisy, paper_cluster(), spec);
  EXPECT_GT(result.intrinsic_failed, 0u);
  EXPECT_EQ(result.completed + result.intrinsic_failed +
                result.dropped_unschedulable,
            result.submitted);
  EXPECT_LE(result.resource_failure_fraction(), 0.02);
}

TEST(Integration, ExplicitFeedbackImmuneToFalsePositives) {
  // With explicit feedback the estimator can tell program faults from
  // resource failures, so false positives do not freeze learning: the
  // lowered-start fraction stays close to the clean-trace level.
  trace::Cm5ModelConfig cfg;
  cfg.seed = 5;
  cfg.job_count = 3000;
  cfg.group_count = 250;
  cfg.user_count = 10;
  cfg.partition_sizes = {4, 8, 16, 32};
  cfg.partition_weights = {0.42, 0.27, 0.21, 0.10};
  cfg.nominal_machines = 128;
  cfg.intrinsic_failure_fraction = 0.05;
  trace::Workload noisy = trace::sort_by_submit(trace::generate_cm5(cfg));
  noisy = trace::sort_by_submit(trace::scale_to_load(noisy, 128, 0.9));

  RunSpec spec;
  spec.estimator = "last-instance";
  const auto result = run_once(noisy, paper_cluster(), spec);
  EXPECT_GT(result.lowered_fraction(), 0.15);
}

TEST(Integration, LoadSweepReportsRenderable) {
  RunSpec spec;
  const auto sweep =
      load_sweep(shared_trace(), paper_cluster(), {0.5}, spec).points;
  const auto table = load_sweep_table(sweep);
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.render().find("util ratio"), std::string::npos);
}

TEST(Integration, StandardWorkloadSmallAndDeterministic) {
  const auto a = standard_workload(3, 2000);
  const auto b = standard_workload(3, 2000);
  ASSERT_EQ(a.jobs.size(), 2000u);
  EXPECT_DOUBLE_EQ(a.jobs[500].used_mem_mib, b.jobs[500].used_mem_mib);
}

}  // namespace
}  // namespace resmatch::exp
