// Tests for the parallel deterministic sweep engine: seed derivation,
// jobs-independence of results, error isolation, and metric export.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace resmatch::exp {
namespace {

const trace::Workload& small_trace() {
  static const trace::Workload w = [] {
    trace::Workload base = trace::generate_cm5_small(31, 1200);
    base = trace::drop_wide_jobs(std::move(base), 64);
    return trace::sort_by_submit(
        trace::scale_to_load(std::move(base), 96, 0.8));
  }();
  return w;
}

sim::ClusterSpec small_cluster() { return {{32.0, 48}, {24.0, 48}}; }

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(DeriveSeed, GoldenValues) {
  // The derivation is part of the determinism contract: changing it
  // silently changes every published sweep number. Pin it.
  EXPECT_EQ(derive_seed(42, 0), 13679457532755275413ULL);
  EXPECT_EQ(derive_seed(42, 1), 2949826092126892291ULL);
  EXPECT_EQ(derive_seed(42, 2), 5139283748462763858ULL);
  EXPECT_EQ(derive_seed(7, 0), 7191089600892374487ULL);
  EXPECT_EQ(derive_seed(7, 5), 4601199455465548305ULL);
  EXPECT_EQ(derive_seed(0, 0), 16294208416658607535ULL);
  EXPECT_EQ(derive_seed(0xffffffffffffffffULL, 3), 7862637804313477842ULL);
}

TEST(DeriveSeed, DistinctAcrossIndicesAndBases) {
  EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
  // index is folded in before finalization, not xor'd after: base 42
  // index 1 must not collide with base 43 index 0 trivially.
  EXPECT_NE(derive_seed(42, 1), derive_seed(43, 0));
}

TEST(SweepRunner, ConcurrencyClamps) {
  RunnerOptions opts;
  opts.jobs = 8;
  EXPECT_EQ(SweepRunner(opts).concurrency(3), 3u);  // never more than tasks
  opts.jobs = 1;
  EXPECT_EQ(SweepRunner(opts).concurrency(100), 1u);
  opts.jobs = 0;  // hardware concurrency, but at least 1
  EXPECT_GE(SweepRunner(opts).concurrency(100), 1u);
  EXPECT_EQ(SweepRunner(opts).concurrency(0), 1u);
}

TEST(RunTasks, PreservesIndexOrderRegardlessOfJobs) {
  RunnerOptions parallel;
  parallel.jobs = 8;
  const auto sweep = run_tasks(
      64, [](std::size_t i) { return i * i; }, parallel);
  EXPECT_TRUE(sweep.ok());
  EXPECT_EQ(sweep.stats.runs, 64u);
  EXPECT_EQ(sweep.stats.failed, 0u);
  ASSERT_EQ(sweep.results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(sweep.results[i].has_value());
    EXPECT_EQ(*sweep.results[i], i * i);
  }
}

TEST(RunTasks, FailedRunsAreIsolated) {
  RunnerOptions parallel;
  parallel.jobs = 4;
  const auto sweep = run_tasks(
      10,
      [](std::size_t i) -> int {
        if (i == 3) throw std::runtime_error("boom at 3");
        if (i == 7) throw std::runtime_error("boom at 7");
        return static_cast<int>(i);
      },
      parallel);
  EXPECT_FALSE(sweep.ok());
  EXPECT_EQ(sweep.stats.failed, 2u);
  ASSERT_EQ(sweep.errors.size(), 2u);
  // Errors come back sorted by index with the message preserved.
  EXPECT_EQ(sweep.errors[0].index, 3u);
  EXPECT_NE(sweep.errors[0].message.find("boom at 3"), std::string::npos);
  EXPECT_EQ(sweep.errors[1].index, 7u);
  // Failed slots are empty; every other slot carries its result.
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 3 || i == 7) {
      EXPECT_FALSE(sweep.results[i].has_value());
    } else {
      ASSERT_TRUE(sweep.results[i].has_value());
      EXPECT_EQ(*sweep.results[i], static_cast<int>(i));
    }
  }
}

TEST(RunSpecsTest, BadEstimatorFailsOnlyItsSlot) {
  std::vector<RunSpec> specs(3);
  specs[1].estimator = "no-such-estimator";
  const auto sweep = run_specs(small_trace(), small_cluster(), specs);
  ASSERT_EQ(sweep.errors.size(), 1u);
  EXPECT_EQ(sweep.errors[0].index, 1u);
  EXPECT_TRUE(sweep.results[0].has_value());
  EXPECT_FALSE(sweep.results[1].has_value());
  EXPECT_TRUE(sweep.results[2].has_value());
}

TEST(RunnerMetrics, ExportedThroughRegistry) {
  obs::Registry registry;
  RunnerOptions opts;
  opts.jobs = 2;
  opts.metrics = &registry;
  const auto sweep = run_tasks(
      6,
      [](std::size_t i) -> int {
        if (i == 5) throw std::runtime_error("boom");
        return 0;
      },
      opts);
  EXPECT_EQ(sweep.stats.runs, 6u);
  const std::string text = obs::to_prometheus(registry.snapshot());
  // Failed runs still count as completed runs and still get a duration
  // sample; the gauge reflects the whole sweep.
  EXPECT_NE(text.find("resmatch_sweep_runs_total 6"), std::string::npos);
  EXPECT_NE(text.find("resmatch_sweep_run_seconds"), std::string::npos);
  EXPECT_NE(text.find("resmatch_sweep_sims_per_sec"), std::string::npos);
}

TEST(LoadSweepDeterminism, JobsCountDoesNotChangeResults) {
  RunSpec spec;
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions parallel;
  parallel.jobs = 8;
  const std::vector<double> loads = {0.5, 0.8, 1.1};

  const auto a = load_sweep(small_trace(), small_cluster(), loads, spec,
                            serial);
  const auto b = load_sweep(small_trace(), small_cluster(), loads, spec,
                            parallel);
  ASSERT_EQ(a.points.size(), b.points.size());

  // Byte-identical CSV rows, the same check CI runs on fig8.
  const std::string pa = "/tmp/resmatch_runner_test_serial.csv";
  const std::string pb = "/tmp/resmatch_runner_test_parallel.csv";
  write_load_sweep_csv(pa, a.points);
  write_load_sweep_csv(pb, b.points);
  const std::string ca = slurp(pa);
  EXPECT_FALSE(ca.empty());
  EXPECT_EQ(ca, slurp(pb));
}

TEST(LoadSweepDeterminism, PointSeedsFollowDerivation) {
  // Point i must run with derive_seed(base, i) on both arms: inserting a
  // point ahead of it must not change its result (no sequential RNG
  // threading across points).
  RunSpec spec;
  spec.sim.seed = 99;
  const auto one =
      load_sweep(small_trace(), small_cluster(), {0.9}, spec).points;
  const auto two =
      load_sweep(small_trace(), small_cluster(), {0.4, 0.9}, spec).points;
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(two.size(), 2u);
  // Different positions for load 0.9 → different derived seeds, so exact
  // equality is NOT expected across positions; instead check the same
  // position reproduces exactly.
  const auto again =
      load_sweep(small_trace(), small_cluster(), {0.9}, spec).points;
  EXPECT_DOUBLE_EQ(one[0].with_estimation.utilization,
                   again[0].with_estimation.utilization);
  EXPECT_DOUBLE_EQ(one[0].without_estimation.utilization,
                   again[0].without_estimation.utilization);
}

TEST(RunIndexed, SerialAndPooledVisitEveryIndexOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    RunnerOptions opts;
    opts.jobs = jobs;
    std::vector<std::atomic<int>> visits(97);
    SweepRunner runner(opts);
    std::vector<RunError> errors;
    const auto stats = runner.run_indexed(
        97, [&](std::size_t i) { visits[i].fetch_add(1); }, &errors);
    EXPECT_TRUE(errors.empty());
    EXPECT_EQ(stats.runs, 97u);
    EXPECT_EQ(stats.jobs, jobs);
    EXPECT_GT(stats.runs_per_sec, 0.0);
    for (auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

}  // namespace
}  // namespace resmatch::exp
