// BenchArgs::parse — the shared bench CLI must reject unknown flags hard.
//
// A typo like --trace-job=100 used to warn and run the full-scale default
// anyway; now it exits nonzero before any work happens. Death tests cover
// the exit path; the happy path checks that every documented flag still
// parses and counts as used.

#include <gtest/gtest.h>

#include "bench_common.hpp"

namespace resmatch::exp {
namespace {

BenchArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"bench_args_test"};
  full.insert(full.end(), argv.begin(), argv.end());
  return BenchArgs::parse(static_cast<int>(full.size()), full.data(),
                          /*default_trace_jobs=*/500);
}

TEST(BenchArgs, ParsesEveryDocumentedFlag) {
  const BenchArgs args =
      parse({"--trace-jobs=123", "--jobs=4", "--seed=9", "--sim-seed=11",
             "--max-attempts=3", "--csv=out.csv",
             "--metrics-out=BENCH_x.json"});
  EXPECT_EQ(args.trace_jobs, 123u);
  EXPECT_EQ(args.jobs, 4u);
  EXPECT_EQ(args.seed, 9u);
  EXPECT_EQ(args.sim_seed, 11u);
  EXPECT_EQ(args.max_attempts, 3u);
  EXPECT_EQ(args.csv, "out.csv");
  EXPECT_EQ(args.metrics_out, "BENCH_x.json");
}

TEST(BenchArgs, DefaultsApplyWithNoFlags) {
  const BenchArgs args = parse({});
  EXPECT_EQ(args.trace_jobs, 500u);
  EXPECT_EQ(args.seed, 42u);
  EXPECT_EQ(args.sim_seed, 7u);
}

TEST(BenchArgsDeathTest, UnknownFlagExitsNonzero) {
  EXPECT_EXIT(parse({"--trace-job=100"}), testing::ExitedWithCode(2),
              "unknown option --trace-job");
}

TEST(BenchArgsDeathTest, UnknownFlagAmongValidOnesExitsNonzero) {
  EXPECT_EXIT(parse({"--seed=1", "--sed=2"}), testing::ExitedWithCode(2),
              "unknown option --sed");
}

TEST(BenchArgsDeathTest, ErrorListsKnownOptions) {
  EXPECT_EXIT(parse({"--bogus"}), testing::ExitedWithCode(2),
              "known options: --trace-jobs --jobs --seed");
}

}  // namespace
}  // namespace resmatch::exp
