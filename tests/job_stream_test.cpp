// Streamed-vs-materialized trace equivalence (tests the JobStream
// contract the streamed simulation engine depends on).
//
// Property: a stream and its materialized counterpart yield byte-identical
// JobRecord sequences — every field, exact doubles, across seeds and
// configurations — and replay identically after reset(). Field-exact
// equality is what licenses the stronger claim tested in
// scale_equiv_test: streamed simulation DECISIONS match materialized ones
// bit for bit.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/cm5_model.hpp"
#include "trace/job_stream.hpp"
#include "trace/swf.hpp"

namespace resmatch {
namespace {

void expect_record_equal(const trace::JobRecord& a, const trace::JobRecord& b,
                         std::size_t index) {
  SCOPED_TRACE("record " + std::to_string(index));
  EXPECT_EQ(a.id, b.id);
  // Exact double comparison is deliberate: both sides run the same
  // arithmetic in this process, so any difference is a real divergence.
  EXPECT_EQ(a.submit, b.submit);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.requested_time, b.requested_time);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.requested_mem_mib, b.requested_mem_mib);
  EXPECT_EQ(a.used_mem_mib, b.used_mem_mib);
  EXPECT_EQ(a.user, b.user);
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.status, b.status);
}

void expect_stream_matches(trace::JobStream& stream,
                           const trace::Workload& materialized) {
  std::size_t i = 0;
  while (auto job = stream.next()) {
    ASSERT_LT(i, materialized.jobs.size());
    expect_record_equal(*job, materialized.jobs[i], i);
    ++i;
  }
  EXPECT_EQ(i, materialized.jobs.size());
}

TEST(Cm5JobStream, MatchesMaterializedGeneration) {
  for (std::uint64_t seed : {7u, 11u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const trace::Cm5ModelConfig cfg = trace::cm5_small_config(seed, 1500);
    const trace::Workload w = trace::generate_cm5(cfg);
    trace::Cm5JobStream stream(cfg);
    EXPECT_EQ(stream.size_hint(), w.jobs.size());
    expect_stream_matches(stream, w);
  }
}

TEST(Cm5JobStream, MatchesUnderIntrinsicFailuresAndSharedApps) {
  // Non-default knobs spend extra RNG draws (status sampling, shared-app
  // group keys); the stream must track every one of them.
  trace::Cm5ModelConfig cfg = trace::cm5_small_config(19, 2000);
  cfg.intrinsic_failure_fraction = 0.15;
  cfg.shared_app_fraction = 0.5;
  const trace::Workload w = trace::generate_cm5(cfg);
  trace::Cm5JobStream stream(cfg);
  expect_stream_matches(stream, w);
}

TEST(Cm5JobStream, ResetReplaysIdentically) {
  const trace::Cm5ModelConfig cfg = trace::cm5_small_config(23, 800);
  trace::Cm5JobStream stream(cfg);
  std::vector<trace::JobRecord> first;
  while (auto job = stream.next()) first.push_back(*job);
  ASSERT_FALSE(first.empty());
  stream.reset();
  std::size_t i = 0;
  while (auto job = stream.next()) {
    ASSERT_LT(i, first.size());
    expect_record_equal(*job, first[i], i);
    ++i;
  }
  EXPECT_EQ(i, first.size());
}

TEST(Cm5JobStream, SubmitTimesAreNonDecreasing) {
  // The simulator's streamed entry point rejects out-of-order records;
  // the generator must never produce them (arrivals are a Poisson clock).
  trace::Cm5JobStream stream(trace::cm5_small_config(31, 1000));
  double last = 0.0;
  while (auto job = stream.next()) {
    EXPECT_GE(job->submit, last);
    last = job->submit;
  }
}

TEST(VectorJobStream, RoundTripsWorkload) {
  const trace::Workload w = trace::generate_cm5_small(13, 600);
  trace::VectorJobStream stream(w);
  EXPECT_EQ(stream.size_hint(), w.jobs.size());
  EXPECT_EQ(stream.name(), w.name);
  expect_stream_matches(stream, w);
  stream.reset();
  expect_stream_matches(stream, w);
}

class SwfTempFile {
 public:
  explicit SwfTempFile(const std::string& content) {
    path_ = std::string(::testing::TempDir()) + "job_stream_test.swf";
    std::ofstream out(path_);
    out << content;
  }
  ~SwfTempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string sample_swf() {
  // Mix of comments, valid jobs, a malformed line, a zero-runtime job,
  // and a zero-processor job — the skip paths both readers must agree on.
  std::ostringstream out;
  out << "; Comment: synthetic SWF sample\n"
      << ";\n"
      << "1 0 5 100 32 -1 2048 32 120 4096 1 3 -1 7 -1 -1 -1 -1\n"
      << "2 10 2 200 64 -1 1024 64 250 2048 1 4 -1 8 -1 -1 -1 -1\n"
      << "garbage line that cannot parse\n"
      << "3 20 1 0 16 -1 512 16 50 1024 1 5 -1 9 -1 -1 -1 -1\n"
      << "4 30 0 300 0 -1 256 0 400 512 0 6 -1 10 -1 -1 -1 -1\n"
      << "5 40 4 150 128 -1 4096 128 180 8192 1 7 -1 11 -1 -1 -1 -1\n";
  return out.str();
}

TEST(SwfJobStream, MatchesReadSwf) {
  const SwfTempFile file(sample_swf());
  const auto materialized = trace::read_swf_file(file.path());
  ASSERT_TRUE(materialized.has_value());

  const trace::SwfReadResult& ref = materialized.value();
  trace::SwfJobStream stream(file.path());
  std::size_t i = 0;
  while (auto job = stream.next()) {
    ASSERT_LT(i, ref.workload.jobs.size());
    expect_record_equal(*job, ref.workload.jobs[i], i);
    ++i;
  }
  EXPECT_EQ(i, ref.workload.jobs.size());
  EXPECT_EQ(stream.skipped(), ref.skipped);
}

TEST(SwfJobStream, ResetRewindsAndRecounts) {
  const SwfTempFile file(sample_swf());
  trace::SwfJobStream stream(file.path());
  std::vector<trace::JobRecord> first;
  while (auto job = stream.next()) first.push_back(*job);
  const std::size_t skipped = stream.skipped();
  stream.reset();
  EXPECT_EQ(stream.skipped(), 0u);
  std::size_t i = 0;
  while (auto job = stream.next()) {
    ASSERT_LT(i, first.size());
    expect_record_equal(*job, first[i], i);
    ++i;
  }
  EXPECT_EQ(i, first.size());
  EXPECT_EQ(stream.skipped(), skipped);
}

TEST(SwfJobStream, MissingFileThrows) {
  EXPECT_THROW(trace::SwfJobStream("/nonexistent/path/to.swf"),
               std::runtime_error);
}

}  // namespace
}  // namespace resmatch
