// Differential tests for the calendar (ladder) event queue.
//
// sim::CalendarQueue promises EXACTLY the heap's ordering contract —
// strict (time, insertion seq) order — while being amortized O(1). The
// tests here push identical operation sequences into both queues and
// demand identical popped sequences, across the time distributions that
// stress different tiers: uniform (rungs), exponential tails (top spill),
// heavy ties (bucket sorts and the degenerate equal-time path), and
// all-at-once drains large enough to force ladder degradation.
//
// Also covers the EventQueue growth policy: reserve() pre-sizing and the
// shrink-on-drain release that keeps a drained queue from pinning its
// peak footprint.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace resmatch {
namespace {

using TimeGen = std::function<double(util::Rng&, double now)>;

/// Interleave pushes and pops on both queues; every pop must agree on
/// (time, payload). Payload equality implies seq-tie agreement: both
/// queues number insertions identically.
void differential(std::uint64_t seed, std::size_t ops, double pop_prob,
                  const TimeGen& gen_time) {
  sim::EventQueue<std::size_t> heap;
  sim::CalendarQueue<std::size_t> cal;
  util::Rng rng(seed);
  double now = 0.0;
  std::size_t next_payload = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    ASSERT_EQ(heap.size(), cal.size());
    if (!heap.empty() && rng.uniform() < pop_prob) {
      ASSERT_EQ(heap.top().time, cal.top().time);
      const auto he = heap.pop();
      const auto ce = cal.pop();
      ASSERT_EQ(he.time, ce.time) << "op " << i;
      ASSERT_EQ(he.payload, ce.payload) << "op " << i;
      now = he.time;
    } else {
      const double t = gen_time(rng, now);
      ASSERT_GE(t, now);  // discrete-event contract: never into the past
      heap.push(t, next_payload);
      cal.push(t, next_payload);
      ++next_payload;
    }
  }
  while (!heap.empty()) {
    ASSERT_FALSE(cal.empty());
    const auto he = heap.pop();
    const auto ce = cal.pop();
    ASSERT_EQ(he.time, ce.time);
    ASSERT_EQ(he.payload, ce.payload);
  }
  ASSERT_TRUE(cal.empty());
  ASSERT_EQ(cal.size(), 0u);
}

TEST(CalendarQueue, UniformTimesMatchHeap) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    differential(seed, 20000, 0.45, [](util::Rng& rng, double now) {
      return now + rng.uniform() * 1000.0;
    });
  }
}

TEST(CalendarQueue, ExponentialTailMatchesHeap) {
  // Long-tailed horizons exercise the unsorted top spill and its
  // min/max-tracked respawn into rungs.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    differential(seed, 20000, 0.45, [](util::Rng& rng, double now) {
      return now + rng.exponential(0.001);
    });
  }
}

TEST(CalendarQueue, HeavyTiesMatchHeap) {
  // Quantized times: many exact ties per bucket, popping must preserve
  // insertion order within each tie group.
  for (std::uint64_t seed : {21u, 22u}) {
    differential(seed, 20000, 0.45, [](util::Rng& rng, double now) {
      return now + std::floor(rng.uniform() * 40.0);
    });
  }
}

TEST(CalendarQueue, AllEventsAtOneTimeMatchHeap) {
  // Zero-span distribution: the degenerate top case (top_max == top_min)
  // must sort exactly and keep later equal-time pushes after earlier ones.
  differential(31, 8000, 0.4,
               [](util::Rng&, double now) { return now; });
}

TEST(CalendarQueue, BurstsWithQuietGapsMatchHeap) {
  // Bursty arrivals: tight clusters separated by long gaps — the skew the
  // ladder degradation exists for.
  for (std::uint64_t seed : {41u, 42u}) {
    differential(seed, 20000, 0.45, [](util::Rng& rng, double now) {
      const double burst = rng.bernoulli(0.9)
                               ? rng.uniform() * 0.5
                               : 50000.0 + rng.uniform() * 1000.0;
      return now + burst;
    });
  }
}

TEST(CalendarQueue, BulkDrainForcesLadderDegradation) {
  // Push 200k events before the first pop: buckets far exceed the spawn
  // threshold, forcing nested rungs, then drain fully sorted.
  sim::EventQueue<std::size_t> heap;
  sim::CalendarQueue<std::size_t> cal;
  util::Rng rng(77);
  for (std::size_t i = 0; i < 200000; ++i) {
    // Clustered: 1000 dense centers with tight jitter plus exact ties.
    const double center = std::floor(rng.uniform() * 1000.0) * 10.0;
    const double t =
        rng.bernoulli(0.3) ? center : center + rng.uniform() * 0.25;
    heap.push(t, i);
    cal.push(t, i);
  }
  ASSERT_EQ(cal.size(), 200000u);
  while (!heap.empty()) {
    const auto he = heap.pop();
    const auto ce = cal.pop();
    ASSERT_EQ(he.time, ce.time);
    ASSERT_EQ(he.payload, ce.payload);
  }
  ASSERT_TRUE(cal.empty());
}

TEST(CalendarQueue, ChildRungOverhangDoesNotStealFromParentNextBucket) {
  // Regression: a child rung spawned while refining a parent bucket
  // [lo, hi) carries one overflow bucket past hi (so hi itself lands in
  // range under FP rounding). Pushes into that overhang [hi, hi + child
  // width) must be refused — the parent's next bucket already holds
  // earlier events from the same sliver, and claiming them out of the
  // child pops them too early. Needs a dense cluster (to force the child
  // spawn) plus boundary-straddling traffic; the random mixes above never
  // line both up, a 10M-event cluster-scale run did.
  sim::EventQueue<std::size_t> heap;
  sim::CalendarQueue<std::size_t> cal;
  std::size_t next_payload = 0;
  const auto push = [&](double t) {
    heap.push(t, next_payload);
    cal.push(t, next_payload);
    ++next_payload;
  };
  const auto pop = [&]() -> double {
    const auto he = heap.pop();
    const auto ce = cal.pop();
    EXPECT_EQ(he.time, ce.time);
    EXPECT_EQ(he.payload, ce.payload);
    return he.time;
  };

  // Geometry (500 events spanning [0, 9.9] at first pop): the top-spill
  // rung gets bucket width 9.9/500 = 0.0198, so the cluster at 5.0 lands
  // in the parent bucket [4.9896, 5.0094) with ~194 events — over the
  // spawn threshold, so draining through it spawns a child rung with
  // sub-bucket width ~1.02e-4, making the overhang [5.0094, ~5.00950).
  // The tail's 1e-4 spacing guarantees an event inside that sliver
  // (5.00945) sitting in the parent's NEXT bucket.
  for (int i = 0; i < 100; ++i) push(static_cast<double>(i) * 0.1);
  for (int j = 0; j < 100; ++j) push(5.0 + static_cast<double>(j) * 1e-7);
  for (int k = 0; k < 300; ++k)
    push(5.00015 + static_cast<double>(k) * 1e-4);

  // Drain into the cluster (the child rung is live now), then interleave
  // pops with pushes at now + 9.45e-3: from inside the cluster those land
  // in the child's overhang sliver, AFTER the 5.00945 event already
  // sitting in the parent's next bucket.
  double now = 0.0;
  while (now < 5.0) now = pop();
  for (int i = 0; i < 100 && !heap.empty(); ++i) {
    push(now + 9.45e-3);
    now = pop();
  }
  while (!heap.empty()) pop();
  EXPECT_TRUE(cal.empty());
}

TEST(CalendarQueue, SteadyStateWindowMatchesHeap) {
  // The simulator's actual shape: a sliding window of pending job ends —
  // push one or two, pop one, forever.
  sim::EventQueue<int> heap;
  sim::CalendarQueue<int> cal;
  util::Rng rng(99);
  double now = 0.0;
  int payload = 0;
  for (int i = 0; i < 50000; ++i) {
    const int pushes = rng.bernoulli(0.5) ? 2 : 1;
    for (int p = 0; p < pushes; ++p) {
      const double t = now + rng.exponential(0.01);
      heap.push(t, payload);
      cal.push(t, payload);
      ++payload;
    }
    const auto he = heap.pop();
    const auto ce = cal.pop();
    ASSERT_EQ(he.time, ce.time);
    ASSERT_EQ(he.payload, ce.payload);
    now = he.time;
  }
}

// --- EventQueue growth policy -------------------------------------------

TEST(EventQueue, ReservePresizesBackingStore) {
  sim::EventQueue<int> q;
  q.reserve(100000);
  EXPECT_GE(q.capacity(), 100000u);
  for (int i = 0; i < 1000; ++i) q.push(static_cast<double>(i), i);
  EXPECT_GE(q.capacity(), 100000u);  // no reallocation below the reserve
}

TEST(EventQueue, DrainReleasesLargeBackingStore) {
  sim::EventQueue<int> q;
  const std::size_t n = 1u << 18;  // > shrink floor
  for (std::size_t i = 0; i < n; ++i) {
    q.push(static_cast<double>(i), static_cast<int>(i));
  }
  const std::size_t peak = q.capacity();
  ASSERT_GE(peak, n);
  double last = -1.0;
  while (!q.empty()) {
    const auto e = q.pop();
    ASSERT_GT(e.time, last);
    last = e.time;
  }
  // A drained queue must not pin its peak footprint.
  EXPECT_LT(q.capacity(), peak / 4);
}

TEST(EventQueue, ShrinkPreservesPopOrder) {
  sim::EventQueue<std::size_t> q;
  util::Rng rng(5);
  std::vector<std::pair<double, std::size_t>> expected;
  const std::size_t n = (1u << 17) + 12345;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.uniform() * 1e6;
    q.push(t, i);
    expected.emplace_back(t, i);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (const auto& [t, payload] : expected) {
    const auto e = q.pop();
    ASSERT_EQ(e.time, t);
    ASSERT_EQ(e.payload, payload);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace resmatch
