// Scenario catalog: generator determinism and invariants, the adversarial
// margin property, sweep determinism across worker counts, and the
// stream-factory SWF sweep (one file cursor per task).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "core/quantile_estimator.hpp"
#include "exp/experiment.hpp"
#include "exp/scenarios.hpp"
#include "sim/cluster.hpp"
#include "trace/adversarial.hpp"
#include "trace/cm5_model.hpp"
#include "trace/swf.hpp"
#include "trace/transforms.hpp"

namespace resmatch {
namespace {

void expect_scenarios_equal(const trace::ScenarioWorkload& a,
                            const trace::ScenarioWorkload& b) {
  EXPECT_EQ(a.dims, b.dims);
  ASSERT_EQ(a.base.jobs.size(), b.base.jobs.size());
  ASSERT_EQ(a.mr.size(), b.mr.size());
  for (std::size_t i = 0; i < a.base.jobs.size(); ++i) {
    const auto& ja = a.base.jobs[i];
    const auto& jb = b.base.jobs[i];
    ASSERT_EQ(ja.submit, jb.submit) << "job " << i;
    ASSERT_EQ(ja.runtime, jb.runtime) << "job " << i;
    ASSERT_EQ(ja.nodes, jb.nodes) << "job " << i;
    ASSERT_EQ(ja.requested_mem_mib, jb.requested_mem_mib) << "job " << i;
    ASSERT_EQ(ja.used_mem_mib, jb.used_mem_mib) << "job " << i;
    ASSERT_EQ(ja.user, jb.user) << "job " << i;
    ASSERT_EQ(ja.app, jb.app) << "job " << i;
    ASSERT_EQ(ja.status, jb.status) << "job " << i;
    ASSERT_EQ(a.mr[i].requested, b.mr[i].requested) << "job " << i;
    ASSERT_EQ(a.mr[i].used_peak, b.mr[i].used_peak) << "job " << i;
    ASSERT_EQ(a.mr[i].profile.shape, b.mr[i].profile.shape) << "job " << i;
    ASSERT_EQ(a.mr[i].profile.start_frac, b.mr[i].profile.start_frac);
    ASSERT_EQ(a.mr[i].profile.knee_frac, b.mr[i].profile.knee_frac);
  }
}

TEST(ScenarioRegistry, NamesCoverEveryTraceModel) {
  const auto& models = exp::trace_model_names();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_NE(std::find(models.begin(), models.end(), "swf"), models.end());
  const auto synthetic = exp::scenario_names();
  ASSERT_EQ(synthetic.size(), 4u);
  EXPECT_EQ(std::find(synthetic.begin(), synthetic.end(), "swf"),
            synthetic.end());
  for (const auto& name : synthetic) {
    EXPECT_NE(std::find(models.begin(), models.end(), name), models.end());
  }
}

TEST(ScenarioRegistry, UnknownScenarioThrows) {
  EXPECT_THROW((void)exp::make_scenario("no-such-model", 1, 10),
               std::invalid_argument);
}

TEST(ScenarioGenerators, GoldenSeedIsDeterministic) {
  for (const auto& name : exp::scenario_names()) {
    SCOPED_TRACE(name);
    const auto first = exp::make_scenario(name, 42, 800);
    const auto second = exp::make_scenario(name, 42, 800);
    expect_scenarios_equal(first, second);
    EXPECT_EQ(first.base.jobs.size(), 800u);
  }
}

TEST(ScenarioGenerators, SeedsActuallyVaryTheWorkload) {
  for (const auto& name : exp::scenario_names()) {
    SCOPED_TRACE(name);
    const auto a = exp::make_scenario(name, 1, 400);
    const auto b = exp::make_scenario(name, 2, 400);
    bool differs = false;
    for (std::size_t i = 0; i < a.base.jobs.size() && !differs; ++i) {
      differs = a.base.jobs[i].submit != b.base.jobs[i].submit ||
                a.base.jobs[i].used_mem_mib != b.base.jobs[i].used_mem_mib;
    }
    EXPECT_TRUE(differs);
  }
}

TEST(ScenarioGenerators, StructuralInvariantsHold) {
  for (const auto& name : exp::scenario_names()) {
    SCOPED_TRACE(name);
    const auto scenario = exp::make_scenario(name, 7, 600);
    ASSERT_EQ(scenario.mr.size(), scenario.base.jobs.size());
    double last_submit = 0.0;
    for (std::size_t i = 0; i < scenario.base.jobs.size(); ++i) {
      const auto& job = scenario.base.jobs[i];
      const auto& info = scenario.mr[i];
      ASSERT_GE(job.submit, last_submit) << "job " << i << " out of order";
      last_submit = job.submit;
      ASSERT_TRUE(trace::is_simulatable(job)) << "job " << i;
      // The memory coordinates mirror the scalar record exactly — the
      // invariant the dims=1 equivalence gate rests on.
      ASSERT_EQ(info.requested[kDimMem], job.requested_mem_mib);
      ASSERT_EQ(info.used_peak[kDimMem], job.used_mem_mib);
      for (std::size_t d = 0; d < scenario.dims; ++d) {
        ASSERT_LE(info.used_peak[d], info.requested[d] + 1e-9)
            << "job " << i << " dim " << d;
        ASSERT_GE(info.used_peak[d], 0.0);
      }
    }
  }
}

TEST(AdversarialScenario, QuantileMarginWidensUnderAttackThenRecovers) {
  // Replay the adversary's similarity group through the quantile
  // estimator: the padded phases teach a low usage quantile, the lean
  // phases turn that into kills, and the risk-aware margin controller
  // must widen in response — then decay once the attack stops.
  trace::AdversarialConfig cfg;
  cfg.seed = 42;
  cfg.job_count = 4000;
  const auto scenario = trace::generate_adversarial(cfg);

  core::QuantileEstimatorConfig qcfg;
  qcfg.min_observations = 50;
  core::QuantileEstimator estimator(qcfg);
  estimator.set_ladder(core::CapacityLadder({4.0, 8.0, 16.0, 24.0, 32.0}));

  const double initial_margin = estimator.margin();
  double peak_margin = initial_margin;
  std::size_t kills = 0;
  trace::JobRecord adversary_job;
  for (const auto& job : scenario.base.jobs) {
    if (job.user != 0 || job.app != 0) continue;  // background traffic
    adversary_job = job;
    const MiB grant = estimator.estimate(job, {});
    const bool killed = grant + 1e-9 < job.used_mem_mib;
    kills += killed ? 1 : 0;
    core::Feedback fb;
    fb.success = !killed;
    fb.granted_mib = grant;
    // Flat footprint: the monitor sees the full peak even on a kill.
    fb.used_mib = job.used_mem_mib;
    fb.resource_failure = killed;
    estimator.feedback(job, fb);
    peak_margin = std::max(peak_margin, estimator.margin());
  }
  EXPECT_GT(kills, 0u) << "the attack never landed";
  EXPECT_GT(peak_margin, initial_margin + 0.01)
      << "margin never widened under attack";

  // Attack over: a long run of honest, well-covered submissions. The
  // kill EWMA decays below target and the controller narrows again.
  adversary_job.used_mem_mib =
      adversary_job.requested_mem_mib * cfg.padded_usage_frac;
  for (int i = 0; i < 1500; ++i) {
    const MiB grant = estimator.estimate(adversary_job, {});
    core::Feedback fb;
    fb.success = true;
    fb.granted_mib = grant;
    fb.used_mib = adversary_job.used_mem_mib;
    fb.resource_failure = false;
    estimator.feedback(adversary_job, fb);
  }
  EXPECT_LT(estimator.margin(), peak_margin)
      << "margin never recovered after the attack stopped";
}

TEST(AdversarialScenario, AdversaryJobsAlternatePhases) {
  trace::AdversarialConfig cfg;
  cfg.seed = 11;
  cfg.job_count = 800;
  const auto scenario = trace::generate_adversarial(cfg);
  // Collect the adversary's usage fractions in submission order: the
  // stream must contain both padded (lean usage) and lean (heavy usage)
  // runs, all within ONE similarity group (constant request).
  std::size_t padded = 0, heavy = 0;
  for (const auto& job : scenario.base.jobs) {
    if (job.user != 0 || job.app != 0) continue;
    ASSERT_EQ(job.requested_mem_mib, cfg.adversary_request_mib);
    const double frac = job.used_mem_mib / job.requested_mem_mib;
    if (frac < 0.5) {
      ++padded;
    } else {
      ++heavy;
    }
  }
  EXPECT_GT(padded, 0u);
  EXPECT_GT(heavy, 0u);
}

void expect_rows_equal(const exp::ScenarioSweep& a,
                       const exp::ScenarioSweep& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    EXPECT_EQ(a.rows[i].scenario, b.rows[i].scenario);
    EXPECT_EQ(a.rows[i].estimator, b.rows[i].estimator);
    EXPECT_EQ(a.rows[i].dims, b.rows[i].dims);
    const auto& ra = a.rows[i].result;
    const auto& rb = b.rows[i].result;
    EXPECT_EQ(ra.base.submitted, rb.base.submitted);
    EXPECT_EQ(ra.base.completed, rb.base.completed);
    EXPECT_EQ(ra.base.attempts, rb.base.attempts);
    EXPECT_EQ(ra.base.resource_failures, rb.base.resource_failures);
    EXPECT_EQ(ra.base.lowered_starts, rb.base.lowered_starts);
    EXPECT_EQ(ra.base.utilization, rb.base.utilization);
    EXPECT_EQ(ra.base.mean_slowdown, rb.base.mean_slowdown);
    EXPECT_EQ(ra.kills_by_dim, rb.kills_by_dim);
    EXPECT_EQ(ra.midjob_kills, rb.midjob_kills);
    EXPECT_EQ(ra.mean_kill_progress, rb.mean_kill_progress);
  }
}

TEST(ScenarioSweep, DeterministicAcrossWorkerCounts) {
  const std::vector<std::string> scenarios = {"cm5", "adversarial"};
  const std::vector<std::string> estimators = {"none",
                                               "successive-approximation"};
  exp::ScenarioRunConfig config;
  config.job_count = 500;
  config.dims = 3;

  exp::RunnerOptions serial;
  serial.jobs = 1;
  const auto a = exp::scenario_sweep(scenarios, estimators, config, serial);
  exp::RunnerOptions parallel;
  parallel.jobs = 4;
  const auto b = exp::scenario_sweep(scenarios, estimators, config, parallel);

  ASSERT_TRUE(a.errors.empty());
  ASSERT_TRUE(b.errors.empty());
  ASSERT_EQ(a.rows.size(), scenarios.size() * estimators.size());
  expect_rows_equal(a, b);
  // cm5 is single-dimension, so its rows clamp to dims=1; the adversarial
  // scenario exercises the full vector.
  EXPECT_EQ(a.rows[0].dims, 1u);
  EXPECT_EQ(a.rows[2].dims, 3u);
}

TEST(ScenarioSweep, RowsComeOutScenarioMajor) {
  const std::vector<std::string> scenarios = {"cm5", "flash-crowd"};
  const std::vector<std::string> estimators = {"none", "last-instance"};
  exp::ScenarioRunConfig config;
  config.job_count = 200;
  const auto sweep = exp::scenario_sweep(scenarios, estimators, config, {});
  ASSERT_TRUE(sweep.errors.empty());
  ASSERT_EQ(sweep.rows.size(), 4u);
  EXPECT_EQ(sweep.rows[0].scenario, "cm5");
  EXPECT_EQ(sweep.rows[0].estimator, "none");
  EXPECT_EQ(sweep.rows[1].scenario, "cm5");
  EXPECT_EQ(sweep.rows[1].estimator, "last-instance");
  EXPECT_EQ(sweep.rows[2].scenario, "flash-crowd");
  EXPECT_EQ(sweep.rows[3].scenario, "flash-crowd");
}

class SwfTempFile {
 public:
  explicit SwfTempFile(const trace::Workload& workload) {
    path_ = std::string(::testing::TempDir()) + "scenario_test.swf";
    trace::write_swf_file(path_, workload);
  }
  ~SwfTempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(StreamFactorySweep, SwfArmsAreIndependentAndDeterministic) {
  // The regression this pins: a single shared SwfJobStream holds ONE file
  // cursor, so parallel sweep arms used to interleave reads. The factory
  // overload gives each task its own stream; serial and parallel runs —
  // and a run over the materialized read-back — must agree exactly.
  const trace::Workload w =
      trace::sort_by_submit(trace::generate_cm5_small(23, 400));
  const SwfTempFile file(w);
  const auto read_back = trace::read_swf_file(file.path());
  ASSERT_TRUE(read_back.has_value());

  const sim::ClusterSpec cluster = sim::cm5_heterogeneous(24.0, 64);
  std::vector<exp::RunSpec> specs;
  for (const char* estimator :
       {"none", "successive-approximation", "last-instance"}) {
    exp::RunSpec spec;
    spec.estimator = estimator;
    specs.push_back(spec);
  }
  const exp::StreamFactory factory = [&file] {
    return std::unique_ptr<trace::JobStream>(
        std::make_unique<trace::SwfJobStream>(file.path()));
  };

  exp::RunnerOptions serial;
  serial.jobs = 1;
  const auto streamed_serial = exp::run_specs(factory, cluster, specs, serial);
  exp::RunnerOptions parallel;
  parallel.jobs = 4;
  const auto streamed_parallel =
      exp::run_specs(factory, cluster, specs, parallel);
  const auto materialized =
      exp::run_specs(read_back.value().workload, cluster, specs, serial);

  ASSERT_TRUE(streamed_serial.ok());
  ASSERT_TRUE(streamed_parallel.ok());
  ASSERT_TRUE(materialized.ok());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].estimator);
    const auto& s = *streamed_serial.results[i];
    const auto& p = *streamed_parallel.results[i];
    const auto& m = *materialized.results[i];
    for (const auto* other : {&p, &m}) {
      EXPECT_EQ(s.submitted, other->submitted);
      EXPECT_EQ(s.completed, other->completed);
      EXPECT_EQ(s.attempts, other->attempts);
      EXPECT_EQ(s.resource_failures, other->resource_failures);
      EXPECT_EQ(s.utilization, other->utilization);
      EXPECT_EQ(s.mean_wait, other->mean_wait);
      EXPECT_EQ(s.mean_slowdown, other->mean_slowdown);
      EXPECT_EQ(s.granted_mib_nodes, other->granted_mib_nodes);
    }
  }
}

TEST(StreamFactorySweep, NullFactoryIsAnIsolatedError) {
  const exp::StreamFactory broken = [] {
    return std::unique_ptr<trace::JobStream>();
  };
  std::vector<exp::RunSpec> specs(1);
  const auto sweep =
      exp::run_specs(broken, sim::cm5_heterogeneous(24.0, 16), specs, {});
  EXPECT_FALSE(sweep.ok());
  ASSERT_EQ(sweep.errors.size(), 1u);
  EXPECT_NE(sweep.errors[0].message.find("stream factory"), std::string::npos);
}

}  // namespace
}  // namespace resmatch
