// Calibration tests for the synthetic CM5 workload model: these assert the
// published LANL CM5 statistics the paper's experiments depend on, so a
// drifting generator fails loudly rather than silently changing results.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "trace/analysis.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"

namespace resmatch::trace {
namespace {

/// Shared mid-size trace: large enough for stable statistics, small enough
/// to keep the suite fast. Built once.
const Workload& calibration_trace() {
  static const Workload w = [] {
    Cm5ModelConfig cfg;
    cfg.seed = 7;
    cfg.job_count = 30000;
    cfg.group_count = 2430;  // preserves the ~12.3 jobs/group mean
    cfg.user_count = 60;
    return generate_cm5(cfg);
  }();
  return w;
}

TEST(Cm5Model, ExactJobCount) {
  EXPECT_EQ(calibration_trace().jobs.size(), 30000u);
}

TEST(Cm5Model, AllJobsSimulatable) {
  for (const auto& job : calibration_trace().jobs) {
    ASSERT_TRUE(is_simulatable(job)) << to_string(job);
  }
}

TEST(Cm5Model, ArrivalsAreSorted) {
  const auto& jobs = calibration_trace().jobs;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    ASSERT_GE(jobs[i].submit, jobs[i - 1].submit);
  }
}

TEST(Cm5Model, RequestsRespectCm5NodeMemory) {
  for (const auto& job : calibration_trace().jobs) {
    ASSERT_LE(job.requested_mem_mib, 32.0);
    ASSERT_GT(job.requested_mem_mib, 0.0);
    ASSERT_LE(job.used_mem_mib, job.requested_mem_mib + 1e-9);
  }
}

TEST(Cm5Model, PartitionSizesArePowersOfTwo) {
  const std::set<std::uint32_t> valid = {32, 64, 128, 256, 512};
  for (const auto& job : calibration_trace().jobs) {
    ASSERT_TRUE(valid.count(job.nodes)) << job.nodes;
  }
}

TEST(Cm5Model, GroupCountMatchesConfig) {
  const auto groups = profile_groups(calibration_trace());
  // Groups can only merge if two GroupSpecs collide on the full key, which
  // the generator prevents; so the count must match exactly.
  EXPECT_EQ(groups.size(), 2430u);
}

TEST(Cm5Model, Figure1_FractionAtLeast2x) {
  // Paper: ~32.8% of jobs request >= 2x what they use.
  const auto analysis = analyze_overprovisioning(calibration_trace());
  EXPECT_NEAR(analysis.fraction_ge2, 0.328, 0.03);
}

TEST(Cm5Model, Figure1_TwoOrdersOfMagnitudeTail) {
  // Paper: differences of up to two orders of magnitude.
  const auto analysis = analyze_overprovisioning(calibration_trace());
  EXPECT_GT(analysis.max_ratio_seen, 50.0);
  EXPECT_LE(analysis.max_ratio_seen, 131.0);
}

TEST(Cm5Model, Figure1_LogLinearDecayFitsReasonably) {
  // Paper: regression over the log-scaled histogram has R^2 = 0.69; the
  // synthetic trace should produce a recognizably log-linear decay (we
  // accept a band, not the exact value).
  const auto analysis = analyze_overprovisioning(calibration_trace());
  EXPECT_LT(analysis.log_fit.slope, 0.0);  // decaying
  EXPECT_GT(analysis.log_fit.r_squared, 0.4);
}

TEST(Cm5Model, Figure3_GroupSizeDistributionShape) {
  // Paper footnote 2: groups with >= 10 jobs are ~19.4% of groups but
  // cover ~83% of jobs.
  const auto groups = profile_groups(calibration_trace());
  const auto dist = group_size_distribution(groups, 10);
  EXPECT_NEAR(dist.fraction_groups_ge_threshold, 0.194, 0.05);
  EXPECT_NEAR(dist.fraction_jobs_ge_threshold, 0.83, 0.07);
}

TEST(Cm5Model, Figure4_MostGroupsAreTight) {
  // Paper: "a large fraction of the similarity groups are at the lower end
  // of the similarity range values".
  const auto groups = profile_groups(calibration_trace());
  const auto scatter = group_quality_scatter(groups, 10);
  ASSERT_GT(scatter.size(), 50u);
  std::size_t tight = 0;
  for (const auto& point : scatter) {
    if (point.similarity_range <= 1.5) ++tight;
  }
  EXPECT_GT(static_cast<double>(tight) / scatter.size(), 0.6);
}

TEST(Cm5Model, Figure4_HighGainHighlySimilarGroupsExist) {
  // Paper: "there are jobs with a very high (above one order of magnitude)
  // ratio between requested and maximal used memory and these jobs are
  // also very similar".
  const auto groups = profile_groups(calibration_trace());
  const auto scatter = group_quality_scatter(groups, 10);
  const bool found = std::any_of(
      scatter.begin(), scatter.end(), [](const GroupQualityPoint& p) {
        return p.potential_gain > 10.0 && p.similarity_range < 2.0;
      });
  EXPECT_TRUE(found);
}

TEST(Cm5Model, MajorityOfJobsRequestFullOrNearFullNode) {
  // The Figure 5/8 gains hinge on many requests exceeding 24 MiB.
  std::size_t above24 = 0;
  for (const auto& job : calibration_trace().jobs) {
    if (job.requested_mem_mib > 24.0) ++above24;
  }
  const double frac =
      static_cast<double>(above24) / calibration_trace().jobs.size();
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.65);
}

TEST(Cm5Model, DeterministicForSeed) {
  Cm5ModelConfig cfg;
  cfg.job_count = 1000;
  cfg.group_count = 80;
  cfg.seed = 99;
  const Workload a = generate_cm5(cfg);
  const Workload b = generate_cm5(cfg);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.jobs[i].submit, b.jobs[i].submit);
    ASSERT_DOUBLE_EQ(a.jobs[i].used_mem_mib, b.jobs[i].used_mem_mib);
    ASSERT_EQ(a.jobs[i].user, b.jobs[i].user);
  }
}

TEST(Cm5Model, SeedsProduceDifferentTraces) {
  Cm5ModelConfig cfg;
  cfg.job_count = 1000;
  cfg.group_count = 80;
  cfg.seed = 1;
  const Workload a = generate_cm5(cfg);
  cfg.seed = 2;
  const Workload b = generate_cm5(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].used_mem_mib != b.jobs[i].used_mem_mib) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Cm5Model, NominalLoadIsRespected) {
  const double load = calibration_trace().offered_load(1024);
  EXPECT_NEAR(load, 0.7, 1e-6);
}

TEST(Cm5Model, IntrinsicFailuresInjectedWhenConfigured) {
  Cm5ModelConfig cfg;
  cfg.job_count = 5000;
  cfg.group_count = 400;
  cfg.intrinsic_failure_fraction = 0.1;
  const Workload w = generate_cm5(cfg);
  std::size_t failed = 0;
  for (const auto& job : w.jobs) {
    if (job.status == JobStatus::kFailed) ++failed;
  }
  EXPECT_NEAR(static_cast<double>(failed) / w.jobs.size(), 0.1, 0.02);
}

TEST(Cm5Model, CleanTraceHasNoFailures) {
  for (const auto& job : calibration_trace().jobs) {
    ASSERT_EQ(job.status, JobStatus::kCompleted);
  }
}

TEST(Cm5Model, SmallGeneratorPreservesShape) {
  // At 4,000 jobs the heavy-tailed group sizes make the job-weighted
  // fraction noisy (a handful of big groups dominate); only the coarse
  // shape is asserted here — the calibrated value is checked at 30k jobs.
  const Workload w = generate_cm5_small(3, 4000);
  EXPECT_EQ(w.jobs.size(), 4000u);
  const auto analysis = analyze_overprovisioning(w);
  EXPECT_NEAR(analysis.fraction_ge2, 0.328, 0.12);
}

TEST(Cm5Model, SharedAppGroupsRemainDisjointUnderFullKey) {
  // Two groups may share (user, app) but must then differ in requested
  // memory; the full key keeps them apart, while a (user, app)-only key
  // merges some.
  const auto& w = calibration_trace();
  const auto full = profile_groups(w);
  const auto user_app_only = profile_groups(w, [](const JobRecord& j) {
    return util::mix64(j.user) ^ util::mix64(static_cast<std::uint64_t>(j.app) + 17);
  });
  EXPECT_LT(user_app_only.size(), full.size());
}

}  // namespace
}  // namespace resmatch::trace
