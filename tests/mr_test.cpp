// Multi-resource building blocks: ResourceVector semantics, footprint
// math, the cluster's vector queries, the VectorEstimator's transparency
// and per-dimension routing, and the scenario_from mirror invariant.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>

#include "core/estimator.hpp"
#include "core/factory.hpp"
#include "core/multi_resource.hpp"
#include "sim/cluster.hpp"
#include "trace/cm5_model.hpp"
#include "trace/footprint.hpp"
#include "trace/scenario.hpp"
#include "util/resource_vector.hpp"

namespace resmatch {
namespace {

TEST(ResourceVector, CoversIsComponentWiseOverActiveDims) {
  const ResourceVector cap(32.0, 8.0, 2.0);
  EXPECT_TRUE(cap.covers(ResourceVector(32.0, 8.0, 2.0), 3));
  EXPECT_TRUE(cap.covers(ResourceVector(16.0, 4.0, 0.0), 3));
  EXPECT_FALSE(cap.covers(ResourceVector(16.0, 4.0, 4.0), 3));
  EXPECT_FALSE(cap.covers(ResourceVector(33.0, 0.0, 0.0), 3));
  // Dimensions past `dims` are ignored: a GPU demand is invisible at
  // dims=2, and only memory counts at dims=1.
  EXPECT_TRUE(cap.covers(ResourceVector(16.0, 4.0, 4.0), 2));
  EXPECT_TRUE(cap.covers(ResourceVector(32.0, 100.0, 100.0), 1));
  // Exact comparison, no epsilon — mirrors the scalar pool walk.
  EXPECT_FALSE(
      ResourceVector(32.0).covers(ResourceVector(32.0 + 1e-12), 1));
}

TEST(ResourceVector, AccessorsAndEquality) {
  ResourceVector v(24.0, 4.0, 1.0);
  EXPECT_EQ(v.mem(), 24.0);
  EXPECT_EQ(v.cpu(), 4.0);
  EXPECT_EQ(v.gpu(), 1.0);
  v[kDimGpu] = 2.0;
  EXPECT_EQ(v, ResourceVector(24.0, 4.0, 2.0));
  EXPECT_NE(v, ResourceVector(24.0, 4.0, 1.0));
  EXPECT_EQ(resource_dim_name(kDimMem), "mem");
  EXPECT_EQ(resource_dim_name(kDimCpu), "cpu");
  EXPECT_EQ(resource_dim_name(kDimGpu), "gpu");
}

TEST(Footprint, FlatIsAlwaysPeak) {
  const trace::FootprintProfile flat;  // default: kFlat
  EXPECT_EQ(flat.usage_at(0.0, 100.0, 8.0), 8.0);
  EXPECT_EQ(flat.usage_at(50.0, 100.0, 8.0), 8.0);
  // Flat overruns keep the paper's uniformly-drawn kill time: no
  // deterministic crossing even when the peak exceeds the grant.
  EXPECT_EQ(flat.first_crossing(4.0, 100.0, 8.0), std::nullopt);
}

TEST(Footprint, RampInterpolatesLinearly) {
  trace::FootprintProfile ramp;
  ramp.shape = trace::FootprintShape::kRamp;
  ramp.start_frac = 0.25;
  EXPECT_DOUBLE_EQ(ramp.usage_at(0.0, 100.0, 8.0), 2.0);
  EXPECT_DOUBLE_EQ(ramp.usage_at(50.0, 100.0, 8.0), 5.0);
  EXPECT_DOUBLE_EQ(ramp.usage_at(100.0, 100.0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(ramp.usage_at(250.0, 100.0, 8.0), 8.0);
  // Crossing of grant 5.0 on the way to peak 8.0: frac (5/8 - 1/4)/(3/4)
  // of the runtime.
  const auto t = ramp.first_crossing(5.0, 100.0, 8.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 50.0);
  EXPECT_EQ(ramp.first_crossing(8.0, 100.0, 8.0), std::nullopt);
  // Already above the grant at t=0.
  EXPECT_DOUBLE_EQ(*ramp.first_crossing(1.0, 100.0, 8.0), 0.0);
}

TEST(Footprint, StepJumpsAtKnee) {
  trace::FootprintProfile step;
  step.shape = trace::FootprintShape::kStep;
  step.start_frac = 0.5;
  step.knee_frac = 0.4;
  EXPECT_DOUBLE_EQ(step.usage_at(0.0, 100.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(step.usage_at(39.0, 100.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(step.usage_at(40.0, 100.0, 10.0), 10.0);
  const auto t = step.first_crossing(6.0, 100.0, 10.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 40.0);
}

TEST(Footprint, PlateauReachesPeakAtKnee) {
  trace::FootprintProfile plateau;
  plateau.shape = trace::FootprintShape::kPlateau;
  plateau.start_frac = 0.0;
  plateau.knee_frac = 0.5;
  EXPECT_DOUBLE_EQ(plateau.usage_at(25.0, 100.0, 8.0), 4.0);
  EXPECT_DOUBLE_EQ(plateau.usage_at(50.0, 100.0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(plateau.usage_at(75.0, 100.0, 8.0), 8.0);
  const auto t = plateau.first_crossing(4.0, 100.0, 8.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 25.0);
}

sim::ClusterSpec vector_spec() {
  return {{16.0, 4, 4.0, 0.0}, {24.0, 4, 8.0, 2.0}, {32.0, 2, 16.0, 4.0}};
}

TEST(ClusterVec, MergeKeyIncludesCpuAndGpu) {
  // Same memory capacity but different CPU/GPU stays two capacity
  // classes; identical vectors merge.
  sim::Cluster split({{16.0, 2, 4.0, 0.0}, {16.0, 3, 8.0, 0.0}});
  EXPECT_EQ(split.pool_count(), 2u);
  sim::Cluster merged({{16.0, 2, 4.0, 0.0}, {16.0, 3, 4.0, 0.0}});
  EXPECT_EQ(merged.pool_count(), 1u);
  EXPECT_EQ(merged.machine_count(), 5u);
}

TEST(ClusterVec, LadderForDimZeroIsTheMemoryLadder) {
  const sim::Cluster cluster(vector_spec());
  const auto mem = cluster.ladder();
  const auto dim0 = cluster.ladder_for_dim(kDimMem);
  EXPECT_EQ(dim0.rungs(), mem.rungs());
}

TEST(ClusterVec, HigherDimLaddersSkipUnprovisionedPools) {
  const sim::Cluster cluster(vector_spec());
  const auto cpu = cluster.ladder_for_dim(kDimCpu);
  EXPECT_EQ(cpu.rungs(), (std::vector<double>{4.0, 8.0, 16.0}));
  // The 16 MiB pool has no GPUs, so it adds no GPU rung.
  const auto gpu = cluster.ladder_for_dim(kDimGpu);
  EXPECT_EQ(gpu.rungs(), (std::vector<double>{2.0, 4.0}));
}

TEST(ClusterVec, EligibilityMatchesScalarAtDimsOne) {
  const sim::Cluster cluster(vector_spec());
  for (const double req : {0.0, 4.0, 16.0, 17.0, 24.0, 32.0, 33.0}) {
    EXPECT_EQ(cluster.eligible_free_vec(ResourceVector(req), 1),
              cluster.eligible_free(req));
    EXPECT_EQ(cluster.eligible_total_vec(ResourceVector(req), 1),
              cluster.eligible_total(req));
  }
}

TEST(ClusterVec, VectorEligibilityFiltersEveryDimension) {
  const sim::Cluster cluster(vector_spec());
  EXPECT_EQ(cluster.eligible_total_vec(ResourceVector(16.0, 4.0, 0.0), 3),
            10u);
  EXPECT_EQ(cluster.eligible_total_vec(ResourceVector(16.0, 8.0, 0.0), 3), 6u);
  EXPECT_EQ(cluster.eligible_total_vec(ResourceVector(16.0, 4.0, 1.0), 3), 6u);
  EXPECT_EQ(cluster.eligible_total_vec(ResourceVector(16.0, 4.0, 4.0), 3), 2u);
  EXPECT_EQ(cluster.eligible_total_vec(ResourceVector(33.0, 0.0, 0.0), 3), 0u);
}

TEST(ClusterVec, AllocateVecTakesOnlyCoveringPools) {
  sim::Cluster cluster(vector_spec());
  // One GPU demanded: the GPU-less 16 MiB pool must be skipped even
  // though its memory qualifies, so best-fit lands on the 24 MiB pool.
  const auto alloc = cluster.allocate_vec(3, ResourceVector(8.0, 2.0, 1.0), 3);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->nodes, 3u);
  EXPECT_EQ(alloc->min_capacity, 24.0);
  EXPECT_EQ(cluster.busy_count(), 3u);
  cluster.release(*alloc);
  EXPECT_EQ(cluster.busy_count(), 0u);
}

TEST(ClusterVec, AllocateVecIsAllOrNothing) {
  sim::Cluster cluster(vector_spec());
  // Only 2 machines have 4 GPUs; asking for 3 must change nothing.
  EXPECT_FALSE(
      cluster.allocate_vec(3, ResourceVector(8.0, 2.0, 4.0), 3).has_value());
  EXPECT_EQ(cluster.busy_count(), 0u);
}

TEST(ClusterVec, AllocateVecMatchesScalarAtDimsOne) {
  sim::Cluster a(vector_spec());
  sim::Cluster b(vector_spec());
  for (const double req : {4.0, 16.0, 20.0, 24.0, 32.0}) {
    const auto scalar = a.allocate(2, req);
    const auto vec = b.allocate_vec(2, ResourceVector(req), 1);
    ASSERT_EQ(scalar.has_value(), vec.has_value()) << "req " << req;
    if (!scalar) continue;
    EXPECT_EQ(scalar->min_capacity, vec->min_capacity);
    EXPECT_EQ(scalar->nodes, vec->nodes);
    ASSERT_EQ(scalar->pool_counts.size(), vec->pool_counts.size());
    for (std::size_t i = 0; i < scalar->pool_counts.size(); ++i) {
      EXPECT_EQ(scalar->pool_counts[i].pool_index,
                vec->pool_counts[i].pool_index);
      EXPECT_EQ(scalar->pool_counts[i].count, vec->pool_counts[i].count);
    }
  }
}

trace::JobRecord sample_job() {
  trace::JobRecord job;
  job.id = 1;
  job.submit = 0.0;
  job.runtime = 100.0;
  job.requested_time = 120.0;
  job.nodes = 2;
  job.requested_mem_mib = 32.0;
  job.used_mem_mib = 10.0;
  job.user = 3;
  job.app = 5;
  return job;
}

TEST(VectorEstimator, RejectsBadDims) {
  core::VectorEstimatorConfig cfg;
  cfg.dims = 0;
  EXPECT_THROW({ core::VectorEstimator e(cfg); }, std::invalid_argument);
  cfg.dims = kMaxResourceDims + 1;
  EXPECT_THROW({ core::VectorEstimator e(cfg); }, std::invalid_argument);
}

TEST(VectorEstimator, DimsOneIsTransparentOverTheScalarEstimator) {
  // The dims=1 VectorEstimator must be bit-for-bit the scalar estimator
  // it wraps: same estimates, same previews, same epochs, through an
  // estimate/feedback sequence that exercises the group state.
  const sim::Cluster cluster(vector_spec());
  core::VectorEstimatorConfig cfg;
  cfg.dims = 1;
  cfg.estimator = "successive-approximation";
  core::VectorEstimator vec(cfg);
  vec.set_ladder(0, cluster.ladder_for_dim(0));
  auto scalar = core::make_estimator("successive-approximation");
  scalar->set_ladder(cluster.ladder());

  trace::JobRecord job = sample_job();
  const ResourceVector requested(job.requested_mem_mib);
  const core::SystemState state;
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ(vec.preview(job, requested, state)[kDimMem],
              scalar->preview(job, state));
    EXPECT_EQ(vec.preview_epoch(job, requested), scalar->preview_epoch(job));
    const ResourceVector vgrant = vec.estimate(job, requested, state);
    const MiB sgrant = scalar->estimate(job, state);
    ASSERT_EQ(vgrant[kDimMem], sgrant) << "round " << round;

    core::VectorFeedback vfb;
    vfb.granted = vgrant;
    vfb.explicit_feedback = true;
    vfb.success = vgrant[kDimMem] + 1e-9 >= job.used_mem_mib;
    vfb.used = ResourceVector(job.used_mem_mib);
    vfb.dim_failure[kDimMem] = !vfb.success;
    vec.feedback(job, requested, vfb);

    core::Feedback sfb;
    sfb.granted_mib = sgrant;
    sfb.success = vfb.success;
    sfb.used_mib = job.used_mem_mib;
    sfb.resource_failure = !vfb.success;
    scalar->feedback(job, sfb);
  }
}

TEST(VectorEstimator, RoutesEachDimensionToItsOwnScalarReference) {
  // dims=2 against two independently-driven scalar estimators: dimension 0
  // sees the record unchanged, dimension 1 sees a shim whose memory fields
  // carry the CPU coordinates.
  const sim::Cluster cluster(vector_spec());
  core::VectorEstimatorConfig cfg;
  cfg.dims = 2;
  cfg.estimator = "last-instance";
  core::VectorEstimator vec(cfg);
  vec.set_ladder(0, cluster.ladder_for_dim(0));
  vec.set_ladder(1, cluster.ladder_for_dim(1));

  auto ref_mem = core::make_estimator("last-instance");
  ref_mem->set_ladder(cluster.ladder_for_dim(0));
  auto ref_cpu = core::make_estimator("last-instance");
  ref_cpu->set_ladder(cluster.ladder_for_dim(1));

  trace::JobRecord job = sample_job();
  const ResourceVector requested(32.0, 8.0);
  trace::JobRecord cpu_job = job;
  cpu_job.requested_mem_mib = requested[kDimCpu];
  cpu_job.used_mem_mib = 0.0;

  const core::SystemState state;
  const ResourceVector used(10.0, 3.0);
  for (int round = 0; round < 4; ++round) {
    const ResourceVector grant = vec.estimate(job, requested, state);
    EXPECT_EQ(grant[kDimMem], ref_mem->estimate(job, state));
    EXPECT_EQ(grant[kDimCpu], ref_cpu->estimate(cpu_job, state));

    core::VectorFeedback vfb;
    vfb.success = true;
    vfb.granted = grant;
    vfb.explicit_feedback = true;
    vfb.used = used;
    vec.feedback(job, requested, vfb);
    core::Feedback mem_fb{true, grant[kDimMem], used[kDimMem], false};
    ref_mem->feedback(job, mem_fb);
    core::Feedback cpu_fb{true, grant[kDimCpu], used[kDimCpu], false};
    ref_cpu->feedback(cpu_job, cpu_fb);
  }
}

TEST(VectorEstimator, PreviewEpochCombinesAcrossDims) {
  core::VectorEstimatorConfig cfg;
  cfg.dims = 3;
  cfg.estimator = "none";
  const core::VectorEstimator vec(cfg);
  const trace::JobRecord job = sample_job();
  EXPECT_TRUE(vec.preview_epoch(job, ResourceVector(32.0, 4.0, 1.0))
                  .has_value());

  // An estimator that declines to memoize in any dimension poisons the
  // combined epoch.
  core::VectorEstimatorConfig ridge;
  ridge.dims = 3;
  ridge.estimator = "regression-ridge";
  const core::VectorEstimator no_memo(ridge);
  EXPECT_FALSE(no_memo.preview_epoch(job, ResourceVector(32.0, 4.0, 1.0))
                   .has_value());
}

TEST(VectorEstimator, ReportsExplicitFeedbackRequirement) {
  core::VectorEstimatorConfig cfg;
  cfg.dims = 1;
  cfg.estimator = "quantile";
  EXPECT_TRUE(core::VectorEstimator(cfg).requires_explicit_feedback());
  cfg.estimator = "successive-approximation";
  EXPECT_FALSE(core::VectorEstimator(cfg).requires_explicit_feedback());
}

TEST(Scenario, ScenarioFromMirrorsMemoryAndStaysFlat) {
  const trace::Workload w = trace::generate_cm5_small(17, 300);
  const trace::ScenarioWorkload scenario = trace::scenario_from(w);
  EXPECT_EQ(scenario.dims, 1u);
  ASSERT_EQ(scenario.mr.size(), w.jobs.size());
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    EXPECT_EQ(scenario.mr[i].requested[kDimMem], w.jobs[i].requested_mem_mib);
    EXPECT_EQ(scenario.mr[i].used_peak[kDimMem], w.jobs[i].used_mem_mib);
    EXPECT_EQ(scenario.mr[i].requested[kDimCpu], 0.0);
    EXPECT_EQ(scenario.mr[i].requested[kDimGpu], 0.0);
    EXPECT_EQ(scenario.mr[i].profile.shape, trace::FootprintShape::kFlat);
  }
}

}  // namespace
}  // namespace resmatch
