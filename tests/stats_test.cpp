// Unit tests for the stats substrate: summaries, histograms, regression,
// percentiles — including the numeric building blocks behind the paper's
// Figure 1 (log-linear fit, fraction >= 2x) and §3.2 (R² = 0.991 fit).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/percentile.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace resmatch::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleSampleVarianceZero) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(Summary, MergeEqualsSequential) {
  Summary all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 50 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(KahanSum, CompensatesSmallTerms) {
  KahanSum k;
  k.add(1e16);
  for (int i = 0; i < 10000; ++i) k.add(1.0);
  EXPECT_DOUBLE_EQ(k.value(), 1e16 + 10000.0);
}

TEST(LinearHistogram, BinsAndEdges) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(2.0);
  h.add(9.9);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 1u);
  EXPECT_EQ(bins[4].count, 1u);
  EXPECT_DOUBLE_EQ(bins[0].lower, 0.0);
  EXPECT_DOUBLE_EQ(bins[4].upper, 10.0);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, ClampsOutOfRange) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 2u);
  const auto bins = h.bins();
  EXPECT_EQ(bins.front().count, 1u);
  EXPECT_EQ(bins.back().count, 1u);
}

TEST(LinearHistogram, FractionAtLeast) {
  LinearHistogram h(1.0, 11.0, 10);  // unit bins 1..11
  for (double x : {1.5, 2.5, 3.5, 4.5}) h.add(x);
  EXPECT_DOUBLE_EQ(h.fraction_at_least(2.0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction_at_least(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_least(5.0), 0.0);
}

TEST(LinearHistogram, FractionAtLeastCountsOverflowOnce) {
  LinearHistogram h(1.0, 5.0, 4);
  h.add(100.0);  // overflow -> folded into last bin
  h.add(1.5);
  EXPECT_DOUBLE_EQ(h.fraction_at_least(2.0), 0.5);
}

TEST(LogHistogram, GeometricEdges) {
  LogHistogram h(1.0, 2.0, 4);  // [1,2) [2,4) [4,8) [8,16)
  h.add(1.5);
  h.add(3.0);
  h.add(6.0);
  h.add(12.0);
  const auto bins = h.bins();
  for (const auto& bin : bins) EXPECT_EQ(bin.count, 1u);
  EXPECT_DOUBLE_EQ(bins[2].lower, 4.0);
  EXPECT_DOUBLE_EQ(bins[2].upper, 8.0);
}

TEST(LogHistogram, ClampsBelowAndAbove) {
  LogHistogram h(1.0, 2.0, 3);
  h.add(0.1);
  h.add(1000.0);
  const auto bins = h.bins();
  EXPECT_EQ(bins.front().count, 1u);
  EXPECT_EQ(bins.back().count, 1u);
}

TEST(IntegerFrequency, SortedItems) {
  IntegerFrequency f;
  f.add(3);
  f.add(1);
  f.add(3);
  const auto items = f.items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, 1);
  EXPECT_EQ(items[0].second, 1u);
  EXPECT_EQ(items[1].first, 3);
  EXPECT_EQ(items[1].second, 2u);
  EXPECT_EQ(f.total(), 3u);
}

TEST(FitLinear, ExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_TRUE(fit.valid);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoisyLineHasSubUnityR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 + 0.5 * i + ((i % 2 == 0) ? 2.0 : -2.0));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.05);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.8);
}

TEST(FitLinear, DegenerateInputs) {
  // Fewer than two points, or no x variance: no line exists, valid=false.
  EXPECT_EQ(fit_linear({}, {}).n, 0u);
  EXPECT_FALSE(fit_linear({}, {}).valid);
  EXPECT_EQ(fit_linear({1.0}, {2.0}).n, 1u);
  EXPECT_FALSE(fit_linear({1.0}, {2.0}).valid);
  // Vertical data: all x equal.
  const LinearFit fit = fit_linear({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_FALSE(fit.valid);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(FitLinear, ConstantYIsNotAPerfectFit) {
  // Regression: syy == 0 used to report R^2 = 1.0, so a flat utilization
  // curve claimed "perfect correlation" in fig8. Constant y carries no
  // variance to explain — R^2 is 0 by convention, and the horizontal fit
  // itself stays valid.
  const LinearFit fit = fit_linear({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0});
  EXPECT_TRUE(fit.valid);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
}

TEST(RidgeRegression, RecoversLinearModel) {
  RidgeRegression model(2, 1e-9);
  // y = 2*x0 - 3*x1 + 4
  for (int i = 0; i < 100; ++i) {
    const double x0 = std::sin(i * 0.7) * 5;
    const double x1 = std::cos(i * 1.3) * 2;
    model.add({x0, x1}, 2 * x0 - 3 * x1 + 4);
  }
  ASSERT_TRUE(model.fit());
  EXPECT_NEAR(model.predict({1.0, 1.0}), 3.0, 1e-6);
  EXPECT_NEAR(model.predict({0.0, 0.0}), 4.0, 1e-6);
  EXPECT_EQ(model.observations(), 100u);
}

TEST(RidgeRegression, FailsWithNoData) {
  RidgeRegression model(2);
  EXPECT_FALSE(model.fit());
}

TEST(RidgeRegression, DampingHandlesCollinearFeatures) {
  RidgeRegression model(2, 1e-3);
  // x1 is an exact copy of x0: XtX is singular without damping.
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.1;
    model.add({x, x}, 3 * x);
  }
  ASSERT_TRUE(model.fit());
  EXPECT_NEAR(model.predict({1.0, 1.0}), 3.0, 0.05);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  PercentileTracker p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(p.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(p.percentile(95), 95.05, 1e-9);
}

TEST(Percentile, EmptyReturnsZero) {
  PercentileTracker p;
  EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
}

TEST(Percentile, AddAfterQueryResorts) {
  PercentileTracker p;
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
  p.add(0.0);
  p.add(20.0);
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 0.0);
}

}  // namespace
}  // namespace resmatch::stats
