// Tests for the Tsafrir-style runtime predictor and its simulator wiring.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/runtime_predictor.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/transforms.hpp"

namespace resmatch::core {
namespace {

trace::JobRecord make_job(UserId user, Seconds runtime, Seconds estimate) {
  trace::JobRecord j;
  j.id = 1;
  j.user = user;
  j.app = 1;
  j.requested_mem_mib = 32;
  j.used_mem_mib = 8;
  j.nodes = 4;
  j.runtime = runtime;
  j.requested_time = estimate;
  return j;
}

TEST(RuntimePredictor, FallsBackToUserEstimate) {
  RuntimePredictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(make_job(1, 100, 900)), 900.0);
}

TEST(RuntimePredictor, FallsBackToRuntimeWhenNoEstimate) {
  RuntimePredictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(make_job(1, 100, 0)), 100.0);
}

TEST(RuntimePredictor, AveragesLastTwoRuntimes) {
  RuntimePredictor predictor;  // window = 2 (Tsafrir)
  const auto job = make_job(1, 100, 900);
  predictor.observe(job, 100.0);
  EXPECT_DOUBLE_EQ(predictor.predict(job), 100.0);
  predictor.observe(job, 200.0);
  EXPECT_DOUBLE_EQ(predictor.predict(job), 150.0);
  predictor.observe(job, 400.0);  // window slides: {200, 400}
  EXPECT_DOUBLE_EQ(predictor.predict(job), 300.0);
}

TEST(RuntimePredictor, InflationAddsHeadroom) {
  RuntimePredictorConfig cfg;
  cfg.inflation = 1.5;
  RuntimePredictor predictor(cfg);
  const auto job = make_job(1, 100, 900);
  predictor.observe(job, 100.0);
  EXPECT_DOUBLE_EQ(predictor.predict(job), 150.0);
}

TEST(RuntimePredictor, GroupsAreIndependent) {
  RuntimePredictor predictor;
  const auto a = make_job(1, 100, 900);
  const auto b = make_job(2, 100, 500);
  predictor.observe(a, 50.0);
  EXPECT_DOUBLE_EQ(predictor.predict(a), 50.0);
  EXPECT_DOUBLE_EQ(predictor.predict(b), 500.0);  // untouched group
  EXPECT_EQ(predictor.group_count(), 1u);
}

TEST(RuntimePredictor, AccuracyBookkeeping) {
  RuntimePredictor predictor;
  predictor.record_accuracy(100.0, 80.0);   // over-prediction: fine
  predictor.record_accuracy(100.0, 150.0);  // under-prediction
  EXPECT_EQ(predictor.predictions_scored(), 2u);
  EXPECT_DOUBLE_EQ(predictor.underprediction_fraction(), 0.5);
}

TEST(RuntimePredictor, PredictionsConvergeForStableGroup) {
  RuntimePredictor predictor;
  const auto job = make_job(3, 300, 3000);  // user estimates 10x too long
  for (int i = 0; i < 5; ++i) predictor.observe(job, 300.0);
  EXPECT_DOUBLE_EQ(predictor.predict(job), 300.0);
}

TEST(RuntimePredictorSim, FeedsBackfillingAndObservesCompletions) {
  // A workload whose user estimates are wildly inflated: learned
  // predictions should enable at least as much backfilling as estimates.
  trace::Workload w;
  util::Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    trace::JobRecord j;
    j.id = i + 1;
    j.user = i % 6;
    j.app = i % 3;
    j.submit = i * 30.0;
    j.runtime = 100.0 + (i % 4) * 50.0;
    j.requested_time = j.runtime * 10.0;  // gross over-estimate
    j.nodes = 2 + (i % 3) * 2;
    j.requested_mem_mib = 32;
    j.used_mem_mib = 8;
    w.jobs.push_back(j);
  }
  w = trace::sort_by_submit(std::move(w));

  auto run = [&](core::RuntimePredictor* predictor) {
    auto est = core::make_estimator("none");
    auto pol = sched::make_policy("easy-backfill");
    sim::SimulationConfig cfg;
    cfg.runtime_predictor = predictor;
    return sim::simulate(w, {{32.0, 8}}, *est, *pol, cfg);
  };

  const auto baseline = run(nullptr);
  core::RuntimePredictor predictor;
  const auto predicted = run(&predictor);

  EXPECT_EQ(baseline.completed, 400u);
  EXPECT_EQ(predicted.completed, 400u);
  // The predictor saw completions and scored its predictions.
  EXPECT_GT(predictor.group_count(), 0u);
  EXPECT_GT(predictor.predictions_scored(), 300u);
  // Responsiveness stays in the same ballpark. (Accurate predictions do
  // NOT uniformly improve EASY backfilling — shorter expected ends also
  // pull the head's shadow time earlier, blocking some backfills; the
  // literature on estimate inflation documents exactly this ambiguity.)
  EXPECT_LE(predicted.mean_slowdown, baseline.mean_slowdown * 1.3);
  // Window-2 averages under-predict variable groups some of the time,
  // but the majority of predictions must be safe.
  EXPECT_LT(predictor.underprediction_fraction(), 0.6);
}

}  // namespace
}  // namespace resmatch::core
