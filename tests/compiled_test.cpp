// Compiled-matcher correctness: the bytecode path must be bit-identical
// to the tree-walking evaluator — unit cases for each hazard the
// compiler handles (impure cells, bare-ref fallthrough, depth caps,
// requirement groups), then a seeded differential fuzz pinning
// rank_matches_compiled() to rank_matches() on random ad populations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "match/classad.hpp"
#include "match/compiled.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace resmatch::match {
namespace {

ClassAd machine(double memory, double cpus, const std::string& arch) {
  ClassAd m;
  m.set("memory", memory);
  m.set("cpus", cpus);
  m.set("arch", Value(arch));
  return m;
}

TEST(CompiledMatcher, MatchesTreeOnSimplePopulation) {
  ClassAd job;
  job.set("req_memory", 16.0);
  job.set_expr("requirements", "other.memory >= my.req_memory");
  job.set_expr("rank", "other.memory");

  std::vector<ClassAd> machines;
  for (double mem : {4.0, 64.0, 16.0, 32.0, 8.0, 16.0}) {
    machines.push_back(machine(mem, 4.0, "x86_64"));
  }
  const MachineTable table = MachineTable::build(machines);
  EXPECT_EQ(table.rows(), machines.size());
  EXPECT_EQ(table.impure_cells(), 0u);

  CompiledMatcher::Stats stats;
  const auto compiled = rank_matches_compiled(job, table, &stats);
  const auto tree = rank_matches(job, machines);
  EXPECT_EQ(compiled, tree);
  EXPECT_EQ(stats.fallback_rows, 0u);
  // memory >= 16 lowers to a prefilter term: the 4- and 8-MiB rows are
  // rejected by the vector scan, the rest by bytecode.
  EXPECT_EQ(stats.prefiltered_rows, 2u);
  EXPECT_EQ(stats.compiled_rows + stats.prefiltered_rows, machines.size());
}

TEST(CompiledMatcher, MachineRequirementsGroupsAreHonored) {
  ClassAd job;
  job.set("owner_prio", 3.0);
  job.set_expr("requirements", "other.memory >= 8");
  job.set_expr("rank", "other.memory");

  std::vector<ClassAd> machines;
  // Group A: picky machines that also constrain the request.
  for (double mem : {8.0, 32.0}) {
    ClassAd m = machine(mem, 2.0, "arm64");
    m.set_expr("requirements", "other.owner_prio >= 2");
    machines.push_back(m);
  }
  // Group B: machines that reject this request.
  {
    ClassAd m = machine(64.0, 8.0, "x86_64");
    m.set_expr("requirements", "other.owner_prio >= 5");
    machines.push_back(m);
  }
  // Group 0: no requirements at all.
  machines.push_back(machine(16.0, 4.0, "x86_64"));
  // Too little memory: fails the job's requirements.
  machines.push_back(machine(4.0, 1.0, "x86_64"));

  const MachineTable table = MachineTable::build(machines);
  EXPECT_EQ(table.group_count(), 3u);  // group 0 + two distinct sources
  EXPECT_EQ(rank_matches_compiled(job, table), rank_matches(job, machines));
}

TEST(CompiledMatcher, ImpureCellFallsBackPerRow) {
  ClassAd job;
  job.set("target_quality", 10.0);
  job.set_expr("requirements", "other.quality >= 3");

  std::vector<ClassAd> machines;
  // quality depends on the REQUEST — not materializable ahead of match.
  {
    ClassAd m = machine(16.0, 4.0, "x86_64");
    m.set_expr("quality", "other.target_quality / 2");
    machines.push_back(m);
  }
  // quality is a plain constant — compiled path serves this row.
  {
    ClassAd m = machine(16.0, 4.0, "x86_64");
    m.set("quality", 7.0);
    machines.push_back(m);
  }
  // quality missing entirely: requirements are UNDEFINED, no match.
  machines.push_back(machine(16.0, 4.0, "x86_64"));

  const MachineTable table = MachineTable::build(machines);
  EXPECT_EQ(table.impure_cells(), 1u);

  CompiledMatcher::Stats stats;
  const auto compiled = rank_matches_compiled(job, table, &stats);
  EXPECT_EQ(compiled, rank_matches(job, machines));
  EXPECT_EQ(stats.fallback_rows, 1u);  // only the impure row
  EXPECT_EQ(stats.compiled_rows, 2u);
}

TEST(CompiledMatcher, BareRefFallsThroughToRequest) {
  // Machine requirements use a bare name only the REQUEST defines: the
  // Condor lookup order (self first, then other) must survive
  // compilation on both sides.
  ClassAd job;
  job.set("pool", Value(std::string("prod")));
  job.set_expr("requirements", "other.memory >= 8");

  std::vector<ClassAd> machines;
  {
    // Bare `pool` undefined here -> falls through to the request.
    ClassAd m = machine(16.0, 4.0, "x86_64");
    m.set_expr("requirements", "pool == \"prod\"");
    machines.push_back(m);
  }
  {
    // Bare `pool` defined by the machine -> self wins, request ignored.
    ClassAd m = machine(16.0, 4.0, "x86_64");
    m.set("pool", Value(std::string("dev")));
    m.set_expr("requirements", "pool == \"prod\"");
    machines.push_back(m);
  }
  const MachineTable table = MachineTable::build(machines);
  const auto compiled = rank_matches_compiled(job, table);
  EXPECT_EQ(compiled, rank_matches(job, machines));
  ASSERT_EQ(compiled.size(), 1u);
  EXPECT_EQ(compiled[0], 0u);
}

TEST(CompiledMatcher, ReferenceCycleFallsBackAndStillAgrees) {
  ClassAd job;
  job.set_expr("requirements", "other.a > 0");

  std::vector<ClassAd> machines;
  {
    ClassAd m = machine(16.0, 4.0, "x86_64");
    m.set_expr("a", "b + 1");
    m.set_expr("b", "a + 1");  // cycle: tree evaluates to UNDEFINED
    machines.push_back(m);
  }
  machines.push_back(machine(16.0, 4.0, "x86_64"));
  const MachineTable table = MachineTable::build(machines);
  EXPECT_GE(table.impure_cells(), 2u);
  EXPECT_EQ(rank_matches_compiled(job, table), rank_matches(job, machines));
}

TEST(CompiledMatcher, NoRequirementsOrRankMatchesEverything) {
  ClassAd job;  // empty request: everything matches at rank 0
  std::vector<ClassAd> machines;
  for (double mem : {1.0, 2.0, 3.0}) {
    machines.push_back(machine(mem, 1.0, "x86_64"));
  }
  const MachineTable table = MachineTable::build(machines);
  CompiledMatcher::Stats stats;
  const auto compiled = rank_matches_compiled(job, table, &stats);
  EXPECT_EQ(compiled, rank_matches(job, machines));
  EXPECT_EQ(compiled.size(), machines.size());
  // Rank ties keep row order.
  EXPECT_EQ(compiled, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(stats.fallback_rows, 0u);
}

TEST(CompiledMatcher, UncompilableProgramFallsBackWholesale) {
  // A request requirements chain deeper than the compiler's inline cap
  // must be served by the tree walker — and still agree with it.
  ClassAd job;
  for (int i = 0; i < 40; ++i) {
    job.set_expr(util::format("c%d", i), util::format("c%d + 1", i + 1));
  }
  job.set("c40", 1.0);
  job.set_expr("requirements", "c0 > 0 && other.memory >= 8");

  std::vector<ClassAd> machines;
  machines.push_back(machine(16.0, 4.0, "x86_64"));
  machines.push_back(machine(4.0, 1.0, "x86_64"));

  const MachineTable table = MachineTable::build(machines);
  CompiledMatcher matcher(job, table);
  EXPECT_FALSE(matcher.fully_compiled());

  CompiledMatcher::Stats stats;
  EXPECT_EQ(rank_matches_compiled(job, table, &stats),
            rank_matches(job, machines));
  EXPECT_EQ(stats.compiled_rows, 0u);
  // The `other.memory >= 8` conjunct still prefilters the 4-MiB row —
  // sound even though the whole program is uncompilable, because a FALSE
  // conjunct caps the tri-state && at non-TRUE no matter how the rest of
  // the chain evaluates. Only the surviving row pays the tree walk.
  EXPECT_EQ(stats.prefiltered_rows, 1u);
  EXPECT_EQ(stats.fallback_rows, machines.size() - 1);
}

TEST(CompiledMatcher, PrefilterExtractsNumericConjuncts) {
  ClassAd job;
  job.set("req_memory", 16.0);
  // Three conjuncts: two numeric (prefilterable — the first via the
  // request-side inline of my.req_memory), one string (left for full
  // evaluation).
  job.set_expr("requirements",
               "other.memory >= my.req_memory && other.cpus >= 2 && "
               "other.arch == \"x86_64\"");
  job.set_expr("rank", "other.memory");

  std::vector<ClassAd> machines;
  for (double mem : {4.0, 64.0, 8.0, 32.0, 16.0, 2.0}) {
    machines.push_back(machine(mem, mem >= 16.0 ? 4.0 : 1.0, "x86_64"));
  }
  const MachineTable table = MachineTable::build(machines);
  CompiledMatcher matcher(job, table);
  EXPECT_EQ(matcher.prefilter_term_count(), 2u);

  const auto ranked = matcher.rank_all();
  EXPECT_EQ(ranked, rank_matches(job, machines));
  const CompiledMatcher::Stats& stats = matcher.stats();
  // memory < 16 or cpus < 2 rows never reach per-row evaluation.
  EXPECT_EQ(stats.prefiltered_rows, 3u);
  EXPECT_EQ(stats.compiled_rows + stats.fallback_rows +
                stats.prefiltered_rows,
            machines.size());
}

TEST(CompiledMatcher, PrefilterNormalizesLiteralOnLeft) {
  ClassAd job;
  job.set_expr("requirements", "16 <= other.memory && 8.0 > other.cpus");

  std::vector<ClassAd> machines;
  machines.push_back(machine(32.0, 4.0, "x86_64"));   // match
  machines.push_back(machine(8.0, 4.0, "x86_64"));    // memory too small
  machines.push_back(machine(32.0, 12.0, "x86_64"));  // cpus too large
  const MachineTable table = MachineTable::build(machines);
  CompiledMatcher matcher(job, table);
  EXPECT_EQ(matcher.prefilter_term_count(), 2u);
  EXPECT_EQ(matcher.rank_all(), rank_matches(job, machines));
  EXPECT_EQ(matcher.stats().prefiltered_rows, 2u);
}

TEST(CompiledMatcher, PrefilterNeverRejectsNonNumericCells) {
  // The scanned column holds an impure cell (value depends on the
  // request and is TRUE-worthy inside the match), a string cell, and a
  // missing cell: none may be prefilter-rejected, and the results must
  // still equal the tree's.
  ClassAd job;
  job.set("req_memory", 16.0);
  job.set_expr("requirements", "other.memory >= 16");

  std::vector<ClassAd> machines;
  {
    ClassAd m;  // memory = 64 inside the match, but impure -> fallback
    m.set_expr("memory", "other.req_memory * 4");
    m.set("cpus", 4.0);
    machines.push_back(m);
  }
  {
    ClassAd m;  // memory is a string: requirements UNDEFINED, no match
    m.set("memory", Value(std::string("lots")));
    machines.push_back(m);
  }
  {
    ClassAd m;  // no memory at all: UNDEFINED, no match
    m.set("cpus", 2.0);
    machines.push_back(m);
  }
  machines.push_back(machine(8.0, 1.0, "x86_64"));  // numeric, too small

  const MachineTable table = MachineTable::build(machines);
  CompiledMatcher matcher(job, table);
  ASSERT_EQ(matcher.prefilter_term_count(), 1u);
  EXPECT_EQ(matcher.rank_all(), rank_matches(job, machines));
  // Only the pure-numeric-false row was prefiltered; the impure row went
  // through the tree fallback and matched.
  EXPECT_EQ(matcher.stats().prefiltered_rows, 1u);
  EXPECT_EQ(matcher.stats().fallback_rows, 1u);
}

TEST(CompiledMatcher, CompleteNumericRequirementsDecidedByScan) {
  // Every conjunct lowers to a term: the scan both rejects and ACCEPTS.
  // Rows with non-numeric / impure / missing cells stay undecided and go
  // through full evaluation; everything must still equal the tree.
  ClassAd job;
  job.set_expr("requirements", "other.memory >= 16 && other.cpus >= 2");
  job.set_expr("rank", "other.memory");

  std::vector<ClassAd> machines;
  machines.push_back(machine(32.0, 4.0, "x86_64"));  // accepted by scan
  machines.push_back(machine(8.0, 4.0, "x86_64"));   // rejected by scan
  {
    ClassAd m;  // memory impure (TRUE inside the match): undecided row
    m.set_expr("memory", "other.min_memory + 48");
    m.set("cpus", 8.0);
    machines.push_back(m);
  }
  {
    ClassAd m;  // cpus is a string: undecided, requirements UNDEFINED
    m.set("memory", 64.0);
    m.set("cpus", Value(std::string("four")));
    machines.push_back(m);
  }
  job.set("min_memory", 16.0);

  const MachineTable table = MachineTable::build(machines);
  CompiledMatcher matcher(job, table);
  ASSERT_EQ(matcher.prefilter_term_count(), 2u);
  EXPECT_EQ(matcher.rank_all(), rank_matches(job, machines));
  EXPECT_EQ(matcher.stats().prefiltered_rows, 1u);
  EXPECT_EQ(matcher.stats().fallback_rows, 1u);  // the impure row
}

TEST(CompiledMatcher, PrefilterScalarKernelAgreesWithSimd) {
  util::Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    ClassAd job;
    job.set_expr("requirements",
                 "other.memory >= 16 && other.cpus < 6 && other.load != "
                 "0.5");
    job.set_expr("rank", "other.memory - other.load");
    // Odd population size exercises the AVX2 tail; random non-numeric
    // holes exercise the mask.
    std::vector<ClassAd> machines(
        static_cast<std::size_t>(rng.uniform_int(1, 70)));
    for (ClassAd& m : machines) {
      if (rng.bernoulli(0.9)) {
        m.set("memory", static_cast<double>(rng.uniform_int(1, 64)));
      }
      if (rng.bernoulli(0.8)) {
        m.set("cpus", static_cast<double>(rng.uniform_int(1, 16)));
      } else if (rng.bernoulli(0.5)) {
        m.set("cpus", Value(std::string("many")));
      }
      m.set("load", static_cast<double>(rng.uniform_int(0, 10)) / 10.0);
    }
    // All three columns must exist for all three terms to extract.
    machines.front().set("memory", 32.0);
    machines.front().set("cpus", 4.0);
    const MachineTable table = MachineTable::build(machines);
    const auto tree = rank_matches(job, machines);

    CompiledMatcher simd(job, table);
    ASSERT_EQ(simd.prefilter_term_count(), 3u);
    CompiledMatcher scalar(job, table);
    scalar.set_simd_enabled(false);

    EXPECT_EQ(simd.rank_all(), tree) << "round " << round;
    EXPECT_EQ(scalar.rank_all(), tree) << "round " << round;
    EXPECT_EQ(simd.stats().prefiltered_rows,
              scalar.stats().prefiltered_rows);
  }
}

/// Random well-formed expression source over a shared attribute
/// vocabulary, same shape as property_match_test's generator.
class ExprGenerator {
 public:
  explicit ExprGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string expression(int depth = 0) {
    if (depth >= 4 || rng_.bernoulli(0.3)) return atom();
    switch (rng_.uniform_int(0, 5)) {
      case 0:
        return "(" + expression(depth + 1) + " " + binary_op() + " " +
               expression(depth + 1) + ")";
      case 1:
        return "!(" + expression(depth + 1) + ")";
      case 2:
        return "-(" + expression(depth + 1) + ")";
      case 3:
        return "(" + expression(depth + 1) + " ? " + expression(depth + 1) +
               " : " + expression(depth + 1) + ")";
      case 4:
        return function_call(depth);
      default:
        return atom();
    }
  }

 private:
  std::string atom() {
    switch (rng_.uniform_int(0, 4)) {
      case 0:
        return util::format_number(rng_.uniform(-100.0, 100.0), 3);
      case 1:
        return rng_.bernoulli(0.5) ? "true" : "false";
      case 2:
        return "undefined";
      case 3: {
        static const char* names[] = {"memory", "cpus", "arch", "req_memory",
                                      "x"};
        std::string base = names[rng_.uniform_int(0, 4)];
        const auto scope = rng_.uniform_int(0, 2);
        if (scope == 1) return "my." + base;
        if (scope == 2) return "other." + base;
        return base;
      }
      default:
        return "\"s" +
               util::format("%d", static_cast<int>(rng_.uniform_int(0, 9))) +
               "\"";
    }
  }

  std::string binary_op() {
    static const char* ops[] = {"+",  "-",  "*",  "/",  "%",  "<",
                                "<=", ">",  ">=", "==", "!=", "&&",
                                "||"};
    return ops[rng_.uniform_int(0, 12)];
  }

  std::string function_call(int depth) {
    static const char* fns1[] = {"floor", "ceil", "abs", "isUndefined"};
    static const char* fns2[] = {"min", "max", "pow"};
    if (rng_.bernoulli(0.5)) {
      return std::string(fns1[rng_.uniform_int(0, 3)]) + "(" +
             expression(depth + 1) + ")";
    }
    return std::string(fns2[rng_.uniform_int(0, 2)]) + "(" +
           expression(depth + 1) + ", " + expression(depth + 1) + ")";
  }

  util::Rng rng_;
};

class CompiledDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledDifferential, RankingsAreBitIdenticalToTree) {
  util::Rng rng(GetParam());
  ExprGenerator gen(GetParam() ^ 0xC0117ULL);
  for (int round = 0; round < 60; ++round) {
    ClassAd job;
    job.set("req_memory", static_cast<double>(rng.uniform_int(1, 64)));
    job.set("x", rng.uniform(-10.0, 10.0));
    ASSERT_TRUE(job.set_expr("requirements", gen.expression()));
    if (rng.bernoulli(0.8)) {
      ASSERT_TRUE(job.set_expr("rank", gen.expression()));
    }

    std::vector<ClassAd> machines(
        static_cast<std::size_t>(rng.uniform_int(1, 16)));
    for (ClassAd& m : machines) {
      m.set("memory", static_cast<double>(rng.uniform_int(1, 64)));
      if (rng.bernoulli(0.7)) m.set("cpus", static_cast<double>(
                                                rng.uniform_int(1, 16)));
      if (rng.bernoulli(0.5)) {
        m.set("arch", Value(rng.bernoulli(0.5) ? std::string("x86_64")
                                               : std::string("arm64")));
      }
      // Some machines carry computed attributes — pure, impure (other.
      // refs / bare fallthroughs), or arbitrary random expressions.
      if (rng.bernoulli(0.4)) {
        ASSERT_TRUE(m.set_expr("x", gen.expression()));
      }
      if (rng.bernoulli(0.5)) {
        ASSERT_TRUE(m.set_expr("requirements", gen.expression()));
      }
    }

    const MachineTable table = MachineTable::build(machines);
    const auto tree = rank_matches(job, machines);
    const auto compiled = rank_matches_compiled(job, table);
    ASSERT_EQ(compiled, tree)
        << "seed=" << GetParam() << " round=" << round
        << " requirements=" << to_string(*(*job.find("requirements")));
    // Same with the prefilter's scalar kernel: the fuzz's random `&&`
    // chains of numeric comparisons exercise term extraction, and both
    // kernels must agree with the tree (and each other) everywhere.
    CompiledMatcher scalar(job, table);
    scalar.set_simd_enabled(false);
    ASSERT_EQ(scalar.rank_all(), tree)
        << "seed=" << GetParam() << " round=" << round
        << " requirements=" << to_string(*(*job.find("requirements")));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledDifferential,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace resmatch::match
