// Unit tests for the heterogeneous cluster model: pool bookkeeping,
// best/worst-fit allocation, and the capacity ladder it exports.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace resmatch::sim {
namespace {

TEST(ClusterSpecHelper, Cm5Heterogeneous) {
  const ClusterSpec spec = cm5_heterogeneous(24.0);
  ASSERT_EQ(spec.size(), 2u);
  EXPECT_DOUBLE_EQ(spec[0].capacity, 32.0);
  EXPECT_EQ(spec[0].count, 512u);
  EXPECT_DOUBLE_EQ(spec[1].capacity, 24.0);
  EXPECT_EQ(spec[1].count, 512u);
}

TEST(Cluster, CountsAndLadder) {
  Cluster cluster({{32.0, 4}, {8.0, 2}, {24.0, 3}});
  EXPECT_EQ(cluster.machine_count(), 9u);
  EXPECT_EQ(cluster.eligible_total(0.0), 9u);
  EXPECT_EQ(cluster.eligible_total(10.0), 7u);
  EXPECT_EQ(cluster.eligible_total(32.0), 4u);
  EXPECT_EQ(cluster.eligible_total(33.0), 0u);
  const auto ladder = cluster.ladder();
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_DOUBLE_EQ(ladder.round_up(9.0), 24.0);
}

TEST(Cluster, MergesSameCapacityPools) {
  Cluster cluster({{32.0, 4}, {32.0, 6}});
  EXPECT_EQ(cluster.machine_count(), 10u);
  EXPECT_EQ(cluster.ladder().size(), 1u);
}

TEST(Cluster, RejectsInvalidSpecs) {
  EXPECT_THROW(Cluster({}), std::invalid_argument);
  EXPECT_THROW(Cluster({{0.0, 4}}), std::invalid_argument);
  EXPECT_THROW(Cluster({{-1.0, 4}}), std::invalid_argument);
}

TEST(Cluster, BestFitPrefersSmallMachines) {
  Cluster cluster({{32.0, 4}, {8.0, 4}}, AllocationPolicy::kBestFit);
  const auto alloc = cluster.allocate(2, 8.0);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_DOUBLE_EQ(alloc->min_capacity, 8.0);
  EXPECT_EQ(cluster.eligible_free(32.0), 4u);  // big pool untouched
  EXPECT_EQ(cluster.eligible_free(0.0), 6u);
}

TEST(Cluster, WorstFitPrefersBigMachines) {
  Cluster cluster({{32.0, 4}, {8.0, 4}}, AllocationPolicy::kWorstFit);
  const auto alloc = cluster.allocate(2, 8.0);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_DOUBLE_EQ(alloc->min_capacity, 32.0);
  EXPECT_EQ(cluster.eligible_free(32.0), 2u);
}

TEST(Cluster, AllocationSpansPoolsWhenNeeded) {
  Cluster cluster({{32.0, 3}, {8.0, 2}});
  const auto alloc = cluster.allocate(4, 8.0);
  ASSERT_TRUE(alloc.has_value());
  // Best fit takes both 8 MiB machines plus two 32 MiB ones.
  EXPECT_DOUBLE_EQ(alloc->min_capacity, 8.0);
  EXPECT_EQ(cluster.eligible_free(0.0), 1u);
  EXPECT_EQ(cluster.busy_count(), 4u);
}

TEST(Cluster, RespectsCapacityFloor) {
  Cluster cluster({{32.0, 2}, {8.0, 10}});
  // Needs 3 machines at >= 16: only 2 exist.
  EXPECT_FALSE(cluster.allocate(3, 16.0).has_value());
  // Nothing was partially taken.
  EXPECT_EQ(cluster.busy_count(), 0u);
  EXPECT_EQ(cluster.eligible_free(0.0), 12u);
}

TEST(Cluster, ReleaseRestoresFreeCounts) {
  Cluster cluster({{32.0, 4}, {8.0, 4}});
  const auto alloc = cluster.allocate(6, 8.0);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(cluster.busy_count(), 6u);
  EXPECT_DOUBLE_EQ(cluster.busy_fraction(), 0.75);
  cluster.release(*alloc);
  EXPECT_EQ(cluster.busy_count(), 0u);
  EXPECT_EQ(cluster.eligible_free(0.0), 8u);
}

TEST(Cluster, ZeroNodeAllocationRejected) {
  Cluster cluster({{32.0, 4}});
  EXPECT_FALSE(cluster.allocate(0, 8.0).has_value());
}

TEST(Cluster, ExhaustiveAllocateReleaseCycle) {
  // Property: any interleaving of allocations and releases conserves
  // machines.
  Cluster cluster({{32.0, 5}, {24.0, 5}, {8.0, 5}});
  std::vector<Allocation> held;
  for (int round = 0; round < 20; ++round) {
    const auto alloc =
        cluster.allocate(1 + round % 4, round % 2 ? 24.0 : 8.0);
    if (alloc) held.push_back(*alloc);
    if (round % 3 == 2 && !held.empty()) {
      cluster.release(held.back());
      held.pop_back();
    }
    std::size_t busy = 0;
    for (const auto& a : held) busy += a.nodes;
    ASSERT_EQ(cluster.busy_count(), busy);
    ASSERT_EQ(cluster.eligible_free(0.0), 15u - busy);
  }
}

// --- incremental pool counters vs snapshot() ----------------------------

/// The counters must agree with the numbers snapshot() derives, at every
/// point in any operation sequence.
void expect_counters_match_snapshot(const Cluster& cluster) {
  const auto snaps = cluster.snapshot();
  ASSERT_EQ(cluster.pool_count(), snaps.size());
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const auto counters = cluster.pool_counters(i);
    EXPECT_DOUBLE_EQ(counters.capacity, snaps[i].capacity);
    EXPECT_EQ(counters.busy, snaps[i].busy);
    EXPECT_EQ(counters.present, snaps[i].present());
  }
}

TEST(PoolCounters, TrackAllocateAndRelease) {
  Cluster cluster({{32.0, 4}, {8.0, 4}});
  expect_counters_match_snapshot(cluster);
  const auto a = cluster.allocate(3, 8.0);
  ASSERT_TRUE(a.has_value());
  expect_counters_match_snapshot(cluster);
  const auto b = cluster.allocate(4, 8.0);  // spans both pools
  ASSERT_TRUE(b.has_value());
  expect_counters_match_snapshot(cluster);
  cluster.release(*a);
  expect_counters_match_snapshot(cluster);
  cluster.release(*b);
  expect_counters_match_snapshot(cluster);
  EXPECT_EQ(cluster.pool_counters(0).busy, 0u);
  EXPECT_EQ(cluster.pool_counters(1).busy, 0u);
}

TEST(PoolCounters, TrackDrainingRemovals) {
  Cluster cluster({{32.0, 4}, {8.0, 4}});
  const auto a = cluster.allocate(6, 0.0);  // both pools busy
  ASSERT_TRUE(a.has_value());
  // Remove more 8 MiB machines than are free: the rest drain. Busy and
  // present must keep counting drainers until their job releases them.
  cluster.remove_machines(8.0, 4);
  expect_counters_match_snapshot(cluster);
  cluster.add_machines(32.0, 2);
  expect_counters_match_snapshot(cluster);
  cluster.release(*a);  // drainers depart here
  expect_counters_match_snapshot(cluster);
}

TEST(PoolCounters, RandomizedChurnMatchesSnapshot) {
  util::Rng rng(77);
  Cluster cluster({{32.0, 24}, {24.0, 24}, {8.0, 16}});
  std::vector<Allocation> held;
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 3));
    if (op == 0) {
      const auto nodes = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
      const MiB cap = rng.bernoulli(0.5) ? 8.0 : 24.0;
      if (auto alloc = cluster.allocate(nodes, cap)) {
        held.push_back(std::move(*alloc));
      }
    } else if (op == 1 && !held.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(held.size()) - 1));
      cluster.release(held[idx]);
      held.erase(held.begin() + static_cast<long>(idx));
    } else if (op == 2) {
      const MiB cap = rng.bernoulli(0.5) ? 32.0 : 24.0;
      cluster.add_machines(cap, static_cast<std::size_t>(rng.uniform_int(0, 4)));
    } else {
      const MiB cap = rng.bernoulli(0.5) ? 32.0 : 24.0;
      cluster.remove_machines(cap,
                              static_cast<std::size_t>(rng.uniform_int(0, 4)));
    }
    expect_counters_match_snapshot(cluster);
  }
  for (const auto& alloc : held) {
    cluster.release(alloc);
    expect_counters_match_snapshot(cluster);
  }
}

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.push(3.0, 30);
  q.push(1.0, 10);
  q.push(2.0, 20);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StableAtEqualTimes) {
  EventQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(5.0, i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, TopPeeksWithoutPopping) {
  EventQueue<int> q;
  q.push(1.0, 42);
  EXPECT_EQ(q.top().payload, 42);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, MoveOnlyPayload) {
  // Regression: pop() used to deep-copy the top event because
  // priority_queue::top() returns a const reference; move-only payloads
  // did not even compile. pop() must move the payload out.
  EventQueue<std::unique_ptr<int>> q;
  q.push(2.0, std::make_unique<int>(2));
  q.push(1.0, std::make_unique<int>(1));
  q.push(1.0, std::make_unique<int>(10));
  auto first = q.pop();
  ASSERT_TRUE(first.payload);
  EXPECT_EQ(*first.payload, 1);
  // Tie at t=1.0 resolves by insertion order (seq), as before.
  EXPECT_EQ(*q.pop().payload, 10);
  EXPECT_EQ(*q.pop().payload, 2);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace resmatch::sim
