// Tests for dynamic machine availability: pool add/remove/drain semantics
// and the simulator's capacity-integral accounting (paper §1: machines
// join and leave the system at any time).
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "sched/factory.hpp"
#include "sim/cluster.hpp"
#include "sim/simulator.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"

namespace resmatch::sim {
namespace {

TEST(Availability, AddMachinesGrowsPool) {
  Cluster cluster({{32.0, 4}});
  cluster.add_machines(32.0, 2);
  EXPECT_EQ(cluster.machine_count(), 6u);
  EXPECT_EQ(cluster.eligible_free(32.0), 6u);
}

TEST(Availability, AddUnknownCapacityThrows) {
  Cluster cluster({{32.0, 4}});
  EXPECT_THROW(cluster.add_machines(16.0, 2), std::invalid_argument);
  EXPECT_THROW(cluster.remove_machines(16.0, 2), std::invalid_argument);
}

TEST(Availability, RemoveFreeMachinesIsImmediate) {
  Cluster cluster({{32.0, 4}});
  cluster.remove_machines(32.0, 3);
  EXPECT_EQ(cluster.machine_count(), 1u);
  EXPECT_EQ(cluster.eligible_free(32.0), 1u);
  EXPECT_EQ(cluster.draining_count(), 0u);
}

TEST(Availability, RemoveBusyMachinesDrains) {
  Cluster cluster({{32.0, 4}});
  const auto alloc = cluster.allocate(3, 32.0);
  ASSERT_TRUE(alloc.has_value());
  // 1 free, 3 busy; remove 2: the free one leaves now, one busy drains.
  cluster.remove_machines(32.0, 2);
  EXPECT_EQ(cluster.machine_count(), 2u);
  EXPECT_EQ(cluster.eligible_free(32.0), 0u);
  EXPECT_EQ(cluster.draining_count(), 1u);
  // Releasing the job pays the drain debt first: only 2 become free.
  cluster.release(*alloc);
  EXPECT_EQ(cluster.draining_count(), 0u);
  EXPECT_EQ(cluster.eligible_free(32.0), 2u);
  EXPECT_EQ(cluster.busy_count(), 0u);
}

TEST(Availability, RemoveMoreThanExistsClamps) {
  Cluster cluster({{32.0, 4}});
  cluster.remove_machines(32.0, 100);
  EXPECT_EQ(cluster.machine_count(), 0u);
  EXPECT_EQ(cluster.eligible_total(0.0), 0u);
}

TEST(Availability, RoundTripAddRemovePreservesInvariants) {
  Cluster cluster({{32.0, 8}, {16.0, 8}});
  const auto alloc = cluster.allocate(6, 16.0);
  ASSERT_TRUE(alloc.has_value());
  cluster.remove_machines(16.0, 8);
  cluster.add_machines(32.0, 4);
  cluster.release(*alloc);
  // All still-owned machines end up free.
  EXPECT_EQ(cluster.busy_count(), 0u);
  EXPECT_EQ(cluster.eligible_free(0.0), cluster.machine_count());
}

trace::JobRecord job_at(JobId id, Seconds submit, Seconds runtime,
                        std::uint32_t nodes) {
  trace::JobRecord j;
  j.id = id;
  j.submit = submit;
  j.runtime = runtime;
  j.nodes = nodes;
  j.requested_mem_mib = 32;
  j.used_mem_mib = 8;
  j.user = 1;
  j.app = 1;
  j.requested_time = runtime;
  return j;
}

SimulationResult run_with_availability(
    const trace::Workload& w, const ClusterSpec& spec,
    std::vector<AvailabilityEvent> events) {
  auto est = core::make_estimator("none");
  auto pol = sched::make_policy("fcfs");
  SimulationConfig cfg;
  cfg.availability = std::move(events);
  return simulate(w, spec, *est, *pol, cfg);
}

TEST(AvailabilitySim, CapacityIntegralReflectsShrink) {
  // 8 machines for the first 100s, 4 thereafter. One 4-node job runs
  // 0-100, another 100-200.
  trace::Workload w;
  w.jobs = {job_at(1, 0, 100, 4), job_at(2, 100, 100, 4)};
  const auto result = run_with_availability(
      w, {{32.0, 8}}, {{100.0, 32.0, -4}});
  EXPECT_EQ(result.completed, 2u);
  // Productive 800 node-seconds over (8*100 + 4*100) = 1200.
  EXPECT_NEAR(result.utilization, 800.0 / 1200.0, 1e-9);
}

TEST(AvailabilitySim, CapacityIntegralReflectsGrowth) {
  trace::Workload w;
  w.jobs = {job_at(1, 0, 100, 4), job_at(2, 100, 100, 4)};
  const auto result = run_with_availability(
      w, {{32.0, 4}}, {{100.0, 32.0, 4}});
  EXPECT_EQ(result.completed, 2u);
  // 400 + 400 productive over (4*100 + 8*100).
  EXPECT_NEAR(result.utilization, 800.0 / 1200.0, 1e-9);
}

TEST(AvailabilitySim, JobsQueueWhileCapacityGone) {
  // Capacity drops to zero machines free at t=50 (all 4 already busy
  // drain away), then 4 fresh machines join at t=300.
  trace::Workload w;
  w.jobs = {job_at(1, 0, 100, 4), job_at(2, 10, 50, 4)};
  const auto result = run_with_availability(
      w, {{32.0, 4}},
      {{50.0, 32.0, -4}, {300.0, 32.0, 4}});
  EXPECT_EQ(result.completed, 2u);
  // Job 2 could only start once machines rejoined at t=300.
  EXPECT_GT(result.mean_wait, 100.0);
}

TEST(AvailabilitySim, ShrinkCanMakeQueuedJobUnschedulable) {
  trace::Workload w;
  // Job 2 needs 8 nodes; after the shrink only 4 exist, forever.
  w.jobs = {job_at(1, 0, 100, 4), job_at(2, 10, 100, 8)};
  const auto result = run_with_availability(
      w, {{32.0, 8}}, {{5.0, 32.0, -4}});
  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.dropped_unschedulable, 1u);
}

TEST(AvailabilitySim, EstimationStillHelpsOnElasticCluster) {
  // Heterogeneous elastic cluster: the 24 MiB pool disappears mid-trace
  // and returns; estimation must keep its advantage and lose no jobs.
  trace::Workload base = trace::generate_cm5_small(21, 2000);
  base = trace::drop_wide_jobs(std::move(base), 64);
  base = trace::sort_by_submit(
      trace::scale_to_load(std::move(base), 128, 0.9));
  const Seconds third = base.span() / 3.0;
  const std::vector<AvailabilityEvent> churn = {
      {third, 24.0, -32}, {2.0 * third, 24.0, 32}};

  auto run = [&](const std::string& estimator) {
    auto est = core::make_estimator(estimator);
    auto pol = sched::make_policy("fcfs");
    SimulationConfig cfg;
    cfg.availability = churn;
    return simulate(base, sim::cm5_heterogeneous(24.0, 64), *est, *pol, cfg);
  };
  const auto with_est = run("successive-approximation");
  const auto without = run("none");
  EXPECT_EQ(with_est.completed + with_est.dropped_unschedulable +
                with_est.dropped_attempt_cap,
            with_est.submitted);
  EXPECT_GE(with_est.utilization, without.utilization);
}

}  // namespace
}  // namespace resmatch::sim
