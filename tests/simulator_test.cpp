// Tests for the discrete-event simulator: lifecycle correctness, the
// under-provisioning failure model, feedback plumbing, and metric
// definitions — on small hand-built workloads where every number can be
// verified by hand.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/transforms.hpp"

namespace resmatch::sim {
namespace {

trace::JobRecord make_job(JobId id, Seconds submit, Seconds runtime,
                          std::uint32_t nodes, MiB req, MiB used,
                          UserId user = 1, AppId app = 1) {
  trace::JobRecord j;
  j.id = id;
  j.submit = submit;
  j.runtime = runtime;
  j.nodes = nodes;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  j.user = user;
  j.app = app;
  j.requested_time = runtime;
  return j;
}

SimulationResult run(const trace::Workload& workload, const ClusterSpec& spec,
                     const std::string& estimator = "none",
                     const std::string& policy = "fcfs",
                     bool explicit_feedback = false) {
  auto est = core::make_estimator(estimator);
  auto pol = sched::make_policy(policy);
  SimulationConfig cfg;
  cfg.explicit_feedback = explicit_feedback;
  return simulate(workload, spec, *est, *pol, cfg);
}

TEST(Simulator, SingleJobCompletes) {
  trace::Workload w;
  w.jobs = {make_job(1, 0, 100, 4, 32, 8)};
  const auto result = run(w, {{32.0, 8}});
  EXPECT_EQ(result.completed, 1u);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(result.resource_failures, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 100.0);
  // 4 nodes * 100s over 8 machines * 100s.
  EXPECT_DOUBLE_EQ(result.utilization, 0.5);
  EXPECT_DOUBLE_EQ(result.mean_slowdown, 1.0);
  EXPECT_DOUBLE_EQ(result.mean_wait, 0.0);
}

TEST(Simulator, RequiresSortedWorkload) {
  trace::Workload w;
  w.jobs = {make_job(1, 100, 10, 1, 32, 8), make_job(2, 0, 10, 1, 32, 8)};
  auto est = core::make_estimator("none");
  auto pol = sched::make_policy("fcfs");
  EXPECT_THROW(simulate(w, {{32.0, 8}}, *est, *pol, {}),
               std::invalid_argument);
}

TEST(Simulator, FcfsQueuesWhenClusterFull) {
  trace::Workload w;
  // Two jobs each needing all 4 machines; the second waits 100s.
  w.jobs = {make_job(1, 0, 100, 4, 32, 8), make_job(2, 0, 100, 4, 32, 8)};
  const auto result = run(w, {{32.0, 4}});
  EXPECT_EQ(result.completed, 2u);
  EXPECT_DOUBLE_EQ(result.makespan, 200.0);
  // Second job: wait 100, run 100 -> slowdown 2; mean = 1.5.
  EXPECT_DOUBLE_EQ(result.mean_slowdown, 1.5);
  EXPECT_DOUBLE_EQ(result.mean_wait, 50.0);
  EXPECT_DOUBLE_EQ(result.utilization, 1.0);
}

TEST(Simulator, OverProvisionedRequestBlocksSmallPoolWithoutEstimation) {
  trace::Workload w;
  // Request 32 but use 4: without estimation only the 32 MiB pool hosts
  // them, so two jobs serialize even though the 8 MiB pool sits idle.
  w.jobs = {make_job(1, 0, 100, 4, 32, 4, 1, 1),
            make_job(2, 0, 100, 4, 32, 4, 2, 1)};
  const auto result = run(w, {{32.0, 4}, {8.0, 4}});
  EXPECT_EQ(result.completed, 2u);
  EXPECT_DOUBLE_EQ(result.makespan, 200.0);  // serialized
  EXPECT_EQ(result.benefiting_jobs, 0u);
}

TEST(Simulator, EstimationUnlocksSmallPool) {
  trace::Workload w;
  // Same two-group scenario, but each group has a history job first so
  // the estimator has already descended when the contention pair arrives.
  w.jobs = {make_job(1, 0, 10, 1, 32, 4, 1, 1),
            make_job(2, 20, 10, 1, 32, 4, 2, 1),
            make_job(3, 40, 10, 1, 32, 4, 1, 1),
            make_job(4, 60, 10, 1, 32, 4, 2, 1),
            make_job(5, 100, 100, 4, 32, 4, 1, 1),
            make_job(6, 100, 100, 4, 32, 4, 2, 1)};
  const auto result =
      run(w, {{32.0, 4}, {8.0, 4}}, "successive-approximation");
  EXPECT_EQ(result.completed, 6u);
  // After two cycles each group's estimate is 8 (32 -> 16 -> rounds to 32?
  // no: ladder {8, 32}; E = 16 rounds to 32, E' = 32 -> E = 16 ... the
  // ladder stall means grants stay at 32 until E <= 8).
  // 32 -> E=16 -> E'=32 -> E=16: stalls. So jobs 5/6 still serialize; but
  // benefiting counters must remain 0 and nothing may fail.
  EXPECT_EQ(result.resource_failures, 0u);
}

TEST(Simulator, EstimationWithPowerOfTwoLadderParallelizes) {
  trace::Workload w;
  // Ladder {4, 8, 16, 32} lets the estimate descend: 32 -> 16 -> 8.
  w.jobs = {make_job(1, 0, 10, 1, 32, 4, 1, 1),
            make_job(2, 20, 10, 1, 32, 4, 1, 1),
            make_job(3, 40, 10, 1, 32, 4, 2, 1),
            make_job(4, 60, 10, 1, 32, 4, 2, 1),
            make_job(5, 100, 100, 4, 32, 4, 1, 1),
            make_job(6, 100, 100, 4, 32, 4, 2, 1)};
  const ClusterSpec spec = {{32.0, 4}, {16.0, 2}, {8.0, 4}, {4.0, 2}};
  const auto result = run(w, spec, "successive-approximation");
  EXPECT_EQ(result.completed, 6u);
  // Jobs 5 and 6 run concurrently (one on 8 MiB machines), so the
  // makespan is 200, the serialized outcome would be 300.
  EXPECT_DOUBLE_EQ(result.makespan, 200.0);
  EXPECT_GT(result.benefiting_jobs, 0u);
  EXPECT_GT(result.lowered_starts, 0u);
}

TEST(Simulator, UnderProvisionedJobFailsAndRetries) {
  trace::Workload w;
  // last-instance with window 1: first run grants 32 (no history). Use a
  // shrinking-then-growing usage pattern to force a resource failure.
  w.jobs = {make_job(1, 0, 100, 1, 32, 4, 1, 1),
            make_job(2, 200, 100, 1, 32, 20, 1, 1)};
  auto est = core::make_estimator("last-instance");
  auto pol = sched::make_policy("fcfs");
  SimulationConfig cfg;
  cfg.explicit_feedback = true;
  const auto result = simulate(w, {{4.0, 2}, {8.0, 2}, {32.0, 2}}, *est, *pol, cfg);
  // Job 2 was estimated at 4 (job 1's usage), granted 4 < 20 -> failed,
  // then retried with corrected knowledge and completed.
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.resource_failures, 1u);
  EXPECT_GT(result.attempts, 2u);
  EXPECT_GT(result.wasted_fraction, 0.0);
}

TEST(Simulator, UnschedulableJobIsDropped) {
  trace::Workload w;
  w.jobs = {make_job(1, 0, 100, 16, 32, 8)};  // 16 nodes, cluster has 8
  const auto result = run(w, {{32.0, 8}});
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.dropped_unschedulable, 1u);
  EXPECT_EQ(result.attempts, 0u);
}

TEST(Simulator, MemoryUnschedulableJobIsDropped) {
  trace::Workload w;
  w.jobs = {make_job(1, 0, 100, 2, 64, 48)};  // needs 64 MiB machines
  const auto result = run(w, {{32.0, 8}});
  EXPECT_EQ(result.dropped_unschedulable, 1u);
}

TEST(Simulator, IntrinsicFailureIsNotRetried) {
  trace::Workload w;
  auto job = make_job(1, 0, 100, 2, 32, 8);
  job.status = trace::JobStatus::kFailed;
  w.jobs = {job};
  const auto result = run(w, {{32.0, 8}});
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.intrinsic_failed, 1u);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(result.resource_failures, 0u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  trace::Workload w;
  for (int i = 0; i < 50; ++i) {
    w.jobs.push_back(
        make_job(i, i * 10.0, 100, 2, 32, (i % 3) ? 4.0 : 30.0, i % 5, 1));
  }
  w = trace::sort_by_submit(std::move(w));
  const auto a = run(w, {{32.0, 4}, {8.0, 4}}, "successive-approximation");
  const auto b = run(w, {{32.0, 4}, {8.0, 4}}, "successive-approximation");
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_DOUBLE_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.resource_failures, b.resource_failures);
}

TEST(Simulator, NoEstimationNeverFailsCleanJobs) {
  trace::Workload w;
  for (int i = 0; i < 100; ++i) {
    w.jobs.push_back(make_job(i, i * 5.0, 50, 2, 32, 30, i % 7, i % 3));
  }
  w = trace::sort_by_submit(std::move(w));
  const auto result = run(w, {{32.0, 8}});
  EXPECT_EQ(result.completed, 100u);
  EXPECT_EQ(result.resource_failures, 0u);
  EXPECT_EQ(result.lowered_starts, 0u);
  EXPECT_EQ(result.benefiting_jobs, 0u);
}

TEST(Simulator, ExplicitFeedbackReachesEstimator) {
  // last-instance only learns from explicit usage; with implicit feedback
  // it must keep passing requests through.
  trace::Workload w;
  w.jobs = {make_job(1, 0, 10, 1, 32, 4, 1, 1),
            make_job(2, 100, 10, 1, 32, 4, 1, 1)};
  const auto spec = ClusterSpec{{8.0, 2}, {32.0, 2}};
  const auto implicit =
      run(w, spec, "last-instance", "fcfs", /*explicit_feedback=*/false);
  EXPECT_EQ(implicit.lowered_starts, 0u);
  const auto explicit_fb =
      run(w, spec, "last-instance", "fcfs", /*explicit_feedback=*/true);
  EXPECT_EQ(explicit_fb.lowered_starts, 1u);  // the second submission
}

TEST(Simulator, AttemptCapStopsPathologicalRetries) {
  // An estimator frozen below the job's usage would retry forever without
  // the cap; craft that with last-instance + a usage spike + tiny ladder.
  trace::Workload w;
  w.jobs = {make_job(1, 0, 100, 1, 32, 2, 1, 1)};
  auto job = make_job(2, 200, 100, 1, 32, 30, 1, 1);
  w.jobs.push_back(job);
  auto est = core::make_estimator("last-instance");
  auto pol = sched::make_policy("fcfs");
  SimulationConfig cfg;
  cfg.explicit_feedback = false;  // estimator can't see the failure cause
  cfg.max_attempts_per_job = 5;
  // With implicit feedback last-instance keeps the full request, so job 2
  // actually succeeds; this test instead verifies the cap plumbing via
  // the config path being exercised (no drop expected here).
  const auto result = simulate(w, {{32.0, 2}}, *est, *pol, cfg);
  EXPECT_EQ(result.dropped_attempt_cap, 0u);
  EXPECT_EQ(result.completed, 2u);
}

TEST(Simulator, SlowdownAccountsForRetriesAndWaits) {
  trace::Workload w;
  // One job, forced failure via last-instance learning 2 MiB then a
  // 30 MiB job in the same group.
  w.jobs = {make_job(1, 0, 100, 1, 32, 2, 1, 1),
            make_job(2, 200, 100, 1, 32, 30, 1, 1)};
  auto est = core::make_estimator("last-instance");
  auto pol = sched::make_policy("fcfs");
  SimulationConfig cfg;
  cfg.explicit_feedback = true;
  cfg.seed = 9;
  const auto result = simulate(w, {{2.0, 1}, {32.0, 1}}, *est, *pol, cfg);
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.resource_failures, 1u);
  // Job 2's response includes the wasted failed run, so slowdown > 1.
  EXPECT_GT(result.mean_slowdown, 1.0);
}

TEST(Simulator, UtilizationExcludesWastedWork) {
  trace::Workload w;
  w.jobs = {make_job(1, 0, 100, 1, 32, 2, 1, 1),
            make_job(2, 200, 100, 1, 32, 30, 1, 1)};
  auto est = core::make_estimator("last-instance");
  auto pol = sched::make_policy("fcfs");
  SimulationConfig cfg;
  cfg.explicit_feedback = true;
  const auto result = simulate(w, {{2.0, 1}, {32.0, 1}}, *est, *pol, cfg);
  // Productive work is exactly 200 node-seconds regardless of the retry.
  const double productive = 200.0;
  EXPECT_NEAR(result.utilization,
              productive / (2.0 * result.makespan), 1e-9);
}

TEST(Simulator, PoolUtilizationExplainsBlocking) {
  trace::Workload w;
  // Two full-pool jobs that serialize on the 32 MiB pool while the 8 MiB
  // pool never works: its busy fraction must be exactly 0, the big
  // pool's exactly 1.
  w.jobs = {make_job(1, 0, 100, 4, 32, 4, 1, 1),
            make_job(2, 0, 100, 4, 32, 4, 2, 1)};
  const auto result = run(w, {{32.0, 4}, {8.0, 4}});
  ASSERT_EQ(result.pool_utilization.size(), 2u);
  // Pools are reported in ascending capacity order.
  EXPECT_DOUBLE_EQ(result.pool_utilization[0].capacity, 8.0);
  EXPECT_DOUBLE_EQ(result.pool_utilization[0].busy_fraction, 0.0);
  EXPECT_DOUBLE_EQ(result.pool_utilization[1].capacity, 32.0);
  EXPECT_DOUBLE_EQ(result.pool_utilization[1].busy_fraction, 1.0);
}

TEST(Simulator, PoolUtilizationReflectsEstimationUnlock) {
  trace::Workload w;
  w.jobs = {make_job(1, 0, 10, 1, 32, 4, 1, 1),
            make_job(2, 20, 10, 1, 32, 4, 1, 1),
            make_job(3, 40, 100, 4, 32, 4, 1, 1)};
  const ClusterSpec spec = {{32.0, 4}, {16.0, 2}, {8.0, 4}};
  const auto none = run(w, spec, "none");
  const auto est = run(w, spec, "successive-approximation");
  // Without estimation the 8 MiB pool never runs anything; with it, the
  // converged group (32 -> 16 -> 8) lands there.
  EXPECT_DOUBLE_EQ(none.pool_utilization[0].busy_fraction, 0.0);
  EXPECT_GT(est.pool_utilization[0].busy_fraction, 0.0);
}

TEST(Simulator, PoliciesComposeWithEstimators) {
  trace::Workload w;
  for (int i = 0; i < 60; ++i) {
    w.jobs.push_back(make_job(i, i * 20.0, 100 + (i % 4) * 50, 2, 32,
                              (i % 2) ? 4.0 : 28.0, i % 6, i % 2));
  }
  w = trace::sort_by_submit(std::move(w));
  const ClusterSpec spec = {{32.0, 4}, {16.0, 4}, {8.0, 4}};
  for (const auto& policy : {"fcfs", "sjf", "easy-backfill"}) {
    for (const auto& estimator :
         {"none", "successive-approximation", "reinforcement-learning"}) {
      const auto result = run(w, spec, estimator, policy);
      EXPECT_EQ(result.completed + result.intrinsic_failed +
                    result.dropped_unschedulable + result.dropped_attempt_cap,
                60u)
          << policy << "/" << estimator;
    }
  }
}

}  // namespace
}  // namespace resmatch::sim
