// Tests for the experiment-driver layer (exp): run specs, sweeps, report
// rendering and CSV output — the scaffolding every bench binary trusts.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "exp/experiment.hpp"
#include "exp/report.hpp"

namespace resmatch::exp {
namespace {

const trace::Workload& small_trace() {
  static const trace::Workload w = [] {
    trace::Workload base = trace::generate_cm5_small(31, 1500);
    base = trace::drop_wide_jobs(std::move(base), 64);
    return trace::sort_by_submit(
        trace::scale_to_load(std::move(base), 96, 0.8));
  }();
  return w;
}

sim::ClusterSpec small_cluster() { return {{32.0, 48}, {24.0, 48}}; }

TEST(RunSpecTest, ForcesExplicitFeedbackWhereRequired) {
  RunSpec spec;
  spec.estimator = "last-instance";
  spec.sim.explicit_feedback = false;
  EXPECT_TRUE(spec.effective_sim_config().explicit_feedback);

  spec.estimator = "successive-approximation";
  EXPECT_FALSE(spec.effective_sim_config().explicit_feedback);

  // Explicit feedback stays on when the caller asked for it.
  spec.sim.explicit_feedback = true;
  EXPECT_TRUE(spec.effective_sim_config().explicit_feedback);
}

TEST(RunOnceTest, ProducesNamedResult) {
  RunSpec spec;
  const auto result = run_once(small_trace(), small_cluster(), spec);
  EXPECT_EQ(result.estimator_name, "successive-approximation");
  EXPECT_EQ(result.policy_name, "fcfs");
  EXPECT_EQ(result.submitted, small_trace().jobs.size());
}

TEST(RunOnceTest, RuntimePredictionFlagAttachesPredictor) {
  RunSpec spec;
  spec.policy = "easy-backfill";
  spec.use_runtime_prediction = true;
  const auto result = run_once(small_trace(), small_cluster(), spec);
  // No crash, jobs accounted for — the predictor lived through the run.
  EXPECT_EQ(result.completed + result.intrinsic_failed +
                result.dropped_unschedulable + result.dropped_attempt_cap,
            result.submitted);
}

TEST(RunOnceTest, StreamedRunMatchesMaterialized) {
  const std::uint64_t seed = 99;
  const std::size_t jobs = 1200;
  RunSpec spec;
  const trace::Workload workload = standard_workload(seed, jobs);
  const auto materialized = run_once(workload, small_cluster(), spec);

  trace::Cm5JobStream stream = standard_stream(seed, jobs);
  const auto streamed = run_once(stream, small_cluster(), spec);

  // The JobStream equivalence contract, surfaced at the experiment layer:
  // same seed, same decisions, same metrics to the last bit.
  EXPECT_EQ(streamed.submitted, materialized.submitted);
  EXPECT_EQ(streamed.completed, materialized.completed);
  EXPECT_EQ(streamed.attempts, materialized.attempts);
  EXPECT_EQ(streamed.resource_failures, materialized.resource_failures);
  EXPECT_EQ(streamed.makespan, materialized.makespan);
  EXPECT_EQ(streamed.utilization, materialized.utilization);
  EXPECT_EQ(streamed.mean_slowdown, materialized.mean_slowdown);
  EXPECT_EQ(streamed.granted_mib_nodes, materialized.granted_mib_nodes);
  EXPECT_EQ(streamed.used_mib_nodes, materialized.used_mib_nodes);
}

TEST(LoadSweepTest, RescalesEachPointToItsLoad) {
  RunSpec spec;
  const auto result =
      load_sweep(small_trace(), small_cluster(), {0.4, 0.8}, spec);
  EXPECT_TRUE(result.errors.empty());
  const auto& sweep = result.points;
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_NEAR(sweep[0].with_estimation.offered_load, 0.4, 0.02);
  EXPECT_NEAR(sweep[1].with_estimation.offered_load, 0.8, 0.02);
  // Both arms ran on the same rescaled trace.
  EXPECT_EQ(sweep[0].with_estimation.submitted,
            sweep[0].without_estimation.submitted);
}

TEST(LoadSweepTest, RatiosAreConsistentWithMembers) {
  RunSpec spec;
  const auto sweep =
      load_sweep(small_trace(), small_cluster(), {0.8}, spec).points;
  const auto& p = sweep[0];
  ASSERT_TRUE(p.utilization_ratio().has_value());
  ASSERT_TRUE(p.slowdown_ratio().has_value());
  EXPECT_NEAR(*p.utilization_ratio(),
              p.with_estimation.utilization / p.without_estimation.utilization,
              1e-12);
  EXPECT_NEAR(*p.slowdown_ratio(),
              p.without_estimation.mean_slowdown /
                  p.with_estimation.mean_slowdown,
              1e-12);
}

TEST(LoadSweepTest, DegenerateDenominatorsYieldNullopt) {
  // Regression: these used to return a 0.0 sentinel, which is a valid
  // ratio value — min-ratio and best-point scans in the benches latched
  // onto it as if estimation had made things infinitely worse.
  LoadPoint p;
  p.with_estimation.utilization = 0.5;
  p.without_estimation.utilization = 0.0;  // baseline did no work
  p.without_estimation.mean_slowdown = 2.0;
  p.with_estimation.mean_slowdown = 0.0;  // perfect run: zero slowdown
  EXPECT_FALSE(p.utilization_ratio().has_value());
  EXPECT_FALSE(p.slowdown_ratio().has_value());
  EXPECT_TRUE(std::isnan(ratio_or_nan(p.slowdown_ratio())));

  ClusterPoint c;
  c.without_estimation.utilization = 0.0;
  EXPECT_FALSE(c.utilization_ratio().has_value());

  // Healthy denominators still produce values.
  p.without_estimation.utilization = 0.25;
  ASSERT_TRUE(p.utilization_ratio().has_value());
  EXPECT_DOUBLE_EQ(*p.utilization_ratio(), 2.0);
  EXPECT_DOUBLE_EQ(ratio_or_nan(p.utilization_ratio()), 2.0);
}

TEST(ClusterSweepTest, BuildsRequestedPools) {
  RunSpec spec;
  const auto result =
      cluster_sweep(small_trace(), {8.0, 24.0}, 0.8, spec, /*pool_size=*/48);
  EXPECT_TRUE(result.errors.empty());
  const auto& sweep = result.points;
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_DOUBLE_EQ(sweep[0].second_pool_mib, 8.0);
  EXPECT_DOUBLE_EQ(sweep[1].second_pool_mib, 24.0);
}

TEST(ReportTest, TablesRenderAllRows) {
  RunSpec spec;
  const auto sweep =
      load_sweep(small_trace(), small_cluster(), {0.5, 0.9}, spec).points;
  EXPECT_EQ(load_sweep_table(sweep).row_count(), 2u);
  const auto csweep =
      cluster_sweep(small_trace(), {24.0}, 0.8, spec, 48).points;
  EXPECT_EQ(cluster_sweep_table(csweep).row_count(), 1u);
}

TEST(ReportTest, CsvFilesWritten) {
  RunSpec spec;
  const auto sweep =
      load_sweep(small_trace(), small_cluster(), {0.7}, spec).points;
  const std::string path = "/tmp/resmatch_exp_test_load.csv";
  write_load_sweep_csv(path, sweep);
  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_NE(header.find("util_ratio"), std::string::npos);

  const auto csweep =
      cluster_sweep(small_trace(), {24.0}, 0.7, spec, 48).points;
  const std::string cpath = "/tmp/resmatch_exp_test_cluster.csv";
  write_cluster_sweep_csv(cpath, csweep);
  std::ifstream cin_file(cpath);
  ASSERT_TRUE(std::getline(cin_file, header));
  EXPECT_NE(header.find("second_pool_mib"), std::string::npos);
}

TEST(ReportTest, EmptyCsvPathIsNoOp) {
  write_load_sweep_csv("", {});
  write_cluster_sweep_csv("", {});
  SUCCEED();
}

TEST(WarmStartTest, ReplaysHistoryThroughEstimator) {
  auto est = core::make_estimator("last-instance");
  est->set_ladder(core::CapacityLadder({4, 8, 16, 24, 32}));
  trace::Workload history;
  trace::JobRecord j;
  j.id = 1;
  j.user = 1;
  j.app = 1;
  j.requested_mem_mib = 32;
  j.used_mem_mib = 5;
  j.nodes = 4;
  j.runtime = 100;
  history.jobs = {j, j, j};
  EXPECT_EQ(warm_start(*est, history), 3u);
  // The group now estimates from observed usage, not the request.
  EXPECT_DOUBLE_EQ(est->estimate(j, {}), 8.0);
}

TEST(WarmStartTest, WarmNeverLowersFewerRequestsThanCold) {
  RunSpec spec;
  spec.estimator = "last-instance";
  const auto result =
      run_warmstart(small_trace(), small_cluster(), spec, 0.3);
  EXPECT_GT(result.training_jobs, 0u);
  EXPECT_GE(result.warm.lowered_fraction(),
            result.cold.lowered_fraction() * 0.99);
  // Both arms account for every test job.
  EXPECT_EQ(result.warm.submitted, result.cold.submitted);
}

TEST(SplitByTimeTest, ChronologicalAndRebased) {
  trace::Workload w = trace::generate_cm5_small(9, 1000);
  const auto split = trace::split_by_time(std::move(w), 0.25);
  EXPECT_EQ(split.train.jobs.size(), 250u);
  EXPECT_EQ(split.test.jobs.size(), 750u);
  EXPECT_DOUBLE_EQ(split.test.jobs.front().submit, 0.0);
  // Training jobs all precede (original-time) test jobs; after rebasing
  // we can only check internal order.
  for (std::size_t i = 1; i < split.test.jobs.size(); ++i) {
    ASSERT_GE(split.test.jobs[i].submit, split.test.jobs[i - 1].submit);
  }
}

TEST(SplitByTimeTest, DegenerateFractions) {
  trace::Workload w = trace::generate_cm5_small(9, 100);
  const auto all_train = trace::split_by_time(w, 1.0);
  EXPECT_EQ(all_train.train.jobs.size(), 100u);
  EXPECT_TRUE(all_train.test.jobs.empty());
  const auto all_test = trace::split_by_time(w, 0.0);
  EXPECT_TRUE(all_test.train.jobs.empty());
  EXPECT_EQ(all_test.test.jobs.size(), 100u);
}

TEST(StandardWorkloadTest, FullScaleIsPaperSized) {
  // Only construct the config path, not the full trace (slow): the small
  // path must be exact, deterministic, and sorted.
  const auto w = standard_workload(7, 1200);
  EXPECT_EQ(w.jobs.size(), 1200u);
  for (std::size_t i = 1; i < w.jobs.size(); ++i) {
    ASSERT_GE(w.jobs[i].submit, w.jobs[i - 1].submit);
  }
}

}  // namespace
}  // namespace resmatch::exp
