// Chaos tests for the durability layer: CRC framing, deterministic fault
// injection, retry/backoff, WAL append/replay/rotation, matchd degraded
// mode, crash-recovery equivalence (the property the WAL exists for), and
// the shutdown-durability drain path. The multithreaded hammers double as
// the TSan targets of the chaos CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "sim/cluster.hpp"
#include "sim/serve_replay.hpp"
#include "svc/matchd.hpp"
#include "svc/wal.hpp"
#include "trace/cm5_model.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"
#include "util/retry.hpp"

namespace resmatch::svc {
namespace {

core::CapacityLadder test_ladder() {
  return core::CapacityLadder({4.0, 8.0, 16.0, 24.0, 32.0, 64.0});
}

trace::JobRecord make_job(std::uint64_t n, std::size_t groups = 64) {
  trace::JobRecord j;
  j.id = n;
  j.user = static_cast<UserId>(n % groups);
  j.app = static_cast<AppId>((n / groups) % 7);
  j.requested_mem_mib = 32.0;
  j.used_mem_mib = 4.0 + static_cast<double>(n % 13);
  j.nodes = 1;
  j.runtime = 100;
  return j;
}

/// Fresh per-test WAL directory under the system temp path.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("resmatch_fault_" + name))
                  .string()) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Submit + explicit feedback for one job; returns the grant.
MiB drive_job(Matchd& service, const trace::JobRecord& job) {
  const MatchDecision d = service.submit(job);
  core::Feedback fb;
  fb.granted_mib = d.granted_mib;
  fb.success = job.used_mem_mib <= d.granted_mib;
  fb.used_mib = job.used_mem_mib;
  service.feedback(job, fb);
  return d.granted_mib;
}

/// The store's full state as a canonical set of snapshot rows (order-
/// independent: restore order may legally differ from organic LRU order).
std::multiset<std::string> store_rows(const Matchd& service,
                                      const std::string& tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("resmatch_rows_" + tag))
          .string();
  EXPECT_TRUE(service.save_store(path));
  std::ifstream in(path);
  std::multiset<std::string> rows;
  std::string line;
  std::getline(in, line);  // header (format version), not state
  while (std::getline(in, line)) rows.insert(line);
  in.close();
  std::filesystem::remove(path);
  return rows;
}

// --- crc32 -------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(util::crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = util::crc32(data.data(), data.size());
  const std::uint32_t half = util::crc32(data.data(), 20);
  EXPECT_EQ(util::crc32(data.data() + 20, data.size() - 20, half), whole);
  EXPECT_NE(util::crc32(data.data(), data.size() - 1), whole);
}

// --- fault injector ----------------------------------------------------------

TEST(FaultInjectorTest, DeterministicPerSeed) {
  const auto decisions = [](std::uint64_t seed) {
    util::FaultInjector inj(seed);
    inj.arm(util::FaultSite::kWalAppend, {0.5, UINT32_MAX});
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(inj.should_fail(util::FaultSite::kWalAppend));
    }
    return out;
  };
  EXPECT_EQ(decisions(7), decisions(7));
  EXPECT_NE(decisions(7), decisions(8));
}

TEST(FaultInjectorTest, UnarmedSitesNeverFail) {
  util::FaultInjector inj(1);
  inj.arm(util::FaultSite::kWalAppend, {1.0, UINT32_MAX});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.should_fail(util::FaultSite::kStoreRead));
    EXPECT_TRUE(inj.should_fail(util::FaultSite::kWalAppend));
  }
  EXPECT_EQ(inj.checks(util::FaultSite::kStoreRead), 100u);
  EXPECT_EQ(inj.injected(util::FaultSite::kStoreRead), 0u);
  EXPECT_EQ(inj.injected(util::FaultSite::kWalAppend), 100u);
}

TEST(FaultInjectorTest, ConsecutiveCapForcesSuccess) {
  util::FaultInjector inj(3);
  // p=1 with a cap of 3: the stream must be fail,fail,fail,success,...
  inj.arm(util::FaultSite::kWalAppend, {1.0, /*max_consecutive=*/3});
  int run = 0;
  for (int i = 0; i < 100; ++i) {
    if (inj.should_fail(util::FaultSite::kWalAppend)) {
      ++run;
      ASSERT_LE(run, 3);
    } else {
      EXPECT_EQ(run, 3);
      run = 0;
    }
  }
}

TEST(FaultInjectorTest, NullInjectorHookIsFree) {
  EXPECT_FALSE(util::fault(nullptr, util::FaultSite::kWalAppend));
}

// --- retry policy ------------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsAndCaps) {
  util::RetryPolicy policy;
  policy.initial_backoff = std::chrono::microseconds(100);
  policy.max_backoff = std::chrono::microseconds(1000);
  policy.multiplier = 2.0;
  policy.jitter = 0.0;  // deterministic schedule
  EXPECT_EQ(policy.backoff_for(1, 0).count(), 100);
  EXPECT_EQ(policy.backoff_for(2, 0).count(), 200);
  EXPECT_EQ(policy.backoff_for(3, 0).count(), 400);
  EXPECT_EQ(policy.backoff_for(5, 0).count(), 1000);  // capped
  EXPECT_EQ(policy.backoff_for(20, 0).count(), 1000);
}

TEST(RetryPolicyTest, JitterBoundedAndSeeded) {
  util::RetryPolicy policy;
  policy.initial_backoff = std::chrono::microseconds(1000);
  policy.jitter = 0.5;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto b = policy.backoff_for(1, seed);
    EXPECT_GE(b.count(), 500);
    EXPECT_LE(b.count(), 1000);
    EXPECT_EQ(policy.backoff_for(1, seed), b);  // same seed, same jitter
  }
}

TEST(RetryPolicyTest, RetryWithCountsAttempts) {
  util::RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  std::vector<std::chrono::microseconds> sleeps;
  const auto sleeper = [&](std::chrono::microseconds us) {
    sleeps.push_back(us);
  };
  util::RetryResult r = util::retry_with(
      policy, 1, [&] { return ++calls == 3; }, sleeper);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(sleeps.size(), 2u);  // slept between attempts only

  calls = 0;
  r = util::retry_with(policy, 1, [&] { return ++calls > 99; }, sleeper);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 5u);
}

TEST(RetryPolicyTest, DeadlineStopsRetrying) {
  util::RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff = std::chrono::microseconds(1000);
  policy.jitter = 0.0;
  policy.deadline = std::chrono::microseconds(2500);
  std::chrono::microseconds slept{0};
  const util::RetryResult r = util::retry_with(
      policy, 1, [] { return false; },
      [&](std::chrono::microseconds us) { slept += us; });
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.deadline_exceeded);
  EXPECT_LE(slept.count(), 2500);
  EXPECT_LT(r.attempts, 1000u);
}

// --- WAL ---------------------------------------------------------------------

TEST(WalTest, AppendFlushReplayRoundTrip) {
  TempDir dir("roundtrip");
  WalConfig config;
  config.dir = dir.path();
  config.shards = 4;
  auto wal = Wal::open(config);
  ASSERT_TRUE(wal.has_value()) << wal.error();

  const double a[3] = {1.0, 2.0, 3.0};
  const double b[2] = {9.5, -1.25};
  ASSERT_TRUE(wal.value()->append(0, 42, a, 3));
  ASSERT_TRUE(wal.value()->append_heartbeat(1));
  ASSERT_TRUE(wal.value()->append(1, 42, b, 2));  // same key, later record
  ASSERT_TRUE(wal.value()->flush_all());
  wal.value().reset();  // close files

  std::vector<std::pair<std::uint64_t, std::vector<double>>> seen;
  auto replay = Wal::replay(
      dir.path(), [&](std::uint64_t key, const double* f, std::size_t n) {
        seen.emplace_back(key, std::vector<double>(f, f + n));
      });
  ASSERT_TRUE(replay.has_value()) << replay.error();
  EXPECT_EQ(replay.value().records, 2u);
  EXPECT_EQ(replay.value().heartbeats, 1u);
  EXPECT_EQ(replay.value().torn_files, 0u);
  ASSERT_EQ(seen.size(), 2u);
  // Same generation, ascending shard order: shard 0's record first. The
  // last record per key wins, which is what upsert replay relies on.
  EXPECT_EQ(seen[0].second, std::vector<double>({1.0, 2.0, 3.0}));
  EXPECT_EQ(seen[1].second, std::vector<double>({9.5, -1.25}));
}

TEST(WalTest, ReplayOfMissingDirIsEmpty) {
  auto replay = Wal::replay(
      (std::filesystem::temp_directory_path() / "resmatch_never_created")
          .string(),
      [](std::uint64_t, const double*, std::size_t) { FAIL(); });
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay.value().files, 0u);
}

TEST(WalTest, TornTailIsDroppedNotFatal) {
  TempDir dir("torn");
  WalConfig config;
  config.dir = dir.path();
  config.shards = 1;
  auto wal = Wal::open(config);
  ASSERT_TRUE(wal.has_value());
  const double f[1] = {7.0};
  ASSERT_TRUE(wal.value()->append(0, 1, f, 1));
  ASSERT_TRUE(wal.value()->append(0, 2, f, 1));
  wal.value()->simulate_crash(/*leave_torn_tail=*/true);
  wal.value().reset();

  std::size_t records = 0;
  auto replay = Wal::replay(
      dir.path(),
      [&](std::uint64_t, const double*, std::size_t) { ++records; });
  ASSERT_TRUE(replay.has_value()) << replay.error();
  // Both flushed records survive; the torn half-frame after them is cut.
  EXPECT_EQ(records, 2u);
  EXPECT_EQ(replay.value().torn_files, 1u);
}

TEST(WalTest, RotationAndGcReplayAcrossGenerations) {
  TempDir dir("rotate");
  WalConfig config;
  config.dir = dir.path();
  config.shards = 2;
  auto wal = Wal::open(config);
  ASSERT_TRUE(wal.has_value());
  const double gen1[1] = {1.0};
  const double gen2[1] = {2.0};
  ASSERT_TRUE(wal.value()->append(0, 5, gen1, 1));
  const std::uint64_t before = wal.value()->generation();
  ASSERT_TRUE(wal.value()->rotate());
  EXPECT_EQ(wal.value()->generation(), before + 1);
  ASSERT_TRUE(wal.value()->append(0, 5, gen2, 1));
  ASSERT_TRUE(wal.value()->flush_all());

  // Both generations replay, oldest first — the later record wins.
  std::vector<double> values;
  auto replay = Wal::replay(
      dir.path(), [&](std::uint64_t, const double* f, std::size_t) {
        values.push_back(f[0]);
      });
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(values, std::vector<double>({1.0, 2.0}));

  // GC removes only generations below the current one.
  wal.value()->remove_old_generations();
  values.clear();
  replay = Wal::replay(dir.path(),
                       [&](std::uint64_t, const double* f, std::size_t) {
                         values.push_back(f[0]);
                       });
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(values, std::vector<double>({2.0}));
}

TEST(WalTest, NewSessionStartsAboveExistingGenerations) {
  TempDir dir("generations");
  WalConfig config;
  config.dir = dir.path();
  config.shards = 1;
  {
    auto wal = Wal::open(config);
    ASSERT_TRUE(wal.has_value());
    ASSERT_TRUE(wal.value()->rotate());
    ASSERT_TRUE(wal.value()->rotate());
    EXPECT_EQ(wal.value()->generation(), 3u);
  }
  auto wal = Wal::open(config);
  ASSERT_TRUE(wal.has_value());
  EXPECT_GT(wal.value()->generation(), 3u);
}

TEST(WalTest, InjectedAppendFaultRepairsAndRetrySucceeds) {
  TempDir dir("inject");
  util::FaultInjector injector(11);
  injector.arm(util::FaultSite::kWalAppend, {1.0, /*max_consecutive=*/2});
  WalConfig config;
  config.dir = dir.path();
  config.shards = 1;
  config.faults = &injector;
  auto wal = Wal::open(config);
  ASSERT_TRUE(wal.has_value());
  const double f[1] = {3.5};
  // p=1, cap=2: two refusals, then the forced success.
  EXPECT_FALSE(wal.value()->append(0, 9, f, 1));
  EXPECT_FALSE(wal.value()->append(0, 9, f, 1));
  EXPECT_TRUE(wal.value()->append(0, 9, f, 1));
  EXPECT_EQ(wal.value()->stats().append_failures, 2u);
  ASSERT_TRUE(wal.value()->flush_all());
  wal.value().reset();

  // The repaired log holds exactly the one accepted record — refused
  // appends must not leave torn frames mid-file.
  std::size_t records = 0;
  auto replay = Wal::replay(
      dir.path(),
      [&](std::uint64_t key, const double* fields, std::size_t n) {
        ++records;
        EXPECT_EQ(key, 9u);
        ASSERT_EQ(n, 1u);
        EXPECT_EQ(fields[0], 3.5);
      });
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(records, 1u);
  EXPECT_EQ(replay.value().torn_files, 0u);
}

TEST(WalTest, FsyncFaultDoesNotCorruptBufferOrDropLaterAppends) {
  // A failed fsync happens AFTER the write consumed the buffer. The
  // append must report failure without rolling the buffer back: rolling
  // back would zero-fill garbage for the next flush to bury mid-log and
  // underflow the pending count, leaving later acked appends unflushed.
  TempDir dir("fsyncfail");
  util::FaultInjector injector(19);
  injector.arm(util::FaultSite::kWalFsync, {1.0, /*max_consecutive=*/2});
  WalConfig config;
  config.dir = dir.path();
  config.shards = 1;
  config.fsync_every = 1;  // every flush attempts the (faulted) fsync
  config.faults = &injector;
  auto wal = Wal::open(config);
  ASSERT_TRUE(wal.has_value()) << wal.error();

  const double f[1] = {2.5};
  // p=1, cap=2: two appends write their record but fail the fsync; the
  // third fsync is forced through.
  EXPECT_FALSE(wal.value()->append(0, 7, f, 1));
  EXPECT_FALSE(wal.value()->append(0, 7, f, 1));
  EXPECT_TRUE(wal.value()->append(0, 7, f, 1));
  EXPECT_EQ(wal.value()->stats().append_failures, 2u);
  ASSERT_TRUE(wal.value()->flush_all());
  wal.value().reset();

  // All three copies are in the file (unacked-but-written records may
  // duplicate; replay's last-wins upsert absorbs that) and the log parses
  // to the end — no zero-length frame stops replay partway.
  std::size_t records = 0;
  auto replay = Wal::replay(
      dir.path(), [&](std::uint64_t key, const double* fields,
                      std::size_t n) {
        ++records;
        EXPECT_EQ(key, 7u);
        ASSERT_EQ(n, 1u);
        EXPECT_EQ(fields[0], 2.5);
      });
  ASSERT_TRUE(replay.has_value()) << replay.error();
  EXPECT_EQ(records, 3u);
  EXPECT_EQ(replay.value().torn_files, 0u);
}

TEST(WalTest, FsyncFaultWithBatchedFlushKeepsLogParseable) {
  // Same failure with flush_every > 1: when the fsync fails the buffer
  // held several frames, so a bad rollback would plant that many bytes of
  // zero-fill garbage mid-log. Every accepted record must replay.
  TempDir dir("fsyncbatch");
  util::FaultInjector injector(29);
  injector.arm(util::FaultSite::kWalFsync, {1.0, /*max_consecutive=*/2});
  WalConfig config;
  config.dir = dir.path();
  config.shards = 1;
  config.flush_every = 2;
  config.fsync_every = 1;
  config.faults = &injector;
  auto wal = Wal::open(config);
  ASSERT_TRUE(wal.has_value()) << wal.error();

  const double f[1] = {4.0};
  EXPECT_TRUE(wal.value()->append(0, 1, f, 1));   // buffered
  EXPECT_FALSE(wal.value()->append(0, 2, f, 1));  // written, fsync fails
  EXPECT_TRUE(wal.value()->append(0, 3, f, 1));   // buffered
  EXPECT_FALSE(wal.value()->append(0, 4, f, 1));  // written, fsync fails
  EXPECT_TRUE(wal.value()->append(0, 5, f, 1));   // buffered
  ASSERT_TRUE(wal.value()->flush_all());          // fsync forced through
  wal.value().reset();

  std::vector<std::uint64_t> keys;
  auto replay = Wal::replay(
      dir.path(),
      [&](std::uint64_t key, const double*, std::size_t) {
        keys.push_back(key);
      });
  ASSERT_TRUE(replay.has_value()) << replay.error();
  EXPECT_EQ(keys, std::vector<std::uint64_t>({1, 2, 3, 4, 5}));
  EXPECT_EQ(replay.value().torn_files, 0u);
}

TEST(WalTest, FailedRotationLeavesEveryShardServingAndRetryable) {
  // A rotation that fails partway (some next-generation files created,
  // one refused) must leave all shards appending to their current files,
  // leave no partial generation behind, and succeed when retried.
  TempDir dir("rotatefail");
  util::FaultInjector injector(31);
  injector.arm(util::FaultSite::kWalRotate, {0.5, UINT32_MAX});
  WalConfig config;
  config.dir = dir.path();
  config.shards = 4;
  config.faults = &injector;
  auto wal = Wal::open(config);
  ASSERT_TRUE(wal.has_value()) << wal.error();
  const std::uint64_t gen0 = wal.value()->generation();

  const double f[1] = {6.0};
  for (std::size_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(wal.value()->append(s, s, f, 1));
  }
  std::size_t failed = 0;
  for (int i = 0; i < 8; ++i) {
    if (!wal.value()->rotate()) ++failed;
  }
  ASSERT_GT(failed, 0u);  // the seeded schedule injects some failures
  // Every shard still accepts appends, whatever generation it is on.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(wal.value()->append(s, 100 + s, f, 1));
  }
  // Failed rotations must not advance the generation counter.
  EXPECT_EQ(wal.value()->generation(), gen0 + (8 - failed));

  injector.arm(util::FaultSite::kWalRotate, {0.0, UINT32_MAX});
  EXPECT_TRUE(wal.value()->rotate());  // retry heals, no O_EXCL collision
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(wal.value()->append(s, 200 + s, f, 1));
  }
  ASSERT_TRUE(wal.value()->flush_all());
  const std::uint64_t final_gen = wal.value()->generation();
  wal.value().reset();

  // No orphaned partial generation: every surviving file belongs to a
  // generation a completed rotation produced, and all 12 records replay.
  std::size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.path())) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 4u * (final_gen - gen0 + 1));
  std::size_t records = 0;
  auto replay = Wal::replay(
      dir.path(),
      [&](std::uint64_t, const double*, std::size_t) { ++records; });
  ASSERT_TRUE(replay.has_value()) << replay.error();
  EXPECT_EQ(records, 12u);
  EXPECT_EQ(replay.value().torn_files, 0u);
}

TEST(WalTest, NearMissFilenamesAreNeitherReplayedNorCollected) {
  TempDir dir("nearmiss");
  std::filesystem::create_directories(dir.path());
  // Trailing garbage after ".log" must not read as a live log: not
  // replayed, not counted into the generation scan, not GC'd.
  std::ofstream(dir.path() + "/wal-9-0.log.bak") << "operator backup";
  std::ofstream(dir.path() + "/wal-7-0.logx") << "not a log";
  WalConfig config;
  config.dir = dir.path();
  config.shards = 1;
  auto wal = Wal::open(config);
  ASSERT_TRUE(wal.has_value()) << wal.error();
  EXPECT_EQ(wal.value()->generation(), 1u);  // 9 and 7 were ignored
  const double f[1] = {8.0};
  ASSERT_TRUE(wal.value()->append(0, 1, f, 1));
  ASSERT_TRUE(wal.value()->rotate());
  wal.value()->remove_old_generations();
  wal.value().reset();

  auto replay = Wal::replay(
      dir.path(), [](std::uint64_t, const double*, std::size_t) {});
  ASSERT_TRUE(replay.has_value()) << replay.error();
  EXPECT_EQ(replay.value().files, 1u);  // only the real (rotated) log
  EXPECT_EQ(replay.value().torn_files, 0u);
  // GC removed generation 1 but left the near-miss names untouched.
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/wal-1-0.log"));
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/wal-9-0.log.bak"));
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/wal-7-0.logx"));
}

// --- matchd + WAL ------------------------------------------------------------

TEST(MatchdWalTest, WalOnDecisionsMatchWalOff) {
  TempDir dir("equiv");
  MatchdConfig with_wal;
  with_wal.durability.wal_dir = dir.path();
  Matchd durable(with_wal);
  durable.set_ladder(test_ladder());
  Matchd plain;  // default config: no WAL
  plain.set_ladder(test_ladder());
  for (std::uint64_t n = 0; n < 500; ++n) {
    EXPECT_EQ(drive_job(durable, make_job(n)),
              drive_job(plain, make_job(n)));
  }
  EXPECT_TRUE(durable.wal_enabled());
  EXPECT_FALSE(plain.wal_enabled());
  EXPECT_EQ(durable.stats().wal.appends, 1000u);  // submit + feedback each
}

TEST(MatchdWalTest, RecoveryReconstructsByteIdenticalState) {
  // The tentpole property: for any injector seed, snapshot + WAL replay
  // rebuilds the exact store state of the crashed service.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    TempDir dir("property_" + std::to_string(seed));
    util::FaultInjector injector(seed);
    // Cap (3) below retry budget (6): faults slow commits, never drop them.
    injector.arm(util::FaultSite::kWalAppend, {0.2, 3});
    MatchdConfig config;
    config.durability.wal_dir = dir.path();
    config.durability.faults = &injector;
    config.durability.compact_every = 150;  // a few compactions mid-run

    std::multiset<std::string> before;
    {
      Matchd service(config);
      service.set_ladder(test_ladder());
      for (std::uint64_t n = 0; n < 400 + seed * 37; ++n) {
        drive_job(service, make_job(n * seed + 1));
      }
      ASSERT_EQ(service.stats().wal_giveups, 0u);
      before = store_rows(service, "before_" + std::to_string(seed));
      service.simulate_crash(/*leave_torn_tail=*/seed % 2 == 0);
    }

    Matchd restarted(config);
    restarted.set_ladder(test_ladder());
    auto recovery = restarted.recover();
    ASSERT_TRUE(recovery.has_value()) << recovery.error();
    EXPECT_EQ(recovery.value().invalid_records, 0u);
    EXPECT_EQ(store_rows(restarted, "after_" + std::to_string(seed)),
              before);
  }
}

TEST(MatchdWalTest, CrashReplayDecisionEquivalence) {
  // End-to-end chaos harness: crash mid-workload under injected faults,
  // recover, and demand a byte-identical decision stream.
  trace::Workload workload = trace::generate_cm5_small(/*seed=*/3, 600);
  const sim::ClusterSpec cluster = sim::cm5_heterogeneous(24.0, 16);
  for (const std::uint64_t seed : {1u, 2u}) {
    TempDir dir("crashreplay_" + std::to_string(seed));
    util::FaultInjector injector(seed);
    injector.arm_all({0.1, /*max_consecutive=*/3});
    sim::CrashReplayConfig config;
    config.matchd.durability.wal_dir = dir.path();
    config.matchd.durability.faults = &injector;
    config.crash_after = 200 + 50 * seed;
    config.torn_tail = seed % 2 == 1;
    const sim::CrashReplayResult result =
        sim::crash_replay(workload, cluster, config);
    EXPECT_EQ(result.decisions, workload.jobs.size());
    EXPECT_EQ(result.mismatches, 0u) << "seed " << seed;
    EXPECT_TRUE(result.identical());
    EXPECT_GT(result.recovery.wal_records, 0u);
  }
}

TEST(MatchdWalTest, ModelRecoveryRestoresAByteIdenticalTwin) {
  // The learned-model flavour of the tentpole property: with a quantile or
  // ensemble estimator attached, crash + recover() must restore the model
  // byte-identically, and the recovered service's decision stream must
  // track an uncrashed twin exactly from then on.
  for (const std::string name : {"quantile", "ensemble"}) {
    TempDir dir("model_" + name);
    TempDir twin_dir("model_twin_" + name);
    MatchdConfig config;
    config.durability.wal_dir = dir.path();
    config.model_estimator = name;
    // Warm quickly so grants genuinely diverge from pass-through before
    // the crash — otherwise the equality below would be vacuous.
    config.model_options.min_observations = 40;
    MatchdConfig twin_config = config;
    twin_config.durability.wal_dir = twin_dir.path();

    Matchd twin(twin_config);
    twin.set_ladder(test_ladder());
    std::vector<double> before;
    {
      Matchd service(config);
      service.set_ladder(test_ladder());
      ASSERT_TRUE(service.model_enabled());
      bool lowered = false;
      for (std::uint64_t n = 0; n < 300; ++n) {
        const trace::JobRecord job = make_job(n, /*groups=*/8);
        const MiB granted = drive_job(service, job);
        ASSERT_EQ(drive_job(twin, job), granted) << name << " job " << n;
        lowered = lowered ||
                  granted < test_ladder().round_up(job.requested_mem_mib);
      }
      EXPECT_TRUE(lowered) << name << " never left pass-through";
      before = service.model_state();
      ASSERT_FALSE(before.empty());
      service.simulate_crash(/*leave_torn_tail=*/name == "ensemble");
    }

    Matchd restarted(config);
    restarted.set_ladder(test_ladder());
    auto recovery = restarted.recover();
    ASSERT_TRUE(recovery.has_value()) << recovery.error();
    EXPECT_GT(recovery.value().model_records, 0u);
    EXPECT_EQ(recovery.value().invalid_records, 0u);
    EXPECT_EQ(restarted.model_state(), before) << name;
    EXPECT_EQ(restarted.model_state(), twin.model_state()) << name;

    // Post-recovery traffic: grants and the evolving model state must stay
    // in lockstep with the twin that never crashed.
    for (std::uint64_t n = 300; n < 420; ++n) {
      const trace::JobRecord job = make_job(n, /*groups=*/8);
      EXPECT_EQ(drive_job(restarted, job), drive_job(twin, job))
          << name << " job " << n;
    }
    EXPECT_EQ(restarted.model_state(), twin.model_state()) << name;
  }
}

TEST(MatchdWalTest, CrashReplayDecisionEquivalenceForLearnedModels) {
  // End-to-end: the crash-replay harness with a learned model attached —
  // the recovered stream must be byte-identical to the fault-free run,
  // and recovery must actually have replayed model-state frames.
  trace::Workload workload = trace::generate_cm5_small(/*seed=*/7, 500);
  const sim::ClusterSpec cluster = sim::cm5_heterogeneous(24.0, 16);
  for (const std::string name : {"quantile", "ensemble"}) {
    TempDir dir("crashmodel_" + name);
    sim::CrashReplayConfig config;
    config.matchd.durability.wal_dir = dir.path();
    config.matchd.model_estimator = name;
    config.matchd.model_options.min_observations = 50;
    config.crash_after = 250;
    config.torn_tail = name == "quantile";
    const sim::CrashReplayResult result =
        sim::crash_replay(workload, cluster, config);
    EXPECT_EQ(result.decisions, workload.jobs.size());
    EXPECT_EQ(result.mismatches, 0u) << name;
    EXPECT_TRUE(result.identical()) << name;
    EXPECT_GT(result.recovery.model_records, 0u) << name;
  }
}

TEST(MatchdWalTest, DegradedModeServesPassThroughAndRecovers) {
  TempDir dir("degraded");
  util::FaultInjector injector(5);
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.faults = &injector;
  config.durability.retry.max_attempts = 3;
  Matchd service(config);
  service.set_ladder(test_ladder());

  const trace::JobRecord lowered_job = make_job(1);
  // Teach the group so its grant is genuinely below the request.
  for (int i = 0; i < 5; ++i) drive_job(service, lowered_job);
  const MiB learned = service.submit(lowered_job).granted_mib;
  ASSERT_LT(learned, test_ladder().round_up(lowered_job.requested_mem_mib));

  // Persistent WAL failure: retries exhaust, service flips to degraded.
  injector.arm(util::FaultSite::kWalAppend, {1.0, UINT32_MAX});
  (void)service.submit(lowered_job);
  EXPECT_TRUE(service.degraded());
  EXPECT_GT(service.stats().wal_giveups, 0u);

  // Degraded submissions are pass-through: the raw rounded request, not
  // the learned estimate; feedback is dropped, not learned.
  const MatchDecision degraded = service.submit(lowered_job);
  EXPECT_EQ(degraded.granted_mib,
            test_ladder().round_up(lowered_job.requested_mem_mib));
  EXPECT_FALSE(degraded.lowered);
  service.feedback(lowered_job, core::Feedback{});
  EXPECT_GE(service.stats().degraded_ops, 2u);

  // Heal the log: the next operation's heartbeat probe restores service,
  // and the learned estimate is still there (memory was never lost).
  injector.arm(util::FaultSite::kWalAppend, {0.0, UINT32_MAX});
  const MatchDecision healed = service.submit(lowered_job);
  EXPECT_FALSE(service.degraded());
  EXPECT_LT(healed.granted_mib,
            test_ladder().round_up(lowered_job.requested_mem_mib));
}

TEST(MatchdWalTest, ShutdownFlushesBufferedRecords) {
  // With a huge flush cadence every record sits in user-space buffers;
  // only the destructor's drain-path flush makes them durable.
  TempDir dir("shutdown");
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.wal_flush_every = 1U << 20;
  config.workers = 2;  // exercise close-queue -> join -> flush ordering
  {
    Matchd service(config);
    service.set_ladder(test_ladder());
    for (std::uint64_t n = 0; n < 50; ++n) drive_job(service, make_job(n));
    service.drain();
  }  // clean shutdown
  std::size_t records = 0;
  auto replay = Wal::replay(
      dir.path(),
      [&](std::uint64_t, const double*, std::size_t) { ++records; });
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(records, 100u);  // every submit + feedback reached disk
}

TEST(MatchdWalTest, CrashDropsWhatFlushCadenceHadNotWritten) {
  // The counter-experiment to ShutdownFlushesBufferedRecords: crash
  // instead of shutting down and the buffered records are gone. Together
  // they pin the commit point exactly at the flush.
  TempDir dir("crashdrop");
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.wal_flush_every = 1U << 20;
  {
    Matchd service(config);
    service.set_ladder(test_ladder());
    for (std::uint64_t n = 0; n < 50; ++n) drive_job(service, make_job(n));
    service.simulate_crash();
  }
  std::size_t records = 0;
  auto replay = Wal::replay(
      dir.path(),
      [&](std::uint64_t, const double*, std::size_t) { ++records; });
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(records, 0u);
}

TEST(MatchdWalTest, CheckpointCompactsAndRecoversFromSnapshot) {
  TempDir dir("checkpoint");
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  std::multiset<std::string> before;
  {
    Matchd service(config);
    service.set_ladder(test_ladder());
    for (std::uint64_t n = 0; n < 300; ++n) drive_job(service, make_job(n));
    ASSERT_TRUE(service.checkpoint());
    EXPECT_EQ(service.stats().compactions, 1u);
    before = store_rows(service, "checkpoint_before");
    service.simulate_crash();
  }
  ASSERT_TRUE(std::filesystem::exists(dir.path() + "/snapshot.csv"));

  Matchd restarted(config);
  restarted.set_ladder(test_ladder());
  auto recovery = restarted.recover();
  ASSERT_TRUE(recovery.has_value()) << recovery.error();
  EXPECT_GT(recovery.value().snapshot_rows, 0u);
  EXPECT_EQ(recovery.value().wal_records, 0u);  // log was compacted away
  EXPECT_EQ(store_rows(restarted, "checkpoint_after"), before);
}

TEST(MatchdWalTest, FailedSnapshotKeepsOldGenerations) {
  TempDir dir("failedsnap");
  util::FaultInjector injector(9);
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.faults = &injector;
  config.durability.retry.max_attempts = 2;
  std::multiset<std::string> before;
  {
    Matchd service(config);
    service.set_ladder(test_ladder());
    for (std::uint64_t n = 0; n < 100; ++n) drive_job(service, make_job(n));
    // Snapshot write always fails: the checkpoint must report failure and
    // leave every pre-rotation log file in place.
    injector.arm(util::FaultSite::kStoreWrite, {1.0, UINT32_MAX});
    EXPECT_FALSE(service.checkpoint());
    EXPECT_EQ(service.stats().compactions, 0u);
    // Disarm so the comparison snapshot below goes through.
    injector.arm(util::FaultSite::kStoreWrite, {0.0, UINT32_MAX});
    before = store_rows(service, "failedsnap_before");
    service.simulate_crash();
  }
  Matchd restarted(config);
  restarted.set_ladder(test_ladder());
  auto recovery = restarted.recover();
  ASSERT_TRUE(recovery.has_value()) << recovery.error();
  EXPECT_EQ(recovery.value().wal_records, 200u);  // nothing was GC'd
  EXPECT_EQ(store_rows(restarted, "failedsnap_after"), before);
}

TEST(MatchdWalTest, FailedCompactionBacksOffInsteadOfRetryingPerOp) {
  // While snapshots fail, auto-compaction must not re-enter on every
  // committed operation: that would rotate a fresh generation of shard
  // files per op (unbounded disk) and run a full retried snapshot inline
  // on the serving thread. One rotation, then back off a compact_every
  // window between attempts — and never rotate again until the pending
  // snapshot lands.
  TempDir dir("compactbackoff");
  util::FaultInjector injector(37);
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.faults = &injector;
  config.durability.retry.max_attempts = 2;
  config.durability.compact_every = 20;
  Matchd service(config);
  service.set_ladder(test_ladder());

  injector.arm(util::FaultSite::kStoreWrite, {1.0, UINT32_MAX});
  for (std::uint64_t n = 0; n < 200; ++n) {
    drive_job(service, make_job(n));  // 400 appends = many failed attempts
  }
  EXPECT_EQ(service.stats().compactions, 0u);
  EXPECT_EQ(service.stats().wal.rotations, 1u);  // rotated once, ever

  // Disk heals: the next window's attempt finishes the pending snapshot
  // (without another rotation) and GC runs. 10 jobs = 20 appends crosses
  // the compact_every threshold exactly once wherever the counter stood.
  injector.arm(util::FaultSite::kStoreWrite, {0.0, UINT32_MAX});
  for (std::uint64_t n = 200; n < 210; ++n) {
    drive_job(service, make_job(n));
  }
  EXPECT_EQ(service.stats().compactions, 1u);
  EXPECT_EQ(service.stats().wal.rotations, 1u);
  ASSERT_TRUE(std::filesystem::exists(dir.path() + "/snapshot.csv"));

  // The healed checkpoint preserved everything: crash + recover matches.
  const std::multiset<std::string> before =
      store_rows(service, "compactbackoff_before");
  service.simulate_crash();
  Matchd restarted(config);
  restarted.set_ladder(test_ladder());
  auto recovery = restarted.recover();
  ASSERT_TRUE(recovery.has_value()) << recovery.error();
  EXPECT_EQ(store_rows(restarted, "compactbackoff_after"), before);
}

TEST(MatchdWalTest, ThreadSpawnFaultAbortsStartupCleanly) {
  TempDir dir("spawn");
  util::FaultInjector injector(13);
  injector.arm(util::FaultSite::kThreadSpawn, {1.0, UINT32_MAX});
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.faults = &injector;
  config.workers = 4;
  EXPECT_THROW({ Matchd service(config); }, std::runtime_error);
  // A second attempt with the fault cleared must start normally in the
  // same directory (no half-open files or stale locks left behind).
  injector.arm(util::FaultSite::kThreadSpawn, {0.0, UINT32_MAX});
  Matchd service(config);
  service.set_ladder(test_ladder());
  EXPECT_TRUE(service.async_enabled());
  (void)drive_job(service, make_job(1));
}

TEST(MatchdWalTest, QueueAdmitFaultReadsAsBackpressure) {
  util::FaultInjector injector(17);
  injector.arm(util::FaultSite::kQueueAdmit, {1.0, UINT32_MAX});
  MatchdConfig config;
  config.durability.faults = &injector;
  config.workers = 1;
  Matchd service(config);
  service.set_ladder(test_ladder());
  EXPECT_EQ(service.submit_async(make_job(1), nullptr), PushResult::kFull);
  EXPECT_EQ(service.stats().async_rejected_full, 1u);
  // The estimator adapter absorbs the rejection via its sync fallback.
  MatchdEstimator adapter(service);
  core::SystemState state;
  EXPECT_GT(adapter.estimate(make_job(1), state), 0.0);
}

// --- concurrency hammers (TSan targets) --------------------------------------

TEST(MatchdWalTest, ConcurrentFeedbackAndCompactionHammer) {
  TempDir dir("hammer");
  util::FaultInjector injector(23);
  // Low rate + cap 2 against 10 retry attempts: give-up probability is
  // negligible even with cross-thread interleavings resetting the cap.
  injector.arm(util::FaultSite::kWalAppend, {0.02, 2});
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.faults = &injector;
  config.durability.retry.max_attempts = 10;
  config.durability.retry.initial_backoff = std::chrono::microseconds(1);
  config.store.shards = 8;

  std::multiset<std::string> before;
  {
    Matchd service(config);
    service.set_ladder(test_ladder());
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kOpsPerThread = 1500;
    std::atomic<bool> stop{false};
    std::thread compactor([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)service.checkpoint();
        std::this_thread::yield();
      }
    });
    {
      std::vector<std::thread> drivers;
      for (std::size_t t = 0; t < kThreads; ++t) {
        drivers.emplace_back([&, t] {
          for (std::size_t i = 0; i < kOpsPerThread; ++i) {
            drive_job(service, make_job(t * kOpsPerThread + i));
          }
        });
      }
      for (auto& d : drivers) d.join();
    }
    stop.store(true, std::memory_order_relaxed);
    compactor.join();

    EXPECT_EQ(service.invariant_violations(), 0u);
    ASSERT_EQ(service.stats().wal_giveups, 0u);
    EXPECT_FALSE(service.degraded());
    before = store_rows(service, "hammer_before");
    service.simulate_crash();
  }

  // Every committed mutation was logged under its shard lock, so replay
  // over the last snapshot reconstructs the exact concurrent state.
  Matchd restarted(config);
  restarted.set_ladder(test_ladder());
  auto recovery = restarted.recover();
  ASSERT_TRUE(recovery.has_value()) << recovery.error();
  EXPECT_EQ(store_rows(restarted, "hammer_after"), before);
}

// --- batched admission durability --------------------------------------------

TEST(MatchdWalTest, BackoffSleepsDoNotHoldShardLock) {
  // Regression: wal_append_locked used to run its RetryPolicy backoff
  // sleeps INSIDE the estimator-store shard lock, so one key's disk
  // trouble stalled every reader of the shard for the full retry budget.
  // The fix buffers frames under the lock and retries the commit after
  // release; anything needing the shard lock (here: stats(), which sizes
  // the store) must stay fast while a writer is mid-backoff.
  TempDir dir("backoff_lock");
  util::FaultInjector injector(11);
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.faults = &injector;
  config.durability.retry.max_attempts = 3;
  config.durability.retry.initial_backoff = std::chrono::microseconds(150'000);
  config.durability.retry.max_backoff = std::chrono::microseconds(150'000);
  config.durability.retry.multiplier = 1.0;
  config.durability.retry.jitter = 0.0;
  config.store.shards = 1;  // the one stripe everything contends on
  Matchd service(config);
  service.set_ladder(test_ladder());
  drive_job(service, make_job(1));  // healthy warm-up

  // Every flush fails: the submit below spends ~300ms in backoff sleeps.
  injector.arm(util::FaultSite::kWalAppend, {1.0, UINT32_MAX});
  std::thread writer([&service] { (void)service.submit(make_job(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = std::chrono::steady_clock::now();
  (void)service.stats();
  const auto stalled = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  writer.join();

  EXPECT_LT(stalled.count(), 150)
      << "stats() blocked behind a WAL retry backoff: the shard lock is "
         "being held across the sleeps again";
  EXPECT_TRUE(service.degraded());
  EXPECT_GT(service.stats().wal_giveups, 0u);
}

TEST(MatchdWalTest, BatchCommitPointMakesEveryBatchDurable) {
  // Counter-experiment to CrashDropsWhatFlushCadenceHadNotWritten: the
  // same never-flush cadence, but ops go through the BATCHED worker path,
  // whose per-batch forced flush+fsync is its own commit point. A crash
  // after drain() must lose nothing.
  TempDir dir("batchcommit");
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.wal_flush_every = 1U << 20;
  config.workers = 2;
  config.queue_capacity = 2048;
  config.batch_max = 16;
  constexpr std::uint64_t kJobs = 200;
  {
    Matchd service(config);
    service.set_ladder(test_ladder());
    std::atomic<std::uint64_t> resolved{0};
    for (std::uint64_t n = 0; n < kJobs; ++n) {
      const trace::JobRecord job = make_job(n);
      ASSERT_EQ(service.submit_async(
                    job,
                    [&service, &resolved, job](const MatchDecision& d) {
                      core::Feedback fb;
                      fb.granted_mib = d.granted_mib;
                      fb.success = job.used_mem_mib <= d.granted_mib;
                      fb.used_mib = job.used_mem_mib;
                      ASSERT_EQ(service.feedback_async(
                                    JobOutcome{job, fb},
                                    [&resolved] { resolved.fetch_add(1); }),
                                PushResult::kOk);
                    }),
                PushResult::kOk);
    }
    while (resolved.load() < kJobs) service.drain();
    service.simulate_crash();
  }
  std::size_t records = 0;
  auto replay = Wal::replay(
      dir.path(),
      [&](std::uint64_t, const double*, std::size_t) { ++records; });
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(records, 2 * kJobs);  // every batched submit + feedback
}

TEST(MatchdWalTest, FailedBatchCommitKeepsFramesBufferedInOrder) {
  // When the per-batch flush fails past retries the service degrades, but
  // the already-encoded frames stay in the shard buffer IN ORDER: once
  // the log heals, the next commit writes them before anything newer, so
  // recovery still reconstructs the exact live state.
  TempDir dir("batchfail");
  util::FaultInjector injector(29);
  MatchdConfig config;
  config.durability.wal_dir = dir.path();
  config.durability.faults = &injector;
  config.durability.retry.max_attempts = 2;
  config.durability.retry.initial_backoff = std::chrono::microseconds(1);
  config.store.shards = 1;
  config.workers = 2;
  config.batch_max = 8;

  std::multiset<std::string> before;
  {
    Matchd service(config);
    service.set_ladder(test_ladder());
    MatchdEstimator adapter(service);
    const auto drive_async = [&](std::uint64_t n) {
      const trace::JobRecord job = make_job(n);
      const MiB granted = adapter.estimate(job, core::SystemState{});
      core::Feedback fb;
      fb.granted_mib = granted;
      fb.success = job.used_mem_mib <= granted;
      fb.used_mib = job.used_mem_mib;
      adapter.feedback(job, fb);
    };
    for (std::uint64_t n = 0; n < 20; ++n) drive_async(n);

    // This op's transition commits to the store, but its batch flush
    // fails: frame buffered, service degraded.
    injector.arm(util::FaultSite::kWalAppend, {1.0, UINT32_MAX});
    drive_async(100);
    service.drain();
    EXPECT_TRUE(service.degraded());
    EXPECT_GT(service.stats().wal_giveups, 0u);

    // Heal: the heartbeat probe restores service and the buffered frames
    // ride out with the next successful commit.
    injector.arm(util::FaultSite::kWalAppend, {0.0, UINT32_MAX});
    for (std::uint64_t n = 200; n < 210; ++n) drive_async(n);
    service.drain();
    EXPECT_FALSE(service.degraded());

    before = store_rows(service, "batchfail_before");
    service.simulate_crash();
  }

  Matchd restarted(config);
  restarted.set_ladder(test_ladder());
  auto recovery = restarted.recover();
  ASSERT_TRUE(recovery.has_value()) << recovery.error();
  EXPECT_EQ(store_rows(restarted, "batchfail_after"), before);
}

}  // namespace
}  // namespace resmatch::svc
