// Tests for gang matching: one-to-many co-allocation with aggregate
// constraints (the Liu et al. / gangmatching primitive from the paper's
// related work).
#include <gtest/gtest.h>

#include "match/gangmatch.hpp"

namespace resmatch::match {
namespace {

ClassAd machine(double memory, const std::string& domain = "a") {
  ClassAd ad;
  ad.set("memory", memory);
  ad.set("domain", domain);
  return ad;
}

ClassAd member(double req_memory) {
  ClassAd ad;
  ad.set("req_memory", req_memory);
  ad.set_expr("requirements", "other.memory >= my.req_memory");
  ad.set_expr("rank", "other.memory");
  return ad;
}

TEST(GangMatch, EmptyGangMatchesTrivially) {
  const auto result = gang_match({}, {machine(32)});
  EXPECT_TRUE(result.matched);
  EXPECT_TRUE(result.assignment.empty());
}

TEST(GangMatch, SimpleInjectiveAssignment) {
  const std::vector<ClassAd> machines = {machine(8), machine(16), machine(32)};
  const std::vector<ClassAd> gang = {member(16), member(8)};
  const auto result = gang_match(gang, machines);
  ASSERT_TRUE(result.matched);
  ASSERT_EQ(result.assignment.size(), 2u);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
}

TEST(GangMatch, MoreMembersThanMachinesFails) {
  const auto result =
      gang_match({member(8), member(8)}, {machine(32)});
  EXPECT_FALSE(result.matched);
}

TEST(GangMatch, UnmatchableMemberFailsFast) {
  const auto result =
      gang_match({member(64)}, {machine(32), machine(16)});
  EXPECT_FALSE(result.matched);
  EXPECT_EQ(result.steps, 0u);  // pruned before any search
}

TEST(GangMatch, BacktracksWhenGreedyCollides) {
  // Both members prefer the 32 MiB machine (rank = memory); the second
  // member only fits there. The search must back off the first member's
  // greedy pick.
  const std::vector<ClassAd> machines = {machine(8), machine(32)};
  const std::vector<ClassAd> gang = {member(8), member(32)};
  const auto result = gang_match(gang, machines);
  ASSERT_TRUE(result.matched);
  EXPECT_EQ(result.assignment[0], 0u);  // 8 MiB machine
  EXPECT_EQ(result.assignment[1], 1u);  // 32 MiB machine
}

TEST(GangMatch, TotalAtLeastAggregate) {
  const std::vector<ClassAd> machines = {machine(8), machine(16), machine(32)};
  GangMatchOptions options;
  options.aggregate = total_at_least(machines, "memory", 40.0);
  const auto result = gang_match({member(1), member(1)}, machines, options);
  ASSERT_TRUE(result.matched);
  double total = 0.0;
  for (const auto idx : result.assignment) {
    total += machines[idx].evaluate("memory").as_number();
  }
  EXPECT_GE(total, 40.0);
}

TEST(GangMatch, TotalAtLeastCanBeUnsatisfiable) {
  const std::vector<ClassAd> machines = {machine(8), machine(16)};
  GangMatchOptions options;
  options.aggregate = total_at_least(machines, "memory", 100.0);
  EXPECT_FALSE(gang_match({member(1), member(1)}, machines, options).matched);
}

TEST(GangMatch, AllEqualDomainAggregate) {
  const std::vector<ClassAd> machines = {
      machine(32, "east"), machine(32, "west"), machine(16, "west")};
  GangMatchOptions options;
  options.aggregate = all_equal(machines, "domain");
  const auto result = gang_match({member(8), member(8)}, machines, options);
  ASSERT_TRUE(result.matched);
  const auto d0 =
      machines[result.assignment[0]].evaluate("domain").as_string();
  const auto d1 =
      machines[result.assignment[1]].evaluate("domain").as_string();
  EXPECT_EQ(d0, d1);
  EXPECT_EQ(d0, "west");  // the only domain with two machines
}

TEST(GangMatch, AllEqualRejectsMissingAttribute) {
  std::vector<ClassAd> machines = {machine(32), machine(32)};
  machines[1] = ClassAd{};  // no domain, no memory
  machines[1].set("memory", 32.0);
  GangMatchOptions options;
  options.aggregate = all_equal(machines, "domain");
  // Assignments touching the attribute-less machine are rejected, but a
  // single-member gang on machine 0 succeeds trivially (no pair to
  // compare) — all_equal of one element holds.
  const auto result = gang_match({member(8)}, machines, options);
  EXPECT_TRUE(result.matched);
  const auto pair = gang_match({member(8), member(8)}, machines, options);
  EXPECT_FALSE(pair.matched);
}

TEST(GangMatch, PrefixPrunerCutsSearch) {
  // Prune any branch whose first member is machine 1: the pruner must be
  // respected and the final assignment must avoid it.
  const std::vector<ClassAd> machines = {machine(16), machine(32),
                                         machine(16)};
  GangMatchOptions options;
  options.prefix_ok = [](const std::vector<std::size_t>& partial) {
    return partial.front() != 1;
  };
  const auto result = gang_match({member(8), member(8)}, machines, options);
  ASSERT_TRUE(result.matched);
  EXPECT_NE(result.assignment[0], 1u);
}

TEST(GangMatch, StepBudgetReportsExhaustion) {
  // A large unsatisfiable instance with a tiny budget.
  std::vector<ClassAd> machines;
  for (int i = 0; i < 10; ++i) machines.push_back(machine(32));
  std::vector<ClassAd> gang;
  for (int i = 0; i < 8; ++i) gang.push_back(member(8));
  GangMatchOptions options;
  options.aggregate = total_at_least(machines, "memory", 1e9);  // impossible
  options.max_steps = 50;
  const auto result = gang_match(gang, machines, options);
  EXPECT_FALSE(result.matched);
  EXPECT_TRUE(result.budget_exhausted);
}

TEST(GangMatch, RanksGuideFirstSolution) {
  // With no constraints forcing otherwise, each member takes its highest-
  // ranked machine that is still free.
  const std::vector<ClassAd> machines = {machine(8), machine(16), machine(32)};
  const auto result = gang_match({member(1), member(1)}, machines);
  ASSERT_TRUE(result.matched);
  EXPECT_EQ(result.assignment[0], 2u);  // 32 first (highest rank)
  EXPECT_EQ(result.assignment[1], 1u);  // then 16
}

}  // namespace
}  // namespace resmatch::match
