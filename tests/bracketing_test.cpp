// Tests for the bracketing estimator — the robust-search extension the
// paper defers to Anderson & Ferris (§2.3).
#include <gtest/gtest.h>

#include "core/bracketing.hpp"
#include "core/successive_approximation.hpp"

namespace resmatch::core {
namespace {

trace::JobRecord make_job(MiB req, MiB used, UserId user = 1) {
  trace::JobRecord j;
  j.id = 1;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  j.user = user;
  j.app = 1;
  j.nodes = 32;
  j.runtime = 100;
  return j;
}

MiB cycle(Estimator& est, const trace::JobRecord& job) {
  const MiB grant = est.estimate(job, {});
  Feedback fb;
  fb.success = grant + 1e-9 >= job.used_mem_mib;
  fb.granted_mib = grant;
  est.feedback(job, fb);
  return grant;
}

TEST(Bracketing, FirstSubmissionUsesRequest) {
  BracketingEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  EXPECT_DOUBLE_EQ(est.estimate(make_job(32, 5), {}), 32.0);
}

TEST(Bracketing, ConvergesToTightCapacity) {
  BracketingEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.2);
  for (int i = 0; i < 12; ++i) (void)cycle(est, job);
  // 5.2 MiB usage needs the 8 MiB rung; the bracket must settle there.
  EXPECT_DOUBLE_EQ(cycle(est, job), 8.0);
  ASSERT_TRUE(est.group_capacity(job).has_value());
  EXPECT_LE(*est.group_capacity(job), 8.0);
}

TEST(Bracketing, LogarithmicProbeCount) {
  // The bisection must finish in O(log ladder) probes: count distinct
  // grants before stabilization on a 12-rung ladder.
  BracketingEstimator est;
  est.set_ladder(CapacityLadder(
      {0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}));
  const auto job = make_job(512.0, 3.0);
  std::vector<MiB> grants;
  for (int i = 0; i < 16; ++i) grants.push_back(cycle(est, job));
  // Once stable, all remaining grants equal the last one.
  const MiB final_grant = grants.back();
  EXPECT_DOUBLE_EQ(final_grant, 4.0);
  std::size_t settle = grants.size();
  while (settle > 0 && grants[settle - 1] == final_grant) --settle;
  EXPECT_LE(settle, 6u);  // ~log2(12 rungs) + seed probes
}

TEST(Bracketing, RecoversFromWithinGroupVariance) {
  // Two members with different usage: convergence must end at a capacity
  // safe for BOTH (Algorithm 1's documented failure mode, §2.3).
  BracketingEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto small = make_job(32.0, 5.0);
  const auto big = make_job(32.0, 14.0);  // same group (same user/app/req)
  for (int i = 0; i < 20; ++i) {
    (void)cycle(est, i % 2 ? small : big);
  }
  // Steady state: both succeed, so the grant covers 14 MiB.
  const MiB grant_small = cycle(est, small);
  const MiB grant_big = cycle(est, big);
  EXPECT_GE(grant_big, 14.0);
  EXPECT_LE(grant_big, 16.0);
  EXPECT_EQ(grant_small, grant_big);  // one capacity per group
}

TEST(Bracketing, NeverCoarserThanSuccessiveApproxUnderVariance) {
  // Head-to-head on the variance scenario: bracketing's converged grant
  // is never coarser than what Algorithm 1 (with safe-grant escalation)
  // settles on, and both end at a capacity safe for the bigger member.
  SuccessiveApproximationEstimator sa;
  BracketingEstimator br;
  for (Estimator* est : {static_cast<Estimator*>(&sa),
                         static_cast<Estimator*>(&br)}) {
    est->set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  }
  const auto small = make_job(32.0, 5.0);
  const auto big = make_job(32.0, 14.0);
  for (int i = 0; i < 24; ++i) {
    (void)cycle(sa, i % 2 ? small : big);
    (void)cycle(br, i % 2 ? small : big);
  }
  const MiB sa_grant = cycle(sa, big);
  const MiB br_grant = cycle(br, big);
  EXPECT_LE(br_grant, 16.0);
  // Algorithm 1 ends at whatever its single-level restore + escalation
  // leaves; it must be safe but is strictly coarser than the bracket.
  EXPECT_GE(sa_grant, br_grant);
}

TEST(Bracketing, ProbesSerialized) {
  BracketingEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  // First dispatch grants the request (no bracket info yet, hi = 32).
  const MiB g1 = est.estimate(job, {});
  EXPECT_DOUBLE_EQ(g1, 32.0);
  Feedback ok;
  ok.success = true;
  ok.granted_mib = g1;
  est.feedback(job, ok);
  // Next dispatch probes below; a concurrent one must get the safe 32...
  const MiB probe = est.estimate(job, {});
  EXPECT_LT(probe, 32.0);
  const MiB concurrent = est.estimate(job, {});
  EXPECT_DOUBLE_EQ(concurrent, 32.0);
  // ...until the probe's outcome arrives.
  Feedback probe_ok;
  probe_ok.success = true;
  probe_ok.granted_mib = probe;
  est.feedback(job, probe_ok);
  EXPECT_LE(est.estimate(job, {}), probe);
}

TEST(Bracketing, CancelReleasesProbeSlot) {
  BracketingEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  (void)cycle(est, job);  // establish hi = 32 success
  const MiB probe = est.estimate(job, {});
  ASSERT_LT(probe, 32.0);
  est.cancel(job, probe);
  // Slot released: the next dispatch may probe again.
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), probe);
}

TEST(Bracketing, PreviewHasNoSideEffects) {
  BracketingEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  EXPECT_DOUBLE_EQ(est.preview(job, {}), 32.0);
  EXPECT_EQ(est.group_count(), 0u);  // preview creates no group
  (void)cycle(est, job);
  const MiB before = est.preview(job, {});
  EXPECT_DOUBLE_EQ(est.preview(job, {}), before);  // idempotent
}

TEST(Bracketing, FalsePositiveWidensNotCorrupts) {
  BracketingEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  for (int i = 0; i < 10; ++i) (void)cycle(est, job);
  const MiB settled = cycle(est, job);
  EXPECT_DOUBLE_EQ(settled, 8.0);
  // Inject an intrinsic failure at the settled capacity.
  const MiB grant = est.estimate(job, {});
  Feedback fail;
  fail.success = false;
  fail.granted_mib = grant;
  est.feedback(job, fail);
  // The bracket widened one rung (to 16) rather than resetting to the
  // request; the job keeps running on modest grants.
  for (int i = 0; i < 10; ++i) (void)cycle(est, job);
  EXPECT_LE(cycle(est, job), 16.0);
}

TEST(Bracketing, GroupsIndependent) {
  BracketingEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto a = make_job(32.0, 5.0, /*user=*/1);
  const auto b = make_job(32.0, 30.0, /*user=*/2);
  for (int i = 0; i < 10; ++i) {
    (void)cycle(est, a);
    (void)cycle(est, b);
  }
  EXPECT_LE(cycle(est, a), 8.0);
  EXPECT_DOUBLE_EQ(cycle(est, b), 32.0);
  EXPECT_EQ(est.group_count(), 2u);
}

}  // namespace
}  // namespace resmatch::core
