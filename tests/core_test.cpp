// Unit tests for core support types: the capacity ladder (Algorithm 1's
// rounding), online similarity indexing, the multi-resource generalization
// and the prerequisite-package estimator.
#include <gtest/gtest.h>

#include "core/capacity_ladder.hpp"
#include "core/multi_resource.hpp"
#include "core/prereq_estimator.hpp"
#include "core/similarity.hpp"

namespace resmatch::core {
namespace {

trace::JobRecord job_of(UserId user, AppId app, MiB req) {
  trace::JobRecord j;
  j.user = user;
  j.app = app;
  j.requested_mem_mib = req;
  j.used_mem_mib = req / 2;
  j.runtime = 100;
  j.nodes = 32;
  return j;
}

TEST(CapacityLadder, RoundUpPicksSmallestAdequate) {
  CapacityLadder ladder({32.0, 24.0, 8.0});
  EXPECT_DOUBLE_EQ(ladder.round_up(5.0), 8.0);
  EXPECT_DOUBLE_EQ(ladder.round_up(8.0), 8.0);
  EXPECT_DOUBLE_EQ(ladder.round_up(8.1), 24.0);
  EXPECT_DOUBLE_EQ(ladder.round_up(24.5), 32.0);
  EXPECT_DOUBLE_EQ(ladder.round_up(32.0), 32.0);
}

TEST(CapacityLadder, AboveMaxReturnsValueUnchanged) {
  CapacityLadder ladder({32.0});
  EXPECT_DOUBLE_EQ(ladder.round_up(33.0), 33.0);
}

TEST(CapacityLadder, EmptyLadderIsIdentity) {
  CapacityLadder ladder;
  EXPECT_TRUE(ladder.empty());
  EXPECT_DOUBLE_EQ(ladder.round_up(7.5), 7.5);
}

TEST(CapacityLadder, DeduplicatesAndSorts) {
  CapacityLadder ladder({32.0, 8.0, 32.0, 24.0, 8.0});
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_DOUBLE_EQ(ladder.min(), 8.0);
  EXPECT_DOUBLE_EQ(ladder.max(), 32.0);
}

TEST(CapacityLadder, RoundDown) {
  CapacityLadder ladder({8.0, 24.0, 32.0});
  EXPECT_EQ(ladder.round_down(30.0), 24.0);
  EXPECT_EQ(ladder.round_down(8.0), 8.0);
  EXPECT_FALSE(ladder.round_down(7.0).has_value());
}

TEST(CapacityLadder, ToleratesFloatingPointNoise) {
  CapacityLadder ladder({24.0});
  // 48/2 computed in floating point must still land on the 24 rung.
  EXPECT_DOUBLE_EQ(ladder.round_up(48.0 / 2.0), 24.0);
}

TEST(SimilarityIndex, AssignsDenseIdsInFirstSeenOrder) {
  SimilarityIndex index;
  EXPECT_EQ(index.group_of(job_of(1, 1, 32)), 0u);
  EXPECT_EQ(index.group_of(job_of(2, 1, 32)), 1u);
  EXPECT_EQ(index.group_of(job_of(1, 1, 32)), 0u);  // repeat -> same group
  EXPECT_EQ(index.group_count(), 2u);
}

TEST(SimilarityIndex, FindWithoutCreating) {
  SimilarityIndex index;
  EXPECT_FALSE(index.find(job_of(1, 1, 32)).has_value());
  (void)index.group_of(job_of(1, 1, 32));
  EXPECT_EQ(index.find(job_of(1, 1, 32)), 0u);
  EXPECT_EQ(index.group_count(), 1u);
}

TEST(SimilarityIndex, CustomKeyFunction) {
  // Group by user only.
  SimilarityIndex index(
      [](const trace::JobRecord& j) { return static_cast<std::uint64_t>(j.user); });
  EXPECT_EQ(index.group_of(job_of(1, 1, 32)), index.group_of(job_of(1, 9, 8)));
  EXPECT_NE(index.group_of(job_of(1, 1, 32)), index.group_of(job_of(2, 1, 32)));
}

TEST(MultiResource, FirstEstimateProbesOneCoordinate) {
  MultiResourceEstimator est(2, {2.0, 0.0});
  const auto e = est.estimate(0, {32.0, 100.0});
  // Exactly one coordinate halved, the other at the request.
  EXPECT_DOUBLE_EQ(e[0], 16.0);
  EXPECT_DOUBLE_EQ(e[1], 100.0);
}

TEST(MultiResource, RoundRobinAcrossCoordinates) {
  MultiResourceEstimator est(2, {2.0, 0.0});
  auto e1 = est.estimate(0, {32.0, 100.0});
  est.feedback(0, true);  // adopt {16, 100}
  auto e2 = est.estimate(0, {32.0, 100.0});
  EXPECT_DOUBLE_EQ(e2[0], 16.0);
  EXPECT_DOUBLE_EQ(e2[1], 50.0);  // now probes the second coordinate
  est.feedback(0, true);
  auto e3 = est.estimate(0, {32.0, 100.0});
  EXPECT_DOUBLE_EQ(e3[0], 8.0);  // back to the first
  EXPECT_DOUBLE_EQ(e3[1], 50.0);
}

TEST(MultiResource, FailureBlamesOnlyProbedCoordinate) {
  MultiResourceEstimator est(2, {2.0, 0.0});
  (void)est.estimate(0, {32.0, 100.0});  // probes coord 0 -> {16, 100}
  est.feedback(0, false);                // coord 0 frozen at 32
  const auto e = est.estimate(0, {32.0, 100.0});
  EXPECT_DOUBLE_EQ(e[0], 32.0);  // restored and frozen (beta = 0)
  EXPECT_DOUBLE_EQ(e[1], 50.0);  // coord 1 still explorable
  est.feedback(0, true);
  const auto good = est.last_good(0);
  ASSERT_TRUE(good.has_value());
  EXPECT_DOUBLE_EQ((*good)[0], 32.0);
  EXPECT_DOUBLE_EQ((*good)[1], 50.0);
}

TEST(MultiResource, BetaDampsInsteadOfFreezing) {
  MultiResourceEstimator est(1, {4.0, 0.5});
  (void)est.estimate(0, {32.0});  // probe 8
  est.feedback(0, false);         // alpha 4 -> 2
  const auto e = est.estimate(0, {32.0});
  EXPECT_DOUBLE_EQ(e[0], 16.0);  // finer probe
}

TEST(MultiResource, GroupsAreIndependent) {
  MultiResourceEstimator est(1, {2.0, 0.0});
  (void)est.estimate(0, {32.0});
  est.feedback(0, true);
  const auto other = est.estimate(1, {8.0});
  EXPECT_DOUBLE_EQ(other[0], 4.0);  // fresh group starts from its request
  EXPECT_EQ(est.group_count(), 2u);
}

TEST(MultiResource, FeedbackWithoutEstimateIsIgnored) {
  MultiResourceEstimator est(1);
  est.feedback(42, true);  // no crash, no state
  EXPECT_EQ(est.group_count(), 0u);
}

TEST(Prereq, FirstEstimateDropsOneUnknown) {
  PrerequisiteEstimator est;
  const auto req = est.estimate(0, 3);
  ASSERT_EQ(req.size(), 3u);
  EXPECT_EQ(req[0], false);  // the probed prerequisite
  EXPECT_EQ(req[1], true);
  EXPECT_EQ(req[2], true);
}

TEST(Prereq, SuccessMarksDroppable) {
  PrerequisiteEstimator est;
  (void)est.estimate(0, 2);  // drops prereq 0
  est.feedback(0, true);
  EXPECT_EQ(est.status(0, 0), PrerequisiteEstimator::Status::kDroppable);
  const auto next = est.estimate(0, 2);
  EXPECT_EQ(next[0], false);  // stays dropped
  EXPECT_EQ(next[1], false);  // now probing prereq 1
}

TEST(Prereq, FailureMarksRequired) {
  PrerequisiteEstimator est;
  (void)est.estimate(0, 2);
  est.feedback(0, false);
  EXPECT_EQ(est.status(0, 0), PrerequisiteEstimator::Status::kRequired);
  const auto next = est.estimate(0, 2);
  EXPECT_EQ(next[0], true);   // required forever
  EXPECT_EQ(next[1], false);  // probing the other one
}

TEST(Prereq, ConvergesToExactRequiredSet) {
  // Ground truth: prereqs {0, 2} required, {1, 3} unused.
  PrerequisiteEstimator est;
  const std::vector<bool> truly_needed = {true, false, true, false};
  for (int round = 0; round < 8; ++round) {
    const auto req = est.estimate(7, 4);
    bool success = true;
    for (std::size_t i = 0; i < 4; ++i) {
      if (truly_needed[i] && !req[i]) success = false;
    }
    est.feedback(7, success);
  }
  const auto final_req = est.estimate(7, 4);
  EXPECT_TRUE(final_req[0]);
  EXPECT_FALSE(final_req[1]);
  EXPECT_TRUE(final_req[2]);
  EXPECT_FALSE(final_req[3]);
  EXPECT_EQ(est.droppable_count(7), 2u);
}

TEST(Prereq, NothingLeftToProbeRequiresOnlyRequired) {
  PrerequisiteEstimator est;
  (void)est.estimate(0, 1);
  est.feedback(0, false);  // the only prereq is required
  const auto req = est.estimate(0, 1);
  EXPECT_TRUE(req[0]);
  // Feedback when nothing was probed teaches nothing and must not flip state.
  est.feedback(0, true);
  EXPECT_EQ(est.status(0, 0), PrerequisiteEstimator::Status::kRequired);
}

}  // namespace
}  // namespace resmatch::core
