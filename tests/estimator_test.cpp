// Tests for the Table 1 estimators, including a step-by-step replay of the
// paper's Figure 7 trajectory for Algorithm 1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ensemble_estimator.hpp"
#include "core/factory.hpp"
#include "core/last_instance.hpp"
#include "core/quantile_estimator.hpp"
#include "core/regression_estimator.hpp"
#include "core/rl_estimator.hpp"
#include "core/successive_approximation.hpp"
#include "util/rng.hpp"

namespace resmatch::core {
namespace {

trace::JobRecord make_job(MiB req, MiB used, UserId user = 1, AppId app = 1,
                          JobId id = 1) {
  trace::JobRecord j;
  j.id = id;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  j.user = user;
  j.app = app;
  j.nodes = 32;
  j.runtime = 100;
  j.requested_time = 200;
  return j;
}

/// Drive one submission cycle against ground-truth usage with memory-limit
/// semantics (success iff grant >= used); returns the grant.
MiB submit_cycle(Estimator& est, const trace::JobRecord& job,
                 bool explicit_feedback = false) {
  const MiB grant = est.estimate(job, SystemState{});
  Feedback fb;
  fb.success = grant + 1e-9 >= job.used_mem_mib;
  fb.granted_mib = grant;
  if (explicit_feedback) {
    fb.used_mib = job.used_mem_mib;
    fb.resource_failure = !fb.success;
  }
  est.feedback(job, fb);
  return grant;
}

// --- NoEstimator -----------------------------------------------------------

TEST(NoEstimator, PassesRequestThrough) {
  NoEstimator est;
  est.set_ladder(CapacityLadder({8.0, 24.0, 32.0}));
  EXPECT_DOUBLE_EQ(est.estimate(make_job(32, 5), {}), 32.0);
  // Rounds to an actual capacity.
  EXPECT_DOUBLE_EQ(est.estimate(make_job(20, 5), {}), 24.0);
}

// --- SuccessiveApproximationEstimator ---------------------------------------

TEST(SuccessiveApprox, Figure7Trajectory) {
  // Paper Figure 7: request 32 MiB, actual usage slightly above 5 MiB,
  // alpha = 2, beta = 0, power-of-two capacity ladder. The grant sequence
  // is 32, 16, 8, 4 (fails: 4 < 5.2), then 8 forever.
  SuccessiveApproxConfig cfg;
  cfg.alpha = 2.0;
  cfg.beta = 0.0;
  cfg.record_trajectories = true;
  SuccessiveApproximationEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));

  const auto job = make_job(32.0, 5.2);
  std::vector<MiB> grants;
  for (int i = 0; i < 7; ++i) grants.push_back(submit_cycle(est, job));

  const std::vector<MiB> expected = {32, 16, 8, 4, 8, 8, 8};
  ASSERT_EQ(grants.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(grants[i], expected[i]) << "cycle " << i;
  }
  EXPECT_EQ(est.trajectory(job), grants);
  EXPECT_EQ(est.total_failures(), 1u);
  EXPECT_EQ(est.total_successes(), 6u);
}

TEST(SuccessiveApprox, PaperSection23LadderStall) {
  // Paper §2.3: request 32, usage 4, machines {32, 24, 4}, alpha = 2:
  // grants go 32 -> 24 (E = 16 rounds up) -> ... the estimate ping-pongs
  // E = 24/2 = 12 -> E' = 24, never reaching the 4 MiB machines. This is
  // the documented alpha-too-low phenomenon.
  SuccessiveApproxConfig cfg;
  cfg.alpha = 2.0;
  SuccessiveApproximationEstimator est(cfg);
  est.set_ladder(CapacityLadder({4, 24, 32}));
  const auto job = make_job(32.0, 4.0);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 32.0);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 24.0);  // E = 16 -> rounds to 24
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 24.0);  // E = 12 -> rounds to 24
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 24.0);  // stuck, as the paper says
}

TEST(SuccessiveApprox, HigherAlphaReachesSmallMachines) {
  // Same scenario with alpha = 10 (paper §2.3): 32 -> 4 in one step.
  SuccessiveApproxConfig cfg;
  cfg.alpha = 10.0;
  SuccessiveApproximationEstimator est(cfg);
  est.set_ladder(CapacityLadder({4, 24, 32}));
  const auto job = make_job(32.0, 4.0);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 32.0);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 4.0);  // E = 3.2 -> rounds to 4
}

TEST(SuccessiveApprox, BetaEnablesFinerDescent) {
  // With beta = 0.5 a failure halves alpha instead of freezing: after
  // failing at 4 the estimator retries at 8/sqrt-ish granularity.
  SuccessiveApproxConfig cfg;
  cfg.alpha = 4.0;
  cfg.beta = 0.5;
  SuccessiveApproximationEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.2);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 32.0);  // E -> 8
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 8.0);   // E -> 2
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 2.0);   // fails, alpha -> 2, E -> 8
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 8.0);   // E -> 4
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 4.0);   // fails, alpha -> 1, E -> 8
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 8.0);   // frozen at 8 (alpha = 1)
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 8.0);
}

TEST(SuccessiveApprox, GroupsLearnIndependently) {
  SuccessiveApproximationEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto a = make_job(32.0, 5.2, /*user=*/1);
  const auto b = make_job(32.0, 20.0, /*user=*/2);
  (void)submit_cycle(est, a);
  (void)submit_cycle(est, a);
  // Group b starts fresh despite a's progress.
  EXPECT_DOUBLE_EQ(submit_cycle(est, b), 32.0);
  EXPECT_EQ(est.group_count(), 2u);
}

TEST(SuccessiveApprox, NeverEstimatesBelowFrozenFloor) {
  // Once alpha hits 1 (beta = 0, one failure) the estimate is pinned; no
  // amount of further successes lowers it.
  SuccessiveApproximationEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.2);
  for (int i = 0; i < 20; ++i) (void)submit_cycle(est, job);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 8.0);
}

TEST(SuccessiveApprox, EmptyLadderUsesRawEstimates) {
  // Without a ladder (standalone mode) the estimate halves freely: the
  // Figure 7 sequence without rounding.
  SuccessiveApproximationEstimator est;
  const auto job = make_job(32.0, 5.2);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 32.0);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 16.0);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 8.0);
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 4.0);   // fails
  EXPECT_DOUBLE_EQ(submit_cycle(est, job), 8.0);   // restored
}

TEST(SuccessiveApprox, GroupEstimateIntrospection) {
  SuccessiveApproximationEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.2);
  EXPECT_FALSE(est.group_estimate(job).has_value());
  (void)submit_cycle(est, job);
  ASSERT_TRUE(est.group_estimate(job).has_value());
  EXPECT_DOUBLE_EQ(*est.group_estimate(job), 16.0);
}

TEST(SuccessiveApprox, RejectsInvalidParameters) {
#ifndef NDEBUG
  SuccessiveApproxConfig bad;
  bad.alpha = 0.5;  // must be > 1
  EXPECT_DEATH(SuccessiveApproximationEstimator{bad}, "alpha");
#else
  GTEST_SKIP() << "assertions disabled in release build";
#endif
}

// --- LastInstanceEstimator ---------------------------------------------------

TEST(LastInstance, FirstSubmissionUsesRequest) {
  LastInstanceEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  EXPECT_DOUBLE_EQ(est.estimate(make_job(32, 5), {}), 32.0);
}

TEST(LastInstance, SecondSubmissionUsesObservedUsage) {
  LastInstanceEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  (void)submit_cycle(est, job, /*explicit_feedback=*/true);
  // 5 MiB usage rounds up to the 8 MiB rung.
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), 8.0);
}

TEST(LastInstance, TracksDriftingUsage) {
  LastInstanceEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  auto job = make_job(32.0, 5.0);
  (void)submit_cycle(est, job, true);
  job.used_mem_mib = 13.0;  // usage grew
  (void)submit_cycle(est, job, true);  // grant 8 < 13: resource failure
  // The failed run still reported its usage; the estimator clears the bar.
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), 16.0);
}

TEST(LastInstance, WindowTakesMaxOfRecent) {
  LastInstanceConfig cfg;
  cfg.window = 3;
  LastInstanceEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  auto job = make_job(32.0, 3.0);
  (void)submit_cycle(est, job, true);
  job.used_mem_mib = 7.0;
  (void)submit_cycle(est, job, true);
  job.used_mem_mib = 2.0;
  (void)submit_cycle(est, job, true);
  // Window holds {3, 7, 2}; max 7 rounds to 8.
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), 8.0);
}

TEST(LastInstance, MarginAddsHeadroom) {
  LastInstanceConfig cfg;
  cfg.margin = 1.5;
  LastInstanceEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 6, 8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  (void)submit_cycle(est, job, true);
  // 5 * 1.5 = 7.5 -> rounds to 8.
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), 8.0);
}

TEST(LastInstance, EstimateNeverExceedsRequest) {
  LastInstanceConfig cfg;
  cfg.margin = 4.0;
  LastInstanceEstimator est(cfg);
  est.set_ladder(CapacityLadder({8, 16, 32}));
  const auto job = make_job(16.0, 12.0);
  (void)submit_cycle(est, job, true);
  // 12 * 4 = 48 clamps to the 16 MiB request.
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), 16.0);
}

TEST(LastInstance, NonResourceFailureKeepsHistory) {
  LastInstanceEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  (void)submit_cycle(est, job, true);
  Feedback fb;
  fb.success = false;
  fb.granted_mib = 8.0;
  fb.used_mib = 5.0;
  fb.resource_failure = false;  // program crash, not our fault
  est.feedback(job, fb);
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), 8.0);  // history intact
}

TEST(LastInstance, ResourceFailureWithoutUsagePoisonsGroup) {
  LastInstanceEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  (void)submit_cycle(est, job, true);
  Feedback fb;
  fb.success = false;
  fb.granted_mib = 8.0;
  fb.resource_failure = true;  // no usage report available
  est.feedback(job, fb);
  // Conservative reset: back to the full request.
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), 32.0);
}

// --- RegressionEstimator -----------------------------------------------------

TEST(Regression, PassThroughBeforeMinObservations) {
  RegressionConfig cfg;
  cfg.min_observations = 10;
  RegressionEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  EXPECT_DOUBLE_EQ(est.estimate(make_job(32, 4), {}), 32.0);
}

TEST(Regression, LearnsGlobalHalvingRule) {
  // Every user requests 4x what they use; the paper's example says the
  // model should learn to divide requests accordingly.
  RegressionConfig cfg;
  cfg.min_observations = 50;
  cfg.margin = 1.1;
  RegressionEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double req = std::exp2(rng.uniform_int(2, 5));  // 4..32 MiB
    auto job = make_job(req, req / 4.0, /*user=*/1, /*app=*/1,
                        /*id=*/static_cast<JobId>(i));
    (void)submit_cycle(est, job, /*explicit_feedback=*/true);
  }
  // A fresh 32 MiB request should now be estimated near 8 MiB.
  const MiB grant = est.estimate(make_job(32, 8), {});
  EXPECT_LE(grant, 16.0);
  EXPECT_GE(grant, 8.0);
  EXPECT_EQ(est.observations(), 200u);
}

TEST(Regression, EstimateClampedToRequest) {
  RegressionConfig cfg;
  cfg.min_observations = 5;
  cfg.margin = 10.0;  // absurd headroom
  RegressionEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  for (int i = 0; i < 20; ++i) {
    (void)submit_cycle(est, make_job(32, 30), true);
  }
  EXPECT_LE(est.estimate(make_job(32, 30), {}), 32.0);
}

TEST(Regression, IgnoresFeedbackWithoutUsage) {
  RegressionEstimator est;
  Feedback fb;
  fb.success = true;
  fb.granted_mib = 32.0;
  est.feedback(make_job(32, 8), fb);  // implicit feedback: nothing to learn
  EXPECT_EQ(est.observations(), 0u);
}

TEST(Regression, KnnVariantLearnsPerUserPattern) {
  RegressionConfig cfg;
  cfg.model = RegressionModel::kKnn;
  cfg.min_observations = 30;
  cfg.margin = 1.1;
  RegressionEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  // User 1 uses 1/8 of requests; user 2 uses everything.
  for (int i = 0; i < 60; ++i) {
    (void)submit_cycle(est, make_job(32, 4, /*user=*/1), true);
    (void)submit_cycle(est, make_job(32, 31, /*user=*/2), true);
  }
  const MiB lean = est.estimate(make_job(32, 4, 1), {});
  const MiB heavy = est.estimate(make_job(32, 31, 2), {});
  EXPECT_LT(lean, heavy);
  EXPECT_LE(lean, 8.0);
  EXPECT_DOUBLE_EQ(heavy, 32.0);
}

// --- RlEstimator ------------------------------------------------------------

TEST(Rl, ConvergesTowardGlobalScalingPolicy) {
  // All jobs use half their request: the agent should learn that scaling
  // by 0.5 (or lower-but-safe 0.75) beats 1.0, per the paper's §4 example.
  RlEstimatorConfig cfg;
  cfg.agent.epsilon = 0.3;
  cfg.agent.epsilon_decay = 0.999;
  cfg.agent.learning_rate = 0.15;
  cfg.seed = 11;
  RlEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  SystemState state;
  state.busy_fraction = 0.5;
  state.queue_length = 4;

  for (int i = 0; i < 4000; ++i) {
    auto job = make_job(32.0, 16.0, 1, 1, static_cast<JobId>(i));
    const MiB grant = est.estimate(job, state);
    Feedback fb;
    fb.success = grant + 1e-9 >= job.used_mem_mib;
    fb.granted_mib = grant;
    est.feedback(job, fb);
  }
  const double factor = est.greedy_factor(make_job(32.0, 16.0), state);
  EXPECT_GE(factor, 0.5);   // never learned to under-provision
  EXPECT_LT(factor, 1.0);   // learned that full requests waste capacity
}

TEST(Rl, LearnsNotToCutWhenUsageIsFull) {
  RlEstimatorConfig cfg;
  cfg.agent.epsilon = 0.3;
  cfg.agent.epsilon_decay = 0.999;
  cfg.seed = 13;
  RlEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  SystemState state;
  for (int i = 0; i < 4000; ++i) {
    auto job = make_job(32.0, 31.0, 1, 1, static_cast<JobId>(i));
    const MiB grant = est.estimate(job, state);
    Feedback fb;
    fb.success = grant + 1e-9 >= job.used_mem_mib;
    fb.granted_mib = grant;
    est.feedback(job, fb);
  }
  EXPECT_DOUBLE_EQ(est.greedy_factor(make_job(32.0, 31.0), state), 1.0);
}

TEST(Rl, FeedbackWithoutPendingDecisionIsIgnored) {
  RlEstimator est;
  Feedback fb;
  fb.success = true;
  fb.granted_mib = 16.0;
  est.feedback(make_job(32, 8), fb);  // no crash
  EXPECT_EQ(est.agent().updates(), 0u);
}

TEST(Rl, NonResourceFailureDoesNotPenalize) {
  RlEstimator est;
  est.set_ladder(CapacityLadder({32}));
  auto job = make_job(32, 8);
  (void)est.estimate(job, {});
  Feedback fb;
  fb.success = false;
  fb.granted_mib = 32.0;
  fb.resource_failure = false;  // explicit feedback absolves the decision
  est.feedback(job, fb);
  EXPECT_EQ(est.agent().updates(), 0u);
}

TEST(Rl, PendingDecisionsStayBoundedWhenFeedbackNeverArrives) {
  // Regression test for the unbounded-growth leak: a degraded service
  // drops feedback by design, so decisions that never hear back must not
  // accumulate without limit.
  RlEstimatorConfig cfg;
  cfg.max_pending = 64;
  RlEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  for (int i = 0; i < 1000; ++i) {
    (void)est.estimate(make_job(32, 8, 1, 1, static_cast<JobId>(i)), {});
  }
  EXPECT_LE(est.pending_count(), 64u);
  // Eviction is oldest-first: late feedback for the first decision finds
  // nothing to reward, while the newest decision is still live.
  Feedback fb;
  fb.success = true;
  fb.granted_mib = 32.0;
  const std::size_t updates = est.agent().updates();
  est.feedback(make_job(32, 8, 1, 1, /*id=*/0), fb);
  EXPECT_EQ(est.agent().updates(), updates);
  est.feedback(make_job(32, 8, 1, 1, /*id=*/999), fb);
  EXPECT_EQ(est.agent().updates(), updates + 1);
  EXPECT_EQ(est.pending_count(), 63u);
}

TEST(Regression, BurnedKeyMemosStayBounded) {
  // Regression test for the unbounded-growth leak: every under-provisioned
  // similarity class used to leave a permanent memo; a long-lived service
  // with a churning key population must hold only the most recent ones.
  RegressionConfig cfg;
  cfg.max_burned_keys = 32;
  RegressionEstimator est(cfg);
  Feedback kill;
  kill.success = false;
  kill.granted_mib = 8.0;
  kill.resource_failure = true;
  for (int i = 0; i < 500; ++i) {
    est.feedback(make_job(32, 30, /*user=*/static_cast<UserId>(i)), kill);
  }
  EXPECT_EQ(est.burned_key_count(), 32u);
  // Re-burning an already-memoized key refreshes it, not duplicates it.
  est.feedback(make_job(32, 30, /*user=*/499), kill);
  EXPECT_EQ(est.burned_key_count(), 32u);
}

// --- QuantileEstimator -------------------------------------------------------

/// Drive `n` explicit-feedback cycles of (req, used) through an estimator.
void train(Estimator& est, int n, MiB req, MiB used, UserId user = 1) {
  for (int i = 0; i < n; ++i) {
    (void)submit_cycle(est, make_job(req, used, user), true);
  }
}

TEST(Quantile, PassesRequestThroughUntilWarm) {
  QuantileEstimatorConfig cfg;
  cfg.min_observations = 5;
  QuantileEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  EXPECT_FALSE(est.warm());
  EXPECT_DOUBLE_EQ(est.estimate(make_job(32, 4), {}), 32.0);
  // Rounds to a rung like every estimator.
  EXPECT_DOUBLE_EQ(est.estimate(make_job(20, 4), {}), 32.0);
}

TEST(Quantile, LearnsAnUpperBoundAndStopsPassingThrough) {
  QuantileEstimatorConfig cfg;
  cfg.min_observations = 50;
  QuantileEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  train(est, 300, /*req=*/32.0, /*used=*/4.0);
  EXPECT_TRUE(est.warm());
  const MiB grant = est.estimate(make_job(32, 4), {});
  EXPECT_LT(grant, 32.0);
  EXPECT_GE(grant, 4.0);  // never below what jobs actually use
  EXPECT_GT(est.coverage(), 0.8);
}

TEST(Quantile, EstimateNeverExceedsRoundedRequest) {
  QuantileEstimatorConfig cfg;
  cfg.min_observations = 10;
  cfg.margin = 4.0;
  cfg.max_margin = 4.0;
  QuantileEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  train(est, 100, 32.0, 30.0);
  EXPECT_LE(est.estimate(make_job(32, 30), {}), 32.0);
}

TEST(Quantile, MarginWidensUnderKillsAndRespectsTheCap) {
  QuantileEstimatorConfig cfg;
  cfg.min_observations = 20;
  QuantileEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  train(est, 100, 32.0, 8.0);
  const double calm_margin = est.margin();
  Feedback kill;
  kill.success = false;
  kill.granted_mib = 8.0;
  kill.used_mib = 16.0;
  kill.resource_failure = true;
  for (int i = 0; i < 50; ++i) est.feedback(make_job(32, 16), kill);
  EXPECT_GT(est.margin(), calm_margin);
  EXPECT_LE(est.margin(), cfg.max_margin);
}

TEST(Quantile, SaveStateRestoresADecisionTwin) {
  QuantileEstimatorConfig cfg;
  cfg.min_observations = 30;
  QuantileEstimator a(cfg);
  a.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  for (int i = 0; i < 120; ++i) {
    (void)submit_cycle(a, make_job(32, 2.0 + (i % 7), /*user=*/1 + i % 3),
                       true);
  }
  const auto state = a.save_state();
  QuantileEstimator b(cfg);
  b.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  ASSERT_TRUE(b.load_state(state));
  // Bit-identical decisions, then bit-identical evolution.
  for (int i = 0; i < 40; ++i) {
    const auto job = make_job(32, 2.0 + (i % 5), /*user=*/2);
    EXPECT_EQ(a.estimate(job, {}), b.estimate(job, {}));
    (void)submit_cycle(a, job, true);
    (void)submit_cycle(b, job, true);
  }
  EXPECT_EQ(a.save_state(), b.save_state());
}

TEST(Quantile, LoadStateRejectsGarbageUnchanged) {
  QuantileEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  train(est, 50, 32.0, 8.0);
  const auto good = est.save_state();
  EXPECT_FALSE(est.load_state({}));
  auto wrong_version = good;
  wrong_version[0] = 99.0;
  EXPECT_FALSE(est.load_state(wrong_version));
  auto truncated = good;
  truncated.pop_back();
  EXPECT_FALSE(est.load_state(truncated));
  auto wild_margin = good;
  wild_margin[1] = 1e6;
  EXPECT_FALSE(est.load_state(wild_margin));
  EXPECT_EQ(est.save_state(), good);
  EXPECT_TRUE(est.load_state(good));
}

// --- EnsembleEstimator -------------------------------------------------------

TEST(Ensemble, ColdGroupsReplayAlgorithmOneExactly) {
  EnsembleConfig cfg;
  cfg.quantile.min_observations = std::size_t{1} << 30;  // never warms
  EnsembleEstimator ens(cfg);
  SuccessiveApproxConfig sa_cfg;
  sa_cfg.alpha = 2.0;
  sa_cfg.beta = 0.0;
  SuccessiveApproximationEstimator sa(sa_cfg);
  const CapacityLadder ladder({1, 2, 4, 8, 16, 32});
  ens.set_ladder(ladder);
  sa.set_ladder(ladder);
  const auto job = make_job(32.0, 5.2);
  for (int i = 0; i < 10; ++i) {
    const MiB expected = submit_cycle(sa, job, /*explicit_feedback=*/true);
    const MiB got = submit_cycle(ens, job, /*explicit_feedback=*/true);
    EXPECT_DOUBLE_EQ(got, expected) << "cycle " << i;
  }
}

TEST(Ensemble, WarmModelPricesUnseenGroups) {
  EnsembleConfig cfg;
  cfg.quantile.min_observations = 50;
  cfg.coverage_threshold = 0.6;
  EnsembleEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  train(est, 400, 32.0, 4.0, /*user=*/1);
  // A brand-new group is priced off everything learned so far — the
  // cross-group transfer Algorithm 1 cannot do (it would grant 32).
  const auto fresh_job = make_job(32.0, 4.0, /*user=*/9);
  EXPECT_LT(est.preview(fresh_job, {}), 32.0);
  EXPECT_LT(est.estimate(fresh_job, {}), 32.0);
  const auto stats = est.model_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->groups_model, 1u);
}

TEST(Ensemble, GroupFallsBackToSaAfterConsecutiveModelKills) {
  EnsembleConfig cfg;
  cfg.quantile.min_observations = 50;
  cfg.coverage_threshold = 0.6;
  cfg.fallback_after = 3;
  EnsembleEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  train(est, 400, 32.0, 4.0, /*user=*/1);
  // Group 2's usage is far above anything the model has seen: the model
  // serves it and gets killed repeatedly.
  const auto hot = make_job(32.0, 30.0, /*user=*/2);
  for (int i = 0; i < 3; ++i) {
    const MiB grant = est.estimate(hot, {});
    ASSERT_LT(grant, 30.0) << "model should under-provision this group";
    Feedback fb;
    fb.success = false;
    fb.granted_mib = grant;
    fb.used_mib = 30.0;
    fb.resource_failure = true;
    est.feedback(hot, fb);
  }
  EXPECT_EQ(est.fallback_groups(), 1u);
  // Served by SA from now on: a fresh SA group starts at the request.
  EXPECT_DOUBLE_EQ(est.estimate(hot, {}), 32.0);
}

TEST(Ensemble, SaveStateRestoresADecisionTwin) {
  EnsembleConfig cfg;
  cfg.quantile.min_observations = 40;
  cfg.coverage_threshold = 0.6;
  EnsembleEstimator a(cfg);
  const CapacityLadder ladder({1, 2, 4, 8, 16, 32});
  a.set_ladder(ladder);
  for (int i = 0; i < 200; ++i) {
    (void)submit_cycle(a, make_job(32, 3.0 + (i % 6), /*user=*/1 + i % 4),
                       true);
  }
  const auto state = a.save_state();
  EnsembleEstimator b(cfg);
  b.set_ladder(ladder);
  ASSERT_TRUE(b.load_state(state));
  EXPECT_EQ(a.group_count(), b.group_count());
  EXPECT_EQ(a.fallback_groups(), b.fallback_groups());
  for (int i = 0; i < 60; ++i) {
    const auto job = make_job(32, 3.0 + (i % 6), /*user=*/1 + i % 5);
    EXPECT_EQ(a.estimate(job, {}), b.estimate(job, {}));
    (void)submit_cycle(a, job, true);
    (void)submit_cycle(b, job, true);
  }
  EXPECT_EQ(a.save_state(), b.save_state());
}

TEST(Ensemble, LoadStateRejectsTruncatedBlobUnchanged) {
  EnsembleEstimator est;
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  train(est, 30, 32.0, 5.0);
  const auto good = est.save_state();
  auto truncated = good;
  truncated.pop_back();
  EXPECT_FALSE(est.load_state(truncated));
  EXPECT_FALSE(est.load_state({1.0}));
  EXPECT_EQ(est.save_state(), good);
}

// --- Factory -----------------------------------------------------------------

TEST(Factory, BuildsEveryAdvertisedEstimator) {
  for (const auto& name : estimator_names()) {
    const auto est = make_estimator(name);
    ASSERT_NE(est, nullptr);
    EXPECT_EQ(est->name(), name == "none" ? "none" : est->name());
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_estimator("magic"), std::invalid_argument);
}

TEST(Factory, ExplicitFeedbackRequirements) {
  EXPECT_FALSE(requires_explicit_feedback("none"));
  EXPECT_FALSE(requires_explicit_feedback("successive-approximation"));
  EXPECT_FALSE(requires_explicit_feedback("reinforcement-learning"));
  EXPECT_TRUE(requires_explicit_feedback("last-instance"));
  EXPECT_TRUE(requires_explicit_feedback("regression-ridge"));
  EXPECT_TRUE(requires_explicit_feedback("regression-knn"));
  EXPECT_TRUE(requires_explicit_feedback("quantile"));
  EXPECT_TRUE(requires_explicit_feedback("ensemble"));
}

TEST(Factory, OptionsAreForwarded) {
  EstimatorOptions options;
  options.alpha = 4.0;
  auto est = make_estimator("successive-approximation", options);
  est->set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  EXPECT_DOUBLE_EQ(est->estimate(job, {}), 32.0);
  Feedback fb;
  fb.success = true;
  fb.granted_mib = 32.0;
  est->feedback(job, fb);
  // alpha = 4: next estimate is 8, not 16.
  EXPECT_DOUBLE_EQ(est->estimate(job, {}), 8.0);
}

// --- preview_epoch: the memoization contract the simulator relies on ----

TEST(PreviewEpoch, NoEstimatorReportsConstantEpoch) {
  auto est = make_estimator("none");
  est->set_ladder(CapacityLadder({8, 16, 32}));
  const auto job = make_job(20.0, 10.0);
  const auto before = est->preview_epoch(job);
  ASSERT_TRUE(before.has_value());
  (void)submit_cycle(*est, job);
  // Stateless preview: no event may ever invalidate it.
  EXPECT_EQ(est->preview_epoch(job), before);
}

TEST(PreviewEpoch, UnknownGroupIsZeroAndGroupCreationBumps) {
  auto est = make_estimator("successive-approximation");
  est->set_ladder(CapacityLadder({8, 16, 32}));
  const auto job = make_job(32.0, 5.0);
  const auto unknown = est->preview_epoch(job);
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(*unknown, 0u);
  // estimate() creates the group and commits — both invalidate.
  const MiB grant = est->estimate(job, {});
  const auto live = est->preview_epoch(job);
  ASSERT_TRUE(live.has_value());
  EXPECT_GT(*live, 0u);
  est->cancel(job, grant);
  // preview() itself must NOT advance the epoch (it is side-effect free).
  const auto settled = est->preview_epoch(job);
  (void)est->preview(job, {});
  (void)est->preview(job, {});
  EXPECT_EQ(est->preview_epoch(job), settled);
}

TEST(PreviewEpoch, FeedbackAndCancelInvalidate) {
  for (const char* name : {"successive-approximation", "last-instance"}) {
    SCOPED_TRACE(name);
    auto est = make_estimator(name);
    est->set_ladder(CapacityLadder({8, 16, 32}));
    const auto job = make_job(32.0, 5.0);
    (void)submit_cycle(*est, job, /*explicit_feedback=*/true);
    const auto after_first = est->preview_epoch(job);
    ASSERT_TRUE(after_first.has_value());
    (void)submit_cycle(*est, job, /*explicit_feedback=*/true);
    const auto after_second = est->preview_epoch(job);
    ASSERT_TRUE(after_second.has_value());
    // estimate+feedback happened in between: the epoch must have moved.
    EXPECT_NE(*after_second, *after_first);

    const MiB grant = est->estimate(job, {});
    const auto committed = est->preview_epoch(job);
    est->cancel(job, grant);
    const auto cancelled = est->preview_epoch(job);
    ASSERT_TRUE(committed.has_value());
    ASSERT_TRUE(cancelled.has_value());
    if (std::string(name) == "successive-approximation") {
      // SA's cancel releases the probe slot, which can change preview().
      EXPECT_NE(*cancelled, *committed);
    } else {
      // Last-instance keeps no per-attempt state: cancel is a no-op, so
      // the memoized preview legitimately stays valid.
      EXPECT_EQ(*cancelled, *committed);
    }
  }
}

TEST(PreviewEpoch, EqualEpochsImplyEqualPreviews) {
  // The contract itself, exercised across a learning run: whenever two
  // preview_epoch reads for a job agree, the previews must agree too.
  for (const char* name : {"successive-approximation", "last-instance"}) {
    SCOPED_TRACE(name);
    auto est = make_estimator(name);
    est->set_ladder(CapacityLadder({4, 8, 16, 32}));
    const auto job = make_job(32.0, 9.0);
    std::uint64_t last_epoch = ~0ULL;
    MiB last_preview = -1.0;
    for (int i = 0; i < 12; ++i) {
      const auto epoch = est->preview_epoch(job);
      ASSERT_TRUE(epoch.has_value());
      const MiB p = est->preview(job, {});
      if (*epoch == last_epoch) {
        EXPECT_DOUBLE_EQ(p, last_preview);
      }
      last_epoch = *epoch;
      last_preview = p;
      (void)submit_cycle(*est, job, /*explicit_feedback=*/true);
    }
  }
}

TEST(PreviewEpoch, LearningEstimatorsOptOut) {
  // Estimators whose preview depends on SystemState (or mutable model
  // internals) must return nullopt: no memoization guarantee.
  for (const char* name : {"regression-ridge", "regression-knn",
                           "reinforcement-learning", "quantile", "ensemble"}) {
    SCOPED_TRACE(name);
    auto est = make_estimator(name);
    est->set_ladder(CapacityLadder({8, 16, 32}));
    EXPECT_FALSE(est->preview_epoch(make_job(32.0, 5.0)).has_value());
  }
}

}  // namespace
}  // namespace resmatch::core
