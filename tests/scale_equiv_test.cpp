// Cluster-scale engine equivalence gates.
//
// The calendar-queue merge engine (the default since the cluster-scale
// work landed) must make EXACTLY the decisions of the pre-calendar
// heap engine (SimulationConfig::heap_queue), and every axis of the new
// machinery must be invisible in the results:
//
//   * heap engine vs merge engine — byte-identical;
//   * materialized workload vs streamed JobStream input — byte-identical;
//   * inline pool integration vs sharded (any worker count) —
//     byte-identical, because each pool's integral is the same ordered
//     sequence of adds no matter which thread runs it.
//
// All gates run across 3 policies x 3 estimators with dynamic
// availability, mirroring tests/perf_equiv_test's golden grid.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "core/factory.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "sim/timeseries.hpp"
#include "trace/cm5_model.hpp"
#include "trace/job_stream.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"

namespace resmatch {
namespace {

trace::Workload golden_workload() {
  trace::Workload w = trace::generate_cm5_small(11, 1200);
  w = trace::drop_wide_jobs(std::move(w), 256);
  w = trace::scale_to_load(std::move(w), 256, 0.9);
  return trace::sort_by_submit(std::move(w));
}

sim::ClusterSpec golden_cluster() { return sim::cm5_heterogeneous(24.0, 128); }

sim::SimulationConfig golden_config(sim::TimeSeries* ts) {
  sim::SimulationConfig cfg;
  cfg.seed = 7;
  cfg.explicit_feedback = true;
  cfg.availability = {{2000.0, 24.0, -40}, {6000.0, 32.0, 24},
                      {9000.0, 24.0, 40}};
  cfg.timeseries = ts;
  return cfg;
}

sim::SimulationResult run_materialized(const trace::Workload& w,
                                       const std::string& policy,
                                       const std::string& estimator,
                                       sim::SimulationConfig cfg) {
  const auto est = core::make_estimator(estimator);
  const auto pol = sched::make_policy(policy);
  return sim::simulate(w, golden_cluster(), *est, *pol, cfg);
}

sim::SimulationResult run_streamed(trace::JobStream& stream,
                                   const std::string& policy,
                                   const std::string& estimator,
                                   sim::SimulationConfig cfg) {
  const auto est = core::make_estimator(estimator);
  const auto pol = sched::make_policy(policy);
  return sim::simulate(stream, golden_cluster(), *est, *pol, cfg);
}

void expect_bitwise_equal(const sim::SimulationResult& a,
                          const sim::SimulationResult& b,
                          const sim::TimeSeries& ts_a,
                          const sim::TimeSeries& ts_b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.resource_failures, b.resource_failures);
  EXPECT_EQ(a.intrinsic_failed, b.intrinsic_failed);
  EXPECT_EQ(a.dropped_unschedulable, b.dropped_unschedulable);
  EXPECT_EQ(a.dropped_attempt_cap, b.dropped_attempt_cap);
  EXPECT_EQ(a.lowered_starts, b.lowered_starts);
  EXPECT_EQ(a.benefiting_jobs, b.benefiting_jobs);
  EXPECT_EQ(a.benefiting_nodes, b.benefiting_nodes);
  // Exact double comparison is deliberate: all engines run in this
  // process, so identical decisions imply identical arithmetic.
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.wasted_fraction, b.wasted_fraction);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.mean_bounded_slowdown, b.mean_bounded_slowdown);
  EXPECT_EQ(a.p95_slowdown, b.p95_slowdown);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.throughput_per_hour, b.throughput_per_hour);
  EXPECT_EQ(a.granted_mib_nodes, b.granted_mib_nodes);
  EXPECT_EQ(a.used_mib_nodes, b.used_mib_nodes);
  ASSERT_EQ(a.pool_utilization.size(), b.pool_utilization.size());
  for (std::size_t i = 0; i < a.pool_utilization.size(); ++i) {
    EXPECT_EQ(a.pool_utilization[i].capacity, b.pool_utilization[i].capacity);
    EXPECT_EQ(a.pool_utilization[i].busy_fraction,
              b.pool_utilization[i].busy_fraction);
  }
  ASSERT_EQ(ts_a.points().size(), ts_b.points().size());
  for (std::size_t i = 0; i < ts_a.points().size(); ++i) {
    EXPECT_EQ(ts_a.points()[i].time, ts_b.points()[i].time);
    EXPECT_EQ(ts_a.points()[i].busy_fraction, ts_b.points()[i].busy_fraction);
    EXPECT_EQ(ts_a.points()[i].queue_length, ts_b.points()[i].queue_length);
    EXPECT_EQ(ts_a.points()[i].running_jobs, ts_b.points()[i].running_jobs);
  }
}

constexpr const char* kPolicies[] = {"fcfs", "sjf", "easy-backfill"};
constexpr const char* kEstimators[] = {"none", "successive-approximation",
                                       "last-instance"};

TEST(ScaleEquivalence, HeapAndCalendarEnginesBitIdentical) {
  const trace::Workload w = golden_workload();
  for (const char* policy : kPolicies) {
    for (const char* estimator : kEstimators) {
      SCOPED_TRACE(std::string(policy) + " / " + estimator);
      sim::TimeSeries ts_heap(50.0), ts_cal(50.0);
      auto cfg_heap = golden_config(&ts_heap);
      cfg_heap.heap_queue = true;
      const auto heap = run_materialized(w, policy, estimator, cfg_heap);
      const auto cal =
          run_materialized(w, policy, estimator, golden_config(&ts_cal));
      expect_bitwise_equal(heap, cal, ts_heap, ts_cal);
    }
  }
}

TEST(ScaleEquivalence, StreamedInputBitIdenticalToMaterialized) {
  const trace::Workload w = golden_workload();
  for (const char* policy : kPolicies) {
    for (const char* estimator : kEstimators) {
      SCOPED_TRACE(std::string(policy) + " / " + estimator);
      sim::TimeSeries ts_mat(50.0), ts_str(50.0);
      const auto mat =
          run_materialized(w, policy, estimator, golden_config(&ts_mat));
      trace::VectorJobStream stream(w);
      const auto str =
          run_streamed(stream, policy, estimator, golden_config(&ts_str));
      expect_bitwise_equal(mat, str, ts_mat, ts_str);
    }
  }
}

TEST(ScaleEquivalence, ShardedIntegrationBitIdenticalForAnyWorkerCount) {
  const trace::Workload w = golden_workload();
  for (const char* policy : kPolicies) {
    for (const char* estimator : kEstimators) {
      SCOPED_TRACE(std::string(policy) + " / " + estimator);
      sim::TimeSeries ts_inline(50.0);
      const auto inline_run =
          run_materialized(w, policy, estimator, golden_config(&ts_inline));
      for (std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        sim::TimeSeries ts_sharded(50.0);
        auto cfg = golden_config(&ts_sharded);
        cfg.shards = shards;
        const auto sharded = run_materialized(w, policy, estimator, cfg);
        expect_bitwise_equal(inline_run, sharded, ts_inline, ts_sharded);
      }
    }
  }
}

TEST(ScaleEquivalence, StreamedCm5GenerationBitIdenticalEndToEnd) {
  // The full cluster-scale path: on-the-fly CM5 generation feeding the
  // merge engine, versus materializing the same model and simulating the
  // vector. Trace-level equality is job_stream_test's business; this
  // holds the composed DECISION stream identical.
  const trace::Cm5ModelConfig model = trace::cm5_small_config(11, 1000);
  const trace::Workload w = trace::generate_cm5(model);
  sim::TimeSeries ts_mat(50.0), ts_str(50.0);
  const auto mat = run_materialized(
      w, "easy-backfill", "successive-approximation", golden_config(&ts_mat));
  trace::Cm5JobStream stream(model);
  const auto str = run_streamed(stream, "easy-backfill",
                                "successive-approximation",
                                golden_config(&ts_str));
  expect_bitwise_equal(mat, str, ts_mat, ts_str);
}

TEST(ScaleEquivalence, RandomizedAvailabilityShardProperty) {
  // Sharded replay must survive machines joining and leaving (the delta
  // log's remove/drain bookkeeping), not just the pinned schedule.
  const trace::Workload w = [] {
    trace::Workload base = trace::generate_cm5_small(29, 400);
    base = trace::drop_wide_jobs(std::move(base), 256);
    base = trace::scale_to_load(std::move(base), 256, 0.85);
    return trace::sort_by_submit(std::move(base));
  }();
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    util::Rng rng(2000 + trial);
    sim::SimulationConfig cfg;
    cfg.seed = 7 + trial;
    cfg.explicit_feedback = true;
    const int n_events = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n_events; ++i) {
      sim::AvailabilityEvent ev;
      ev.time = rng.uniform(500.0, 20000.0);
      ev.capacity = rng.bernoulli(0.5) ? 32.0 : 24.0;
      ev.delta = rng.uniform_int(-48, 48);
      if (ev.delta == 0) ev.delta = 8;
      cfg.availability.push_back(ev);
    }
    SCOPED_TRACE("trial " + std::to_string(trial));
    sim::TimeSeries ts_heap(50.0), ts_sharded(50.0);
    auto cfg_heap = cfg;
    cfg_heap.heap_queue = true;
    cfg_heap.timeseries = &ts_heap;
    const auto heap = run_materialized(w, "easy-backfill",
                                       "successive-approximation", cfg_heap);
    auto cfg_sharded = cfg;
    cfg_sharded.shards = 3;
    cfg_sharded.timeseries = &ts_sharded;
    const auto sharded = run_materialized(
        w, "easy-backfill", "successive-approximation", cfg_sharded);
    expect_bitwise_equal(heap, sharded, ts_heap, ts_sharded);
  }
}

TEST(ScaleEquivalence, AnchorEnginesRejectShards) {
  const trace::Workload w = golden_workload();
  const auto est = core::make_estimator("none");
  const auto pol = sched::make_policy("fcfs");
  sim::SimulationConfig cfg;
  cfg.heap_queue = true;
  cfg.shards = 2;
  EXPECT_THROW(
      { (void)sim::simulate(w, golden_cluster(), *est, *pol, cfg); },
      std::invalid_argument);
}

TEST(ScaleEquivalence, StreamedEntryPointRejectsUnsortedStreams) {
  trace::Workload w = golden_workload();
  ASSERT_GE(w.jobs.size(), 2u);
  std::swap(w.jobs.front().submit, w.jobs.back().submit);
  trace::VectorJobStream stream(w);
  const auto est = core::make_estimator("none");
  const auto pol = sched::make_policy("fcfs");
  EXPECT_THROW(
      { (void)sim::simulate(stream, golden_cluster(), *est, *pol, {}); },
      std::invalid_argument);
}

}  // namespace
}  // namespace resmatch
