// Decision-equivalence tests for the simulator hot-path optimizations.
//
// The optimized engine (incremental pool counters, live running-set index,
// preview memoization, pop_front removal) must make EXACTLY the decisions
// of the pre-optimization reference engine (SimulationConfig::baseline_loop).
// Two layers of protection:
//   * a pinned golden grid (3 policies x 3 estimators on a generated CM5
//     workload with dynamic availability) whose values were captured from
//     the seed engine before any optimization landed — a regression here
//     means the engine's behaviour drifted, not just its speed;
//   * in-process A/B runs asserting the two engines produce bit-identical
//     results and time series, including under randomized availability.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "sim/timeseries.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"

namespace resmatch {
namespace {

trace::Workload golden_workload() {
  trace::Workload w = trace::generate_cm5_small(11, 1200);
  w = trace::drop_wide_jobs(std::move(w), 256);
  w = trace::scale_to_load(std::move(w), 256, 0.9);
  return trace::sort_by_submit(std::move(w));
}

sim::ClusterSpec golden_cluster() { return sim::cm5_heterogeneous(24.0, 128); }

sim::SimulationConfig golden_config(sim::TimeSeries* ts, bool baseline) {
  sim::SimulationConfig cfg;
  cfg.seed = 7;
  cfg.explicit_feedback = true;
  cfg.availability = {{2000.0, 24.0, -40}, {6000.0, 32.0, 24},
                      {9000.0, 24.0, 40}};
  cfg.timeseries = ts;
  cfg.baseline_loop = baseline;
  return cfg;
}

sim::SimulationResult run_once(const trace::Workload& w,
                               const std::string& policy,
                               const std::string& estimator, bool baseline,
                               sim::TimeSeries* ts) {
  const auto est = core::make_estimator(estimator);
  const auto pol = sched::make_policy(policy);
  return sim::simulate(w, golden_cluster(), *est, *pol,
                       golden_config(ts, baseline));
}

/// Values captured from the seed engine (pre-optimization) for the golden
/// configuration. Integers must match exactly; doubles are pinned with a
/// tight relative tolerance (libm differences across platforms only).
struct Golden {
  const char* policy;
  const char* estimator;
  std::size_t completed;
  std::size_t attempts;
  std::size_t resource_failures;
  std::size_t intrinsic_failed;
  std::size_t dropped_unschedulable;
  std::size_t dropped_attempt_cap;
  std::size_t lowered_starts;
  double utilization;
  double mean_wait;
  double mean_slowdown;
  double makespan;
  std::size_t ts_points;
};

constexpr Golden kGolden[] = {
    {"fcfs", "none", 1200u, 1200u, 0u, 0u, 0u, 0u, 0u, 0.80338686502192747,
     144.88208888838631, 1.3220639016365161, 50525.582616941261, 702u},
    {"fcfs", "successive-approximation", 1200u, 1200u, 0u, 0u, 0u, 0u, 175u,
     0.80338686502192747, 132.31285032289384, 1.2925480027089997,
     50525.582616941261, 706u},
    {"fcfs", "last-instance", 1200u, 1200u, 0u, 0u, 0u, 0u, 183u,
     0.80338686502192747, 131.00075676223, 1.2902228740474144,
     50525.582616941261, 706u},
    {"sjf", "none", 1200u, 1200u, 0u, 0u, 0u, 0u, 0u, 0.80822428268941882,
     47.404109925139664, 1.0839562023824614, 50232.232230680995, 702u},
    {"sjf", "successive-approximation", 1200u, 1200u, 0u, 0u, 0u, 0u, 176u,
     0.80822428268941882, 46.978947431938323, 1.0847224704280756,
     50232.232230680995, 704u},
    {"sjf", "last-instance", 1200u, 1200u, 0u, 0u, 0u, 0u, 182u,
     0.80822428268941882, 46.977159060725342, 1.0849343269882574,
     50232.232230680995, 703u},
    {"easy-backfill", "none", 1200u, 1200u, 0u, 0u, 0u, 0u, 0u,
     0.80822428268941848, 76.947134137160589, 1.1497997665433906,
     50232.232230680995, 702u},
    {"easy-backfill", "successive-approximation", 1200u, 1200u, 0u, 0u, 0u,
     0u, 177u, 0.80822428268941882, 76.316785515231288, 1.1537611750970929,
     50232.232230680995, 704u},
    {"easy-backfill", "last-instance", 1200u, 1200u, 0u, 0u, 0u, 0u, 182u,
     0.80822428268941882, 77.448619320768017, 1.1581873282440374,
     50232.232230680995, 702u},
};

void expect_near_rel(double actual, double expected) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-9 + 1e-12);
}

TEST(PerfEquivalence, OptimizedEngineMatchesSeedGoldens) {
  const trace::Workload w = golden_workload();
  for (const Golden& g : kGolden) {
    SCOPED_TRACE(std::string(g.policy) + " / " + g.estimator);
    sim::TimeSeries ts(50.0);
    const auto r = run_once(w, g.policy, g.estimator, /*baseline=*/false, &ts);
    EXPECT_EQ(r.completed, g.completed);
    EXPECT_EQ(r.attempts, g.attempts);
    EXPECT_EQ(r.resource_failures, g.resource_failures);
    EXPECT_EQ(r.intrinsic_failed, g.intrinsic_failed);
    EXPECT_EQ(r.dropped_unschedulable, g.dropped_unschedulable);
    EXPECT_EQ(r.dropped_attempt_cap, g.dropped_attempt_cap);
    EXPECT_EQ(r.lowered_starts, g.lowered_starts);
    expect_near_rel(r.utilization, g.utilization);
    expect_near_rel(r.mean_wait, g.mean_wait);
    expect_near_rel(r.mean_slowdown, g.mean_slowdown);
    expect_near_rel(r.makespan, g.makespan);
    EXPECT_EQ(ts.points().size(), g.ts_points);
  }
}

void expect_bitwise_equal(const sim::SimulationResult& a,
                          const sim::SimulationResult& b,
                          const sim::TimeSeries& ts_a,
                          const sim::TimeSeries& ts_b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.resource_failures, b.resource_failures);
  EXPECT_EQ(a.intrinsic_failed, b.intrinsic_failed);
  EXPECT_EQ(a.dropped_unschedulable, b.dropped_unschedulable);
  EXPECT_EQ(a.dropped_attempt_cap, b.dropped_attempt_cap);
  EXPECT_EQ(a.lowered_starts, b.lowered_starts);
  EXPECT_EQ(a.benefiting_jobs, b.benefiting_jobs);
  EXPECT_EQ(a.benefiting_nodes, b.benefiting_nodes);
  // Exact double comparison is deliberate: both engines run in this
  // process, so identical decisions imply identical arithmetic.
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.wasted_fraction, b.wasted_fraction);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.mean_bounded_slowdown, b.mean_bounded_slowdown);
  EXPECT_EQ(a.p95_slowdown, b.p95_slowdown);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.throughput_per_hour, b.throughput_per_hour);
  ASSERT_EQ(a.pool_utilization.size(), b.pool_utilization.size());
  for (std::size_t i = 0; i < a.pool_utilization.size(); ++i) {
    EXPECT_EQ(a.pool_utilization[i].capacity, b.pool_utilization[i].capacity);
    EXPECT_EQ(a.pool_utilization[i].busy_fraction,
              b.pool_utilization[i].busy_fraction);
  }
  ASSERT_EQ(ts_a.points().size(), ts_b.points().size());
  for (std::size_t i = 0; i < ts_a.points().size(); ++i) {
    EXPECT_EQ(ts_a.points()[i].time, ts_b.points()[i].time);
    EXPECT_EQ(ts_a.points()[i].busy_fraction, ts_b.points()[i].busy_fraction);
    EXPECT_EQ(ts_a.points()[i].queue_length, ts_b.points()[i].queue_length);
    EXPECT_EQ(ts_a.points()[i].running_jobs, ts_b.points()[i].running_jobs);
  }
}

TEST(PerfEquivalence, BaselineAndOptimizedEnginesBitIdentical) {
  const trace::Workload w = golden_workload();
  for (const char* policy : {"fcfs", "sjf", "easy-backfill"}) {
    for (const char* estimator :
         {"none", "successive-approximation", "last-instance"}) {
      SCOPED_TRACE(std::string(policy) + " / " + estimator);
      sim::TimeSeries ts_base(50.0), ts_opt(50.0);
      const auto base =
          run_once(w, policy, estimator, /*baseline=*/true, &ts_base);
      const auto opt =
          run_once(w, policy, estimator, /*baseline=*/false, &ts_opt);
      expect_bitwise_equal(base, opt, ts_base, ts_opt);
    }
  }
}

// Property: equivalence holds under RANDOMIZED availability schedules, not
// just the pinned one — machines joining and leaving exercise the
// incremental pool counters' drain bookkeeping and the pending-capacity
// hold logic on both engine paths.
TEST(PerfEquivalence, RandomizedAvailabilityProperty) {
  const trace::Workload w = [] {
    trace::Workload base = trace::generate_cm5_small(29, 400);
    base = trace::drop_wide_jobs(std::move(base), 256);
    base = trace::scale_to_load(std::move(base), 256, 0.85);
    return trace::sort_by_submit(std::move(base));
  }();
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    util::Rng rng(1000 + trial);
    sim::SimulationConfig cfg;
    cfg.seed = 7 + trial;
    cfg.explicit_feedback = true;
    const int n_events = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < n_events; ++i) {
      sim::AvailabilityEvent ev;
      ev.time = rng.uniform(500.0, 20000.0);
      ev.capacity = rng.bernoulli(0.5) ? 32.0 : 24.0;
      ev.delta = rng.uniform_int(-48, 48);
      if (ev.delta == 0) ev.delta = 8;
      cfg.availability.push_back(ev);
    }
    for (const char* policy : {"fcfs", "sjf", "easy-backfill"}) {
      SCOPED_TRACE("trial " + std::to_string(trial) + " / " + policy);
      sim::TimeSeries ts_base(50.0), ts_opt(50.0);
      const auto est_b = core::make_estimator("successive-approximation");
      const auto pol_b = sched::make_policy(policy);
      auto cfg_b = cfg;
      cfg_b.baseline_loop = true;
      cfg_b.timeseries = &ts_base;
      const auto base =
          sim::simulate(w, golden_cluster(), *est_b, *pol_b, cfg_b);

      const auto est_o = core::make_estimator("successive-approximation");
      const auto pol_o = sched::make_policy(policy);
      auto cfg_o = cfg;
      cfg_o.baseline_loop = false;
      cfg_o.timeseries = &ts_opt;
      const auto opt =
          sim::simulate(w, golden_cluster(), *est_o, *pol_o, cfg_o);
      expect_bitwise_equal(base, opt, ts_base, ts_opt);
    }
  }
}

}  // namespace
}  // namespace resmatch
