// Edge-case tests for estimator mechanics added on top of the paper's
// Algorithm 1: probe serialization, safe-grant escalation, regression
// failure memoization, and preview/estimate coherence.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/regression_estimator.hpp"
#include "core/successive_approximation.hpp"

namespace resmatch::core {
namespace {

trace::JobRecord make_job(MiB req, MiB used, UserId user = 1, AppId app = 1,
                          JobId id = 1) {
  trace::JobRecord j;
  j.id = id;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  j.user = user;
  j.app = app;
  j.nodes = 8;
  j.runtime = 100;
  j.requested_time = 150;
  return j;
}

Feedback result_of(MiB grant, bool success, bool explicit_fb = false,
                   MiB used = 0.0) {
  Feedback fb;
  fb.success = success;
  fb.granted_mib = grant;
  if (explicit_fb) {
    fb.used_mib = used;
    fb.resource_failure = !success;
  }
  return fb;
}

// --- probe serialization ----------------------------------------------------

TEST(ProbeSerialization, ConcurrentSubmissionsGetSafeCapacity) {
  SuccessiveApproximationEstimator est;
  est.set_ladder(CapacityLadder({4, 8, 16, 24, 32}));
  const auto job = make_job(32, 5);

  // First dispatch+success establishes last_good = 32, E = 16.
  const MiB g1 = est.estimate(job, {});
  est.feedback(job, result_of(g1, true));

  // Second dispatch takes the probe slot at 16...
  const MiB probe = est.estimate(job, {});
  EXPECT_DOUBLE_EQ(probe, 16.0);
  // ...so three more concurrent dispatches all get the proven 32.
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(est.estimate(job, {}), 32.0);
  }
  // Probe fails: the group restores; in-flight safe grants then succeed
  // without corrupting state.
  est.feedback(job, result_of(probe, false));
  for (int i = 0; i < 3; ++i) {
    est.feedback(job, result_of(32.0, true));
  }
  // Frozen (beta = 0) at the proven capacity.
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), 32.0);
}

TEST(ProbeSerialization, SlotFreedBySafeFeedbackOnlyWhenGrantsMatch) {
  SuccessiveApproximationEstimator est;
  est.set_ladder(CapacityLadder({4, 8, 16, 24, 32}));
  const auto job = make_job(32, 5);
  const MiB g1 = est.estimate(job, {});
  est.feedback(job, result_of(g1, true));
  const MiB probe = est.estimate(job, {});  // 16, slot taken
  ASSERT_DOUBLE_EQ(probe, 16.0);
  // Safe-grant feedback (32) must NOT free the probe slot.
  est.feedback(job, result_of(32.0, true));
  EXPECT_DOUBLE_EQ(est.estimate(job, {}), 32.0);  // still serialized
  // The probe's own feedback frees it.
  est.feedback(job, result_of(probe, true));
  EXPECT_LT(est.estimate(job, {}), 16.0 + 1e-9);
}

// --- safe-grant escalation ---------------------------------------------------

TEST(Escalation, FailureAtProvenCapacityClimbsOneRung) {
  SuccessiveApproximationEstimator est;
  est.set_ladder(CapacityLadder({4, 8, 16, 24, 32}));
  // Two members share the group: the probe succeeds on the 5 MiB member,
  // dragging the learned capacity to 8; the 14 MiB member then fails AT
  // the proven capacity and must escalate (8 -> 16), not loop.
  const auto small = make_job(32, 5);
  const auto big = make_job(32, 14);
  est.feedback(small, result_of(est.estimate(small, {}), true));  // 32 ok
  const MiB probe = est.estimate(small, {});
  ASSERT_DOUBLE_EQ(probe, 16.0);
  est.feedback(small, result_of(probe, true));  // 16 proven
  const MiB probe2 = est.estimate(small, {});
  ASSERT_DOUBLE_EQ(probe2, 8.0);
  est.feedback(small, result_of(probe2, true));  // 8 proven (for small!)

  // Big member probes 4 and fails — an ordinary probe failure that
  // restores the learned capacity (8)...
  const MiB g4 = est.estimate(big, {});
  ASSERT_DOUBLE_EQ(g4, 4.0);
  est.feedback(big, result_of(g4, false));
  // ...but 8 is only safe for the small member: big fails AT the proven
  // capacity, which must escalate one rung instead of looping.
  const MiB g8 = est.estimate(big, {});
  ASSERT_DOUBLE_EQ(g8, 8.0);
  est.feedback(big, result_of(g8, false));
  const MiB g16 = est.estimate(big, {});
  EXPECT_DOUBLE_EQ(g16, 16.0);  // escalated one rung
  est.feedback(big, result_of(g16, true));
  // And 16 now serves both members.
  EXPECT_DOUBLE_EQ(est.estimate(big, {}), 16.0);
}

TEST(Escalation, CapsAtRequest) {
  SuccessiveApproximationEstimator est;
  est.set_ladder(CapacityLadder({4, 8, 16, 24, 32}));
  const auto job = make_job(8, 7);  // request 8, tiny job
  est.feedback(job, result_of(est.estimate(job, {}), true));
  // Intrinsic failure at the proven capacity: escalation may not exceed
  // the request's own rounding.
  est.feedback(job, result_of(8.0, false));
  EXPECT_LE(est.estimate(job, {}), 8.0 + 1e-9);
}

// --- regression failure memoization -----------------------------------------

TEST(RegressionMemoization, BurnedClassPassesRequestThrough) {
  RegressionConfig cfg;
  cfg.min_observations = 10;
  cfg.margin = 1.0;  // razor-thin: under-predictions will happen
  RegressionEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));

  // Train on a lean class so the model predicts low usage globally.
  for (int i = 0; i < 40; ++i) {
    const auto lean = make_job(32, 2, /*user=*/1, /*app=*/1);
    est.feedback(lean, result_of(est.estimate(lean, {}), true, true, 2.0));
  }
  // A heavy class arrives: the model under-predicts, the job fails once.
  const auto heavy = make_job(32, 30, /*user=*/9, /*app=*/9);
  const MiB g = est.estimate(heavy, {});
  ASSERT_LT(g, 30.0);  // under-provisioned
  est.feedback(heavy, result_of(g, false, true, 30.0));
  // From now on the heavy class is never trusted to the model.
  EXPECT_DOUBLE_EQ(est.estimate(heavy, {}), 32.0);
  // The lean class keeps its savings.
  EXPECT_LT(est.estimate(make_job(32, 2, 1, 1), {}), 32.0);
}

TEST(RegressionMemoization, RequiresResourceFailureCause) {
  RegressionConfig cfg;
  cfg.min_observations = 5;
  RegressionEstimator est(cfg);
  est.set_ladder(CapacityLadder({1, 2, 4, 8, 16, 32}));
  for (int i = 0; i < 10; ++i) {
    const auto job = make_job(32, 2);
    est.feedback(job, result_of(est.estimate(job, {}), true, true, 2.0));
  }
  // An intrinsic (non-resource) failure must NOT burn the class.
  const auto job = make_job(32, 2);
  Feedback fb;
  fb.success = false;
  fb.granted_mib = est.estimate(job, {});
  fb.used_mib = 2.0;
  fb.resource_failure = false;
  est.feedback(job, fb);
  EXPECT_LT(est.estimate(job, {}), 32.0);  // still trusting the model
}

// --- preview/estimate coherence ----------------------------------------------

TEST(PreviewCoherence, DeterministicEstimatorsPreviewTheirNextGrant) {
  for (const char* name :
       {"none", "successive-approximation", "bracketing", "last-instance"}) {
    auto est = make_estimator(name);
    est->set_ladder(CapacityLadder({4, 8, 16, 24, 32}));
    const auto job = make_job(32, 5);
    for (int cycle = 0; cycle < 6; ++cycle) {
      const MiB previewed = est->preview(job, {});
      const MiB granted = est->estimate(job, {});
      ASSERT_DOUBLE_EQ(previewed, granted) << name << " cycle " << cycle;
      Feedback fb;
      fb.success = granted + 1e-9 >= job.used_mem_mib;
      fb.granted_mib = granted;
      fb.used_mib = job.used_mem_mib;
      fb.resource_failure = !fb.success;
      est->feedback(job, fb);
    }
  }
}

}  // namespace
}  // namespace resmatch::core
