// Unit tests for scheduling policies: strict FCFS blocking, SJF selection,
// and EASY backfilling's reservation safety on heterogeneous pools.
#include <gtest/gtest.h>

#include "sched/easy_backfill.hpp"
#include "sched/factory.hpp"
#include "sched/fcfs.hpp"
#include "sched/sjf.hpp"

namespace resmatch::sched {
namespace {

/// Scripted cluster view: two pools (small capacity, big capacity).
class FakeCluster final : public ClusterView {
 public:
  FakeCluster(MiB small_cap, std::size_t small_free, std::size_t small_total,
              MiB big_cap, std::size_t big_free, std::size_t big_total)
      : small_cap_(small_cap),
        small_free_(small_free),
        small_total_(small_total),
        big_cap_(big_cap),
        big_free_(big_free),
        big_total_(big_total) {}

  std::size_t eligible_free(MiB min_capacity) const override {
    std::size_t n = 0;
    if (small_cap_ >= min_capacity) n += small_free_;
    if (big_cap_ >= min_capacity) n += big_free_;
    return n;
  }
  std::size_t eligible_total(MiB min_capacity) const override {
    std::size_t n = 0;
    if (small_cap_ >= min_capacity) n += small_total_;
    if (big_cap_ >= min_capacity) n += big_total_;
    return n;
  }
  std::size_t machine_count() const override {
    return small_total_ + big_total_;
  }

 private:
  MiB small_cap_;
  std::size_t small_free_, small_total_;
  MiB big_cap_;
  std::size_t big_free_, big_total_;
};

QueuedJob queued(std::size_t index, std::uint32_t nodes, MiB request,
                 Seconds requested_time = 100.0) {
  QueuedJob q;
  q.trace_index = index;
  q.id = index + 1;
  q.nodes = nodes;
  q.effective_request = request;
  q.requested_time = requested_time;
  return q;
}

TEST(FitsNow, ChecksEligibleFreeMachines) {
  FakeCluster cluster(24, 10, 10, 32, 5, 5);
  EXPECT_TRUE(fits_now(queued(0, 15, 24.0), cluster));   // 15 <= 10+5
  EXPECT_FALSE(fits_now(queued(0, 16, 24.0), cluster));
  EXPECT_TRUE(fits_now(queued(0, 5, 32.0), cluster));    // only big pool
  EXPECT_FALSE(fits_now(queued(0, 6, 32.0), cluster));
}

TEST(Fcfs, PicksHeadWhenItFits) {
  FcfsPolicy policy;
  FakeCluster cluster(24, 10, 10, 32, 5, 5);
  std::deque<QueuedJob> queue = {queued(0, 4, 24.0), queued(1, 1, 24.0)};
  EXPECT_EQ(policy.pick_next(queue, cluster, {}, 0.0), 0u);
}

TEST(Fcfs, BlocksBehindNonFittingHead) {
  FcfsPolicy policy;
  FakeCluster cluster(24, 2, 10, 32, 0, 5);
  // Head needs 4 machines, only 2 free; the tiny job behind must wait.
  std::deque<QueuedJob> queue = {queued(0, 4, 24.0), queued(1, 1, 24.0)};
  EXPECT_FALSE(policy.pick_next(queue, cluster, {}, 0.0).has_value());
}

TEST(Fcfs, EmptyQueue) {
  FcfsPolicy policy;
  FakeCluster cluster(24, 2, 10, 32, 0, 5);
  EXPECT_FALSE(policy.pick_next({}, cluster, {}, 0.0).has_value());
}

TEST(Sjf, PicksShortestFittingJob) {
  SjfPolicy policy;
  FakeCluster cluster(24, 3, 10, 32, 0, 5);
  std::deque<QueuedJob> queue = {queued(0, 2, 24.0, 500.0),
                                  queued(1, 2, 24.0, 100.0),
                                  queued(2, 2, 24.0, 300.0)};
  EXPECT_EQ(policy.pick_next(queue, cluster, {}, 0.0), 1u);
}

TEST(Sjf, SkipsNonFittingShorterJob) {
  SjfPolicy policy;
  FakeCluster cluster(24, 3, 10, 32, 0, 5);
  std::deque<QueuedJob> queue = {queued(0, 2, 24.0, 500.0),
                                  queued(1, 8, 24.0, 50.0)};  // too wide
  EXPECT_EQ(policy.pick_next(queue, cluster, {}, 0.0), 0u);
}

TEST(Sjf, TieBreaksTowardEarlierArrival) {
  SjfPolicy policy;
  FakeCluster cluster(24, 4, 10, 32, 0, 5);
  std::deque<QueuedJob> queue = {queued(0, 2, 24.0, 100.0),
                                  queued(1, 2, 24.0, 100.0)};
  EXPECT_EQ(policy.pick_next(queue, cluster, {}, 0.0), 0u);
}

TEST(Easy, StartsHeadWhenItFits) {
  EasyBackfillPolicy policy;
  FakeCluster cluster(24, 8, 10, 32, 0, 5);
  std::deque<QueuedJob> queue = {queued(0, 4, 24.0)};
  EXPECT_EQ(policy.pick_next(queue, cluster, {}, 0.0), 0u);
}

TEST(Easy, BackfillsShortJobBeforeShadowTime) {
  EasyBackfillPolicy policy;
  // Head needs 8 machines at >= 24; only 2 free now; a running job on 6
  // eligible machines ends at t=1000.
  FakeCluster cluster(24, 2, 10, 32, 0, 5);
  std::vector<RunningJobInfo> running = {{1000.0, 6, 24.0}};
  std::deque<QueuedJob> queue = {queued(0, 8, 24.0),
                                  queued(1, 2, 24.0, /*req_time=*/500.0)};
  // The candidate ends at 500 < shadow 1000: safe to backfill.
  EXPECT_EQ(policy.pick_next(queue, cluster, running, 0.0), 1u);
}

TEST(Easy, RefusesBackfillThatWouldDelayHead) {
  EasyBackfillPolicy policy;
  FakeCluster cluster(24, 2, 10, 32, 0, 5);
  std::vector<RunningJobInfo> running = {{1000.0, 6, 24.0}};
  // The candidate would run past the shadow time on head-eligible
  // machines, with zero spare at the shadow point (2 + 6 = 8 = head need).
  std::deque<QueuedJob> queue = {queued(0, 8, 24.0),
                                  queued(1, 2, 24.0, /*req_time=*/5000.0)};
  EXPECT_FALSE(policy.pick_next(queue, cluster, running, 0.0).has_value());
}

TEST(Easy, BackfillsLongJobIntoSpareNodes) {
  EasyBackfillPolicy policy;
  // 4 free now; head needs 8; running frees 6 at t=1000 -> 10 available,
  // 2 spare beyond the head's 8.
  FakeCluster cluster(24, 4, 12, 32, 0, 5);
  std::vector<RunningJobInfo> running = {{1000.0, 6, 24.0}};
  std::deque<QueuedJob> queue = {queued(0, 8, 24.0),
                                  queued(1, 2, 24.0, /*req_time=*/9999.0)};
  EXPECT_EQ(policy.pick_next(queue, cluster, running, 0.0), 1u);
}

TEST(Easy, BackfillsIntoMachinesBelowHeadCapacityClass) {
  EasyBackfillPolicy policy;
  // Head requires 32 MiB machines (0 free). Candidate fits entirely into
  // free 24 MiB machines the head can never use.
  FakeCluster cluster(24, 6, 10, 32, 0, 5);
  std::vector<RunningJobInfo> running = {{1000.0, 3, 32.0}};
  std::deque<QueuedJob> queue = {queued(0, 3, 32.0),
                                  queued(1, 4, 24.0, /*req_time=*/9999.0)};
  EXPECT_EQ(policy.pick_next(queue, cluster, running, 0.0), 1u);
}

TEST(Easy, UnsatisfiableHeadAllowsFreeBackfill) {
  EasyBackfillPolicy policy;
  // Head wants 20 machines at >= 32 but only 5 exist: no reservation is
  // possible, so anything that fits may run.
  FakeCluster cluster(24, 6, 10, 32, 0, 5);
  std::deque<QueuedJob> queue = {queued(0, 20, 32.0),
                                  queued(1, 4, 24.0, /*req_time=*/9999.0)};
  EXPECT_EQ(policy.pick_next(queue, cluster, {}, 0.0), 1u);
}

TEST(PolicyFactory, BuildsAllNames) {
  for (const auto& name : policy_names()) {
    const auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyFactory, UnknownNameThrows) {
  EXPECT_THROW(make_policy("random"), std::invalid_argument);
}

}  // namespace
}  // namespace resmatch::sched
