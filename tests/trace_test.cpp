// Unit tests for trace records, SWF I/O round-tripping, workload
// transforms, and the offline analysis behind Figures 1, 3 and 4.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/analysis.hpp"
#include "trace/job_record.hpp"
#include "trace/swf.hpp"
#include "trace/transforms.hpp"

namespace resmatch::trace {
namespace {

JobRecord make_job(JobId id, Seconds submit, Seconds runtime,
                   std::uint32_t nodes, MiB req, MiB used, UserId user = 1,
                   AppId app = 1) {
  JobRecord j;
  j.id = id;
  j.submit = submit;
  j.runtime = runtime;
  j.nodes = nodes;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  j.user = user;
  j.app = app;
  j.requested_time = runtime * 2;
  return j;
}

TEST(JobRecord, WorkIsNodesTimesRuntime) {
  const auto j = make_job(1, 0, 100, 32, 32, 16);
  EXPECT_DOUBLE_EQ(j.work(), 3200.0);
}

TEST(JobRecord, OverprovisionRatio) {
  EXPECT_DOUBLE_EQ(make_job(1, 0, 1, 1, 32, 8).overprovision_ratio(), 4.0);
  EXPECT_DOUBLE_EQ(make_job(1, 0, 1, 1, 32, 32).overprovision_ratio(), 1.0);
  // Unknown usage degrades to ratio 1, not a division blowup.
  EXPECT_DOUBLE_EQ(make_job(1, 0, 1, 1, 32, 0).overprovision_ratio(), 1.0);
}

TEST(JobRecord, IsSimulatable) {
  EXPECT_TRUE(is_simulatable(make_job(1, 0, 10, 1, 32, 8)));
  EXPECT_FALSE(is_simulatable(make_job(1, 0, 0, 1, 32, 8)));    // no runtime
  EXPECT_FALSE(is_simulatable(make_job(1, 0, 10, 0, 32, 8)));   // no nodes
  EXPECT_FALSE(is_simulatable(make_job(1, 0, 10, 1, 8, 32)));   // used > req
  EXPECT_FALSE(is_simulatable(make_job(1, -5, 10, 1, 32, 8)));  // neg submit
}

TEST(Workload, SpanAndOfferedLoad) {
  Workload w;
  w.jobs = {make_job(1, 0, 100, 10, 32, 8), make_job(2, 1000, 100, 10, 32, 8)};
  EXPECT_DOUBLE_EQ(w.span(), 1000.0);
  EXPECT_DOUBLE_EQ(w.total_work(), 2000.0);
  // 2000 node-seconds demanded over 1000s on 10 machines = 0.2.
  EXPECT_DOUBLE_EQ(w.offered_load(10), 0.2);
}

TEST(Workload, EmptyIsSafe) {
  Workload w;
  EXPECT_DOUBLE_EQ(w.span(), 0.0);
  EXPECT_DOUBLE_EQ(w.offered_load(10), 0.0);
}

TEST(Swf, LineRoundTrip) {
  const auto original = make_job(7, 123, 456, 64, 32, 5.5, 9, 3);
  const std::string line = format_swf_line(original);
  const auto parsed = parse_swf_line(line);
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  const JobRecord& j = parsed.value();
  EXPECT_EQ(j.id, original.id);
  EXPECT_DOUBLE_EQ(j.submit, original.submit);
  EXPECT_DOUBLE_EQ(j.runtime, original.runtime);
  EXPECT_EQ(j.nodes, original.nodes);
  EXPECT_NEAR(j.requested_mem_mib, original.requested_mem_mib, 1e-6);
  EXPECT_NEAR(j.used_mem_mib, original.used_mem_mib, 1e-6);
  EXPECT_EQ(j.user, original.user);
  EXPECT_EQ(j.app, original.app);
}

TEST(Swf, ParseRejectsShortLines) {
  EXPECT_FALSE(parse_swf_line("1 2 3").has_value());
}

TEST(Swf, ParseRejectsNonNumeric) {
  EXPECT_FALSE(
      parse_swf_line("1 2 3 4 5 6 7 8 9 x 11 12 13 14 15 16 17 18")
          .has_value());
}

TEST(Swf, UnknownFieldsAreMinusOne) {
  const auto parsed =
      parse_swf_line("1 0 -1 100 8 -1 -1 8 -1 -1 1 2 -1 3 -1 -1 -1 -1");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed.value().used_mem_mib, kUnknown);
  EXPECT_DOUBLE_EQ(parsed.value().requested_mem_mib, kUnknown);
}

TEST(Swf, MemoryUnitsConvertKbToMib) {
  // 32768 KB per processor = 32 MiB per node.
  const auto parsed = parse_swf_line(
      "1 0 -1 100 8 -1 16384 8 200 32768 1 2 -1 3 -1 -1 -1 -1");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed.value().requested_mem_mib, 32.0);
  EXPECT_DOUBLE_EQ(parsed.value().used_mem_mib, 16.0);
}

TEST(Swf, StreamRoundTripSkipsComments) {
  Workload w;
  w.name = "test";
  w.jobs = {make_job(1, 0, 10, 8, 32, 4), make_job(2, 5, 20, 16, 16, 8)};
  std::ostringstream out;
  write_swf(out, w);
  std::istringstream in(out.str());
  const auto result = read_swf(in, "roundtrip");
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_EQ(result.value().workload.jobs.size(), 2u);
  EXPECT_EQ(result.value().skipped, 0u);
}

TEST(Swf, SkipsBrokenLinesButKeepsGood) {
  std::istringstream in(
      "; comment\n"
      "1 0 -1 100 8 -1 4096 8 200 32768 1 2 -1 3 -1 -1 -1 -1\n"
      "garbage line\n"
      "2 10 -1 0 8 -1 4096 8 200 32768 1 2 -1 3 -1 -1 -1 -1\n");  // runtime 0
  const auto result = read_swf(in, "mixed");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value().workload.jobs.size(), 1u);
  EXPECT_EQ(result.value().skipped, 2u);
}

TEST(Swf, AllBrokenIsError) {
  std::istringstream in("garbage\nmore garbage\n");
  EXPECT_FALSE(read_swf(in, "bad").has_value());
}

TEST(Swf, EmptyInputIsEmptyWorkload) {
  std::istringstream in("; only comments\n");
  const auto result = read_swf(in, "empty");
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result.value().workload.jobs.empty());
}

TEST(Transforms, ScaleArrivalsStretchesSubmitOnly) {
  Workload w;
  w.jobs = {make_job(1, 100, 10, 1, 32, 8), make_job(2, 200, 10, 1, 32, 8)};
  const Workload scaled = scale_arrivals(std::move(w), 2.0);
  EXPECT_DOUBLE_EQ(scaled.jobs[0].submit, 200.0);
  EXPECT_DOUBLE_EQ(scaled.jobs[1].submit, 400.0);
  EXPECT_DOUBLE_EQ(scaled.jobs[0].runtime, 10.0);
}

TEST(Transforms, ScaleToLoadHitsTarget) {
  Workload w;
  for (int i = 0; i < 50; ++i) {
    w.jobs.push_back(make_job(i, i * 100.0, 100, 10, 32, 8));
  }
  const Workload scaled = scale_to_load(std::move(w), 100, 0.5);
  EXPECT_NEAR(scaled.offered_load(100), 0.5, 1e-9);
}

TEST(Transforms, DropWideJobs) {
  Workload w;
  w.jobs = {make_job(1, 0, 10, 512, 32, 8), make_job(2, 0, 10, 1024, 32, 8)};
  const Workload filtered = drop_wide_jobs(std::move(w), 512);
  ASSERT_EQ(filtered.jobs.size(), 1u);
  EXPECT_EQ(filtered.jobs[0].id, 1u);
}

TEST(Transforms, TruncateKeepsEarliest) {
  Workload w;
  w.jobs = {make_job(1, 300, 10, 1, 32, 8), make_job(2, 100, 10, 1, 32, 8),
            make_job(3, 200, 10, 1, 32, 8)};
  const Workload t = truncate(std::move(w), 2);
  ASSERT_EQ(t.jobs.size(), 2u);
  EXPECT_EQ(t.jobs[0].id, 2u);
  EXPECT_EQ(t.jobs[1].id, 3u);
}

TEST(Transforms, SortBySubmitIsStable) {
  Workload w;
  w.jobs = {make_job(1, 100, 10, 1, 32, 8), make_job(2, 100, 10, 1, 32, 8),
            make_job(3, 50, 10, 1, 32, 8)};
  const Workload sorted = sort_by_submit(std::move(w));
  EXPECT_EQ(sorted.jobs[0].id, 3u);
  EXPECT_EQ(sorted.jobs[1].id, 1u);  // ties keep original order
  EXPECT_EQ(sorted.jobs[2].id, 2u);
}

TEST(Analysis, DefaultGroupKeySeparatesTriples) {
  const auto a = make_job(1, 0, 10, 1, 32, 8, /*user=*/1, /*app=*/1);
  const auto b = make_job(2, 0, 10, 1, 32, 8, 1, 1);
  EXPECT_EQ(default_group_key(a), default_group_key(b));
  // Changing any key component changes the group.
  auto c = a;
  c.user = 2;
  EXPECT_NE(default_group_key(a), default_group_key(c));
  auto d = a;
  d.app = 2;
  EXPECT_NE(default_group_key(a), default_group_key(d));
  auto e = a;
  e.requested_mem_mib = 16;
  EXPECT_NE(default_group_key(a), default_group_key(e));
}

TEST(Analysis, DefaultGroupKeyIgnoresNonKeyFields) {
  auto a = make_job(1, 0, 10, 4, 32, 8);
  auto b = make_job(99, 500, 77, 16, 32, 2.0);
  EXPECT_EQ(default_group_key(a), default_group_key(b));
}

TEST(Analysis, OverprovisionFractionGe2) {
  Workload w;
  // 3 of 4 jobs at ratio >= 2.
  w.jobs = {make_job(1, 0, 1, 1, 32, 32), make_job(2, 0, 1, 1, 32, 16),
            make_job(3, 0, 1, 1, 32, 8), make_job(4, 0, 1, 1, 32, 4)};
  const auto analysis = analyze_overprovisioning(w, 1.0, 64.0);
  EXPECT_NEAR(analysis.fraction_ge2, 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(analysis.max_ratio_seen, 8.0);
}

TEST(Analysis, ProfileGroupsAggregatesMinMax) {
  Workload w;
  w.jobs = {make_job(1, 0, 1, 1, 32, 8, 1, 1), make_job(2, 0, 1, 1, 32, 4, 1, 1),
            make_job(3, 0, 1, 1, 32, 16, 1, 1),
            make_job(4, 0, 1, 1, 16, 8, 2, 1)};
  const auto groups = profile_groups(w);
  ASSERT_EQ(groups.size(), 2u);
  // Sorted by size descending: the size-3 group first.
  EXPECT_EQ(groups[0].size, 3u);
  EXPECT_DOUBLE_EQ(groups[0].max_used_mib, 16.0);
  EXPECT_DOUBLE_EQ(groups[0].min_used_mib, 4.0);
  EXPECT_DOUBLE_EQ(groups[0].similarity_range(), 4.0);
  EXPECT_DOUBLE_EQ(groups[0].potential_gain(), 2.0);
}

TEST(Analysis, GroupSizeDistributionThreshold) {
  Workload w;
  // One group of 10 (user 1), one of 2 (user 2).
  for (int i = 0; i < 10; ++i) {
    w.jobs.push_back(make_job(i, 0, 1, 1, 32, 8, 1, 1));
  }
  w.jobs.push_back(make_job(100, 0, 1, 1, 32, 8, 2, 1));
  w.jobs.push_back(make_job(101, 0, 1, 1, 32, 8, 2, 1));
  const auto groups = profile_groups(w);
  const auto dist = group_size_distribution(groups, 10);
  EXPECT_EQ(dist.group_count, 2u);
  EXPECT_EQ(dist.job_count, 12u);
  EXPECT_DOUBLE_EQ(dist.fraction_groups_ge_threshold, 0.5);
  EXPECT_NEAR(dist.fraction_jobs_ge_threshold, 10.0 / 12.0, 1e-9);
  // jobs_by_size: size 2 -> 2 jobs; size 10 -> 10 jobs.
  ASSERT_EQ(dist.jobs_by_size.size(), 2u);
  EXPECT_EQ(dist.jobs_by_size[0].first, 2);
  EXPECT_EQ(dist.jobs_by_size[0].second, 2u);
}

TEST(Analysis, GroupQualityScatterFiltersSmallGroups) {
  Workload w;
  for (int i = 0; i < 12; ++i) {
    w.jobs.push_back(make_job(i, 0, 1, 1, 32, 8, 1, 1));
  }
  w.jobs.push_back(make_job(100, 0, 1, 1, 32, 8, 2, 1));
  const auto groups = profile_groups(w);
  const auto scatter = group_quality_scatter(groups, 10);
  ASSERT_EQ(scatter.size(), 1u);
  EXPECT_EQ(scatter[0].size, 12u);
  EXPECT_DOUBLE_EQ(scatter[0].potential_gain, 4.0);
}

}  // namespace
}  // namespace resmatch::trace
