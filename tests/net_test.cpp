// src/net — frame helpers, wire codec, epoll server, and the router tier.
//
// The codec tests are transport-free (satellite: round-trip every message
// type, reject truncation/corruption/oversize, survive a fuzz-lite loop of
// seeded random bytes). The server/router tests run real sockets: UDS
// endpoints under a per-test temp dir, TCP on an ephemeral port, and the
// in-process mini-cluster asserting byte-identical decisions against a
// single-process matchd — the small sibling of examples/cluster_replay.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "core/similarity.hpp"
#include "match/classad.hpp"
#include "match/compiled.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "svc/matchd.hpp"
#include "trace/job_record.hpp"
#include "util/frame.hpp"
#include "util/rng.hpp"

namespace resmatch {
namespace {

namespace fs = std::filesystem;

// --- fixtures ----------------------------------------------------------------

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("resmatch_net_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

trace::JobRecord make_job(std::uint64_t id, std::uint32_t user,
                          std::uint32_t app, MiB requested, MiB used) {
  trace::JobRecord job;
  job.id = id;
  job.submit = static_cast<double>(id);
  job.runtime = 10.0;
  job.requested_time = 20.0;
  job.nodes = 2;
  job.requested_mem_mib = requested;
  job.used_mem_mib = used;
  job.user = user;
  job.app = app;
  return job;
}

/// A small mixed workload: several similarity groups, usage below request
/// so the estimator has something to learn.
std::vector<trace::JobRecord> small_workload(std::size_t n) {
  std::vector<trace::JobRecord> jobs;
  util::Rng rng(1234);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t user = static_cast<std::uint32_t>(rng() % 5);
    const std::uint32_t app = static_cast<std::uint32_t>(rng() % 3);
    const MiB requested = 8.0 * static_cast<double>(1 + rng() % 4);
    const MiB used = requested * (0.3 + 0.1 * static_cast<double>(rng() % 5));
    jobs.push_back(make_job(i + 1, user, app, requested, used));
  }
  return jobs;
}

core::CapacityLadder test_ladder() {
  return core::CapacityLadder({8.0, 16.0, 24.0, 32.0});
}

svc::MatchdConfig sync_config() {
  svc::MatchdConfig config;
  config.alpha = 2.0;
  return config;
}

/// Drive one job through any object exposing submit()/feedback() matchd
/// verbs; returns the granted capacity (serve_replay's per-job protocol).
template <typename Service>
MiB drive_job(Service& service, const trace::JobRecord& job) {
  const svc::MatchDecision decision = service.submit(job);
  core::Feedback fb;
  fb.granted_mib = decision.granted_mib;
  fb.success = job.used_mem_mib <= decision.granted_mib;
  fb.used_mib = job.used_mem_mib;
  fb.resource_failure = !fb.success;
  service.feedback(job, fb);
  return decision.granted_mib;
}

// --- util/frame --------------------------------------------------------------

TEST(Frame, AppendThenParseRoundTrips) {
  std::vector<char> buf;
  const std::string payload = "hello frame";
  util::append_frame(buf, payload.data(), payload.size());

  util::FrameView view;
  ASSERT_EQ(util::parse_frame(buf.data(), buf.size(), 1 << 20, view),
            util::FrameParseStatus::kOk);
  EXPECT_EQ(std::string(view.payload, view.len), payload);
  EXPECT_EQ(view.frame_size, util::kFrameHeaderSize + payload.size());
}

TEST(Frame, BeginEndMatchesAppendFrame) {
  const std::string payload = "two paths, one encoding";
  std::vector<char> a;
  util::append_frame(a, payload.data(), payload.size());
  std::vector<char> b;
  const std::size_t mark = util::frame_begin(b);
  b.insert(b.end(), payload.begin(), payload.end());
  util::frame_end(b, mark);
  EXPECT_EQ(a, b);
}

TEST(Frame, ShortBufferNeedsMore) {
  std::vector<char> buf;
  util::append_frame(buf, "payload", 7);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    util::FrameView view;
    EXPECT_EQ(util::parse_frame(buf.data(), cut, 1 << 20, view),
              util::FrameParseStatus::kNeedMore)
        << "at prefix length " << cut;
  }
}

TEST(Frame, CorruptPayloadIsBad) {
  std::vector<char> buf;
  util::append_frame(buf, "payload", 7);
  buf[util::kFrameHeaderSize] ^= 0x01;  // flip one payload bit
  util::FrameView view;
  EXPECT_EQ(util::parse_frame(buf.data(), buf.size(), 1 << 20, view),
            util::FrameParseStatus::kBad);
}

TEST(Frame, OversizedLengthIsBadNotAnAllocation) {
  std::vector<char> buf;
  util::put_u32(buf, 0xFFFFFFFFu);  // length word far beyond max_payload
  util::put_u32(buf, 0);            // crc (never reached)
  util::FrameView view;
  EXPECT_EQ(util::parse_frame(buf.data(), buf.size(), 1 << 20, view),
            util::FrameParseStatus::kBad);
}

// --- protocol codec ----------------------------------------------------------

/// Encode one body, run it through a mid-stream decoder, return the
/// envelope (asserting exactly one message comes out).
net::Envelope one_round_trip(const net::Envelope& in) {
  std::vector<char> bytes;
  net::encode_envelope(bytes, in);
  net::Decoder decoder(/*expect_magic=*/false);
  decoder.feed(bytes.data(), bytes.size());
  auto msg = decoder.next();
  EXPECT_TRUE(msg.has_value()) << (msg ? "" : msg.error());
  EXPECT_TRUE(msg.value().has_value());
  auto tail = decoder.next();
  EXPECT_TRUE(tail.has_value());
  EXPECT_FALSE(tail.value().has_value()) << "decoder produced extra message";
  return std::move(*msg.value());
}

TEST(Codec, EstimateReqRoundTrips) {
  const trace::JobRecord job = make_job(7, 3, 2, 24.0, 9.5);
  const net::Envelope out = one_round_trip(
      net::Envelope{net::MsgType::kEstimate, 42, net::EstimateReq{job}});
  EXPECT_EQ(out.type, net::MsgType::kEstimate);
  EXPECT_EQ(out.request_id, 42u);
  const auto& body = std::get<net::EstimateReq>(out.body);
  EXPECT_EQ(body.job.id, job.id);
  EXPECT_EQ(body.job.user, job.user);
  EXPECT_EQ(body.job.app, job.app);
  EXPECT_DOUBLE_EQ(body.job.requested_mem_mib, job.requested_mem_mib);
  EXPECT_DOUBLE_EQ(body.job.used_mem_mib, job.used_mem_mib);
  EXPECT_EQ(body.job.nodes, job.nodes);
  EXPECT_EQ(body.job.status, job.status);
}

TEST(Codec, PreviewReqRoundTrips) {
  const net::Envelope out = one_round_trip(net::Envelope{
      net::MsgType::kPreview, 1, net::PreviewReq{make_job(9, 1, 1, 16, 4)}});
  EXPECT_EQ(std::get<net::PreviewReq>(out.body).job.id, 9u);
}

TEST(Codec, FeedbackReqRoundTripsWithAndWithoutOptionals) {
  core::Feedback full;
  full.success = true;
  full.granted_mib = 16.0;
  full.used_mib = 5.25;
  full.resource_failure = false;
  const net::Envelope a = one_round_trip(
      net::Envelope{net::MsgType::kFeedback, 2,
                    net::FeedbackReq{make_job(1, 0, 0, 16, 5.25), full}});
  const auto& fa = std::get<net::FeedbackReq>(a.body).fb;
  EXPECT_TRUE(fa.success);
  EXPECT_DOUBLE_EQ(fa.granted_mib, 16.0);
  ASSERT_TRUE(fa.used_mib.has_value());
  EXPECT_DOUBLE_EQ(*fa.used_mib, 5.25);
  ASSERT_TRUE(fa.resource_failure.has_value());
  EXPECT_FALSE(*fa.resource_failure);

  core::Feedback implicit;  // nullopt optionals must survive the wire
  implicit.success = false;
  implicit.granted_mib = 8.0;
  const net::Envelope b = one_round_trip(
      net::Envelope{net::MsgType::kFeedback, 3,
                    net::FeedbackReq{make_job(2, 0, 0, 8, 8), implicit}});
  const auto& fb = std::get<net::FeedbackReq>(b.body).fb;
  EXPECT_FALSE(fb.success);
  EXPECT_FALSE(fb.used_mib.has_value());
  EXPECT_FALSE(fb.resource_failure.has_value());
}

TEST(Codec, CancelReqRoundTrips) {
  const net::Envelope out = one_round_trip(
      net::Envelope{net::MsgType::kCancel, 4,
                    net::CancelReq{make_job(3, 2, 1, 32, 1), 24.0}});
  EXPECT_DOUBLE_EQ(std::get<net::CancelReq>(out.body).granted, 24.0);
}

TEST(Codec, EmptyBodiedRequestsRoundTrip) {
  const net::Envelope a = one_round_trip(
      net::Envelope{net::MsgType::kCheckpoint, 5, net::CheckpointReq{}});
  EXPECT_EQ(a.type, net::MsgType::kCheckpoint);
  const net::Envelope b = one_round_trip(
      net::Envelope{net::MsgType::kHealth, 6, net::HealthReq{}});
  EXPECT_EQ(b.type, net::MsgType::kHealth);
  const net::Envelope c =
      one_round_trip(net::Envelope{net::MsgType::kStats, 7, net::StatsReq{}});
  EXPECT_EQ(c.type, net::MsgType::kStats);
}

TEST(Codec, MatchReqRoundTrips) {
  net::MatchReq req;
  req.attrs = {{"req_memory", "16"},
               {"requirements", "other.memory >= my.req_memory"},
               {"rank", "other.memory"}};
  const net::Envelope out =
      one_round_trip(net::Envelope{net::MsgType::kMatch, 11, req});
  EXPECT_EQ(out.type, net::MsgType::kMatch);
  const auto& body = std::get<net::MatchReq>(out.body);
  ASSERT_EQ(body.attrs.size(), 3u);
  EXPECT_EQ(body.attrs[0].first, "req_memory");
  EXPECT_EQ(body.attrs[0].second, "16");
  EXPECT_EQ(body.attrs[1].second, "other.memory >= my.req_memory");
  EXPECT_EQ(body.attrs[2].first, "rank");

  const net::Envelope empty =
      one_round_trip(net::Envelope{net::MsgType::kMatch, 12, net::MatchReq{}});
  EXPECT_TRUE(std::get<net::MatchReq>(empty.body).attrs.empty());
}

TEST(Codec, MatchRespRoundTrips) {
  net::MatchResp resp;
  resp.rows = {4, 0, 2, 0xFFFFFFFFu};
  const net::Envelope out =
      one_round_trip(net::Envelope{net::MsgType::kMatchResp, 13, resp});
  EXPECT_EQ(std::get<net::MatchResp>(out.body).rows, resp.rows);

  const net::Envelope empty = one_round_trip(
      net::Envelope{net::MsgType::kMatchResp, 14, net::MatchResp{}});
  EXPECT_TRUE(std::get<net::MatchResp>(empty.body).rows.empty());
}

TEST(Codec, HostileMatchLengthsAreRejectedNotAllocated) {
  const auto expect_bad = [](const std::vector<char>& payload) {
    std::vector<char> bytes;
    util::append_frame(bytes, payload.data(), payload.size());
    net::Decoder decoder(/*expect_magic=*/false);
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(decoder.next().has_value());
  };

  // An attr count claiming far more pairs than the payload could hold.
  std::vector<char> lying_count;
  lying_count.push_back(static_cast<char>(net::MsgType::kMatch));
  for (int i = 0; i < 8; ++i) lying_count.push_back(0);  // request id
  util::put_u32(lying_count, 0x00FFFFFFu);
  expect_bad(lying_count);

  // A string length word running past the end of the payload.
  std::vector<char> lying_strlen;
  lying_strlen.push_back(static_cast<char>(net::MsgType::kMatch));
  for (int i = 0; i < 8; ++i) lying_strlen.push_back(0);
  util::put_u32(lying_strlen, 1);        // one attr...
  util::put_u32(lying_strlen, 0xFFFFu);  // ...whose name overruns
  expect_bad(lying_strlen);
}

TEST(Codec, ResponsesRoundTrip) {
  const net::Envelope a = one_round_trip(
      net::Envelope{net::MsgType::kEstimateResp, 8,
                    net::EstimateResp{16.0, true, 0xDEADBEEFu}});
  const auto& ea = std::get<net::EstimateResp>(a.body);
  EXPECT_DOUBLE_EQ(ea.granted_mib, 16.0);
  EXPECT_TRUE(ea.lowered);
  EXPECT_EQ(ea.group_key, 0xDEADBEEFu);

  const net::Envelope b = one_round_trip(
      net::Envelope{net::MsgType::kPreviewResp, 9, net::PreviewResp{24.0}});
  EXPECT_DOUBLE_EQ(std::get<net::PreviewResp>(b.body).granted_mib, 24.0);

  const net::Envelope c =
      one_round_trip(net::Envelope{net::MsgType::kAck, 10, net::Ack{false}});
  EXPECT_FALSE(std::get<net::Ack>(c.body).ok);

  net::HealthResp health;
  health.degraded = true;
  health.wal_enabled = true;
  health.groups = 17;
  const net::Envelope d =
      one_round_trip(net::Envelope{net::MsgType::kHealthResp, 11, health});
  const auto& hd = std::get<net::HealthResp>(d.body);
  EXPECT_TRUE(hd.degraded);
  EXPECT_TRUE(hd.wal_enabled);
  EXPECT_EQ(hd.groups, 17u);

  net::StatsResp stats;
  stats.submissions = 1;
  stats.rewrites = 2;
  stats.successes = 3;
  stats.failures = 4;
  stats.cancels = 5;
  stats.groups = 6;
  stats.evictions = 7;
  stats.degraded_ops = 8;
  stats.wal_appends = 9;
  stats.compactions = 10;
  const net::Envelope e =
      one_round_trip(net::Envelope{net::MsgType::kStatsResp, 12, stats});
  const auto& se = std::get<net::StatsResp>(e.body);
  EXPECT_EQ(se.submissions, 1u);
  EXPECT_EQ(se.wal_appends, 9u);
  EXPECT_EQ(se.compactions, 10u);

  const net::Envelope f = one_round_trip(net::Envelope{
      net::MsgType::kError, 13,
      net::ErrorResp{net::ErrorCode::kBackpressure, "queue full"}});
  const auto& fe = std::get<net::ErrorResp>(f.body);
  EXPECT_EQ(fe.code, net::ErrorCode::kBackpressure);
  EXPECT_EQ(fe.message, "queue full");
}

TEST(Codec, EmptyErrorMessageRoundTrips) {
  const net::Envelope out = one_round_trip(net::Envelope{
      net::MsgType::kError, 1, net::ErrorResp{net::ErrorCode::kInternal, ""}});
  EXPECT_EQ(std::get<net::ErrorResp>(out.body).message, "");
}

TEST(Codec, MagicIsRequiredFirst) {
  std::vector<char> bytes;
  net::encode_magic(bytes);
  net::encode(bytes, 1, net::HealthReq{});
  net::Decoder good(/*expect_magic=*/true);
  good.feed(bytes.data(), bytes.size());
  auto msg = good.next();
  ASSERT_TRUE(msg.has_value());
  ASSERT_TRUE(msg.value().has_value());
  EXPECT_EQ(msg.value()->type, net::MsgType::kHealth);

  std::vector<char> bad = bytes;
  bad[0] = 'X';
  net::Decoder broken(/*expect_magic=*/true);
  broken.feed(bad.data(), bad.size());
  EXPECT_FALSE(broken.next().has_value());
}

TEST(Codec, TruncatedBodyIsRejected) {
  // A well-framed payload (valid CRC) whose body is shorter than the
  // message type demands.
  std::vector<char> payload;
  payload.push_back(static_cast<char>(net::MsgType::kEstimate));
  for (int i = 0; i < 8; ++i) payload.push_back(0);  // request id
  payload.push_back(0x42);  // 1 byte of a 66-byte job record
  std::vector<char> frame;
  util::append_frame(frame, payload.data(), payload.size());

  net::Decoder decoder(/*expect_magic=*/false);
  decoder.feed(frame.data(), frame.size());
  auto msg = decoder.next();
  ASSERT_FALSE(msg.has_value());
  EXPECT_NE(msg.error().find("truncated"), std::string::npos);
}

TEST(Codec, TrailingBytesAreRejected) {
  std::vector<char> payload;
  payload.push_back(static_cast<char>(net::MsgType::kHealth));
  for (int i = 0; i < 8; ++i) payload.push_back(0);  // request id
  payload.push_back(0x00);  // one byte too many for an empty body
  std::vector<char> frame;
  util::append_frame(frame, payload.data(), payload.size());

  net::Decoder decoder(/*expect_magic=*/false);
  decoder.feed(frame.data(), frame.size());
  auto msg = decoder.next();
  ASSERT_FALSE(msg.has_value());
  EXPECT_NE(msg.error().find("trailing"), std::string::npos);
}

TEST(Codec, UnknownTypeIsRejected) {
  std::vector<char> payload;
  payload.push_back(0x33);  // no such message type
  for (int i = 0; i < 8; ++i) payload.push_back(0);
  std::vector<char> frame;
  util::append_frame(frame, payload.data(), payload.size());

  net::Decoder decoder(/*expect_magic=*/false);
  decoder.feed(frame.data(), frame.size());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Codec, CorruptCrcIsRejectedAndLatches) {
  std::vector<char> bytes;
  net::encode(bytes, 1, net::Ack{true});
  bytes.back() ^= 0x40;  // corrupt the payload under an already-stamped CRC
  net::Decoder decoder(/*expect_magic=*/false);
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(decoder.next().has_value());
  // The stream is poisoned: feeding a pristine frame cannot revive it.
  std::vector<char> fresh;
  net::encode(fresh, 2, net::Ack{true});
  decoder.feed(fresh.data(), fresh.size());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Codec, PipelinedMessagesDecodeAcrossArbitrarySplits) {
  std::vector<char> bytes;
  net::encode_magic(bytes);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    net::encode(bytes, id, net::EstimateReq{make_job(id, 1, 1, 16, 4)});
  }
  // Feed one byte at a time — the cruelest possible framing.
  net::Decoder decoder(/*expect_magic=*/true);
  std::uint64_t expect_id = 1;
  for (const char byte : bytes) {
    decoder.feed(&byte, 1);
    for (;;) {
      auto msg = decoder.next();
      ASSERT_TRUE(msg.has_value()) << msg.error();
      if (!msg.value().has_value()) break;
      EXPECT_EQ(msg.value()->request_id, expect_id++);
    }
  }
  EXPECT_EQ(expect_id, 21u);
}

TEST(Codec, FuzzLiteRandomBytesNeverCrash) {
  // Seeded random byte strings: the decoder must always either want more
  // bytes or fail cleanly — never crash, never loop forever.
  util::Rng rng(0xF0551);
  for (int round = 0; round < 200; ++round) {
    const std::size_t len = 1 + rng() % 512;
    std::vector<char> junk(len);
    for (auto& b : junk) b = static_cast<char>(rng() & 0xFF);

    net::Decoder decoder(round % 2 == 0);
    std::size_t off = 0;
    while (off < junk.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 64, junk.size() - off);
      decoder.feed(junk.data() + off, chunk);
      off += chunk;
      auto msg = decoder.next();
      if (!msg.has_value()) break;  // clean rejection — done with this round
    }
  }
}

TEST(Codec, FuzzLiteCorruptedValidFramesNeverCrash) {
  // Start from real frames, flip one random byte, decode. Every outcome
  // must be clean: rejected, or (if the flip hit a don't-care bit like a
  // float payload under a CRC we also flipped — impossible here) decoded.
  util::Rng rng(0xF0552);
  for (int round = 0; round < 200; ++round) {
    std::vector<char> bytes;
    net::encode(bytes, rng(),
                net::EstimateReq{make_job(rng() % 1000, 1, 1, 16, 4)});
    bytes[rng() % bytes.size()] =
        static_cast<char>(rng() & 0xFF);  // one random stomp
    net::Decoder decoder(/*expect_magic=*/false);
    decoder.feed(bytes.data(), bytes.size());
    auto msg = decoder.next();
    (void)msg;  // any of {ok, need-more, error} is acceptable; crashing is not
  }
}

// --- server over real sockets ------------------------------------------------

TEST(Server, ServesEveryVerbOverUds) {
  const fs::path dir = fresh_dir("verbs");
  svc::Matchd matchd(sync_config());
  matchd.set_ladder(test_ladder());

  net::ServerConfig config;
  config.uds_path = (dir / "matchd.sock").string();
  net::Server server(matchd, config);
  ASSERT_TRUE(server.start());

  net::Client client;
  ASSERT_TRUE(client.connect_uds(config.uds_path).has_value());

  const trace::JobRecord job = make_job(1, 1, 1, 30.0, 10.0);
  auto est = client.estimate(job);
  ASSERT_TRUE(est.has_value()) << est.error();
  EXPECT_DOUBLE_EQ(est.value().granted_mib, 32.0);  // first sight: round up

  auto prev = client.preview(job);
  ASSERT_TRUE(prev.has_value());
  EXPECT_GT(prev.value().granted_mib, 0.0);

  core::Feedback fb;
  fb.success = true;
  fb.granted_mib = est.value().granted_mib;
  fb.used_mib = 10.0;
  fb.resource_failure = false;
  auto ack = client.feedback(job, fb);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack.value().ok);

  auto est2 = client.estimate(job);
  ASSERT_TRUE(est2.has_value());
  auto cancel = client.cancel(job, est2.value().granted_mib);
  ASSERT_TRUE(cancel.has_value());

  auto health = client.health();
  ASSERT_TRUE(health.has_value());
  EXPECT_FALSE(health.value().degraded);
  EXPECT_FALSE(health.value().wal_enabled);
  EXPECT_EQ(health.value().groups, 1u);

  auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats.value().submissions, 2u);
  EXPECT_EQ(stats.value().successes, 1u);
  EXPECT_EQ(stats.value().cancels, 1u);

  auto ckpt = client.checkpoint();  // WAL off: served, but not ok
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_FALSE(ckpt.value().ok);

  server.stop();
  const net::ServerStats sstats = server.stats();
  EXPECT_EQ(sstats.accepts, 1u);
  EXPECT_GE(sstats.requests, 8u);
  EXPECT_EQ(sstats.protocol_errors, 0u);
  fs::remove_all(dir);
}

TEST(Server, MatchVerbRanksLikeLocalCompiledMatcher) {
  const fs::path dir = fresh_dir("match");
  svc::Matchd matchd(sync_config());
  matchd.set_ladder(test_ladder());

  // A machine population with numeric capacity, a few string-typed rows,
  // and one machine-side requirements expression — the shapes the matcher
  // distinguishes.
  util::Rng rng(0x5EED);
  std::vector<match::ClassAd> machines(64);
  for (std::size_t i = 0; i < machines.size(); ++i) {
    machines[i].set("memory", 4.0 * static_cast<double>(1 + rng() % 16));
    machines[i].set("cpus", static_cast<double>(1 + rng() % 8));
    if (i % 7 == 0) machines[i].set("arch", std::string("x86_64"));
    if (i % 11 == 0) {
      ASSERT_TRUE(machines[i].set_expr("requirements", "my.cpus >= 2"));
    }
  }

  net::ServerConfig config;
  config.uds_path = (dir / "matchd.sock").string();
  config.machines = &machines;
  net::Server server(matchd, config);
  ASSERT_TRUE(server.start());
  net::Client client;
  ASSERT_TRUE(client.connect_uds(config.uds_path).has_value());

  net::MatchReq req;
  req.attrs = {{"req_memory", "16"},
               {"cpus", "2"},
               {"requirements", "other.memory >= my.req_memory"},
               {"rank", "other.memory - my.req_memory"}};
  auto resp = client.match(req);
  ASSERT_TRUE(resp.has_value()) << resp.error();

  // The wire answer must be exactly what the compiled matcher produces
  // locally over the same population.
  match::ClassAd request;
  for (const auto& [name, source] : req.attrs) {
    ASSERT_TRUE(request.set_expr(name, source));
  }
  const match::MachineTable table = match::MachineTable::build(machines);
  const std::vector<std::size_t> expected =
      match::rank_matches_compiled(request, table);
  ASSERT_FALSE(expected.empty());
  ASSERT_EQ(resp.value().rows.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(resp.value().rows[i], static_cast<std::uint32_t>(expected[i]))
        << "rank position " << i;
  }

  // An unparsable attribute is a clean kBadRequest, not a dropped
  // connection; the next request on the same socket still works.
  net::MatchReq bad;
  bad.attrs = {{"requirements", "other.memory >="}};
  auto bad_resp = client.match(bad);
  EXPECT_FALSE(bad_resp.has_value());
  auto again = client.match(req);
  ASSERT_TRUE(again.has_value()) << again.error();
  EXPECT_EQ(again.value().rows, resp.value().rows);

  server.stop();
  fs::remove_all(dir);
}

TEST(Server, MatchVerbWithoutPopulationIsBadRequest) {
  const fs::path dir = fresh_dir("match_none");
  svc::Matchd matchd(sync_config());
  matchd.set_ladder(test_ladder());
  net::ServerConfig config;
  config.uds_path = (dir / "matchd.sock").string();
  net::Server server(matchd, config);
  ASSERT_TRUE(server.start());
  net::Client client;
  ASSERT_TRUE(client.connect_uds(config.uds_path).has_value());

  auto resp = client.match(net::MatchReq{});
  EXPECT_FALSE(resp.has_value());
  auto health = client.health();  // connection survives the error answer
  EXPECT_TRUE(health.has_value());

  server.stop();
  fs::remove_all(dir);
}

TEST(Server, NetworkedDecisionsMatchLocalMatchd) {
  const fs::path dir = fresh_dir("equiv");
  const auto jobs = small_workload(300);

  svc::Matchd local(sync_config());
  local.set_ladder(test_ladder());
  std::vector<MiB> expected;
  expected.reserve(jobs.size());
  for (const auto& job : jobs) expected.push_back(drive_job(local, job));

  svc::Matchd remote(sync_config());
  remote.set_ladder(test_ladder());
  net::ServerConfig config;
  config.uds_path = (dir / "matchd.sock").string();
  net::Server server(remote, config);
  ASSERT_TRUE(server.start());
  net::Client client;
  ASSERT_TRUE(client.connect_uds(config.uds_path).has_value());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto est = client.estimate(jobs[i]);
    ASSERT_TRUE(est.has_value()) << est.error();
    ASSERT_EQ(est.value().granted_mib, expected[i]) << "job " << i;
    core::Feedback fb;
    fb.granted_mib = est.value().granted_mib;
    fb.success = jobs[i].used_mem_mib <= est.value().granted_mib;
    fb.used_mib = jobs[i].used_mem_mib;
    fb.resource_failure = !fb.success;
    ASSERT_TRUE(client.feedback(jobs[i], fb).has_value());
  }
  server.stop();
  fs::remove_all(dir);
}

TEST(Server, AsyncWorkersServeIdenticalDecisions) {
  const fs::path dir = fresh_dir("async");
  const auto jobs = small_workload(200);

  svc::Matchd local(sync_config());
  local.set_ladder(test_ladder());
  std::vector<MiB> expected;
  for (const auto& job : jobs) expected.push_back(drive_job(local, job));

  svc::MatchdConfig async_cfg = sync_config();
  async_cfg.workers = 2;
  svc::Matchd remote(async_cfg);
  remote.set_ladder(test_ladder());
  net::ServerConfig config;
  config.uds_path = (dir / "matchd.sock").string();
  net::Server server(remote, config);
  ASSERT_TRUE(server.start());
  net::Client client;
  ASSERT_TRUE(client.connect_uds(config.uds_path).has_value());

  // A serial client drive is deterministic even through the admission
  // queue — the matchd determinism contract, now over a socket.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto est = client.estimate(jobs[i]);
    ASSERT_TRUE(est.has_value()) << est.error();
    ASSERT_EQ(est.value().granted_mib, expected[i]) << "job " << i;
    core::Feedback fb;
    fb.granted_mib = est.value().granted_mib;
    fb.success = jobs[i].used_mem_mib <= est.value().granted_mib;
    fb.used_mib = jobs[i].used_mem_mib;
    fb.resource_failure = !fb.success;
    ASSERT_TRUE(client.feedback(jobs[i], fb).has_value());
  }
  server.stop();
  fs::remove_all(dir);
}

TEST(Server, FullAdmissionQueueAnswersBackpressure) {
  const fs::path dir = fresh_dir("backpressure");
  util::FaultInjector faults(0xFA17);
  faults.arm(util::FaultSite::kQueueAdmit,
             util::FaultSpec{1.0, UINT32_MAX});  // every admit "full"

  svc::MatchdConfig config = sync_config();
  config.workers = 2;
  config.durability.faults = &faults;
  svc::Matchd matchd(config);
  matchd.set_ladder(test_ladder());

  net::ServerConfig server_cfg;
  server_cfg.uds_path = (dir / "matchd.sock").string();
  net::Server server(matchd, server_cfg);
  ASSERT_TRUE(server.start());
  net::Client client;
  ASSERT_TRUE(client.connect_uds(server_cfg.uds_path).has_value());

  auto est = client.estimate(make_job(1, 1, 1, 16, 4));
  ASSERT_FALSE(est.has_value());  // ErrorResp{kBackpressure} -> client error
  EXPECT_NE(est.error().find("server error 2"), std::string::npos)
      << est.error();

  server.stop();
  EXPECT_GE(server.stats().backpressure_rejects, 1u);
  fs::remove_all(dir);
}

/// Bare-socket helper: connect to a UDS path and write raw bytes.
int raw_uds_send(const std::string& path, const std::vector<char>& bytes) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  return fd;
}

TEST(Server, GarbageBytesCloseTheConnection) {
  const fs::path dir = fresh_dir("garbage");
  svc::Matchd matchd(sync_config());
  matchd.set_ladder(test_ladder());
  net::ServerConfig config;
  config.uds_path = (dir / "matchd.sock").string();
  net::Server server(matchd, config);
  ASSERT_TRUE(server.start());

  net::Client healthy;
  ASSERT_TRUE(healthy.connect_uds(config.uds_path).has_value());
  ASSERT_TRUE(healthy.health().has_value());

  // Vandal 1: wrong magic entirely.
  std::vector<char> junk(64, 'X');
  const int fd1 = raw_uds_send(config.uds_path, junk);
  ASSERT_GE(fd1, 0);

  // Vandal 2: valid magic, then a frame with a stomped CRC.
  std::vector<char> corrupt;
  net::encode_magic(corrupt);
  net::encode(corrupt, 1, net::HealthReq{});
  corrupt.back() ^= 0x01;
  const int fd2 = raw_uds_send(config.uds_path, corrupt);
  ASSERT_GE(fd2, 0);

  // Both vandals must be counted and dropped; the loop reaps them on read.
  for (int i = 0; i < 200 && server.stats().protocol_errors < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.stats().protocol_errors, 2u);
  ::close(fd1);
  ::close(fd2);

  // The healthy connection is unaffected throughout.
  ASSERT_TRUE(healthy.stats().has_value());
  server.stop();
  fs::remove_all(dir);
}

TEST(Server, IdleConnectionsAreReaped) {
  const fs::path dir = fresh_dir("idle");
  svc::Matchd matchd(sync_config());
  matchd.set_ladder(test_ladder());
  net::ServerConfig config;
  config.uds_path = (dir / "matchd.sock").string();
  config.idle_timeout = std::chrono::milliseconds(50);
  net::Server server(matchd, config);
  ASSERT_TRUE(server.start());

  net::Client client;
  ASSERT_TRUE(client.connect_uds(config.uds_path).has_value());
  ASSERT_TRUE(client.health().has_value());

  // Wait out the idle timeout; the loop reaps on its next tick.
  for (int i = 0; i < 100 && server.stats().idle_reaped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().idle_reaped, 1u);
  EXPECT_EQ(server.stats().connections, 0u);
  server.stop();
  fs::remove_all(dir);
}

TEST(Server, ServesOverTcpEphemeralPort) {
  svc::Matchd matchd(sync_config());
  matchd.set_ladder(test_ladder());
  net::ServerConfig config;
  config.tcp = true;
  config.tcp_port = 0;  // ephemeral
  net::Server server(matchd, config);
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.tcp_port(), 0);

  net::Client client;
  ASSERT_TRUE(
      client.connect_tcp("127.0.0.1", server.tcp_port()).has_value());
  auto est = client.estimate(make_job(1, 1, 1, 30.0, 10.0));
  ASSERT_TRUE(est.has_value()) << est.error();
  EXPECT_DOUBLE_EQ(est.value().granted_mib, 32.0);
  server.stop();
}

TEST(Server, ExportsNetMetrics) {
  const fs::path dir = fresh_dir("metrics");
  obs::Registry registry;
  svc::Matchd matchd(sync_config());
  matchd.set_ladder(test_ladder());
  net::ServerConfig config;
  config.uds_path = (dir / "matchd.sock").string();
  config.metrics = &registry;
  {
    net::Server server(matchd, config);
    ASSERT_TRUE(server.start());
    net::Client client;
    ASSERT_TRUE(client.connect_uds(config.uds_path).has_value());
    ASSERT_TRUE(client.estimate(make_job(1, 1, 1, 16, 4)).has_value());
    server.stop();

    const obs::MetricsSnapshot snap = registry.snapshot();
    const auto* accepts = snap.find("resmatch_net_accepts_total");
    ASSERT_NE(accepts, nullptr);
    EXPECT_GE(accepts->value, 1.0);
    const auto* reqs = snap.find("resmatch_net_requests_total",
                                 {{"type", "estimate"}});
    ASSERT_NE(reqs, nullptr);
    EXPECT_GE(reqs->value, 1.0);
    const auto* lat = snap.find("resmatch_net_request_latency_seconds");
    ASSERT_NE(lat, nullptr);
    EXPECT_GE(lat->histogram.count, 1u);
    EXPECT_NE(snap.find("resmatch_net_connections"), nullptr);
    EXPECT_NE(snap.find("resmatch_net_bytes_read_total"), nullptr);
  }
  // Destruction removes the providers so the registry outlives the server.
  EXPECT_EQ(registry.snapshot().find("resmatch_net_accepts_total"), nullptr);
  fs::remove_all(dir);
}

// --- router ------------------------------------------------------------------

net::RouterConfig router_config(std::vector<std::string> uds_paths,
                                obs::Registry* metrics = nullptr) {
  net::RouterConfig config;
  for (auto& path : uds_paths) {
    net::ShardEndpoint ep;
    ep.uds_path = std::move(path);
    config.shards.push_back(std::move(ep));
  }
  config.ladder = test_ladder();
  config.retry.max_attempts = 2;
  config.retry.initial_backoff = std::chrono::microseconds(100);
  config.retry.max_backoff = std::chrono::microseconds(1000);
  config.metrics = metrics;
  return config;
}

TEST(Router, RingIsBalancedAndDeterministic) {
  net::Router a(router_config({"a", "b", "c", "d"}));
  net::Router b(router_config({"a", "b", "c", "d"}));
  std::vector<std::size_t> hits(4, 0);
  for (std::uint64_t key = 0; key < 10000; ++key) {
    const std::size_t shard = a.shard_of_key(util::mix64(key));
    EXPECT_EQ(shard, b.shard_of_key(util::mix64(key)));  // pure function
    ASSERT_LT(shard, 4u);
    ++hits[shard];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    // With 64 vnodes/shard, balance is good; assert a loose band so the
    // test pins the property, not the constant.
    EXPECT_GT(hits[s], 10000u / 16) << "shard " << s << " starved";
    EXPECT_LT(hits[s], 10000u / 2) << "shard " << s << " overloaded";
  }
}

TEST(Router, AddingAShardMovesOnlyItsSliceOfKeys) {
  net::Router three(router_config({"a", "b", "c"}));
  net::Router four(router_config({"a", "b", "c", "d"}));
  std::size_t moved = 0;
  const std::size_t keys = 10000;
  for (std::uint64_t k = 0; k < keys; ++k) {
    const std::uint64_t key = util::mix64(k ^ 0xABCDEF);
    const std::size_t before = three.shard_of_key(key);
    const std::size_t after = four.shard_of_key(key);
    if (before != after) {
      ++moved;
      // Every moved key must have moved TO the new shard — consistent
      // hashing's defining property.
      EXPECT_EQ(after, 3u) << "key rerouted between surviving shards";
    }
  }
  // ~1/4 of the keyspace should move; allow a generous band.
  EXPECT_GT(moved, keys / 10);
  EXPECT_LT(moved, keys / 2);
}

TEST(Router, RoutesAcrossShardsWithDecisionEquivalence) {
  const fs::path dir = fresh_dir("router");
  const auto jobs = small_workload(300);

  svc::Matchd local(sync_config());
  local.set_ladder(test_ladder());
  std::vector<MiB> expected;
  for (const auto& job : jobs) expected.push_back(drive_job(local, job));

  svc::Matchd shard0(sync_config());
  svc::Matchd shard1(sync_config());
  shard0.set_ladder(test_ladder());
  shard1.set_ladder(test_ladder());
  net::ServerConfig s0;
  s0.uds_path = (dir / "shard0.sock").string();
  net::ServerConfig s1;
  s1.uds_path = (dir / "shard1.sock").string();
  net::Server server0(shard0, s0);
  net::Server server1(shard1, s1);
  ASSERT_TRUE(server0.start());
  ASSERT_TRUE(server1.start());

  net::Router router(router_config({s0.uds_path, s1.uds_path}));
  ASSERT_TRUE(router.connect().has_value());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(drive_job(router, jobs[i]), expected[i]) << "job " << i;
  }

  // Both shards must have actually served traffic (the workload has
  // several groups; the ring spreads them).
  const net::StatsResp total = router.aggregate_stats();
  EXPECT_EQ(total.submissions, jobs.size());
  EXPECT_GT(shard0.stats().submissions, 0u);
  EXPECT_GT(shard1.stats().submissions, 0u);

  server0.stop();
  server1.stop();
  fs::remove_all(dir);
}

TEST(Router, DegradesToPassThroughAndHealsViaProbe) {
  const fs::path dir = fresh_dir("degrade");
  const std::string sock = (dir / "shard.sock").string();
  obs::Registry registry;

  net::Router router(router_config({sock}, &registry));
  EXPECT_FALSE(router.connect().has_value());  // nobody listening yet
  EXPECT_TRUE(router.shard_degraded(0));

  // Degraded pass-through: rounded raw request, never lowered; feedback
  // silently dropped. Exactly a degraded Matchd's contract.
  const trace::JobRecord job = make_job(1, 1, 1, 30.0, 10.0);
  const svc::MatchDecision decision = router.submit(job);
  EXPECT_DOUBLE_EQ(decision.granted_mib, 32.0);
  EXPECT_FALSE(decision.lowered);
  core::Feedback fb;
  fb.granted_mib = decision.granted_mib;
  fb.success = true;
  router.feedback(job, fb);
  EXPECT_GE(router.stats().degraded_ops, 2u);

  // Bring the shard up; the next operation probes and heals.
  svc::Matchd matchd(sync_config());
  matchd.set_ladder(test_ladder());
  net::ServerConfig config;
  config.uds_path = sock;
  net::Server server(matchd, config);
  ASSERT_TRUE(server.start());

  const svc::MatchDecision healed = router.submit(job);
  EXPECT_FALSE(router.shard_degraded(0));
  EXPECT_DOUBLE_EQ(healed.granted_mib, 32.0);  // first sight on this shard
  EXPECT_EQ(matchd.stats().submissions, 1u);   // served remotely now

  const obs::MetricsSnapshot snap = registry.snapshot();
  const auto* healthy = snap.find("resmatch_router_shard_healthy",
                                  {{"shard", "0"}});
  ASSERT_NE(healthy, nullptr);
  EXPECT_DOUBLE_EQ(healthy->value, 1.0);
  const auto* degraded_ops = snap.find("resmatch_router_degraded_ops_total");
  ASSERT_NE(degraded_ops, nullptr);
  EXPECT_GE(degraded_ops->value, 2.0);

  server.stop();
  fs::remove_all(dir);
}

TEST(Router, SurvivesShardRestartMidStream) {
  const fs::path dir = fresh_dir("restart");
  const std::string sock = (dir / "shard.sock").string();
  const fs::path wal_dir = dir / "wal";

  auto make_matchd = [&] {
    svc::MatchdConfig config = sync_config();
    config.durability.wal_dir = wal_dir.string();
    return std::make_unique<svc::Matchd>(config);
  };

  auto matchd = make_matchd();
  matchd->set_ladder(test_ladder());
  ASSERT_TRUE(matchd->recover().has_value());
  net::ServerConfig server_cfg;
  server_cfg.uds_path = sock;
  auto server = std::make_unique<net::Server>(*matchd, server_cfg);
  ASSERT_TRUE(server->start());

  auto config = router_config({sock});
  config.retry.max_attempts = 20;  // ride out the restart window
  config.retry.initial_backoff = std::chrono::microseconds(500);
  config.retry.max_backoff = std::chrono::microseconds(20'000);
  net::Router router(config);
  ASSERT_TRUE(router.connect().has_value());

  const auto jobs = small_workload(60);
  std::vector<MiB> grants;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i == 30) {
      // Tear the shard down (flushing WAL state) and restart it — the
      // matchd equivalent of a crash + WAL recovery, in-process.
      server->stop();
      server.reset();
      matchd.reset();
      matchd = make_matchd();
      matchd->set_ladder(test_ladder());
      ASSERT_TRUE(matchd->recover().has_value());
      server = std::make_unique<net::Server>(*matchd, server_cfg);
      ASSERT_TRUE(server->start());
    }
    grants.push_back(drive_job(router, jobs[i]));
  }

  // The restarted shard recovered its state from the WAL, so decisions
  // match an uninterrupted single-process run byte for byte.
  svc::Matchd reference(sync_config());
  reference.set_ladder(test_ladder());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(drive_job(reference, jobs[i]), grants[i]) << "job " << i;
  }
  EXPECT_EQ(router.stats().degraded_ops, 0u);

  server->stop();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace resmatch
