// Property tests over ALL estimators (parameterized): invariants that
// must hold for any member of the Table 1 taxonomy, exercised on
// randomized job streams.
#include <gtest/gtest.h>

#include <cmath>

#include "core/factory.hpp"
#include "util/rng.hpp"

namespace resmatch::core {
namespace {

class EstimatorProperty : public ::testing::TestWithParam<std::string> {
 protected:
  static CapacityLadder test_ladder() {
    return CapacityLadder({1, 2, 4, 8, 12, 16, 24, 32});
  }

  /// A deterministic random job stream: a handful of job classes, each
  /// with fixed request and usage, submitted in shuffled order.
  static std::vector<trace::JobRecord> job_stream(std::uint64_t seed,
                                                  std::size_t count) {
    util::Rng rng(seed);
    struct Class {
      UserId user;
      AppId app;
      MiB request;
      MiB used;
    };
    std::vector<Class> classes;
    const std::vector<double> requests = {32, 24, 16, 8, 4};
    for (int c = 0; c < 12; ++c) {
      const double req =
          requests[static_cast<std::size_t>(rng.uniform_int(0, 4))];
      classes.push_back({static_cast<UserId>(rng.uniform_int(1, 5)),
                         static_cast<AppId>(c), req,
                         rng.uniform(0.2, 1.0) * req});
    }
    std::vector<trace::JobRecord> jobs;
    for (std::size_t i = 0; i < count; ++i) {
      const auto& cls =
          classes[static_cast<std::size_t>(rng.uniform_int(0, 11))];
      trace::JobRecord j;
      j.id = i + 1;
      j.user = cls.user;
      j.app = cls.app;
      j.requested_mem_mib = cls.request;
      j.used_mem_mib = cls.used;
      j.nodes = 8;
      j.runtime = 100;
      j.requested_time = 150;
      jobs.push_back(j);
    }
    return jobs;
  }

  /// Serial drive with ground-truth feedback; returns grant sequence.
  static std::vector<MiB> drive(Estimator& est,
                                const std::vector<trace::JobRecord>& jobs,
                                bool explicit_feedback) {
    std::vector<MiB> grants;
    grants.reserve(jobs.size());
    for (const auto& job : jobs) {
      const MiB grant = est.estimate(job, {});
      grants.push_back(grant);
      Feedback fb;
      fb.success = grant + 1e-9 >= job.used_mem_mib;
      fb.granted_mib = grant;
      if (explicit_feedback) {
        fb.used_mib = job.used_mem_mib;
        fb.resource_failure = !fb.success;
      }
      est.feedback(job, fb);
    }
    return grants;
  }
};

TEST_P(EstimatorProperty, GrantNeverExceedsRoundedRequest) {
  auto est = make_estimator(GetParam());
  const auto ladder = test_ladder();
  est->set_ladder(ladder);
  const auto jobs = job_stream(101, 600);
  const bool explicit_fb = requires_explicit_feedback(GetParam());
  std::size_t i = 0;
  for (const auto& job : jobs) {
    const MiB grant = est->estimate(job, {});
    ASSERT_GT(grant, 0.0) << GetParam() << " job " << i;
    ASSERT_LE(grant, ladder.round_up(job.requested_mem_mib) + 1e-9)
        << GetParam() << " job " << i;
    Feedback fb;
    fb.success = grant + 1e-9 >= job.used_mem_mib;
    fb.granted_mib = grant;
    if (explicit_fb) fb.used_mib = job.used_mem_mib;
    est->feedback(job, fb);
    ++i;
  }
}

TEST_P(EstimatorProperty, DeterministicAcrossInstances) {
  auto a = make_estimator(GetParam());
  auto b = make_estimator(GetParam());
  a->set_ladder(test_ladder());
  b->set_ladder(test_ladder());
  const auto jobs = job_stream(202, 400);
  const bool explicit_fb = requires_explicit_feedback(GetParam());
  const auto ga = drive(*a, jobs, explicit_fb);
  const auto gb = drive(*b, jobs, explicit_fb);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    ASSERT_DOUBLE_EQ(ga[i], gb[i]) << GetParam() << " at " << i;
  }
}

TEST_P(EstimatorProperty, PreviewIsSideEffectFree) {
  auto est = make_estimator(GetParam());
  est->set_ladder(test_ladder());
  const auto jobs = job_stream(303, 200);
  const bool explicit_fb = requires_explicit_feedback(GetParam());
  // Drive a while so internal state exists.
  (void)drive(*est, jobs, explicit_fb);

  // Hammering preview must not change what estimate returns next.
  const auto& probe_job = jobs.front();
  const MiB before = est->preview(probe_job, {});
  for (int i = 0; i < 50; ++i) (void)est->preview(probe_job, {});
  EXPECT_DOUBLE_EQ(est->preview(probe_job, {}), before) << GetParam();
}

TEST_P(EstimatorProperty, SerialConvergenceStopsFailing) {
  // With constant per-class usage and serial feedback, every estimator
  // must stop causing resource failures eventually (the RL agent's floor
  // exploration rate is the one principled exception, checked loosely).
  auto est = make_estimator(GetParam());
  est->set_ladder(test_ladder());
  const auto jobs = job_stream(404, 1200);
  const bool explicit_fb = requires_explicit_feedback(GetParam());
  std::size_t late_failures = 0;
  std::size_t i = 0;
  for (const auto& job : jobs) {
    const MiB grant = est->estimate(job, {});
    const bool success = grant + 1e-9 >= job.used_mem_mib;
    if (!success && i >= jobs.size() / 2) ++late_failures;
    Feedback fb;
    fb.success = success;
    fb.granted_mib = grant;
    if (explicit_fb) {
      fb.used_mib = job.used_mem_mib;
      fb.resource_failure = !success;
    }
    est->feedback(job, fb);
    ++i;
  }
  const double late_rate =
      static_cast<double>(late_failures) / (jobs.size() / 2.0);
  if (GetParam() == "reinforcement-learning") {
    EXPECT_LT(late_rate, 0.10) << "exploration floor";
  } else {
    EXPECT_LT(late_rate, 0.01) << GetParam();
  }
}

TEST_P(EstimatorProperty, FeedbackForUnknownJobIsHarmless) {
  auto est = make_estimator(GetParam());
  est->set_ladder(test_ladder());
  trace::JobRecord ghost;
  ghost.id = 999999;
  ghost.user = 77;
  ghost.app = 77;
  ghost.requested_mem_mib = 32;
  ghost.used_mem_mib = 8;
  ghost.nodes = 1;
  ghost.runtime = 10;
  Feedback fb;
  fb.success = true;
  fb.granted_mib = 32.0;
  est->feedback(ghost, fb);  // must not crash or throw
  EXPECT_GT(est->estimate(ghost, {}), 0.0);
}

TEST_P(EstimatorProperty, CancelAfterEstimateKeepsEstimatorUsable) {
  auto est = make_estimator(GetParam());
  est->set_ladder(test_ladder());
  const auto jobs = job_stream(505, 50);
  for (const auto& job : jobs) {
    const MiB grant = est->estimate(job, {});
    est->cancel(job, grant);
  }
  // After a run of cancelled dispatches, normal operation still works.
  auto verify_jobs = job_stream(505, 100);
  const auto grants = drive(*est, verify_jobs, false);
  for (const MiB g : grants) ASSERT_GT(g, 0.0);
}

TEST_P(EstimatorProperty, WorksWithoutLadder) {
  // Standalone mode (no cluster known): estimates must still be positive
  // and bounded by the raw request.
  auto est = make_estimator(GetParam());
  const auto jobs = job_stream(606, 300);
  const bool explicit_fb = requires_explicit_feedback(GetParam());
  for (const auto& job : jobs) {
    const MiB grant = est->estimate(job, {});
    ASSERT_GT(grant, 0.0);
    ASSERT_LE(grant, job.requested_mem_mib + 1e-9) << GetParam();
    Feedback fb;
    fb.success = grant + 1e-9 >= job.used_mem_mib;
    fb.granted_mib = grant;
    if (explicit_fb) fb.used_mib = job.used_mem_mib;
    est->feedback(job, fb);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, EstimatorProperty,
                         ::testing::ValuesIn(estimator_names()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace resmatch::core
