// Multi-resource engine equivalence gates.
//
// The dims=1 contract: run the multi-resource engine over a flat-profile
// wrap (trace::scenario_from) of any single-resource workload and it must
// make EXACTLY the decisions of sim::simulate() — same RNG draw sequence,
// same queue mechanics, same aggregates, byte for byte. Combined with
// tests/scale_equiv_test (merge engine == heap engine == streamed), this
// anchors the whole multi-resource layer to the original simulator.
//
// The multi-dimension tests then pin what the vector path ADDS: kills
// attributed to the culprit dimension only, and footprint crossings that
// time kills deterministically instead of by the paper's uniform draw.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/factory.hpp"
#include "core/multi_resource.hpp"
#include "sched/factory.hpp"
#include "sim/mr_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim/timeseries.hpp"
#include "trace/cm5_model.hpp"
#include "trace/scenario.hpp"
#include "trace/transforms.hpp"

namespace resmatch {
namespace {

trace::Workload golden_workload() {
  trace::Workload w = trace::generate_cm5_small(11, 1200);
  w = trace::drop_wide_jobs(std::move(w), 256);
  w = trace::scale_to_load(std::move(w), 256, 0.9);
  return trace::sort_by_submit(std::move(w));
}

sim::ClusterSpec golden_cluster() { return sim::cm5_heterogeneous(24.0, 128); }

sim::SimulationConfig golden_config(sim::TimeSeries* ts) {
  sim::SimulationConfig cfg;
  cfg.seed = 7;
  cfg.explicit_feedback = true;
  cfg.availability = {{2000.0, 24.0, -40}, {6000.0, 32.0, 24},
                      {9000.0, 24.0, 40}};
  cfg.timeseries = ts;
  return cfg;
}

sim::SimulationResult run_scalar(const trace::Workload& w,
                                 const std::string& policy,
                                 const std::string& estimator,
                                 sim::SimulationConfig cfg) {
  const auto est = core::make_estimator(estimator);
  const auto pol = sched::make_policy(policy);
  return sim::simulate(w, golden_cluster(), *est, *pol, cfg);
}

sim::MrSimulationResult run_mr_dims1(const trace::ScenarioWorkload& scenario,
                                     const std::string& policy,
                                     const std::string& estimator,
                                     sim::SimulationConfig cfg) {
  core::VectorEstimatorConfig est_cfg;
  est_cfg.dims = 1;
  est_cfg.estimator = estimator;
  core::VectorEstimator est(est_cfg);
  const auto pol = sched::make_policy(policy);
  sim::MrSimulationConfig mr_cfg;
  mr_cfg.base = cfg;
  mr_cfg.dims = 1;
  return sim::simulate_mr(scenario, golden_cluster(), est, *pol, mr_cfg);
}

void expect_bitwise_equal(const sim::SimulationResult& a,
                          const sim::SimulationResult& b,
                          const sim::TimeSeries& ts_a,
                          const sim::TimeSeries& ts_b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.resource_failures, b.resource_failures);
  EXPECT_EQ(a.intrinsic_failed, b.intrinsic_failed);
  EXPECT_EQ(a.dropped_unschedulable, b.dropped_unschedulable);
  EXPECT_EQ(a.dropped_attempt_cap, b.dropped_attempt_cap);
  EXPECT_EQ(a.lowered_starts, b.lowered_starts);
  EXPECT_EQ(a.benefiting_jobs, b.benefiting_jobs);
  EXPECT_EQ(a.benefiting_nodes, b.benefiting_nodes);
  // Exact double comparison is deliberate: both engines run in this
  // process, so identical decisions imply identical arithmetic.
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.wasted_fraction, b.wasted_fraction);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.mean_bounded_slowdown, b.mean_bounded_slowdown);
  EXPECT_EQ(a.p95_slowdown, b.p95_slowdown);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.throughput_per_hour, b.throughput_per_hour);
  EXPECT_EQ(a.granted_mib_nodes, b.granted_mib_nodes);
  EXPECT_EQ(a.used_mib_nodes, b.used_mib_nodes);
  ASSERT_EQ(a.pool_utilization.size(), b.pool_utilization.size());
  for (std::size_t i = 0; i < a.pool_utilization.size(); ++i) {
    EXPECT_EQ(a.pool_utilization[i].capacity, b.pool_utilization[i].capacity);
    EXPECT_EQ(a.pool_utilization[i].busy_fraction,
              b.pool_utilization[i].busy_fraction);
  }
  ASSERT_EQ(ts_a.points().size(), ts_b.points().size());
  for (std::size_t i = 0; i < ts_a.points().size(); ++i) {
    EXPECT_EQ(ts_a.points()[i].time, ts_b.points()[i].time);
    EXPECT_EQ(ts_a.points()[i].busy_fraction, ts_b.points()[i].busy_fraction);
    EXPECT_EQ(ts_a.points()[i].queue_length, ts_b.points()[i].queue_length);
    EXPECT_EQ(ts_a.points()[i].running_jobs, ts_b.points()[i].running_jobs);
  }
}

constexpr const char* kPolicies[] = {"fcfs", "sjf", "easy-backfill"};
constexpr const char* kEstimators[] = {"none", "successive-approximation",
                                       "last-instance", "quantile"};

TEST(MrEquivalence, DimsOneBitIdenticalToScalarEngine) {
  const trace::Workload w = golden_workload();
  const trace::ScenarioWorkload scenario = trace::scenario_from(w);
  for (const char* policy : kPolicies) {
    for (const char* estimator : kEstimators) {
      SCOPED_TRACE(std::string(policy) + " / " + estimator);
      sim::TimeSeries ts_scalar(50.0), ts_mr(50.0);
      const auto scalar =
          run_scalar(w, policy, estimator, golden_config(&ts_scalar));
      const auto mr =
          run_mr_dims1(scenario, policy, estimator, golden_config(&ts_mr));
      expect_bitwise_equal(scalar, mr.base, ts_scalar, ts_mr);
      // A dims=1 run can only ever blame memory, and flat profiles never
      // produce deterministic mid-job crossings.
      EXPECT_EQ(mr.kills_by_dim[kDimMem], mr.base.resource_failures);
      EXPECT_EQ(mr.kills_by_dim[kDimCpu], 0u);
      EXPECT_EQ(mr.kills_by_dim[kDimGpu], 0u);
      EXPECT_EQ(mr.midjob_kills, 0u);
    }
  }
}

// --- multi-dimension behaviour --------------------------------------------

trace::ScenarioWorkload two_job_scenario(trace::FootprintShape second_shape) {
  // Two jobs in one similarity group (same user/app/request). The first
  // teaches last-instance a tiny GPU usage; the second's real GPU demand
  // then overruns the lowered grant — the only overrunning dimension.
  trace::ScenarioWorkload scenario;
  scenario.dims = 3;
  scenario.base.name = "two-job";

  trace::JobRecord job;
  job.id = 1;
  job.submit = 0.0;
  job.runtime = 100.0;
  job.requested_time = 100.0;
  job.nodes = 2;
  job.requested_mem_mib = 16.0;
  job.used_mem_mib = 4.0;
  job.user = 1;
  job.app = 1;
  scenario.base.jobs.push_back(job);
  trace::MrJobInfo first;
  first.requested = ResourceVector(16.0, 2.0, 4.0);
  first.used_peak = ResourceVector(4.0, 2.0, 1.0);
  scenario.mr.push_back(first);

  job.id = 2;
  job.submit = 500.0;
  job.used_mem_mib = 8.0;
  scenario.base.jobs.push_back(job);
  trace::MrJobInfo second;
  second.requested = ResourceVector(16.0, 2.0, 4.0);
  second.used_peak = ResourceVector(8.0, 2.0, 3.0);
  second.profile.shape = second_shape;
  second.profile.start_frac = 0.25;
  scenario.mr.push_back(second);
  return scenario;
}

sim::ClusterSpec two_pool_gpu_cluster() {
  return {{16.0, 4, 4.0, 1.0}, {32.0, 4, 8.0, 4.0}};
}

sim::MrSimulationResult run_two_job(trace::FootprintShape second_shape) {
  const auto scenario = two_job_scenario(second_shape);
  core::VectorEstimatorConfig est_cfg;
  est_cfg.dims = 3;
  est_cfg.estimator = "last-instance";
  core::VectorEstimator est(est_cfg);
  const auto pol = sched::make_policy("fcfs");
  sim::MrSimulationConfig cfg;
  cfg.dims = 3;
  cfg.base.seed = 3;
  cfg.base.explicit_feedback = true;
  return sim::simulate_mr(scenario, two_pool_gpu_cluster(), est, *pol, cfg);
}

TEST(MrEquivalence, KillIsAttributedToTheCulpritDimensionOnly) {
  const auto result = run_two_job(trace::FootprintShape::kFlat);
  EXPECT_EQ(result.base.submitted, 2u);
  EXPECT_EQ(result.base.completed, 2u);
  EXPECT_EQ(result.base.resource_failures, 1u);
  EXPECT_EQ(result.kills_by_dim[kDimMem], 0u);
  EXPECT_EQ(result.kills_by_dim[kDimCpu], 0u);
  EXPECT_EQ(result.kills_by_dim[kDimGpu], 1u);
  // Flat overrun: the kill time is the paper's uniform draw, not a
  // footprint crossing.
  EXPECT_EQ(result.midjob_kills, 0u);
}

TEST(MrEquivalence, FootprintCrossingTimesTheKillDeterministically) {
  const auto result = run_two_job(trace::FootprintShape::kRamp);
  // Every kill is timed by the ramp crossing, attributed to the GPU, and
  // early: grant 1 of peak 3 crosses at x = (1/3 - 1/4)/(3/4) ≈ 0.11 of
  // the runtime.
  EXPECT_GT(result.base.resource_failures, 0u);
  EXPECT_EQ(result.midjob_kills, result.base.resource_failures);
  EXPECT_EQ(result.kills_by_dim[kDimGpu], result.base.resource_failures);
  EXPECT_EQ(result.kills_by_dim[kDimMem], 0u);
  EXPECT_GT(result.mean_kill_progress, 0.0);
  EXPECT_LT(result.mean_kill_progress, 0.5);
  // The early-kill feedback difference, end to end: under a FLAT profile
  // the monitor reports the full peak at the kill, last-instance learns
  // the truth, and the retry succeeds (see the test above). Under the
  // ramp the monitor only ever sees usage-so-far ≈ the grant, the
  // estimator keeps re-granting it, and the job burns to the attempt cap
  // without completing.
  EXPECT_EQ(result.base.completed, 1u);
  EXPECT_EQ(result.base.dropped_attempt_cap, 1u);
}

TEST(MrEquivalence, RejectsUnsupportedConfig) {
  const auto scenario = two_job_scenario(trace::FootprintShape::kFlat);
  core::VectorEstimatorConfig est_cfg;
  est_cfg.dims = 3;
  core::VectorEstimator est(est_cfg);
  const auto pol = sched::make_policy("fcfs");

  sim::MrSimulationConfig heap;
  heap.dims = 3;
  heap.base.heap_queue = true;
  EXPECT_THROW((void)sim::simulate_mr(scenario, two_pool_gpu_cluster(), est,
                                      *pol, heap),
               std::invalid_argument);

  sim::MrSimulationConfig shards;
  shards.dims = 3;
  shards.base.shards = 2;
  EXPECT_THROW((void)sim::simulate_mr(scenario, two_pool_gpu_cluster(), est,
                                      *pol, shards),
               std::invalid_argument);

  // dims beyond what the scenario annotates.
  trace::ScenarioWorkload narrow = trace::scenario_from(golden_workload());
  sim::MrSimulationConfig wide;
  wide.dims = 3;
  EXPECT_THROW((void)sim::simulate_mr(narrow, two_pool_gpu_cluster(), est,
                                      *pol, wide),
               std::invalid_argument);

  // Estimator dims must match config.dims.
  core::VectorEstimatorConfig one;
  one.dims = 1;
  core::VectorEstimator narrow_est(one);
  sim::MrSimulationConfig three;
  three.dims = 3;
  EXPECT_THROW((void)sim::simulate_mr(scenario, two_pool_gpu_cluster(),
                                      narrow_est, *pol, three),
               std::invalid_argument);
}

}  // namespace
}  // namespace resmatch
