// Property tests over the full (estimator x policy) grid: accounting and
// metric invariants that must hold for ANY composition, on randomized
// workloads — the simulator-level contract behind the paper's claim that
// estimation is independent of the scheduling policy.
#include <gtest/gtest.h>

#include <tuple>

#include "core/factory.hpp"
#include "exp/experiment.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/transforms.hpp"

namespace resmatch::sim {
namespace {

using GridParam = std::tuple<std::string, std::string>;  // estimator, policy

class SimulatorGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  static const trace::Workload& workload() {
    static const trace::Workload w = [] {
      trace::Workload base = trace::generate_cm5_small(1234, 2500);
      base = trace::drop_wide_jobs(std::move(base), 64);
      return trace::sort_by_submit(
          trace::scale_to_load(std::move(base), 96, 1.0));
    }();
    return w;
  }

  static ClusterSpec cluster() {
    return {{32.0, 48}, {24.0, 24}, {8.0, 24}};
  }

  SimulationResult run(std::uint64_t seed = 7) const {
    const auto& [estimator_name, policy_name] = GetParam();
    auto est = core::make_estimator(estimator_name);
    auto pol = sched::make_policy(policy_name);
    SimulationConfig cfg;
    cfg.seed = seed;
    cfg.explicit_feedback = core::requires_explicit_feedback(estimator_name);
    return simulate(workload(), cluster(), *est, *pol, cfg);
  }
};

TEST_P(SimulatorGrid, JobAccountingConserved) {
  const auto r = run();
  EXPECT_EQ(r.completed + r.intrinsic_failed + r.dropped_unschedulable +
                r.dropped_attempt_cap,
            r.submitted);
  EXPECT_EQ(r.submitted, workload().jobs.size());
}

TEST_P(SimulatorGrid, NoJobsLostToRetryCap) {
  // On a clean trace every estimator's retries must terminate well below
  // the safety valve.
  const auto r = run();
  EXPECT_EQ(r.dropped_attempt_cap, 0u);
}

TEST_P(SimulatorGrid, MetricsWithinPhysicalBounds) {
  const auto r = run();
  EXPECT_GE(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_GE(r.wasted_fraction, 0.0);
  EXPECT_LE(r.utilization + r.wasted_fraction, 1.0 + 1e-9);
  EXPECT_GE(r.makespan, workload().span() - 1e-6);
  if (r.completed > 0) {
    EXPECT_GE(r.mean_slowdown, 1.0 - 1e-9);
    EXPECT_GE(r.mean_bounded_slowdown, 1.0 - 1e-9);
    EXPECT_GE(r.p95_slowdown, 1.0 - 1e-9);
    EXPECT_GE(r.mean_wait, 0.0);
  }
}

TEST_P(SimulatorGrid, AttemptAccountingConsistent) {
  const auto r = run();
  EXPECT_GE(r.attempts, r.completed + r.intrinsic_failed);
  EXPECT_EQ(r.attempts,
            r.completed + r.intrinsic_failed + r.resource_failures);
  EXPECT_LE(r.lowered_starts, r.attempts);
  EXPECT_LE(r.benefiting_jobs, r.completed);
}

TEST_P(SimulatorGrid, DeterministicForSeed) {
  const auto a = run(99);
  const auto b = run(99);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_DOUBLE_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.resource_failures, b.resource_failures);
  EXPECT_EQ(a.lowered_starts, b.lowered_starts);
}

TEST_P(SimulatorGrid, EstimationNeverWorseThanBaselineOnUtilization) {
  // The estimator may only unlock machines, never lose them: utilization
  // must be within noise of the no-estimation run or better.
  const auto& [estimator_name, policy_name] = GetParam();
  if (estimator_name == "none") GTEST_SKIP();
  const auto with_est = run();
  auto none = core::make_estimator("none");
  auto pol = sched::make_policy(policy_name);
  SimulationConfig cfg;
  cfg.seed = 7;
  const auto baseline = simulate(workload(), cluster(), *none, *pol, cfg);
  EXPECT_GE(with_est.utilization, baseline.utilization * 0.97)
      << estimator_name << "/" << policy_name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulatorGrid,
    ::testing::Combine(::testing::ValuesIn(core::estimator_names()),
                       ::testing::ValuesIn(sched::policy_names())),
    [](const auto& suite_info) {
      std::string name =
          std::get<0>(suite_info.param) + "_" + std::get<1>(suite_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace resmatch::sim
