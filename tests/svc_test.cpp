// Tests for the online service layer (src/svc): estimator store snapshot/
// restore and LRU bounding, admission-queue backpressure, multithreaded
// counter and invariant consistency, and decision-equivalence between the
// service and the offline simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "core/group_state.hpp"
#include "obs/metrics.hpp"
#include "sim/serve_replay.hpp"
#include "svc/estimator_store.hpp"
#include "svc/matchd.hpp"
#include "svc/mpmc_queue.hpp"
#include "svc/thread_pool.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"

namespace resmatch::svc {
namespace {

core::CapacityLadder test_ladder() {
  return core::CapacityLadder({4.0, 8.0, 16.0, 24.0, 32.0, 64.0});
}

trace::JobRecord make_job(MiB req, MiB used, UserId user = 1, AppId app = 1) {
  trace::JobRecord j;
  j.id = 1;
  j.requested_mem_mib = req;
  j.used_mem_mib = used;
  j.user = user;
  j.app = app;
  j.nodes = 1;
  j.runtime = 100;
  return j;
}

core::Feedback outcome(const trace::JobRecord& job, MiB granted) {
  core::Feedback fb;
  fb.success = granted + 1e-9 >= job.used_mem_mib;
  fb.granted_mib = granted;
  return fb;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- estimator store ---------------------------------------------------------

TEST(EstimatorStore, SnapshotRestoreRoundTripSa) {
  StoreConfig config;
  config.shards = 4;
  EstimatorStore<core::SaGroupState> store(config);
  const core::CapacityLadder ladder = test_ladder();

  // Populate a few groups in distinct states: converging, probing, frozen.
  for (std::uint64_t key = 1; key <= 20; ++key) {
    store.with_group(
        key, [&] { return core::SaGroupState::fresh(32.0, 2.0); },
        [&](core::SaGroupState& g) {
          core::Feedback fb;
          fb.success = key % 3 != 0;
          fb.granted_mib = g.commit(ladder);
          g.apply_feedback(fb, 32.0, ladder, 0.0);
          return 0;
        });
  }

  std::ostringstream snapshot;
  store.save(snapshot);

  EstimatorStore<core::SaGroupState> restored(config);
  std::istringstream in(snapshot.str());
  const auto rows = restored.load(in);
  ASSERT_TRUE(rows.has_value()) << rows.error();
  EXPECT_EQ(rows.value(), 20u);
  EXPECT_EQ(restored.size(), store.size());

  store.for_each([&](std::uint64_t key, const core::SaGroupState& original) {
    const auto copy = restored.peek(key);
    ASSERT_TRUE(copy.has_value()) << "missing group " << key;
    EXPECT_EQ(copy->estimate, original.estimate);
    EXPECT_EQ(copy->last_good, original.last_good);
    EXPECT_EQ(copy->alpha, original.alpha);
    EXPECT_EQ(copy->probe_outstanding, original.probe_outstanding);
    EXPECT_EQ(copy->probe_grant, original.probe_grant);
  });
}

TEST(EstimatorStore, SnapshotRestoreRoundTripLi) {
  EstimatorStore<core::LiGroupState> store({2, 64});
  store.with_group(
      7, [] { return core::LiGroupState{}; },
      [](core::LiGroupState& g) {
        g.recent_usage = {12.5, 14.0, 9.75};
        return 0;
      });
  store.with_group(
      8, [] { return core::LiGroupState{}; },
      [](core::LiGroupState& g) {
        g.poisoned = true;
        return 0;
      });

  std::ostringstream snapshot;
  store.save(snapshot);
  EstimatorStore<core::LiGroupState> restored({2, 64});
  std::istringstream in(snapshot.str());
  const auto rows = restored.load(in);
  ASSERT_TRUE(rows.has_value()) << rows.error();
  EXPECT_EQ(rows.value(), 2u);

  const auto seven = restored.peek(7);
  ASSERT_TRUE(seven.has_value());
  EXPECT_EQ(seven->recent_usage, (std::deque<MiB>{12.5, 14.0, 9.75}));
  EXPECT_FALSE(seven->poisoned);
  const auto eight = restored.peek(8);
  ASSERT_TRUE(eight.has_value());
  EXPECT_TRUE(eight->poisoned);
}

TEST(EstimatorStore, RejectsForeignAndCorruptSnapshots) {
  EstimatorStore<core::SaGroupState> store({2, 64});
  {
    std::istringstream in("not-a-snapshot,1,successive-approximation\n");
    EXPECT_FALSE(store.load(in).has_value());
  }
  {
    // Wrong state kind: an LI snapshot into an SA store.
    std::istringstream in("resmatch-estimator-store,1,last-instance\n");
    EXPECT_FALSE(store.load(in).has_value());
  }
  {
    std::istringstream in(
        "resmatch-estimator-store,1,successive-approximation\n"
        "42,1.0,bogus\n");
    EXPECT_FALSE(store.load(in).has_value());
  }
  {
    // Wrong field count for SaGroupState.
    std::istringstream in(
        "resmatch-estimator-store,1,successive-approximation\n"
        "42,1.0,2.0\n");
    EXPECT_FALSE(store.load(in).has_value());
  }
}

TEST(EstimatorStore, RejectsTruncatedSnapshots) {
  // A snapshot cut mid-write (no trailing newline on the last row, or cut
  // inside the header) must be an explicit error, not a silent partial
  // restore — save() always terminates every line, so a missing
  // terminator can only mean truncation. The durable recovery path for a
  // bad snapshot is WAL replay, which needs the loader to fail loudly.
  EstimatorStore<core::SaGroupState> source({2, 64});
  source.with_group(
      7, [] { return core::SaGroupState::fresh(32.0, 2.0); },
      [](core::SaGroupState&) { return 0; });
  std::ostringstream snapshot;
  source.save(snapshot);
  const std::string full = snapshot.str();
  ASSERT_FALSE(full.empty());
  ASSERT_EQ(full.back(), '\n');

  {
    // Whole snapshot: loads.
    EstimatorStore<core::SaGroupState> store({2, 64});
    std::istringstream in(full);
    EXPECT_EQ(store.load(in).value(), 1u);
  }
  {
    // Last byte (the final newline) gone: truncated trailing row.
    EstimatorStore<core::SaGroupState> store({2, 64});
    std::istringstream in(full.substr(0, full.size() - 1));
    const auto result = store.load(in);
    ASSERT_FALSE(result.has_value());
    EXPECT_NE(result.error().find("truncated"), std::string::npos);
  }
  {
    // Cut mid-row.
    EstimatorStore<core::SaGroupState> store({2, 64});
    std::istringstream in(full.substr(0, full.size() - 4));
    EXPECT_FALSE(store.load(in).has_value());
  }
  {
    // Header without its newline: also truncation, not an empty store.
    EstimatorStore<core::SaGroupState> store({2, 64});
    const std::string header = full.substr(0, full.find('\n'));
    std::istringstream in(header);
    const auto result = store.load(in);
    ASSERT_FALSE(result.has_value());
    EXPECT_NE(result.error().find("truncated"), std::string::npos);
  }
}

TEST(EstimatorStore, LruEvictionAtBound) {
  StoreConfig config;
  config.shards = 1;  // single stripe makes LRU order fully observable
  config.max_groups = 4;
  EstimatorStore<core::SaGroupState> store(config);

  for (std::uint64_t key = 1; key <= 4; ++key) {
    store.with_group(
        key, [] { return core::SaGroupState::fresh(32.0, 2.0); },
        [](core::SaGroupState&) { return 0; });
  }
  EXPECT_EQ(store.size(), 4u);

  // Touch key 1 so key 2 becomes the LRU, then insert a fifth group.
  EXPECT_TRUE(
      store.modify_if_present(1, [](core::SaGroupState&) {}));
  store.with_group(
      5, [] { return core::SaGroupState::fresh(32.0, 2.0); },
      [](core::SaGroupState&) { return 0; });

  EXPECT_EQ(store.size(), 4u);
  EXPECT_FALSE(store.peek(2).has_value()) << "LRU entry should be evicted";
  EXPECT_TRUE(store.peek(1).has_value());
  EXPECT_TRUE(store.peek(5).has_value());
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(EstimatorStore, PeekDoesNotPerturbLruOrder) {
  StoreConfig config;
  config.shards = 1;
  config.max_groups = 2;
  EstimatorStore<core::SaGroupState> store(config);
  for (std::uint64_t key = 1; key <= 2; ++key) {
    store.with_group(
        key, [] { return core::SaGroupState::fresh(32.0, 2.0); },
        [](core::SaGroupState&) { return 0; });
  }
  // peek(1) must NOT rescue key 1 from eviction.
  EXPECT_TRUE(store.peek(1).has_value());
  store.with_group(
      3, [] { return core::SaGroupState::fresh(32.0, 2.0); },
      [](core::SaGroupState&) { return 0; });
  EXPECT_FALSE(store.peek(1).has_value());
  EXPECT_TRUE(store.peek(2).has_value());
}

// --- admission queue ---------------------------------------------------------

TEST(MpmcQueue, RejectsWhenFullAndAfterClose) {
  BoundedMpmcQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2), PushResult::kOk);
  EXPECT_EQ(queue.try_push(3), PushResult::kFull);
  EXPECT_EQ(queue.size(), 2u);

  queue.close();
  EXPECT_EQ(queue.try_push(4), PushResult::kClosed);

  // Accepted items still drain after close, in order.
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(Matchd, BackpressureRejectsWithReason) {
  // A service with no workers never drains its queue — async must reject
  // with kClosed. A tiny queue with slow consumption must reject kFull.
  Matchd sync_only;
  EXPECT_EQ(sync_only.submit_async(make_job(32, 8), nullptr),
            PushResult::kClosed);

  MatchdConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  Matchd service(config);
  service.set_ladder(test_ladder());

  // Saturate: with one worker and capacity 2, pushing many at once must
  // hit kFull at least once.
  std::size_t rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    if (service.submit_async(make_job(32, 8), nullptr) == PushResult::kFull) {
      ++rejected;
    }
  }
  service.drain();
  EXPECT_GT(rejected, 0u);
  const MatchdStats stats = service.stats();
  EXPECT_EQ(stats.async_rejected_full, rejected);
  EXPECT_EQ(stats.async_accepted + rejected, 2000u);
  EXPECT_EQ(stats.submissions, stats.async_accepted);
}

// --- service semantics -------------------------------------------------------

TEST(Matchd, ConvergesLikeAlgorithmOne) {
  Matchd service;
  service.set_ladder(test_ladder());
  const trace::JobRecord job = make_job(32, 7);

  // 32 -> 16 -> 8 -> 4 (fail) -> 8 forever: the paper's Figure 7 shape.
  std::vector<MiB> grants;
  for (int i = 0; i < 6; ++i) {
    const MatchDecision d = service.submit(job);
    grants.push_back(d.granted_mib);
    service.feedback(job, outcome(job, d.granted_mib));
  }
  EXPECT_EQ(grants,
            (std::vector<MiB>{32.0, 16.0, 8.0, 4.0, 8.0, 8.0}));

  const MatchdStats stats = service.stats();
  EXPECT_EQ(stats.submissions, 6u);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.successes, 5u);
  EXPECT_EQ(stats.rewrites, 5u);  // all but the first grant were lowered
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(service.invariant_violations(), 0u);
}

TEST(Matchd, SnapshotWarmRestart) {
  const std::string path = temp_path("resmatch_svc_test_snapshot.csv");
  const trace::JobRecord job = make_job(32, 7);

  MiB converged = 0.0;
  {
    Matchd service;
    service.set_ladder(test_ladder());
    for (int i = 0; i < 6; ++i) {
      const MatchDecision d = service.submit(job);
      converged = d.granted_mib;
      service.feedback(job, outcome(job, d.granted_mib));
    }
    ASSERT_TRUE(service.save_store(path));
  }

  Matchd restarted;
  restarted.set_ladder(test_ladder());
  const auto rows = restarted.restore_store(path);
  ASSERT_TRUE(rows.has_value()) << rows.error();
  EXPECT_EQ(rows.value(), 1u);
  // The restarted service grants the converged estimate immediately,
  // instead of re-learning from 32 MiB.
  EXPECT_EQ(restarted.submit(job).granted_mib, converged);
  std::remove(path.c_str());
}

TEST(Matchd, MultithreadedHammerKeepsInvariants) {
  MatchdConfig config;
  config.store.shards = 8;
  Matchd service(config);
  service.set_ladder(test_ladder());

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpsPerThread = 5000;
  constexpr std::size_t kGroups = 37;

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&service, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t n = t * kOpsPerThread + i;
        trace::JobRecord job = make_job(
            32.0, 4.0 + static_cast<double>(n % 13),
            static_cast<UserId>(n % kGroups), static_cast<AppId>(n % 5));
        const MatchDecision d = service.submit(job);
        if (n % 17 == 0) {
          service.cancel(job, d.granted_mib);
        } else {
          service.feedback(job, outcome(job, d.granted_mib));
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  const MatchdStats stats = service.stats();
  EXPECT_EQ(stats.submissions, kThreads * kOpsPerThread);
  EXPECT_EQ(stats.successes + stats.failures + stats.cancels,
            kThreads * kOpsPerThread);
  // Per-shard rows must sum to the aggregate.
  std::uint64_t shard_submissions = 0;
  for (const auto& shard : stats.shards) shard_submissions += shard.submissions;
  EXPECT_EQ(shard_submissions, stats.submissions);
  // Every group must satisfy Algorithm 1's invariants under any
  // interleaving: alpha >= 1, estimate bounded by the proven capacity.
  EXPECT_EQ(service.invariant_violations(), 0u);
}

TEST(Matchd, AsyncPipelineMatchesSyncDecisions) {
  const core::CapacityLadder ladder = test_ladder();
  MatchdConfig async_config;
  async_config.workers = 2;

  Matchd sync_service;
  sync_service.set_ladder(ladder);
  Matchd async_service(async_config);
  async_service.set_ladder(ladder);

  // Drive both serially through the same trajectory; the async service is
  // waited on per-op via the adapter, so decisions must be identical.
  MatchdEstimator adapter(async_service);
  for (int i = 0; i < 8; ++i) {
    const trace::JobRecord job = make_job(32, 6);
    const MiB sync_grant = sync_service.submit(job).granted_mib;
    const MiB async_grant = adapter.estimate(job, core::SystemState{});
    EXPECT_EQ(sync_grant, async_grant) << "iteration " << i;
    sync_service.feedback(job, outcome(job, sync_grant));
    adapter.feedback(job, outcome(job, async_grant));
  }
}

// --- persistence atomicity and restore semantics -----------------------------

TEST(EstimatorStore, FailedSaveLeavesPriorSnapshotIntact) {
  namespace fs = std::filesystem;
  const std::string path = temp_path("store_atomic_save.csv");
  const core::CapacityLadder ladder = test_ladder();

  StoreConfig config;
  config.shards = 2;
  EstimatorStore<core::SaGroupState> store(config);
  for (std::uint64_t key = 1; key <= 10; ++key) {
    store.with_group(
        key, [&] { return core::SaGroupState::fresh(32.0, 2.0); },
        [&](core::SaGroupState& g) { return g.commit(ladder); });
  }
  ASSERT_TRUE(store.save_file(path));

  // Snapshots go through a deterministic temp name in the target's
  // directory; a directory squatting on it forces the writer's open to
  // fail before the real file could be touched (works even as root,
  // where permission bits would not).
  fs::create_directory(path + ".tmp");
  store.with_group(
      99, [&] { return core::SaGroupState::fresh(64.0, 2.0); },
      [&](core::SaGroupState& g) { return g.commit(ladder); });
  EXPECT_FALSE(store.save_file(path));
  fs::remove_all(path + ".tmp");

  // The failed save must not have truncated or replaced the old snapshot.
  EstimatorStore<core::SaGroupState> restored(config);
  const auto rows = restored.load_file(path);
  ASSERT_TRUE(rows.has_value()) << rows.error();
  EXPECT_EQ(rows.value(), 10u);
  EXPECT_FALSE(restored.peek(99).has_value());

  // A save retried after the obstruction clears replaces atomically and
  // leaves no temp file behind.
  ASSERT_TRUE(store.save_file(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EstimatorStore<core::SaGroupState> after(config);
  EXPECT_EQ(after.load_file(path).value(), 11u);
  std::remove(path.c_str());
}

TEST(EstimatorStore, RestoreDoesNotPerturbTrafficCounters) {
  const core::CapacityLadder ladder = test_ladder();
  StoreConfig config;
  config.shards = 4;
  EstimatorStore<core::SaGroupState> store(config);
  for (std::uint64_t key = 1; key <= 20; ++key) {
    store.with_group(
        key, [&] { return core::SaGroupState::fresh(32.0, 2.0); },
        [&](core::SaGroupState& g) { return g.commit(ladder); });
  }
  std::ostringstream snapshot;
  store.save(snapshot);

  // A warm restart restores state, not traffic: hit-rate metrics must
  // start from zero instead of reporting one spurious miss per group.
  EstimatorStore<core::SaGroupState> restored(config);
  std::istringstream in(snapshot.str());
  ASSERT_TRUE(restored.load(in).has_value());
  const StoreStats stats = restored.stats();
  EXPECT_EQ(stats.entries, 20u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.evictions, 0u);

  // The entry bound still holds during restore, and even forced drops
  // are not counted as traffic evictions.
  StoreConfig bounded;
  bounded.shards = 1;
  bounded.max_groups = 8;
  EstimatorStore<core::SaGroupState> small(bounded);
  std::istringstream in2(snapshot.str());
  ASSERT_TRUE(small.load(in2).has_value());
  EXPECT_EQ(small.size(), 8u);
  EXPECT_EQ(small.stats().evictions, 0u);

  // Re-restoring over live entries must not duplicate them.
  std::istringstream in3(snapshot.str());
  ASSERT_TRUE(restored.load(in3).has_value());
  EXPECT_EQ(restored.size(), 20u);
}

// --- thread pool spawn-failure recovery --------------------------------------

/// Worker whose copies are counted and, once `fuse` is armed, throw.
/// std::thread decay-copies the callable in the spawning thread, so an
/// armed fuse makes ThreadPool's k-th spawn throw — exactly the failure
/// mode the ctor must survive without std::terminate.
struct ThrowingWorker {
  std::shared_ptr<std::atomic<int>> copies;
  std::shared_ptr<std::atomic<int>> fuse;  // throw when copies exceeds; -1=off
  std::shared_ptr<std::atomic<bool>> release;

  ThrowingWorker(std::shared_ptr<std::atomic<int>> c,
                 std::shared_ptr<std::atomic<int>> f,
                 std::shared_ptr<std::atomic<bool>> r)
      : copies(std::move(c)), fuse(std::move(f)), release(std::move(r)) {}

  ThrowingWorker(const ThrowingWorker& other)
      : copies(other.copies), fuse(other.fuse), release(other.release) {
    const int n = copies->fetch_add(1) + 1;
    const int limit = fuse->load();
    if (limit >= 0 && n > limit) throw std::runtime_error("spawn fuse blew");
  }
  ThrowingWorker(ThrowingWorker&&) = default;

  void operator()(std::size_t) const {
    // Block like a real queue drainer until the failure path releases us.
    while (!release->load()) std::this_thread::yield();
  }
};

TEST(ThreadPool, SpawnFailureReleasesAndJoinsSpawnedWorkers) {
  auto copies = std::make_shared<std::atomic<int>>(0);
  auto fuse = std::make_shared<std::atomic<int>>(-1);
  auto release = std::make_shared<std::atomic<bool>>(false);

  // Calibrate how many callable copies one spawn costs (std::function
  // wrapping is implementation-defined), by building real pools with the
  // fuse off and workers released.
  release->store(true);
  const auto copies_for = [&](std::size_t workers) {
    copies->store(0);
    std::function<void(std::size_t)> fn(
        ThrowingWorker(copies, fuse, release));
    ThreadPool pool(workers, fn);
    pool.join();
    return copies->load();
  };
  const int with_one = copies_for(1);
  const int with_three = copies_for(3);
  const int per_spawn = (with_three - with_one) / 2;
  ASSERT_GT(per_spawn, 0);

  // Arm the fuse so the first spawns succeed and a later one throws; the
  // spawned workers block until on_spawn_failure flips `release` —
  // proving the hook runs before the recovery join (otherwise this test
  // hangs). The fuse stays off while std::function wrapping makes its
  // own copies, then trips within two spawns' worth.
  release->store(false);
  copies->store(0);
  fuse->store(-1);
  bool hook_ran = false;
  std::function<void(std::size_t)> fn(ThrowingWorker(copies, fuse, release));
  fuse->store(copies->load() + 2 * per_spawn);
  EXPECT_THROW(ThreadPool(4, fn,
                          [&] {
                            hook_ran = true;
                            release->store(true);
                          }),
               std::runtime_error);
  EXPECT_TRUE(hook_ran);
}

TEST(Matchd, WorkerSpawnFailureDoesNotLeakOrDangle) {
  // End-to-end: matchd's ctor reaches its recovery path (close queue,
  // join partial pool, drop metric providers) when the pool cannot be
  // built. Thread-creation failure cannot be forced portably, so this
  // exercises the same path via an absurd worker count only when the
  // platform rejects it quickly; otherwise the unit above covers it.
  obs::Registry registry;
  MatchdConfig config;
  config.workers = 2;
  config.metrics = &registry;
  {
    Matchd service(config);
    service.set_ladder(test_ladder());
    EXPECT_GT(registry.size(), 0u);
  }
  // Every pull provider the service registered must be gone with it: a
  // snapshot after destruction would otherwise call dangling captures.
  // Histograms are registry-owned push instruments and deliberately
  // survive (serve_replay reads them after the service winds down).
  const obs::MetricsSnapshot snap = registry.snapshot();
  for (const auto& sample : snap.samples) {
    if (sample.name.rfind("resmatch_matchd_", 0) == 0 ||
        sample.name.rfind("resmatch_store_", 0) == 0) {
      EXPECT_EQ(sample.type, obs::MetricType::kHistogram)
          << "dangling provider: " << sample.name;
    }
  }
}

// --- instrumented concurrency: drain vs admit vs snapshot --------------------

TEST(Matchd, DrainRacesAdmitAndMetricsSnapshots) {
  // TSan hammer: producers push async work, a drainer loops drain(), a
  // scraper loops registry snapshots, all against per-op histogram
  // recording (sample period 1 = every op timed). Run under the TSan CI
  // job; here it still checks counter coherence after the dust settles.
  obs::Registry registry;
  MatchdConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.store.shards = 4;
  config.metrics = &registry;
  config.metrics_sample_period = 1;
  Matchd service(config);
  service.set_ladder(test_ladder());

  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kOpsPerProducer = 2000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> resolved{0};

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&service, &resolved, t] {
      for (std::size_t i = 0; i < kOpsPerProducer; ++i) {
        const std::uint64_t n = t * kOpsPerProducer + i;
        trace::JobRecord job =
            make_job(32.0, 4.0 + static_cast<double>(n % 7),
                     static_cast<UserId>(n % 23), static_cast<AppId>(n % 3));
        const auto pushed = service.submit_async(
            job, [&service, &resolved, job](const MatchDecision& d) {
              service.feedback(job, outcome(job, d.granted_mib));
              resolved.fetch_add(1);
            });
        if (pushed != PushResult::kOk) {
          const MatchDecision d = service.submit(job);
          service.feedback(job, outcome(job, d.granted_mib));
          resolved.fetch_add(1);
        }
      }
    });
  }
  std::thread drainer([&service, &stop] {
    while (!stop.load()) service.drain();
  });
  std::thread scraper([&registry, &service, &stop] {
    while (!stop.load()) {
      const obs::MetricsSnapshot snap = registry.snapshot();
      (void)snap.find("resmatch_matchd_queue_depth");
      (void)service.stats();
      std::this_thread::yield();
    }
  });

  for (auto& p : producers) p.join();
  service.drain();
  stop.store(true);
  drainer.join();
  scraper.join();

  constexpr std::uint64_t kTotal = kProducers * kOpsPerProducer;
  EXPECT_EQ(resolved.load(), kTotal);
  const MatchdStats stats = service.stats();
  EXPECT_EQ(stats.submissions, kTotal);
  EXPECT_EQ(stats.successes + stats.failures, kTotal);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(service.invariant_violations(), 0u);

  // Per-op latency histograms belong to the synchronous API; the batched
  // worker path records batch sizes instead. Feedback here is always
  // synchronous (called from the decision callback), so its histogram
  // saw every operation; batch-size observations must cover every
  // async-admitted submission.
  const obs::MetricsSnapshot snap = registry.snapshot();
  const auto* fb = snap.find("resmatch_matchd_op_latency_seconds",
                             {{"op", "feedback"}});
  ASSERT_NE(fb, nullptr);
  EXPECT_EQ(fb->histogram.count, kTotal);
  const auto* batches = snap.find("resmatch_batch_size");
  ASSERT_NE(batches, nullptr);
  EXPECT_EQ(batches->histogram.count, stats.batch_drains);
  EXPECT_EQ(stats.async_accepted,
            static_cast<std::uint64_t>(batches->histogram.sum));
}

// --- bulk pop and batched admission ------------------------------------------

TEST(MpmcQueue, PopBulkDrainsFifoUpToMax) {
  BoundedMpmcQueue<int> queue(16);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_EQ(queue.try_push(int{i}), PushResult::kOk);
  }
  std::vector<int> out;
  EXPECT_EQ(queue.pop_bulk(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(queue.pop_bulk(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
  // Fewer available than max: take what is there, no blocking (the queue
  // is not empty so the initial wait passes straight through).
  EXPECT_EQ(queue.pop_bulk(out, 4), 2u);
  EXPECT_EQ(out.back(), 10);
  queue.close();
  // Closed and drained: the consumer-exit signal.
  EXPECT_EQ(queue.pop_bulk(out, 4), 0u);
}

TEST(MpmcQueue, PopBulkLingerCollectsLateArrivals) {
  BoundedMpmcQueue<int> queue(16);
  ASSERT_EQ(queue.try_push(1), PushResult::kOk);
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_EQ(queue.try_push(2), PushResult::kOk);
  });
  // The batch is short of max, so the consumer lingers; the late arrival
  // completes it well before the deadline (a full batch ends the linger).
  std::vector<int> out;
  EXPECT_EQ(queue.pop_bulk(out, 2, std::chrono::microseconds(2'000'000)),
            2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  producer.join();
}

TEST(MpmcQueue, WaitEmptyWaitsForDrainEvenAfterClose) {
  // Regression: wait_empty() used to return as soon as the queue was
  // closed, even with items still queued — Matchd::drain() could then
  // report completion while admitted requests sat unprocessed.
  BoundedMpmcQueue<int> queue(8);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.try_push(int{i}), PushResult::kOk);
  }
  queue.close();

  std::thread consumer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    while (queue.pop().has_value()) {
    }
  });
  const auto start = std::chrono::steady_clock::now();
  queue.wait_empty();
  const auto waited = std::chrono::steady_clock::now() - start;
  consumer.join();

  EXPECT_EQ(queue.size(), 0u);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            50)
      << "wait_empty returned before the consumer drained the queue";
}

TEST(EstimatorStore, PeekFastMatchesPeekAcrossGrowthAndEviction) {
  StoreConfig config;
  config.shards = 1;  // every key in one stripe: growth + eviction visible
  config.max_groups = 128;
  EstimatorStore<core::SaGroupState> store(config);

  // 200 inserts into 128 capacity: the read table grows past its initial
  // 64 slots AND the first 72 keys get evicted.
  for (std::uint64_t key = 1; key <= 200; ++key) {
    store.with_group(
        key,
        [key] {
          return core::SaGroupState::fresh(static_cast<double>(key), 2.0);
        },
        [](core::SaGroupState&) { return 0; });
  }
  for (std::uint64_t key = 1; key <= 200; ++key) {
    const auto slow = store.peek(key);
    const auto fast = store.peek_fast(key);
    ASSERT_EQ(slow.has_value(), fast.has_value()) << "key " << key;
    if (slow) {
      EXPECT_EQ(slow->to_fields(), fast->to_fields()) << "key " << key;
    }
  }

  // Mutations publish: the fast path must see post-write state.
  ASSERT_TRUE(store.modify_if_present(
      200, [](core::SaGroupState& s) { s.estimate = 7.5; }));
  const auto after = store.peek_fast(200);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->estimate, 7.5);
}

TEST(EstimatorStore, PeekFastSeqlockHammer) {
  // Torn-read detector (run under the TSan CI job too): writers keep the
  // pair (estimate, last_good = 2 * estimate) in lockstep under the shard
  // lock; lock-free readers must never observe the pair out of sync. A
  // churn thread concurrently grows the read table so readers also race
  // table swaps.
  StoreConfig config;
  config.shards = 1;
  config.max_groups = 4096;
  EstimatorStore<core::SaGroupState> store(config);
  constexpr std::uint64_t kKey = 7;
  store.with_group(
      kKey, [] { return core::SaGroupState::fresh(1.0, 2.0); },
      [](core::SaGroupState& s) {
        s.estimate = 1.0;
        s.last_good = 2.0;
      });

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&store, &stop, &torn] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto s = store.peek_fast(kKey);
        if (s && s->last_good != 2.0 * s->estimate) torn.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&store] {
      for (int i = 0; i < 20000; ++i) {
        store.modify_if_present(kKey, [](core::SaGroupState& s) {
          const double next = s.estimate + 1.0;
          s.estimate = next;
          s.last_good = 2.0 * next;
        });
      }
    });
  }
  std::thread churn([&store] {
    for (std::uint64_t key = 1000; key < 1600; ++key) {
      store.with_group(
          key, [] { return core::SaGroupState::fresh(8.0, 2.0); },
          [](core::SaGroupState&) { return 0; });
    }
  });

  for (auto& w : writers) w.join();
  churn.join();
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0u);
  const auto final_state = store.peek_fast(kKey);
  ASSERT_TRUE(final_state.has_value());
  EXPECT_EQ(final_state->estimate, 1.0 + 2 * 20000);
}

TEST(Matchd, BatchedPipelineMatchesSyncPerKeyChains) {
  // Keys are independent estimator groups, so however the worker batches
  // interleave THEM, each key's own chain must produce the grant stream
  // the synchronous service produces — batching may reorder across keys
  // but never within one (the batch sort is stable).
  constexpr std::size_t kKeys = 8;
  constexpr int kOpsPerKey = 40;
  const core::CapacityLadder ladder = test_ladder();

  // Per-key reference streams from a workers=0 service.
  std::vector<std::vector<MiB>> expected(kKeys);
  {
    Matchd sync_service;
    sync_service.set_ladder(ladder);
    for (std::size_t k = 0; k < kKeys; ++k) {
      for (int i = 0; i < kOpsPerKey; ++i) {
        const trace::JobRecord job =
            make_job(64.0, 5.0 + static_cast<double>(k),
                     static_cast<UserId>(k + 1), 1);
        const MatchDecision d = sync_service.submit(job);
        expected[k].push_back(d.granted_mib);
        sync_service.feedback(job, outcome(job, d.granted_mib));
      }
    }
  }

  for (const std::size_t batch_max : {std::size_t{1}, std::size_t{8},
                                      std::size_t{64}}) {
    MatchdConfig config;
    config.workers = 2;
    config.queue_capacity = 256;
    config.batch_max = batch_max;
    config.batch_linger = std::chrono::microseconds{200};
    Matchd service(config);
    service.set_ladder(ladder);

    std::vector<std::vector<MiB>> got(kKeys);
    std::vector<std::thread> drivers;
    for (std::size_t k = 0; k < kKeys; ++k) {
      drivers.emplace_back([&service, &got, k] {
        MatchdEstimator adapter(service);
        for (int i = 0; i < kOpsPerKey; ++i) {
          const trace::JobRecord job =
              make_job(64.0, 5.0 + static_cast<double>(k),
                       static_cast<UserId>(k + 1), 1);
          const MiB granted = adapter.estimate(job, core::SystemState{});
          got[k].push_back(granted);
          adapter.feedback(job, outcome(job, granted));
        }
      });
    }
    for (auto& d : drivers) d.join();
    service.drain();

    for (std::size_t k = 0; k < kKeys; ++k) {
      EXPECT_EQ(got[k], expected[k]) << "batch_max=" << batch_max
                                     << " key=" << k;
    }
    const MatchdStats stats = service.stats();
    EXPECT_EQ(stats.submissions, kKeys * kOpsPerKey);
    EXPECT_GT(stats.batch_drains, 0u);
    EXPECT_EQ(service.invariant_violations(), 0u);
  }
}

// --- decision equivalence with the offline simulator -------------------------

TEST(ServeReplay, ServiceIdenticalToOfflineSimulator) {
  trace::Workload workload = trace::generate_cm5_small(/*seed=*/3, 2000);
  const sim::ClusterSpec cluster = sim::cm5_heterogeneous(24.0, 64);
  workload = trace::drop_wide_jobs(std::move(workload), 128);
  workload = trace::sort_by_submit(
      trace::scale_to_load(std::move(workload), 128, 1.0));

  for (const std::size_t workers : {std::size_t{0}, std::size_t{2}}) {
    sim::ServeReplayConfig config;
    config.matchd.workers = workers;
    const sim::ServeReplayResult result =
        sim::serve_replay(workload, cluster, config);
    EXPECT_GT(result.decisions, 0u);
    EXPECT_EQ(result.mismatches, 0u) << "workers=" << workers;
    EXPECT_TRUE(result.identical()) << "workers=" << workers;
    EXPECT_EQ(result.stats.submissions,
              result.stats.successes + result.stats.failures +
                  result.stats.cancels)
        << "every submission must be resolved";
  }
}

}  // namespace
}  // namespace resmatch::svc
