// Tests for simulation time-series collection and saturation-knee
// detection (the measurement discipline behind the paper's footnote 4).
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "exp/experiment.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "sim/timeseries.hpp"

namespace resmatch::sim {
namespace {

TEST(TimeSeries, DownsamplesToInterval) {
  TimeSeries series(10.0);
  for (int t = 0; t < 100; ++t) {
    series.observe(static_cast<Seconds>(t), 0.5, 3, 2);
  }
  // One sample per 10 simulated seconds.
  EXPECT_EQ(series.points().size(), 10u);
  EXPECT_DOUBLE_EQ(series.points()[1].time, 10.0);
}

TEST(TimeSeries, Summaries) {
  TimeSeries series(1.0);
  series.observe(0.0, 0.2, 5, 1);
  series.observe(1.0, 0.8, 9, 2);
  EXPECT_DOUBLE_EQ(series.mean_busy_fraction(), 0.5);
  EXPECT_EQ(series.max_queue_length(), 9u);
  EXPECT_FALSE(series.empty());
}

TEST(TimeSeries, EmptySafe) {
  TimeSeries series(1.0);
  EXPECT_TRUE(series.empty());
  EXPECT_DOUBLE_EQ(series.mean_busy_fraction(), 0.0);
  EXPECT_EQ(series.max_queue_length(), 0u);
}

TEST(TimeSeries, AttachesToSimulation) {
  trace::Workload w;
  for (int i = 0; i < 30; ++i) {
    trace::JobRecord j;
    j.id = i + 1;
    j.submit = i * 50.0;
    j.runtime = 100.0;
    j.nodes = 2;
    j.requested_mem_mib = 32;
    j.used_mem_mib = 8;
    j.user = 1;
    j.app = 1;
    w.jobs.push_back(j);
  }
  auto est = core::make_estimator("none");
  auto pol = sched::make_policy("fcfs");
  TimeSeries series(25.0);
  SimulationConfig cfg;
  cfg.timeseries = &series;
  const auto result = simulate(w, {{32.0, 4}}, *est, *pol, cfg);
  EXPECT_EQ(result.completed, 30u);
  EXPECT_GT(series.points().size(), 10u);
  // The cluster is 4 machines; two-node jobs overlap: busy fraction must
  // have been sampled in (0, 1].
  EXPECT_GT(series.mean_busy_fraction(), 0.0);
  EXPECT_LE(series.mean_busy_fraction(), 1.0);
}

}  // namespace
}  // namespace resmatch::sim

namespace resmatch::exp {
namespace {

LoadPoint point(double load, double util_est, double util_none) {
  LoadPoint p;
  p.load = load;
  p.with_estimation.utilization = util_est;
  p.without_estimation.utilization = util_none;
  return p;
}

TEST(SaturationKnee, FindsFirstDeparture) {
  // Tracks linearly to 0.6, then plateaus at 0.62.
  const std::vector<LoadPoint> sweep = {
      point(0.2, 0.2, 0.2), point(0.4, 0.4, 0.4), point(0.6, 0.6, 0.55),
      point(0.8, 0.62, 0.55), point(1.0, 0.62, 0.55)};
  const auto est = find_saturation_knee(sweep, true);
  ASSERT_TRUE(est.found);
  EXPECT_DOUBLE_EQ(est.load, 0.8);
  EXPECT_DOUBLE_EQ(est.utilization, 0.62);
  const auto none = find_saturation_knee(sweep, false);
  ASSERT_TRUE(none.found);
  EXPECT_DOUBLE_EQ(none.load, 0.6);  // departs earlier
}

TEST(SaturationKnee, NotFoundWhenAlwaysTracking) {
  const std::vector<LoadPoint> sweep = {point(0.2, 0.2, 0.2),
                                        point(0.4, 0.4, 0.4)};
  const auto knee = find_saturation_knee(sweep, true);
  EXPECT_FALSE(knee.found);
  EXPECT_DOUBLE_EQ(knee.utilization, 0.4);
}

TEST(SaturationKnee, EmptySweep) {
  const auto knee = find_saturation_knee({}, true);
  EXPECT_FALSE(knee.found);
  EXPECT_DOUBLE_EQ(knee.utilization, 0.0);
}

}  // namespace
}  // namespace resmatch::exp
