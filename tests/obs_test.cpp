// Observability layer: instruments, registry, spans, exporters.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_record.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"

namespace resmatch::obs {
namespace {

// --- instruments -------------------------------------------------------------

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  // Bounds: 1, 2, 4, 8 (+Inf trailing).
  Histogram h({1.0, 2.0, 4});
  h.record(0.5);   // below the lowest bound -> bucket 0
  h.record(1.0);   // exactly on a bound -> that bucket (le semantics)
  h.record(1.5);   // (1, 2]  -> bucket 1
  h.record(8.0);   // (4, 8]  -> bucket 3
  h.record(100.0); // beyond the top bound -> +Inf bucket

  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.upper.size(), 4u);
  ASSERT_EQ(snap.counts.size(), 5u);
  EXPECT_DOUBLE_EQ(snap.upper[0], 1.0);
  EXPECT_DOUBLE_EQ(snap.upper[3], 8.0);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.counts[4], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 8.0 + 100.0);
  EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, PercentilesLandInTheRightBucket) {
  Histogram h({1e-6, 2.0, 30});
  // 90 fast observations around 1ms, 10 slow ones around 1s.
  for (int i = 0; i < 90; ++i) h.record(1e-3);
  for (int i = 0; i < 10; ++i) h.record(1.0);

  const HistogramSnapshot snap = h.snapshot();
  const double p50 = snap.percentile(50.0);
  const double p99 = snap.percentile(99.0);
  // Bucket resolution is a factor of two: allow one bucket of slack.
  EXPECT_GE(p50, 1e-3 / 2.0);
  EXPECT_LE(p50, 1e-3 * 2.0);
  EXPECT_GE(p99, 1.0 / 2.0);
  EXPECT_LE(p99, 2.0);
  EXPECT_LE(p50, p99);
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(50.0), 0.0);  // empty
  h.record(1e9);  // +Inf bucket only
  // Overflow observations report the largest finite bound, not infinity.
  const double p = h.snapshot().percentile(99.0);
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GT(p, 0.0);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(1e-4);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

// --- registry ----------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableIdentity) {
  Registry reg;
  Counter& a = reg.counter("requests_total", "Requests");
  Counter& b = reg.counter("requests_total", "Requests");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);

  // Label order does not create a second series.
  Counter& c1 =
      reg.counter("ops_total", "Ops", {{"op", "x"}, {"shard", "0"}});
  Counter& c2 =
      reg.counter("ops_total", "Ops", {{"shard", "0"}, {"op", "x"}});
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, TypeConflictThrows) {
  Registry reg;
  (void)reg.counter("x", "");
  EXPECT_THROW((void)reg.gauge("x", ""), std::logic_error);
  EXPECT_THROW((void)reg.histogram("x", ""), std::logic_error);
}

TEST(Registry, RemoveDropsOneSeries) {
  Registry reg;
  (void)reg.counter("a", "", {{"k", "1"}});
  (void)reg.counter("a", "", {{"k", "2"}});
  EXPECT_TRUE(reg.remove("a", {{"k", "1"}}));
  EXPECT_FALSE(reg.remove("a", {{"k", "1"}}));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, PullProvidersEvaluateAtSnapshotTime) {
  Registry reg;
  std::uint64_t backing = 7;
  double level = 0.25;
  reg.counter_fn("pulled_total", "Pulled", {}, [&] { return backing; });
  reg.gauge_fn("level", "Level", {}, [&] { return level; });

  const MetricsSnapshot snap1 = reg.snapshot();
  backing = 9;
  level = 0.75;
  const MetricsSnapshot snap2 = reg.snapshot();

  ASSERT_NE(snap1.find("pulled_total"), nullptr);
  EXPECT_DOUBLE_EQ(snap1.find("pulled_total")->value, 7.0);
  EXPECT_DOUBLE_EQ(snap2.find("pulled_total")->value, 9.0);
  EXPECT_DOUBLE_EQ(snap1.find("level")->value, 0.25);
  EXPECT_DOUBLE_EQ(snap2.find("level")->value, 0.75);
}

TEST(Registry, SnapshotFindMatchesLabels) {
  Registry reg;
  reg.counter("hits", "", {{"op", "a"}}).inc(1);
  reg.counter("hits", "", {{"op", "b"}}).inc(2);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("hits", {{"op", "b"}}), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("hits", {{"op", "b"}})->value, 2.0);
  EXPECT_EQ(snap.find("hits", {{"op", "c"}}), nullptr);
  EXPECT_EQ(snap.find("absent"), nullptr);
}

// --- spans -------------------------------------------------------------------

TEST(Span, RecordsIntoHistogramAndSink) {
  Histogram h;
  std::vector<std::string> seen;
  set_span_sink([&seen](const SpanRecord& r) {
    seen.emplace_back(r.name);
    EXPECT_GE(r.seconds, 0.0);
  });
  {
    ScopedSpan span("unit.work", &h);
    EXPECT_TRUE(span.armed());
  }
  {
    ScopedSpan span("unit.early", &h);
    span.finish();
    span.finish();  // idempotent
  }
  set_span_sink(nullptr);
  EXPECT_FALSE(span_sink_active());
  { ScopedSpan span("unit.unsunk", &h); }  // histogram still records

  EXPECT_EQ(h.count(), 3u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "unit.work");
  EXPECT_EQ(seen[1], "unit.early");
}

TEST(Span, LogSinkFormatsThroughLoggingLayer) {
  std::vector<std::string> lines;
  util::set_log_sink([&lines](util::LogLevel, const std::string& msg) {
    lines.push_back(msg);
  });
  util::set_log_level(util::LogLevel::kDebug);
  set_span_sink(log_span_sink(util::LogLevel::kDebug));
  emit_span({"probe.span", 0.0015});
  set_span_sink(nullptr);
  util::set_log_sink(nullptr);
  util::set_log_level(util::LogLevel::kInfo);

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("probe.span"), std::string::npos);
  EXPECT_NE(lines[0].find("ms"), std::string::npos);
}

// --- Prometheus exporter -----------------------------------------------------

/// Minimal exposition-format checker: validates the line grammar the
/// Prometheus text parser enforces and the cross-line invariants
/// (HELP/TYPE once per family before its samples; cumulative monotone
/// buckets; +Inf bucket == _count).
struct PromValidation {
  std::map<std::string, std::string> types;  // family -> type
  std::map<std::string, double> values;      // full sample line key -> value
  std::vector<std::string> errors;
};

PromValidation validate_prometheus(const std::string& text) {
  PromValidation v;
  std::istringstream in(text);
  std::string line;
  std::string last_bucket_family;
  double last_bucket_value = 0.0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      v.errors.push_back("blank line");
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream t(line.substr(7));
      std::string family, type;
      t >> family >> type;
      if (type != "counter" && type != "gauge" && type != "histogram") {
        v.errors.push_back("bad type: " + line);
      }
      if (v.types.count(family) != 0) {
        v.errors.push_back("duplicate TYPE: " + family);
      }
      v.types[family] = type;
      continue;
    }
    // Sample line: name[{labels}] value
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      v.errors.push_back("no value: " + line);
      continue;
    }
    const std::string key = line.substr(0, space);
    double value = 0.0;
    try {
      value = std::stod(line.substr(space + 1));
    } catch (const std::exception&) {
      if (line.substr(space + 1) != "+Inf") {
        v.errors.push_back("bad value: " + line);
      }
    }
    std::string name = key.substr(0, key.find('{'));
    // Strip histogram suffixes to find the family the TYPE line declared.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0 &&
          v.types.count(family.substr(0, family.size() - s.size())) != 0) {
        family = family.substr(0, family.size() - s.size());
        break;
      }
    }
    if (v.types.count(family) == 0) {
      v.errors.push_back("sample before TYPE: " + line);
    }
    if (name.size() > 7 &&
        name.compare(name.size() - 7, 7, "_bucket") == 0) {
      if (key.find("le=\"") == std::string::npos) {
        v.errors.push_back("bucket without le: " + line);
      }
      if (family == last_bucket_family && value + 1e-9 < last_bucket_value) {
        v.errors.push_back("non-cumulative bucket: " + line);
      }
      last_bucket_family = family;
      last_bucket_value = value;
    } else {
      last_bucket_family.clear();
      last_bucket_value = 0.0;
    }
    if (v.values.count(key) != 0) {
      v.errors.push_back("duplicate sample: " + key);
    }
    v.values[key] = value;
  }
  return v;
}

TEST(PrometheusExporter, RoundTripsThroughFormatValidation) {
  Registry reg;
  reg.counter("resmatch_ops_total", "Ops", {{"op", "submit"}}).inc(5);
  reg.counter("resmatch_ops_total", "Ops", {{"op", "feedback"}}).inc(3);
  reg.gauge("resmatch_queue_depth", "Depth").set(12.0);
  Histogram& h =
      reg.histogram("resmatch_latency_seconds", "Latency", {1e-6, 2.0, 10});
  h.record(1e-5);
  h.record(1e-4);
  h.record(5.0);  // +Inf bucket

  const std::string text = to_prometheus(reg.snapshot());
  const PromValidation v = validate_prometheus(text);
  for (const auto& e : v.errors) ADD_FAILURE() << e;

  EXPECT_EQ(v.types.at("resmatch_ops_total"), "counter");
  EXPECT_EQ(v.types.at("resmatch_queue_depth"), "gauge");
  EXPECT_EQ(v.types.at("resmatch_latency_seconds"), "histogram");
  EXPECT_DOUBLE_EQ(v.values.at("resmatch_ops_total{op=\"submit\"}"), 5.0);
  EXPECT_DOUBLE_EQ(v.values.at("resmatch_queue_depth"), 12.0);
  EXPECT_DOUBLE_EQ(v.values.at("resmatch_latency_seconds_count"), 3.0);
  // The +Inf bucket must equal _count (text exposition invariant).
  EXPECT_DOUBLE_EQ(
      v.values.at("resmatch_latency_seconds_bucket{le=\"+Inf\"}"), 3.0);
}

TEST(PrometheusExporter, EscapesLabelValues) {
  Registry reg;
  reg.counter("c_total", "", {{"path", "a\\b\"c\nd"}}).inc(1);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
}

// --- JSON exporter + bench records -------------------------------------------

/// Minimal structural JSON checker (objects, arrays, strings, numbers,
/// literals) — enough to reject truncated or mis-quoted exporter output.
bool json_valid(const std::string& s, std::size_t& i);

bool json_skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i < s.size();
}

bool json_string(const std::string& s, std::size_t& i) {
  if (s[i] != '"') return false;
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;
      continue;
    }
    if (s[i] == '"') {
      ++i;
      return true;
    }
  }
  return false;
}

bool json_valid(const std::string& s, std::size_t& i) {
  if (!json_skip_ws(s, i)) return false;
  const char c = s[i];
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    ++i;
    if (!json_skip_ws(s, i)) return false;
    if (s[i] == close) {
      ++i;
      return true;
    }
    while (true) {
      if (c == '{') {
        if (!json_skip_ws(s, i) || !json_string(s, i)) return false;
        if (!json_skip_ws(s, i) || s[i] != ':') return false;
        ++i;
      }
      if (!json_valid(s, i)) return false;
      if (!json_skip_ws(s, i)) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == close) {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (c == '"') return json_string(s, i);
  if (c == 't') { if (s.compare(i, 4, "true") != 0) return false; i += 4; return true; }
  if (c == 'f') { if (s.compare(i, 5, "false") != 0) return false; i += 5; return true; }
  if (c == 'n') { if (s.compare(i, 4, "null") != 0) return false; i += 4; return true; }
  const std::size_t start = i;
  while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                          s[i] == '-' || s[i] == '+' || s[i] == '.' ||
                          s[i] == 'e' || s[i] == 'E')) {
    ++i;
  }
  return i > start;
}

bool json_valid(const std::string& s) {
  std::size_t i = 0;
  if (!json_valid(s, i)) return false;
  return !json_skip_ws(s, i);  // no trailing garbage
}

TEST(JsonExporter, EmitsStructurallyValidJson) {
  Registry reg;
  reg.counter("c_total", "help \"quoted\"", {{"k", "v\n"}}).inc(2);
  reg.gauge("g", "").set(0.5);
  reg.histogram("h_seconds", "", {1e-6, 2.0, 8}).record(3e-4);
  const std::string json = to_json(reg.snapshot());
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

TEST(JsonExporter, NumbersAreAlwaysFinite) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(std::nan("")), "0");
  EXPECT_EQ(json_number(2.0), "2");
}

TEST(BenchRecord, WritesSchemaV1Json) {
  Registry reg;
  reg.counter("c_total", "").inc(1);

  BenchRecord record("unit_bench");
  record.config("mode", "sync");
  record.config("threads", static_cast<std::int64_t>(4));
  record.summary("jobs_per_sec", 1234.5);
  record.metrics(reg.snapshot());

  const std::string json = record.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_per_sec\":1234.5"), std::string::npos);

  const std::string path =
      (std::filesystem::temp_directory_path() / "BENCH_obs_unit.json")
          .string();
  ASSERT_TRUE(record.write(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), json);
  std::remove(path.c_str());
}

TEST(WriteFileAtomic, FailureLeavesExistingFileIntact) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "obs_atomic_unit.txt").string();
  ASSERT_TRUE(write_file_atomic(path, "first"));

  // A directory squatting on the deterministic temp name forces the
  // writer's open to fail before it can touch the real file.
  const std::string tmp = path + ".tmp";
  fs::create_directory(tmp);
  EXPECT_FALSE(write_file_atomic(path, "second"));
  fs::remove_all(tmp);

  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "first");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace resmatch::obs
