// Unit tests for the util substrate: RNG determinism and distribution
// sanity, string parsing, CSV escaping, CLI parsing, console tables.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/expected.hpp"
#include "util/rng.hpp"
#include "util/small_vector.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace resmatch::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(42);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(23);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.weighted_index(w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(Zipf, RankOneMostFrequent) {
  Rng rng(29);
  ZipfDistribution zipf(50, 1.2);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
}

TEST(Zipf, SamplesWithinRange) {
  Rng rng(31);
  ZipfDistribution zipf(10, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const auto r = zipf(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 10u);
  }
}

TEST(Mix64, StableAndSpread) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, ParseDouble) {
  EXPECT_EQ(parse_double("3.5"), 3.5);
  EXPECT_EQ(parse_double(" -2 "), -2.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("x").has_value());
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
}

TEST(Strings, FormatNumberTrimsZeros) {
  EXPECT_EQ(format_number(1.5), "1.5");
  EXPECT_EQ(format_number(2.0), "2");
  EXPECT_EQ(format_number(0.125, 4), "0.125");
}

TEST(Expected, ValueAndError) {
  Expected<int> ok(5);
  EXPECT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value(), 5);
  auto bad = Expected<int>::failure("nope");
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), "nope");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  const std::string path = "/tmp/resmatch_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.row(std::vector<std::string>{"1", "x,y"});
    EXPECT_EQ(csv.rows_written(), 1u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--alpha=2.5", "--verbose", "--name=test"};
  CliArgs args(4, argv);
  EXPECT_EQ(args.get("alpha", 0.0), 2.5);
  EXPECT_TRUE(args.get("verbose", false));
  EXPECT_EQ(args.get("name", std::string("x")), "test");
  EXPECT_EQ(args.get("missing", std::int64_t{7}), 7);
}

TEST(Cli, RejectsPositional) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(CliArgs(2, argv), std::runtime_error);
}

TEST(Cli, RejectsBadNumber) {
  const char* argv[] = {"prog", "--alpha=xyz"};
  CliArgs args(2, argv);
  EXPECT_THROW((void)args.get("alpha", 1.0), std::runtime_error);
}

TEST(Cli, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used=1", "--dangling=2"};
  CliArgs args(3, argv);
  (void)args.get("used", 0.0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "dangling");
}

TEST(Table, AlignsColumns) {
  ConsoleTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "2.5"});
  const std::string text = table.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, NumericRows) {
  ConsoleTable table({"a", "b"});
  table.add_numeric_row({1.25, 3.0});
  EXPECT_NE(table.render().find("1.25"), std::string::npos);
}

TEST(SmallVector, StaysInlineUpToCapacity) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.inlined());
  for (int i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.inlined());  // exactly N elements: still no heap
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 10);
}

TEST(SmallVector, SpillsToHeapPreservingContents) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 9; ++i) v.emplace_back(i);
  EXPECT_EQ(v.size(), 9u);
  EXPECT_FALSE(v.inlined());
  int expect = 0;
  for (const int x : v) EXPECT_EQ(x, expect++);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, CopyAndMoveSemantics) {
  SmallVector<int, 2> inl;
  inl.push_back(1);
  SmallVector<int, 2> heap;
  for (int i = 0; i < 5; ++i) heap.push_back(i);

  SmallVector<int, 2> copy_inl = inl;
  SmallVector<int, 2> copy_heap = heap;
  EXPECT_EQ(copy_inl, inl);
  EXPECT_EQ(copy_heap, heap);

  SmallVector<int, 2> moved = std::move(copy_heap);
  EXPECT_EQ(moved, heap);
  EXPECT_TRUE(copy_heap.empty());  // moved-from: reset, still usable
  copy_heap.push_back(42);
  EXPECT_EQ(copy_heap.size(), 1u);

  copy_inl = heap;  // inline -> heap assignment
  EXPECT_EQ(copy_inl, heap);
  copy_inl = inl;  // heap -> inline assignment
  EXPECT_EQ(copy_inl, inl);
}

TEST(SmallVector, EqualityComparesValues) {
  SmallVector<int, 2> a, b;
  for (int i = 0; i < 5; ++i) {
    a.push_back(i);
    b.push_back(i);
  }
  EXPECT_EQ(a, b);
  b.push_back(99);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace resmatch::util
