#include "net/protocol.hpp"

#include <cstring>

#include "util/frame.hpp"

namespace resmatch::net {

namespace {

constexpr std::size_t kEnvelopePrefix = 9;  // u8 type + u64 request_id

// --- primitive writers (host-endian, via memcpy) ----------------------------

void put_u8(std::vector<char>& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::vector<char>& out, std::uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  out.insert(out.end(), b, b + 2);
}

void put_u32v(std::vector<char>& out, std::uint32_t v) {
  util::put_u32(out, v);
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.insert(out.end(), b, b + 8);
}

void put_f64(std::vector<char>& out, double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.insert(out.end(), b, b + 8);
}

// --- primitive readers: a cursor that refuses to run off the payload --------

struct Reader {
  const char* p = nullptr;
  std::size_t left = 0;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    take(&v, 2);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, 8);
    return v;
  }
  double f64() {
    double v = 0.0;
    take(&v, 8);
    return v;
  }
};

// --- composite fields --------------------------------------------------------

void put_job(std::vector<char>& out, const trace::JobRecord& job) {
  put_u64(out, job.id);
  put_f64(out, job.submit);
  put_f64(out, job.runtime);
  put_f64(out, job.requested_time);
  put_u32v(out, job.nodes);
  put_f64(out, job.requested_mem_mib);
  put_f64(out, job.used_mem_mib);
  put_u32v(out, job.user);
  put_u32v(out, job.app);
  put_u32v(out, static_cast<std::uint32_t>(static_cast<int>(job.status)));
}

trace::JobRecord read_job(Reader& r) {
  trace::JobRecord job;
  job.id = r.u64();
  job.submit = r.f64();
  job.runtime = r.f64();
  job.requested_time = r.f64();
  job.nodes = r.u32();
  job.requested_mem_mib = r.f64();
  job.used_mem_mib = r.f64();
  job.user = r.u32();
  job.app = r.u32();
  job.status = static_cast<trace::JobStatus>(static_cast<int>(r.u32()));
  return job;
}

void put_str(std::vector<char>& out, const std::string& s) {
  put_u32v(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_str(Reader& r) {
  const std::uint32_t n = r.u32();
  // Length-vs-remaining check before allocating: a hostile length word
  // must fail the read, not size a buffer.
  if (!r.ok || r.left < n) {
    r.ok = false;
    return {};
  }
  std::string s(r.p, n);
  r.p += n;
  r.left -= n;
  return s;
}

void put_feedback(std::vector<char>& out, const core::Feedback& fb) {
  put_u8(out, fb.success ? 1 : 0);
  put_f64(out, fb.granted_mib);
  put_u8(out, fb.used_mib.has_value() ? 1 : 0);
  put_f64(out, fb.used_mib.value_or(0.0));
  put_u8(out, fb.resource_failure.has_value() ? 1 : 0);
  put_u8(out, fb.resource_failure.value_or(false) ? 1 : 0);
}

core::Feedback read_feedback(Reader& r) {
  core::Feedback fb;
  fb.success = r.u8() != 0;
  fb.granted_mib = r.f64();
  const bool has_used = r.u8() != 0;
  const double used = r.f64();
  if (has_used) fb.used_mib = used;
  const bool has_rf = r.u8() != 0;
  const bool rf = r.u8() != 0;
  if (has_rf) fb.resource_failure = rf;
  return fb;
}

/// Open a frame and stamp the envelope prefix; pair with util::frame_end.
std::size_t envelope_begin(std::vector<char>& out, MsgType type,
                           std::uint64_t request_id) {
  const std::size_t mark = util::frame_begin(out);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u64(out, request_id);
  return mark;
}

}  // namespace

void encode_magic(std::vector<char>& out) {
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const EstimateReq& body) {
  const std::size_t mark = envelope_begin(out, MsgType::kEstimate, request_id);
  put_job(out, body.job);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const PreviewReq& body) {
  const std::size_t mark = envelope_begin(out, MsgType::kPreview, request_id);
  put_job(out, body.job);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const FeedbackReq& body) {
  const std::size_t mark = envelope_begin(out, MsgType::kFeedback, request_id);
  put_job(out, body.job);
  put_feedback(out, body.fb);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const CancelReq& body) {
  const std::size_t mark = envelope_begin(out, MsgType::kCancel, request_id);
  put_job(out, body.job);
  put_f64(out, body.granted);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const CheckpointReq& /*body*/) {
  const std::size_t mark =
      envelope_begin(out, MsgType::kCheckpoint, request_id);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const HealthReq& /*body*/) {
  const std::size_t mark = envelope_begin(out, MsgType::kHealth, request_id);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const StatsReq& /*body*/) {
  const std::size_t mark = envelope_begin(out, MsgType::kStats, request_id);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const MatchReq& body) {
  const std::size_t mark = envelope_begin(out, MsgType::kMatch, request_id);
  put_u32v(out, static_cast<std::uint32_t>(body.attrs.size()));
  for (const auto& [name, source] : body.attrs) {
    put_str(out, name);
    put_str(out, source);
  }
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const EstimateResp& body) {
  const std::size_t mark =
      envelope_begin(out, MsgType::kEstimateResp, request_id);
  put_f64(out, body.granted_mib);
  put_u8(out, body.lowered ? 1 : 0);
  put_u64(out, body.group_key);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const PreviewResp& body) {
  const std::size_t mark =
      envelope_begin(out, MsgType::kPreviewResp, request_id);
  put_f64(out, body.granted_mib);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const Ack& body) {
  const std::size_t mark = envelope_begin(out, MsgType::kAck, request_id);
  put_u8(out, body.ok ? 1 : 0);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const HealthResp& body) {
  const std::size_t mark =
      envelope_begin(out, MsgType::kHealthResp, request_id);
  put_u8(out, body.degraded ? 1 : 0);
  put_u8(out, body.wal_enabled ? 1 : 0);
  put_u64(out, body.groups);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const StatsResp& body) {
  const std::size_t mark =
      envelope_begin(out, MsgType::kStatsResp, request_id);
  put_u64(out, body.submissions);
  put_u64(out, body.rewrites);
  put_u64(out, body.successes);
  put_u64(out, body.failures);
  put_u64(out, body.cancels);
  put_u64(out, body.groups);
  put_u64(out, body.evictions);
  put_u64(out, body.degraded_ops);
  put_u64(out, body.wal_appends);
  put_u64(out, body.compactions);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const MatchResp& body) {
  const std::size_t mark =
      envelope_begin(out, MsgType::kMatchResp, request_id);
  put_u32v(out, static_cast<std::uint32_t>(body.rows.size()));
  for (const std::uint32_t row : body.rows) put_u32v(out, row);
  util::frame_end(out, mark);
}

void encode(std::vector<char>& out, std::uint64_t request_id,
            const ErrorResp& body) {
  const std::size_t mark = envelope_begin(out, MsgType::kError, request_id);
  put_u16(out, static_cast<std::uint16_t>(body.code));
  out.insert(out.end(), body.message.begin(), body.message.end());
  util::frame_end(out, mark);
}

void encode_envelope(std::vector<char>& out, const Envelope& envelope) {
  std::visit(
      [&](const auto& body) { encode(out, envelope.request_id, body); },
      envelope.body);
}

util::Expected<Envelope> decode_payload(const char* payload,
                                        std::size_t len) {
  using Result = util::Expected<Envelope>;
  if (len < kEnvelopePrefix) return Result::failure("payload too short");

  Reader r{payload, len, true};
  Envelope env;
  env.type = static_cast<MsgType>(r.u8());
  env.request_id = r.u64();

  switch (env.type) {
    case MsgType::kEstimate:
      env.body = EstimateReq{read_job(r)};
      break;
    case MsgType::kPreview:
      env.body = PreviewReq{read_job(r)};
      break;
    case MsgType::kFeedback: {
      FeedbackReq body;
      body.job = read_job(r);
      body.fb = read_feedback(r);
      env.body = std::move(body);
      break;
    }
    case MsgType::kCancel: {
      CancelReq body;
      body.job = read_job(r);
      body.granted = r.f64();
      env.body = std::move(body);
      break;
    }
    case MsgType::kCheckpoint:
      env.body = CheckpointReq{};
      break;
    case MsgType::kHealth:
      env.body = HealthReq{};
      break;
    case MsgType::kStats:
      env.body = StatsReq{};
      break;
    case MsgType::kMatch: {
      MatchReq body;
      const std::uint32_t count = r.u32();
      // Two u32 length words per attr is the floor; a count beyond that
      // bound is a lie about the payload, not a reason to reserve.
      if (!r.ok || count > r.left / 8) {
        return Result::failure("implausible match attr count");
      }
      body.attrs.reserve(count);
      for (std::uint32_t i = 0; r.ok && i < count; ++i) {
        std::string name = read_str(r);
        std::string source = read_str(r);
        body.attrs.emplace_back(std::move(name), std::move(source));
      }
      env.body = std::move(body);
      break;
    }
    case MsgType::kEstimateResp: {
      EstimateResp body;
      body.granted_mib = r.f64();
      body.lowered = r.u8() != 0;
      body.group_key = r.u64();
      env.body = body;
      break;
    }
    case MsgType::kPreviewResp: {
      PreviewResp body;
      body.granted_mib = r.f64();
      env.body = body;
      break;
    }
    case MsgType::kAck: {
      Ack body;
      body.ok = r.u8() != 0;
      env.body = body;
      break;
    }
    case MsgType::kHealthResp: {
      HealthResp body;
      body.degraded = r.u8() != 0;
      body.wal_enabled = r.u8() != 0;
      body.groups = r.u64();
      env.body = body;
      break;
    }
    case MsgType::kStatsResp: {
      StatsResp body;
      body.submissions = r.u64();
      body.rewrites = r.u64();
      body.successes = r.u64();
      body.failures = r.u64();
      body.cancels = r.u64();
      body.groups = r.u64();
      body.evictions = r.u64();
      body.degraded_ops = r.u64();
      body.wal_appends = r.u64();
      body.compactions = r.u64();
      env.body = body;
      break;
    }
    case MsgType::kMatchResp: {
      MatchResp body;
      const std::uint32_t count = r.u32();
      if (!r.ok || count > r.left / 4) {
        return Result::failure("implausible match row count");
      }
      body.rows.reserve(count);
      for (std::uint32_t i = 0; r.ok && i < count; ++i) {
        body.rows.push_back(r.u32());
      }
      env.body = std::move(body);
      break;
    }
    case MsgType::kError: {
      ErrorResp body;
      body.code = static_cast<ErrorCode>(r.u16());
      if (r.ok) body.message.assign(r.p, r.left);
      r.left = 0;
      env.body = std::move(body);
      break;
    }
    default:
      return Result::failure("unknown message type " +
                             std::to_string(static_cast<unsigned>(env.type)));
  }

  if (!r.ok) return Result::failure("truncated message body");
  if (r.left != 0) return Result::failure("trailing bytes after message body");
  return env;
}

void Decoder::feed(const char* data, std::size_t n) {
  // Compact lazily: drop consumed bytes once they dominate the buffer so
  // a long-lived connection does not grow it without bound.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

util::Expected<std::optional<Envelope>> Decoder::next() {
  using Result = util::Expected<std::optional<Envelope>>;
  if (broken_) return Result::failure("stream already broken");

  const char* data = buf_.data() + consumed_;
  std::size_t avail = buf_.size() - consumed_;

  if (need_magic_) {
    if (avail < sizeof(kMagic)) return Result{std::nullopt};
    if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
      broken_ = true;
      return Result::failure("bad connection magic");
    }
    consumed_ += sizeof(kMagic);
    data += sizeof(kMagic);
    avail -= sizeof(kMagic);
    need_magic_ = false;
  }

  util::FrameView frame;
  switch (util::parse_frame(data, avail, kMaxPayload, frame)) {
    case util::FrameParseStatus::kNeedMore:
      return Result{std::nullopt};
    case util::FrameParseStatus::kBad:
      broken_ = true;
      return Result::failure("corrupt frame (bad length or CRC)");
    case util::FrameParseStatus::kOk:
      break;
  }

  auto envelope = decode_payload(frame.payload, frame.len);
  if (!envelope) {
    broken_ = true;
    return Result::failure(envelope.error());
  }
  consumed_ += frame.frame_size;
  return Result{std::optional<Envelope>(std::move(envelope.value()))};
}

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kEstimate: return "estimate";
    case MsgType::kPreview: return "preview";
    case MsgType::kFeedback: return "feedback";
    case MsgType::kCancel: return "cancel";
    case MsgType::kCheckpoint: return "checkpoint";
    case MsgType::kHealth: return "health";
    case MsgType::kStats: return "stats";
    case MsgType::kMatch: return "match";
    case MsgType::kEstimateResp: return "estimate_resp";
    case MsgType::kPreviewResp: return "preview_resp";
    case MsgType::kAck: return "ack";
    case MsgType::kHealthResp: return "health_resp";
    case MsgType::kStatsResp: return "stats_resp";
    case MsgType::kMatchResp: return "match_resp";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

}  // namespace resmatch::net
