// net::Router — consistent-hash routing over N matchd shard endpoints.
//
// The router is the cluster face of svc::Matchd: it exposes the same
// submit / preview / feedback / cancel verbs, computes the job's
// similarity key locally (the same key function the shards use), and
// routes every operation for one group to one shard via a consistent-hash
// ring of virtual nodes. Groups are disjoint across shards, so a serial
// drive through the router replays the exact per-group state trajectories
// a single-process matchd would produce — decision equivalence, enforced
// byte-for-byte by examples/cluster_replay in CI.
//
// Ring: `vnodes` points per shard, placed by mixing (shard, vnode) with
// the splitmix64 finalizer; a key routes to the first point clockwise.
// Adding or removing one shard therefore moves ~1/N of the keyspace and
// leaves every other group pinned — net_test asserts this stability.
//
// Failure model (mirrors Matchd's own degraded mode, one level up):
//   * a transport failure retries under util::RetryPolicy — reconnect,
//     deterministic backoff jitter seeded per shard;
//   * past retry exhaustion the SHARD (not the router) enters degraded
//     pass-through: submissions get the rounded raw request (never a
//     lowered grant), feedback/cancel are dropped and counted;
//   * while degraded, each operation for that shard first sends one
//     cheap health probe over a fresh connection; the first probe that
//     answers restores normal routing — no rerouting of keys, ever,
//     because moving a group mid-flight would fork its learning state.
//
// The router is deliberately threadless and blocking (no heartbeat
// thread): callers drive probes, which keeps it fork-safe for the
// multi-process harness and deterministic under serial drive. It is NOT
// thread-safe; give each thread its own router or add external locking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "core/similarity.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "svc/matchd.hpp"
#include "util/retry.hpp"

namespace resmatch::net {

/// One shard's address: UDS when `uds_path` is set, TCP otherwise.
struct ShardEndpoint {
  std::string uds_path;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
};

struct RouterConfig {
  std::vector<ShardEndpoint> shards;
  /// Virtual nodes per shard on the hash ring.
  std::size_t vnodes = 64;
  /// Similarity key; null = the paper's (user, app, requested memory).
  /// MUST match the shards' key function, or grouping splits.
  core::SimilarityKeyFn key_fn;
  /// Capacity ladder for degraded pass-through grants. Must equal the
  /// shards' ladder for equivalence to hold in degraded mode.
  core::CapacityLadder ladder;
  /// Per-request transport retry (reconnect between attempts).
  util::RetryPolicy retry{.max_attempts = 5,
                          .initial_backoff = std::chrono::microseconds(200),
                          .max_backoff = std::chrono::microseconds(50'000)};
  /// Base seed for backoff jitter (mixed with the shard index).
  std::uint64_t retry_seed = 0x5EEDB00Cu;
  /// Observability registry (not owned; must outlive the router).
  obs::Registry* metrics = nullptr;
};

struct RouterStats {
  std::uint64_t requests = 0;       ///< operations routed (all verbs)
  std::uint64_t retries = 0;        ///< transport attempts beyond the first
  std::uint64_t reconnects = 0;     ///< successful re-dials
  std::uint64_t degraded_ops = 0;   ///< ops served pass-through / dropped
  std::uint64_t probes = 0;         ///< health probes sent while degraded
  std::vector<bool> shard_healthy;  ///< per shard, indexed as configured
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Dial every shard. Failure lists the shards that refused; they start
  /// degraded and self-heal via per-operation probes once reachable.
  [[nodiscard]] util::Expected<bool> connect();

  // --- matchd verbs, routed by similarity key ----------------------------

  [[nodiscard]] svc::MatchDecision submit(const trace::JobRecord& job);
  [[nodiscard]] MiB preview(const trace::JobRecord& job);
  void feedback(const trace::JobRecord& job, const core::Feedback& fb);
  void cancel(const trace::JobRecord& job, MiB granted);

  // --- cluster-wide operations -------------------------------------------

  /// Checkpoint every reachable shard; false if any failed (degraded
  /// shards are skipped and counted as failures).
  [[nodiscard]] bool checkpoint_all();

  /// Sum of per-shard service counters over reachable shards.
  [[nodiscard]] StatsResp aggregate_stats();

  // --- introspection ------------------------------------------------------

  /// Ring lookup for a raw similarity key (exposed for the stability
  /// tests and the harness's shard-expectation checks).
  [[nodiscard]] std::size_t shard_of_key(std::uint64_t key) const noexcept;
  [[nodiscard]] std::size_t shard_of(const trace::JobRecord& job) const;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return config_.shards.size();
  }
  [[nodiscard]] bool shard_degraded(std::size_t shard) const;
  [[nodiscard]] RouterStats stats() const;

 private:
  struct Shard {
    Client client;
    bool degraded = true;  ///< until connect() or a probe succeeds
    std::uint32_t probes_sent = 0;
  };

  /// One ring point: key-space position -> shard index.
  struct RingPoint {
    std::uint64_t point = 0;
    std::uint32_t shard = 0;
  };

  void build_ring();
  [[nodiscard]] bool dial(std::size_t shard);
  /// While degraded: one reconnect + health probe; true = healed.
  [[nodiscard]] bool probe(std::size_t shard);
  /// Run `op` against a shard with reconnect-and-retry. Returns false
  /// after exhaustion (caller degrades the shard).
  template <typename Op>
  [[nodiscard]] bool with_retry(std::size_t shard, Op&& op);
  [[nodiscard]] MiB degraded_grant(const trace::JobRecord& job) const;

  void register_metrics();
  void unregister_metrics();

  RouterConfig config_;
  core::SimilarityKeyFn key_fn_;
  std::vector<Shard> shards_;
  std::vector<RingPoint> ring_;  ///< sorted by point

  std::uint64_t requests_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t degraded_ops_ = 0;
  std::uint64_t probes_ = 0;

  std::vector<std::pair<std::string, obs::Labels>> provider_keys_;
};

}  // namespace resmatch::net
