// net::Server — epoll event-loop front end for a local svc::Matchd.
//
// One server owns one epoll instance, listens on a Unix-domain socket
// and/or a TCP socket, and serves the matchd wire protocol (protocol.hpp)
// to any number of concurrent connections:
//
//   * per-connection read decoder and write buffer; partial writes park on
//     EPOLLOUT, so one slow client never blocks the loop;
//   * pipelining: many outstanding request ids per connection, with a
//     per-connection in-flight cap — past it the server stops reading that
//     socket (kernel backpressure) until responses drain;
//   * admission-queue backpressure: when the matchd runs workers, request
//     processing goes through its bounded admission queue; a full queue is
//     answered with ErrorCode::kBackpressure instead of queueing unboundedly
//     (workers call back into the loop through an eventfd-signaled
//     completion list). Without workers, requests are served inline —
//     matchd's synchronous API is thread-safe and fast;
//   * idle reaping: connections silent past idle_timeout are closed;
//   * a protocol error (bad magic, corrupt frame, malformed body) closes
//     the connection — nothing after a broken frame can be trusted.
//
// The loop runs either on the caller's thread (run(), for dedicated shard
// processes — see examples/cluster_replay) or on a background thread
// (start()/stop(), for in-process tests and benches).
//
// Instrumentation (config.metrics): resmatch_net_* series documented in
// OPERATIONS.md "Network tier".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "svc/matchd.hpp"
#include "util/expected.hpp"

namespace resmatch::match {
class ClassAd;
class MachineTable;
}  // namespace resmatch::match

namespace resmatch::net {

struct ServerConfig {
  /// Unix-domain socket path; empty = no UDS listener. An existing socket
  /// file at the path is replaced (stale sockets of a killed predecessor).
  std::string uds_path;
  /// TCP listener; port 0 binds an ephemeral port (read it back with
  /// tcp_port()).
  bool tcp = false;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
  /// Close connections with no traffic for this long. 0 = never reap.
  std::chrono::milliseconds idle_timeout{0};
  /// Outstanding requests per connection before the server stops reading
  /// that socket until responses drain.
  std::size_t max_pipeline = 64;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 1024;
  /// Observability registry (not owned; must outlive the server).
  obs::Registry* metrics = nullptr;
  /// Machine population served by the kMatch verb (not owned; must
  /// outlive the server and stay unmodified while it runs). Null =
  /// kMatch answers kBadRequest. The server columnarizes it into a
  /// MachineTable on first use and ranks with the compiled matcher.
  const std::vector<match::ClassAd>* machines = nullptr;
};

struct ServerStats {
  std::uint64_t accepts = 0;
  std::uint64_t closes = 0;
  std::uint64_t requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t backpressure_rejects = 0;
  std::uint64_t idle_reaped = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::size_t connections = 0;  ///< currently open
};

class Server {
 public:
  /// `matchd` is not owned and must outlive the server.
  Server(svc::Matchd& matchd, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Create the listeners. After bind() returns success the endpoints are
  /// connectable (connections queue in the kernel until the loop runs).
  [[nodiscard]] util::Expected<bool> bind();

  /// Run the event loop on this thread until stop() is called from
  /// another thread (or a signal handler writes the stop eventfd).
  /// Calls bind() first if it has not run yet.
  void run();

  /// bind() + run the loop on a background thread. False if bind failed
  /// (error printed to the log).
  [[nodiscard]] bool start();

  /// Signal the loop to exit and, if start() spawned the thread, join it.
  /// Safe to call repeatedly and from any thread.
  void stop();

  /// Actual TCP port after bind() (0 when no TCP listener).
  [[nodiscard]] std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t serial = 0;
    Decoder decoder;               ///< expects the client magic first
    std::vector<char> out;         ///< encoded responses not yet written
    std::size_t out_offset = 0;    ///< bytes of `out` already written
    std::size_t in_flight = 0;     ///< async requests awaiting completion
    bool want_write = false;       ///< EPOLLOUT armed
    bool paused = false;           ///< EPOLLIN dropped (pipeline cap)
    bool closing = false;          ///< close once in_flight drains
    std::chrono::steady_clock::time_point last_active;
  };

  /// A response produced on a matchd worker thread, routed back to the
  /// loop through the eventfd.
  struct Completion {
    std::uint64_t serial = 0;
    std::vector<char> bytes;
  };

  void loop();
  void handle_accept(int listen_fd);
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void drain_decoder(Conn& conn);
  /// Serve one request; appends the response to conn.out or registers an
  /// async completion. Returns false when the connection must close.
  [[nodiscard]] bool serve(Conn& conn, Envelope&& envelope);
  void serve_inline(Conn& conn, const Envelope& envelope,
                    std::chrono::steady_clock::time_point t0);
  void serve_match(Conn& conn, std::uint64_t request_id,
                   const MatchReq& req);
  void post_completion(std::uint64_t serial, std::vector<char>&& bytes);
  void flush_completions();
  void try_write(Conn& conn);
  void update_epoll(Conn& conn);
  void close_conn(std::uint64_t serial);
  void reap_idle();
  void record_latency(std::chrono::steady_clock::time_point t0);

  void register_metrics();
  void unregister_metrics();

  svc::Matchd* matchd_;
  ServerConfig config_;
  /// Columnar form of config_.machines, built lazily on the first kMatch
  /// (loop thread only — no locking needed).
  std::unique_ptr<match::MachineTable> machine_table_;

  int epoll_fd_ = -1;
  int uds_fd_ = -1;
  int tcp_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: stop requests and async completions
  std::uint16_t tcp_port_ = 0;
  bool bound_ = false;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_serial_ = 16;  ///< below 16 = listener/eventfd slots

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  std::atomic<bool> stopping_{false};
  std::thread thread_;
  std::mutex lifecycle_mutex_;  ///< serializes start()/stop()

  // Counters (atomic: read by stats()/providers off-loop).
  std::atomic<std::uint64_t> accepts_{0};
  std::atomic<std::uint64_t> closes_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> backpressure_rejects_{0};
  std::atomic<std::uint64_t> idle_reaped_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::size_t> open_conns_{0};

  obs::Histogram* latency_hist_ = nullptr;
  obs::Counter* request_counters_[9] = {};  ///< indexed by request MsgType
  std::vector<std::pair<std::string, obs::Labels>> provider_keys_;
};

}  // namespace resmatch::net
