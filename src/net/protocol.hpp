// matchd wire protocol v1 — a framed binary codec, pure and fuzz-friendly.
//
// A connection in either direction opens with the 8-byte magic "RSMNET01"
// (protocol + version, mirroring the WAL's file magic), then carries a
// stream of CRC-framed messages using the same frame layout as the WAL
// (util/frame.hpp):
//
//   u32 payload_len | u32 crc32(payload) | payload
//   payload = u8 msg_type | u64 request_id | type-specific body
//
// Request ids are caller-chosen and echoed verbatim on the response, so
// clients may pipeline many requests per connection and match responses
// out of order. Byte order is host-endian (documented single-architecture
// cluster scope, DESIGN.md §7); all field packing goes through memcpy, so
// decoding never trips alignment.
//
// This header is deliberately transport-free: encode_* appends complete
// frames to a byte vector, Decoder consumes raw bytes from anywhere. The
// decoder never throws and never crashes on hostile input — a torn,
// corrupt, oversized, or unknown frame yields a clean ProtocolError, which
// the net_test fuzz-lite loop asserts over seeded random byte strings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/estimator.hpp"
#include "trace/job_record.hpp"
#include "util/expected.hpp"

namespace resmatch::net {

/// Connection preamble, sent by each side immediately after connect.
inline constexpr char kMagic[8] = {'R', 'S', 'M', 'N', 'E', 'T', '0', '1'};

/// Upper bound on one message payload; a length word beyond it is a
/// protocol error, not an allocation.
inline constexpr std::uint32_t kMaxPayload = 1 << 20;

enum class MsgType : std::uint8_t {
  // requests
  kEstimate = 1,    ///< commit a submission, get the effective grant
  kPreview = 2,     ///< what kEstimate would grant, committing nothing
  kFeedback = 3,    ///< report an attempt's outcome
  kCancel = 4,      ///< undo the latest estimate for a job that never ran
  kCheckpoint = 5,  ///< compact the shard's WAL into a fresh snapshot
  kHealth = 6,      ///< liveness + degraded-mode probe
  kStats = 7,       ///< shard service counters
  kMatch = 8,       ///< rank the machine population against a request ad
  // responses (high bit set)
  kEstimateResp = 0x81,
  kPreviewResp = 0x82,
  kAck = 0x83,  ///< feedback / cancel / checkpoint completion
  kHealthResp = 0x84,
  kStatsResp = 0x85,
  kMatchResp = 0x86,
  kError = 0xFF,
};

enum class ErrorCode : std::uint16_t {
  kBadRequest = 1,    ///< malformed body; the connection should close
  kBackpressure = 2,  ///< admission queue full; retry later
  kInternal = 3,      ///< server-side failure (e.g. checkpoint I/O)
};

// --- message bodies ----------------------------------------------------------

struct EstimateReq {
  trace::JobRecord job;
};

struct PreviewReq {
  trace::JobRecord job;
};

struct FeedbackReq {
  trace::JobRecord job;
  core::Feedback fb;
};

struct CancelReq {
  trace::JobRecord job;
  MiB granted = 0.0;
};

struct CheckpointReq {};
struct HealthReq {};
struct StatsReq {};

/// A request ClassAd in source form: (attribute name, expression source)
/// pairs, e.g. {"requirements", "other.memory >= my.req_memory"}. Shipping
/// source instead of a serialized AST keeps the wire format stable across
/// matcher-internals changes; the server parses on receipt and answers
/// kBadRequest for anything its grammar rejects.
struct MatchReq {
  std::vector<std::pair<std::string, std::string>> attrs;
};

struct EstimateResp {
  MiB granted_mib = 0.0;
  bool lowered = false;
  std::uint64_t group_key = 0;
};

struct PreviewResp {
  MiB granted_mib = 0.0;
};

struct Ack {
  bool ok = true;
};

struct HealthResp {
  bool degraded = false;
  bool wal_enabled = false;
  std::uint64_t groups = 0;
};

/// Flattened shard counters (the remote face of svc::MatchdStats).
struct StatsResp {
  std::uint64_t submissions = 0;
  std::uint64_t rewrites = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t cancels = 0;
  std::uint64_t groups = 0;
  std::uint64_t evictions = 0;
  std::uint64_t degraded_ops = 0;
  std::uint64_t wal_appends = 0;
  std::uint64_t compactions = 0;
};

/// Machine rows matching the request, best rank first — exactly the
/// index order match::rank_matches_compiled returns over the server's
/// machine table.
struct MatchResp {
  std::vector<std::uint32_t> rows;
};

struct ErrorResp {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

using MessageBody =
    std::variant<EstimateReq, PreviewReq, FeedbackReq, CancelReq,
                 CheckpointReq, HealthReq, StatsReq, MatchReq, EstimateResp,
                 PreviewResp, Ack, HealthResp, StatsResp, MatchResp,
                 ErrorResp>;

/// One decoded message: its type tag, pipelining id, and typed body.
struct Envelope {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  MessageBody body;
};

// --- encoding ----------------------------------------------------------------

/// Append the connection preamble.
void encode_magic(std::vector<char>& out);

/// Append one complete frame carrying `body` under `request_id`. The
/// overload set covers every MessageBody alternative.
void encode(std::vector<char>& out, std::uint64_t request_id,
            const EstimateReq& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const PreviewReq& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const FeedbackReq& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const CancelReq& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const CheckpointReq& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const HealthReq& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const StatsReq& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const MatchReq& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const EstimateResp& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const PreviewResp& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const Ack& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const HealthResp& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const StatsResp& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const MatchResp& body);
void encode(std::vector<char>& out, std::uint64_t request_id,
            const ErrorResp& body);

/// Append an already-built envelope (dispatches on the body alternative).
void encode_envelope(std::vector<char>& out, const Envelope& envelope);

// --- decoding ----------------------------------------------------------------

/// Decode one frame payload (the bytes between two frame headers) into a
/// typed envelope. Failure = malformed body or unknown type; the frame
/// itself already passed its CRC.
[[nodiscard]] util::Expected<Envelope> decode_payload(const char* payload,
                                                      std::size_t len);

/// Incremental frame decoder over a byte stream. Feed raw bytes from the
/// transport; next() yields envelopes until the buffer runs dry
/// (nullopt) or the stream turns out to be broken (failure — close the
/// connection, nothing after a bad frame can be trusted).
class Decoder {
 public:
  /// `expect_magic`: the stream must start with kMagic (the connection
  /// preamble). Pass false when decoding mid-stream captures.
  explicit Decoder(bool expect_magic = true) : need_magic_(expect_magic) {}

  void feed(const char* data, std::size_t n);

  /// Next complete message, nullopt when more bytes are needed, failure
  /// when the stream is corrupt (bad magic, implausible length, CRC
  /// mismatch, malformed body). After a failure every subsequent call
  /// fails too.
  [[nodiscard]] util::Expected<std::optional<Envelope>> next();

  /// Bytes currently buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - consumed_;
  }

 private:
  std::vector<char> buf_;
  std::size_t consumed_ = 0;
  bool need_magic_;
  bool broken_ = false;
};

/// Human-readable type tag for diagnostics and metrics labels.
[[nodiscard]] const char* to_string(MsgType type) noexcept;

}  // namespace resmatch::net
