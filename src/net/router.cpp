#include "net/router.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace resmatch::net {

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      key_fn_(config_.key_fn ? config_.key_fn
                             : core::default_similarity_key) {
  shards_.resize(config_.shards.size());
  build_ring();
  register_metrics();
}

Router::~Router() { unregister_metrics(); }

void Router::build_ring() {
  ring_.clear();
  ring_.reserve(shards_.size() * config_.vnodes);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t v = 0; v < config_.vnodes; ++v) {
      // Position = mix(shard, vnode). Depends only on the shard's index
      // and the vnode count, so the same topology always yields the same
      // ring — a restarted router routes identically.
      const std::uint64_t point =
          util::mix64((static_cast<std::uint64_t>(s) << 32) ^ v ^
                      0xC0FFEE0000000000ULL);
      ring_.push_back(RingPoint{point, static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.point < b.point ||
                     (a.point == b.point && a.shard < b.shard);
            });
}

std::size_t Router::shard_of_key(std::uint64_t key) const noexcept {
  if (ring_.empty()) return 0;
  // Similarity keys are already hashes, but mix again so ring position is
  // decorrelated from the store's shard striping.
  const std::uint64_t point = util::mix64(key ^ 0xD15C0000D15C0000ULL);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const RingPoint& p, std::uint64_t x) { return p.point < x; });
  if (it == ring_.end()) it = ring_.begin();  // wrap: first point clockwise
  return it->shard;
}

std::size_t Router::shard_of(const trace::JobRecord& job) const {
  return shard_of_key(key_fn_(job));
}

bool Router::dial(std::size_t shard) {
  const ShardEndpoint& ep = config_.shards[shard];
  auto ok = ep.uds_path.empty()
                ? shards_[shard].client.connect_tcp(ep.tcp_host, ep.tcp_port)
                : shards_[shard].client.connect_uds(ep.uds_path);
  if (ok) ++reconnects_;
  return ok.has_value();
}

util::Expected<bool> Router::connect() {
  using Result = util::Expected<bool>;
  std::string refused;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (dial(s)) {
      shards_[s].degraded = false;
    } else {
      if (!refused.empty()) refused += ", ";
      refused += std::to_string(s);
    }
  }
  if (!refused.empty()) {
    return Result::failure("shards unreachable: " + refused);
  }
  return true;
}

bool Router::probe(std::size_t shard) {
  ++probes_;
  ++shards_[shard].probes_sent;
  if (!dial(shard)) return false;
  auto health = shards_[shard].client.health();
  if (!health) return false;
  shards_[shard].degraded = false;
  RM_LOG(kInfo) << "net::Router: shard " << shard
                << " healed after " << shards_[shard].probes_sent
                << " probe(s)";
  shards_[shard].probes_sent = 0;
  return true;
}

template <typename Op>
bool Router::with_retry(std::size_t shard, Op&& op) {
  const std::uint64_t seed =
      config_.retry_seed ^ util::mix64(shard + 1);
  const std::uint32_t max_attempts =
      config_.retry.max_attempts > 0 ? config_.retry.max_attempts : 1;
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      ++retries_;
      std::this_thread::sleep_for(
          config_.retry.backoff_for(attempt - 1, seed));
      if (!dial(shard)) continue;
    }
    if (shards_[shard].client.connected() && op(shards_[shard].client)) {
      return true;
    }
  }
  return false;
}

MiB Router::degraded_grant(const trace::JobRecord& job) const {
  // Pass-through: the rounded raw request, never a lowered grant —
  // byte-identical to what a degraded Matchd itself would serve.
  return config_.ladder.round_up(job.requested_mem_mib);
}

svc::MatchDecision Router::submit(const trace::JobRecord& job) {
  ++requests_;
  const std::uint64_t key = key_fn_(job);
  const std::size_t shard = shard_of_key(key);
  if (shards_[shard].degraded && !probe(shard)) {
    ++degraded_ops_;
    return svc::MatchDecision{degraded_grant(job), false, key};
  }
  svc::MatchDecision decision;
  const bool ok = with_retry(shard, [&](Client& c) {
    auto resp = c.estimate(job);
    if (!resp) return false;
    decision = svc::MatchDecision{resp.value().granted_mib,
                                  resp.value().lowered,
                                  resp.value().group_key};
    return true;
  });
  if (ok) return decision;
  shards_[shard].degraded = true;
  ++degraded_ops_;
  RM_LOG(kWarn) << "net::Router: shard " << shard
                << " degraded (submit retries exhausted)";
  return svc::MatchDecision{degraded_grant(job), false, key};
}

MiB Router::preview(const trace::JobRecord& job) {
  ++requests_;
  const std::size_t shard = shard_of(job);
  if (shards_[shard].degraded && !probe(shard)) {
    ++degraded_ops_;
    return degraded_grant(job);
  }
  MiB granted = 0.0;
  const bool ok = with_retry(shard, [&](Client& c) {
    auto resp = c.preview(job);
    if (!resp) return false;
    granted = resp.value().granted_mib;
    return true;
  });
  if (ok) return granted;
  shards_[shard].degraded = true;
  ++degraded_ops_;
  return degraded_grant(job);
}

void Router::feedback(const trace::JobRecord& job, const core::Feedback& fb) {
  ++requests_;
  const std::size_t shard = shard_of(job);
  if (shards_[shard].degraded && !probe(shard)) {
    ++degraded_ops_;  // dropped, like Matchd's own degraded feedback
    return;
  }
  const bool ok = with_retry(
      shard, [&](Client& c) { return c.feedback(job, fb).has_value(); });
  if (!ok) {
    shards_[shard].degraded = true;
    ++degraded_ops_;
    RM_LOG(kWarn) << "net::Router: shard " << shard
                  << " degraded (feedback retries exhausted)";
  }
}

void Router::cancel(const trace::JobRecord& job, MiB granted) {
  ++requests_;
  const std::size_t shard = shard_of(job);
  if (shards_[shard].degraded && !probe(shard)) {
    ++degraded_ops_;
    return;
  }
  const bool ok = with_retry(
      shard, [&](Client& c) { return c.cancel(job, granted).has_value(); });
  if (!ok) {
    shards_[shard].degraded = true;
    ++degraded_ops_;
  }
}

bool Router::checkpoint_all() {
  bool all_ok = true;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ++requests_;
    if (shards_[s].degraded && !probe(s)) {
      ++degraded_ops_;
      all_ok = false;
      continue;
    }
    const bool ok = with_retry(s, [&](Client& c) {
      auto ack = c.checkpoint();
      return ack.has_value() && ack.value().ok;
    });
    if (!ok) {
      shards_[s].degraded = true;
      all_ok = false;
    }
  }
  return all_ok;
}

StatsResp Router::aggregate_stats() {
  StatsResp total;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ++requests_;
    if (shards_[s].degraded && !probe(s)) continue;
    StatsResp one;
    const bool ok = with_retry(s, [&](Client& c) {
      auto resp = c.stats();
      if (!resp) return false;
      one = resp.value();
      return true;
    });
    if (!ok) {
      shards_[s].degraded = true;
      continue;
    }
    total.submissions += one.submissions;
    total.rewrites += one.rewrites;
    total.successes += one.successes;
    total.failures += one.failures;
    total.cancels += one.cancels;
    total.groups += one.groups;
    total.evictions += one.evictions;
    total.degraded_ops += one.degraded_ops;
    total.wal_appends += one.wal_appends;
    total.compactions += one.compactions;
  }
  return total;
}

bool Router::shard_degraded(std::size_t shard) const {
  return shard < shards_.size() && shards_[shard].degraded;
}

RouterStats Router::stats() const {
  RouterStats out;
  out.requests = requests_;
  out.retries = retries_;
  out.reconnects = reconnects_;
  out.degraded_ops = degraded_ops_;
  out.probes = probes_;
  out.shard_healthy.reserve(shards_.size());
  for (const Shard& s : shards_) out.shard_healthy.push_back(!s.degraded);
  return out;
}

void Router::register_metrics() {
  obs::Registry* reg = config_.metrics;
  if (reg == nullptr) return;
  // The router is single-threaded; providers read plain counters, so
  // snapshot the registry from the driving thread only.
  const auto add_counter = [&](const char* name, const char* help,
                               const std::uint64_t* value) {
    reg->counter_fn(name, help, {}, [value] { return *value; });
    provider_keys_.emplace_back(name, obs::Labels{});
  };
  add_counter("resmatch_router_requests_total",
              "Operations routed to shards (all verbs)", &requests_);
  add_counter("resmatch_router_retries_total",
              "Transport attempts beyond the first", &retries_);
  add_counter("resmatch_router_reconnects_total",
              "Successful shard re-dials", &reconnects_);
  add_counter("resmatch_router_degraded_ops_total",
              "Operations served pass-through or dropped on a degraded "
              "shard",
              &degraded_ops_);
  add_counter("resmatch_router_probes_total",
              "Health probes sent to degraded shards", &probes_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const obs::Labels labels{{"shard", std::to_string(s)}};
    reg->gauge_fn("resmatch_router_shard_healthy",
                  "1 when the shard serves normally, 0 while degraded",
                  labels,
                  [this, s] { return shards_[s].degraded ? 0.0 : 1.0; });
    provider_keys_.emplace_back("resmatch_router_shard_healthy", labels);
  }
}

void Router::unregister_metrics() {
  if (config_.metrics == nullptr) return;
  for (const auto& [name, labels] : provider_keys_) {
    config_.metrics->remove(name, labels);
  }
  provider_keys_.clear();
}

}  // namespace resmatch::net
