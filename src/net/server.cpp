#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "match/classad.hpp"
#include "match/compiled.hpp"
#include "util/logging.hpp"

namespace resmatch::net {

namespace {

constexpr std::uint64_t kUdsSlot = 0;
constexpr std::uint64_t kTcpSlot = 1;
constexpr std::uint64_t kWakeSlot = 2;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Index into request_counters_ for a request-type tag; -1 for responses.
int request_slot(MsgType type) noexcept {
  const auto v = static_cast<std::uint8_t>(type);
  return v >= 1 && v <= 8 ? static_cast<int>(v) : -1;
}

}  // namespace

Server::Server(svc::Matchd& matchd, ServerConfig config)
    : matchd_(&matchd), config_(std::move(config)) {
  register_metrics();
}

Server::~Server() {
  stop();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (uds_fd_ >= 0) ::close(uds_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (!config_.uds_path.empty() && bound_) {
    (void)::unlink(config_.uds_path.c_str());
  }
  unregister_metrics();
}

util::Expected<bool> Server::bind() {
  using Result = util::Expected<bool>;
  if (bound_) return true;
  if (config_.uds_path.empty() && !config_.tcp) {
    return Result::failure("net::Server: no listener configured");
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Result::failure("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Result::failure("eventfd failed");

  const auto add = [&](int fd, std::uint64_t slot) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = slot;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  };
  if (!add(wake_fd_, kWakeSlot)) {
    return Result::failure("epoll_ctl(eventfd) failed");
  }

  if (!config_.uds_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.uds_path.size() >= sizeof(addr.sun_path)) {
      return Result::failure("UDS path too long: " + config_.uds_path);
    }
    std::strncpy(addr.sun_path, config_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    uds_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (uds_fd_ < 0) return Result::failure("socket(AF_UNIX) failed");
    // A stale socket file from a killed predecessor would fail bind with
    // EADDRINUSE even though nobody listens; replacing it is the standard
    // single-owner-per-path convention.
    (void)::unlink(config_.uds_path.c_str());
    if (::bind(uds_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(uds_fd_, 128) != 0 || !set_nonblocking(uds_fd_) ||
        !add(uds_fd_, kUdsSlot)) {
      return Result::failure("cannot listen on " + config_.uds_path + ": " +
                             std::strerror(errno));
    }
  }

  if (config_.tcp) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.tcp_port);
    if (::inet_pton(AF_INET, config_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      return Result::failure("bad TCP host: " + config_.tcp_host);
    }
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (tcp_fd_ < 0) return Result::failure("socket(AF_INET) failed");
    const int one = 1;
    (void)::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(tcp_fd_, 128) != 0 || !set_nonblocking(tcp_fd_) ||
        !add(tcp_fd_, kTcpSlot)) {
      return Result::failure("cannot listen on " + config_.tcp_host + ":" +
                             std::to_string(config_.tcp_port) + ": " +
                             std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      tcp_port_ = ntohs(bound.sin_port);
    }
  }

  bound_ = true;
  return true;
}

void Server::run() {
  if (!bound_) {
    auto ok = bind();
    if (!ok) {
      RM_LOG(kError) << "net::Server: " << ok.error();
      return;
    }
  }
  loop();
}

bool Server::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (thread_.joinable()) return true;
  auto ok = bind();
  if (!ok) {
    RM_LOG(kError) << "net::Server: " << ok.error();
    return false;
  }
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void Server::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  stopping_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
  // Flush any worker callbacks still in flight so they cannot touch the
  // completion list after the server is destroyed.
  if (matchd_->async_enabled()) matchd_->drain();
}

void Server::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  while (!stopping_.load(std::memory_order_acquire)) {
    int timeout = -1;
    if (config_.idle_timeout.count() > 0) {
      const auto half = config_.idle_timeout.count() / 2;
      timeout = static_cast<int>(half > 0 ? half : 1);
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      RM_LOG(kError) << "net::Server: epoll_wait failed, loop exiting";
      return;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t slot = events[i].data.u64;
      if (slot == kWakeSlot) {
        std::uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        flush_completions();
        continue;
      }
      if (slot == kUdsSlot || slot == kTcpSlot) {
        handle_accept(slot == kUdsSlot ? uds_fd_ : tcp_fd_);
        continue;
      }
      const auto it = conns_.find(slot);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(slot);
        continue;
      }
      if (events[i].events & EPOLLOUT) handle_writable(conn);
      // handle_writable may have closed the connection on a dead socket.
      if (conns_.count(slot) == 0) continue;
      if (events[i].events & EPOLLIN) handle_readable(conn);
    }
    if (config_.idle_timeout.count() > 0) reap_idle();
  }

  // Loop exit: close every connection so peers read EOF immediately
  // instead of blocking on a socket nobody will ever serve again.
  for (auto& [serial, conn] : conns_) ::close(conn->fd);
  conns_.clear();
  open_conns_.store(0, std::memory_order_relaxed);
}

void Server::handle_accept(int listen_fd) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient error: try next wakeup
    if (conns_.size() >= config_.max_connections) {
      ::close(fd);
      continue;
    }
    accepts_.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->serial = next_serial_++;
    conn->last_active = std::chrono::steady_clock::now();
    encode_magic(conn->out);  // server preamble, first bytes on the wire

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->serial;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    Conn& ref = *conn;
    conns_.emplace(conn->serial, std::move(conn));
    open_conns_.store(conns_.size(), std::memory_order_relaxed);
    try_write(ref);
  }
}

void Server::handle_readable(Conn& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_read_.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);
      conn.last_active = std::chrono::steady_clock::now();
      conn.decoder.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn.serial);  // EOF or hard error
    return;
  }
  drain_decoder(conn);
}

void Server::drain_decoder(Conn& conn) {
  while (conn.in_flight < config_.max_pipeline) {
    auto msg = conn.decoder.next();
    if (!msg) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      close_conn(conn.serial);
      return;
    }
    if (!msg.value().has_value()) break;  // need more bytes
    if (!serve(conn, std::move(*msg.value()))) {
      close_conn(conn.serial);
      return;
    }
    if (conn.in_flight >= config_.max_pipeline) break;
  }

  // Pipeline-cap backpressure: stop reading this socket until responses
  // drain; bytes pile up in the kernel buffer and eventually stall the
  // client's writes.
  const bool should_pause = conn.in_flight >= config_.max_pipeline;
  if (should_pause != conn.paused) {
    conn.paused = should_pause;
    update_epoll(conn);
  }
  try_write(conn);
}

bool Server::serve(Conn& conn, Envelope&& envelope) {
  const auto t0 = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  const int slot = request_slot(envelope.type);
  if (slot >= 0 && request_counters_[slot] != nullptr) {
    request_counters_[slot]->inc();
  }

  // Response-typed (or unknown-as-request) messages from a client are a
  // protocol violation.
  if (slot < 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // The mutating operations route through the bounded admission queue
  // when the matchd runs workers; everything else is served inline.
  if (matchd_->async_enabled()) {
    const std::uint64_t serial = conn.serial;
    const std::uint64_t request_id = envelope.request_id;
    svc::PushResult admitted = svc::PushResult::kClosed;
    switch (envelope.type) {
      case MsgType::kEstimate: {
        const auto& req = std::get<EstimateReq>(envelope.body);
        admitted = matchd_->submit_async(
            req.job, [this, serial, request_id,
                      t0](const svc::MatchDecision& d) {
              std::vector<char> bytes;
              encode(bytes, request_id,
                     EstimateResp{d.granted_mib, d.lowered, d.group_key});
              record_latency(t0);
              post_completion(serial, std::move(bytes));
            });
        break;
      }
      case MsgType::kFeedback: {
        const auto& req = std::get<FeedbackReq>(envelope.body);
        admitted = matchd_->feedback_async(
            svc::JobOutcome{req.job, req.fb}, [this, serial, request_id, t0] {
              std::vector<char> bytes;
              encode(bytes, request_id, Ack{true});
              record_latency(t0);
              post_completion(serial, std::move(bytes));
            });
        break;
      }
      case MsgType::kCancel: {
        const auto& req = std::get<CancelReq>(envelope.body);
        admitted = matchd_->cancel_async(
            req.job, req.granted, [this, serial, request_id, t0] {
              std::vector<char> bytes;
              encode(bytes, request_id, Ack{true});
              record_latency(t0);
              post_completion(serial, std::move(bytes));
            });
        break;
      }
      default:
        admitted = svc::PushResult::kClosed;  // non-queue request kinds
        break;
    }
    if (admitted == svc::PushResult::kOk) {
      ++conn.in_flight;
      return true;
    }
    if (admitted == svc::PushResult::kFull) {
      backpressure_rejects_.fetch_add(1, std::memory_order_relaxed);
      encode(conn.out, envelope.request_id,
             ErrorResp{ErrorCode::kBackpressure, "admission queue full"});
      return true;
    }
    // kClosed: not a queued kind (or the pool is gone) — serve inline.
  }

  serve_inline(conn, envelope, t0);
  return true;
}

void Server::serve_inline(Conn& conn, const Envelope& envelope,
                          std::chrono::steady_clock::time_point t0) {
  switch (envelope.type) {
    case MsgType::kEstimate: {
      const auto& req = std::get<EstimateReq>(envelope.body);
      const svc::MatchDecision d = matchd_->submit(req.job);
      encode(conn.out, envelope.request_id,
             EstimateResp{d.granted_mib, d.lowered, d.group_key});
      break;
    }
    case MsgType::kPreview: {
      const auto& req = std::get<PreviewReq>(envelope.body);
      encode(conn.out, envelope.request_id,
             PreviewResp{matchd_->preview(req.job)});
      break;
    }
    case MsgType::kFeedback: {
      const auto& req = std::get<FeedbackReq>(envelope.body);
      matchd_->feedback(req.job, req.fb);
      encode(conn.out, envelope.request_id, Ack{true});
      break;
    }
    case MsgType::kCancel: {
      const auto& req = std::get<CancelReq>(envelope.body);
      matchd_->cancel(req.job, req.granted);
      encode(conn.out, envelope.request_id, Ack{true});
      break;
    }
    case MsgType::kCheckpoint:
      encode(conn.out, envelope.request_id, Ack{matchd_->checkpoint()});
      break;
    case MsgType::kHealth: {
      HealthResp resp;
      resp.degraded = matchd_->degraded();
      resp.wal_enabled = matchd_->wal_enabled();
      resp.groups = matchd_->stats().groups;
      encode(conn.out, envelope.request_id, resp);
      break;
    }
    case MsgType::kStats: {
      const svc::MatchdStats s = matchd_->stats();
      StatsResp resp;
      resp.submissions = s.submissions;
      resp.rewrites = s.rewrites;
      resp.successes = s.successes;
      resp.failures = s.failures;
      resp.cancels = s.cancels;
      resp.groups = s.groups;
      resp.evictions = s.evictions;
      resp.degraded_ops = s.degraded_ops;
      resp.wal_appends = s.wal.appends;
      resp.compactions = s.compactions;
      encode(conn.out, envelope.request_id, resp);
      break;
    }
    case MsgType::kMatch:
      serve_match(conn, envelope.request_id,
                  std::get<MatchReq>(envelope.body));
      break;
    default:
      encode(conn.out, envelope.request_id,
             ErrorResp{ErrorCode::kBadRequest, "unsupported request"});
      break;
  }
  record_latency(t0);
}

void Server::serve_match(Conn& conn, std::uint64_t request_id,
                         const MatchReq& req) {
  if (config_.machines == nullptr) {
    encode(conn.out, request_id,
           ErrorResp{ErrorCode::kBadRequest, "no machine population"});
    return;
  }
  if (machine_table_ == nullptr) {
    machine_table_ = std::make_unique<match::MachineTable>(
        match::MachineTable::build(*config_.machines));
  }
  match::ClassAd request;
  for (const auto& [name, source] : req.attrs) {
    if (!request.set_expr(name, source)) {
      encode(conn.out, request_id,
             ErrorResp{ErrorCode::kBadRequest,
                       "unparsable attribute: " + name});
      return;
    }
  }
  const std::vector<std::size_t> ranked =
      match::rank_matches_compiled(request, *machine_table_);
  MatchResp resp;
  resp.rows.reserve(ranked.size());
  for (const std::size_t row : ranked) {
    resp.rows.push_back(static_cast<std::uint32_t>(row));
  }
  encode(conn.out, request_id, resp);
}

void Server::post_completion(std::uint64_t serial,
                             std::vector<char>&& bytes) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(Completion{serial, std::move(bytes)});
  }
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void Server::flush_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    const auto it = conns_.find(c.serial);
    if (it == conns_.end()) continue;  // connection died while in flight
    Conn& conn = *it->second;
    conn.out.insert(conn.out.end(), c.bytes.begin(), c.bytes.end());
    if (conn.in_flight > 0) --conn.in_flight;
    if (conn.paused && conn.in_flight < config_.max_pipeline) {
      conn.paused = false;
      update_epoll(conn);
      // Frames that arrived while paused are already buffered in the
      // decoder; serve them now that there is pipeline room again.
      drain_decoder(conn);
      if (conns_.count(c.serial) == 0) continue;
    }
    try_write(conn);
  }
}

void Server::handle_writable(Conn& conn) {
  conn.last_active = std::chrono::steady_clock::now();
  try_write(conn);
}

void Server::try_write(Conn& conn) {
  while (conn.out_offset < conn.out.size()) {
    // MSG_NOSIGNAL: a client gone mid-response is a close, not a SIGPIPE.
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_offset,
                             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_written_.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        update_epoll(conn);
      }
      return;
    }
    close_conn(conn.serial);  // broken pipe
    return;
  }
  conn.out.clear();
  conn.out_offset = 0;
  if (conn.want_write) {
    conn.want_write = false;
    update_epoll(conn);
  }
}

void Server::update_epoll(Conn& conn) {
  epoll_event ev{};
  ev.events = (conn.paused ? 0u : static_cast<unsigned>(EPOLLIN)) |
              (conn.want_write ? static_cast<unsigned>(EPOLLOUT) : 0u);
  ev.data.u64 = conn.serial;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::close_conn(std::uint64_t serial) {
  const auto it = conns_.find(serial);
  if (it == conns_.end()) return;
  ::close(it->second->fd);  // EPOLL_CTL_DEL is implicit on close
  conns_.erase(it);
  open_conns_.store(conns_.size(), std::memory_order_relaxed);
  closes_.fetch_add(1, std::memory_order_relaxed);
}

void Server::reap_idle() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> stale;
  for (const auto& [serial, conn] : conns_) {
    if (conn->in_flight == 0 &&
        now - conn->last_active >= config_.idle_timeout) {
      stale.push_back(serial);
    }
  }
  for (const std::uint64_t serial : stale) {
    idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    close_conn(serial);
  }
}

void Server::record_latency(std::chrono::steady_clock::time_point t0) {
  if (latency_hist_ == nullptr) return;
  latency_hist_->record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
}

ServerStats Server::stats() const {
  ServerStats out;
  out.accepts = accepts_.load(std::memory_order_relaxed);
  out.closes = closes_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  out.backpressure_rejects =
      backpressure_rejects_.load(std::memory_order_relaxed);
  out.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  out.connections = open_conns_.load(std::memory_order_relaxed);
  return out;
}

void Server::register_metrics() {
  obs::Registry* reg = config_.metrics;
  if (reg == nullptr) return;

  // 100 ns .. ~100 s in factor-2 steps: UDS round trips to cross-host
  // TCP under load.
  latency_hist_ = &reg->histogram(
      "resmatch_net_request_latency_seconds",
      "Server-side latency from request decode to response encode",
      obs::HistogramSpec{1e-7, 2.0, 30});

  const MsgType request_types[] = {
      MsgType::kEstimate,   MsgType::kPreview, MsgType::kFeedback,
      MsgType::kCancel,     MsgType::kHealth,  MsgType::kStats,
      MsgType::kCheckpoint, MsgType::kMatch,
  };
  for (const MsgType type : request_types) {
    request_counters_[request_slot(type)] =
        &reg->counter("resmatch_net_requests_total",
                      "Protocol requests served, by message type",
                      {{"type", to_string(type)}});
  }

  const auto add_counter = [&](const char* name, const char* help,
                               std::function<std::uint64_t()> fn) {
    reg->counter_fn(name, help, {}, std::move(fn));
    provider_keys_.emplace_back(name, obs::Labels{});
  };
  add_counter("resmatch_net_accepts_total", "Connections accepted",
              [this] { return accepts_.load(std::memory_order_relaxed); });
  add_counter("resmatch_net_protocol_errors_total",
              "Connections dropped on a corrupt or malformed frame",
              [this] {
                return protocol_errors_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_net_backpressure_rejects_total",
              "Requests answered kBackpressure from a full admission queue",
              [this] {
                return backpressure_rejects_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_net_idle_reaped_total",
              "Connections closed by the idle timeout", [this] {
                return idle_reaped_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_net_bytes_read_total",
              "Bytes read off client sockets", [this] {
                return bytes_read_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_net_bytes_written_total",
              "Bytes written to client sockets", [this] {
                return bytes_written_.load(std::memory_order_relaxed);
              });
  reg->gauge_fn("resmatch_net_connections", "Currently open connections",
                {}, [this] {
                  return static_cast<double>(
                      open_conns_.load(std::memory_order_relaxed));
                });
  provider_keys_.emplace_back("resmatch_net_connections", obs::Labels{});
}

void Server::unregister_metrics() {
  if (config_.metrics == nullptr) return;
  for (const auto& [name, labels] : provider_keys_) {
    config_.metrics->remove(name, labels);
  }
  provider_keys_.clear();
}

}  // namespace resmatch::net
