// net::Client — a blocking, threadless protocol client.
//
// One client owns one connection (UDS or TCP) and issues matchd protocol
// requests synchronously: each call encodes a frame, writes it, then reads
// until the response with the matching request id arrives. No background
// threads, no timers — which makes the client safe to use in a process
// that later fork()s (examples/cluster_replay) and trivially deterministic
// when driven serially.
//
// Errors are values: every call returns util::Expected. A transport error
// (peer died, short read, corrupt frame) poisons the connection — further
// calls fail fast until reconnect via a fresh Client. The Router layer
// (router.hpp) owns reconnect policy; the client deliberately does not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "util/expected.hpp"

namespace resmatch::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect and exchange magics. On failure the client stays unusable.
  [[nodiscard]] util::Expected<bool> connect_uds(const std::string& path);
  [[nodiscard]] util::Expected<bool> connect_tcp(const std::string& host,
                                                 std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  // --- one blocking round trip each -------------------------------------

  [[nodiscard]] util::Expected<EstimateResp> estimate(
      const trace::JobRecord& job);
  [[nodiscard]] util::Expected<PreviewResp> preview(
      const trace::JobRecord& job);
  [[nodiscard]] util::Expected<Ack> feedback(const trace::JobRecord& job,
                                             const core::Feedback& fb);
  [[nodiscard]] util::Expected<Ack> cancel(const trace::JobRecord& job,
                                           MiB granted);
  [[nodiscard]] util::Expected<Ack> checkpoint();
  [[nodiscard]] util::Expected<HealthResp> health();
  [[nodiscard]] util::Expected<StatsResp> stats();
  /// Rank the server's machine population against a request ad shipped
  /// as (attribute, expression-source) pairs; rows come back best-first.
  [[nodiscard]] util::Expected<MatchResp> match(const MatchReq& req);

 private:
  [[nodiscard]] util::Expected<bool> finish_connect();
  /// Write all of `frame`, then read frames until request_id matches.
  [[nodiscard]] util::Expected<Envelope> round_trip(
      const std::vector<char>& frame, std::uint64_t request_id);
  [[nodiscard]] util::Expected<bool> write_all(const char* data,
                                               std::size_t n);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  Decoder decoder_;  ///< expects the server magic first
  bool poisoned_ = false;
};

}  // namespace resmatch::net
