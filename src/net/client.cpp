#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace resmatch::net {

namespace {

template <typename Body>
util::Expected<Body> expect_body(util::Expected<Envelope> envelope) {
  using Result = util::Expected<Body>;
  if (!envelope) return Result::failure(envelope.error());
  Envelope& e = envelope.value();
  if (const auto* err = std::get_if<ErrorResp>(&e.body)) {
    return Result::failure("server error " +
                           std::to_string(static_cast<int>(err->code)) +
                           ": " + err->message);
  }
  if (auto* body = std::get_if<Body>(&e.body)) return std::move(*body);
  return Result::failure(std::string("unexpected response type ") +
                         to_string(e.type));
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      decoder_(std::move(other.decoder_)),
      poisoned_(other.poisoned_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    decoder_ = std::move(other.decoder_);
    poisoned_ = other.poisoned_;
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Expected<bool> Client::connect_uds(const std::string& path) {
  using Result = util::Expected<bool>;
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Result::failure("UDS path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Result::failure("socket(AF_UNIX) failed");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close();
    return Result::failure("connect(" + path + ") failed: " + err);
  }
  return finish_connect();
}

util::Expected<bool> Client::connect_tcp(const std::string& host,
                                         std::uint16_t port) {
  using Result = util::Expected<bool>;
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Result::failure("bad TCP host: " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Result::failure("socket(AF_INET) failed");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close();
    return Result::failure("connect(" + host + ":" + std::to_string(port) +
                           ") failed: " + err);
  }
  return finish_connect();
}

util::Expected<bool> Client::finish_connect() {
  poisoned_ = false;
  decoder_ = Decoder(/*expect_magic=*/true);
  std::vector<char> magic;
  encode_magic(magic);
  auto sent = write_all(magic.data(), magic.size());
  if (!sent) {
    close();
    return sent;
  }
  return true;
}

util::Expected<bool> Client::write_all(const char* data, std::size_t n) {
  using Result = util::Expected<bool>;
  std::size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process — the router turns it into a reconnect.
    const ssize_t wrote = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (wrote > 0) {
      off += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    poisoned_ = true;
    return Result::failure(std::string("write failed: ") +
                           std::strerror(errno));
  }
  return true;
}

util::Expected<Envelope> Client::round_trip(const std::vector<char>& frame,
                                            std::uint64_t request_id) {
  using Result = util::Expected<Envelope>;
  if (fd_ < 0) return Result::failure("not connected");
  if (poisoned_) return Result::failure("connection poisoned");
  auto sent = write_all(frame.data(), frame.size());
  if (!sent) return Result::failure(sent.error());

  char buf[16 * 1024];
  for (;;) {
    auto msg = decoder_.next();
    if (!msg) {
      poisoned_ = true;
      return Result::failure("protocol error: " + msg.error());
    }
    if (msg.value().has_value()) {
      Envelope envelope = std::move(*msg.value());
      // A pipelining-capable peer may interleave; a strictly serial client
      // only ever sees its own id, so anything else is a server bug.
      if (envelope.request_id != request_id) {
        poisoned_ = true;
        return Result::failure("response id mismatch");
      }
      return envelope;
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    poisoned_ = true;
    return Result::failure(n == 0 ? "connection closed by peer"
                                  : std::string("read failed: ") +
                                        std::strerror(errno));
  }
}

util::Expected<EstimateResp> Client::estimate(const trace::JobRecord& job) {
  const std::uint64_t id = next_request_id_++;
  std::vector<char> frame;
  encode(frame, id, EstimateReq{job});
  return expect_body<EstimateResp>(round_trip(frame, id));
}

util::Expected<PreviewResp> Client::preview(const trace::JobRecord& job) {
  const std::uint64_t id = next_request_id_++;
  std::vector<char> frame;
  encode(frame, id, PreviewReq{job});
  return expect_body<PreviewResp>(round_trip(frame, id));
}

util::Expected<Ack> Client::feedback(const trace::JobRecord& job,
                                     const core::Feedback& fb) {
  const std::uint64_t id = next_request_id_++;
  std::vector<char> frame;
  encode(frame, id, FeedbackReq{job, fb});
  return expect_body<Ack>(round_trip(frame, id));
}

util::Expected<Ack> Client::cancel(const trace::JobRecord& job, MiB granted) {
  const std::uint64_t id = next_request_id_++;
  std::vector<char> frame;
  encode(frame, id, CancelReq{job, granted});
  return expect_body<Ack>(round_trip(frame, id));
}

util::Expected<Ack> Client::checkpoint() {
  const std::uint64_t id = next_request_id_++;
  std::vector<char> frame;
  encode(frame, id, CheckpointReq{});
  return expect_body<Ack>(round_trip(frame, id));
}

util::Expected<HealthResp> Client::health() {
  const std::uint64_t id = next_request_id_++;
  std::vector<char> frame;
  encode(frame, id, HealthReq{});
  return expect_body<HealthResp>(round_trip(frame, id));
}

util::Expected<StatsResp> Client::stats() {
  const std::uint64_t id = next_request_id_++;
  std::vector<char> frame;
  encode(frame, id, StatsReq{});
  return expect_body<StatsResp>(round_trip(frame, id));
}

util::Expected<MatchResp> Client::match(const MatchReq& req) {
  const std::uint64_t id = next_request_id_++;
  std::vector<char> frame;
  encode(frame, id, req);
  return expect_body<MatchResp>(round_trip(frame, id));
}

}  // namespace resmatch::net
