// Scenario registry and sweep driver (the workload-diversity experiment).
//
// Each entry in the catalog (SCENARIOS.md) is a deterministic workload
// generator; the sweep runs every scenario × estimator arm through the
// multi-resource engine (sim/mr_simulator.hpp) on the sweep runner's
// deterministic fan-out, so `--jobs=1` and `--jobs=N` produce identical
// rows. bench/scenario_sweep.cpp is the CLI over this module and emits
// the schema-v1 BENCH_scenarios.json record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "exp/runner.hpp"
#include "sim/mr_simulator.hpp"
#include "trace/scenario.hpp"

namespace resmatch::exp {

/// Every registered trace model, including the file-driven SWF reader.
/// scripts/check_scenarios_docs.py parses this list out of scenarios.cpp
/// and fails CI unless SCENARIOS.md documents each name.
[[nodiscard]] const std::vector<std::string>& trace_model_names();

/// The synthetic scenarios make_scenario() can build — trace_model_names()
/// minus "swf" (SWF replay needs a trace file; see exp::StreamFactory).
[[nodiscard]] std::vector<std::string> scenario_names();

/// Build a named synthetic scenario deterministically. "cm5" wraps the
/// paper's model (single-dimension, flat footprints); the others are the
/// multi-resource generators in src/trace. Throws std::invalid_argument
/// for unknown names.
[[nodiscard]] trace::ScenarioWorkload make_scenario(const std::string& name,
                                                    std::uint64_t seed,
                                                    std::size_t job_count);

/// Cluster for scenario sweeps: the paper's two-pool CM5 cluster when
/// dims <= 1; otherwise three pools annotated with CPU cores and GPUs
/// (a GPU-less small pool, a mid pool, and a big-memory GPU pool).
[[nodiscard]] sim::ClusterSpec scenario_cluster(std::size_t dims);

struct ScenarioRunConfig {
  /// Dimensions to pack; each scenario is run at min(dims, scenario.dims).
  std::size_t dims = 3;
  std::string policy = "fcfs";
  core::EstimatorOptions options;
  sim::SimulationConfig sim;
  /// Jobs per generated scenario workload.
  std::size_t job_count = 4000;
  /// Seed for the workload generators (separate from sim.seed).
  std::uint64_t trace_seed = 42;
};

/// One scenario × estimator arm.
struct ScenarioRow {
  std::string scenario;
  std::string estimator;
  std::size_t dims = 1;
  sim::MrSimulationResult result;

  [[nodiscard]] double kill_rate() const noexcept {
    return result.base.attempts > 0
               ? static_cast<double>(result.base.resource_failures) /
                     static_cast<double>(result.base.attempts)
               : 0.0;
  }
};

struct ScenarioSweep {
  std::vector<ScenarioRow> rows;  ///< scenario-major, estimator-minor order
  std::vector<RunError> errors;
  SweepStats stats;
};

/// Run the scenario × estimator grid. Workloads are generated once,
/// serially; the grid fans across runner.jobs workers with each task in
/// an index-addressed slot. All estimator arms of one scenario share a
/// sim seed derived from (config.sim.seed, scenario index) so they stay
/// paired. With runner.metrics set, exports
/// resmatch_scenario_sweeps_total, resmatch_scenario_rows, and
/// resmatch_scenario_kill_rate.
[[nodiscard]] ScenarioSweep scenario_sweep(
    const std::vector<std::string>& scenarios,
    const std::vector<std::string>& estimators,
    const ScenarioRunConfig& config, const RunnerOptions& runner = {});

/// One CSV row per sweep row (stable column order; consumed by the CI
/// serial-vs-parallel diff).
void write_scenario_csv(const std::string& path, const ScenarioSweep& sweep);

}  // namespace resmatch::exp
