#include "exp/scenarios.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <stdexcept>

#include "core/multi_resource.hpp"
#include "obs/metrics.hpp"
#include "sched/factory.hpp"
#include "trace/adversarial.hpp"
#include "trace/cloud_model.hpp"
#include "trace/cm5_model.hpp"
#include "trace/flash_crowd.hpp"
#include "trace/transforms.hpp"

namespace resmatch::exp {

namespace {

// The docs-lint ground truth: scripts/check_scenarios_docs.py greps this
// initializer and requires every name to appear in SCENARIOS.md. Keep one
// name per line.
const char* const kTraceModelNames[] = {
    "cm5",
    "swf",
    "cloud-diurnal",
    "flash-crowd",
    "adversarial",
};

}  // namespace

const std::vector<std::string>& trace_model_names() {
  static const std::vector<std::string> names(std::begin(kTraceModelNames),
                                              std::end(kTraceModelNames));
  return names;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> out;
  for (const auto& name : trace_model_names()) {
    if (name != "swf") out.push_back(name);
  }
  return out;
}

trace::ScenarioWorkload make_scenario(const std::string& name,
                                      std::uint64_t seed,
                                      std::size_t job_count) {
  if (name == "cm5") {
    return trace::scenario_from(
        trace::sort_by_submit(trace::generate_cm5_small(seed, job_count)));
  }
  if (name == "cloud-diurnal") {
    trace::CloudModelConfig cfg;
    cfg.seed = seed;
    cfg.job_count = job_count;
    return trace::generate_cloud(cfg);
  }
  if (name == "flash-crowd") {
    trace::FlashCrowdConfig cfg;
    cfg.seed = seed;
    cfg.job_count = job_count;
    return trace::generate_flash_crowd(cfg);
  }
  if (name == "adversarial") {
    trace::AdversarialConfig cfg;
    cfg.seed = seed;
    cfg.job_count = job_count;
    return trace::generate_adversarial(cfg);
  }
  throw std::invalid_argument("make_scenario: unknown scenario " + name);
}

sim::ClusterSpec scenario_cluster(std::size_t dims) {
  if (dims <= 1) return sim::cm5_heterogeneous(24.0, 128);
  // Three capacity classes spanning the scenario generators' request
  // grids: a GPU-less small pool, a mid pool with a couple of GPUs, and
  // a big-memory/high-core GPU pool.
  return {{16.0, 128, 4.0, 0.0}, {24.0, 128, 8.0, 2.0}, {32.0, 64, 16.0, 4.0}};
}

ScenarioSweep scenario_sweep(const std::vector<std::string>& scenarios,
                             const std::vector<std::string>& estimators,
                             const ScenarioRunConfig& config,
                             const RunnerOptions& runner) {
  // Workload generation is serial and shared: every arm of a scenario
  // replays the identical trace (read-only during the fan-out).
  std::vector<trace::ScenarioWorkload> workloads;
  workloads.reserve(scenarios.size());
  for (const auto& name : scenarios) {
    workloads.push_back(
        make_scenario(name, config.trace_seed, config.job_count));
  }

  const std::size_t n_est = estimators.size();
  auto sweep = run_tasks(
      scenarios.size() * n_est,
      [&](std::size_t t) {
        const std::size_t s = t / n_est;
        const trace::ScenarioWorkload& scenario = workloads[s];

        sim::MrSimulationConfig cfg;
        cfg.base = config.sim;
        // Arms of one scenario share the seed so estimators stay paired.
        cfg.base.seed = derive_seed(config.sim.seed, s);
        if (core::requires_explicit_feedback(estimators[t % n_est])) {
          cfg.base.explicit_feedback = true;
        }
        cfg.dims = std::min(std::max<std::size_t>(config.dims, 1),
                            scenario.dims);

        core::VectorEstimatorConfig est_cfg;
        est_cfg.dims = cfg.dims;
        est_cfg.estimator = estimators[t % n_est];
        est_cfg.options = config.options;
        core::VectorEstimator estimator(est_cfg);
        auto policy = sched::make_policy(config.policy);

        ScenarioRow row;
        row.scenario = scenarios[s];
        row.estimator = estimators[t % n_est];
        row.dims = cfg.dims;
        row.result = sim::simulate_mr(scenario, scenario_cluster(cfg.dims),
                                      estimator, *policy, cfg);
        return row;
      },
      runner);

  ScenarioSweep out;
  out.errors = std::move(sweep.errors);
  out.stats = sweep.stats;
  out.rows.reserve(sweep.results.size());
  for (auto& row : sweep.results) {
    if (row) out.rows.push_back(std::move(*row));
  }

  if (runner.metrics) {
    runner.metrics
        ->counter("resmatch_scenario_sweeps_total",
                  "Scenario sweeps completed")
        .inc();
    runner.metrics
        ->gauge("resmatch_scenario_rows",
                "Rows produced by the last scenario sweep")
        .set(static_cast<double>(out.rows.size()));
    std::uint64_t attempts = 0, kills = 0;
    for (const auto& row : out.rows) {
      attempts += row.result.base.attempts;
      kills += row.result.base.resource_failures;
    }
    runner.metrics
        ->gauge("resmatch_scenario_kill_rate",
                "Resource kills / attempts across the last scenario sweep")
        .set(attempts > 0
                 ? static_cast<double>(kills) / static_cast<double>(attempts)
                 : 0.0);
  }
  return out;
}

void write_scenario_csv(const std::string& path, const ScenarioSweep& sweep) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_scenario_csv: cannot open " + path);
  }
  out << "scenario,estimator,dims,submitted,completed,attempts,"
         "resource_failures,kills_mem,kills_cpu,kills_gpu,midjob_kills,"
         "mean_kill_progress,utilization,mean_slowdown,mean_wait,"
         "lowered_starts,benefiting_jobs,dropped_unschedulable\n";
  out << std::setprecision(17);
  for (const auto& row : sweep.rows) {
    const auto& r = row.result;
    out << row.scenario << ',' << row.estimator << ',' << row.dims << ','
        << r.base.submitted << ',' << r.base.completed << ','
        << r.base.attempts << ',' << r.base.resource_failures << ','
        << r.kills_by_dim[kDimMem] << ',' << r.kills_by_dim[kDimCpu] << ','
        << r.kills_by_dim[kDimGpu] << ',' << r.midjob_kills << ','
        << r.mean_kill_progress << ',' << r.base.utilization << ','
        << r.base.mean_slowdown << ',' << r.base.mean_wait << ','
        << r.base.lowered_starts << ',' << r.base.benefiting_jobs << ','
        << r.base.dropped_unschedulable << '\n';
  }
}

}  // namespace resmatch::exp
