// Reporting helpers for the bench binaries: consistent console tables and
// optional CSV dumps of the same rows (for external plotting).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "util/table.hpp"

namespace resmatch::exp {

/// Render a load sweep as the paper's Figure 5/6 series.
[[nodiscard]] util::ConsoleTable load_sweep_table(
    const std::vector<LoadPoint>& sweep);

/// Render a cluster sweep as the paper's Figure 8 series.
[[nodiscard]] util::ConsoleTable cluster_sweep_table(
    const std::vector<ClusterPoint>& sweep);

/// Write a load sweep as CSV (no-op when path is empty).
void write_load_sweep_csv(const std::string& path,
                          const std::vector<LoadPoint>& sweep);

/// Write a cluster sweep as CSV (no-op when path is empty).
void write_cluster_sweep_csv(const std::string& path,
                             const std::vector<ClusterPoint>& sweep);

/// Report isolated sweep failures to stderr (no-op when empty). `what`
/// names the sweep's grid, e.g. "load point" or "second-pool size".
void report_sweep_errors(const std::string& what,
                         const std::vector<RunError>& errors);

/// Degenerate (nullopt) ratios render as NaN in tables and CSV.
[[nodiscard]] double ratio_or_nan(const std::optional<double>& ratio) noexcept;

/// Standard banner naming the experiment and its provenance.
void print_banner(const std::string& experiment,
                  const std::string& paper_reference);

}  // namespace resmatch::exp
