#include "exp/experiment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace resmatch::exp {

sim::SimulationConfig RunSpec::effective_sim_config() const {
  sim::SimulationConfig cfg = sim;
  if (core::requires_explicit_feedback(estimator)) {
    cfg.explicit_feedback = true;
  }
  return cfg;
}

sim::SimulationResult run_once(const trace::Workload& workload,
                               const sim::ClusterSpec& cluster,
                               const RunSpec& spec) {
  auto estimator = core::make_estimator(spec.estimator, spec.options);
  return run_once(workload, cluster, spec, *estimator);
}

sim::SimulationResult run_once(const trace::Workload& workload,
                               const sim::ClusterSpec& cluster,
                               const RunSpec& spec,
                               core::Estimator& estimator) {
  auto policy = sched::make_policy(spec.policy);
  sim::SimulationConfig config = spec.effective_sim_config();
  core::RuntimePredictor predictor;
  if (spec.use_runtime_prediction) config.runtime_predictor = &predictor;
  return sim::simulate(workload, cluster, estimator, *policy, config);
}

sim::SimulationResult run_once(trace::JobStream& stream,
                               const sim::ClusterSpec& cluster,
                               const RunSpec& spec) {
  auto estimator = core::make_estimator(spec.estimator, spec.options);
  auto policy = sched::make_policy(spec.policy);
  sim::SimulationConfig config = spec.effective_sim_config();
  core::RuntimePredictor predictor;
  if (spec.use_runtime_prediction) config.runtime_predictor = &predictor;
  stream.reset();
  return sim::simulate(stream, cluster, *estimator, *policy, config);
}

namespace {

/// Both arms of point i live in task slots 2i (with estimation) and
/// 2i + 1 (baseline); they share the seed derived from the point index so
/// the comparison stays paired. Collapses per-task errors to per-point
/// errors and assembles the points whose two arms both succeeded.
template <typename Point, typename MakePoint>
void assemble_pairs(std::size_t point_count,
                    std::vector<std::optional<sim::SimulationResult>>& slots,
                    const std::vector<RunError>& task_errors,
                    const MakePoint& make_point, std::vector<Point>& points,
                    std::vector<RunError>& point_errors) {
  points.reserve(point_count);
  for (std::size_t i = 0; i < point_count; ++i) {
    std::string message;
    for (const auto& err : task_errors) {
      if (err.index / 2 != i) continue;
      if (!message.empty()) message += "; ";
      message += (err.index % 2 == 0 ? "with-estimation: " : "baseline: ");
      message += err.message;
    }
    if (!message.empty()) {
      point_errors.push_back({i, std::move(message)});
      continue;
    }
    points.push_back(
        make_point(i, std::move(*slots[2 * i]), std::move(*slots[2 * i + 1])));
  }
}

}  // namespace

LoadSweep load_sweep(const trace::Workload& workload,
                     const sim::ClusterSpec& cluster,
                     const std::vector<double>& loads, const RunSpec& spec,
                     const RunnerOptions& runner_options) {
  std::size_t machines = 0;
  for (const auto& pool : cluster) machines += pool.count;

  RunSpec baseline = spec;
  baseline.estimator = "none";

  const std::size_t n = loads.size();
  std::vector<std::optional<sim::SimulationResult>> slots(2 * n);
  std::vector<RunError> task_errors;
  SweepRunner runner(runner_options);
  LoadSweep out;
  out.stats = runner.run_indexed(
      2 * n,
      [&](std::size_t t) {
        const std::size_t i = t / 2;
        RunSpec run = (t % 2 == 0) ? spec : baseline;
        run.sim.seed = derive_seed(spec.sim.seed, i);
        trace::Workload scaled = trace::sort_by_submit(
            trace::scale_to_load(workload, machines, loads[i]));
        slots[t] = run_once(scaled, cluster, run);
      },
      &task_errors);

  assemble_pairs(
      n, slots, task_errors,
      [&](std::size_t i, sim::SimulationResult with,
          sim::SimulationResult without) {
        LoadPoint point;
        point.load = loads[i];
        point.with_estimation = std::move(with);
        point.without_estimation = std::move(without);
        RM_LOG(kInfo) << "load " << point.load << ": util "
                      << point.with_estimation.utilization << " vs "
                      << point.without_estimation.utilization;
        return point;
      },
      out.points, out.errors);
  return out;
}

double saturation_utilization(const std::vector<LoadPoint>& sweep,
                              bool with_estimation) {
  double best = 0.0;
  for (const auto& point : sweep) {
    const double u = with_estimation ? point.with_estimation.utilization
                                     : point.without_estimation.utilization;
    best = std::max(best, u);
  }
  return best;
}

SaturationKnee find_saturation_knee(const std::vector<LoadPoint>& sweep,
                                    bool with_estimation,
                                    double tracking_tolerance) {
  SaturationKnee knee;
  knee.utilization = saturation_utilization(sweep, with_estimation);
  for (const auto& point : sweep) {
    const double util = with_estimation
                            ? point.with_estimation.utilization
                            : point.without_estimation.utilization;
    if (point.load > 0.0 && util < tracking_tolerance * point.load) {
      knee.found = true;
      knee.load = point.load;
      return knee;
    }
  }
  return knee;
}

ClusterSweep cluster_sweep(const trace::Workload& workload,
                           const std::vector<MiB>& second_pool_sizes,
                           double load, const RunSpec& spec,
                           std::size_t pool_size,
                           const RunnerOptions& runner_options) {
  RunSpec baseline = spec;
  baseline.estimator = "none";

  const std::size_t n = second_pool_sizes.size();
  std::vector<std::optional<sim::SimulationResult>> slots(2 * n);
  std::vector<RunError> task_errors;
  SweepRunner runner(runner_options);
  ClusterSweep out;
  out.stats = runner.run_indexed(
      2 * n,
      [&](std::size_t t) {
        const std::size_t i = t / 2;
        RunSpec run = (t % 2 == 0) ? spec : baseline;
        run.sim.seed = derive_seed(spec.sim.seed, i);
        const sim::ClusterSpec cluster =
            sim::cm5_heterogeneous(second_pool_sizes[i], pool_size);
        trace::Workload scaled = trace::sort_by_submit(
            trace::scale_to_load(workload, 2 * pool_size, load));
        slots[t] = run_once(scaled, cluster, run);
      },
      &task_errors);

  assemble_pairs(
      n, slots, task_errors,
      [&](std::size_t i, sim::SimulationResult with,
          sim::SimulationResult without) {
        ClusterPoint point;
        point.second_pool_mib = second_pool_sizes[i];
        point.with_estimation = std::move(with);
        point.without_estimation = std::move(without);
        const auto ratio = point.utilization_ratio();
        RM_LOG(kInfo) << "second pool " << point.second_pool_mib
                      << " MiB: ratio "
                      << (ratio ? *ratio
                                : std::numeric_limits<double>::quiet_NaN());
        return point;
      },
      out.points, out.errors);
  return out;
}

SpecSweep run_specs(const trace::Workload& workload,
                    const sim::ClusterSpec& cluster,
                    const std::vector<RunSpec>& specs,
                    const RunnerOptions& runner_options) {
  return run_tasks(
      specs.size(),
      [&](std::size_t i) { return run_once(workload, cluster, specs[i]); },
      runner_options);
}

SpecSweep run_specs(const StreamFactory& make_stream,
                    const sim::ClusterSpec& cluster,
                    const std::vector<RunSpec>& specs,
                    const RunnerOptions& runner_options) {
  return run_tasks(
      specs.size(),
      [&](std::size_t i) {
        auto stream = make_stream();
        if (!stream) {
          throw std::runtime_error("run_specs: stream factory returned null");
        }
        return run_once(*stream, cluster, specs[i]);
      },
      runner_options);
}

std::size_t warm_start(core::Estimator& estimator,
                       const trace::Workload& history) {
  std::size_t observed = 0;
  for (const auto& job : history.jobs) {
    // Historical records carry actual usage: replay them as completed
    // executions with explicit feedback. The grant is the estimator's own
    // output so group state advances exactly as it would have live.
    const MiB grant = estimator.estimate(job, {});
    core::Feedback fb;
    fb.success = grant + 1e-9 >= job.used_mem_mib &&
                 job.status != trace::JobStatus::kFailed;
    fb.granted_mib = grant;
    fb.used_mib = job.used_mem_mib;
    fb.resource_failure =
        !fb.success && job.status != trace::JobStatus::kFailed;
    estimator.feedback(job, fb);
    ++observed;
  }
  return observed;
}

WarmStartResult run_warmstart(const trace::Workload& workload,
                              const sim::ClusterSpec& cluster,
                              const RunSpec& spec, double train_fraction) {
  auto split = trace::split_by_time(workload, train_fraction);
  WarmStartResult result;
  result.training_jobs = split.train.jobs.size();

  auto policy_cold = sched::make_policy(spec.policy);
  auto cold = core::make_estimator(spec.estimator, spec.options);
  result.cold = sim::simulate(split.test, cluster, *cold, *policy_cold,
                              spec.effective_sim_config());

  auto policy_warm = sched::make_policy(spec.policy);
  auto warm = core::make_estimator(spec.estimator, spec.options);
  // Give the warm estimator the cluster's ladder before training so its
  // group state forms on the real capacity rungs.
  sim::Cluster shape(cluster);
  warm->set_ladder(shape.ladder());
  warm_start(*warm, split.train);
  result.warm = sim::simulate(split.test, cluster, *warm, *policy_warm,
                              spec.effective_sim_config());
  return result;
}

trace::Workload standard_workload(std::uint64_t seed, std::size_t jobs) {
  if (jobs == 0) {
    trace::Cm5ModelConfig cfg;
    cfg.seed = seed;
    return trace::sort_by_submit(trace::generate_cm5(cfg));
  }
  return trace::sort_by_submit(trace::generate_cm5_small(seed, jobs));
}

trace::Cm5JobStream standard_stream(std::uint64_t seed, std::size_t jobs) {
  if (jobs == 0) {
    trace::Cm5ModelConfig cfg;
    cfg.seed = seed;
    return trace::Cm5JobStream(cfg);
  }
  return trace::Cm5JobStream(trace::cm5_small_config(seed, jobs));
}

}  // namespace resmatch::exp
