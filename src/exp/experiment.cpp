#include "exp/experiment.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace resmatch::exp {

sim::SimulationConfig RunSpec::effective_sim_config() const {
  sim::SimulationConfig cfg = sim;
  if (core::requires_explicit_feedback(estimator)) {
    cfg.explicit_feedback = true;
  }
  return cfg;
}

sim::SimulationResult run_once(const trace::Workload& workload,
                               const sim::ClusterSpec& cluster,
                               const RunSpec& spec) {
  auto estimator = core::make_estimator(spec.estimator, spec.options);
  auto policy = sched::make_policy(spec.policy);
  sim::SimulationConfig config = spec.effective_sim_config();
  core::RuntimePredictor predictor;
  if (spec.use_runtime_prediction) config.runtime_predictor = &predictor;
  return sim::simulate(workload, cluster, *estimator, *policy, config);
}

std::vector<LoadPoint> load_sweep(const trace::Workload& workload,
                                  const sim::ClusterSpec& cluster,
                                  const std::vector<double>& loads,
                                  const RunSpec& spec) {
  std::size_t machines = 0;
  for (const auto& pool : cluster) machines += pool.count;

  std::vector<LoadPoint> out;
  out.reserve(loads.size());
  RunSpec baseline = spec;
  baseline.estimator = "none";
  for (const double load : loads) {
    trace::Workload scaled = trace::sort_by_submit(
        trace::scale_to_load(workload, machines, load));
    LoadPoint point;
    point.load = load;
    point.with_estimation = run_once(scaled, cluster, spec);
    point.without_estimation = run_once(scaled, cluster, baseline);
    RM_LOG(kInfo) << "load " << load << ": util "
                  << point.with_estimation.utilization << " vs "
                  << point.without_estimation.utilization;
    out.push_back(std::move(point));
  }
  return out;
}

double saturation_utilization(const std::vector<LoadPoint>& sweep,
                              bool with_estimation) {
  double best = 0.0;
  for (const auto& point : sweep) {
    const double u = with_estimation ? point.with_estimation.utilization
                                     : point.without_estimation.utilization;
    best = std::max(best, u);
  }
  return best;
}

SaturationKnee find_saturation_knee(const std::vector<LoadPoint>& sweep,
                                    bool with_estimation,
                                    double tracking_tolerance) {
  SaturationKnee knee;
  knee.utilization = saturation_utilization(sweep, with_estimation);
  for (const auto& point : sweep) {
    const double util = with_estimation
                            ? point.with_estimation.utilization
                            : point.without_estimation.utilization;
    if (point.load > 0.0 && util < tracking_tolerance * point.load) {
      knee.found = true;
      knee.load = point.load;
      return knee;
    }
  }
  return knee;
}

std::vector<ClusterPoint> cluster_sweep(const trace::Workload& workload,
                                        const std::vector<MiB>& second_pool_sizes,
                                        double load, const RunSpec& spec,
                                        std::size_t pool_size) {
  std::vector<ClusterPoint> out;
  out.reserve(second_pool_sizes.size());
  RunSpec baseline = spec;
  baseline.estimator = "none";
  for (const MiB mib : second_pool_sizes) {
    const sim::ClusterSpec cluster = sim::cm5_heterogeneous(mib, pool_size);
    trace::Workload scaled = trace::sort_by_submit(
        trace::scale_to_load(workload, 2 * pool_size, load));
    ClusterPoint point;
    point.second_pool_mib = mib;
    point.with_estimation = run_once(scaled, cluster, spec);
    point.without_estimation = run_once(scaled, cluster, baseline);
    RM_LOG(kInfo) << "second pool " << mib << " MiB: ratio "
                  << point.utilization_ratio();
    out.push_back(std::move(point));
  }
  return out;
}

std::size_t warm_start(core::Estimator& estimator,
                       const trace::Workload& history) {
  std::size_t observed = 0;
  for (const auto& job : history.jobs) {
    // Historical records carry actual usage: replay them as completed
    // executions with explicit feedback. The grant is the estimator's own
    // output so group state advances exactly as it would have live.
    const MiB grant = estimator.estimate(job, {});
    core::Feedback fb;
    fb.success = grant + 1e-9 >= job.used_mem_mib &&
                 job.status != trace::JobStatus::kFailed;
    fb.granted_mib = grant;
    fb.used_mib = job.used_mem_mib;
    fb.resource_failure =
        !fb.success && job.status != trace::JobStatus::kFailed;
    estimator.feedback(job, fb);
    ++observed;
  }
  return observed;
}

WarmStartResult run_warmstart(const trace::Workload& workload,
                              const sim::ClusterSpec& cluster,
                              const RunSpec& spec, double train_fraction) {
  auto split = trace::split_by_time(workload, train_fraction);
  WarmStartResult result;
  result.training_jobs = split.train.jobs.size();

  auto policy_cold = sched::make_policy(spec.policy);
  auto cold = core::make_estimator(spec.estimator, spec.options);
  result.cold = sim::simulate(split.test, cluster, *cold, *policy_cold,
                              spec.effective_sim_config());

  auto policy_warm = sched::make_policy(spec.policy);
  auto warm = core::make_estimator(spec.estimator, spec.options);
  // Give the warm estimator the cluster's ladder before training so its
  // group state forms on the real capacity rungs.
  sim::Cluster shape(cluster);
  warm->set_ladder(shape.ladder());
  warm_start(*warm, split.train);
  result.warm = sim::simulate(split.test, cluster, *warm, *policy_warm,
                              spec.effective_sim_config());
  return result;
}

trace::Workload standard_workload(std::uint64_t seed, std::size_t jobs) {
  if (jobs == 0) {
    trace::Cm5ModelConfig cfg;
    cfg.seed = seed;
    return trace::sort_by_submit(trace::generate_cm5(cfg));
  }
  return trace::sort_by_submit(trace::generate_cm5_small(seed, jobs));
}

}  // namespace resmatch::exp
