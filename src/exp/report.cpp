#include "exp/report.hpp"

#include <cstdio>
#include <limits>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace resmatch::exp {

double ratio_or_nan(const std::optional<double>& ratio) noexcept {
  return ratio.value_or(std::numeric_limits<double>::quiet_NaN());
}

util::ConsoleTable load_sweep_table(const std::vector<LoadPoint>& sweep) {
  util::ConsoleTable table({"load", "util(est)", "util(none)", "util ratio",
                            "slowdown(est)", "slowdown(none)",
                            "slowdown ratio", "lowered%", "res-fail%"});
  for (const auto& p : sweep) {
    table.add_numeric_row({p.load, p.with_estimation.utilization,
                   p.without_estimation.utilization,
                   ratio_or_nan(p.utilization_ratio()),
                   p.with_estimation.mean_slowdown,
                   p.without_estimation.mean_slowdown,
                   ratio_or_nan(p.slowdown_ratio()),
                   100.0 * p.with_estimation.lowered_fraction(),
                   100.0 * p.with_estimation.resource_failure_fraction()});
  }
  return table;
}

util::ConsoleTable cluster_sweep_table(const std::vector<ClusterPoint>& sweep) {
  util::ConsoleTable table({"2nd pool MiB", "util(est)", "util(none)",
                            "util ratio", "benefit jobs", "benefit nodes",
                            "res-fail%"});
  for (const auto& p : sweep) {
    table.add_numeric_row(
        {p.second_pool_mib, p.with_estimation.utilization,
         p.without_estimation.utilization,
         ratio_or_nan(p.utilization_ratio()),
         static_cast<double>(p.with_estimation.benefiting_jobs),
         static_cast<double>(p.with_estimation.benefiting_nodes),
         100.0 * p.with_estimation.resource_failure_fraction()});
  }
  return table;
}

void write_load_sweep_csv(const std::string& path,
                          const std::vector<LoadPoint>& sweep) {
  if (path.empty()) return;
  util::CsvWriter csv(path);
  csv.header({"load", "util_est", "util_none", "util_ratio", "slowdown_est",
              "slowdown_none", "slowdown_ratio", "lowered_frac",
              "resource_fail_frac"});
  for (const auto& p : sweep) {
    csv.row(std::vector<double>{
        p.load, p.with_estimation.utilization,
        p.without_estimation.utilization,
        ratio_or_nan(p.utilization_ratio()),
        p.with_estimation.mean_slowdown, p.without_estimation.mean_slowdown,
        ratio_or_nan(p.slowdown_ratio()),
        p.with_estimation.lowered_fraction(),
        p.with_estimation.resource_failure_fraction()});
  }
}

void write_cluster_sweep_csv(const std::string& path,
                             const std::vector<ClusterPoint>& sweep) {
  if (path.empty()) return;
  util::CsvWriter csv(path);
  csv.header({"second_pool_mib", "util_est", "util_none", "util_ratio",
              "benefit_jobs", "benefit_nodes", "resource_fail_frac"});
  for (const auto& p : sweep) {
    csv.row(std::vector<double>{
        p.second_pool_mib, p.with_estimation.utilization,
        p.without_estimation.utilization,
        ratio_or_nan(p.utilization_ratio()),
        static_cast<double>(p.with_estimation.benefiting_jobs),
        static_cast<double>(p.with_estimation.benefiting_nodes),
        p.with_estimation.resource_failure_fraction()});
  }
}

void report_sweep_errors(const std::string& what,
                         const std::vector<RunError>& errors) {
  for (const auto& err : errors) {
    std::fprintf(stderr, "warning: %s %zu failed: %s\n", what.c_str(),
                 err.index, err.message.c_str());
  }
}

void print_banner(const std::string& experiment,
                  const std::string& paper_reference) {
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("reproduces: %s\n\n", paper_reference.c_str());
}

}  // namespace resmatch::exp
