// Deterministic parallel sweep engine for the experiment layer.
//
// Every figure/ablation bench replays the CM5 workload once per sweep
// point; the points are independent, so they fan out across a
// svc::ThreadPool. Three properties make the parallel path trustworthy
// enough to replace the serial one everywhere:
//
//   * determinism — each run's seed is derived from (base seed, sweep
//     index), never from thread identity or completion order, and results
//     land in index-addressed slots. `jobs=1` and `jobs=N` produce
//     byte-identical sweep rows;
//   * isolation — a throwing run becomes a per-index RunError instead of
//     aborting the sweep; the other slots still fill;
//   * observability — progress and throughput export through an
//     obs::Registry (runs-completed counter, per-run wall-time histogram,
//     sims/sec gauge) when the caller passes one.
//
// The typed entry point is run_tasks(); the experiment layer builds
// load_sweep / cluster_sweep / run_specs on top of it (experiment.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

namespace resmatch::obs {
class Registry;
}

namespace resmatch::exp {

/// Per-run seed: a splitmix64-style mix of (base seed, sweep index). Pure
/// integer arithmetic, so the derivation is stable across platforms and
/// library versions; distinct indices get decorrelated streams even when
/// base seeds are small consecutive integers.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::uint64_t index) noexcept;

struct RunnerOptions {
  /// Worker threads to fan runs across. 0 = hardware concurrency;
  /// 1 = serial on the calling thread (no pool). The effective count is
  /// clamped to the number of runs.
  std::size_t jobs = 0;
  /// Optional progress/throughput export (not owned; must outlive the
  /// sweep): resmatch_sweep_runs_total, resmatch_sweep_run_seconds,
  /// resmatch_sweep_sims_per_sec.
  obs::Registry* metrics = nullptr;
};

/// One failed run, isolated: `index` is the run's slot in the sweep.
struct RunError {
  std::size_t index = 0;
  std::string message;
};

/// What a sweep cost. Wall-clock only feeds reporting — simulated
/// timelines stay seed-deterministic.
struct SweepStats {
  std::size_t runs = 0;          ///< tasks attempted
  std::size_t failed = 0;        ///< tasks that threw
  std::size_t jobs = 1;          ///< workers actually used
  double wall_seconds = 0.0;     ///< whole-sweep wall time
  double runs_per_sec = 0.0;     ///< runs / wall_seconds (sims/sec)
};

/// The type-erased engine. Stateless between run_indexed() calls; holds
/// only the options.
class SweepRunner {
 public:
  explicit SweepRunner(RunnerOptions options = {});

  /// Worker count that run_indexed(count, ...) would use.
  [[nodiscard]] std::size_t concurrency(std::size_t count) const noexcept;

  /// Invoke task(i) once for every i in [0, count). Tasks must write
  /// their result into caller-owned, index-addressed storage (distinct
  /// slots — no locking needed) and must not depend on each other.
  /// A task that throws is recorded in `errors` (ascending index order)
  /// and the sweep continues. Blocks until every task ran.
  SweepStats run_indexed(std::size_t count,
                         const std::function<void(std::size_t)>& task,
                         std::vector<RunError>* errors = nullptr);

 private:
  RunnerOptions options_;
};

/// Index-ordered results of a typed fan-out: slot i holds task i's value,
/// or nullopt when that task failed (see `errors`).
template <typename R>
struct TaskSweep {
  std::vector<std::optional<R>> results;
  std::vector<RunError> errors;
  SweepStats stats;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Typed fan-out: evaluate fn(i) for i in [0, count) across the pool.
/// fn must be callable concurrently from multiple threads (pure functions
/// of the index and read-only captures are safe).
template <typename Fn>
[[nodiscard]] auto run_tasks(std::size_t count, Fn&& fn,
                             const RunnerOptions& options = {})
    -> TaskSweep<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  TaskSweep<R> out;
  out.results.resize(count);
  SweepRunner runner(options);
  out.stats = runner.run_indexed(
      count, [&](std::size_t i) { out.results[i] = fn(i); }, &out.errors);
  return out;
}

}  // namespace resmatch::exp
