#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "svc/thread_pool.hpp"

namespace resmatch::exp {

std::uint64_t derive_seed(std::uint64_t base_seed,
                          std::uint64_t index) noexcept {
  // splitmix64 finalizer over base + golden-ratio stride. index + 1 keeps
  // derive_seed(0, 0) away from the all-zero fixed point.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SweepRunner::SweepRunner(RunnerOptions options) : options_(options) {}

std::size_t SweepRunner::concurrency(std::size_t count) const noexcept {
  std::size_t jobs = options_.jobs;
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(1, std::min(jobs, count));
}

SweepStats SweepRunner::run_indexed(
    std::size_t count, const std::function<void(std::size_t)>& task,
    std::vector<RunError>* errors) {
  SweepStats stats;
  stats.runs = count;
  stats.jobs = concurrency(count);

  obs::Counter* runs_total = nullptr;
  obs::Histogram* run_seconds = nullptr;
  obs::Gauge* sims_per_sec = nullptr;
  if (options_.metrics != nullptr) {
    runs_total = &options_.metrics->counter(
        "resmatch_sweep_runs_total",
        "Sweep runs completed (successful or failed)");
    run_seconds = &options_.metrics->histogram(
        "resmatch_sweep_run_seconds", "Per-run wall time in seconds");
    sims_per_sec = &options_.metrics->gauge(
        "resmatch_sweep_sims_per_sec",
        "Aggregate sweep throughput, simulations per second");
  }

  std::mutex error_mutex;
  std::vector<RunError> caught;

  // The per-run wrapper is identical on the serial and pooled paths, so
  // jobs=1 differs from jobs=N only in which thread invokes it.
  const auto run_one = [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    try {
      task(i);
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(error_mutex);
      caught.push_back({i, e.what()});
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      caught.push_back({i, "unknown error"});
    }
    if (run_seconds != nullptr) {
      run_seconds->record(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count());
    }
    if (runs_total != nullptr) runs_total->inc();
  };

  const auto sweep_start = std::chrono::steady_clock::now();
  if (stats.jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) run_one(i);
  } else {
    // Work stealing off a shared atomic index: completion order is
    // load-dependent, but results are index-addressed so it cannot leak
    // into the output.
    std::atomic<std::size_t> next{0};
    svc::ThreadPool pool(stats.jobs, [&](std::size_t) {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        run_one(i);
      }
    });
    pool.join();
  }
  stats.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - sweep_start)
                           .count();
  stats.failed = caught.size();
  stats.runs_per_sec = stats.wall_seconds > 0.0
                           ? static_cast<double>(count) / stats.wall_seconds
                           : 0.0;
  if (sims_per_sec != nullptr) sims_per_sec->set(stats.runs_per_sec);

  std::sort(caught.begin(), caught.end(),
            [](const RunError& a, const RunError& b) {
              return a.index < b.index;
            });
  if (errors != nullptr) {
    *errors = std::move(caught);
  }
  return stats;
}

}  // namespace resmatch::exp
