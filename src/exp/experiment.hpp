// Experiment drivers shared by the bench binaries.
//
// Each of the paper's figures is a composition of the same three moves:
// build a workload, build a cluster, sweep a parameter while running the
// simulator with and without estimation. These helpers encode the moves
// once so each bench binary is a thin declaration of its sweep.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "exp/runner.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/cm5_model.hpp"
#include "trace/job_stream.hpp"
#include "trace/transforms.hpp"

namespace resmatch::exp {

/// Everything needed to run one simulation.
struct RunSpec {
  std::string estimator = "successive-approximation";
  std::string policy = "fcfs";
  core::EstimatorOptions options;
  sim::SimulationConfig sim;
  /// Attach a fresh Tsafrir-style runtime predictor to the run (feeds
  /// backfilling reservations with learned runtimes).
  bool use_runtime_prediction = false;

  /// Explicit feedback is forced on for estimators that need it.
  [[nodiscard]] sim::SimulationConfig effective_sim_config() const;
};

/// Run one simulation with fresh estimator/policy instances.
[[nodiscard]] sim::SimulationResult run_once(const trace::Workload& workload,
                                             const sim::ClusterSpec& cluster,
                                             const RunSpec& spec);

/// Run one simulation over a caller-owned estimator (spec.estimator is
/// used only for labeling and the explicit-feedback decision). For arms a
/// factory name cannot build: service-backed estimators (MatchdEstimator
/// over a Matchd with a WAL), pre-warmed instances, or estimators with
/// hand-tuned configs.
[[nodiscard]] sim::SimulationResult run_once(const trace::Workload& workload,
                                             const sim::ClusterSpec& cluster,
                                             const RunSpec& spec,
                                             core::Estimator& estimator);

/// Streamed variant: drive the run off a JobStream instead of a
/// materialized workload, keeping peak memory at O(active jobs). Decisions
/// are byte-identical to run_once over the materialized equivalent (the
/// JobStream equivalence contract). The stream is reset before the run.
[[nodiscard]] sim::SimulationResult run_once(trace::JobStream& stream,
                                             const sim::ClusterSpec& cluster,
                                             const RunSpec& spec);

/// One row of a load sweep: the same workload rescaled to `load`, run with
/// and without estimation.
///
/// The ratios are nullopt when their denominator is zero (e.g. a perfect
/// estimator reaches zero mean slowdown). Benches render degenerate
/// ratios as NaN and exclude them from best/worst scans — a fake 0.0
/// sentinel would read as "worst possible" and latch min/max searches.
struct LoadPoint {
  double load = 0.0;
  sim::SimulationResult with_estimation;
  sim::SimulationResult without_estimation;

  [[nodiscard]] std::optional<double> utilization_ratio() const noexcept {
    if (without_estimation.utilization <= 0.0) return std::nullopt;
    return with_estimation.utilization / without_estimation.utilization;
  }
  [[nodiscard]] std::optional<double> slowdown_ratio() const noexcept {
    // Paper Figure 6 plots slowdown(no est) / slowdown(est): > 1 is a win.
    if (with_estimation.mean_slowdown <= 0.0) return std::nullopt;
    return without_estimation.mean_slowdown / with_estimation.mean_slowdown;
  }
};

/// A completed load sweep: successful points in sweep order, plus isolated
/// per-point failures (index into the `loads` grid) and runner stats.
struct LoadSweep {
  std::vector<LoadPoint> points;
  std::vector<RunError> errors;
  SweepStats stats;
};

/// Figures 5 and 6: sweep offered load on a fixed cluster. The 2×N
/// simulations fan across `runner.jobs` workers; each point's two arms
/// share a sim seed derived from (spec.sim.seed, point index), so output
/// is byte-identical for any worker count. A failed point lands in
/// `errors` instead of aborting the sweep.
[[nodiscard]] LoadSweep load_sweep(const trace::Workload& workload,
                                   const sim::ClusterSpec& cluster,
                                   const std::vector<double>& loads,
                                   const RunSpec& spec,
                                   const RunnerOptions& runner = {});

/// Saturation utilization: the maximum achieved utilization across a sweep
/// (the paper compares utilizations "at the saturation points where the
/// linear growth of utilization stops").
[[nodiscard]] double saturation_utilization(
    const std::vector<LoadPoint>& sweep, bool with_estimation);

/// The saturation knee itself: the first offered load whose achieved
/// utilization falls below `tracking_tolerance` of the offered load —
/// i.e., where "the linear growth of utilization stops" (paper footnote 4).
struct SaturationKnee {
  bool found = false;       ///< false when the sweep never saturates
  double load = 0.0;        ///< offered load at the knee
  double utilization = 0.0; ///< plateau utilization (max over the sweep)
};

[[nodiscard]] SaturationKnee find_saturation_knee(
    const std::vector<LoadPoint>& sweep, bool with_estimation,
    double tracking_tolerance = 0.95);

/// Figure 8: sweep the second pool's memory size on a fixed offered load.
struct ClusterPoint {
  MiB second_pool_mib = 0.0;
  sim::SimulationResult with_estimation;
  sim::SimulationResult without_estimation;

  /// nullopt when the baseline utilization is zero (see LoadPoint).
  [[nodiscard]] std::optional<double> utilization_ratio() const noexcept {
    if (without_estimation.utilization <= 0.0) return std::nullopt;
    return with_estimation.utilization / without_estimation.utilization;
  }
};

/// A completed cluster sweep (same contract as LoadSweep; error indices
/// point into `second_pool_sizes`).
struct ClusterSweep {
  std::vector<ClusterPoint> points;
  std::vector<RunError> errors;
  SweepStats stats;
};

[[nodiscard]] ClusterSweep cluster_sweep(
    const trace::Workload& workload, const std::vector<MiB>& second_pool_sizes,
    double load, const RunSpec& spec, std::size_t pool_size = 512,
    const RunnerOptions& runner = {});

/// Index-ordered results of evaluating many independent RunSpecs on one
/// fixture (the ablation benches' arm grids). Specs run verbatim — no
/// per-index seed derivation, so arms stay paired on the caller's sim
/// seed and comparable head-to-head.
using SpecSweep = TaskSweep<sim::SimulationResult>;

[[nodiscard]] SpecSweep run_specs(const trace::Workload& workload,
                                  const sim::ClusterSpec& cluster,
                                  const std::vector<RunSpec>& specs,
                                  const RunnerOptions& runner = {});

/// Builds a fresh JobStream for one run. Parallel sweeps need one stream
/// PER TASK: a shared stream object holds a single cursor (most acutely
/// trace::SwfJobStream's one std::ifstream), and concurrent runs advancing
/// it would interleave records. The factory must be callable from worker
/// threads and every stream it returns must yield the same job sequence.
using StreamFactory = std::function<std::unique_ptr<trace::JobStream>()>;

/// Streamed run_specs: each task draws its own stream from the factory,
/// so sweep rows are byte-identical for any worker count (the same
/// determinism contract as the materialized overload).
[[nodiscard]] SpecSweep run_specs(const StreamFactory& make_stream,
                                  const sim::ClusterSpec& cluster,
                                  const std::vector<RunSpec>& specs,
                                  const RunnerOptions& runner = {});

/// Standard workloads for experiments. `jobs == 0` means the full
/// paper-scale trace (~122k jobs); smaller values generate proportionally
/// scaled traces for quick runs.
[[nodiscard]] trace::Workload standard_workload(std::uint64_t seed,
                                                std::size_t jobs = 0);

/// Streamed counterpart of standard_workload: the same trace, generated
/// on the fly. Jobs come out in submit order already (the CM5 model emits
/// chronologically), matching standard_workload's sort_by_submit.
[[nodiscard]] trace::Cm5JobStream standard_stream(std::uint64_t seed,
                                                  std::size_t jobs = 0);

/// The paper's §2.2 offline training phase: replay a historical trace's
/// explicit feedback through the estimator (no cluster involved — every
/// training job is treated as having run at its own usage), so it enters
/// live operation warm. Returns the number of training observations.
std::size_t warm_start(core::Estimator& estimator,
                       const trace::Workload& history);

/// Cold vs warm comparison on a chronological split of one trace.
struct WarmStartResult {
  sim::SimulationResult cold;  ///< estimator starts empty on the test trace
  sim::SimulationResult warm;  ///< estimator pre-trained on the train trace
  std::size_t training_jobs = 0;
};

[[nodiscard]] WarmStartResult run_warmstart(const trace::Workload& workload,
                                            const sim::ClusterSpec& cluster,
                                            const RunSpec& spec,
                                            double train_fraction = 0.3);

}  // namespace resmatch::exp
