// Experiment drivers shared by the bench binaries.
//
// Each of the paper's figures is a composition of the same three moves:
// build a workload, build a cluster, sweep a parameter while running the
// simulator with and without estimation. These helpers encode the moves
// once so each bench binary is a thin declaration of its sweep.
#pragma once

#include <string>
#include <vector>

#include "core/factory.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/cm5_model.hpp"
#include "trace/transforms.hpp"

namespace resmatch::exp {

/// Everything needed to run one simulation.
struct RunSpec {
  std::string estimator = "successive-approximation";
  std::string policy = "fcfs";
  core::EstimatorOptions options;
  sim::SimulationConfig sim;
  /// Attach a fresh Tsafrir-style runtime predictor to the run (feeds
  /// backfilling reservations with learned runtimes).
  bool use_runtime_prediction = false;

  /// Explicit feedback is forced on for estimators that need it.
  [[nodiscard]] sim::SimulationConfig effective_sim_config() const;
};

/// Run one simulation with fresh estimator/policy instances.
[[nodiscard]] sim::SimulationResult run_once(const trace::Workload& workload,
                                             const sim::ClusterSpec& cluster,
                                             const RunSpec& spec);

/// One row of a load sweep: the same workload rescaled to `load`, run with
/// and without estimation.
struct LoadPoint {
  double load = 0.0;
  sim::SimulationResult with_estimation;
  sim::SimulationResult without_estimation;

  [[nodiscard]] double utilization_ratio() const noexcept {
    return without_estimation.utilization > 0.0
               ? with_estimation.utilization / without_estimation.utilization
               : 0.0;
  }
  [[nodiscard]] double slowdown_ratio() const noexcept {
    // Paper Figure 6 plots slowdown(no est) / slowdown(est): > 1 is a win.
    return with_estimation.mean_slowdown > 0.0
               ? without_estimation.mean_slowdown /
                     with_estimation.mean_slowdown
               : 0.0;
  }
};

/// Figures 5 and 6: sweep offered load on a fixed cluster.
[[nodiscard]] std::vector<LoadPoint> load_sweep(
    const trace::Workload& workload, const sim::ClusterSpec& cluster,
    const std::vector<double>& loads, const RunSpec& spec);

/// Saturation utilization: the maximum achieved utilization across a sweep
/// (the paper compares utilizations "at the saturation points where the
/// linear growth of utilization stops").
[[nodiscard]] double saturation_utilization(
    const std::vector<LoadPoint>& sweep, bool with_estimation);

/// The saturation knee itself: the first offered load whose achieved
/// utilization falls below `tracking_tolerance` of the offered load —
/// i.e., where "the linear growth of utilization stops" (paper footnote 4).
struct SaturationKnee {
  bool found = false;       ///< false when the sweep never saturates
  double load = 0.0;        ///< offered load at the knee
  double utilization = 0.0; ///< plateau utilization (max over the sweep)
};

[[nodiscard]] SaturationKnee find_saturation_knee(
    const std::vector<LoadPoint>& sweep, bool with_estimation,
    double tracking_tolerance = 0.95);

/// Figure 8: sweep the second pool's memory size on a fixed offered load.
struct ClusterPoint {
  MiB second_pool_mib = 0.0;
  sim::SimulationResult with_estimation;
  sim::SimulationResult without_estimation;

  [[nodiscard]] double utilization_ratio() const noexcept {
    return without_estimation.utilization > 0.0
               ? with_estimation.utilization / without_estimation.utilization
               : 0.0;
  }
};

[[nodiscard]] std::vector<ClusterPoint> cluster_sweep(
    const trace::Workload& workload, const std::vector<MiB>& second_pool_sizes,
    double load, const RunSpec& spec, std::size_t pool_size = 512);

/// Standard workloads for experiments. `jobs == 0` means the full
/// paper-scale trace (~122k jobs); smaller values generate proportionally
/// scaled traces for quick runs.
[[nodiscard]] trace::Workload standard_workload(std::uint64_t seed,
                                                std::size_t jobs = 0);

/// The paper's §2.2 offline training phase: replay a historical trace's
/// explicit feedback through the estimator (no cluster involved — every
/// training job is treated as having run at its own usage), so it enters
/// live operation warm. Returns the number of training observations.
std::size_t warm_start(core::Estimator& estimator,
                       const trace::Workload& history);

/// Cold vs warm comparison on a chronological split of one trace.
struct WarmStartResult {
  sim::SimulationResult cold;  ///< estimator starts empty on the test trace
  sim::SimulationResult warm;  ///< estimator pre-trained on the train trace
  std::size_t training_jobs = 0;
};

[[nodiscard]] WarmStartResult run_warmstart(const trace::Workload& workload,
                                            const sim::ClusterSpec& cluster,
                                            const RunSpec& spec,
                                            double train_fraction = 0.3);

}  // namespace resmatch::exp
