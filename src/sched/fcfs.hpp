// First-come-first-served: the paper's simulation policy (§3.1).
//
// Strict, non-bypassing FCFS: only the head of the queue is eligible; if
// it does not fit, everything behind it waits. Failed jobs re-enter at the
// head (the simulator maintains that ordering), matching the paper's
// "once it fails, the job returns to the head of the queue".
#pragma once

#include "sched/policy.hpp"

namespace resmatch::sched {

class FcfsPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "fcfs"; }

  [[nodiscard]] std::optional<std::size_t> pick_next(
      const std::deque<QueuedJob>& queue, const ClusterView& cluster,
      const std::vector<RunningJobInfo>& running, Seconds now) override;
};

}  // namespace resmatch::sched
