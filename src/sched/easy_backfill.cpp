#include "sched/easy_backfill.hpp"

#include <algorithm>
#include <limits>

namespace resmatch::sched {

void EasyBackfillPolicy::refresh_by_end(
    const std::vector<RunningJobInfo>& running) {
  if (running == last_running_) return;  // by_end_ is still that set, sorted
  last_running_.assign(running.begin(), running.end());
  by_end_.assign(running.begin(), running.end());
  // Sorting the values in arrival order yields the same permutation the
  // old per-pass pointer sort produced: decision equivalence depends on
  // ties (equal expected_end) keeping that order.
  std::sort(by_end_.begin(), by_end_.end(),
            [](const RunningJobInfo& a, const RunningJobInfo& b) {
              return a.expected_end < b.expected_end;
            });
}

EasyBackfillPolicy::Reservation EasyBackfillPolicy::compute_reservation(
    const QueuedJob& head, const ClusterView& cluster, Seconds now) const {
  Reservation r;
  const MiB cap = head.effective_request;
  std::size_t available = cluster.eligible_free(cap);
  if (available >= head.nodes) {
    // Head can start immediately; everything free beyond its need is spare.
    r.shadow_time = now;
    r.extra_nodes = available - head.nodes;
    return r;
  }
  // Walk running jobs in completion order, crediting the head-eligible
  // machines they release. Conservative: a running job's machines count as
  // head-eligible when its granted capacity class reaches the head's
  // requirement (grants are capacity rungs, so this matches pool identity).
  for (const RunningJobInfo& job : by_end_) {
    if (job.granted >= cap) available += job.nodes;
    if (available >= head.nodes) {
      r.shadow_time = std::max(job.expected_end, now);
      r.extra_nodes = available - head.nodes;
      return r;
    }
  }
  // Even draining everything is not enough (the head needs machines the
  // cluster lacks at this capacity); no reservation can be honoured, so
  // allow unrestricted backfilling.
  r.shadow_time = std::numeric_limits<double>::infinity();
  r.extra_nodes = std::numeric_limits<std::size_t>::max();
  return r;
}

std::optional<std::size_t> EasyBackfillPolicy::pick_next(
    const std::deque<QueuedJob>& queue, const ClusterView& cluster,
    const std::vector<RunningJobInfo>& running, Seconds now) {
  if (queue.empty()) return std::nullopt;
  if (fits_now(queue.front(), cluster)) return 0;

  const QueuedJob& head = queue.front();
  refresh_by_end(running);
  const Reservation res = compute_reservation(head, cluster, now);

  for (std::size_t i = 1; i < queue.size(); ++i) {
    const QueuedJob& candidate = queue[i];
    if (!fits_now(candidate, cluster)) continue;

    // (a) Finishes before the head's reservation.
    const Seconds expected_end = now + candidate.requested_time;
    if (expected_end <= res.shadow_time) return i;

    // (b) Cannot touch head-eligible machines: enough machines strictly
    // below the head's capacity class are free to host it entirely. The
    // subtraction lives behind the class guard — with candidate >= head
    // it would wrap (unsigned) and cost two eligible_free scans for a
    // comparison the guard already decides.
    if (candidate.effective_request < head.effective_request) {
      const std::size_t below_class_free =
          cluster.eligible_free(candidate.effective_request) -
          cluster.eligible_free(head.effective_request);
      if (below_class_free >= candidate.nodes) return i;
    }

    // (c) Extra-nodes rule: head-eligible spare capacity at the shadow
    // time absorbs the candidate even if it runs long.
    if (candidate.nodes <= res.extra_nodes) return i;
  }
  return std::nullopt;
}

}  // namespace resmatch::sched
