#include "sched/easy_backfill.hpp"

#include <algorithm>
#include <limits>

namespace resmatch::sched {

EasyBackfillPolicy::Reservation EasyBackfillPolicy::compute_reservation(
    const QueuedJob& head, const ClusterView& cluster,
    const std::vector<RunningJobInfo>& running, Seconds now) {
  Reservation r;
  const MiB cap = head.effective_request;
  std::size_t available = cluster.eligible_free(cap);
  if (available >= head.nodes) {
    // Head can start immediately; everything free beyond its need is spare.
    r.shadow_time = now;
    r.extra_nodes = available - head.nodes;
    return r;
  }
  // Walk running jobs in completion order, crediting the head-eligible
  // machines they release. Conservative: a running job's machines count as
  // head-eligible when its granted capacity class reaches the head's
  // requirement (grants are capacity rungs, so this matches pool identity).
  std::vector<const RunningJobInfo*> by_end;
  by_end.reserve(running.size());
  for (const auto& job : running) by_end.push_back(&job);
  std::sort(by_end.begin(), by_end.end(),
            [](const RunningJobInfo* a, const RunningJobInfo* b) {
              return a->expected_end < b->expected_end;
            });
  for (const RunningJobInfo* job : by_end) {
    if (job->granted >= cap) available += job->nodes;
    if (available >= head.nodes) {
      r.shadow_time = std::max(job->expected_end, now);
      r.extra_nodes = available - head.nodes;
      return r;
    }
  }
  // Even draining everything is not enough (the head needs machines the
  // cluster lacks at this capacity); no reservation can be honoured, so
  // allow unrestricted backfilling.
  r.shadow_time = std::numeric_limits<double>::infinity();
  r.extra_nodes = std::numeric_limits<std::size_t>::max();
  return r;
}

std::optional<std::size_t> EasyBackfillPolicy::pick_next(
    const std::deque<QueuedJob>& queue, const ClusterView& cluster,
    const std::vector<RunningJobInfo>& running, Seconds now) {
  if (queue.empty()) return std::nullopt;
  if (fits_now(queue.front(), cluster)) return 0;

  const QueuedJob& head = queue.front();
  const Reservation res = compute_reservation(head, cluster, running, now);

  for (std::size_t i = 1; i < queue.size(); ++i) {
    const QueuedJob& candidate = queue[i];
    if (!fits_now(candidate, cluster)) continue;

    // (a) Finishes before the head's reservation.
    const Seconds expected_end = now + candidate.requested_time;
    if (expected_end <= res.shadow_time) return i;

    // (b) Cannot touch head-eligible machines: enough machines strictly
    // below the head's capacity class are free to host it entirely.
    const std::size_t below_class_free =
        cluster.eligible_free(candidate.effective_request) -
        cluster.eligible_free(head.effective_request);
    if (candidate.effective_request < head.effective_request &&
        below_class_free >= candidate.nodes) {
      return i;
    }

    // (c) Extra-nodes rule: head-eligible spare capacity at the shadow
    // time absorbs the candidate even if it runs long.
    if (candidate.nodes <= res.extra_nodes) return i;
  }
  return std::nullopt;
}

}  // namespace resmatch::sched
