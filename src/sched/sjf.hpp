// Shortest-job-first (by the user's runtime estimate).
//
// One of the alternative policies the paper names in §1.3. Picks the
// fitting queued job with the smallest requested runtime; ties break
// toward the earlier arrival to bound unfairness.
#pragma once

#include "sched/policy.hpp"

namespace resmatch::sched {

class SjfPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "sjf"; }

  [[nodiscard]] std::optional<std::size_t> pick_next(
      const std::deque<QueuedJob>& queue, const ClusterView& cluster,
      const std::vector<RunningJobInfo>& running, Seconds now) override;
};

}  // namespace resmatch::sched
