// Scheduling-policy interface.
//
// The paper stresses that the estimator "is independent and can be
// integrated with different scheduling policies (e.g., FCFS,
// shortest-job-first, backfilling)" (§1.3). This layer realizes that
// separation: a policy only decides WHICH queued job to try next; the
// estimator has already rewritten each job's effective request, and the
// simulator owns actual placement.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace resmatch::sched {

/// A job waiting in the scheduler queue. `effective_request` is the
/// estimator's (rounded) per-node memory request for the current attempt.
struct QueuedJob {
  std::size_t trace_index = 0;   ///< index into the workload
  JobId id = 0;
  std::uint32_t nodes = 1;
  MiB effective_request = 0.0;
  Seconds enqueue_time = 0.0;
  Seconds requested_time = 0.0;  ///< user runtime estimate (backfill input)
  std::uint32_t attempts = 0;    ///< prior failed executions
  /// Preview-memoization state (simulator hot path): the estimator's
  /// preview_epoch at the time effective_request was computed. While the
  /// estimator still reports the same epoch, effective_request is current
  /// and the head-refresh preview call can be skipped. Policies ignore
  /// these fields.
  std::uint64_t preview_epoch = 0;
  bool preview_memoized = false;
};

/// A job currently executing, as visible to policies (backfilling needs
/// expected completion times to compute the head job's reservation).
struct RunningJobInfo {
  Seconds expected_end = 0.0;  ///< start + user runtime estimate
  std::uint32_t nodes = 1;
  MiB granted = 0.0;           ///< per-node capacity the job runs with

  /// Exact-value equality: lets policies detect "running set unchanged
  /// since my last pass" and reuse derived scratch (EASY's by-end order).
  friend bool operator==(const RunningJobInfo&,
                         const RunningJobInfo&) = default;
};

/// Read-only cluster capacity queries available to policies.
class ClusterView {
 public:
  virtual ~ClusterView() = default;

  /// Machines currently free with capacity >= min_capacity.
  [[nodiscard]] virtual std::size_t eligible_free(MiB min_capacity) const = 0;

  /// All machines (free or busy) with capacity >= min_capacity.
  [[nodiscard]] virtual std::size_t eligible_total(MiB min_capacity) const = 0;

  /// Total machine count.
  [[nodiscard]] virtual std::size_t machine_count() const = 0;
};

/// Decides the next queued job to attempt. The simulator calls pick_next
/// repeatedly at each scheduling point, starting the returned job if it
/// truly fits, until the policy returns nullopt.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Index into `queue` of the next job to start, or nullopt to wait.
  /// Implementations must only return jobs that fit right now
  /// (cluster.eligible_free(job.effective_request) >= job.nodes); the
  /// simulator treats a non-fitting pick as a policy bug.
  [[nodiscard]] virtual std::optional<std::size_t> pick_next(
      const std::deque<QueuedJob>& queue, const ClusterView& cluster,
      const std::vector<RunningJobInfo>& running, Seconds now) = 0;
};

/// True when the job can start immediately.
[[nodiscard]] bool fits_now(const QueuedJob& job, const ClusterView& cluster);

}  // namespace resmatch::sched
