#include "sched/factory.hpp"

#include <stdexcept>

#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "sched/sjf.hpp"

namespace resmatch::sched {

std::vector<std::string> policy_names() {
  return {"fcfs", "sjf", "easy-backfill"};
}

std::unique_ptr<SchedulingPolicy> make_policy(const std::string& name) {
  if (name == "fcfs") return std::make_unique<FcfsPolicy>();
  if (name == "sjf") return std::make_unique<SjfPolicy>();
  if (name == "easy-backfill") return std::make_unique<EasyBackfillPolicy>();
  throw std::invalid_argument("unknown scheduling policy: " + name);
}

}  // namespace resmatch::sched
