// Policy factory, mirroring core::make_estimator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/policy.hpp"

namespace resmatch::sched {

[[nodiscard]] std::vector<std::string> policy_names();

/// Build by name: "fcfs", "sjf", "easy-backfill". Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_policy(
    const std::string& name);

}  // namespace resmatch::sched
