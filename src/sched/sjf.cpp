#include "sched/sjf.hpp"

namespace resmatch::sched {

std::optional<std::size_t> SjfPolicy::pick_next(
    const std::deque<QueuedJob>& queue, const ClusterView& cluster,
    const std::vector<RunningJobInfo>& /*running*/, Seconds /*now*/) {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (!fits_now(queue[i], cluster)) continue;
    if (!best || queue[i].requested_time < queue[*best].requested_time) {
      best = i;
    }
  }
  return best;
}

}  // namespace resmatch::sched
