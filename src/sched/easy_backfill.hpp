// EASY backfilling, adapted to heterogeneous capacity pools.
//
// Classic EASY: the queue head gets a reservation at the earliest time
// enough machines will be free (the shadow time, computed from running
// jobs' expected completions); a lower-priority job may jump ahead only if
// doing so cannot delay that reservation.
//
// Heterogeneity adaptation: machine eligibility depends on a job's
// effective per-node request, so the shadow computation counts only
// machines whose capacity covers the HEAD job's request, and a backfill
// candidate is safe when either
//   (a) its expected termination (user estimate) precedes the shadow time,
//   (b) it does not touch head-eligible machines at all (its per-node
//       request can be satisfied exclusively by machines below the head's
//       capacity class — checked conservatively via pool counts), or
//   (c) even after it takes machines, the head-eligible free count at the
//       shadow time still covers the head job ("extra nodes" rule).
// All three checks are conservative with respect to the actual allocator,
// so a backfilled job can never postpone the head beyond its reservation.
#pragma once

#include "sched/policy.hpp"

namespace resmatch::sched {

class EasyBackfillPolicy final : public SchedulingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "easy-backfill"; }

  [[nodiscard]] std::optional<std::size_t> pick_next(
      const std::deque<QueuedJob>& queue, const ClusterView& cluster,
      const std::vector<RunningJobInfo>& running, Seconds now) override;

 private:
  struct Reservation {
    Seconds shadow_time = 0.0;   ///< earliest time the head job can start
    std::size_t extra_nodes = 0; ///< head-eligible nodes spare at shadow time
  };

  /// Refresh by_end_ from `running` — copy + sort only when the running
  /// set actually changed since the previous pass (simulator hot path:
  /// most scheduling passes at load see an unchanged running set).
  void refresh_by_end(const std::vector<RunningJobInfo>& running);

  [[nodiscard]] Reservation compute_reservation(const QueuedJob& head,
                                                const ClusterView& cluster,
                                                Seconds now) const;

  /// Running jobs ordered by expected completion, reused across passes.
  std::vector<RunningJobInfo> by_end_;
  /// The exact input by_end_ was derived from (staleness check).
  std::vector<RunningJobInfo> last_running_;
};

}  // namespace resmatch::sched
