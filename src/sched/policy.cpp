#include "sched/policy.hpp"

namespace resmatch::sched {

bool fits_now(const QueuedJob& job, const ClusterView& cluster) {
  return cluster.eligible_free(job.effective_request) >= job.nodes;
}

}  // namespace resmatch::sched
