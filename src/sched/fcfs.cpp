#include "sched/fcfs.hpp"

namespace resmatch::sched {

std::optional<std::size_t> FcfsPolicy::pick_next(
    const std::deque<QueuedJob>& queue, const ClusterView& cluster,
    const std::vector<RunningJobInfo>& /*running*/, Seconds /*now*/) {
  if (queue.empty()) return std::nullopt;
  if (fits_now(queue.front(), cluster)) return 0;
  return std::nullopt;  // head blocks the queue
}

}  // namespace resmatch::sched
