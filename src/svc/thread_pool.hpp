// Fixed-size worker pool.
//
// Deliberately minimal: the pool owns thread lifecycle (spawn, join) and
// nothing else. Work distribution belongs to the queue the workers drain
// (mpmc_queue.hpp) — fusing the two would force every user onto one
// work-item type. Each worker runs the supplied loop function to
// completion; the function is expected to block on its queue and return
// when the queue closes.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace resmatch::svc {

class ThreadPool {
 public:
  /// Spawn `workers` threads, each running `worker_main(index)` once.
  /// `worker_main` must return when its work source shuts down; join()
  /// (or the destructor) then reaps the threads.
  ThreadPool(std::size_t workers,
             std::function<void(std::size_t)> worker_main) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back(worker_main, i);
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { join(); }

  /// Wait for every worker to return. Idempotent.
  void join() {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace resmatch::svc
