// Fixed-size worker pool.
//
// Deliberately minimal: the pool owns thread lifecycle (spawn, join) and
// nothing else. Work distribution belongs to the queue the workers drain
// (mpmc_queue.hpp) — fusing the two would force every user onto one
// work-item type. Each worker runs the supplied loop function to
// completion; the function is expected to block on its queue and return
// when the queue closes.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace resmatch::svc {

class ThreadPool {
 public:
  /// Spawn `workers` threads, each running `worker_main(index)` once.
  /// `worker_main` must return when its work source shuts down; join()
  /// (or the destructor) then reaps the threads.
  ///
  /// Exception-safe: if spawning thread k throws (thread-creation
  /// failure, a throwing copy of `worker_main`, or a throwing
  /// `spawn_gate`), the k already-running workers are joined before the
  /// exception propagates — otherwise the member vector's destructor
  /// would hit joinable threads and call std::terminate. `on_spawn_failure`
  /// runs first so callers whose workers block on a work source can
  /// release them (matchd closes its admission queue); without it the
  /// partial join would wait on workers that never return.
  ///
  /// `spawn_gate(index)` runs in the spawning thread immediately before
  /// each thread is created and may throw to veto the spawn — the
  /// deterministic fault-injection hook (util::FaultSite::kThreadSpawn)
  /// that lets tests drive this recovery path without relying on the
  /// platform to run out of threads.
  ThreadPool(std::size_t workers,
             std::function<void(std::size_t)> worker_main,
             std::function<void()> on_spawn_failure = nullptr,
             std::function<void(std::size_t)> spawn_gate = nullptr) {
    threads_.reserve(workers);
    try {
      for (std::size_t i = 0; i < workers; ++i) {
        if (spawn_gate) spawn_gate(i);
        threads_.emplace_back(worker_main, i);
      }
    } catch (...) {
      if (on_spawn_failure) on_spawn_failure();
      join();
      throw;
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { join(); }

  /// Wait for every worker to return. Idempotent.
  void join() {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace resmatch::svc
