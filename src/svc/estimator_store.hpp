// Shard-striped concurrent store of per-group estimator state.
//
// The online matchmaker keeps one state object per similarity group (a
// core::SaGroupState or core::LiGroupState — anything with the
// to_fields/from_fields/kKind snapshot codec). Concurrency is mutex-per-
// shard: a group key hashes to one of `shards` stripes, and all work on
// that group happens under its stripe's lock. Algorithm 1's transitions
// are a handful of loads and stores, so the critical sections are tens of
// nanoseconds and throughput scales with the shard count, not the worker
// count (measured in bench/micro_service.cpp).
//
// The store is bounded: each shard holds at most max_groups/shards entries
// and evicts least-recently-used groups beyond that. Eviction forgets a
// group's learned estimate — the next submission re-enters at the user's
// request, exactly like a first-seen group, so eviction degrades savings
// but never correctness.
//
// Snapshot/restore writes a versioned CSV (header line carries format
// version and state kind) so a restarted service re-enters operation warm,
// the same motivation as the paper's §2.2 offline training phase.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <fstream>
#include <list>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/expected.hpp"
#include "util/fault.hpp"

namespace resmatch::svc {

struct StoreConfig {
  /// Stripe count; rounded up to a power of two, at least 1.
  std::size_t shards = 16;
  /// Total entry bound across all shards (enforced per shard as
  /// max_groups/shards, so the realized bound is within one entry per
  /// shard of the configured total).
  std::size_t max_groups = 1 << 20;
  /// Deterministic fault injection for snapshot I/O (save/load/rename).
  /// Null = disabled; the paths then pay one null test each.
  util::FaultInjector* faults = nullptr;
};

/// Counters of one stripe. Updated with relaxed atomics under the shard
/// lock; readable without it.
struct ShardStats {
  std::uint64_t entries = 0;
  std::uint64_t hits = 0;       ///< with_group found an existing entry
  std::uint64_t misses = 0;     ///< with_group created a fresh entry
  std::uint64_t evictions = 0;  ///< LRU entries dropped at the bound
};

struct StoreStats {
  std::uint64_t entries = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::vector<ShardStats> shards;
};

/// File format identity; version bumps when the row schema changes.
inline constexpr const char* kStoreMagic = "resmatch-estimator-store";
inline constexpr int kStoreVersion = 1;

template <typename State>
class EstimatorStore {
 public:
  explicit EstimatorStore(StoreConfig config = {}) : config_(config) {
    std::size_t n = 1;
    while (n < std::max<std::size_t>(config.shards, 1)) n <<= 1;
    // Shard is immovable (mutex + atomics); build the vector at its final
    // size and move-assign the whole container.
    shards_ = std::vector<Shard>(n);
    mask_ = n - 1;
    per_shard_cap_ = std::max<std::size_t>(1, config.max_groups / n);
  }

  EstimatorStore(const EstimatorStore&) = delete;
  EstimatorStore& operator=(const EstimatorStore&) = delete;

  /// Find-or-create the group for `key` and run `fn(State&)` under the
  /// shard lock, returning fn's result. `make()` builds the fresh state on
  /// first sight; creation may evict the shard's least-recently-used
  /// entry. Touches the entry's recency.
  template <typename Make, typename Fn>
  auto with_group(std::uint64_t key, Make&& make, Fn&& fn) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      bump(shard.misses);
      if (shard.entries.size() >= per_shard_cap_) {
        // Evict the least-recently-used group of this stripe.
        shard.index.erase(shard.entries.front().first);
        shard.entries.pop_front();
        bump(shard.evictions);
      }
      shard.entries.emplace_back(key, make());
      it = shard.index.emplace(key, std::prev(shard.entries.end())).first;
    } else {
      bump(shard.hits);
      // Touch: move to most-recently-used position. splice keeps the
      // iterator (and the index entry) valid.
      shard.entries.splice(shard.entries.end(), shard.entries, it->second);
    }
    return fn(it->second->second);
  }

  /// Run `fn(State&)` under the shard lock only if the group exists
  /// (touching its recency). Returns whether it did.
  template <typename Fn>
  bool modify_if_present(std::uint64_t key, Fn&& fn) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.entries.splice(shard.entries.end(), shard.entries, it->second);
    fn(it->second->second);
    return true;
  }

  /// Copy of the group's state if present. Does not touch recency, so
  /// read-mostly previews never perturb eviction order.
  [[nodiscard]] std::optional<State> peek(std::uint64_t key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    return it->second->second;
  }

  /// Visit every (key, state) pair, one shard lock at a time. `fn` must
  /// not call back into the store (deadlock).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [key, state] : shard.entries) fn(key, state);
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.entries.size();
    }
    return total;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Entry bound of one stripe (max_groups / shard_count, at least 1);
  /// the denominator for per-shard occupancy metrics.
  [[nodiscard]] std::size_t per_shard_capacity() const noexcept {
    return per_shard_cap_;
  }

  /// Counters of one stripe, readable concurrently with traffic.
  [[nodiscard]] ShardStats shard_stats(std::size_t index) const {
    const Shard& shard = shards_[index];
    ShardStats s;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      s.entries = shard.entries.size();
    }
    s.hits = shard.hits.load(std::memory_order_relaxed);
    s.misses = shard.misses.load(std::memory_order_relaxed);
    s.evictions = shard.evictions.load(std::memory_order_relaxed);
    return s;
  }

  /// Stripe index of a key (stable for the store's lifetime); lets callers
  /// keep their own per-shard counters aligned with the store's striping.
  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const noexcept {
    return mix(key) & mask_;
  }

  [[nodiscard]] StoreStats stats() const {
    StoreStats out;
    out.shards.reserve(shards_.size());
    for (const Shard& shard : shards_) {
      ShardStats s;
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        s.entries = shard.entries.size();
      }
      s.hits = shard.hits.load(std::memory_order_relaxed);
      s.misses = shard.misses.load(std::memory_order_relaxed);
      s.evictions = shard.evictions.load(std::memory_order_relaxed);
      out.entries += s.entries;
      out.hits += s.hits;
      out.misses += s.misses;
      out.evictions += s.evictions;
      out.shards.push_back(s);
    }
    return out;
  }

  // --- snapshot / restore --------------------------------------------------

  /// Write every entry as versioned CSV: a header line identifying format,
  /// version and state kind, then one `key,field...` row per group in
  /// least-to-most recently used order per shard (so a restore reproduces
  /// each shard's eviction order).
  void save(std::ostream& out) const {
    out << kStoreMagic << ',' << kStoreVersion << ',' << State::kKind << '\n';
    char buf[32];
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [key, state] : shard.entries) {
        out << key;
        for (const double field : state.to_fields()) {
          std::snprintf(buf, sizeof(buf), "%.17g", field);
          out << ',' << buf;
        }
        out << '\n';
      }
    }
  }

  /// Crash-safe snapshot: writes to `path + ".tmp"` in the same directory
  /// and atomically renames over the target, so a crash (or any failure)
  /// mid-save leaves the previous snapshot intact — never a truncated or
  /// missing file. Single-writer: concurrent save_file calls on the same
  /// path would share the temp name.
  [[nodiscard]] bool save_file(const std::string& path) const {
    if (util::fault(config_.faults, util::FaultSite::kStoreWrite)) {
      return false;  // injected: writer failed before touching the disk
    }
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) return false;
      save(out);
      out.flush();
      if (!out) {
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (util::fault(config_.faults, util::FaultSite::kSnapshotRename) ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
      // Injected or real rename failure: the previous snapshot is intact
      // by construction; drop the orphaned temp file.
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  }

  /// Restore entries from a snapshot. The entry bound still holds (a
  /// snapshot larger than the configured bound drops each shard's oldest
  /// rows), but restoration is NOT traffic: it does not touch the
  /// hit/miss/eviction counters, so a warm restart starts its hit-rate
  /// metrics from zero instead of reporting one spurious miss per
  /// restored group. Returns the number of rows read, or a parse error.
  [[nodiscard]] util::Expected<std::size_t> load(std::istream& in) {
    std::string line;
    if (!std::getline(in, line)) {
      return util::Expected<std::size_t>::failure("empty snapshot");
    }
    if (in.eof()) {
      // save() writes '\n' after the header; a header ending at EOF means
      // the snapshot was cut before its first row.
      return util::Expected<std::size_t>::failure(
          "truncated snapshot header: " + line);
    }
    std::istringstream header(line);
    std::string magic, kind;
    int version = 0;
    if (!std::getline(header, magic, ',') || magic != kStoreMagic) {
      return util::Expected<std::size_t>::failure(
          "not an estimator-store snapshot");
    }
    if (!(header >> version) || version != kStoreVersion) {
      return util::Expected<std::size_t>::failure(
          "unsupported snapshot version: " + line);
    }
    header.ignore(1, ',');
    if (!std::getline(header, kind) || kind != State::kKind) {
      return util::Expected<std::size_t>::failure(
          "snapshot holds '" + kind + "' state, store expects '" +
          State::kKind + "'");
    }

    std::size_t restored = 0;
    while (std::getline(in, line)) {
      // save() terminates every row with '\n'. A final line that ends at
      // EOF instead was cut mid-write (a crash or a partial copy): its
      // last field may be silently chopped to a shorter, still-parseable
      // number, so it must be rejected, not trusted. Callers with a WAL
      // recover the lost rows by replay (svc::Matchd::recover).
      if (in.eof()) {
        return util::Expected<std::size_t>::failure(
            "truncated trailing row (no newline): " + line);
      }
      if (line.empty()) continue;
      std::istringstream row(line);
      std::string cell;
      if (!std::getline(row, cell, ',')) {
        return util::Expected<std::size_t>::failure("malformed row: " + line);
      }
      std::uint64_t key = 0;
      try {
        key = std::stoull(cell);
      } catch (const std::exception&) {
        return util::Expected<std::size_t>::failure("bad key: " + line);
      }
      std::vector<double> fields;
      while (std::getline(row, cell, ',')) {
        try {
          fields.push_back(std::stod(cell));
        } catch (const std::exception&) {
          return util::Expected<std::size_t>::failure("bad field: " + line);
        }
      }
      auto state = State::from_fields(fields);
      if (!state) {
        return util::Expected<std::size_t>::failure("invalid state: " + line);
      }
      restore_entry(key, std::move(*state));
      ++restored;
    }
    return restored;
  }

  [[nodiscard]] util::Expected<std::size_t> load_file(
      const std::string& path) {
    if (util::fault(config_.faults, util::FaultSite::kStoreRead)) {
      return util::Expected<std::size_t>::failure(
          "injected store-read fault: " + path);
    }
    std::ifstream in(path);
    if (!in) {
      return util::Expected<std::size_t>::failure("cannot open " + path);
    }
    return load(in);
  }

  /// Insert-or-overwrite one entry without touching traffic counters —
  /// the WAL replay path (and any other restoration source) feeds
  /// recovered state through here. Same LRU bookkeeping as load().
  void restore(std::uint64_t key, State state) {
    restore_entry(key, std::move(state));
  }

 private:
  /// One stripe: LRU list (front = oldest) + key index + counters, padded
  /// to its own cache lines so neighboring stripes never false-share.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::list<std::pair<std::uint64_t, State>> entries;
    std::unordered_map<std::uint64_t,
                       typename std::list<std::pair<std::uint64_t, State>>::iterator>
        index;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  /// splitmix64 finalizer: similarity keys are themselves hashes, but
  /// their low bits alone are not guaranteed uniform across shards.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static void bump(std::atomic<std::uint64_t>& counter) noexcept {
    // A real atomic RMW: callers today bump under the shard lock, but a
    // load+store pair would silently drop counts the moment any caller
    // (a metrics reader, a future lock-free path) bumps outside it.
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  /// Insert-or-overwrite for load(): the same LRU bookkeeping as
  /// with_group, but silent — restoring a snapshot is bookkeeping, not
  /// traffic, so it must not perturb hit/miss/eviction counters.
  void restore_entry(std::uint64_t key, State state) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(state);
      shard.entries.splice(shard.entries.end(), shard.entries, it->second);
      return;
    }
    if (shard.entries.size() >= per_shard_cap_) {
      shard.index.erase(shard.entries.front().first);
      shard.entries.pop_front();
    }
    shard.entries.emplace_back(key, std::move(state));
    shard.index.emplace(key, std::prev(shard.entries.end()));
  }

  Shard& shard_for(std::uint64_t key) noexcept {
    return shards_[shard_of(key)];
  }
  const Shard& shard_for(std::uint64_t key) const noexcept {
    return shards_[shard_of(key)];
  }

  StoreConfig config_;
  std::vector<Shard> shards_;
  std::size_t mask_ = 0;
  std::size_t per_shard_cap_ = 1;
};

}  // namespace resmatch::svc
