// Shard-striped concurrent store of per-group estimator state.
//
// The online matchmaker keeps one state object per similarity group (a
// core::SaGroupState or core::LiGroupState — anything with the
// to_fields/from_fields/kKind snapshot codec). Concurrency is mutex-per-
// shard: a group key hashes to one of `shards` stripes, and all work on
// that group happens under its stripe's lock. Algorithm 1's transitions
// are a handful of loads and stores, so the critical sections are tens of
// nanoseconds and throughput scales with the shard count, not the worker
// count (measured in bench/micro_service.cpp). Hot READS bypass the locks
// entirely: every mutation also publishes the group's post-transition
// state into a per-shard seqlock table that peek_fast() reads lock-free,
// so preview/estimate traffic never contends with writers. Batch callers
// (matchd's bulk-drain worker loop) use with_shard() to apply a whole run
// of same-shard transitions under a single lock acquisition.
//
// The store is bounded: each shard holds at most max_groups/shards entries
// and evicts least-recently-used groups beyond that. Eviction forgets a
// group's learned estimate — the next submission re-enters at the user's
// request, exactly like a first-seen group, so eviction degrades savings
// but never correctness.
//
// Snapshot/restore writes a versioned CSV (header line carries format
// version and state kind) so a restarted service re-enters operation warm,
// the same motivation as the paper's §2.2 offline training phase.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <fstream>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/expected.hpp"
#include "util/fault.hpp"

namespace resmatch::svc {

struct StoreConfig {
  /// Stripe count; rounded up to a power of two, at least 1.
  std::size_t shards = 16;
  /// Total entry bound across all shards (enforced per shard as
  /// max_groups/shards, so the realized bound is within one entry per
  /// shard of the configured total).
  std::size_t max_groups = 1 << 20;
  /// Deterministic fault injection for snapshot I/O (save/load/rename).
  /// Null = disabled; the paths then pay one null test each.
  util::FaultInjector* faults = nullptr;
};

/// Counters of one stripe. Updated with relaxed atomics under the shard
/// lock; readable without it.
struct ShardStats {
  std::uint64_t entries = 0;
  std::uint64_t hits = 0;       ///< with_group found an existing entry
  std::uint64_t misses = 0;     ///< with_group created a fresh entry
  std::uint64_t evictions = 0;  ///< LRU entries dropped at the bound
};

struct StoreStats {
  std::uint64_t entries = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::vector<ShardStats> shards;
};

/// File format identity; version bumps when the row schema changes.
inline constexpr const char* kStoreMagic = "resmatch-estimator-store";
inline constexpr int kStoreVersion = 1;

template <typename State>
class EstimatorStore {
 private:
  struct Shard;  // fwd: LockedShard below borrows one locked stripe

  // --- seqlock read table ---------------------------------------------------
  //
  // Each stripe carries an open-addressed table of seqlock-published group
  // states that peek_fast() reads without the shard mutex. All mutation
  // paths write it under the shard lock (single writer per table), so only
  // writer-vs-reader ordering matters: a publish wraps its field stores in
  // an odd/even seq window, and readers retry on any seq change. Every
  // shared word is a std::atomic (relaxed data + acquire/release fences on
  // seq), keeping the race TSan-clean by construction. Slots are claimed
  // forever within one table; growth retires the old table into the
  // shard's keep-alive list instead of freeing it, so a reader still
  // probing a stale table only ever sees stale-but-valid data.

  /// States wider than this many doubles are not published (the
  /// kSlotOversize sentinel routes their reads to the locked peek()).
  static constexpr std::size_t kMaxPublishedFields = 8;
  static constexpr std::uint32_t kSlotAbsent = 0xFFFFFFFFu;   ///< evicted
  static constexpr std::uint32_t kSlotOversize = 0xFFFFFFFEu; ///< too wide
  static constexpr std::size_t kInitialReadSlots = 64;

  struct ReadSlot {
    std::atomic<std::uint32_t> seq{0};   ///< odd = publish in progress
    std::atomic<std::uint32_t> used{0};  ///< 1 once claimed for a key
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint32_t> n_fields{kSlotAbsent};
    std::atomic<std::uint64_t> fields[kMaxPublishedFields];
  };

  struct ReadTable {
    explicit ReadTable(std::size_t cap) : mask(cap - 1), slots(cap) {}
    const std::size_t mask;  ///< cap - 1; cap is a power of two
    std::vector<ReadSlot> slots;
    std::size_t claimed = 0;  ///< writer-side occupancy, under shard lock
  };

 public:
  explicit EstimatorStore(StoreConfig config = {}) : config_(config) {
    std::size_t n = 1;
    while (n < std::max<std::size_t>(config.shards, 1)) n <<= 1;
    // Shard is immovable (mutex + atomics); build the vector at its final
    // size and move-assign the whole container.
    shards_ = std::vector<Shard>(n);
    mask_ = n - 1;
    per_shard_cap_ = std::max<std::size_t>(1, config.max_groups / n);
    for (Shard& s : shards_) {
      s.read_tables.push_back(
          std::make_unique<ReadTable>(kInitialReadSlots));
      s.read_table.store(s.read_tables.back().get(),
                         std::memory_order_relaxed);
    }
  }

  EstimatorStore(const EstimatorStore&) = delete;
  EstimatorStore& operator=(const EstimatorStore&) = delete;

  /// Find-or-create the group for `key` and run `fn(State&)` under the
  /// shard lock, returning fn's result. `make()` builds the fresh state on
  /// first sight; creation may evict the shard's least-recently-used
  /// entry. Touches the entry's recency.
  template <typename Make, typename Fn>
  auto with_group(std::uint64_t key, Make&& make, Fn&& fn) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return with_group_locked(shard, key, std::forward<Make>(make),
                             std::forward<Fn>(fn));
  }

  /// Run `fn(State&)` under the shard lock only if the group exists
  /// (touching its recency). Returns whether it did.
  template <typename Fn>
  bool modify_if_present(std::uint64_t key, Fn&& fn) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return modify_if_present_locked(shard, key, std::forward<Fn>(fn));
  }

  /// Borrowed view of one locked stripe, handed to with_shard()'s
  /// callback. Same find-or-create / modify semantics (and the same LRU
  /// and read-table bookkeeping) as the one-shot calls above, but without
  /// re-locking per group — the batch path applies a whole run of
  /// transitions under ONE lock acquisition. Every key passed MUST hash
  /// to the borrowed stripe (shard_of(key) == the with_shard index).
  class LockedShard {
   public:
    template <typename Make, typename Fn>
    auto with_group(std::uint64_t key, Make&& make, Fn&& fn) {
      return store_->with_group_locked(*shard_, key,
                                       std::forward<Make>(make),
                                       std::forward<Fn>(fn));
    }

    template <typename Fn>
    bool modify_if_present(std::uint64_t key, Fn&& fn) {
      return store_->modify_if_present_locked(*shard_, key,
                                              std::forward<Fn>(fn));
    }

   private:
    friend class EstimatorStore;
    LockedShard(EstimatorStore& store, Shard& shard)
        : store_(&store), shard_(&shard) {}
    EstimatorStore* store_;
    Shard* shard_;
  };

  /// Lock stripe `shard_index` once and run `fn(LockedShard&)` under it.
  /// `fn` must not call back into the store's locking APIs (deadlock).
  template <typename Fn>
  auto with_shard(std::size_t shard_index, Fn&& fn) {
    Shard& shard = shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    LockedShard view(*this, shard);
    return fn(view);
  }

  /// Copy of the group's state if present. Does not touch recency, so
  /// read-mostly previews never perturb eviction order.
  [[nodiscard]] std::optional<State> peek(std::uint64_t key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    return it->second->second;
  }

  /// Lock-free peek: reads the group's last published state from the
  /// shard's seqlock read table without touching the shard mutex, so hot
  /// previews never contend with writers. Every mutation path publishes
  /// under the shard lock (single writer per table), readers retry on a
  /// torn seqlock window and fall back to the locked peek() after a few
  /// attempts — the result is always a state some serialization of the
  /// concurrent history could have produced, and under serial drive it is
  /// byte-identical to peek(). States wider than kMaxPublishedFields
  /// doubles are not published and always take the locked fallback.
  [[nodiscard]] std::optional<State> peek_fast(std::uint64_t key) const {
    const Shard& shard = shard_for(key);
    const ReadTable* t = shard.read_table.load(std::memory_order_acquire);
    const std::size_t cap = t->mask + 1;
    const ReadSlot* slot = nullptr;
    std::size_t i = mix(key) & t->mask;
    for (std::size_t probe = 0; probe < cap; ++probe, i = (i + 1) & t->mask) {
      const ReadSlot& s = t->slots[i];
      if (s.used.load(std::memory_order_acquire) == 0) {
        // Claims are never removed within a table, so an empty slot on
        // the probe chain proves the key was never published here.
        return std::nullopt;
      }
      if (s.key.load(std::memory_order_relaxed) == key) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) return std::nullopt;
    double fields[kMaxPublishedFields];
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::uint32_t s1 = slot->seq.load(std::memory_order_acquire);
      if ((s1 & 1u) != 0) continue;  // publish in progress
      const std::uint32_t n =
          slot->n_fields.load(std::memory_order_relaxed);
      if (n <= kMaxPublishedFields) {
        for (std::uint32_t j = 0; j < n; ++j) {
          const std::uint64_t w =
              slot->fields[j].load(std::memory_order_relaxed);
          std::memcpy(&fields[j], &w, sizeof(w));
        }
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot->seq.load(std::memory_order_relaxed) != s1) continue;
      if (n == kSlotAbsent) return std::nullopt;  // evicted
      if (n == kSlotOversize) break;              // unpublishable state
      auto state =
          State::from_fields(std::vector<double>(fields, fields + n));
      if (!state) break;
      return std::optional<State>(std::move(*state));
    }
    return peek(key);  // contended or unpublishable: locked fallback
  }

  /// Visit every (key, state) pair, one shard lock at a time. `fn` must
  /// not call back into the store (deadlock).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [key, state] : shard.entries) fn(key, state);
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.entries.size();
    }
    return total;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Entry bound of one stripe (max_groups / shard_count, at least 1);
  /// the denominator for per-shard occupancy metrics.
  [[nodiscard]] std::size_t per_shard_capacity() const noexcept {
    return per_shard_cap_;
  }

  /// Counters of one stripe, readable concurrently with traffic.
  [[nodiscard]] ShardStats shard_stats(std::size_t index) const {
    const Shard& shard = shards_[index];
    ShardStats s;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      s.entries = shard.entries.size();
    }
    s.hits = shard.hits.load(std::memory_order_relaxed);
    s.misses = shard.misses.load(std::memory_order_relaxed);
    s.evictions = shard.evictions.load(std::memory_order_relaxed);
    return s;
  }

  /// Stripe index of a key (stable for the store's lifetime); lets callers
  /// keep their own per-shard counters aligned with the store's striping.
  [[nodiscard]] std::size_t shard_of(std::uint64_t key) const noexcept {
    return mix(key) & mask_;
  }

  [[nodiscard]] StoreStats stats() const {
    StoreStats out;
    out.shards.reserve(shards_.size());
    for (const Shard& shard : shards_) {
      ShardStats s;
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        s.entries = shard.entries.size();
      }
      s.hits = shard.hits.load(std::memory_order_relaxed);
      s.misses = shard.misses.load(std::memory_order_relaxed);
      s.evictions = shard.evictions.load(std::memory_order_relaxed);
      out.entries += s.entries;
      out.hits += s.hits;
      out.misses += s.misses;
      out.evictions += s.evictions;
      out.shards.push_back(s);
    }
    return out;
  }

  // --- snapshot / restore --------------------------------------------------

  /// Write every entry as versioned CSV: a header line identifying format,
  /// version and state kind, then one `key,field...` row per group in
  /// least-to-most recently used order per shard (so a restore reproduces
  /// each shard's eviction order). When `model` is non-null, a final
  /// `model,field...` row carries the learned-model blob (the literal
  /// first cell can never collide with an integer group key).
  void save(std::ostream& out,
            const std::vector<double>* model = nullptr) const {
    out << kStoreMagic << ',' << kStoreVersion << ',' << State::kKind << '\n';
    char buf[32];
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [key, state] : shard.entries) {
        out << key;
        for (const double field : state.to_fields()) {
          std::snprintf(buf, sizeof(buf), "%.17g", field);
          out << ',' << buf;
        }
        out << '\n';
      }
    }
    if (model != nullptr) {
      out << "model";
      for (const double field : *model) {
        std::snprintf(buf, sizeof(buf), "%.17g", field);
        out << ',' << buf;
      }
      out << '\n';
    }
  }

  /// Crash-safe snapshot: writes to `path + ".tmp"` in the same directory
  /// and atomically renames over the target, so a crash (or any failure)
  /// mid-save leaves the previous snapshot intact — never a truncated or
  /// missing file. Single-writer: concurrent save_file calls on the same
  /// path would share the temp name.
  [[nodiscard]] bool save_file(const std::string& path,
                               const std::vector<double>* model = nullptr) const {
    if (util::fault(config_.faults, util::FaultSite::kStoreWrite)) {
      return false;  // injected: writer failed before touching the disk
    }
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) return false;
      save(out, model);
      out.flush();
      if (!out) {
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (util::fault(config_.faults, util::FaultSite::kSnapshotRename) ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
      // Injected or real rename failure: the previous snapshot is intact
      // by construction; drop the orphaned temp file.
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  }

  /// Restore entries from a snapshot. The entry bound still holds (a
  /// snapshot larger than the configured bound drops each shard's oldest
  /// rows), but restoration is NOT traffic: it does not touch the
  /// hit/miss/eviction counters, so a warm restart starts its hit-rate
  /// metrics from zero instead of reporting one spurious miss per
  /// restored group. Returns the number of group rows read, or a parse
  /// error. When `model` is non-null and the snapshot carries a
  /// `model,...` row, its fields are copied there (left untouched
  /// otherwise — old snapshots simply lack the row); a model row in a
  /// snapshot read without a `model` out-param is skipped.
  [[nodiscard]] util::Expected<std::size_t> load(
      std::istream& in, std::vector<double>* model = nullptr) {
    std::string line;
    if (!std::getline(in, line)) {
      return util::Expected<std::size_t>::failure("empty snapshot");
    }
    if (in.eof()) {
      // save() writes '\n' after the header; a header ending at EOF means
      // the snapshot was cut before its first row.
      return util::Expected<std::size_t>::failure(
          "truncated snapshot header: " + line);
    }
    std::istringstream header(line);
    std::string magic, kind;
    int version = 0;
    if (!std::getline(header, magic, ',') || magic != kStoreMagic) {
      return util::Expected<std::size_t>::failure(
          "not an estimator-store snapshot");
    }
    if (!(header >> version) || version != kStoreVersion) {
      return util::Expected<std::size_t>::failure(
          "unsupported snapshot version: " + line);
    }
    header.ignore(1, ',');
    if (!std::getline(header, kind) || kind != State::kKind) {
      return util::Expected<std::size_t>::failure(
          "snapshot holds '" + kind + "' state, store expects '" +
          State::kKind + "'");
    }

    std::size_t restored = 0;
    while (std::getline(in, line)) {
      // save() terminates every row with '\n'. A final line that ends at
      // EOF instead was cut mid-write (a crash or a partial copy): its
      // last field may be silently chopped to a shorter, still-parseable
      // number, so it must be rejected, not trusted. Callers with a WAL
      // recover the lost rows by replay (svc::Matchd::recover).
      if (in.eof()) {
        return util::Expected<std::size_t>::failure(
            "truncated trailing row (no newline): " + line);
      }
      if (line.empty()) continue;
      std::istringstream row(line);
      std::string cell;
      if (!std::getline(row, cell, ',')) {
        return util::Expected<std::size_t>::failure("malformed row: " + line);
      }
      const bool model_row = cell == "model";
      std::uint64_t key = 0;
      if (!model_row) {
        try {
          key = std::stoull(cell);
        } catch (const std::exception&) {
          return util::Expected<std::size_t>::failure("bad key: " + line);
        }
      }
      std::vector<double> fields;
      while (std::getline(row, cell, ',')) {
        try {
          fields.push_back(std::stod(cell));
        } catch (const std::exception&) {
          return util::Expected<std::size_t>::failure("bad field: " + line);
        }
      }
      if (model_row) {
        if (model != nullptr) *model = std::move(fields);
        continue;  // not a group row; not counted in `restored`
      }
      auto state = State::from_fields(fields);
      if (!state) {
        return util::Expected<std::size_t>::failure("invalid state: " + line);
      }
      restore_entry(key, std::move(*state));
      ++restored;
    }
    return restored;
  }

  [[nodiscard]] util::Expected<std::size_t> load_file(
      const std::string& path, std::vector<double>* model = nullptr) {
    if (util::fault(config_.faults, util::FaultSite::kStoreRead)) {
      return util::Expected<std::size_t>::failure(
          "injected store-read fault: " + path);
    }
    std::ifstream in(path);
    if (!in) {
      return util::Expected<std::size_t>::failure("cannot open " + path);
    }
    return load(in, model);
  }

  /// Insert-or-overwrite one entry without touching traffic counters —
  /// the WAL replay path (and any other restoration source) feeds
  /// recovered state through here. Same LRU bookkeeping as load().
  void restore(std::uint64_t key, State state) {
    restore_entry(key, std::move(state));
  }

 private:
  /// One stripe: LRU list (front = oldest) + key index + counters, padded
  /// to its own cache lines so neighboring stripes never false-share.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::list<std::pair<std::uint64_t, State>> entries;
    std::unordered_map<std::uint64_t,
                       typename std::list<std::pair<std::uint64_t, State>>::iterator>
        index;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
    /// Seqlock read table peek_fast() probes lock-free. Mutated (and
    /// swapped on growth) only under the shard mutex.
    std::atomic<ReadTable*> read_table{nullptr};
    /// Every table ever installed, newest last. Retired tables are kept
    /// alive so a reader racing a growth never touches freed memory; the
    /// geometric growth schedule bounds the total waste at ~1x the live
    /// table.
    std::vector<std::unique_ptr<ReadTable>> read_tables;
  };

  /// splitmix64 finalizer: similarity keys are themselves hashes, but
  /// their low bits alone are not guaranteed uniform across shards.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static void bump(std::atomic<std::uint64_t>& counter) noexcept {
    // A real atomic RMW: callers today bump under the shard lock, but a
    // load+store pair would silently drop counts the moment any caller
    // (a metrics reader, a future lock-free path) bumps outside it.
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  /// Seqlock-publish one state (or a sentinel) into a claimed slot.
  /// Caller holds the shard mutex (single writer).
  static void publish_slot(ReadSlot& slot, std::uint32_t n,
                           const double* fields) noexcept {
    const std::uint32_t s0 = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(s0 + 1, std::memory_order_relaxed);  // odd: in progress
    std::atomic_thread_fence(std::memory_order_release);
    slot.n_fields.store(n, std::memory_order_relaxed);
    if (n <= kMaxPublishedFields) {
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t w;
        std::memcpy(&w, &fields[i], sizeof(w));
        slot.fields[i].store(w, std::memory_order_relaxed);
      }
    }
    slot.seq.store(s0 + 2, std::memory_order_release);  // even: complete
  }

  /// Find (or claim) the slot for `key` in the shard's live table, growing
  /// the table when the probe chain fills past half load. Caller holds the
  /// shard mutex.
  ReadSlot* claim_slot(Shard& shard, std::uint64_t key) {
    for (;;) {
      ReadTable* t = shard.read_table.load(std::memory_order_relaxed);
      const std::size_t cap = t->mask + 1;
      std::size_t i = mix(key) & t->mask;
      for (std::size_t probe = 0; probe < cap;
           ++probe, i = (i + 1) & t->mask) {
        ReadSlot& slot = t->slots[i];
        if (slot.used.load(std::memory_order_relaxed) == 0) {
          if ((t->claimed + 1) * 2 > cap) break;  // keep load factor <= 1/2
          // Order matters for racing readers: key before used, so a slot
          // observed used always carries its final key (keys never change
          // once claimed).
          slot.key.store(key, std::memory_order_relaxed);
          slot.used.store(1, std::memory_order_release);
          ++t->claimed;
          return &slot;
        }
        if (slot.key.load(std::memory_order_relaxed) == key) return &slot;
      }
      grow_read_table(shard);
    }
  }

  /// Install a bigger read table seeded from the shard's live entries
  /// (dead claims — evicted keys — are left behind, which is what lets a
  /// claim-forever table survive churn). The old table is retired, not
  /// freed. Caller holds the shard mutex.
  void grow_read_table(Shard& shard) {
    ReadTable* old = shard.read_table.load(std::memory_order_relaxed);
    std::size_t cap = (old->mask + 1) * 2;
    while (cap < (shard.entries.size() + 1) * 4) cap <<= 1;
    auto fresh = std::make_unique<ReadTable>(cap);
    for (const auto& [k, state] : shard.entries) {
      std::size_t i = mix(k) & fresh->mask;
      while (fresh->slots[i].used.load(std::memory_order_relaxed) != 0) {
        i = (i + 1) & fresh->mask;
      }
      ReadSlot& slot = fresh->slots[i];
      slot.key.store(k, std::memory_order_relaxed);
      slot.used.store(1, std::memory_order_relaxed);
      ++fresh->claimed;
      const std::vector<double> fields = state.to_fields();
      const std::uint32_t n =
          fields.size() <= kMaxPublishedFields
              ? static_cast<std::uint32_t>(fields.size())
              : kSlotOversize;
      publish_slot(slot, n, fields.data());
    }
    // The release store is what makes the fully seeded table visible to
    // peek_fast()'s acquire load.
    shard.read_table.store(fresh.get(), std::memory_order_release);
    shard.read_tables.push_back(std::move(fresh));
  }

  /// Publish `state` as the lock-free-readable snapshot of `key`. Caller
  /// holds the shard mutex.
  void publish(Shard& shard, std::uint64_t key, const State& state) {
    const std::vector<double> fields = state.to_fields();
    const std::uint32_t n =
        fields.size() <= kMaxPublishedFields
            ? static_cast<std::uint32_t>(fields.size())
            : kSlotOversize;
    publish_slot(*claim_slot(shard, key), n, fields.data());
  }

  /// Mark `key` absent for lock-free readers (eviction). Caller holds the
  /// shard mutex.
  void unpublish(Shard& shard, std::uint64_t key) {
    publish_slot(*claim_slot(shard, key), kSlotAbsent, nullptr);
  }

  /// with_group body shared by the one-shot and LockedShard entry points.
  /// Caller holds the shard mutex.
  template <typename Make, typename Fn>
  auto with_group_locked(Shard& shard, std::uint64_t key, Make&& make,
                         Fn&& fn) {
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      bump(shard.misses);
      if (shard.entries.size() >= per_shard_cap_) {
        // Evict the least-recently-used group of this stripe.
        const std::uint64_t evicted = shard.entries.front().first;
        shard.index.erase(evicted);
        shard.entries.pop_front();
        unpublish(shard, evicted);
        bump(shard.evictions);
      }
      shard.entries.emplace_back(key, make());
      it = shard.index.emplace(key, std::prev(shard.entries.end())).first;
    } else {
      bump(shard.hits);
      // Touch: move to most-recently-used position. splice keeps the
      // iterator (and the index entry) valid.
      shard.entries.splice(shard.entries.end(), shard.entries, it->second);
    }
    State& state = it->second->second;
    if constexpr (std::is_void_v<std::invoke_result_t<Fn&, State&>>) {
      fn(state);
      publish(shard, key, state);
    } else {
      auto result = fn(state);
      publish(shard, key, state);
      return result;
    }
  }

  /// modify_if_present body shared by the one-shot and LockedShard entry
  /// points. Caller holds the shard mutex.
  template <typename Fn>
  bool modify_if_present_locked(Shard& shard, std::uint64_t key, Fn&& fn) {
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.entries.splice(shard.entries.end(), shard.entries, it->second);
    State& state = it->second->second;
    fn(state);
    publish(shard, key, state);
    return true;
  }

  /// Insert-or-overwrite for load(): the same LRU bookkeeping as
  /// with_group, but silent — restoring a snapshot is bookkeeping, not
  /// traffic, so it must not perturb hit/miss/eviction counters.
  void restore_entry(std::uint64_t key, State state) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(state);
      shard.entries.splice(shard.entries.end(), shard.entries, it->second);
      publish(shard, key, it->second->second);
      return;
    }
    if (shard.entries.size() >= per_shard_cap_) {
      const std::uint64_t evicted = shard.entries.front().first;
      shard.index.erase(evicted);
      shard.entries.pop_front();
      unpublish(shard, evicted);
    }
    shard.entries.emplace_back(key, std::move(state));
    shard.index.emplace(key, std::prev(shard.entries.end()));
    publish(shard, key, shard.entries.back().second);
  }

  Shard& shard_for(std::uint64_t key) noexcept {
    return shards_[shard_of(key)];
  }
  const Shard& shard_for(std::uint64_t key) const noexcept {
    return shards_[shard_of(key)];
  }

  StoreConfig config_;
  std::vector<Shard> shards_;
  std::size_t mask_ = 0;
  std::size_t per_shard_cap_ = 1;
};

}  // namespace resmatch::svc
