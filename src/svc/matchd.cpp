#include "svc/matchd.hpp"

#include <algorithm>
#include <future>

namespace resmatch::svc {

namespace {
/// Grants within this tolerance are the same capacity rung (the same
/// epsilon the simulator uses for its lowered-start accounting).
constexpr double kGrantEps = 1e-9;
}  // namespace

Matchd::Matchd(MatchdConfig config)
    : config_(std::move(config)),
      key_fn_(config_.key_fn ? config_.key_fn : core::default_similarity_key),
      store_(config_.store),
      counters_(store_.shard_count()) {
  try {
    register_metrics();
    if (config_.workers > 0) {
      queue_ = std::make_unique<BoundedMpmcQueue<Request>>(
          std::max<std::size_t>(1, config_.queue_capacity));
      pool_ = std::make_unique<ThreadPool>(
          config_.workers, [this](std::size_t i) { worker_main(i); },
          // Spawn failure: release any already-running workers blocked
          // on pop() so the pool's recovery join can complete.
          [this] { queue_->close(); });
    }
  } catch (...) {
    // The destructor will not run for a throwing constructor; drop any
    // registered providers so they cannot capture a dead service.
    if (queue_) queue_->close();
    if (pool_) pool_->join();
    unregister_metrics();
    throw;
  }
}

Matchd::~Matchd() {
  if (queue_) queue_->close();
  if (pool_) pool_->join();
  unregister_metrics();
}

void Matchd::set_ladder(core::CapacityLadder ladder) {
  ladder_ = std::move(ladder);
}

MatchDecision Matchd::submit(const trace::JobRecord& job) {
  const bool timed = submit_hist_ != nullptr && latency_sampled();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  const std::uint64_t key = key_fn_(job);
  const MiB granted = store_.with_group(
      key,
      [&] {
        return core::SaGroupState::fresh(job.requested_mem_mib,
                                         config_.alpha);
      },
      [&](core::SaGroupState& g) { return g.commit(ladder_); });

  MatchDecision decision;
  decision.granted_mib = granted;
  decision.group_key = key;
  decision.lowered =
      granted + kGrantEps < ladder_.round_up(job.requested_mem_mib);

  ShardCounters& c = counters_[store_.shard_of(key)];
  c.submissions.fetch_add(1, std::memory_order_relaxed);
  if (decision.lowered) c.rewrites.fetch_add(1, std::memory_order_relaxed);
  if (timed) {
    submit_hist_->record(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
  }
  return decision;
}

MiB Matchd::preview(const trace::JobRecord& job) const {
  const std::uint64_t key = key_fn_(job);
  const auto state = store_.peek(key);
  if (!state) return ladder_.round_up(job.requested_mem_mib);
  return state->preview(ladder_);
}

void Matchd::cancel(const trace::JobRecord& job, MiB granted) {
  const bool timed = cancel_hist_ != nullptr && latency_sampled();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  const std::uint64_t key = key_fn_(job);
  if (store_.modify_if_present(
          key, [&](core::SaGroupState& g) { g.cancel(granted); })) {
    counters_[store_.shard_of(key)].cancels.fetch_add(
        1, std::memory_order_relaxed);
  }
  if (timed) {
    cancel_hist_->record(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
  }
}

void Matchd::feedback(const JobOutcome& outcome) {
  const bool timed = feedback_hist_ != nullptr && latency_sampled();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  const trace::JobRecord& job = outcome.job;
  const std::uint64_t key = key_fn_(job);
  // Create-if-missing mirrors the offline estimator: feedback for an
  // evicted (or never-seen) group re-enters at the request, then applies
  // the outcome.
  const bool success = store_.with_group(
      key,
      [&] {
        return core::SaGroupState::fresh(job.requested_mem_mib,
                                         config_.alpha);
      },
      [&](core::SaGroupState& g) {
        return g.apply_feedback(outcome.feedback, job.requested_mem_mib,
                                ladder_, config_.beta);
      });
  ShardCounters& c = counters_[store_.shard_of(key)];
  (success ? c.successes : c.failures)
      .fetch_add(1, std::memory_order_relaxed);
  if (timed) {
    feedback_hist_->record(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
  }
}

// --- asynchronous admission --------------------------------------------------

PushResult Matchd::admit(Request&& request) {
  if (!queue_) return PushResult::kClosed;
  if (queue_wait_hist_) request.admitted = std::chrono::steady_clock::now();
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  const PushResult result = queue_->try_push(std::move(request));
  if (result == PushResult::kOk) {
    async_accepted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (result == PushResult::kFull) {
      async_rejected_full_.fetch_add(1, std::memory_order_relaxed);
    }
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drained_.notify_all();
    }
  }
  return result;
}

PushResult Matchd::submit_async(const trace::JobRecord& job,
                                SubmitCallback on_decision) {
  Request request;
  request.kind = Request::Kind::kSubmit;
  request.job = job;
  request.on_decision = std::move(on_decision);
  return admit(std::move(request));
}

PushResult Matchd::feedback_async(const JobOutcome& outcome,
                                  DoneCallback on_done) {
  Request request;
  request.kind = Request::Kind::kFeedback;
  request.job = outcome.job;
  request.fb = outcome.feedback;
  request.on_done = std::move(on_done);
  return admit(std::move(request));
}

PushResult Matchd::cancel_async(const trace::JobRecord& job, MiB granted,
                                DoneCallback on_done) {
  Request request;
  request.kind = Request::Kind::kCancel;
  request.job = job;
  request.granted = granted;
  request.on_done = std::move(on_done);
  return admit(std::move(request));
}

void Matchd::worker_main(std::size_t /*worker_index*/) {
  while (auto request = queue_->pop()) {
    if (queue_wait_hist_) {
      queue_wait_hist_->record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        request->admitted)
              .count());
    }
    process(*request);
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drained_.notify_all();
    }
  }
}

void Matchd::process(Request& request) {
  switch (request.kind) {
    case Request::Kind::kSubmit: {
      const MatchDecision decision = submit(request.job);
      if (request.on_decision) request.on_decision(decision);
      break;
    }
    case Request::Kind::kFeedback: {
      feedback(request.job, request.fb);
      if (request.on_done) request.on_done();
      break;
    }
    case Request::Kind::kCancel: {
      cancel(request.job, request.granted);
      if (request.on_done) request.on_done();
      break;
    }
  }
}

void Matchd::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

// --- observability -----------------------------------------------------------

void Matchd::register_metrics() {
  obs::Registry* reg = config_.metrics;
  if (!reg) return;

  std::uint32_t period = std::max<std::uint32_t>(1, config_.metrics_sample_period);
  while ((period & (period - 1)) != 0) period &= period - 1;  // round down
  sample_mask_ = period - 1;

  // 10 ns .. ~10 s in factor-2 steps: covers a shard-lock fast path and a
  // badly contended queue alike.
  const obs::HistogramSpec latency{1e-8, 2.0, 30};
  submit_hist_ = &reg->histogram(
      "resmatch_matchd_op_latency_seconds",
      "Latency of matchd operations (sampled 1-in-N per thread)", latency,
      {{"op", "submit"}});
  feedback_hist_ = &reg->histogram("resmatch_matchd_op_latency_seconds", "",
                                   latency, {{"op", "feedback"}});
  cancel_hist_ = &reg->histogram("resmatch_matchd_op_latency_seconds", "",
                                 latency, {{"op", "cancel"}});
  queue_wait_hist_ = &reg->histogram(
      "resmatch_matchd_queue_wait_seconds",
      "Time async requests spend in the admission queue", latency);

  // Counters/gauges are pull providers over the atomics the service
  // already maintains — zero added work per operation. They capture
  // `this`, so the destructor removes them.
  const auto add_counter = [&](const char* name, const char* help,
                               obs::Labels labels,
                               std::function<std::uint64_t()> fn) {
    reg->counter_fn(name, help, labels, std::move(fn));
    provider_keys_.emplace_back(name, std::move(labels));
  };
  const auto add_gauge = [&](const char* name, const char* help,
                             obs::Labels labels, std::function<double()> fn) {
    reg->gauge_fn(name, help, labels, std::move(fn));
    provider_keys_.emplace_back(name, std::move(labels));
  };
  const auto sum_shards =
      [this](std::atomic<std::uint64_t> ShardCounters::* member) {
        std::uint64_t total = 0;
        for (const ShardCounters& c : counters_) {
          total += (c.*member).load(std::memory_order_relaxed);
        }
        return total;
      };

  add_counter("resmatch_matchd_ops_total", "Operations served, by kind",
              {{"op", "submit"}}, [this, sum_shards] {
                return sum_shards(&ShardCounters::submissions);
              });
  add_counter("resmatch_matchd_ops_total", "", {{"op", "feedback"}},
              [this, sum_shards] {
                return sum_shards(&ShardCounters::successes) +
                       sum_shards(&ShardCounters::failures);
              });
  add_counter("resmatch_matchd_ops_total", "", {{"op", "cancel"}},
              [this, sum_shards] {
                return sum_shards(&ShardCounters::cancels);
              });
  add_counter("resmatch_matchd_rewrites_total",
              "Submissions granted below the rounded request", {},
              [this, sum_shards] {
                return sum_shards(&ShardCounters::rewrites);
              });
  add_counter("resmatch_matchd_outcomes_total", "Feedback results, by kind",
              {{"outcome", "success"}}, [this, sum_shards] {
                return sum_shards(&ShardCounters::successes);
              });
  add_counter("resmatch_matchd_outcomes_total", "",
              {{"outcome", "failure"}}, [this, sum_shards] {
                return sum_shards(&ShardCounters::failures);
              });
  add_counter("resmatch_matchd_async_accepted_total",
              "Requests admitted into the async queue", {}, [this] {
                return async_accepted_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_matchd_backpressure_rejects_total",
              "Async requests rejected because the queue was full", {},
              [this] {
                return async_rejected_full_.load(std::memory_order_relaxed);
              });
  add_gauge("resmatch_matchd_queue_depth",
            "Requests waiting in the admission queue", {}, [this] {
              return queue_ ? static_cast<double>(queue_->size()) : 0.0;
            });

  add_counter("resmatch_store_lookups_total",
              "Estimator-store group lookups, by result",
              {{"result", "hit"}}, [this] { return store_.stats().hits; });
  add_counter("resmatch_store_lookups_total", "", {{"result", "miss"}},
              [this] { return store_.stats().misses; });
  add_counter("resmatch_store_evictions_total",
              "Groups dropped at the LRU bound", {},
              [this] { return store_.stats().evictions; });
  add_gauge("resmatch_store_entries", "Resident similarity groups", {},
            [this] { return static_cast<double>(store_.size()); });
  for (std::size_t shard = 0; shard < store_.shard_count(); ++shard) {
    add_gauge("resmatch_store_shard_occupancy",
              "Resident fraction of one stripe's entry bound",
              {{"shard", std::to_string(shard)}}, [this, shard] {
                return static_cast<double>(
                           store_.shard_stats(shard).entries) /
                       static_cast<double>(store_.per_shard_capacity());
              });
  }
}

void Matchd::unregister_metrics() {
  if (!config_.metrics) return;
  for (const auto& [name, labels] : provider_keys_) {
    config_.metrics->remove(name, labels);
  }
  provider_keys_.clear();
}

// --- introspection -----------------------------------------------------------

MatchdStats Matchd::stats() const {
  MatchdStats out;
  out.shards.reserve(counters_.size());
  for (const ShardCounters& c : counters_) {
    MatchdShardStats s;
    s.submissions = c.submissions.load(std::memory_order_relaxed);
    s.rewrites = c.rewrites.load(std::memory_order_relaxed);
    s.successes = c.successes.load(std::memory_order_relaxed);
    s.failures = c.failures.load(std::memory_order_relaxed);
    s.cancels = c.cancels.load(std::memory_order_relaxed);
    out.submissions += s.submissions;
    out.rewrites += s.rewrites;
    out.successes += s.successes;
    out.failures += s.failures;
    out.cancels += s.cancels;
    out.shards.push_back(s);
  }
  out.async_accepted = async_accepted_.load(std::memory_order_relaxed);
  out.async_rejected_full =
      async_rejected_full_.load(std::memory_order_relaxed);
  out.queue_depth = queue_ ? queue_->size() : 0;
  out.store = store_.stats();
  out.groups = out.store.entries;
  out.evictions = out.store.evictions;
  return out;
}

std::size_t Matchd::invariant_violations() const {
  std::size_t violations = 0;
  store_.for_each([&](std::uint64_t, const core::SaGroupState& g) {
    if (!g.invariants_hold()) ++violations;
  });
  return violations;
}

bool Matchd::save_store(const std::string& path) const {
  return store_.save_file(path);
}

util::Expected<std::size_t> Matchd::restore_store(const std::string& path) {
  return store_.load_file(path);
}

// --- MatchdEstimator ---------------------------------------------------------

MiB MatchdEstimator::estimate(const trace::JobRecord& job,
                              const core::SystemState& /*state*/) {
  if (service_->async_enabled()) {
    std::promise<MatchDecision> promise;
    auto decision = promise.get_future();
    const PushResult result = service_->submit_async(
        job, [&promise](const MatchDecision& d) { promise.set_value(d); });
    if (result == PushResult::kOk) return decision.get().granted_mib;
    // Backpressure on a serial driver: fall through to the direct path so
    // the replay makes progress (the rejection is still counted).
  }
  return service_->submit(job).granted_mib;
}

MiB MatchdEstimator::preview(const trace::JobRecord& job,
                             const core::SystemState& /*state*/) const {
  return service_->preview(job);
}

void MatchdEstimator::cancel(const trace::JobRecord& job, MiB granted) {
  if (service_->async_enabled()) {
    std::promise<void> promise;
    auto done = promise.get_future();
    const PushResult result = service_->cancel_async(
        job, granted, [&promise] { promise.set_value(); });
    if (result == PushResult::kOk) {
      done.get();
      return;
    }
  }
  service_->cancel(job, granted);
}

void MatchdEstimator::feedback(const trace::JobRecord& job,
                               const core::Feedback& fb) {
  if (service_->async_enabled()) {
    std::promise<void> promise;
    auto done = promise.get_future();
    const PushResult result = service_->feedback_async(
        JobOutcome{job, fb}, [&promise] { promise.set_value(); });
    if (result == PushResult::kOk) {
      done.get();
      return;
    }
  }
  service_->feedback(job, fb);
}

void MatchdEstimator::set_ladder(core::CapacityLadder ladder) {
  Estimator::set_ladder(ladder);
  service_->set_ladder(std::move(ladder));
}

}  // namespace resmatch::svc
