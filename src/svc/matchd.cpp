#include "svc/matchd.hpp"

#include <algorithm>
#include <filesystem>
#include <future>
#include <stdexcept>

namespace resmatch::svc {

namespace {
/// Grants within this tolerance are the same capacity rung (the same
/// epsilon the simulator uses for its lowered-start accounting).
constexpr double kGrantEps = 1e-9;

/// The store is constructed in the initializer list, before the ctor body
/// can thread the injector through — so splice it into the copied config.
StoreConfig store_config_with_faults(StoreConfig store,
                                     util::FaultInjector* faults) {
  if (!store.faults) store.faults = faults;
  return store;
}
}  // namespace

Matchd::Matchd(MatchdConfig config)
    : config_(std::move(config)),
      key_fn_(config_.key_fn ? config_.key_fn : core::default_similarity_key),
      store_(store_config_with_faults(config_.store,
                                      config_.durability.faults)),
      counters_(store_.shard_count()) {
  try {
    if (!config_.model_estimator.empty()) {
      // Built by NAME so twins constructed from one config (reference /
      // crashed / recovered in sim::crash_replay) each own a fresh model.
      model_ =
          core::make_estimator(config_.model_estimator, config_.model_options);
    }
    if (!config_.durability.wal_dir.empty()) {
      WalConfig wc;
      wc.dir = config_.durability.wal_dir;
      wc.shards = std::max<std::size_t>(1, config_.durability.wal_shards);
      wc.flush_every = config_.durability.wal_flush_every;
      wc.fsync_every = config_.durability.wal_fsync_every;
      wc.faults = config_.durability.faults;
      auto wal = Wal::open(std::move(wc));
      if (!wal) {
        throw std::runtime_error("matchd: cannot open WAL: " + wal.error());
      }
      wal_ = std::move(wal.value());
    }
    register_metrics();
    if (config_.workers > 0) {
      queue_ = std::make_unique<BoundedMpmcQueue<Request>>(
          std::max<std::size_t>(1, config_.queue_capacity));
      util::FaultInjector* faults = config_.durability.faults;
      pool_ = std::make_unique<ThreadPool>(
          config_.workers, [this](std::size_t i) { worker_main(i); },
          // Spawn failure: release any already-running workers blocked
          // on pop() so the pool's recovery join can complete.
          [this] { queue_->close(); },
          faults ? std::function<void(std::size_t)>([faults](std::size_t) {
            if (faults->should_fail(util::FaultSite::kThreadSpawn)) {
              throw std::runtime_error("injected thread-spawn fault");
            }
          })
                 : std::function<void(std::size_t)>{});
    }
  } catch (...) {
    // The destructor will not run for a throwing constructor; drop any
    // registered providers so they cannot capture a dead service, and
    // push any WAL records the partial startup managed to append.
    if (queue_) queue_->close();
    if (pool_) pool_->join();
    if (wal_) (void)wal_->flush_all();
    unregister_metrics();
    throw;
  }
}

Matchd::~Matchd() {
  if (queue_) queue_->close();
  if (pool_) pool_->join();
  // Workers are joined, so nothing races the final flush: every record the
  // service accepted reaches disk before the log files close (the
  // shutdown-durability guarantee).
  if (wal_) (void)wal_->flush_all();
  unregister_metrics();
}

void Matchd::set_ladder(core::CapacityLadder ladder) {
  if (model_) {
    std::lock_guard<std::mutex> lock(model_mutex_);
    model_->set_ladder(ladder);
  }
  ladder_ = std::move(ladder);
}

MatchDecision Matchd::submit(const trace::JobRecord& job) {
  const bool timed = submit_hist_ != nullptr && latency_sampled();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  const std::uint64_t key = key_fn_(job);

  if (wal_ && degraded_.load(std::memory_order_relaxed) &&
      !try_exit_degraded(key)) {
    // Pass-through: grant the rounded raw request without touching group
    // state, so nothing is learned that the log could not record.
    degraded_ops_.fetch_add(1, std::memory_order_relaxed);
    MatchDecision decision;
    decision.granted_mib = ladder_.round_up(job.requested_mem_mib);
    decision.group_key = key;
    counters_[store_.shard_of(key)].submissions.fetch_add(
        1, std::memory_order_relaxed);
    if (timed) {
      submit_hist_->record(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
    }
    return decision;
  }

  bool buffered = true;
  MiB granted = 0.0;
  if (model_) {
    // Model decisions serialize on the model mutex (the model is global
    // state, not shard-striped); the post-decision state is framed under
    // the same mutex so the log carries one total order for the model.
    std::lock_guard<std::mutex> lock(model_mutex_);
    granted = model_->estimate(job, core::SystemState{});
    if (wal_) buffered = wal_buffer_model_locked();
  } else {
    granted = store_.with_group(
        key,
        [&] {
          return core::SaGroupState::fresh(job.requested_mem_mib,
                                           config_.alpha);
        },
        [&](core::SaGroupState& g) {
          const MiB r = g.commit(ladder_);
          // Under the shard lock: frame ORDER is fixed at buffering time,
          // so the I/O (and its backoff sleeps) can run after release
          // without reordering the log or stalling the shard's other keys.
          if (wal_) buffered = wal_buffer_locked(key, g);
          return r;
        });
  }
  if (wal_) {
    bool durable = buffered;
    if (durable) {
      durable = model_ ? wal_commit_index(kModelWalShard, key)
                       : wal_commit(key);
    } else {
      wal_giveups_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!durable) {
      enter_degraded();
    } else {
      maybe_compact();
    }
  }

  MatchDecision decision;
  decision.granted_mib = granted;
  decision.group_key = key;
  decision.lowered =
      granted + kGrantEps < ladder_.round_up(job.requested_mem_mib);

  ShardCounters& c = counters_[store_.shard_of(key)];
  c.submissions.fetch_add(1, std::memory_order_relaxed);
  if (decision.lowered) c.rewrites.fetch_add(1, std::memory_order_relaxed);
  if (timed) {
    submit_hist_->record(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
  }
  return decision;
}

MiB Matchd::preview(const trace::JobRecord& job) const {
  if (model_) {
    // The learned model has no seqlock fast path; previews serialize on
    // the model mutex like every other model operation.
    std::lock_guard<std::mutex> lock(model_mutex_);
    return model_->preview(job, core::SystemState{});
  }
  const std::uint64_t key = key_fn_(job);
  // Lock-free read: previews ride the store's seqlock table and never
  // contend with submit/feedback writers on the shard mutex.
  const auto state = store_.peek_fast(key);
  if (!state) return ladder_.round_up(job.requested_mem_mib);
  return state->preview(ladder_);
}

void Matchd::cancel(const trace::JobRecord& job, MiB granted) {
  const bool timed = cancel_hist_ != nullptr && latency_sampled();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  const std::uint64_t key = key_fn_(job);
  if (wal_ && degraded_.load(std::memory_order_relaxed) &&
      !try_exit_degraded(key)) {
    // The probe slot being released was claimed by a pre-degradation
    // submit; dropping the cancel keeps memory and log consistent (the
    // group re-syncs on its next recorded transition).
    degraded_ops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool buffered = true;
  if (model_) {
    {
      std::lock_guard<std::mutex> lock(model_mutex_);
      model_->cancel(job, granted);
      if (wal_) buffered = wal_buffer_model_locked();
    }
    counters_[store_.shard_of(key)].cancels.fetch_add(
        1, std::memory_order_relaxed);
    if (wal_) {
      bool durable = buffered;
      if (durable) {
        durable = wal_commit_index(kModelWalShard, key);
      } else {
        wal_giveups_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!durable) {
        enter_degraded();
      } else {
        maybe_compact();
      }
    }
  } else if (store_.modify_if_present(key, [&](core::SaGroupState& g) {
               g.cancel(granted);
               if (wal_) buffered = wal_buffer_locked(key, g);
             })) {
    counters_[store_.shard_of(key)].cancels.fetch_add(
        1, std::memory_order_relaxed);
    if (wal_) {
      bool durable = buffered;
      if (durable) {
        durable = wal_commit(key);
      } else {
        wal_giveups_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!durable) {
        enter_degraded();
      } else {
        maybe_compact();
      }
    }
  }
  if (timed) {
    cancel_hist_->record(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
  }
}

void Matchd::feedback(const JobOutcome& outcome) {
  const bool timed = feedback_hist_ != nullptr && latency_sampled();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  const trace::JobRecord& job = outcome.job;
  const std::uint64_t key = key_fn_(job);
  if (wal_ && degraded_.load(std::memory_order_relaxed) &&
      !try_exit_degraded(key)) {
    // Drop rather than learn-without-recording: a lesson absent from the
    // log would silently vanish on recovery.
    degraded_ops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Create-if-missing mirrors the offline estimator: feedback for an
  // evicted (or never-seen) group re-enters at the request, then applies
  // the outcome.
  bool buffered = true;
  bool success = false;
  if (model_) {
    std::lock_guard<std::mutex> lock(model_mutex_);
    model_->feedback(job, outcome.feedback);
    success = outcome.feedback.success;
    if (wal_) buffered = wal_buffer_model_locked();
  } else {
    success = store_.with_group(
        key,
        [&] {
          return core::SaGroupState::fresh(job.requested_mem_mib,
                                           config_.alpha);
        },
        [&](core::SaGroupState& g) {
          const bool ok = g.apply_feedback(outcome.feedback,
                                           job.requested_mem_mib, ladder_,
                                           config_.beta);
          if (wal_) buffered = wal_buffer_locked(key, g);
          return ok;
        });
  }
  if (wal_) {
    bool durable = buffered;
    if (durable) {
      durable = model_ ? wal_commit_index(kModelWalShard, key)
                       : wal_commit(key);
    } else {
      wal_giveups_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!durable) {
      enter_degraded();
    } else {
      maybe_compact();
    }
  }
  ShardCounters& c = counters_[store_.shard_of(key)];
  (success ? c.successes : c.failures)
      .fetch_add(1, std::memory_order_relaxed);
  if (timed) {
    feedback_hist_->record(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
  }
}

// --- asynchronous admission --------------------------------------------------

PushResult Matchd::admit(Request&& request) {
  if (!queue_) return PushResult::kClosed;
  // Injected admission failure reads as backpressure: callers already
  // handle kFull (MatchdEstimator falls back to the synchronous path), so
  // the fault exercises the real rejection flow end to end.
  if (util::fault(config_.durability.faults,
                  util::FaultSite::kQueueAdmit)) {
    async_rejected_full_.fetch_add(1, std::memory_order_relaxed);
    return PushResult::kFull;
  }
  if (queue_wait_hist_) request.admitted = std::chrono::steady_clock::now();
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  const PushResult result = queue_->try_push(std::move(request));
  if (result == PushResult::kOk) {
    async_accepted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (result == PushResult::kFull) {
      async_rejected_full_.fetch_add(1, std::memory_order_relaxed);
    }
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drained_.notify_all();
    }
  }
  return result;
}

PushResult Matchd::submit_async(const trace::JobRecord& job,
                                SubmitCallback on_decision) {
  Request request;
  request.kind = Request::Kind::kSubmit;
  request.job = job;
  request.on_decision = std::move(on_decision);
  return admit(std::move(request));
}

PushResult Matchd::feedback_async(const JobOutcome& outcome,
                                  DoneCallback on_done) {
  Request request;
  request.kind = Request::Kind::kFeedback;
  request.job = outcome.job;
  request.fb = outcome.feedback;
  request.on_done = std::move(on_done);
  return admit(std::move(request));
}

PushResult Matchd::cancel_async(const trace::JobRecord& job, MiB granted,
                                DoneCallback on_done) {
  Request request;
  request.kind = Request::Kind::kCancel;
  request.job = job;
  request.granted = granted;
  request.on_done = std::move(on_done);
  return admit(std::move(request));
}

void Matchd::worker_main(std::size_t /*worker_index*/) {
  const std::size_t batch_max = std::max<std::size_t>(1, config_.batch_max);
  std::vector<Request> batch;
  batch.reserve(batch_max);
  for (;;) {
    batch.clear();
    if (queue_->pop_bulk(batch, batch_max, config_.batch_linger) == 0) {
      return;  // closed and drained
    }
    process_batch(batch);
  }
}

void Matchd::process_batch(std::vector<Request>& batch) {
  batch_drains_.fetch_add(1, std::memory_order_relaxed);
  if (batch_size_hist_) {
    batch_size_hist_->record(static_cast<double>(batch.size()));
  }
  if (queue_wait_hist_) {
    // Queue wait is per REQUEST: the batch's items were admitted at
    // different times, so one drain timestamp serves them all but each
    // keeps its own admission stamp. Requests admitted while the
    // histogram did not exist carry no stamp and must be skipped, not
    // recorded as an epoch-sized wait.
    const auto now = std::chrono::steady_clock::now();
    for (const Request& r : batch) {
      if (r.admitted != std::chrono::steady_clock::time_point{}) {
        queue_wait_hist_->record(
            std::chrono::duration<double>(now - r.admitted).count());
      }
    }
  }

  const std::size_t n = batch.size();
  struct Item {
    std::size_t pos;  ///< arrival position in `batch`
    std::uint64_t key;
    std::size_t shard;
  };
  /// Per-request results, indexed by arrival position; consumed by the
  /// completion pass so callbacks run outside every store lock.
  struct Done {
    MatchDecision decision;
    bool present = false;       ///< cancel found its group
    bool success = false;       ///< feedback outcome
    bool pass_through = false;  ///< served degraded (no state touched)
  };
  std::vector<Item> items;
  items.reserve(n);
  std::vector<Done> done(n);
  std::vector<std::uint64_t> key_of(n);
  std::vector<std::size_t> shard_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    key_of[i] = key_fn_(batch[i].job);
    shard_of[i] = store_.shard_of(key_of[i]);
    items.push_back(Item{i, key_of[i], shard_of[i]});
  }

  // Phase A: degraded checks. Heartbeat probes do their own WAL I/O, so
  // they run before any store lock is taken — one probe per operation,
  // the same cadence as the synchronous paths.
  if (wal_) {
    for (const Item& it : items) {
      if (degraded_.load(std::memory_order_relaxed) &&
          !try_exit_degraded(it.key)) {
        done[it.pos].pass_through = true;
      }
    }
  }

  if (model_) {
    // Model path: the learned estimator is one global object, so the
    // batch is applied in ARRIVAL order under a single mutex hold —
    // shard-sorting buys nothing and would reorder the model's training
    // sequence. One frame per request, one forced commit per batch.
    std::size_t frames = 0;
    bool buffer_ok = true;
    {
      std::lock_guard<std::mutex> lock(model_mutex_);
      for (std::size_t i = 0; i < n; ++i) {
        Request& r = batch[i];
        Done& d = done[i];
        if (d.pass_through) continue;
        switch (r.kind) {
          case Request::Kind::kSubmit: {
            const MiB granted =
                model_->estimate(r.job, core::SystemState{});
            d.decision.granted_mib = granted;
            d.decision.group_key = key_of[i];
            d.decision.lowered =
                granted + kGrantEps <
                ladder_.round_up(r.job.requested_mem_mib);
            break;
          }
          case Request::Kind::kFeedback:
            model_->feedback(r.job, r.fb);
            d.success = r.fb.success;
            break;
          case Request::Kind::kCancel:
            model_->cancel(r.job, r.granted);
            d.present = true;
            break;
        }
        if (wal_) {
          if (wal_buffer_model_locked()) {
            ++frames;
          } else {
            buffer_ok = false;
          }
        }
      }
    }
    if (wal_) {
      if (!buffer_ok) {
        wal_giveups_.fetch_add(1, std::memory_order_relaxed);
        enter_degraded();
      }
      if (frames > 0) {
        if (wal_commit_force(kModelWalShard)) {
          batch_wal_commits_.fetch_add(1, std::memory_order_relaxed);
          if (buffer_ok) {
            appends_since_compact_.fetch_add(frames,
                                             std::memory_order_relaxed);
          }
        } else {
          enter_degraded();
        }
      }
      maybe_compact();
    }
  } else {
    // Sort by shard — stable, so same-key requests keep their arrival
    // (FIFO) order and per-group trajectories match an unbatched run;
    // cross-key reordering within the batch commutes (distinct groups).
    std::stable_sort(items.begin(), items.end(),
                     [](const Item& a, const Item& b) {
                       return a.shard < b.shard;
                     });

    // Phase B, one shard run at a time: every transition of the run is
    // applied under ONE shard-lock hold with its WAL frame buffered in
    // order (no I/O under the lock). The commit is deferred to Phase C
    // below: frame order is fixed at buffering time and each key maps to
    // exactly one WAL file, so postponing the I/O past the remaining
    // runs cannot reorder any key's records.
    std::size_t total_frames = 0;
    bool buffer_ok = true;
    // Distinct WAL files this batch buffered into. Store shards
    // outnumber WAL shards by design (DurabilityConfig::wal_shards), so
    // many runs fold onto few files and the batch pays few fsyncs.
    std::vector<std::size_t> wal_touched;
    std::size_t run_begin = 0;
    while (run_begin < n) {
      const std::size_t shard = items[run_begin].shard;
      std::size_t run_end = run_begin;
      while (run_end < n && items[run_end].shard == shard) ++run_end;

      std::size_t frames = 0;
      store_.with_shard(shard, [&](auto& locked) {
        for (std::size_t j = run_begin; j < run_end; ++j) {
          const Item& it = items[j];
          Request& r = batch[it.pos];
          Done& d = done[it.pos];
          if (d.pass_through) continue;
          const auto buffer = [&](const core::SaGroupState& g) {
            if (!wal_) return;
            if (wal_buffer_locked(it.key, g)) {
              ++frames;
            } else {
              buffer_ok = false;
            }
          };
          switch (r.kind) {
            case Request::Kind::kSubmit: {
              const MiB granted = locked.with_group(
                  it.key,
                  [&] {
                    return core::SaGroupState::fresh(
                        r.job.requested_mem_mib, config_.alpha);
                  },
                  [&](core::SaGroupState& g) {
                    const MiB v = g.commit(ladder_);
                    buffer(g);
                    return v;
                  });
              d.decision.granted_mib = granted;
              d.decision.group_key = it.key;
              d.decision.lowered =
                  granted + kGrantEps <
                  ladder_.round_up(r.job.requested_mem_mib);
              break;
            }
            case Request::Kind::kFeedback: {
              d.success = locked.with_group(
                  it.key,
                  [&] {
                    return core::SaGroupState::fresh(
                        r.job.requested_mem_mib, config_.alpha);
                  },
                  [&](core::SaGroupState& g) {
                    const bool ok =
                        g.apply_feedback(r.fb, r.job.requested_mem_mib,
                                         ladder_, config_.beta);
                    buffer(g);
                    return ok;
                  });
              break;
            }
            case Request::Kind::kCancel: {
              d.present = locked.modify_if_present(
                  it.key, [&](core::SaGroupState& g) {
                    g.cancel(r.granted);
                    buffer(g);
                  });
              break;
            }
          }
        }
      });

      if (frames > 0) {
        total_frames += frames;
        const std::size_t wal_shard = shard % wal_->shard_count();
        if (std::find(wal_touched.begin(), wal_touched.end(), wal_shard) ==
            wal_touched.end()) {
          wal_touched.push_back(wal_shard);
        }
      }
      run_begin = run_end;
    }

    // Phase C: one forced write+fsync per distinct WAL file the batch
    // touched — the batch's durability points, amortized across every
    // run that folded onto the same file.
    if (wal_) {
      if (!buffer_ok) {
        wal_giveups_.fetch_add(1, std::memory_order_relaxed);
        enter_degraded();
      }
      bool committed_ok = buffer_ok;
      for (const std::size_t wal_shard : wal_touched) {
        if (wal_commit_force(wal_shard)) {
          batch_wal_commits_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // The frames stay buffered in order; they reach disk with the
          // next successful commit on this file (or the final flush),
          // and degraded mode stops new state from outrunning the log.
          committed_ok = false;
          enter_degraded();
        }
      }
      if (committed_ok) {
        appends_since_compact_.fetch_add(total_frames,
                                         std::memory_order_relaxed);
      }
      maybe_compact();
    }
  }

  // Phase D: counters, callbacks and completions in ARRIVAL order,
  // outside every store lock — callbacks may re-enter the service
  // (feedback_async from a decision callback is the common pattern).
  for (std::size_t i = 0; i < n; ++i) {
    Request& r = batch[i];
    Done& d = done[i];
    ShardCounters& c = counters_[shard_of[i]];
    switch (r.kind) {
      case Request::Kind::kSubmit: {
        if (d.pass_through) {
          // Pass-through grant: the rounded raw request, never lowered,
          // nothing learned that the log could not record.
          degraded_ops_.fetch_add(1, std::memory_order_relaxed);
          d.decision.granted_mib = ladder_.round_up(r.job.requested_mem_mib);
          d.decision.group_key = key_of[i];
          d.decision.lowered = false;
        }
        c.submissions.fetch_add(1, std::memory_order_relaxed);
        if (d.decision.lowered) {
          c.rewrites.fetch_add(1, std::memory_order_relaxed);
        }
        if (r.on_decision) r.on_decision(d.decision);
        break;
      }
      case Request::Kind::kFeedback: {
        if (d.pass_through) {
          degraded_ops_.fetch_add(1, std::memory_order_relaxed);
        } else {
          (d.success ? c.successes : c.failures)
              .fetch_add(1, std::memory_order_relaxed);
        }
        if (r.on_done) r.on_done();
        break;
      }
      case Request::Kind::kCancel: {
        if (d.pass_through) {
          degraded_ops_.fetch_add(1, std::memory_order_relaxed);
        } else if (d.present) {
          c.cancels.fetch_add(1, std::memory_order_relaxed);
        }
        if (r.on_done) r.on_done();
        break;
      }
    }
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drained_.notify_all();
    }
  }
}

void Matchd::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

// --- observability -----------------------------------------------------------

void Matchd::register_metrics() {
  obs::Registry* reg = config_.metrics;
  if (!reg) return;

  std::uint32_t period = std::max<std::uint32_t>(1, config_.metrics_sample_period);
  while ((period & (period - 1)) != 0) period &= period - 1;  // round down
  sample_mask_ = period - 1;

  // 10 ns .. ~10 s in factor-2 steps: covers a shard-lock fast path and a
  // badly contended queue alike.
  const obs::HistogramSpec latency{1e-8, 2.0, 30};
  submit_hist_ = &reg->histogram(
      "resmatch_matchd_op_latency_seconds",
      "Latency of matchd operations (sampled 1-in-N per thread)", latency,
      {{"op", "submit"}});
  feedback_hist_ = &reg->histogram("resmatch_matchd_op_latency_seconds", "",
                                   latency, {{"op", "feedback"}});
  cancel_hist_ = &reg->histogram("resmatch_matchd_op_latency_seconds", "",
                                 latency, {{"op", "cancel"}});
  queue_wait_hist_ = &reg->histogram(
      "resmatch_matchd_queue_wait_seconds",
      "Time async requests spend in the admission queue", latency);
  // 1 .. 4096 in factor-2 steps. The batched worker path records only
  // this histogram plus queue wait — per-op latency histograms belong to
  // the synchronous API, where one operation is one timed unit of work.
  batch_size_hist_ = &reg->histogram(
      "resmatch_batch_size", "Requests drained per worker batch",
      obs::HistogramSpec{1.0, 2.0, 13});

  // Counters/gauges are pull providers over the atomics the service
  // already maintains — zero added work per operation. They capture
  // `this`, so the destructor removes them.
  const auto add_counter = [&](const char* name, const char* help,
                               obs::Labels labels,
                               std::function<std::uint64_t()> fn) {
    reg->counter_fn(name, help, labels, std::move(fn));
    provider_keys_.emplace_back(name, std::move(labels));
  };
  const auto add_gauge = [&](const char* name, const char* help,
                             obs::Labels labels, std::function<double()> fn) {
    reg->gauge_fn(name, help, labels, std::move(fn));
    provider_keys_.emplace_back(name, std::move(labels));
  };
  const auto sum_shards =
      [this](std::atomic<std::uint64_t> ShardCounters::* member) {
        std::uint64_t total = 0;
        for (const ShardCounters& c : counters_) {
          total += (c.*member).load(std::memory_order_relaxed);
        }
        return total;
      };

  add_counter("resmatch_matchd_ops_total", "Operations served, by kind",
              {{"op", "submit"}}, [this, sum_shards] {
                return sum_shards(&ShardCounters::submissions);
              });
  add_counter("resmatch_matchd_ops_total", "", {{"op", "feedback"}},
              [this, sum_shards] {
                return sum_shards(&ShardCounters::successes) +
                       sum_shards(&ShardCounters::failures);
              });
  add_counter("resmatch_matchd_ops_total", "", {{"op", "cancel"}},
              [this, sum_shards] {
                return sum_shards(&ShardCounters::cancels);
              });
  add_counter("resmatch_matchd_rewrites_total",
              "Submissions granted below the rounded request", {},
              [this, sum_shards] {
                return sum_shards(&ShardCounters::rewrites);
              });
  add_counter("resmatch_matchd_outcomes_total", "Feedback results, by kind",
              {{"outcome", "success"}}, [this, sum_shards] {
                return sum_shards(&ShardCounters::successes);
              });
  add_counter("resmatch_matchd_outcomes_total", "",
              {{"outcome", "failure"}}, [this, sum_shards] {
                return sum_shards(&ShardCounters::failures);
              });
  add_counter("resmatch_matchd_async_accepted_total",
              "Requests admitted into the async queue", {}, [this] {
                return async_accepted_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_matchd_backpressure_rejects_total",
              "Async requests rejected because the queue was full", {},
              [this] {
                return async_rejected_full_.load(std::memory_order_relaxed);
              });
  add_gauge("resmatch_matchd_queue_depth",
            "Requests waiting in the admission queue", {}, [this] {
              return queue_ ? static_cast<double>(queue_->size()) : 0.0;
            });
  add_counter("resmatch_batch_drains_total",
              "Bulk drains executed by the worker pool", {}, [this] {
                return batch_drains_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_batch_wal_commits_total",
              "Forced WAL commit points (one write+fsync per batch shard "
              "run)",
              {}, [this] {
                return batch_wal_commits_.load(std::memory_order_relaxed);
              });

  add_counter("resmatch_store_lookups_total",
              "Estimator-store group lookups, by result",
              {{"result", "hit"}}, [this] { return store_.stats().hits; });
  add_counter("resmatch_store_lookups_total", "", {{"result", "miss"}},
              [this] { return store_.stats().misses; });
  add_counter("resmatch_store_evictions_total",
              "Groups dropped at the LRU bound", {},
              [this] { return store_.stats().evictions; });
  add_gauge("resmatch_store_entries", "Resident similarity groups", {},
            [this] { return static_cast<double>(store_.size()); });
  for (std::size_t shard = 0; shard < store_.shard_count(); ++shard) {
    add_gauge("resmatch_store_shard_occupancy",
              "Resident fraction of one stripe's entry bound",
              {{"shard", std::to_string(shard)}}, [this, shard] {
                return static_cast<double>(
                           store_.shard_stats(shard).entries) /
                       static_cast<double>(store_.per_shard_capacity());
              });
  }

  // Durability series are exported unconditionally (flat zero with the
  // WAL off) so dashboards and alerts need not special-case deployments.
  add_counter("resmatch_wal_appends_total",
              "WAL records accepted (buffered or written)", {},
              [this] { return wal_ ? wal_->stats().appends : 0; });
  add_counter("resmatch_wal_append_failures_total",
              "WAL appends refused after log repair (pre-retry count)", {},
              [this] { return wal_ ? wal_->stats().append_failures : 0; });
  add_counter("resmatch_wal_bytes_total", "Bytes written to WAL files", {},
              [this] { return wal_ ? wal_->stats().bytes_written : 0; });
  add_counter("resmatch_wal_fsyncs_total", "fsync(2) calls on WAL files",
              {}, [this] { return wal_ ? wal_->stats().fsyncs : 0; });
  add_counter("resmatch_wal_rotations_total",
              "WAL generation rotations (failed snapshots do not re-rotate)",
              {},
              [this] { return wal_ ? wal_->stats().rotations : 0; });
  add_counter("resmatch_matchd_compactions_total",
              "Completed checkpoint cycles (rotate + snapshot + GC)", {},
              [this] {
                return compactions_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_matchd_degraded_ops_total",
              "Operations served pass-through or dropped while degraded",
              {}, [this] {
                return degraded_ops_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_matchd_wal_retries_total",
              "WAL/snapshot attempts beyond each operation's first", {},
              [this] {
                return wal_retries_.load(std::memory_order_relaxed);
              });
  add_counter("resmatch_matchd_wal_giveups_total",
              "WAL appends abandoned after retry exhaustion", {}, [this] {
                return wal_giveups_.load(std::memory_order_relaxed);
              });
  // Learned-estimator series are exported unconditionally (flat zero
  // without a model) for the same dashboard-uniformity reason as the
  // durability series above.
  add_counter("resmatch_estimator_model_updates_total",
              "Learned-model mutations framed into the WAL", {}, [this] {
                return model_updates_.load(std::memory_order_relaxed);
              });
  add_gauge("resmatch_estimator_coverage",
            "Prequential coverage EWMA of the learned model (0 without "
            "one)",
            {}, [this] {
              if (!model_) return 0.0;
              std::lock_guard<std::mutex> lock(model_mutex_);
              const auto s = model_->model_stats();
              return s ? s->coverage : 0.0;
            });
  add_gauge("resmatch_estimator_margin",
            "Risk-aware multiplicative safety margin of the learned model",
            {}, [this] {
              if (!model_) return 0.0;
              std::lock_guard<std::mutex> lock(model_mutex_);
              const auto s = model_->model_stats();
              return s ? s->margin : 0.0;
            });
  add_gauge("resmatch_estimator_fallback_groups",
            "Similarity groups pinned back to successive approximation "
            "after sustained model mispredictions",
            {}, [this] {
              if (!model_) return 0.0;
              std::lock_guard<std::mutex> lock(model_mutex_);
              const auto s = model_->model_stats();
              return s ? static_cast<double>(s->groups_fallback) : 0.0;
            });
  add_gauge("resmatch_matchd_degraded",
            "1 while serving pass-through because the WAL refuses writes",
            {}, [this] {
              return degraded_.load(std::memory_order_relaxed) ? 1.0 : 0.0;
            });
  // 1 us .. ~17 min in factor-2 steps: a degraded spell can be one
  // retried write or a minutes-long disk outage.
  recovery_hist_ = &reg->histogram(
      "resmatch_matchd_recovery_seconds",
      "Time spent in degraded mode before the WAL recovered",
      obs::HistogramSpec{1e-6, 2.0, 30});
}

void Matchd::unregister_metrics() {
  if (!config_.metrics) return;
  for (const auto& [name, labels] : provider_keys_) {
    config_.metrics->remove(name, labels);
  }
  provider_keys_.clear();
}

// --- introspection -----------------------------------------------------------

MatchdStats Matchd::stats() const {
  MatchdStats out;
  out.shards.reserve(counters_.size());
  for (const ShardCounters& c : counters_) {
    MatchdShardStats s;
    s.submissions = c.submissions.load(std::memory_order_relaxed);
    s.rewrites = c.rewrites.load(std::memory_order_relaxed);
    s.successes = c.successes.load(std::memory_order_relaxed);
    s.failures = c.failures.load(std::memory_order_relaxed);
    s.cancels = c.cancels.load(std::memory_order_relaxed);
    out.submissions += s.submissions;
    out.rewrites += s.rewrites;
    out.successes += s.successes;
    out.failures += s.failures;
    out.cancels += s.cancels;
    out.shards.push_back(s);
  }
  out.async_accepted = async_accepted_.load(std::memory_order_relaxed);
  out.async_rejected_full =
      async_rejected_full_.load(std::memory_order_relaxed);
  out.batch_drains = batch_drains_.load(std::memory_order_relaxed);
  out.batch_wal_commits =
      batch_wal_commits_.load(std::memory_order_relaxed);
  out.queue_depth = queue_ ? queue_->size() : 0;
  out.store = store_.stats();
  out.groups = out.store.entries;
  out.evictions = out.store.evictions;
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.degraded_ops = degraded_ops_.load(std::memory_order_relaxed);
  out.wal_retries = wal_retries_.load(std::memory_order_relaxed);
  out.wal_giveups = wal_giveups_.load(std::memory_order_relaxed);
  out.compactions = compactions_.load(std::memory_order_relaxed);
  out.model_updates = model_updates_.load(std::memory_order_relaxed);
  if (wal_) out.wal = wal_->stats();
  return out;
}

std::optional<core::ModelStats> Matchd::model_stats() const {
  if (!model_) return std::nullopt;
  std::lock_guard<std::mutex> lock(model_mutex_);
  return model_->model_stats();
}

std::vector<double> Matchd::model_state() const {
  if (!model_) return {};
  std::lock_guard<std::mutex> lock(model_mutex_);
  return model_->save_state();
}

std::size_t Matchd::invariant_violations() const {
  std::size_t violations = 0;
  store_.for_each([&](std::uint64_t, const core::SaGroupState& g) {
    if (!g.invariants_hold()) ++violations;
  });
  return violations;
}

bool Matchd::save_store(const std::string& path) const {
  if (!model_) return store_.save_file(path);
  std::vector<double> state;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    state = model_->save_state();
  }
  return store_.save_file(path, &state);
}

util::Expected<std::size_t> Matchd::restore_store(const std::string& path) {
  std::vector<double> state;
  auto rows = store_.load_file(path, model_ ? &state : nullptr);
  if (rows && model_ && !state.empty()) {
    std::lock_guard<std::mutex> lock(model_mutex_);
    if (!model_->load_state(state)) {
      return util::Expected<std::size_t>::failure(
          "matchd: snapshot model state rejected by estimator '" +
          config_.model_estimator + "'");
    }
  }
  return rows;
}

// --- durability --------------------------------------------------------------

bool Matchd::wal_buffer_locked(std::uint64_t key,
                               const core::SaGroupState& g) {
  // Pure encoding, no I/O: the shard lock only fixes frame ORDER. The
  // retries (and their backoff sleeps) belong to wal_commit /
  // wal_commit_force, which run after the lock is released — a sick disk
  // backs off without stalling every other key hashed to the shard.
  const std::vector<double> fields = g.to_fields();
  return wal_->append_buffered(store_.shard_of(key), key, fields.data(),
                               fields.size());
}

bool Matchd::wal_buffer_model_locked() {
  // Full model state per frame (last record wins on replay): no delta
  // encoding, so a single surviving frame is enough to recover the model
  // exactly. Caller holds model_mutex_, which both orders the frames and
  // makes save_state() a consistent point-in-time capture.
  const std::vector<double> state = model_->save_state();
  model_updates_.fetch_add(1, std::memory_order_relaxed);
  return wal_->append_model_buffered(kModelWalShard, state.data(),
                                     state.size());
}

bool Matchd::wal_commit(std::uint64_t key) {
  return wal_commit_index(store_.shard_of(key), key);
}

bool Matchd::wal_commit_index(std::size_t shard, std::uint64_t jitter_seed) {
  const util::RetryResult r = util::retry_with(
      config_.durability.retry, config_.durability.retry_seed ^ jitter_seed,
      [&] { return wal_->commit(shard); });
  if (r.attempts > 1) {
    wal_retries_.fetch_add(r.attempts - 1, std::memory_order_relaxed);
  }
  if (!r.ok) {
    wal_giveups_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  appends_since_compact_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Matchd::wal_commit_force(std::size_t shard) {
  const util::RetryResult r = util::retry_with(
      config_.durability.retry,
      config_.durability.retry_seed ^ (0xBA7C4ULL + shard),
      [&] { return wal_->flush(shard); });
  if (r.attempts > 1) {
    wal_retries_.fetch_add(r.attempts - 1, std::memory_order_relaxed);
  }
  if (!r.ok) {
    wal_giveups_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Matchd::enter_degraded() {
  bool expected = false;
  if (degraded_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(degraded_mutex_);
    degraded_since_ = std::chrono::steady_clock::now();
  }
}

bool Matchd::try_exit_degraded(std::uint64_t key) {
  // One heartbeat probe, no retries: if a no-op record commits, real
  // appends will too. Failing cheaply keeps degraded operations fast.
  if (!wal_->append_heartbeat(store_.shard_of(key))) return false;
  bool expected = true;
  if (degraded_.compare_exchange_strong(expected, false,
                                        std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(degraded_mutex_);
    if (recovery_hist_) {
      recovery_hist_->record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        degraded_since_)
              .count());
    }
  }
  return true;
}

void Matchd::maybe_compact() {
  const std::uint64_t every = config_.durability.compact_every;
  if (every == 0 ||
      appends_since_compact_.load(std::memory_order_relaxed) < every) {
    return;
  }
  std::unique_lock<std::mutex> lock(compact_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // someone else is already compacting
  if (appends_since_compact_.load(std::memory_order_relaxed) < every) {
    return;  // they finished while we waited for the lock
  }
  (void)checkpoint_locked();
}

bool Matchd::checkpoint() {
  if (!wal_) return false;
  std::lock_guard<std::mutex> lock(compact_mutex_);
  return checkpoint_locked();
}

bool Matchd::checkpoint_locked() {
  // Rotate FIRST: everything in the old generations is then covered by
  // the snapshot below, making them garbage once the rename lands. But
  // never rotate while a snapshot from an earlier failed attempt is still
  // pending — that rotation already covers the older generations, and a
  // snapshot taken now is strictly newer than every record they hold, so
  // retrying the snapshot alone preserves the GC invariant.
  if (!snapshot_pending_) {
    if (!wal_->rotate()) {
      // Back off a full compact_every before the next automatic attempt;
      // without this, every committed operation past the threshold would
      // re-enter here and retry inline on the serving thread.
      appends_since_compact_.store(0, std::memory_order_relaxed);
      return false;
    }
    snapshot_pending_ = true;
  }
  const util::RetryResult r = util::retry_with(
      config_.durability.retry,
      config_.durability.retry_seed ^ 0xC0FFEEULL,
      [&] { return save_store(snapshot_path()); });
  if (r.attempts > 1) {
    wal_retries_.fetch_add(r.attempts - 1, std::memory_order_relaxed);
  }
  if (!r.ok) {
    // Old generations stay on disk: recovery replays more records than
    // strictly needed, which costs time, never data. Reset the counter so
    // the retry waits for the next compact_every window instead of firing
    // on every subsequent operation.
    appends_since_compact_.store(0, std::memory_order_relaxed);
    return false;
  }
  snapshot_pending_ = false;
  wal_->remove_old_generations();
  appends_since_compact_.store(0, std::memory_order_relaxed);
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string Matchd::snapshot_path() const {
  return config_.durability.wal_dir + "/snapshot.csv";
}

bool Matchd::flush_wal() { return wal_ && wal_->flush_all(); }

util::Expected<RecoveryStats> Matchd::recover(RecoverMode mode) {
  using Result = util::Expected<RecoveryStats>;
  if (config_.durability.wal_dir.empty()) {
    return Result::failure("matchd: recover() without a wal_dir");
  }
  RecoveryStats rs;
  // Model state candidates: the snapshot's model row, overridden by the
  // LAST kModelState record the replay delivers (the log is strictly
  // newer than the snapshot it survived).
  std::vector<double> model_state;
  if (mode == RecoverMode::kSnapshotAndWal) {
    const std::string snap = snapshot_path();
    std::error_code ec;
    if (std::filesystem::exists(snap, ec)) {
      util::Expected<std::size_t> rows = std::size_t{0};
      const util::RetryResult rr = util::retry_with(
          config_.durability.retry,
          config_.durability.retry_seed ^ 0x5EC0FE7ULL, [&] {
            rows = store_.load_file(snap, model_ ? &model_state : nullptr);
            return rows.has_value();
          });
      if (rr.attempts > 1) {
        wal_retries_.fetch_add(rr.attempts - 1, std::memory_order_relaxed);
      }
      if (!rows) {
        return Result::failure(
            "matchd: snapshot unreadable (" + rows.error() +
            "); retry with RecoverMode::kWalOnly to replay the log alone");
      }
      rs.snapshot_rows = rows.value();
    }
  }
  std::uint64_t invalid = 0;
  auto replayed = Wal::replay_typed(
      config_.durability.wal_dir,
      [&](WalRecordType type, std::uint64_t key, const double* fields,
          std::size_t n_fields) {
        if (type == WalRecordType::kModelState) {
          if (model_) model_state.assign(fields, fields + n_fields);
          return;
        }
        auto state = core::SaGroupState::from_fields(
            std::vector<double>(fields, fields + n_fields));
        if (!state) {
          ++invalid;
          return;
        }
        store_.restore(key, std::move(*state));
      });
  if (!replayed) return Result::failure(replayed.error());
  rs.wal_records = replayed.value().records;
  rs.wal_files = replayed.value().files;
  rs.torn_files = replayed.value().torn_files;
  rs.model_records = replayed.value().model_records;
  if (model_ && !model_state.empty()) {
    std::lock_guard<std::mutex> lock(model_mutex_);
    if (!model_->load_state(model_state)) {
      // A rejected blob leaves the model cold rather than failing the
      // whole recovery: group state is intact and the model re-learns.
      ++invalid;
    }
  }
  rs.invalid_records = invalid;
  return rs;
}

void Matchd::simulate_crash(bool leave_torn_tail) {
  if (queue_) queue_->close();
  if (pool_) pool_->join();
  if (wal_) wal_->simulate_crash(leave_torn_tail);
}

// --- MatchdEstimator ---------------------------------------------------------

std::string MatchdEstimator::name() const {
  const std::string& inner = service_->config().model_estimator;
  return "matchd[" + (inner.empty() ? "successive-approximation" : inner) +
         "]";
}

MiB MatchdEstimator::estimate(const trace::JobRecord& job,
                              const core::SystemState& /*state*/) {
  if (service_->async_enabled()) {
    std::promise<MatchDecision> promise;
    auto decision = promise.get_future();
    const PushResult result = service_->submit_async(
        job, [&promise](const MatchDecision& d) { promise.set_value(d); });
    if (result == PushResult::kOk) return decision.get().granted_mib;
    // Backpressure on a serial driver: fall through to the direct path so
    // the replay makes progress (the rejection is still counted).
  }
  return service_->submit(job).granted_mib;
}

MiB MatchdEstimator::preview(const trace::JobRecord& job,
                             const core::SystemState& /*state*/) const {
  return service_->preview(job);
}

void MatchdEstimator::cancel(const trace::JobRecord& job, MiB granted) {
  if (service_->async_enabled()) {
    std::promise<void> promise;
    auto done = promise.get_future();
    const PushResult result = service_->cancel_async(
        job, granted, [&promise] { promise.set_value(); });
    if (result == PushResult::kOk) {
      done.get();
      return;
    }
  }
  service_->cancel(job, granted);
}

void MatchdEstimator::feedback(const trace::JobRecord& job,
                               const core::Feedback& fb) {
  if (service_->async_enabled()) {
    std::promise<void> promise;
    auto done = promise.get_future();
    const PushResult result = service_->feedback_async(
        JobOutcome{job, fb}, [&promise] { promise.set_value(); });
    if (result == PushResult::kOk) {
      done.get();
      return;
    }
  }
  service_->feedback(job, fb);
}

void MatchdEstimator::set_ladder(core::CapacityLadder ladder) {
  Estimator::set_ladder(ladder);
  service_->set_ladder(std::move(ladder));
}

}  // namespace resmatch::svc
