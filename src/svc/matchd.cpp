#include "svc/matchd.hpp"

#include <algorithm>
#include <future>

namespace resmatch::svc {

namespace {
/// Grants within this tolerance are the same capacity rung (the same
/// epsilon the simulator uses for its lowered-start accounting).
constexpr double kGrantEps = 1e-9;
}  // namespace

Matchd::Matchd(MatchdConfig config)
    : config_(std::move(config)),
      key_fn_(config_.key_fn ? config_.key_fn : core::default_similarity_key),
      store_(config_.store),
      counters_(store_.shard_count()) {
  if (config_.workers > 0) {
    queue_ = std::make_unique<BoundedMpmcQueue<Request>>(
        std::max<std::size_t>(1, config_.queue_capacity));
    pool_ = std::make_unique<ThreadPool>(
        config_.workers, [this](std::size_t i) { worker_main(i); });
  }
}

Matchd::~Matchd() {
  if (queue_) queue_->close();
  if (pool_) pool_->join();
}

void Matchd::set_ladder(core::CapacityLadder ladder) {
  ladder_ = std::move(ladder);
}

MatchDecision Matchd::submit(const trace::JobRecord& job) {
  const std::uint64_t key = key_fn_(job);
  const MiB granted = store_.with_group(
      key,
      [&] {
        return core::SaGroupState::fresh(job.requested_mem_mib,
                                         config_.alpha);
      },
      [&](core::SaGroupState& g) { return g.commit(ladder_); });

  MatchDecision decision;
  decision.granted_mib = granted;
  decision.group_key = key;
  decision.lowered =
      granted + kGrantEps < ladder_.round_up(job.requested_mem_mib);

  ShardCounters& c = counters_[store_.shard_of(key)];
  c.submissions.fetch_add(1, std::memory_order_relaxed);
  if (decision.lowered) c.rewrites.fetch_add(1, std::memory_order_relaxed);
  return decision;
}

MiB Matchd::preview(const trace::JobRecord& job) const {
  const std::uint64_t key = key_fn_(job);
  const auto state = store_.peek(key);
  if (!state) return ladder_.round_up(job.requested_mem_mib);
  return state->preview(ladder_);
}

void Matchd::cancel(const trace::JobRecord& job, MiB granted) {
  const std::uint64_t key = key_fn_(job);
  if (store_.modify_if_present(
          key, [&](core::SaGroupState& g) { g.cancel(granted); })) {
    counters_[store_.shard_of(key)].cancels.fetch_add(
        1, std::memory_order_relaxed);
  }
}

void Matchd::feedback(const JobOutcome& outcome) {
  const trace::JobRecord& job = outcome.job;
  const std::uint64_t key = key_fn_(job);
  // Create-if-missing mirrors the offline estimator: feedback for an
  // evicted (or never-seen) group re-enters at the request, then applies
  // the outcome.
  const bool success = store_.with_group(
      key,
      [&] {
        return core::SaGroupState::fresh(job.requested_mem_mib,
                                         config_.alpha);
      },
      [&](core::SaGroupState& g) {
        return g.apply_feedback(outcome.feedback, job.requested_mem_mib,
                                ladder_, config_.beta);
      });
  ShardCounters& c = counters_[store_.shard_of(key)];
  (success ? c.successes : c.failures)
      .fetch_add(1, std::memory_order_relaxed);
}

// --- asynchronous admission --------------------------------------------------

PushResult Matchd::admit(Request&& request) {
  if (!queue_) return PushResult::kClosed;
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  const PushResult result = queue_->try_push(std::move(request));
  if (result == PushResult::kOk) {
    async_accepted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (result == PushResult::kFull) {
      async_rejected_full_.fetch_add(1, std::memory_order_relaxed);
    }
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drained_.notify_all();
    }
  }
  return result;
}

PushResult Matchd::submit_async(const trace::JobRecord& job,
                                SubmitCallback on_decision) {
  Request request;
  request.kind = Request::Kind::kSubmit;
  request.job = job;
  request.on_decision = std::move(on_decision);
  return admit(std::move(request));
}

PushResult Matchd::feedback_async(const JobOutcome& outcome,
                                  DoneCallback on_done) {
  Request request;
  request.kind = Request::Kind::kFeedback;
  request.job = outcome.job;
  request.fb = outcome.feedback;
  request.on_done = std::move(on_done);
  return admit(std::move(request));
}

PushResult Matchd::cancel_async(const trace::JobRecord& job, MiB granted,
                                DoneCallback on_done) {
  Request request;
  request.kind = Request::Kind::kCancel;
  request.job = job;
  request.granted = granted;
  request.on_done = std::move(on_done);
  return admit(std::move(request));
}

void Matchd::worker_main(std::size_t /*worker_index*/) {
  while (auto request = queue_->pop()) {
    process(*request);
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drained_.notify_all();
    }
  }
}

void Matchd::process(Request& request) {
  switch (request.kind) {
    case Request::Kind::kSubmit: {
      const MatchDecision decision = submit(request.job);
      if (request.on_decision) request.on_decision(decision);
      break;
    }
    case Request::Kind::kFeedback: {
      feedback(request.job, request.fb);
      if (request.on_done) request.on_done();
      break;
    }
    case Request::Kind::kCancel: {
      cancel(request.job, request.granted);
      if (request.on_done) request.on_done();
      break;
    }
  }
}

void Matchd::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

// --- introspection -----------------------------------------------------------

MatchdStats Matchd::stats() const {
  MatchdStats out;
  out.shards.reserve(counters_.size());
  for (const ShardCounters& c : counters_) {
    MatchdShardStats s;
    s.submissions = c.submissions.load(std::memory_order_relaxed);
    s.rewrites = c.rewrites.load(std::memory_order_relaxed);
    s.successes = c.successes.load(std::memory_order_relaxed);
    s.failures = c.failures.load(std::memory_order_relaxed);
    s.cancels = c.cancels.load(std::memory_order_relaxed);
    out.submissions += s.submissions;
    out.rewrites += s.rewrites;
    out.successes += s.successes;
    out.failures += s.failures;
    out.cancels += s.cancels;
    out.shards.push_back(s);
  }
  out.async_accepted = async_accepted_.load(std::memory_order_relaxed);
  out.async_rejected_full =
      async_rejected_full_.load(std::memory_order_relaxed);
  out.queue_depth = queue_ ? queue_->size() : 0;
  out.store = store_.stats();
  out.groups = out.store.entries;
  out.evictions = out.store.evictions;
  return out;
}

std::size_t Matchd::invariant_violations() const {
  std::size_t violations = 0;
  store_.for_each([&](std::uint64_t, const core::SaGroupState& g) {
    if (!g.invariants_hold()) ++violations;
  });
  return violations;
}

bool Matchd::save_store(const std::string& path) const {
  return store_.save_file(path);
}

util::Expected<std::size_t> Matchd::restore_store(const std::string& path) {
  return store_.load_file(path);
}

// --- MatchdEstimator ---------------------------------------------------------

MiB MatchdEstimator::estimate(const trace::JobRecord& job,
                              const core::SystemState& /*state*/) {
  if (service_->async_enabled()) {
    std::promise<MatchDecision> promise;
    auto decision = promise.get_future();
    const PushResult result = service_->submit_async(
        job, [&promise](const MatchDecision& d) { promise.set_value(d); });
    if (result == PushResult::kOk) return decision.get().granted_mib;
    // Backpressure on a serial driver: fall through to the direct path so
    // the replay makes progress (the rejection is still counted).
  }
  return service_->submit(job).granted_mib;
}

MiB MatchdEstimator::preview(const trace::JobRecord& job,
                             const core::SystemState& /*state*/) const {
  return service_->preview(job);
}

void MatchdEstimator::cancel(const trace::JobRecord& job, MiB granted) {
  if (service_->async_enabled()) {
    std::promise<void> promise;
    auto done = promise.get_future();
    const PushResult result = service_->cancel_async(
        job, granted, [&promise] { promise.set_value(); });
    if (result == PushResult::kOk) {
      done.get();
      return;
    }
  }
  service_->cancel(job, granted);
}

void MatchdEstimator::feedback(const trace::JobRecord& job,
                               const core::Feedback& fb) {
  if (service_->async_enabled()) {
    std::promise<void> promise;
    auto done = promise.get_future();
    const PushResult result = service_->feedback_async(
        JobOutcome{job, fb}, [&promise] { promise.set_value(); });
    if (result == PushResult::kOk) {
      done.get();
      return;
    }
  }
  service_->feedback(job, fb);
}

void MatchdEstimator::set_ladder(core::CapacityLadder ladder) {
  Estimator::set_ladder(ladder);
  service_->set_ladder(std::move(ladder));
}

}  // namespace resmatch::svc
