// matchd — the online matchmaker service façade.
//
// Packages the paper's estimator as a concurrent, long-running in-process
// service in front of the scheduler (the deployment shape of Rattihalli
// et al.'s two-stage Mesos front-end and Le & Liu's Flex):
//
//   submit(JobRecord)  -> MatchDecision   rewrite the request (Algorithm 1)
//   feedback(Outcome)  ->                 learn from the attempt's result
//
// State lives in a shard-striped EstimatorStore of core::SaGroupState, so
// any number of client threads may call the synchronous API concurrently;
// per-group transitions serialize on the group's shard lock only. An
// optional worker pool drains a bounded admission queue for callers that
// want asynchronous submission with backpressure (try_* calls reject with
// a reason when the queue is full rather than blocking producers).
//
// Determinism contract: driven serially (one call at a time — e.g. by the
// discrete-event simulator through MatchdEstimator), matchd's decisions
// are byte-identical to SuccessiveApproximationEstimator's, because both
// run the same core::SaGroupState transitions and group jobs with the
// same similarity key. Verified by sim::serve_replay. Under concurrent
// drive, ordering is not reproducible, but every per-group trajectory
// still satisfies Algorithm 1's invariants (alpha >= 1, estimate bounded
// by the proven capacity) — asserted by SaGroupState::invariants_hold in
// the svc tests.
//
// Worker pool batching: each worker drains up to `batch_max` requests per
// pop (waiting `batch_linger` for stragglers), sorts the batch by store
// shard, applies every transition of a shard under ONE lock acquisition
// with its WAL frames buffered in order, then commits the whole run with
// a single forced write+fsync after the lock is released. batch_max=1
// reproduces per-request commits through the same code path.
//
// Crash safety (opt-in via MatchdConfig::durability): every committed
// group transition is framed into a per-shard write-ahead log (wal.hpp)
// buffer under the same shard lock that serialized the transition — frame
// order is fixed at buffering time — and the I/O (with its capped
// exponential backoff retries) runs after the lock is released, so a sick
// disk never stalls other keys on the shard. Past retry exhaustion the
// service enters DEGRADED mode — submissions get pass-through grants (the rounded
// raw request, never a lowered one), feedback/cancel are dropped, and each
// degraded operation sends one heartbeat probe that restores normal
// service the moment the log accepts writes again. recover() rebuilds the
// store from snapshot + WAL replay; checkpoint() compacts the log into a
// fresh snapshot. See OPERATIONS.md for the operator-facing contract.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/factory.hpp"
#include "core/group_state.hpp"
#include "core/similarity.hpp"
#include "obs/metrics.hpp"
#include "svc/estimator_store.hpp"
#include "svc/mpmc_queue.hpp"
#include "svc/thread_pool.hpp"
#include "svc/wal.hpp"
#include "trace/job_record.hpp"
#include "util/fault.hpp"
#include "util/retry.hpp"

namespace resmatch::svc {

/// Crash-safety knobs. With `wal_dir` empty (the default) no WAL exists
/// and every mutation pays exactly one null-pointer check over the
/// previous behavior. With a directory set, every committed group
/// transition is appended to a per-shard write-ahead log under the same
/// shard lock that serialized the transition, so recovery (snapshot load
/// + WAL replay) reconstructs the store byte-identically.
struct DurabilityConfig {
  /// WAL + compaction-snapshot directory. Empty = durability off.
  std::string wal_dir;
  /// Records buffered in user space before write(2). 1 = every append
  /// survives a process crash.
  std::size_t wal_flush_every = 1;
  /// Flushed records allowed in the page cache before fsync(2). 1 = every
  /// append survives power loss.
  std::size_t wal_fsync_every = 64;
  /// Compact (rotate generations + snapshot + delete old logs)
  /// automatically after this many appends. 0 = only on checkpoint().
  std::uint64_t compact_every = 0;
  /// Number of WAL log files. Deliberately decoupled from the store's
  /// shard count: a batch commits each *WAL* shard it touched exactly
  /// once, so fewer files mean fewer forced fsyncs per batch (a 64-entry
  /// batch spread over 64 store shards pays at most `wal_shards` fsyncs,
  /// not 64). More files reduce append-mutex contention on the
  /// synchronous path. Keys map deterministically to files for any
  /// store/WAL shard-count combination, so recovery and replay are
  /// unaffected by this knob. Clamped to >= 1.
  std::size_t wal_shards = 8;
  /// Backoff schedule for WAL appends and snapshot I/O. The consecutive-
  /// failure cap of an armed FaultInjector must stay below max_attempts
  /// for injected faults to be recoverable-by-retry.
  util::RetryPolicy retry{.max_attempts = 6,
                          .initial_backoff = std::chrono::microseconds(50),
                          .max_backoff = std::chrono::microseconds(5000)};
  /// Base seed for deterministic backoff jitter (mixed with the group key).
  std::uint64_t retry_seed = 0x5EEDBA5Eu;
  /// Deterministic fault-injection hook, threaded into the store and the
  /// WAL as well. Not owned; null = disabled (zero cost).
  util::FaultInjector* faults = nullptr;
};

struct MatchdConfig {
  double alpha = 2.0;  ///< Algorithm 1 initial learning rate (> 1)
  double beta = 0.0;   ///< failure damping of alpha, in [0, 1)
  StoreConfig store;   ///< shard striping and the entry bound
  /// Similarity key; null = the paper's (user, app, requested memory).
  core::SimilarityKeyFn key_fn;
  /// Admission queue bound; pushes beyond it are rejected (backpressure).
  std::size_t queue_capacity = 1024;
  /// Worker threads draining the admission queue. 0 = synchronous-only
  /// service (the async API then rejects with kClosed).
  std::size_t workers = 0;
  /// Max requests one worker drains per batch. A batch takes each store
  /// shard's lock once and pays one WAL write+fsync per distinct WAL
  /// file touched (at most DurabilityConfig::wal_shards), so larger
  /// batches amortize both costs. 1 = per-request commit points (the
  /// unbatched behavior, through the same code path).
  std::size_t batch_max = 32;
  /// How long a partially filled batch waits for more arrivals before
  /// processing. 0 (default) = never wait; latency traded for batch size.
  std::chrono::microseconds batch_linger{0};
  /// Observability registry (not owned; must outlive the service). When
  /// set, the service exports latency histograms, queue-wait time,
  /// backpressure counters, and store hit/eviction/occupancy series under
  /// the resmatch_matchd_* / resmatch_store_* names (see README
  /// "Observability"). Null = fully uninstrumented (the default; the hot
  /// path then pays one branch per operation).
  obs::Registry* metrics = nullptr;
  /// Latency histograms sample 1 in N operations per thread (rounded to a
  /// power of two) so two steady_clock reads are not added to every
  /// submit. Counters are always exact. 0 or 1 = time every operation.
  std::uint32_t metrics_sample_period = 64;
  /// Crash safety: WAL, retry/backoff, degraded mode, fault injection.
  DurabilityConfig durability;
  /// Learned-model estimator attached to the service, by factory name
  /// ("quantile", "ensemble", ...). Empty (default) = the group-store
  /// Algorithm 1 path, exactly as before. When set, the service builds
  /// its own instance (so crash/recovery twins built from one config
  /// never share a model), routes submit/preview/feedback/cancel through
  /// it under one model mutex, and persists the model's full serialized
  /// state on every mutation: a kModelState WAL frame (log shard 0, last
  /// record wins) plus a `model` row in compaction snapshots, so
  /// recover() restores the estimator byte-identically. Model state
  /// frames grow with the model (the ensemble's with its group count);
  /// set DurabilityConfig::compact_every on long-running services so the
  /// log is folded into snapshots. Degraded mode behaves as for the store
  /// path: pass-through grants, dropped feedback.
  std::string model_estimator;
  /// Options bag for the model estimator (alpha/beta, tau, thresholds).
  core::EstimatorOptions model_options;
};

/// The service's answer to one submission.
struct MatchDecision {
  MiB granted_mib = 0.0;        ///< effective request (= granted capacity)
  bool lowered = false;         ///< grant below the rounded raw request
  std::uint64_t group_key = 0;  ///< similarity key the job mapped to
};

/// Completed-attempt report. `job` must be the same record (or at least
/// the same similarity key and request) that was submitted.
struct JobOutcome {
  trace::JobRecord job;
  core::Feedback feedback;
};

/// Aggregated service counters. Per-shard rows align with the store's
/// striping (index = store shard index).
struct MatchdShardStats {
  std::uint64_t submissions = 0;
  std::uint64_t rewrites = 0;  ///< submissions granted below the request
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t cancels = 0;
};

struct MatchdStats {
  std::uint64_t submissions = 0;
  std::uint64_t rewrites = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t cancels = 0;
  std::uint64_t async_accepted = 0;
  std::uint64_t async_rejected_full = 0;  ///< backpressure rejections
  std::uint64_t batch_drains = 0;         ///< bulk drains by the worker pool
  std::uint64_t batch_wal_commits = 0;    ///< forced batch commit points
  std::size_t queue_depth = 0;
  std::size_t groups = 0;
  std::uint64_t evictions = 0;
  std::vector<MatchdShardStats> shards;
  StoreStats store;
  // Durability (all zero when the WAL is off).
  bool degraded = false;          ///< currently serving pass-through
  std::uint64_t degraded_ops = 0; ///< ops served/dropped while degraded
  std::uint64_t wal_retries = 0;  ///< WAL/snapshot attempts beyond the first
  std::uint64_t wal_giveups = 0;  ///< appends abandoned at retry exhaustion
  std::uint64_t compactions = 0;  ///< completed checkpoint cycles
  WalStats wal;
  /// Learned-model mutations applied (0 without a model attached).
  std::uint64_t model_updates = 0;
};

/// What recover() reconstructed.
struct RecoveryStats {
  std::size_t snapshot_rows = 0;     ///< groups restored from snapshot.csv
  std::uint64_t wal_records = 0;     ///< upserts replayed over the snapshot
  std::uint64_t wal_files = 0;       ///< log files visited
  std::uint64_t torn_files = 0;      ///< logs cut short at a torn tail
  std::uint64_t invalid_records = 0; ///< records whose payload failed decode
  std::uint64_t model_records = 0;   ///< model-state frames seen (last wins)
};

class Matchd {
 public:
  explicit Matchd(MatchdConfig config = {});
  ~Matchd();

  Matchd(const Matchd&) = delete;
  Matchd& operator=(const Matchd&) = delete;

  /// Install the target cluster's capacity ladder. Must happen before
  /// traffic; the ladder is immutable while serving.
  void set_ladder(core::CapacityLadder ladder);
  [[nodiscard]] const core::CapacityLadder& ladder() const noexcept {
    return ladder_;
  }

  // --- synchronous API (thread-safe, any number of callers) ---------------

  /// Rewrite one submission. Commits group state (claims the probe slot);
  /// pair with feedback() or cancel().
  [[nodiscard]] MatchDecision submit(const trace::JobRecord& job);

  /// What submit() would grant right now, committing nothing.
  [[nodiscard]] MiB preview(const trace::JobRecord& job) const;

  /// Undo the most recent submit() for `job` when the attempt never ran.
  void cancel(const trace::JobRecord& job, MiB granted);

  /// Report an attempt's outcome.
  void feedback(const JobOutcome& outcome);
  void feedback(const trace::JobRecord& job, const core::Feedback& fb) {
    feedback(JobOutcome{job, fb});
  }

  // --- asynchronous admission (workers > 0) -------------------------------

  using SubmitCallback = std::function<void(const MatchDecision&)>;
  using DoneCallback = std::function<void()>;

  /// Enqueue a submission; `on_decision` runs on a worker thread. kFull
  /// means backpressure (queue at capacity) — the job was NOT admitted.
  [[nodiscard]] PushResult submit_async(const trace::JobRecord& job,
                                        SubmitCallback on_decision);

  [[nodiscard]] PushResult feedback_async(const JobOutcome& outcome,
                                          DoneCallback on_done = nullptr);

  [[nodiscard]] PushResult cancel_async(const trace::JobRecord& job,
                                        MiB granted,
                                        DoneCallback on_done = nullptr);

  /// Block until every admitted async request has been fully processed.
  void drain();

  // --- introspection / persistence ----------------------------------------

  [[nodiscard]] MatchdStats stats() const;

  /// Number of groups whose state violates Algorithm 1's invariants
  /// (must be 0 under any interleaving; the hammer test asserts it).
  [[nodiscard]] std::size_t invariant_violations() const;

  /// Snapshot the estimator store for a warm restart (versioned CSV).
  [[nodiscard]] bool save_store(const std::string& path) const;
  /// Restore a snapshot; returns rows restored or a parse error. Call
  /// before serving traffic.
  [[nodiscard]] util::Expected<std::size_t> restore_store(
      const std::string& path);

  [[nodiscard]] const MatchdConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool async_enabled() const noexcept {
    return pool_ != nullptr;
  }

  /// Whether a learned-model estimator is attached (config.model_estimator).
  [[nodiscard]] bool model_enabled() const noexcept {
    return model_ != nullptr;
  }
  /// Introspection snapshot of the attached model (nullopt without one, or
  /// when the model exposes no stats).
  [[nodiscard]] std::optional<core::ModelStats> model_stats() const;
  /// The attached model's serialized state (empty without one) — what the
  /// next kModelState frame / snapshot model row would carry.
  [[nodiscard]] std::vector<double> model_state() const;

  // --- durability (active when config.durability.wal_dir is set) ----------

  [[nodiscard]] bool wal_enabled() const noexcept { return wal_ != nullptr; }

  /// True while the service runs pass-through because the WAL refused
  /// writes past retry exhaustion. Cleared by the first heartbeat probe
  /// that commits (one probe per operation while degraded).
  [[nodiscard]] bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

  enum class RecoverMode {
    kSnapshotAndWal,  ///< normal recovery: snapshot (if any) + WAL replay
    kWalOnly,         ///< skip a corrupt snapshot; replay the full log
  };

  /// Rebuild store state from the WAL directory. Call before serving
  /// traffic. A missing snapshot is fine (fresh start / never compacted);
  /// a corrupt one is an error — retry with kWalOnly, which reconstructs
  /// everything since the last completed compaction.
  [[nodiscard]] util::Expected<RecoveryStats> recover(
      RecoverMode mode = RecoverMode::kSnapshotAndWal);

  /// Compact: rotate all WAL shards to the next generation, snapshot the
  /// store, then delete the superseded generations. On failure old logs
  /// are kept — recovery replays more records but loses nothing.
  [[nodiscard]] bool checkpoint();

  /// Push every buffered WAL record down to disk (write + fsync).
  [[nodiscard]] bool flush_wal();

  /// Where checkpoint() publishes the compaction snapshot.
  [[nodiscard]] std::string snapshot_path() const;

  /// TEST HOOK — stop the workers, then drop the WAL's buffers and close
  /// its files without flushing, as a process crash would. Optionally
  /// leaves a torn half-frame at one shard's tail (a mid-write power cut).
  void simulate_crash(bool leave_torn_tail = false);

 private:
  struct Request {
    enum class Kind { kSubmit, kFeedback, kCancel } kind = Kind::kSubmit;
    trace::JobRecord job;
    core::Feedback fb;
    MiB granted = 0.0;
    SubmitCallback on_decision;
    DoneCallback on_done;
    /// Admission timestamp for the queue-wait histogram; only stamped
    /// when the service is instrumented.
    std::chrono::steady_clock::time_point admitted{};
  };

  void worker_main(std::size_t worker_index);
  /// The batched hot path: queue-wait accounting, shard-sorted transition
  /// application (one lock hold per shard run), one forced WAL commit
  /// point per run, then counters/callbacks/completions in arrival order.
  void process_batch(std::vector<Request>& batch);
  [[nodiscard]] PushResult admit(Request&& request);

  void register_metrics();
  void unregister_metrics();

  /// Frame the group's post-transition state into the WAL's user-space
  /// buffer — no I/O, no sleeping. MUST be called from inside the store's
  /// with_group / modify_if_present lambda: the shard lock is what orders
  /// records of the same key in the log, and buffering fixes that order
  /// before the lock is released. Returns false only after a crash.
  [[nodiscard]] bool wal_buffer_locked(std::uint64_t key,
                                       const core::SaGroupState& g);
  /// Frame the model's full post-mutation state into the WAL buffer (log
  /// shard kModelWalShard) — no I/O. MUST be called with model_mutex_
  /// held: the mutex is what orders model frames in the log.
  [[nodiscard]] bool wal_buffer_model_locked();
  /// Cadence commit of the key's shard (the synchronous paths), retrying
  /// with backoff. Called AFTER the shard lock is released. Returns false
  /// at retry exhaustion.
  [[nodiscard]] bool wal_commit(std::uint64_t key);
  /// Cadence commit of one WAL shard index, retrying with backoff.
  [[nodiscard]] bool wal_commit_index(std::size_t shard,
                                      std::uint64_t jitter_seed);
  /// Forced commit point of one batch shard run: write + fsync everything
  /// buffered, retrying with backoff outside any lock.
  [[nodiscard]] bool wal_commit_force(std::size_t shard);
  void enter_degraded();
  [[nodiscard]] bool try_exit_degraded(std::uint64_t key);
  /// Opportunistic auto-compaction once compact_every appends accumulate;
  /// skips silently if another thread is already compacting. Called
  /// outside any shard lock.
  void maybe_compact();
  [[nodiscard]] bool checkpoint_locked();

  /// Per-thread 1-in-N sampling decision for the latency histograms.
  [[nodiscard]] bool latency_sampled() const noexcept {
    if (sample_mask_ == 0) return true;
    thread_local std::uint32_t tick = 0;
    return (tick++ & sample_mask_) == 0;
  }

  /// All model-state WAL frames go to one log shard so the log carries a
  /// single total order for the model (replay applies the last frame).
  static constexpr std::size_t kModelWalShard = 0;

  MatchdConfig config_;
  core::CapacityLadder ladder_;
  core::SimilarityKeyFn key_fn_;
  EstimatorStore<core::SaGroupState> store_;

  /// Learned-model estimator (null = group-store path). All access —
  /// decisions, training, serialization, metrics reads — serializes on
  /// model_mutex_; the model is global state, unlike the shard-striped
  /// group store, so a model-backed service trades store parallelism for
  /// cross-group learning.
  std::unique_ptr<core::Estimator> model_;
  mutable std::mutex model_mutex_;
  std::atomic<std::uint64_t> model_updates_{0};

  /// Per-shard service counters, aligned with the store's striping and
  /// padded so concurrent submitters on different shards never false-share.
  struct alignas(64) ShardCounters {
    std::atomic<std::uint64_t> submissions{0};
    std::atomic<std::uint64_t> rewrites{0};
    std::atomic<std::uint64_t> successes{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> cancels{0};
  };
  std::vector<ShardCounters> counters_;

  std::atomic<std::uint64_t> async_accepted_{0};
  std::atomic<std::uint64_t> async_rejected_full_{0};
  std::atomic<std::uint64_t> batch_drains_{0};
  std::atomic<std::uint64_t> batch_wal_commits_{0};

  /// Latency instruments (owned by config_.metrics; null when
  /// uninstrumented). Counters are exported as pull providers over the
  /// existing per-shard atomics, so instrumentation adds nothing to the
  /// counting hot path.
  obs::Histogram* submit_hist_ = nullptr;
  obs::Histogram* feedback_hist_ = nullptr;
  obs::Histogram* cancel_hist_ = nullptr;
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  std::uint32_t sample_mask_ = 0;
  /// (name, labels) of every provider registered against the registry,
  /// removed in the destructor so providers never outlive their captures.
  std::vector<std::pair<std::string, obs::Labels>> provider_keys_;

  std::unique_ptr<BoundedMpmcQueue<Request>> queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::size_t> in_flight_{0};
  std::mutex drain_mutex_;
  std::condition_variable drained_;

  // --- durability ----------------------------------------------------------
  std::unique_ptr<Wal> wal_;
  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> degraded_ops_{0};
  std::atomic<std::uint64_t> wal_retries_{0};
  std::atomic<std::uint64_t> wal_giveups_{0};
  std::atomic<std::uint64_t> compactions_{0};
  std::atomic<std::uint64_t> appends_since_compact_{0};
  /// Serializes checkpoint cycles; never held together with a shard lock.
  std::mutex compact_mutex_;
  /// True after a checkpoint rotated the log but failed to snapshot
  /// (guarded by compact_mutex_). The next checkpoint retries the
  /// snapshot without rotating again: the earlier rotation still covers
  /// every older generation, so repeating it would only pile up a new
  /// generation of shard files per failed attempt.
  bool snapshot_pending_ = false;
  /// Guards degraded_since_ (touched only on mode transitions).
  std::mutex degraded_mutex_;
  std::chrono::steady_clock::time_point degraded_since_{};
  obs::Histogram* recovery_hist_ = nullptr;
};

/// core::Estimator adapter: lets the discrete-event simulator (or any
/// offline driver) stand a Matchd instance where an estimator is expected.
/// When the service runs workers, every call round-trips through the
/// admission queue and waits for its result, so a serial driver exercises
/// the full pipeline and still observes deterministic decisions.
class MatchdEstimator final : public core::Estimator {
 public:
  /// `service` is not owned and must outlive the adapter.
  explicit MatchdEstimator(Matchd& service) : service_(&service) {}

  /// "matchd[successive-approximation]" for the group-store path,
  /// "matchd[<model>]" when the service carries a learned model.
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const core::SystemState& state) override;

  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const core::SystemState& state) const override;

  void cancel(const trace::JobRecord& job, MiB granted) override;

  void feedback(const trace::JobRecord& job,
                const core::Feedback& fb) override;

  void set_ladder(core::CapacityLadder ladder) override;

 private:
  Matchd* service_;
};

}  // namespace resmatch::svc
