#include "svc/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "util/frame.hpp"

namespace resmatch::svc {

namespace {

namespace fs = std::filesystem;

constexpr char kFileMagic[8] = {'R', 'S', 'M', 'W', 'A', 'L', '0', '1'};
constexpr std::size_t kPayloadPrefix = 9;  // u8 type + u64 key
/// Upper bound on one record's payload: guards replay against reading a
/// garbage length as a multi-gigabyte allocation.
constexpr std::uint32_t kMaxPayload = 1 << 20;

/// A record payload must hold the type/key prefix plus whole f64 fields;
/// anything else is a torn or foreign frame. Checked by replay before any
/// payload bytes are read, exactly as the inline loop always did.
bool valid_record_len(std::uint32_t len) {
  return len >= kPayloadPrefix &&
         (len - kPayloadPrefix) % sizeof(double) == 0;
}

/// Parse "wal-<gen>-<shard>.log"; returns false for other names. The %n
/// position must land exactly at the end of the name so near-misses like
/// "wal-1-0.log.bak" are never replayed or garbage-collected as live logs.
bool parse_wal_name(const std::string& name, std::uint64_t& gen,
                    std::size_t& shard) {
  unsigned long long g = 0;
  unsigned long long s = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%llu-%llu.log%n", &g, &s, &consumed) !=
          2 ||
      static_cast<std::size_t>(consumed) != name.size()) {
    return false;
  }
  gen = g;
  shard = static_cast<std::size_t>(s);
  return true;
}

bool write_fully(int fd, const char* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

util::Expected<std::unique_ptr<Wal>> Wal::open(WalConfig config) {
  using Result = util::Expected<std::unique_ptr<Wal>>;
  if (config.dir.empty()) return Result::failure("empty WAL directory");
  config.shards = std::max<std::size_t>(1, config.shards);
  config.flush_every = std::max<std::size_t>(1, config.flush_every);
  config.fsync_every = std::max<std::size_t>(1, config.fsync_every);

  std::error_code ec;
  fs::create_directories(config.dir, ec);
  if (ec) {
    return Result::failure("cannot create WAL directory " + config.dir +
                           ": " + ec.message());
  }

  // Never append to an existing generation (its tail may be torn); start
  // strictly above everything on disk.
  std::uint64_t max_gen = 0;
  for (const auto& entry : fs::directory_iterator(config.dir, ec)) {
    std::uint64_t gen = 0;
    std::size_t shard = 0;
    if (parse_wal_name(entry.path().filename().string(), gen, shard)) {
      max_gen = std::max(max_gen, gen);
    }
  }

  auto wal = std::unique_ptr<Wal>(new Wal(std::move(config)));
  wal->gen_ = max_gen + 1;
  wal->shards_ = std::vector<Shard>(wal->config_.shards);
  for (std::size_t i = 0; i < wal->shards_.size(); ++i) {
    if (!wal->open_shard_file(wal->shards_[i], i, wal->gen_)) {
      return Result::failure("cannot open WAL file " +
                             wal->file_path(wal->gen_, i));
    }
  }
  return wal;
}

Wal::~Wal() {
  if (!crashed_) (void)flush_all();
  for (Shard& s : shards_) {
    if (s.fd >= 0) ::close(s.fd);
    s.fd = -1;
  }
}

std::string Wal::file_path(std::uint64_t gen, std::size_t shard) const {
  return config_.dir + "/wal-" + std::to_string(gen) + "-" +
         std::to_string(shard) + ".log";
}

int Wal::create_log_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return -1;
  // Stamp the magic immediately so replay can tell an empty log from a
  // foreign file; a crash before it completes reads as a torn file with
  // zero records, which is exactly what it is.
  if (!write_fully(fd, kFileMagic, sizeof(kFileMagic))) {
    ::close(fd);
    (void)::unlink(path.c_str());  // we created it; leave no magic-less stub
    return -1;
  }
  return fd;
}

bool Wal::open_shard_file(Shard& s, std::size_t index, std::uint64_t gen) {
  const int fd = create_log_file(file_path(gen, index));
  if (fd < 0) return false;
  s.fd = fd;
  s.durable_size = sizeof(kFileMagic);
  s.buf.clear();
  s.pending_records = 0;
  s.unsynced_records = 0;
  return true;
}

bool Wal::append(std::size_t shard, std::uint64_t key, const double* fields,
                 std::size_t n_fields) {
  return append_record(shard, WalRecordType::kUpsert, key, fields, n_fields);
}

bool Wal::append_heartbeat(std::size_t shard) {
  return append_record(shard, WalRecordType::kHeartbeat, 0, nullptr, 0);
}

std::size_t Wal::encode_locked(Shard& s, WalRecordType type,
                               std::uint64_t key, const double* fields,
                               std::size_t n_fields) {
  const std::size_t buf_before = s.buf.size();
  // Encode the payload straight into the shard buffer (no staging copy);
  // frame_end patches the length and CRC over exactly what lands on disk.
  std::vector<char>& buf = s.buf;
  buf.reserve(buf_before + util::kFrameHeaderSize + kPayloadPrefix +
              n_fields * sizeof(double));
  const std::size_t mark = util::frame_begin(buf);
  buf.push_back(static_cast<char>(type));
  char kb[8];
  std::memcpy(kb, &key, 8);
  buf.insert(buf.end(), kb, kb + 8);
  for (std::size_t i = 0; i < n_fields; ++i) {
    char fb[8];
    std::memcpy(fb, &fields[i], 8);
    buf.insert(buf.end(), fb, fb + 8);
  }
  util::frame_end(buf, mark);
  ++s.pending_records;
  return buf_before;
}

bool Wal::append_buffered(std::size_t shard, std::uint64_t key,
                          const double* fields, std::size_t n_fields) {
  Shard& s = shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  if (crashed_ || s.fd < 0) return false;
  (void)encode_locked(s, WalRecordType::kUpsert, key, fields, n_fields);
  appends_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Wal::append_model_buffered(std::size_t shard, const double* fields,
                                std::size_t n_fields) {
  Shard& s = shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  if (crashed_ || s.fd < 0) return false;
  (void)encode_locked(s, WalRecordType::kModelState, 0, fields, n_fields);
  appends_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Wal::commit(std::size_t shard) {
  Shard& s = shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  if (crashed_ || s.fd < 0) return false;
  if (s.pending_records >= config_.flush_every) {
    // flush_locked also runs the cadence fsync. No rollback on failure:
    // the buffer keeps every frame, in order, for the caller's retry.
    if (flush_locked(s) != FlushOutcome::kOk) {
      append_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  } else if (s.unsynced_records >= config_.fsync_every) {
    // A previous commit's flush landed but its cadence fsync failed;
    // retry the fsync alone.
    if (!fsync_locked(s)) {
      append_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

bool Wal::append_record(std::size_t shard, WalRecordType type,
                        std::uint64_t key, const double* fields,
                        std::size_t n_fields) {
  Shard& s = shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  if (crashed_ || s.fd < 0) return false;

  std::vector<char>& buf = s.buf;
  const std::size_t buf_before =
      encode_locked(s, type, key, fields, n_fields);

  if (s.pending_records >= config_.flush_every) {
    const FlushOutcome outcome = flush_locked(s);
    if (outcome != FlushOutcome::kOk) {
      if (outcome == FlushOutcome::kWriteFailed) {
        // The write was refused with the buffer intact: drop this record
        // (the caller was told it failed and may retry); earlier buffered
        // records stay pending for the next flush. After a failed fsync
        // the frames are already in the file and the buffer is consumed —
        // there is nothing to roll back, and resizing the (now empty)
        // buffer would plant zero-filled garbage for the next flush to
        // write mid-log.
        buf.resize(buf_before);
        --s.pending_records;
      }
      append_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Wal::FlushOutcome Wal::flush_locked(Shard& s) {
  if (s.buf.empty()) {
    if (s.unsynced_records > 0 && !fsync_locked(s)) {
      return FlushOutcome::kFsyncFailed;
    }
    return FlushOutcome::kOk;
  }

  if (util::fault(config_.faults, util::FaultSite::kWalAppend)) {
    // Simulate a write torn partway through, then repair: a real crash
    // here would leave the torn frame for replay to drop; a surviving
    // process truncates back to the last durable offset so a retried
    // append never buries garbage mid-log.
    const std::size_t torn = std::max<std::size_t>(1, s.buf.size() / 2);
    (void)write_fully(s.fd, s.buf.data(), torn);
    (void)::ftruncate(s.fd, static_cast<off_t>(s.durable_size));
    (void)::lseek(s.fd, 0, SEEK_END);
    return FlushOutcome::kWriteFailed;
  }

  if (!write_fully(s.fd, s.buf.data(), s.buf.size())) {
    (void)::ftruncate(s.fd, static_cast<off_t>(s.durable_size));
    (void)::lseek(s.fd, 0, SEEK_END);
    return FlushOutcome::kWriteFailed;
  }
  s.durable_size += s.buf.size();
  bytes_written_.fetch_add(s.buf.size(), std::memory_order_relaxed);
  s.unsynced_records += s.pending_records;
  s.buf.clear();
  s.pending_records = 0;

  if (s.unsynced_records >= config_.fsync_every && !fsync_locked(s)) {
    return FlushOutcome::kFsyncFailed;
  }
  return FlushOutcome::kOk;
}

bool Wal::fsync_locked(Shard& s) {
  if (util::fault(config_.faults, util::FaultSite::kWalFsync)) return false;
  if (::fsync(s.fd) != 0) return false;
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  s.unsynced_records = 0;
  return true;
}

bool Wal::flush(std::size_t shard) {
  Shard& s = shards_[shard % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  if (crashed_ || s.fd < 0) return false;
  if (flush_locked(s) != FlushOutcome::kOk) return false;
  if (s.unsynced_records > 0 && !fsync_locked(s)) return false;
  return true;
}

bool Wal::flush_all() {
  bool ok = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ok = flush(i) && ok;
  }
  return ok;
}

bool Wal::rotate() {
  // Lock order: shard 0..n-1, matching no other multi-shard path (append
  // takes exactly one shard lock), so rotation cannot deadlock traffic.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& s : shards_) locks.emplace_back(s.mutex);
  if (crashed_) return false;

  for (Shard& s : shards_) {
    if (flush_locked(s) != FlushOutcome::kOk) return false;
    if (s.unsynced_records > 0 && !fsync_locked(s)) return false;
  }

  // Pick the next generation by rescanning the directory (as open()
  // does), not by assuming gen_+1 is free: a previously failed rotation
  // or an operator copying files in could otherwise make every retry
  // collide on O_EXCL forever.
  std::uint64_t next = gen_ + 1;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    std::uint64_t gen = 0;
    std::size_t shard = 0;
    if (parse_wal_name(entry.path().filename().string(), gen, shard)) {
      next = std::max(next, gen + 1);
    }
  }

  // Create every next-generation file before touching a live fd, so a
  // partial failure leaves all shards serving their current files and no
  // orphaned partial generation on disk — rotation stays retryable and
  // appends keep working either way.
  std::vector<int> new_fds(shards_.size(), -1);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string path = file_path(next, i);
    if (!util::fault(config_.faults, util::FaultSite::kWalRotate)) {
      new_fds[i] = create_log_file(path);
    }
    if (new_fds[i] < 0) {
      for (std::size_t j = 0; j < i; ++j) {
        ::close(new_fds[j]);
        (void)::unlink(file_path(next, j).c_str());
      }
      return false;
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = shards_[i];
    if (s.fd >= 0) ::close(s.fd);
    s.fd = new_fds[i];
    s.durable_size = sizeof(kFileMagic);
    s.buf.clear();
    s.pending_records = 0;
    s.unsynced_records = 0;
  }
  gen_ = next;
  rotations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Wal::remove_old_generations() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    std::uint64_t gen = 0;
    std::size_t shard = 0;
    if (parse_wal_name(entry.path().filename().string(), gen, shard) &&
        gen < gen_) {
      fs::remove(entry.path(), ec);
    }
  }
}

WalStats Wal::stats() const {
  WalStats out;
  out.appends = appends_.load(std::memory_order_relaxed);
  out.append_failures = append_failures_.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  out.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  out.rotations = rotations_.load(std::memory_order_relaxed);
  return out;
}

void Wal::simulate_crash(bool leave_torn_tail) {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& s : shards_) locks.emplace_back(s.mutex);
  if (leave_torn_tail && !shards_.empty()) {
    // Half of a plausible frame: a length word promising more payload
    // than follows. Replay must drop it.
    Shard& s = shards_[0];
    if (s.fd >= 0) {
      std::vector<char> torn;
      util::put_u32(torn, 64);
      util::put_u32(torn, 0xDEADBEEFu);
      torn.push_back('\x01');
      (void)write_fully(s.fd, torn.data(), torn.size());
    }
  }
  for (Shard& s : shards_) {
    s.buf.clear();  // buffered-but-unflushed records die with the process
    s.pending_records = 0;
    if (s.fd >= 0) ::close(s.fd);
    s.fd = -1;
  }
  crashed_ = true;
}

util::Expected<WalReplayStats> Wal::replay(
    const std::string& dir,
    const std::function<void(std::uint64_t, const double*, std::size_t)>&
        fn) {
  // Group-only view of the typed replay: model-state records are counted
  // by the shared scan but not delivered.
  return replay_typed(
      dir, [&fn](WalRecordType type, std::uint64_t key, const double* fields,
                 std::size_t n_fields) {
        if (type == WalRecordType::kUpsert) fn(key, fields, n_fields);
      });
}

util::Expected<WalReplayStats> Wal::replay_typed(
    const std::string& dir,
    const std::function<void(WalRecordType, std::uint64_t, const double*,
                             std::size_t)>& fn) {
  using Result = util::Expected<WalReplayStats>;
  WalReplayStats stats;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return stats;

  // (gen, shard) -> path; the map iterates generations in order, and
  // within a generation per-key ordering is per-shard (one key lives in
  // exactly one shard file per session), so this order replays every
  // key's records oldest-to-newest.
  std::map<std::pair<std::uint64_t, std::size_t>, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t gen = 0;
    std::size_t shard = 0;
    if (parse_wal_name(entry.path().filename().string(), gen, shard)) {
      files[{gen, shard}] = entry.path().string();
    }
  }

  std::vector<char> payload;
  for (const auto& [key, path] : files) {
    (void)key;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Result::failure("cannot open WAL file " + path);
    }
    ++stats.files;
    char magic[sizeof(kFileMagic)];
    if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
        std::memcmp(magic, kFileMagic, sizeof(magic)) != 0) {
      // Torn before the header finished (or not a WAL file at all):
      // nothing to replay from it.
      ++stats.torn_files;
      std::fclose(f);
      continue;
    }
    for (;;) {
      const util::FrameReadStatus status =
          util::read_frame(f, payload, kMaxPayload, valid_record_len);
      if (status == util::FrameReadStatus::kEof) break;  // clean EOF
      if (status == util::FrameReadStatus::kBad) {
        ++stats.torn_files;
        break;
      }
      const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
      const auto type = static_cast<WalRecordType>(
          static_cast<std::uint8_t>(payload[0]));
      if (type == WalRecordType::kHeartbeat) {
        ++stats.heartbeats;
        continue;
      }
      if (type != WalRecordType::kUpsert &&
          type != WalRecordType::kModelState) {
        ++stats.torn_files;
        break;
      }
      std::uint64_t record_key = 0;
      std::memcpy(&record_key, payload.data() + 1, 8);
      const std::size_t n_fields = (len - kPayloadPrefix) / sizeof(double);
      // double has no alignment guarantee inside the payload buffer;
      // copy out.
      std::vector<double> fields(n_fields);
      if (n_fields > 0) {
        std::memcpy(fields.data(), payload.data() + kPayloadPrefix,
                    n_fields * sizeof(double));
      }
      fn(type, record_key, fields.data(), n_fields);
      if (type == WalRecordType::kModelState) {
        ++stats.model_records;
      } else {
        ++stats.records;
      }
    }
    std::fclose(f);
  }
  return stats;
}

}  // namespace resmatch::svc
