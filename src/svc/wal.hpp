// Write-ahead log for the estimator store.
//
// Every committed mutation of a similarity group (submit/commit, feedback,
// cancel) appends the group's full post-transition state as one CRC-framed
// record to an append-only per-shard log file. Recovery is snapshot load +
// replay of every log generation in order: records are whole-state
// upserts, so replay is idempotent and the last record per key wins —
// a crash between snapshots loses zero flushed feedback.
//
// File layout under the WAL directory:
//
//   snapshot.csv            versioned CSV snapshot (EstimatorStore::save)
//   wal-<gen>-<shard>.log   append-only record log, one per store shard
//
// Generations: compaction rotates every shard to generation g+1 *before*
// the snapshot is taken, so every record in generations <= g is already
// reflected in the snapshot and those files can be deleted once the
// snapshot rename succeeds. If the snapshot fails, old generations are
// kept and recovery simply replays more records — compaction failure
// costs disk space, never data.
//
// Frame format (host-endian; the log is a local durability artifact, not
// a wire format):
//
//   u32 payload_len | u32 crc32(payload) | payload
//   payload = u8 type | u64 key | payload_len-9 bytes of raw f64 fields
//
// A torn tail (crash mid-append) fails the length or CRC check and replay
// stops at the last good record of that file. Failed writes (injected or
// real) are repaired by truncating the file back to the last durable
// offset, so a retried append never leaves a torn frame mid-log. A failed
// fsync is reported as an append failure too, but the record is already
// in the file — a retry may duplicate it, which replay's last-wins upsert
// semantics absorb.
//
// Durability policy: `flush_every` buffers that many records in user
// space before write(2); `fsync_every` bounds how many flushed records
// may sit in the page cache before fsync(2). flush_every=1 (default)
// makes every append survive a process crash; fsync_every=1 makes every
// append survive power loss.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/expected.hpp"
#include "util/fault.hpp"

namespace resmatch::svc {

struct WalConfig {
  std::string dir;
  std::size_t shards = 16;
  /// Records buffered in user space before write(2). 1 = write-through.
  std::size_t flush_every = 1;
  /// Flushed records allowed in the page cache before fsync(2).
  std::size_t fsync_every = 64;
  /// Deterministic fault injection (null = disabled, zero-cost).
  util::FaultInjector* faults = nullptr;
};

/// Record types in the log.
enum class WalRecordType : std::uint8_t {
  kUpsert = 1,      ///< full post-transition state of one group
  kHeartbeat = 2,   ///< durability probe; carries no state
  kModelState = 3,  ///< full learned-model state (key unused, last wins)
};

struct WalStats {
  std::uint64_t appends = 0;          ///< records accepted (buffered or written)
  std::uint64_t append_failures = 0;  ///< appends refused after repair
  std::uint64_t bytes_written = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t rotations = 0;
};

struct WalReplayStats {
  std::uint64_t files = 0;
  std::uint64_t records = 0;        ///< upserts delivered to the callback
  std::uint64_t heartbeats = 0;     ///< probe records skipped
  std::uint64_t model_records = 0;  ///< learned-model state records seen
  /// Files whose replay stopped before EOF on a bad frame. Expected on at
  /// most the newest generation after a crash (the torn tail); nonzero on
  /// an older generation means corruption, not a crash.
  std::uint64_t torn_files = 0;
};

class Wal {
 public:
  /// Open (creating the directory if needed) and start a fresh generation
  /// strictly above every generation already on disk — existing files are
  /// never appended to, only replayed or garbage-collected.
  [[nodiscard]] static util::Expected<std::unique_ptr<Wal>> open(
      WalConfig config);

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one group-state record. Returns false when the record could
  /// not be made durable (injected or real I/O failure). A refused write
  /// repairs the log back to its last durable offset; a failed fsync
  /// leaves the record in the file but unacknowledged. Either way the log
  /// stays parseable and the caller may simply retry (duplicates replay
  /// idempotently).
  [[nodiscard]] bool append(std::size_t shard, std::uint64_t key,
                            const double* fields, std::size_t n_fields);

  /// Append a no-op probe record — the degraded-mode health check: if a
  /// heartbeat commits, group appends will too.
  [[nodiscard]] bool append_heartbeat(std::size_t shard);

  /// Encode one record into the shard's user-space buffer WITHOUT any
  /// write(2)/fsync: no I/O, no retries, no sleeping — safe to call with
  /// a store shard lock held. Frame order in the log is fixed at
  /// buffering time, so the deferred commit() can retry I/O without ever
  /// reordering records. Returns false only after a (simulated) crash.
  [[nodiscard]] bool append_buffered(std::size_t shard, std::uint64_t key,
                                     const double* fields,
                                     std::size_t n_fields);

  /// Buffer one learned-model state record (same no-I/O contract as
  /// append_buffered). The record carries the estimator's full serialized
  /// state; replay delivers every one and the last record wins, so
  /// appending the complete state after each model mutation makes
  /// recovery exact without any delta encoding.
  [[nodiscard]] bool append_model_buffered(std::size_t shard,
                                           const double* fields,
                                           std::size_t n_fields);

  /// The deferred I/O half of append(): push buffered records down per
  /// the flush_every/fsync_every cadence. On failure the buffer is
  /// preserved in order, so the caller may simply retry commit() — with
  /// backoff, outside any store lock. (A failed cadence fsync leaves the
  /// records in the file; the retry re-attempts the fsync alone.)
  [[nodiscard]] bool commit(std::size_t shard);

  /// Flush buffered records and fsync one shard / all shards. The
  /// shutdown path calls flush_all(); a crash instead loses whatever the
  /// flush/fsync cadence had not yet pushed down.
  [[nodiscard]] bool flush(std::size_t shard);
  [[nodiscard]] bool flush_all();

  /// Rotate every shard to the next generation (flushing + fsyncing the
  /// old files). Compaction calls this immediately before snapshotting.
  /// All next-generation files are created before any live fd is
  /// replaced, so failure leaves every shard serving its current file and
  /// no partial generation on disk — rotate() is always safe to retry.
  [[nodiscard]] bool rotate();

  /// Delete every log file of generations below the current one. Call
  /// only after the post-rotation snapshot has been durably published.
  void remove_old_generations();

  [[nodiscard]] std::uint64_t generation() const noexcept { return gen_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const std::string& dir() const noexcept {
    return config_.dir;
  }
  [[nodiscard]] WalStats stats() const;

  /// TEST HOOK — simulate a process crash: drop all buffered records,
  /// optionally leave a torn half-frame at one shard's tail (as a real
  /// mid-write power cut would), and close the files without flushing.
  /// The object stays alive but refuses further appends.
  void simulate_crash(bool leave_torn_tail = false);

  /// Replay every generation in `dir` in (generation, shard) order,
  /// invoking `fn(key, fields, n_fields)` for each upsert record. Replay
  /// of one file stops at the first bad frame (torn tail). A missing
  /// directory is not an error (nothing to replay).
  [[nodiscard]] static util::Expected<WalReplayStats> replay(
      const std::string& dir,
      const std::function<void(std::uint64_t key, const double* fields,
                               std::size_t n_fields)>& fn);

  /// Typed replay: like replay(), but delivers kModelState records too
  /// (tagged by type). Heartbeats are still skipped. Callers that restore
  /// learned-model state use this; replay() remains for group-only
  /// consumers.
  [[nodiscard]] static util::Expected<WalReplayStats> replay_typed(
      const std::string& dir,
      const std::function<void(WalRecordType type, std::uint64_t key,
                               const double* fields, std::size_t n_fields)>&
          fn);

 private:
  explicit Wal(WalConfig config) : config_(std::move(config)) {}

  struct alignas(64) Shard {
    mutable std::mutex mutex;
    int fd = -1;
    std::vector<char> buf;           ///< encoded frames not yet written
    std::size_t pending_records = 0; ///< records in buf
    std::uint64_t durable_size = 0;  ///< bytes successfully written to fd
    std::uint64_t unsynced_records = 0;
  };

  [[nodiscard]] bool append_record(std::size_t shard, WalRecordType type,
                                   std::uint64_t key, const double* fields,
                                   std::size_t n_fields);
  /// Encode one frame into the shard buffer. Caller holds the shard
  /// mutex; returns the buffer size before the frame (the rollback mark).
  std::size_t encode_locked(Shard& s, WalRecordType type, std::uint64_t key,
                            const double* fields, std::size_t n_fields);

  /// How a flush attempt left the shard. The distinction matters to
  /// append_record's rollback: after kWriteFailed the buffer still holds
  /// every pending frame (the file was repaired back to its last durable
  /// offset), so dropping the newest frame is safe; after kFsyncFailed
  /// the frames already reached the file and the buffer was consumed —
  /// rolling it back would bury zero-filled garbage mid-log and underflow
  /// the pending count.
  enum class FlushOutcome {
    kOk,
    kWriteFailed,  ///< write(2) refused; buffer preserved, file repaired
    kFsyncFailed,  ///< records written but not durable; buffer consumed
  };

  /// Write buf to fd (repairing via ftruncate on failure) and fsync per
  /// policy. Caller holds the shard mutex.
  [[nodiscard]] FlushOutcome flush_locked(Shard& s);
  /// fsync the shard's file, clearing its unsynced count on success.
  /// Caller holds the shard mutex.
  [[nodiscard]] bool fsync_locked(Shard& s);
  /// O_CREAT|O_EXCL a log file and stamp the magic; returns the fd or -1
  /// (the file is unlinked again if the magic could not be written).
  [[nodiscard]] int create_log_file(const std::string& path);
  [[nodiscard]] bool open_shard_file(Shard& s, std::size_t index,
                                     std::uint64_t gen);
  [[nodiscard]] std::string file_path(std::uint64_t gen,
                                      std::size_t shard) const;

  WalConfig config_;
  std::vector<Shard> shards_;
  std::uint64_t gen_ = 1;
  bool crashed_ = false;

  // Counters outside the per-shard locks, readable by metrics providers.
  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> append_failures_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  std::atomic<std::uint64_t> rotations_{0};
};

}  // namespace resmatch::svc
