// Bounded multi-producer multi-consumer queue with backpressure.
//
// The matchd admission queue: producers are client threads submitting jobs,
// consumers are the service's worker pool. The queue REJECTS when full
// instead of blocking producers — an overloaded matchmaker must shed load
// with an explicit reason the caller can surface (retry, route elsewhere),
// not stall every submitting client (the same contract as the two-stage
// Mesos front-end this subsystem is modeled on).
//
// A mutex + two condition variables is deliberately the whole design: the
// per-item work behind this queue (hash, shard lock, a few loads/stores)
// is tens of nanoseconds, so queue sophistication is not where service
// throughput comes from — shard striping in the store is (see
// bench/micro_service.cpp for the measured scaling).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace resmatch::svc {

/// Why a push was refused.
enum class PushResult {
  kOk,
  kFull,    ///< at capacity — backpressure, caller should shed or retry
  kClosed,  ///< queue closed — service is shutting down
};

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Non-blocking push; never waits for space.
  PushResult try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Blocking pop: waits for an item or for close(). Returns nullopt only
  /// when the queue is closed AND drained, so consumers process every
  /// accepted item before exiting.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    const bool drained = items_.empty();
    lock.unlock();
    if (drained) maybe_drained_.notify_all();
    return item;
  }

  /// Blocking bulk pop: waits for at least one item (or close), then
  /// drains up to `max` items into `out`, preserving FIFO order. With a
  /// positive `linger`, a partially filled batch waits up to that long
  /// for more items before returning — latency traded for batch size.
  /// Returns the number of items appended to `out`; 0 only when the
  /// queue is closed AND fully drained (the consumer-exit signal, same
  /// contract as pop()).
  std::size_t pop_bulk(std::vector<T>& out, std::size_t max,
                       std::chrono::microseconds linger =
                           std::chrono::microseconds{0}) {
    if (max == 0) max = 1;
    std::size_t taken = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    const auto take = [&] {
      while (!items_.empty() && taken < max) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++taken;
      }
    };
    take();
    if (taken == 0) return 0;  // closed and drained
    if (taken < max && linger.count() > 0 && !closed_) {
      const auto deadline = std::chrono::steady_clock::now() + linger;
      while (taken < max && !closed_) {
        if (!not_empty_.wait_until(lock, deadline, [&] {
              return !items_.empty() || closed_;
            })) {
          break;  // linger expired with no new arrivals
        }
        take();
      }
    }
    const bool drained = items_.empty();
    lock.unlock();
    if (drained) maybe_drained_.notify_all();
    return taken;
  }

  /// Close the queue: pending items still drain, new pushes are rejected.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    maybe_drained_.notify_all();
  }

  /// Block until every queued item has been popped. Close() does NOT cut
  /// this short: accepted items still drain after close (the pop()
  /// contract), so "closed" and "empty" are independent conditions and
  /// only the latter releases the waiter. Note: "popped" not
  /// "processed" — callers needing full completion barriers should count
  /// completions themselves.
  void wait_empty() {
    std::unique_lock<std::mutex> lock(mutex_);
    maybe_drained_.wait(lock, [&] { return items_.empty(); });
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable maybe_drained_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace resmatch::svc
