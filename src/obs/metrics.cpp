#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resmatch::obs {

// --- HistogramSnapshot -------------------------------------------------------

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0 || upper.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double reached = static_cast<double>(cumulative + in_bucket);
    if (reached + 1e-12 < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= upper.size()) return upper.back();  // +Inf bucket
    // Geometric interpolation between the bucket's edges (log-spaced
    // layout). Bucket 0's lower edge is synthesized one growth step below.
    const double hi = upper[i];
    const double lo = i > 0 ? upper[i - 1]
                            : (upper.size() > 1 ? hi * hi / upper[1] : hi / 2);
    const double frac =
        (target - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    if (lo <= 0.0 || hi <= lo) return hi;
    return lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
  }
  return upper.back();
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(HistogramSpec spec) {
  const std::size_t buckets = std::clamp<std::size_t>(spec.buckets, 1, 64);
  const double lo = spec.lo > 0.0 ? spec.lo : 1e-6;
  const double growth = spec.growth > 1.0 ? spec.growth : 2.0;
  upper_.reserve(buckets);
  double bound = lo;
  for (std::size_t i = 0; i < buckets; ++i) {
    upper_.push_back(bound);
    bound *= growth;
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(buckets + 1);
  for (std::size_t i = 0; i <= buckets; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::record(double x) noexcept {
  // First bound >= x; everything beyond the last finite bound goes to the
  // trailing +Inf slot. NaN compares false everywhere and lands there too.
  const auto it = std::lower_bound(upper_.begin(), upper_.end(), x);
  const std::size_t index =
      static_cast<std::size_t>(it - upper_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= upper_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.upper = upper_;
  out.counts.resize(upper_.size() + 1);
  for (std::size_t i = 0; i <= upper_.size(); ++i) {
    out.counts[i] = counts_[i].load(std::memory_order_relaxed);
    out.count += out.counts[i];
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

// --- MetricsSnapshot ---------------------------------------------------------

const MetricSample* MetricsSnapshot::find(
    const std::string& name, const Labels& labels) const noexcept {
  for (const MetricSample& s : samples) {
    if (s.name != name) continue;
    if (labels.empty() || s.labels == labels) return &s;
  }
  return nullptr;
}

// --- Registry ----------------------------------------------------------------

std::string Registry::key_of(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

Registry::Entry& Registry::get_or_create(const std::string& name,
                                         const std::string& help,
                                         Labels&& labels, MetricType type) {
  std::sort(labels.begin(), labels.end());
  const std::string key = key_of(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.type != type) {
      throw std::logic_error("metric '" + name +
                             "' re-registered with a different type");
    }
    return it->second;
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.labels = std::move(labels);
  entry.type = type;
  return entries_.emplace(key, std::move(entry)).first->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e =
      get_or_create(name, help, std::move(labels), MetricType::kCounter);
  if (!e.counter && !e.pull_counter) e.counter = std::make_unique<Counter>();
  if (!e.counter) {
    throw std::logic_error("metric '" + name +
                           "' already registered as a pull counter");
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = get_or_create(name, help, std::move(labels), MetricType::kGauge);
  if (!e.gauge && !e.pull_gauge) e.gauge = std::make_unique<Gauge>();
  if (!e.gauge) {
    throw std::logic_error("metric '" + name +
                           "' already registered as a pull gauge");
  }
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help, HistogramSpec spec,
                               Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e =
      get_or_create(name, help, std::move(labels), MetricType::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(spec);
  return *e.histogram;
}

void Registry::counter_fn(const std::string& name, const std::string& help,
                          Labels labels, std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e =
      get_or_create(name, help, std::move(labels), MetricType::kCounter);
  e.counter.reset();
  e.pull_counter = std::move(fn);
}

void Registry::gauge_fn(const std::string& name, const std::string& help,
                        Labels labels, std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = get_or_create(name, help, std::move(labels), MetricType::kGauge);
  e.gauge.reset();
  e.pull_gauge = std::move(fn);
}

bool Registry::remove(const std::string& name, const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.erase(key_of(name, sorted)) > 0;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample sample;
    sample.name = entry.name;
    sample.help = entry.help;
    sample.labels = entry.labels;
    sample.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        sample.value = entry.pull_counter
                           ? static_cast<double>(entry.pull_counter())
                           : static_cast<double>(entry.counter->value());
        break;
      case MetricType::kGauge:
        sample.value =
            entry.pull_gauge ? entry.pull_gauge() : entry.gauge->value();
        break;
      case MetricType::kHistogram:
        sample.histogram = entry.histogram->snapshot();
        sample.value = sample.histogram.sum;
        break;
    }
    out.samples.push_back(std::move(sample));
  }
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace resmatch::obs
