// Scoped-timer tracing spans.
//
// A ScopedSpan measures the wall time of a scope and, on destruction,
// (a) records the duration into an optional Histogram (the metrics-layer
// use: latency distributions with no per-span allocation) and (b) emits a
// SpanRecord to the process-wide span sink if one is installed (the
// tracing use: a pluggable consumer, e.g. log_span_sink() which formats
// spans through util::log_message — the same thread-safe logging hook the
// service's worker threads already share, so span lines never interleave
// with log lines).
//
// The disabled path is two relaxed atomic loads and no clock read: spans
// cost nothing until a histogram is attached or a sink installed.
#pragma once

#include <chrono>
#include <functional>
#include <string_view>

#include "util/logging.hpp"

namespace resmatch::obs {

class Histogram;

struct SpanRecord {
  std::string_view name;  ///< valid only for the duration of the sink call
  double seconds = 0.0;
};

using SpanSink = std::function<void(const SpanRecord&)>;

/// Install the process-wide sink (null uninstalls). The sink is called
/// under an internal mutex, one span at a time; it must not create spans
/// or install sinks reentrantly.
void set_span_sink(SpanSink sink);

/// Whether a sink is installed (relaxed; meant for fast-path gating).
[[nodiscard]] bool span_sink_active() noexcept;

/// A sink that writes "span <name>: <duration>" through the logging
/// layer at `level`, inheriting its thread-safety and sink redirection.
[[nodiscard]] SpanSink log_span_sink(
    util::LogLevel level = util::LogLevel::kDebug);

/// Deliver one record to the installed sink, if any.
void emit_span(const SpanRecord& record);

class ScopedSpan {
 public:
  /// `name` must outlive the span (string literals in practice).
  /// `histogram` is optional and not owned.
  explicit ScopedSpan(std::string_view name,
                      Histogram* histogram = nullptr) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Stop early and record; the destructor then does nothing.
  void finish();

  [[nodiscard]] bool armed() const noexcept { return armed_; }

 private:
  std::string_view name_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  bool armed_ = false;
};

}  // namespace resmatch::obs
