// Exporters for metrics snapshots.
//
// Two machine-readable formats:
//   * to_prometheus — the Prometheus text exposition format (version
//     0.0.4): `# HELP` / `# TYPE` per family, one `name{labels} value`
//     line per series, histograms expanded into cumulative `_bucket{le=}`
//     series plus `_sum` and `_count`. Scrape-ready.
//   * to_json — a single JSON object (`{"metrics": [...]}`) with explicit
//     per-bucket counts and precomputed p50/p90/p99 quantile estimates,
//     the payload embedded into BENCH_*.json records (bench_record.hpp).
//
// Both render from a MetricsSnapshot, never from the live registry, so an
// export is internally consistent (cumulative bucket counts always sum to
// the emitted _count) regardless of concurrent recording.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace resmatch::obs {

[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// JSON string escaping per RFC 8259 (quotes, backslashes, control
/// characters); shared by the JSON exporter and bench records.
[[nodiscard]] std::string json_escape(const std::string& raw);

/// Render a double as a JSON-safe token: finite values via %.17g,
/// non-finite values as 0 (JSON has no Inf/NaN literals).
[[nodiscard]] std::string json_number(double value);

/// Write `content` to `path` atomically (temp file + rename, same
/// guarantee as the estimator store's snapshots). Returns false and
/// leaves any existing file untouched on failure.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     const std::string& content);

}  // namespace resmatch::obs
