#include "obs/bench_record.hpp"

#include <ctime>
#include <sstream>

#include "obs/export.hpp"

namespace resmatch::obs {

BenchRecord::BenchRecord(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchRecord::config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, value);
}

void BenchRecord::config(const std::string& key, std::int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void BenchRecord::summary(const std::string& key, double value) {
  summary_.emplace_back(key, value);
}

void BenchRecord::metrics(const MetricsSnapshot& snapshot) {
  // Qualified: the to_json() member hides the exporter overload here.
  metrics_json_ = ::resmatch::obs::to_json(snapshot);
}

std::string BenchRecord::to_json() const {
  std::ostringstream out;
  out << "{\"bench\":\"" << json_escape(bench_name_)
      << "\",\"schema_version\":1,\"created_unix\":"
      << static_cast<long long>(std::time(nullptr)) << ",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : config_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
  }
  out << "},\"summary\":{";
  first = true;
  for (const auto& [k, v] : summary_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(k) << "\":" << json_number(v);
  }
  out << "},\"metrics\":" << metrics_json_ << '}';
  return out.str();
}

bool BenchRecord::write(const std::string& path) const {
  return write_file_atomic(path, to_json());
}

}  // namespace resmatch::obs
