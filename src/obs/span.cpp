#include "obs/span.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace resmatch::obs {

namespace {

std::atomic<bool> g_sink_active{false};

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

SpanSink& sink_slot() {
  static SpanSink sink;
  return sink;
}

}  // namespace

void set_span_sink(SpanSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = std::move(sink);
  g_sink_active.store(static_cast<bool>(sink_slot()),
                      std::memory_order_relaxed);
}

bool span_sink_active() noexcept {
  return g_sink_active.load(std::memory_order_relaxed);
}

SpanSink log_span_sink(util::LogLevel level) {
  return [level](const SpanRecord& record) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "span %.*s: %.3f ms",
                  static_cast<int>(record.name.size()), record.name.data(),
                  record.seconds * 1e3);
    util::log_message(level, buf);
  };
}

void emit_span(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (const SpanSink& sink = sink_slot()) sink(record);
}

ScopedSpan::ScopedSpan(std::string_view name, Histogram* histogram) noexcept
    : name_(name), histogram_(histogram) {
  armed_ = histogram_ != nullptr || span_sink_active();
  if (armed_) start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() { finish(); }

void ScopedSpan::finish() {
  if (!armed_) return;
  armed_ = false;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  if (histogram_) histogram_->record(seconds);
  if (span_sink_active()) emit_span({name_, seconds});
}

}  // namespace resmatch::obs
