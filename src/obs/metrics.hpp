// Metrics primitives and registry for the online service and simulator.
//
// Three instrument kinds, all with a lock-free atomic hot path and no
// allocation on record:
//   * Counter   — monotonically increasing u64 (relaxed fetch_add);
//   * Gauge     — last-written double (relaxed store / fetch_add);
//   * Histogram — fixed log-spaced buckets chosen at construction; record()
//     is a binary search over <= 64 precomputed bounds plus two relaxed
//     fetch_adds, so worker threads never contend or allocate.
//
// The Registry names instruments (Prometheus-style name + label pairs) and
// owns their storage; registration is get-or-create under a mutex, but the
// returned references are stable for the registry's lifetime, so callers
// register once at startup and touch only the atomics while serving.
// Pull-style metrics (counter_fn / gauge_fn) are read at snapshot() time —
// they let subsystems that already maintain atomic counters (the estimator
// store's per-shard stats) export without double-counting on the hot path.
// Providers capture their owner, so the owner must remove() them before it
// dies (svc::Matchd does this in its destructor).
//
// snapshot() returns a self-consistent copy for the exporters
// (export.hpp: Prometheus text exposition and JSON). Values read from
// concurrently-updated instruments are individually atomic but not
// mutually synchronized — totals are monotonic, not transactional.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace resmatch::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double x) noexcept { value_.store(x, std::memory_order_relaxed); }
  void add(double x) noexcept {
    value_.fetch_add(x, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-spaced bucket layout: finite upper bounds lo, lo*growth,
/// lo*growth^2, ... (`buckets` of them), plus an implicit +Inf bucket.
/// The default covers 1 microsecond to ~19 minutes of latency in
/// half-decade-ish steps.
struct HistogramSpec {
  double lo = 1e-6;
  double growth = 2.0;
  std::size_t buckets = 30;
};

/// Point-in-time copy of a histogram, with quantile estimation. `upper`
/// holds the finite bounds; `counts` has one extra trailing entry for the
/// +Inf bucket. Bucket i counts observations in (upper[i-1], upper[i]].
struct HistogramSnapshot {
  std::vector<double> upper;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate (p in [0, 100]): finds the target bucket and
  /// interpolates geometrically between its edges (the buckets are
  /// log-spaced). Observations in the +Inf bucket report the largest
  /// finite bound. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const noexcept;
};

class Histogram {
 public:
  explicit Histogram(HistogramSpec spec = {});

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Lock-free, allocation-free: binary search over the precomputed
  /// bounds, then two relaxed fetch_adds. Values <= the lowest bound land
  /// in bucket 0; values beyond the highest bound land in the +Inf bucket.
  void record(double x) noexcept;

  /// Total observations (sum over buckets; O(buckets)).
  [[nodiscard]] std::uint64_t count() const noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::vector<double> upper_;                      // finite bounds, ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // upper_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Label set, e.g. {{"op", "submit"}}. Kept sorted by key inside the
/// registry so {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// One exported series in a snapshot.
struct MetricSample {
  std::string name;
  std::string help;
  Labels labels;
  MetricType type = MetricType::kGauge;
  double value = 0.0;           ///< counter/gauge value
  HistogramSnapshot histogram;  ///< filled for kHistogram only
};

struct MetricsSnapshot {
  /// Sorted by (name, labels), so series of one family are contiguous.
  std::vector<MetricSample> samples;

  /// First sample matching name (and labels, when given); null if absent.
  [[nodiscard]] const MetricSample* find(
      const std::string& name, const Labels& labels = {}) const noexcept;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. The returned reference is valid for the registry's
  /// lifetime. Re-registration with the same name+labels returns the
  /// existing instrument (help/spec of the first registration win); a
  /// type conflict throws std::logic_error.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       HistogramSpec spec = {}, Labels labels = {});

  /// Pull-style series: `fn` is evaluated at snapshot() time (under the
  /// registry mutex — keep it cheap and non-reentrant). Re-registering
  /// replaces the provider. The provider's captures must outlive the
  /// registry or be remove()d first.
  void counter_fn(const std::string& name, const std::string& help,
                  Labels labels, std::function<std::uint64_t()> fn);
  void gauge_fn(const std::string& name, const std::string& help,
                Labels labels, std::function<double()> fn);

  /// Drop one series (any kind). Returns whether it existed. Invalidates
  /// references to that instrument.
  bool remove(const std::string& name, const Labels& labels);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    MetricType type = MetricType::kGauge;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::uint64_t()> pull_counter;
    std::function<double()> pull_gauge;
  };

  Entry& get_or_create(const std::string& name, const std::string& help,
                       Labels&& labels, MetricType type);
  static std::string key_of(const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // key -> instrument, ordered
};

}  // namespace resmatch::obs
