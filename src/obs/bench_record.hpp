// Machine-readable benchmark records (BENCH_*.json).
//
// Every perf-facing driver (`bench/micro_service`, `examples/serve_replay`)
// can emit one JSON record per run via --metrics-out=<path>, so the
// repository accumulates a perf trajectory CI can validate and archive.
//
// Schema (version 1), validated by scripts/validate_bench_json.py:
//   {
//     "bench":          string        driver name, e.g. "micro_service"
//     "schema_version": 1
//     "created_unix":   integer       wall-clock stamp of the run
//     "config":         {str: str}    the knobs the run was launched with
//     "summary":        {str: number} headline results (jobs/sec, p50/p99)
//     "metrics":        object        full obs::to_json registry dump
//   }
//
// Files are written atomically (temp + rename), so a crashed bench never
// leaves a truncated record for CI to trip over.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace resmatch::obs {

class BenchRecord {
 public:
  explicit BenchRecord(std::string bench_name);

  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, std::int64_t value);
  void summary(const std::string& key, double value);

  /// Attach the full registry dump; pass the same snapshot the summary
  /// numbers were derived from.
  void metrics(const MetricsSnapshot& snapshot);

  [[nodiscard]] std::string to_json() const;

  /// Atomic write of to_json() to `path`.
  [[nodiscard]] bool write(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, double>> summary_;
  std::string metrics_json_ = "{\"metrics\":[]}";
};

}  // namespace resmatch::obs
