#include "obs/export.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace resmatch::obs {

namespace {

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string prom_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Render `{k="v",...}` with an optional extra label appended (used for
/// the histogram `le` label); empty when there are no labels at all.
std::string prom_labels(const Labels& labels, const std::string& extra_key,
                        const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += prom_escape(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += prom_escape(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  std::string last_family;
  for (const MetricSample& s : snapshot.samples) {
    if (s.name != last_family) {
      out << "# HELP " << s.name << ' ' << prom_escape(s.help) << '\n';
      out << "# TYPE " << s.name << ' ' << type_name(s.type) << '\n';
      last_family = s.name;
    }
    if (s.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.upper.size(); ++i) {
        cumulative += h.counts[i];
        out << s.name << "_bucket"
            << prom_labels(s.labels, "le", format_double(h.upper[i])) << ' '
            << cumulative << '\n';
      }
      cumulative += h.counts.empty() ? 0 : h.counts.back();
      out << s.name << "_bucket" << prom_labels(s.labels, "le", "+Inf")
          << ' ' << cumulative << '\n';
      out << s.name << "_sum" << prom_labels(s.labels, {}, {}) << ' '
          << format_double(h.sum) << '\n';
      out << s.name << "_count" << prom_labels(s.labels, {}, {}) << ' '
          << cumulative << '\n';
    } else {
      out << s.name << prom_labels(s.labels, {}, {}) << ' '
          << format_double(s.value) << '\n';
    }
  }
  return out.str();
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  return format_double(value);
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first_sample = true;
  for (const MetricSample& s : snapshot.samples) {
    if (!first_sample) out << ',';
    first_sample = false;
    out << "{\"name\":\"" << json_escape(s.name) << "\",\"type\":\""
        << type_name(s.type) << "\",\"help\":\"" << json_escape(s.help)
        << "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out << ',';
      first_label = false;
      out << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
    }
    out << '}';
    if (s.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      out << ",\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
          << ",\"p50\":" << json_number(h.percentile(50.0))
          << ",\"p90\":" << json_number(h.percentile(90.0))
          << ",\"p99\":" << json_number(h.percentile(99.0))
          << ",\"buckets\":[";
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (i > 0) out << ',';
        out << "{\"le\":";
        if (i < h.upper.size()) {
          out << json_number(h.upper[i]);
        } else {
          out << "\"+Inf\"";
        }
        out << ",\"count\":" << h.counts[i] << '}';
      }
      out << ']';
    } else {
      out << ",\"value\":" << json_number(s.value);
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << content;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace resmatch::obs
