#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace resmatch::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void LinearHistogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

std::vector<HistogramBin> LinearHistogram::bins() const {
  std::vector<HistogramBin> out(counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = {lo_ + width * static_cast<double>(i),
              lo_ + width * static_cast<double>(i + 1), counts_[i]};
  }
  return out;
}

double LinearHistogram::fraction_at_least(double threshold) const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t count = overflow_;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double lower = lo_ + width * static_cast<double>(i);
    if (lower >= threshold) count += counts_[i];
  }
  // Overflowed observations were folded into the last bin's count as well;
  // avoid double counting when the last bin already qualifies.
  const double last_lower =
      lo_ + width * static_cast<double>(counts_.size() - 1);
  if (last_lower >= threshold) count -= overflow_;
  return static_cast<double>(count) / static_cast<double>(total_);
}

LogHistogram::LogHistogram(double lo, double base, std::size_t bins)
    : lo_(lo), base_(base), counts_(bins, 0) {
  assert(lo > 0.0 && base > 1.0 && bins > 0);
}

void LogHistogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
    return;
  }
  const double idx_f = std::log(x / lo_) / std::log(base_);
  auto idx = static_cast<std::size_t>(idx_f);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

std::vector<HistogramBin> LogHistogram::bins() const {
  std::vector<HistogramBin> out(counts_.size());
  double edge = lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = {edge, edge * base_, counts_[i]};
    edge *= base_;
  }
  return out;
}

void IntegerFrequency::add(long long value) noexcept {
  raw_.push_back(value);
  ++total_;
}

std::vector<std::pair<long long, std::size_t>> IntegerFrequency::items()
    const {
  std::map<long long, std::size_t> freq;
  for (long long v : raw_) ++freq[v];
  return {freq.begin(), freq.end()};
}

}  // namespace resmatch::stats
