#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>

namespace resmatch::stats {

void PercentileTracker::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void PercentileTracker::reserve(std::size_t n) { samples_.reserve(n); }

double PercentileTracker::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

}  // namespace resmatch::stats
