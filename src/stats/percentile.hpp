// Exact percentiles over collected samples.
#pragma once

#include <vector>

namespace resmatch::stats {

/// Collects samples and answers percentile queries by sorting on demand.
/// Simulation runs collect at most a few hundred thousand samples, so the
/// O(n log n) sort on first query is cheap and exact.
class PercentileTracker {
 public:
  void add(double x);
  void reserve(std::size_t n);

  /// Percentile in [0, 100] using linear interpolation between order
  /// statistics. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace resmatch::stats
