#include "stats/regression.hpp"

#include <cassert>
#include <cmath>

namespace resmatch::stats {

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  fit.n = xs.size();
  if (fit.n < 2) return fit;

  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(fit.n);
  mean_y /= static_cast<double>(fit.n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    fit.intercept = mean_y;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy <= 0.0 ? 0.0 : (sxy * sxy) / (sxx * syy);
  fit.valid = true;
  return fit;
}

RidgeRegression::RidgeRegression(std::size_t dims, double lambda)
    : dims_(dims + 1),  // +1 bias column
      lambda_(lambda),
      xtx_(dims_ * dims_, 0.0),
      xty_(dims_, 0.0),
      weights_(dims_, 0.0) {}

void RidgeRegression::add(const std::vector<double>& x, double y) {
  assert(x.size() + 1 == dims_);
  // Augmented feature vector with trailing bias 1.
  auto feature = [&](std::size_t i) {
    return i + 1 == dims_ ? 1.0 : x[i];
  };
  for (std::size_t i = 0; i < dims_; ++i) {
    for (std::size_t j = 0; j < dims_; ++j) {
      xtx_[i * dims_ + j] += feature(i) * feature(j);
    }
    xty_[i] += feature(i) * y;
  }
  ++n_;
}

bool RidgeRegression::fit() {
  if (n_ == 0) return false;
  // Copy moments and add ridge damping on the diagonal (bias included; the
  // damping is tiny enough not to bias the intercept materially).
  std::vector<double> a = xtx_;
  std::vector<double> b = xty_;
  for (std::size_t i = 0; i < dims_; ++i) a[i * dims_ + i] += lambda_;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < dims_; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dims_; ++r) {
      if (std::fabs(a[r * dims_ + col]) > std::fabs(a[pivot * dims_ + col])) {
        pivot = r;
      }
    }
    if (std::fabs(a[pivot * dims_ + col]) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < dims_; ++c) {
        std::swap(a[pivot * dims_ + c], a[col * dims_ + c]);
      }
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < dims_; ++r) {
      const double factor = a[r * dims_ + col] / a[col * dims_ + col];
      for (std::size_t c = col; c < dims_; ++c) {
        a[r * dims_ + c] -= factor * a[col * dims_ + c];
      }
      b[r] -= factor * b[col];
    }
  }
  for (std::size_t i = dims_; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < dims_; ++c) {
      acc -= a[i * dims_ + c] * weights_[c];
    }
    weights_[i] = acc / a[i * dims_ + i];
  }
  return true;
}

double RidgeRegression::predict(const std::vector<double>& x) const {
  assert(x.size() + 1 == dims_);
  double y = weights_[dims_ - 1];  // bias
  for (std::size_t i = 0; i + 1 < dims_; ++i) y += weights_[i] * x[i];
  return y;
}

}  // namespace resmatch::stats
