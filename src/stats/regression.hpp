// Ordinary least squares, simple (y = a + b x) and multiple, with R².
//
// The paper reports two regression fits we must reproduce: the log-linear
// fit over the over-provisioning histogram (Figure 1, R² = 0.69) and the
// node-count vs utilization-gain fit (Section 3.2, R² = 0.991). The multiple
// regression backs the explicit-feedback RegressionEstimator (Table 1).
#pragma once

#include <cstddef>
#include <vector>

namespace resmatch::stats {

/// Result of a simple linear fit y ≈ intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;
  /// False when no line was actually fit: fewer than 2 points, or no x
  /// variance. Degenerate fits carry slope 0 and r_squared 0 so a
  /// downstream "does the paper's R² reproduce?" check can never pass
  /// vacuously on them.
  bool valid = false;
};

/// Fit y against x with ordinary least squares. Requires xs.size() ==
/// ys.size() and at least two distinct x values; otherwise returns an
/// invalid fit (see LinearFit::valid) with n recorded and slope 0.
/// Constant-y input yields a valid horizontal fit with r_squared 0 —
/// zero explained variance out of zero total is reported as "explains
/// nothing", never as a perfect fit.
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& xs,
                                   const std::vector<double>& ys);

/// Multiple linear regression via the normal equations with ridge damping.
/// Solves (XᵀX + λI) w = Xᵀy by Gaussian elimination with partial pivoting.
/// Dimensions are small (handful of job-record features), so the O(d³)
/// solve is negligible.
class RidgeRegression {
 public:
  /// `dims` = feature count (a bias term is appended internally).
  explicit RidgeRegression(std::size_t dims, double lambda = 1e-6);

  /// Accumulate one observation.
  void add(const std::vector<double>& x, double y);

  /// Recompute weights from accumulated moments. Returns false when the
  /// system is singular even after damping (e.g., no observations).
  bool fit();

  /// Predict for a feature vector (uses last fitted weights).
  [[nodiscard]] double predict(const std::vector<double>& x) const;

  [[nodiscard]] std::size_t observations() const noexcept { return n_; }
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  std::size_t dims_;   // including bias
  double lambda_;
  std::vector<double> xtx_;  // (dims x dims), row-major
  std::vector<double> xty_;
  std::vector<double> weights_;
  std::size_t n_ = 0;
};

}  // namespace resmatch::stats
