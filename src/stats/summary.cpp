#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace resmatch::stats {

void KahanSum::add(double x) noexcept {
  const double y = x - c_;
  const double t = sum_ + y;
  c_ = (t - sum_) - y;
  sum_ = t;
}

void Summary::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  // Kahan-compensated running sum.
  const double y = x - sum_compensation_;
  const double t = sum_ + y;
  sum_compensation_ = (t - sum_) - y;
  sum_ = t;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace resmatch::stats
