// Streaming descriptive statistics.
#pragma once

#include <cstddef>
#include <limits>

namespace resmatch::stats {

/// Running mean/variance/min/max via Welford's algorithm plus Kahan-
/// compensated totals. O(1) memory; numerically stable over the ~10^5-10^7
/// observations an experiment sweep produces.
class Summary {
 public:
  void add(double x) noexcept;

  /// Merge another summary (parallel-reduction friendly).
  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double sum_compensation_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Kahan-compensated accumulator for long sums of small terms.
class KahanSum {
 public:
  void add(double x) noexcept;
  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

}  // namespace resmatch::stats
