// Fixed-bin histograms (linear and logarithmic), used for the paper's
// Figure 1 (over-provisioning ratio histogram, log-scaled y) and Figure 3
// (group-size distribution).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace resmatch::stats {

/// One rendered histogram bin.
struct HistogramBin {
  double lower = 0.0;   ///< inclusive lower edge
  double upper = 0.0;   ///< exclusive upper edge (inclusive for last bin)
  std::size_t count = 0;
};

/// Histogram over [lo, hi) with equal-width bins. Values outside the range
/// are clamped into the first/last bin and counted in under/overflow too,
/// so no observation is silently dropped.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::vector<HistogramBin> bins() const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }

  /// Fraction of all observations with value >= threshold (computed from
  /// bin edges; threshold should align with an edge for exactness).
  [[nodiscard]] double fraction_at_least(double threshold) const noexcept;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Histogram with logarithmically spaced bin edges starting at `lo > 0`,
/// each bin spanning a factor of `base`.
class LogHistogram {
 public:
  LogHistogram(double lo, double base, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::vector<HistogramBin> bins() const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_, base_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact integer-valued frequency map rendered as (value, count) pairs in
/// ascending order; used for group-size distributions where bin edges would
/// blur the small sizes that dominate.
class IntegerFrequency {
 public:
  void add(long long value) noexcept;
  [[nodiscard]] std::vector<std::pair<long long, std::size_t>> items() const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  std::vector<std::pair<long long, std::size_t>> sorted_cache_;
  std::vector<long long> raw_;
  std::size_t total_ = 0;
};

}  // namespace resmatch::stats
