#include "core/bracketing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace resmatch::core {

namespace {
constexpr double kGrantEps = 1e-9;
}  // namespace

BracketingEstimator::BracketingEstimator(BracketingConfig config,
                                         SimilarityKeyFn key_fn)
    : config_(config), index_(std::move(key_fn)) {
  assert(config_.convergence_ratio > 1.0);
}

BracketingEstimator::GroupState& BracketingEstimator::state_for(
    const trace::JobRecord& job) {
  const GroupId gid = index_.group_of(job);
  if (gid >= groups_.size()) {
    GroupState fresh;
    fresh.lo = 0.0;
    // The request is sufficient by assumption: it seeds the bracket top.
    fresh.hi = job.requested_mem_mib;
    groups_.resize(gid + 1, fresh);
  }
  return groups_[gid];
}

MiB BracketingEstimator::next_probe(const GroupState& g,
                                    const trace::JobRecord& /*job*/) const {
  const MiB safe = ladder_.round_up(g.hi);
  if (g.probe_outstanding) return safe;  // serialize experiments
  // First run at the request (hi is assumed, not yet demonstrated).
  if (!g.hi_confirmed) return safe;

  // Converged when the bracket is tight...
  if (g.lo > 0.0 && g.hi / g.lo <= config_.convergence_ratio) return safe;

  // Geometric midpoint; with no failure yet the bracket bottom is the
  // smallest rung (or hi/16 without a ladder) so early probes descend fast.
  const MiB floor =
      g.lo > 0.0 ? g.lo
                 : (ladder_.empty() ? g.hi / 16.0
                                    : std::min(ladder_.min(), g.hi));
  MiB mid = std::sqrt(std::max(floor, 1e-6) * std::max(g.hi, 1e-6));
  MiB probe = ladder_.round_up(mid);
  if (probe + kGrantEps >= safe) {
    // On a coarse ladder the midpoint rounds back onto the safe rung
    // (e.g. bracket [24, 32] on a {24, 32} cluster). Guarantee progress
    // by stepping to the next rung below instead.
    const auto below = ladder_.next_below(safe);
    if (!below) return safe;
    probe = *below;
  }
  // Only grants strictly inside (lo, hi) carry information.
  if (probe + kGrantEps >= safe) return safe;
  if (probe <= g.lo + kGrantEps) return safe;
  return probe;
}

MiB BracketingEstimator::preview(const trace::JobRecord& job,
                                 const SystemState& /*state*/) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) {
    return ladder_.round_up(job.requested_mem_mib);
  }
  return next_probe(groups_[*gid], job);
}

MiB BracketingEstimator::estimate(const trace::JobRecord& job,
                                  const SystemState& /*state*/) {
  GroupState& g = state_for(job);
  const MiB granted = next_probe(g, job);
  const MiB safe = ladder_.round_up(g.hi);
  if (granted + kGrantEps < safe) {
    g.probe_outstanding = true;
    g.probe_grant = granted;
  }
  if (config_.record_trajectories && g.grants.size() < config_.trajectory_cap) {
    g.grants.push_back(granted);
  }
  return granted;
}

void BracketingEstimator::cancel(const trace::JobRecord& job, MiB granted) {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return;
  GroupState& g = groups_[*gid];
  if (g.probe_outstanding && std::fabs(granted - g.probe_grant) <= kGrantEps) {
    g.probe_outstanding = false;
  }
}

void BracketingEstimator::feedback(const trace::JobRecord& job,
                                   const Feedback& fb) {
  GroupState& g = state_for(job);
  if (g.probe_outstanding &&
      std::fabs(fb.granted_mib - g.probe_grant) <= kGrantEps) {
    g.probe_outstanding = false;
  }

  if (fb.success) {
    // A success anywhere tightens the top of the bracket.
    if (fb.granted_mib < g.hi) g.hi = fb.granted_mib;
    g.hi_confirmed = true;
    return;
  }

  if (fb.granted_mib + kGrantEps < g.hi) {
    // Failure strictly inside the bracket: raise the bottom.
    g.lo = std::max(g.lo, fb.granted_mib);
  } else {
    // Failure AT (or above) the believed-safe capacity: a higher-usage
    // member or a false positive. Widen upward — hi was wrong for this
    // member — capped at the request, which is sufficient by assumption.
    g.lo = std::max(g.lo, fb.granted_mib);
    const auto rung = ladder_.next_above(g.hi);
    MiB widened = rung ? *rung : job.requested_mem_mib;
    widened = std::min(widened, std::max(job.requested_mem_mib, g.hi));
    g.hi = std::max(g.hi, widened);
    // Keep the invariant lo < hi.
    if (g.lo + kGrantEps >= g.hi) g.lo = 0.0;
  }
}

std::optional<MiB> BracketingEstimator::group_capacity(
    const trace::JobRecord& job) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return std::nullopt;
  return groups_[*gid].hi;
}

std::vector<MiB> BracketingEstimator::trajectory(
    const trace::JobRecord& job) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return {};
  return groups_[*gid].grants;
}

}  // namespace resmatch::core
