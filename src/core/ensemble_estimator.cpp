#include "core/ensemble_estimator.hpp"

#include <cmath>

namespace resmatch::core {

EnsembleEstimator::EnsembleEstimator(EnsembleConfig config)
    : config_(config), quantile_(config.quantile) {}

void EnsembleEstimator::set_ladder(CapacityLadder ladder) {
  quantile_.set_ladder(ladder);
  Estimator::set_ladder(std::move(ladder));
}

bool EnsembleEstimator::model_ready(const Group& g) const noexcept {
  return !g.fallback && quantile_.warm() &&
         quantile_.coverage() >= config_.coverage_threshold;
}

EnsembleEstimator::Group& EnsembleEstimator::group_for(
    const trace::JobRecord& job) {
  const std::uint64_t key = default_similarity_key(job);
  auto it = index_.find(key);
  if (it == index_.end()) {
    Group fresh;
    fresh.sa = SaGroupState::fresh(job.requested_mem_mib, config_.alpha);
    it = index_.emplace(key, groups_.size()).first;
    groups_.emplace_back(key, fresh);
  }
  return groups_[it->second].second;
}

const EnsembleEstimator::Group* EnsembleEstimator::find_group(
    const trace::JobRecord& job) const {
  const auto it = index_.find(default_similarity_key(job));
  if (it == index_.end()) return nullptr;
  return &groups_[it->second].second;
}

MiB EnsembleEstimator::estimate(const trace::JobRecord& job,
                                const SystemState& state) {
  Group& g = group_for(job);
  if (model_ready(g)) {
    // The model's prediction is stateless (it advances only in feedback),
    // so serving it commits nothing on the SA side either.
    g.model_served = true;
    return quantile_.preview(job, state);
  }
  g.model_served = false;
  return g.sa.commit(ladder_);
}

MiB EnsembleEstimator::preview(const trace::JobRecord& job,
                               const SystemState& state) const {
  const Group* g = find_group(job);
  if (g == nullptr) {
    // A warm model prices unseen groups off everything learned so far —
    // the cross-group transfer Algorithm 1 cannot do; otherwise the first
    // SA grant is the rounded request.
    if (quantile_.warm() && quantile_.coverage() >= config_.coverage_threshold) {
      return quantile_.preview(job, state);
    }
    return ladder_.round_up(job.requested_mem_mib);
  }
  if (model_ready(*g)) return quantile_.preview(job, state);
  return g->sa.preview(ladder_);
}

void EnsembleEstimator::cancel(const trace::JobRecord& job, MiB granted) {
  const auto it = index_.find(default_similarity_key(job));
  if (it == index_.end()) return;
  Group& g = groups_[it->second].second;
  if (g.model_served) return;  // model serves statelessly; nothing to undo
  g.sa.cancel(granted);
}

void EnsembleEstimator::feedback(const trace::JobRecord& job,
                                 const Feedback& fb) {
  Group& g = group_for(job);
  if (fb.success) {
    // A success is proven capacity no matter who granted it: fold it into
    // the SA state so a later fallback resumes from fresh knowledge.
    (void)g.sa.apply_feedback(fb, job.requested_mem_mib, ladder_, config_.beta);
    if (g.model_served) g.consecutive_failures = 0;
  } else if (!g.model_served) {
    (void)g.sa.apply_feedback(fb, job.requested_mem_mib, ladder_, config_.beta);
  } else if (fb.resource_failure.value_or(true)) {
    // A model-served kill is NOT charged to SA (the grant was not SA's;
    // freezing alpha over it would be unfair) — it counts toward this
    // group's permanent fallback instead.
    if (++g.consecutive_failures >= config_.fallback_after) g.fallback = true;
  }
  // The model trains on every outcome (it self-filters implicit feedback).
  quantile_.feedback(job, fb);
}

std::size_t EnsembleEstimator::fallback_groups() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, g] : groups_) {
    (void)key;
    if (g.fallback) ++n;
  }
  return n;
}

std::vector<double> EnsembleEstimator::save_state() const {
  const auto model = quantile_.save_state();
  std::vector<double> out;
  out.reserve(3 + model.size() + groups_.size() * kGroupFields);
  out.push_back(kStateVersion);
  out.push_back(static_cast<double>(model.size()));
  out.insert(out.end(), model.begin(), model.end());
  out.push_back(static_cast<double>(groups_.size()));
  for (const auto& [key, g] : groups_) {
    // 64-bit keys do not fit a double exactly; split into exact 32-bit
    // halves.
    out.push_back(static_cast<double>(key >> 32));
    out.push_back(static_cast<double>(key & 0xffffffffu));
    const auto sa = g.sa.to_fields();
    out.insert(out.end(), sa.begin(), sa.end());
    out.push_back(static_cast<double>(g.consecutive_failures));
    out.push_back(g.fallback ? 1.0 : 0.0);
    out.push_back(g.model_served ? 1.0 : 0.0);
  }
  return out;
}

bool EnsembleEstimator::load_state(const std::vector<double>& state) {
  if (state.size() < 2 || state[0] != kStateVersion) return false;
  std::size_t pos = 1;
  const auto take_count = [&](std::size_t& out_count) {
    if (pos >= state.size()) return false;
    const double raw = state[pos++];
    if (!(raw >= 0.0) || raw != std::floor(raw)) return false;
    out_count = static_cast<std::size_t>(raw);
    return true;
  };
  std::size_t model_len = 0;
  if (!take_count(model_len) || state.size() - pos < model_len) return false;
  const std::vector<double> model(state.begin() + static_cast<long>(pos),
                                  state.begin() + static_cast<long>(pos + model_len));
  pos += model_len;
  std::size_t group_count = 0;
  if (!take_count(group_count)) return false;
  if (state.size() - pos != group_count * kGroupFields) return false;

  std::vector<std::pair<std::uint64_t, Group>> groups;
  std::unordered_map<std::uint64_t, std::size_t> index;
  groups.reserve(group_count);
  for (std::size_t i = 0; i < group_count; ++i) {
    const double hi = state[pos], lo = state[pos + 1];
    if (!(hi >= 0.0 && hi <= 0xffffffffu && hi == std::floor(hi)) ||
        !(lo >= 0.0 && lo <= 0xffffffffu && lo == std::floor(lo))) {
      return false;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
    const auto sa = SaGroupState::from_fields(
        {state.begin() + static_cast<long>(pos + 2),
         state.begin() + static_cast<long>(pos + 7)});
    if (!sa) return false;
    const double consec = state[pos + 7];
    if (!(consec >= 0.0) || consec != std::floor(consec)) return false;
    Group g;
    g.sa = *sa;
    g.consecutive_failures = static_cast<std::uint32_t>(consec);
    g.fallback = state[pos + 8] != 0.0;
    g.model_served = state[pos + 9] != 0.0;
    if (!index.emplace(key, groups.size()).second) return false;  // dup key
    groups.emplace_back(key, g);
    pos += kGroupFields;
  }
  // Validate everything before mutating: a rejected blob leaves the
  // estimator untouched.
  if (!quantile_.load_state(model)) return false;
  groups_ = std::move(groups);
  index_ = std::move(index);
  return true;
}

std::optional<ModelStats> EnsembleEstimator::model_stats() const {
  ModelStats stats = quantile_.model_stats().value_or(ModelStats{});
  stats.groups_fallback = fallback_groups();
  const bool serving = quantile_.warm() &&
                       quantile_.coverage() >= config_.coverage_threshold;
  stats.groups_model =
      serving ? groups_.size() - stats.groups_fallback : 0;
  return stats;
}

}  // namespace resmatch::core
