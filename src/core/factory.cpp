#include "core/factory.hpp"

#include <stdexcept>

#include "core/bracketing.hpp"

namespace resmatch::core {

std::vector<std::string> estimator_names() {
  return {"none",
          "successive-approximation",
          "bracketing",
          "last-instance",
          "reinforcement-learning",
          "regression-ridge",
          "regression-knn",
          "quantile",
          "ensemble"};
}

std::unique_ptr<Estimator> make_estimator(const std::string& name,
                                          const EstimatorOptions& options) {
  if (name == "none") {
    return std::make_unique<NoEstimator>();
  }
  if (name == "successive-approximation") {
    SuccessiveApproxConfig cfg;
    cfg.alpha = options.alpha;
    cfg.beta = options.beta;
    cfg.record_trajectories = options.record_trajectories;
    return std::make_unique<SuccessiveApproximationEstimator>(cfg);
  }
  if (name == "bracketing") {
    BracketingConfig cfg;
    cfg.record_trajectories = options.record_trajectories;
    return std::make_unique<BracketingEstimator>(cfg);
  }
  if (name == "last-instance") {
    LastInstanceConfig cfg;
    cfg.window = options.window;
    cfg.margin = options.margin;
    return std::make_unique<LastInstanceEstimator>(cfg);
  }
  if (name == "reinforcement-learning") {
    RlEstimatorConfig cfg;
    cfg.seed = options.seed;
    cfg.max_pending = options.rl_max_pending;
    return std::make_unique<RlEstimator>(cfg);
  }
  if (name == "regression-ridge" || name == "regression-knn") {
    RegressionConfig cfg;
    cfg.model = name == "regression-ridge" ? RegressionModel::kRidge
                                           : RegressionModel::kKnn;
    cfg.margin = options.regression_margin;
    cfg.min_observations = options.min_observations;
    cfg.max_burned_keys = options.max_burned_keys;
    return std::make_unique<RegressionEstimator>(cfg);
  }
  if (name == "quantile") {
    QuantileEstimatorConfig cfg;
    cfg.tau = options.quantile_tau;
    cfg.min_observations = options.min_observations;
    return std::make_unique<QuantileEstimator>(cfg);
  }
  if (name == "ensemble") {
    EnsembleConfig cfg;
    cfg.alpha = options.alpha;
    cfg.beta = options.beta;
    cfg.quantile.tau = options.quantile_tau;
    cfg.quantile.min_observations = options.min_observations;
    cfg.coverage_threshold = options.coverage_threshold;
    return std::make_unique<EnsembleEstimator>(cfg);
  }
  throw std::invalid_argument("unknown estimator: " + name);
}

bool requires_explicit_feedback(const std::string& name) {
  return name == "last-instance" || name == "regression-ridge" ||
         name == "regression-knn" || name == "quantile" || name == "ensemble";
}

}  // namespace resmatch::core
