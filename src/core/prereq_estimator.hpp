// Prerequisite-package estimation (paper §1.3).
//
// The paper's over-provisioning problem covers non-numeric resources too:
// jobs may list prerequisite software packages they never actually use,
// and estimation can learn to "ignore some software packages that are
// defined as prerequisites". This estimator treats each prerequisite as a
// boolean resource and, with implicit feedback only, probes dropping one
// not-yet-classified prerequisite per cycle:
//
//   success while package p was dropped  -> p is droppable
//   failure while package p was dropped  -> p is required
//
// Once all packages are classified, the estimate is exactly the required
// set. Used together with match::ClassAd machine ads in the matchmaking
// example: fewer required packages means more machines qualify.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace resmatch::core {

class PrerequisiteEstimator {
 public:
  PrerequisiteEstimator() = default;

  /// Which of the `count` requested prerequisites to actually require on
  /// this submission. Index i of the result corresponds to prerequisite i
  /// of the group's fixed request list.
  [[nodiscard]] std::vector<bool> estimate(GroupId group, std::size_t count);

  /// Implicit feedback for the group's most recent estimate.
  void feedback(GroupId group, bool success);

  /// Classification of a prerequisite: unknown until probed.
  enum class Status { kUnknown, kRequired, kDroppable };

  [[nodiscard]] Status status(GroupId group, std::size_t prereq) const;

  /// Number of prerequisites proven droppable so far for a group.
  [[nodiscard]] std::size_t droppable_count(GroupId group) const;

 private:
  struct GroupState {
    std::vector<Status> status;
    std::size_t probe = 0;      ///< prerequisite dropped in the last estimate
    bool probing = false;       ///< whether the last estimate dropped one
    bool awaiting_feedback = false;
  };

  std::unordered_map<GroupId, GroupState> groups_;
};

}  // namespace resmatch::core
