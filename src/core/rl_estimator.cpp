#include "core/rl_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace resmatch::core {

namespace {

ml::StateSpace make_space(const RlEstimatorConfig& cfg) {
  std::vector<ml::Discretizer> dims;
  dims.emplace_back(0.0, 1.0, cfg.load_buckets);
  // Queue length on a log scale: 2^0 .. 2^10 jobs.
  dims.emplace_back(0.0, 10.0, cfg.queue_buckets);
  // log2 of requested memory, 0..5 covers 1..32 MiB (clamped outside).
  dims.emplace_back(0.0, 5.0, cfg.memory_buckets);
  return ml::StateSpace(std::move(dims));
}

}  // namespace

RlEstimator::RlEstimator(RlEstimatorConfig config)
    : config_(std::move(config)),
      space_(make_space(config_)),
      agent_(space_.state_count(), config_.scale_factors.size(),
             config_.agent, config_.seed) {}

std::size_t RlEstimator::state_index(const trace::JobRecord& job,
                                     const SystemState& state) const {
  return space_.index({
      state.busy_fraction,
      std::log2(static_cast<double>(state.queue_length) + 1.0),
      std::log2(std::max(job.requested_mem_mib, 1.0)),
  });
}

void RlEstimator::remember(JobId id, const PendingDecision& decision) {
  const auto it = pending_.find(id);
  if (it != pending_.end()) {
    // Resubmission: refresh the decision and its place in the age order.
    pending_order_.splice(pending_order_.end(), pending_order_, it->second);
    it->second->second = decision;
    return;
  }
  if (pending_.size() >= std::max<std::size_t>(config_.max_pending, 1)) {
    // Feedback never arrived for the oldest decision (a degraded service
    // drops feedback by design); forget it rather than grow unbounded.
    pending_.erase(pending_order_.front().first);
    pending_order_.pop_front();
  }
  pending_order_.emplace_back(id, decision);
  pending_.emplace(id, std::prev(pending_order_.end()));
}

std::optional<RlEstimator::PendingDecision> RlEstimator::take(JobId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return std::nullopt;
  const PendingDecision decision = it->second->second;
  pending_order_.erase(it->second);
  pending_.erase(it);
  return decision;
}

MiB RlEstimator::estimate(const trace::JobRecord& job,
                          const SystemState& state) {
  const std::size_t s = state_index(job, state);
  const std::size_t a = agent_.select_action(s);
  const double factor = config_.scale_factors[a];
  remember(job.id, {s, a, job.requested_mem_mib});
  return ladder_.round_up(job.requested_mem_mib * factor);
}

MiB RlEstimator::preview(const trace::JobRecord& job,
                         const SystemState& state) const {
  const std::size_t s = state_index(job, state);
  const double factor = config_.scale_factors[agent_.best_action(s)];
  return ladder_.round_up(job.requested_mem_mib * factor);
}

void RlEstimator::cancel(const trace::JobRecord& job, MiB /*granted*/) {
  (void)take(job.id);
}

void RlEstimator::feedback(const trace::JobRecord& job, const Feedback& fb) {
  const auto taken = take(job.id);
  if (!taken) return;  // feedback without a decision: ignore
  const PendingDecision decision = *taken;

  double reward = 0.0;
  if (fb.success) {
    // Reward the saved fraction of the request. Explicit feedback could
    // sharpen this with true usage, but the saved capacity is what the
    // cluster actually reclaims.
    const double saved =
        decision.requested > 0.0
            ? std::clamp(1.0 - fb.granted_mib / decision.requested, 0.0, 1.0)
            : 0.0;
    reward = saved;
  } else {
    const bool resource = fb.resource_failure.value_or(true);
    // Non-resource failures (known only with explicit feedback) carry no
    // signal about the scaling decision.
    if (!resource) return;
    reward = -config_.failure_penalty;
  }
  // One-shot episode: terminal transition.
  agent_.update(decision.state, decision.action, reward, agent_.states());
}

double RlEstimator::greedy_factor(const trace::JobRecord& job,
                                  const SystemState& state) const {
  const std::size_t s = state_index(job, state);
  return config_.scale_factors[agent_.best_action(s)];
}

}  // namespace resmatch::core
