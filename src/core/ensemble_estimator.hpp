// Cold-start ensemble: successive approximation while the learned model
// warms up, per-group hand-over to quantile regression once it earns trust.
//
// The learned estimators (regression, quantile) share a cold-start flaw:
// until min_observations labeled jobs accumulate they pass requests
// through unchanged, forfeiting exactly the easy savings Algorithm 1
// harvests from its very first repeat submission. Conversely Algorithm 1
// never transfers knowledge across groups, so a brand-new group restarts
// from the full request even when thousands of similar jobs have been
// observed. This estimator runs both and routes per similarity group:
//
//   * cold (model under-trained or coverage below threshold): the group is
//     served by its own SaGroupState, byte-identical to the pure
//     successive-approximation estimator — the ensemble can never do worse
//     than SA while the model trains;
//   * warm: the group is served by the shared quantile model, which prices
//     new groups off everything learned so far;
//   * fallback: a group whose model-served attempts hit fallback_after
//     consecutive resource kills is handed back to SA permanently — the
//     model is demonstrably mispricing that group, and SA's last-good
//     restore makes the damage self-limiting.
//
// The SA side keeps learning while the model serves: every successful
// attempt is proven capacity and folds into the group's Algorithm 1 state,
// so a fallback group resumes from fresh knowledge, not from where SA left
// off when the model took over. Model-attempt failures are NOT charged to
// SA (they were not SA's grants; freezing alpha over them would be unfair).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/estimator.hpp"
#include "core/group_state.hpp"
#include "core/quantile_estimator.hpp"
#include "core/similarity.hpp"

namespace resmatch::core {

struct EnsembleConfig {
  /// Algorithm 1 parameters for the SA side (paper defaults).
  double alpha = 2.0;
  double beta = 0.0;
  /// The shared learned model.
  QuantileEstimatorConfig quantile;
  /// Hand a group to the model only while prequential coverage is at least
  /// this (on top of the model's own min_observations warm-up).
  double coverage_threshold = 0.90;
  /// Consecutive model-served resource kills before a group falls back to
  /// SA for good.
  std::uint32_t fallback_after = 3;
};

class EnsembleEstimator final : public Estimator {
 public:
  explicit EnsembleEstimator(EnsembleConfig config = {});

  [[nodiscard]] std::string name() const override { return "ensemble"; }

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const SystemState& state) override;

  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const SystemState& state) const override;

  void cancel(const trace::JobRecord& job, MiB granted) override;

  void feedback(const trace::JobRecord& job, const Feedback& fb) override;

  void set_ladder(CapacityLadder ladder) override;

  [[nodiscard]] std::vector<double> save_state() const override;
  [[nodiscard]] bool load_state(const std::vector<double>& state) override;
  [[nodiscard]] std::optional<ModelStats> model_stats() const override;

  [[nodiscard]] const QuantileEstimator& model() const noexcept {
    return quantile_;
  }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return groups_.size();
  }
  [[nodiscard]] std::size_t fallback_groups() const noexcept;

 private:
  struct Group {
    SaGroupState sa;
    /// Consecutive resource kills while the model served this group.
    std::uint32_t consecutive_failures = 0;
    /// Sticky: handed back to SA after fallback_after model kills.
    bool fallback = false;
    /// Whether the most recent estimate() for this group came from the
    /// model (routes the next cancel/feedback to the right side).
    bool model_served = false;
  };

  /// Doubles serialized per group by save_state(): key halves (2), the
  /// SaGroupState wire form (5), consecutive_failures, fallback,
  /// model_served.
  static constexpr std::size_t kGroupFields = 10;
  static constexpr double kStateVersion = 1.0;

  [[nodiscard]] bool model_ready(const Group& g) const noexcept;
  [[nodiscard]] Group& group_for(const trace::JobRecord& job);
  [[nodiscard]] const Group* find_group(const trace::JobRecord& job) const;

  EnsembleConfig config_;
  QuantileEstimator quantile_;
  /// Insertion-ordered so save_state() is deterministic across identical
  /// histories (the crash-recovery equivalence tests depend on it).
  std::vector<std::pair<std::uint64_t, Group>> groups_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace resmatch::core
