#include "core/quantile_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace resmatch::core {

QuantileEstimator::QuantileEstimator(QuantileEstimatorConfig config)
    : config_(config),
      regressor_(ml::kJobFeatureCount,
                 {config.tau, config.learning_rate}),
      margin_(config.margin) {
  config_.max_margin = std::max(config_.max_margin, config_.min_margin);
  margin_ = std::clamp(margin_, config_.min_margin, config_.max_margin);
  if (config_.ewma_horizon == 0) config_.ewma_horizon = 1;
}

MiB QuantileEstimator::estimate(const trace::JobRecord& job,
                                const SystemState& state) {
  // Prediction is stateless; the model itself advances only in feedback().
  return preview(job, state);
}

MiB QuantileEstimator::preview(const trace::JobRecord& job,
                               const SystemState& /*state*/) const {
  if (!warm()) {
    return ladder_.round_up(job.requested_mem_mib);
  }
  const double predicted_target = regressor_.predict(ml::job_features(job));
  const MiB predicted = ml::target_to_mib(predicted_target) * margin_;
  // A request is a safe upper bound; never estimate above it.
  const MiB target = std::clamp(predicted, 0.0, job.requested_mem_mib);
  return ladder_.round_up(target);
}

bool QuantileEstimator::covers(const trace::JobRecord& job,
                               MiB used_mib) const {
  trace::JobRecord labeled = job;
  labeled.used_mem_mib = used_mib;
  const double predicted = regressor_.predict(ml::job_features(labeled));
  return predicted >= ml::usage_target(labeled);
}

void QuantileEstimator::feedback(const trace::JobRecord& job,
                                 const Feedback& fb) {
  const double lambda = 1.0 / static_cast<double>(config_.ewma_horizon);

  // Risk-aware margin control, driven by every attempt outcome (kills are
  // visible even when usage is not). Widening is deliberately much faster
  // than narrowing: a kill costs a re-execution, slack only capacity.
  const bool killed = fb.resource_failure.value_or(!fb.success);
  kill_ += lambda * ((killed ? 1.0 : 0.0) - kill_);
  if (warm()) {
    if (kill_ > config_.target_kill_rate) {
      margin_ *= 1.02;
    } else if (kill_ < config_.target_kill_rate / 2.0) {
      margin_ /= 1.005;
    }
    margin_ = std::clamp(margin_, config_.min_margin, config_.max_margin);
  }

  // Quantile regression requires explicit feedback; without a usage
  // observation there is nothing to learn from.
  if (!fb.used_mib) return;
  trace::JobRecord labeled = job;
  labeled.used_mem_mib = *fb.used_mib;
  const auto features = ml::job_features(labeled);
  const double target = ml::usage_target(labeled);
  // Prequential scoring: judge the prediction BEFORE training on the
  // observation, so coverage_ honestly estimates out-of-sample coverage.
  const bool covered = regressor_.predict(features) >= target;
  coverage_ += lambda * ((covered ? 1.0 : 0.0) - coverage_);
  regressor_.update(features, target);
}

std::vector<double> QuantileEstimator::save_state() const {
  std::vector<double> out;
  const auto model = regressor_.state();
  out.reserve(4 + model.size());
  out.push_back(kStateVersion);
  out.push_back(margin_);
  out.push_back(coverage_);
  out.push_back(kill_);
  out.insert(out.end(), model.begin(), model.end());
  return out;
}

bool QuantileEstimator::load_state(const std::vector<double>& state) {
  if (state.size() < 4 || state[0] != kStateVersion) return false;
  const double margin = state[1];
  const double coverage = state[2];
  const double kill = state[3];
  if (!std::isfinite(margin) || margin < config_.min_margin ||
      margin > config_.max_margin) {
    return false;
  }
  if (!(coverage >= 0.0 && coverage <= 1.0) || !(kill >= 0.0 && kill <= 1.0)) {
    return false;
  }
  if (!regressor_.restore({state.begin() + 4, state.end()})) return false;
  margin_ = margin;
  coverage_ = coverage;
  kill_ = kill;
  return true;
}

std::optional<ModelStats> QuantileEstimator::model_stats() const {
  ModelStats stats;
  stats.coverage = coverage_;
  stats.margin = margin_;
  stats.observations = regressor_.observations();
  return stats;
}

}  // namespace resmatch::core
