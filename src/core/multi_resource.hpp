// Multi-resource generalization of Algorithm 1 (paper §2.3, last
// paragraph).
//
// The paper notes that lowering several resources simultaneously makes it
// impossible to tell which one caused a failure, and points to
// multidimensional optimization as the remedy. This implementation takes
// the simplest sound approach: per estimation cycle only ONE resource
// coordinate is probed below its last-good value (round-robin across
// coordinates), so a failure unambiguously blames the probed coordinate.
// Each coordinate keeps its own learning rate α_k with the same
// restore-and-damp rule as the scalar algorithm.
//
// The class is deliberately independent of JobRecord so it can estimate
// any resource vector (memory, disk, licenses, ...); the memory-only
// experiments wrap it when needed.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/estimator.hpp"
#include "core/factory.hpp"
#include "util/resource_vector.hpp"
#include "util/types.hpp"

namespace resmatch::core {

struct MultiResourceConfig {
  double alpha = 2.0;  ///< initial per-coordinate learning rate (> 1)
  double beta = 0.0;   ///< failure damping, in [0, 1)
};

class MultiResourceEstimator {
 public:
  explicit MultiResourceEstimator(std::size_t dimensions,
                                  MultiResourceConfig config = {});

  /// Effective resource vector for the next submission of group `group`.
  /// `requested` initializes the group on first sight; its size must equal
  /// `dimensions()`. Exactly one coordinate is below its last-good value.
  [[nodiscard]] std::vector<double> estimate(
      GroupId group, const std::vector<double>& requested);

  /// Implicit feedback for the group's most recent estimate.
  void feedback(GroupId group, bool success);

  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return groups_.size();
  }

  /// Last-good vector of a group, if it exists.
  [[nodiscard]] std::optional<std::vector<double>> last_good(
      GroupId group) const;

 private:
  struct GroupState {
    std::vector<double> estimate;    ///< per-coordinate E
    std::vector<double> last_good;
    std::vector<double> alpha;       ///< per-coordinate α
    std::size_t probe = 0;           ///< coordinate probed this cycle
    bool awaiting_feedback = false;
  };

  std::size_t dims_;
  MultiResourceConfig config_;
  std::unordered_map<GroupId, GroupState> groups_;
};

// ---------------------------------------------------------------------------
// VectorEstimator: per-dimension estimation over the scalar estimator zoo.
//
// Where MultiResourceEstimator (above) is the paper's round-robin probe for
// one shared similarity group, VectorEstimator is the production shape: one
// independent scalar Estimator per resource dimension (memory, CPU, GPU),
// each with its own capacity ladder and learned state, driven through the
// unmodified Estimator interface. A job's effective request is the vector
// of per-dimension estimates; feedback is routed per dimension with that
// dimension's own grant/usage/failure bit, so blame never smears across
// resources (any-dimension overrun kills the job, but only the culprit
// dimension sees resource_failure = true).
//
// Transparency contract (pinned by tests/mr_equiv_test.cpp): with dims == 1
// every call passes the JobRecord through UNCHANGED to the underlying
// estimator, so a dims=1 VectorEstimator is bit-for-bit the scalar
// estimator it wraps. Higher dimensions see a shim record whose
// requested/used memory fields carry that dimension's coordinates.
// ---------------------------------------------------------------------------

struct VectorEstimatorConfig {
  std::size_t dims = 1;  ///< in [1, kMaxResourceDims]
  /// Scalar estimator built per dimension (factory.hpp name).
  std::string estimator = "successive-approximation";
  EstimatorOptions options;
};

/// Outcome of one attempt, one coordinate per resource dimension.
struct VectorFeedback {
  bool success = false;
  ResourceVector granted{};
  /// Explicit feedback: `used` and `dim_failure` are meaningful.
  bool explicit_feedback = false;
  ResourceVector used{};
  /// Per-dimension: did THIS dimension's overrun kill the job?
  std::array<bool, kMaxResourceDims> dim_failure{};
};

class VectorEstimator {
 public:
  explicit VectorEstimator(VectorEstimatorConfig config);

  [[nodiscard]] const std::string& estimator_name() const noexcept {
    return config_.estimator;
  }
  [[nodiscard]] std::size_t dims() const noexcept { return config_.dims; }
  [[nodiscard]] bool requires_explicit_feedback() const;

  /// Install dimension `dim`'s capacity ladder (from
  /// sim::Cluster::ladder_for_dim).
  void set_ladder(std::size_t dim, CapacityLadder ladder);

  /// Side-effect-free preview of the per-dimension effective request.
  [[nodiscard]] ResourceVector preview(const trace::JobRecord& job,
                                       const ResourceVector& requested,
                                       const SystemState& state) const;

  /// Commit an estimate in every dimension; pair with feedback()/cancel().
  [[nodiscard]] ResourceVector estimate(const trace::JobRecord& job,
                                        const ResourceVector& requested,
                                        const SystemState& state);

  /// Combined preview memo (see Estimator::preview_epoch): nullopt when
  /// any dimension declines to memoize; otherwise a hash of all
  /// per-dimension epochs, changing whenever any of them does.
  [[nodiscard]] std::optional<std::uint64_t> preview_epoch(
      const trace::JobRecord& job, const ResourceVector& requested) const;

  /// Undo the most recent estimate() when the attempt never ran.
  void cancel(const trace::JobRecord& job, const ResourceVector& requested,
              const ResourceVector& granted);

  /// Route per-dimension feedback to each dimension's estimator.
  void feedback(const trace::JobRecord& job, const ResourceVector& requested,
                const VectorFeedback& fb);

  /// Direct access to one dimension's scalar estimator (tests, metrics).
  [[nodiscard]] Estimator& dimension(std::size_t d) { return *dims_est_[d]; }

 private:
  /// JobRecord seen by dimension `d`'s estimator: unchanged for d == 0,
  /// else a copy whose memory fields carry dimension d's coordinates.
  [[nodiscard]] trace::JobRecord shim(const trace::JobRecord& job,
                                      const ResourceVector& requested,
                                      std::size_t d) const;

  VectorEstimatorConfig config_;
  std::vector<std::unique_ptr<Estimator>> dims_est_;
};

}  // namespace resmatch::core
