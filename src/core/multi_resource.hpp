// Multi-resource generalization of Algorithm 1 (paper §2.3, last
// paragraph).
//
// The paper notes that lowering several resources simultaneously makes it
// impossible to tell which one caused a failure, and points to
// multidimensional optimization as the remedy. This implementation takes
// the simplest sound approach: per estimation cycle only ONE resource
// coordinate is probed below its last-good value (round-robin across
// coordinates), so a failure unambiguously blames the probed coordinate.
// Each coordinate keeps its own learning rate α_k with the same
// restore-and-damp rule as the scalar algorithm.
//
// The class is deliberately independent of JobRecord so it can estimate
// any resource vector (memory, disk, licenses, ...); the memory-only
// experiments wrap it when needed.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace resmatch::core {

struct MultiResourceConfig {
  double alpha = 2.0;  ///< initial per-coordinate learning rate (> 1)
  double beta = 0.0;   ///< failure damping, in [0, 1)
};

class MultiResourceEstimator {
 public:
  explicit MultiResourceEstimator(std::size_t dimensions,
                                  MultiResourceConfig config = {});

  /// Effective resource vector for the next submission of group `group`.
  /// `requested` initializes the group on first sight; its size must equal
  /// `dimensions()`. Exactly one coordinate is below its last-good value.
  [[nodiscard]] std::vector<double> estimate(
      GroupId group, const std::vector<double>& requested);

  /// Implicit feedback for the group's most recent estimate.
  void feedback(GroupId group, bool success);

  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return groups_.size();
  }

  /// Last-good vector of a group, if it exists.
  [[nodiscard]] std::optional<std::vector<double>> last_good(
      GroupId group) const;

 private:
  struct GroupState {
    std::vector<double> estimate;    ///< per-coordinate E
    std::vector<double> last_good;
    std::vector<double> alpha;       ///< per-coordinate α
    std::size_t probe = 0;           ///< coordinate probed this cycle
    bool awaiting_feedback = false;
  };

  std::size_t dims_;
  MultiResourceConfig config_;
  std::unordered_map<GroupId, GroupState> groups_;
};

}  // namespace resmatch::core
