// Estimator factory: builds any of the Table 1 estimators by name, with a
// single options bag. Keeps bench/example command lines uniform
// ("--estimator=successive-approximation --alpha=2 --beta=0").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/ensemble_estimator.hpp"
#include "core/estimator.hpp"
#include "core/last_instance.hpp"
#include "core/quantile_estimator.hpp"
#include "core/regression_estimator.hpp"
#include "core/rl_estimator.hpp"
#include "core/successive_approximation.hpp"

namespace resmatch::core {

/// Union of the per-estimator knobs; each estimator reads the fields it
/// understands. Defaults are the paper's settings where the paper names
/// one (α = 2, β = 0 in §3.1).
struct EstimatorOptions {
  double alpha = 2.0;
  double beta = 0.0;
  std::size_t window = 1;
  double margin = 1.0;
  double regression_margin = 1.25;
  std::size_t min_observations = 100;
  std::uint64_t seed = 1234;
  bool record_trajectories = false;
  /// Quantile/ensemble: target percentile of log2 used memory.
  double quantile_tau = 0.95;
  /// Ensemble: minimum prequential coverage before per-group hand-over.
  double coverage_threshold = 0.90;
  /// RL: cap on decisions awaiting feedback (oldest evicted beyond this).
  std::size_t rl_max_pending = 4096;
  /// Regression: cap on memoized under-provisioned job keys (LRU).
  std::size_t max_burned_keys = 4096;
};

/// Known estimator names, in the paper's Table 1 order plus baselines.
[[nodiscard]] std::vector<std::string> estimator_names();

/// Build by name: "none", "successive-approximation", "last-instance",
/// "regression-ridge", "regression-knn", "reinforcement-learning",
/// "quantile", "ensemble".
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Estimator> make_estimator(
    const std::string& name, const EstimatorOptions& options = {});

/// Whether an estimator (by name) requires explicit feedback to learn.
[[nodiscard]] bool requires_explicit_feedback(const std::string& name);

}  // namespace resmatch::core
