#include "core/group_state.hpp"

#include <algorithm>
#include <cmath>

namespace resmatch::core {

namespace {
/// Grants within this tolerance are the same capacity rung.
constexpr double kGrantEps = 1e-9;
}  // namespace

// --- SaGroupState -----------------------------------------------------------

SaGroupState SaGroupState::fresh(MiB requested_mib, double alpha0) noexcept {
  SaGroupState s;
  s.estimate = requested_mib;
  s.last_good = requested_mib;
  s.alpha = alpha0;
  return s;
}

MiB SaGroupState::preview(const CapacityLadder& ladder) const noexcept {
  const MiB safe = ladder.round_up(last_good);
  const MiB probe = ladder.round_up(estimate);
  if (probe + kGrantEps < safe && probe_outstanding) return safe;
  return probe;
}

MiB SaGroupState::commit(const CapacityLadder& ladder) noexcept {
  ++epoch;  // claiming (or bouncing off) the probe slot can change preview()
  // Line 6: round E_i up to the nearest capacity the cluster offers.
  const MiB safe = ladder.round_up(last_good);
  const MiB probe = ladder.round_up(estimate);
  if (probe + kGrantEps < safe) {
    // A grant strictly below the proven capacity is an experiment; at most
    // one may be outstanding per group (concurrent submissions get the
    // last-known-good capacity — see successive_approximation.hpp).
    if (probe_outstanding) return safe;
    probe_outstanding = true;
    probe_grant = probe;
    return probe;
  }
  return probe;
}

void SaGroupState::cancel(MiB granted) noexcept {
  ++epoch;
  // Release the probe slot if this cancelled attempt held it.
  if (probe_outstanding && std::fabs(granted - probe_grant) <= kGrantEps) {
    probe_outstanding = false;
  }
}

bool SaGroupState::apply_feedback(const Feedback& fb, MiB requested_mib,
                                  const CapacityLadder& ladder,
                                  double beta) noexcept {
  ++epoch;
  const bool was_probe =
      probe_outstanding && std::fabs(fb.granted_mib - probe_grant) <= kGrantEps;
  if (was_probe) probe_outstanding = false;

  if (fb.success) {
    // Lines 8-9: the grant worked; remember it and probe lower next time.
    // last_good lives in grant space (a capacity that actually ran a job),
    // so a success at the known-good capacity is naturally a no-op.
    last_good = fb.granted_mib;
    estimate = fb.granted_mib / alpha;
    return true;
  }

  // Lines 10-13: assume insufficient resources (implicit feedback cannot
  // tell); undo the reduction and damp the learning rate. beta = 0
  // freezes the group at the last working capacity.
  //
  // A failure AT the known-good capacity is outside Algorithm 1's
  // one-level history: it means a lower-usage group member's success
  // dragged last_good below this member's need (the within-group
  // variance hazard the paper discusses in §2.3). Recover by escalating
  // one ladder rung (capped at the request, always sufficient by the
  // paper's assumption), so a failing job's retries terminate instead
  // of looping at an under-sized grant.
  const bool failed_at_safe =
      std::fabs(fb.granted_mib - ladder.round_up(last_good)) <= kGrantEps;
  if (failed_at_safe) {
    const auto rung = ladder.next_above(last_good);
    MiB escalated = rung ? *rung : requested_mib;
    // The request is always sufficient (paper §1.3 assumption); never
    // escalate past it unless last_good already sits above it because
    // the ladder's rounding forced a bigger machine.
    escalated = std::min(escalated, std::max(requested_mib, last_good));
    last_good = std::max(last_good, escalated);
  }
  estimate = last_good;
  alpha = std::max(1.0, beta * alpha);
  return false;
}

bool SaGroupState::invariants_hold() const noexcept {
  return alpha >= 1.0 && estimate <= last_good + kGrantEps &&
         std::isfinite(estimate) && std::isfinite(last_good) &&
         estimate >= 0.0;
}

std::vector<double> SaGroupState::to_fields() const {
  return {estimate, last_good, alpha, probe_outstanding ? 1.0 : 0.0,
          probe_grant};
}

std::optional<SaGroupState> SaGroupState::from_fields(
    const std::vector<double>& fields) {
  if (fields.size() != 5) return std::nullopt;
  SaGroupState s;
  s.estimate = fields[0];
  s.last_good = fields[1];
  s.alpha = fields[2];
  s.probe_outstanding = fields[3] != 0.0;
  s.probe_grant = fields[4];
  if (s.alpha < 1.0 || !s.invariants_hold()) return std::nullopt;
  return s;
}

// --- LiGroupState -----------------------------------------------------------

MiB LiGroupState::current_estimate(MiB requested_mib,
                                   const CapacityLadder& ladder,
                                   double margin) const {
  if (recent_usage.empty() || poisoned) {
    // No experience (or a prior under-provisioning event): request as-is.
    return ladder.round_up(requested_mib);
  }
  const MiB peak =
      *std::max_element(recent_usage.begin(), recent_usage.end());
  // Never exceed the original request: the paper assumes requests are
  // sufficient, so the request is always a safe upper bound.
  const MiB target = std::min(peak * margin, requested_mib);
  return ladder.round_up(target);
}

void LiGroupState::apply_feedback(const Feedback& fb, std::size_t window) {
  ++epoch;
  const auto push_usage = [&](MiB used) {
    recent_usage.push_back(used);
    while (recent_usage.size() > window) recent_usage.pop_front();
  };
  if (fb.success) {
    poisoned = false;
    if (fb.used_mib) push_usage(*fb.used_mib);
    return;
  }
  // Failure. Explicit feedback distinguishes resource failures from
  // unrelated faults; only the former invalidates the group's history.
  const bool resource = fb.resource_failure.value_or(true);
  if (resource) {
    poisoned = true;
    // The failed attempt still tells us usage exceeded the grant; keep the
    // observation if reported so the next estimate clears the bar.
    if (fb.used_mib) {
      push_usage(*fb.used_mib);
      poisoned = false;  // we know the real requirement now
    }
  }
}

std::vector<double> LiGroupState::to_fields() const {
  std::vector<double> out;
  out.reserve(1 + recent_usage.size());
  out.push_back(poisoned ? 1.0 : 0.0);
  out.insert(out.end(), recent_usage.begin(), recent_usage.end());
  return out;
}

std::optional<LiGroupState> LiGroupState::from_fields(
    const std::vector<double>& fields) {
  if (fields.empty()) return std::nullopt;
  LiGroupState s;
  s.poisoned = fields[0] != 0.0;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    if (fields[i] < 0.0) return std::nullopt;
    s.recent_usage.push_back(fields[i]);
  }
  return s;
}

}  // namespace resmatch::core
