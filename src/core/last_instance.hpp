// Last-instance identification (paper Table 1: explicit feedback +
// similarity groups).
//
// With explicit feedback "resource estimation can be performed by simply
// using the actual resources used by the previous job submission as the
// estimated resources for the next job submission in the same similarity
// group" (paper §2.3). This implementation generalizes that single-sample
// rule with a sliding window (estimate = max of the last `window` observed
// usages) and a multiplicative safety margin; window = 1, margin = 1
// recovers the paper's rule exactly.
//
// The per-group window logic lives in core::LiGroupState (group_state.hpp)
// so the online service layer can host the same rule in its concurrent
// store; this class adds the SimilarityIndex bookkeeping.
#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "core/group_state.hpp"
#include "core/similarity.hpp"

namespace resmatch::core {

struct LastInstanceConfig {
  std::size_t window = 1;   ///< how many recent usages to take the max over
  double margin = 1.0;      ///< multiplicative headroom on the estimate
};

class LastInstanceEstimator final : public Estimator {
 public:
  explicit LastInstanceEstimator(LastInstanceConfig config = {},
                                 SimilarityKeyFn key_fn = default_similarity_key);

  [[nodiscard]] std::string name() const override { return "last-instance"; }

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const SystemState& state) override;

  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const SystemState& state) const override;

  /// Per-group memo epoch (the usage window fully determines the
  /// preview; SystemState is ignored). 0 = group unknown.
  [[nodiscard]] std::optional<std::uint64_t> preview_epoch(
      const trace::JobRecord& job) const override;

  void feedback(const trace::JobRecord& job, const Feedback& fb) override;

  [[nodiscard]] std::size_t group_count() const noexcept {
    return index_.group_count();
  }

 private:
  LiGroupState& state_for(const trace::JobRecord& job);

  LastInstanceConfig config_;
  SimilarityIndex index_;
  std::vector<LiGroupState> groups_;
};

}  // namespace resmatch::core
