#include "core/runtime_predictor.hpp"

#include <cassert>
#include <numeric>

namespace resmatch::core {

RuntimePredictor::RuntimePredictor(RuntimePredictorConfig config,
                                   SimilarityKeyFn key_fn)
    : config_(config), index_(std::move(key_fn)) {
  assert(config_.window >= 1);
  assert(config_.inflation >= 1.0);
}

Seconds RuntimePredictor::predict(const trace::JobRecord& job) const {
  const auto gid = index_.find(job);
  if (gid && *gid < groups_.size() && !groups_[*gid].recent.empty()) {
    const auto& recent = groups_[*gid].recent;
    const Seconds mean =
        std::accumulate(recent.begin(), recent.end(), 0.0) /
        static_cast<double>(recent.size());
    return mean * config_.inflation;
  }
  // No history: the user's estimate, like a scheduler without prediction.
  return job.requested_time > 0.0 ? job.requested_time : job.runtime;
}

void RuntimePredictor::observe(const trace::JobRecord& job,
                               Seconds actual_runtime) {
  const GroupId gid = index_.group_of(job);
  if (gid >= groups_.size()) groups_.resize(gid + 1);
  auto& recent = groups_[gid].recent;
  recent.push_back(actual_runtime);
  while (recent.size() > config_.window) recent.pop_front();
}

void RuntimePredictor::record_accuracy(Seconds predicted,
                                       Seconds actual) noexcept {
  ++scored_;
  if (predicted + 1e-9 < actual) ++under_;
}

double RuntimePredictor::underprediction_fraction() const noexcept {
  return scored_ == 0
             ? 0.0
             : static_cast<double>(under_) / static_cast<double>(scored_);
}

}  // namespace resmatch::core
