#include "core/multi_resource.hpp"

#include <algorithm>
#include <cassert>

namespace resmatch::core {

MultiResourceEstimator::MultiResourceEstimator(std::size_t dimensions,
                                               MultiResourceConfig config)
    : dims_(dimensions), config_(config) {
  assert(dimensions >= 1);
  assert(config.alpha > 1.0);
  assert(config.beta >= 0.0 && config.beta < 1.0);
}

std::vector<double> MultiResourceEstimator::estimate(
    GroupId group, const std::vector<double>& requested) {
  assert(requested.size() == dims_);
  auto [it, inserted] = groups_.try_emplace(group);
  GroupState& g = it->second;
  if (inserted) {
    g.estimate = requested;
    g.last_good = requested;
    g.alpha.assign(dims_, config_.alpha);
  }
  // Probe exactly one coordinate below its last-good value; all others
  // stay at last-good so a failure has a single possible culprit.
  std::vector<double> out = g.last_good;
  const std::size_t k = g.probe % dims_;
  if (g.alpha[k] > 1.0) {
    out[k] = g.last_good[k] / g.alpha[k];
  }
  g.estimate = out;
  g.awaiting_feedback = true;
  return out;
}

void MultiResourceEstimator::feedback(GroupId group, bool success) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  GroupState& g = it->second;
  if (!g.awaiting_feedback) return;
  g.awaiting_feedback = false;

  const std::size_t k = g.probe % dims_;
  if (success) {
    // The probed value worked; adopt it and move to the next coordinate.
    g.last_good = g.estimate;
  } else {
    // Blame is unambiguous: only coordinate k was below last-good.
    g.alpha[k] = std::max(1.0, config_.beta * g.alpha[k]);
  }
  g.probe = (g.probe + 1) % dims_;
}

std::optional<std::vector<double>> MultiResourceEstimator::last_good(
    GroupId group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return std::nullopt;
  return it->second.last_good;
}

}  // namespace resmatch::core
