#include "core/multi_resource.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "core/factory.hpp"
#include "util/rng.hpp"

namespace resmatch::core {

MultiResourceEstimator::MultiResourceEstimator(std::size_t dimensions,
                                               MultiResourceConfig config)
    : dims_(dimensions), config_(config) {
  assert(dimensions >= 1);
  assert(config.alpha > 1.0);
  assert(config.beta >= 0.0 && config.beta < 1.0);
}

std::vector<double> MultiResourceEstimator::estimate(
    GroupId group, const std::vector<double>& requested) {
  assert(requested.size() == dims_);
  auto [it, inserted] = groups_.try_emplace(group);
  GroupState& g = it->second;
  if (inserted) {
    g.estimate = requested;
    g.last_good = requested;
    g.alpha.assign(dims_, config_.alpha);
  }
  // Probe exactly one coordinate below its last-good value; all others
  // stay at last-good so a failure has a single possible culprit.
  std::vector<double> out = g.last_good;
  const std::size_t k = g.probe % dims_;
  if (g.alpha[k] > 1.0) {
    out[k] = g.last_good[k] / g.alpha[k];
  }
  g.estimate = out;
  g.awaiting_feedback = true;
  return out;
}

void MultiResourceEstimator::feedback(GroupId group, bool success) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  GroupState& g = it->second;
  if (!g.awaiting_feedback) return;
  g.awaiting_feedback = false;

  const std::size_t k = g.probe % dims_;
  if (success) {
    // The probed value worked; adopt it and move to the next coordinate.
    g.last_good = g.estimate;
  } else {
    // Blame is unambiguous: only coordinate k was below last-good.
    g.alpha[k] = std::max(1.0, config_.beta * g.alpha[k]);
  }
  g.probe = (g.probe + 1) % dims_;
}

std::optional<std::vector<double>> MultiResourceEstimator::last_good(
    GroupId group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return std::nullopt;
  return it->second.last_good;
}

// --- VectorEstimator -------------------------------------------------------

VectorEstimator::VectorEstimator(VectorEstimatorConfig config)
    : config_(std::move(config)) {
  if (config_.dims < 1 || config_.dims > kMaxResourceDims) {
    throw std::invalid_argument("VectorEstimator: dims out of range");
  }
  dims_est_.reserve(config_.dims);
  for (std::size_t d = 0; d < config_.dims; ++d) {
    dims_est_.push_back(make_estimator(config_.estimator, config_.options));
  }
}

bool VectorEstimator::requires_explicit_feedback() const {
  return core::requires_explicit_feedback(config_.estimator);
}

void VectorEstimator::set_ladder(std::size_t dim, CapacityLadder ladder) {
  dims_est_.at(dim)->set_ladder(std::move(ladder));
}

trace::JobRecord VectorEstimator::shim(const trace::JobRecord& job,
                                       const ResourceVector& requested,
                                       std::size_t d) const {
  // Dimension 0 must see the caller's record untouched — the dims=1
  // transparency contract — so the caller never pays a copy there.
  assert(d > 0);
  trace::JobRecord copy = job;
  copy.requested_mem_mib = requested[d];
  copy.used_mem_mib = 0.0;  // never a learning signal; explicit fb carries it
  return copy;
}

ResourceVector VectorEstimator::preview(const trace::JobRecord& job,
                                        const ResourceVector& requested,
                                        const SystemState& state) const {
  ResourceVector out;
  out[0] = dims_est_[0]->preview(job, state);
  for (std::size_t d = 1; d < config_.dims; ++d) {
    out[d] = dims_est_[d]->preview(shim(job, requested, d), state);
  }
  return out;
}

ResourceVector VectorEstimator::estimate(const trace::JobRecord& job,
                                         const ResourceVector& requested,
                                         const SystemState& state) {
  ResourceVector out;
  out[0] = dims_est_[0]->estimate(job, state);
  for (std::size_t d = 1; d < config_.dims; ++d) {
    out[d] = dims_est_[d]->estimate(shim(job, requested, d), state);
  }
  return out;
}

std::optional<std::uint64_t> VectorEstimator::preview_epoch(
    const trace::JobRecord& job, const ResourceVector& requested) const {
  const auto first = dims_est_[0]->preview_epoch(job);
  if (!first) return std::nullopt;
  if (config_.dims == 1) return first;  // transparency: scalar epoch as-is
  std::uint64_t combined = util::mix64(*first);
  for (std::size_t d = 1; d < config_.dims; ++d) {
    const auto epoch = dims_est_[d]->preview_epoch(shim(job, requested, d));
    if (!epoch) return std::nullopt;
    combined = util::mix64(combined ^ (*epoch + 0x9E3779B97F4A7C15ULL * d));
  }
  return combined;
}

void VectorEstimator::cancel(const trace::JobRecord& job,
                             const ResourceVector& requested,
                             const ResourceVector& granted) {
  dims_est_[0]->cancel(job, granted[0]);
  for (std::size_t d = 1; d < config_.dims; ++d) {
    dims_est_[d]->cancel(shim(job, requested, d), granted[d]);
  }
}

void VectorEstimator::feedback(const trace::JobRecord& job,
                               const ResourceVector& requested,
                               const VectorFeedback& fb) {
  for (std::size_t d = 0; d < config_.dims; ++d) {
    Feedback f;
    f.success = fb.success;
    f.granted_mib = fb.granted[d];
    if (fb.explicit_feedback) {
      f.used_mib = fb.used[d];
      f.resource_failure = fb.dim_failure[d];
    }
    if (d == 0) {
      dims_est_[0]->feedback(job, f);
    } else {
      dims_est_[d]->feedback(shim(job, requested, d), f);
    }
  }
}

}  // namespace resmatch::core
