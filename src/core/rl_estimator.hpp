// Reinforcement-learning estimation (paper Table 1: implicit feedback, no
// similarity groups).
//
// The paper (§4) sketches an RL agent whose policy is *global* — applied
// to all jobs rather than per similarity group: "if all users
// over-estimated their resource capacities by 100%, the global policy to
// which RL will converge is that it is sufficient to send jobs for
// execution with only 50% of their requested resources."
//
// This implementation realizes that sketch as a tabular Q-learner:
//   state   = (cluster busy fraction, queue length, log2 requested memory),
//             discretized;
//   action  = a multiplicative scaling factor applied to the request;
//   reward  = fraction of the request saved on success, a fixed penalty on
//             failure (implicit feedback cannot distinguish why).
// Works with either feedback flavour; explicit feedback merely sharpens
// the reward via the true usage.
#pragma once

#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/estimator.hpp"
#include "ml/discretizer.hpp"
#include "ml/qlearning.hpp"

namespace resmatch::core {

struct RlEstimatorConfig {
  /// Candidate request-scaling factors (the agent's actions).
  std::vector<double> scale_factors = {1.0, 0.75, 0.5, 0.25, 0.125};
  double failure_penalty = 1.0;
  ml::QLearningConfig agent;
  std::uint64_t seed = 1234;
  /// Bucket counts of the discretized state dimensions.
  std::size_t load_buckets = 4;
  std::size_t queue_buckets = 4;
  std::size_t memory_buckets = 6;
  /// Cap on decisions awaiting feedback. A degraded service drops feedback
  /// by design, so without a bound pending_ grows with every estimate that
  /// never hears back; at the cap the oldest decision is evicted (its
  /// outcome, if it ever arrives, is silently ignored — one lost reward).
  std::size_t max_pending = 4096;
};

class RlEstimator final : public Estimator {
 public:
  explicit RlEstimator(RlEstimatorConfig config = {});

  [[nodiscard]] std::string name() const override {
    return "reinforcement-learning";
  }

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const SystemState& state) override;

  /// Greedy-policy preview: exploration is decided only when the attempt
  /// is committed via estimate(), so previews may differ from the grant.
  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const SystemState& state) const override;

  void cancel(const trace::JobRecord& job, MiB granted) override;

  void feedback(const trace::JobRecord& job, const Feedback& fb) override;

  /// The greedy scaling factor the current policy picks in a given state —
  /// the "global policy" the paper expects convergence to.
  [[nodiscard]] double greedy_factor(const trace::JobRecord& job,
                                     const SystemState& state) const;

  [[nodiscard]] const ml::QLearningAgent& agent() const noexcept {
    return agent_;
  }

  /// Decisions currently awaiting feedback (bounded by max_pending).
  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }

 private:
  struct PendingDecision {
    std::size_t state = 0;
    std::size_t action = 0;
    MiB requested = 0.0;
  };

  [[nodiscard]] std::size_t state_index(const trace::JobRecord& job,
                                        const SystemState& state) const;

  /// Record a decision, overwriting any pending entry for the same job and
  /// evicting the oldest entry once max_pending distinct jobs await
  /// feedback.
  void remember(JobId id, const PendingDecision& decision);
  /// Remove and return the pending decision for a job, if any.
  [[nodiscard]] std::optional<PendingDecision> take(JobId id);

  RlEstimatorConfig config_;
  ml::StateSpace space_;
  ml::QLearningAgent agent_;
  /// Decisions awaiting their outcome, keyed by job id, oldest first. A
  /// job resubmitted after failure overwrites its pending entry (the
  /// failed attempt has already been rewarded by then). The list carries
  /// insertion order for O(1) oldest-first eviction at max_pending; the
  /// map indexes it by job for O(1) lookup.
  std::list<std::pair<JobId, PendingDecision>> pending_order_;
  std::unordered_map<JobId, std::list<std::pair<JobId, PendingDecision>>::iterator>
      pending_;
};

}  // namespace resmatch::core
