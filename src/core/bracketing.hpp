// Bracketing estimator: the robust-search extension the paper points to.
//
// §2.3 notes that Algorithm 1 mis-handles groups whose members use
// different amounts ("This problem can be solved using a class of robust
// line search algorithms [Anderson & Ferris]. This extension is outside
// the scope of this paper."). This class implements that extension as a
// noise-tolerant bisection in log space:
//
//   * every group maintains a bracket [lo, hi]: `lo` is the largest grant
//     observed to FAIL, `hi` the smallest grant observed to SUCCEED;
//   * the next probe is the geometric mean of the bracket, rounded to the
//     cluster ladder;
//   * a success lowers hi, a failure raises lo; when the ladder offers no
//     rung strictly inside the bracket, the group has converged to hi;
//   * failures at or above hi (noise: a higher-usage member, or a false
//     positive) WIDEN the bracket upward instead of corrupting it, which
//     is what makes the search robust where Algorithm 1's single-level
//     restore is not.
//
// Like Algorithm 1 it needs only implicit feedback and similarity groups;
// unlike Algorithm 1 it converges to the group's *maximum* usage (the
// safe capacity for every member) in O(log ladder) probes per group.
#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "core/similarity.hpp"

namespace resmatch::core {

struct BracketingConfig {
  /// Stop probing when hi/lo falls below this factor (the bracket is
  /// effectively tight even if the ladder would offer another rung).
  double convergence_ratio = 1.05;
  /// Record per-group grant sequences (diagnostics).
  bool record_trajectories = false;
  std::size_t trajectory_cap = 256;
};

class BracketingEstimator final : public Estimator {
 public:
  explicit BracketingEstimator(BracketingConfig config = {},
                               SimilarityKeyFn key_fn = default_similarity_key);

  [[nodiscard]] std::string name() const override { return "bracketing"; }

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const SystemState& state) override;

  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const SystemState& state) const override;

  void cancel(const trace::JobRecord& job, MiB granted) override;

  void feedback(const trace::JobRecord& job, const Feedback& fb) override;

  [[nodiscard]] std::size_t group_count() const noexcept {
    return index_.group_count();
  }

  /// Current safe capacity (bracket top) of a job's group, if known.
  [[nodiscard]] std::optional<MiB> group_capacity(
      const trace::JobRecord& job) const;

  [[nodiscard]] std::vector<MiB> trajectory(const trace::JobRecord& job) const;

 private:
  struct GroupState {
    MiB lo = 0.0;   ///< largest grant known insufficient (0 = none yet)
    MiB hi = 0.0;   ///< smallest grant believed sufficient
    bool hi_confirmed = false;  ///< hi actually ran a job successfully
    bool probe_outstanding = false;
    MiB probe_grant = 0.0;
    std::vector<MiB> grants;
  };

  GroupState& state_for(const trace::JobRecord& job);

  /// The next grant the group would try (bracket midpoint on the ladder),
  /// or hi when converged. Pure.
  [[nodiscard]] MiB next_probe(const GroupState& g,
                               const trace::JobRecord& job) const;

  BracketingConfig config_;
  SimilarityIndex index_;
  std::vector<GroupState> groups_;
};

}  // namespace resmatch::core
