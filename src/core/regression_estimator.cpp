#include "core/regression_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace resmatch::core {

RegressionEstimator::RegressionEstimator(RegressionConfig config)
    : config_(config),
      ridge_(ml::kJobFeatureCount, config.lambda),
      knn_(config.knn_k) {}

MiB RegressionEstimator::estimate(const trace::JobRecord& job,
                                  const SystemState& state) {
  // Prediction is stateless; the model itself advances only in feedback().
  return preview(job, state);
}

double RegressionEstimator::predict_target(
    const std::vector<double>& features, double request_target) const {
  if (config_.model == RegressionModel::kRidge) {
    return ridge_.predict(features);
  }
  return knn_.predict(features, request_target);
}

MiB RegressionEstimator::preview(const trace::JobRecord& job,
                                 const SystemState& /*state*/) const {
  if (observed_ < config_.min_observations ||
      (config_.model == RegressionModel::kRidge && !model_ready_) ||
      burned_keys_.count(default_similarity_key(job)) > 0) {
    return ladder_.round_up(job.requested_mem_mib);
  }
  const auto features = ml::job_features(job);
  const double request_target =
      std::log2(std::max(job.requested_mem_mib, 1e-3));
  const double predicted_target = predict_target(features, request_target);
  const MiB predicted =
      ml::target_to_mib(predicted_target) * config_.margin;
  // A request is a safe upper bound; never estimate above it.
  const MiB target = std::clamp(predicted, 0.0, job.requested_mem_mib);
  return ladder_.round_up(target);
}

void RegressionEstimator::burn_key(std::uint64_t key) {
  const auto it = burned_keys_.find(key);
  if (it != burned_keys_.end()) {
    // Burned again: move to the recency tail so repeat offenders outlive
    // keys that failed once long ago.
    burned_order_.splice(burned_order_.end(), burned_order_, it->second);
    return;
  }
  if (burned_keys_.size() >= std::max<std::size_t>(config_.max_burned_keys, 1)) {
    burned_keys_.erase(burned_order_.front());
    burned_order_.pop_front();
  }
  burned_order_.push_back(key);
  burned_keys_.emplace(key, std::prev(burned_order_.end()));
}

void RegressionEstimator::feedback(const trace::JobRecord& job,
                                   const Feedback& fb) {
  // An under-provisioned class is not trusted to the model again (until
  // its memo ages out of the bounded set); its later submissions pass the
  // request through (safety memoization).
  if (!fb.success && fb.resource_failure.value_or(false)) {
    burn_key(default_similarity_key(job));
  }
  // Regression modeling requires explicit feedback; without a usage
  // observation there is nothing to learn from.
  if (!fb.used_mib) return;
  trace::JobRecord labeled = job;
  labeled.used_mem_mib = *fb.used_mib;
  const auto features = ml::job_features(labeled);
  const double target = ml::usage_target(labeled);
  if (config_.model == RegressionModel::kRidge) {
    ridge_.add(features, target);
    ++since_refit_;
    // Refit periodically (O(d^3), d tiny): estimates stay const and the
    // model is at most refit_interval observations behind. No fit happens
    // before min_observations — an immature model would poison the
    // residual calibration with garbage mispredictions.
    const bool warm = observed_ + 1 >= config_.min_observations;
    if (warm && (!model_ready_ || since_refit_ >= config_.refit_interval)) {
      model_ready_ = ridge_.fit();
      since_refit_ = 0;
    }
  } else {
    knn_.add(features, target);
  }
  ++observed_;
}

}  // namespace resmatch::core
