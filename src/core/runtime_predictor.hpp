// Learned job-runtime prediction (related work [18]: Tsafrir, Etsion &
// Feitelson, "Backfilling using runtime predictions rather than user
// estimates").
//
// The paper positions its memory estimator as "very similar in spirit" to
// replacing user runtime estimates with learned predictions for
// backfilling. This module implements that companion idea with Tsafrir's
// core recipe: predict a job's runtime as the average of the last two
// runtimes observed in its similarity group, falling back to the user
// estimate while history is short. The simulator can feed these
// predictions to EASY backfilling in place of user estimates
// (SimulationConfig::runtime_predictor), and the
// ablation_runtime_prediction bench crosses this with memory estimation.
//
// Under-prediction handling follows Tsafrir as well: when a job outlives
// its prediction the scheduler's reservation math is simply wrong for a
// while — predictions are advisory, jobs are never killed for exceeding
// them.
#pragma once

#include <deque>
#include <vector>

#include "core/similarity.hpp"
#include "trace/job_record.hpp"

namespace resmatch::core {

struct RuntimePredictorConfig {
  /// How many recent runtimes to average (Tsafrir uses 2).
  std::size_t window = 2;
  /// Multiplicative headroom on the prediction; modest inflation reduces
  /// reservation violations at little backfilling cost.
  double inflation = 1.0;
};

class RuntimePredictor {
 public:
  explicit RuntimePredictor(RuntimePredictorConfig config = {},
                            SimilarityKeyFn key_fn = default_similarity_key);

  /// Predicted runtime for this submission: the window average of the
  /// group's recent actual runtimes (inflated), or the user's estimate
  /// (or actual-runtime field when no estimate exists) while the group
  /// has no history.
  [[nodiscard]] Seconds predict(const trace::JobRecord& job) const;

  /// Record a finished execution's actual runtime.
  void observe(const trace::JobRecord& job, Seconds actual_runtime);

  [[nodiscard]] std::size_t group_count() const noexcept {
    return index_.group_count();
  }

  /// Fraction of predictions that under-estimated (diagnostics; callers
  /// compare against actuals via record_accuracy).
  void record_accuracy(Seconds predicted, Seconds actual) noexcept;
  [[nodiscard]] double underprediction_fraction() const noexcept;
  [[nodiscard]] std::size_t predictions_scored() const noexcept {
    return scored_;
  }

 private:
  struct GroupState {
    std::deque<Seconds> recent;
  };

  RuntimePredictorConfig config_;
  SimilarityIndex index_;
  std::vector<GroupState> groups_;
  std::size_t scored_ = 0;
  std::size_t under_ = 0;
};

}  // namespace resmatch::core
