// Regression modeling (paper Table 1: explicit feedback, no similarity
// groups).
//
// Learns a mapping from request-file parameters to actual usage (paper §4):
// features are request-time attributes only, the target is log2 of actual
// per-node memory. Until enough observations accumulate the estimator
// passes requests through unchanged, then predicts usage, applies a safety
// margin, clamps to the request (a request is a safe upper bound by the
// paper's assumption), and rounds to the cluster ladder.
//
// Two interchangeable models: online ridge regression (the paper's linear
// regression example — "divide each requested capacity by 2" is exactly a
// weight it can learn in log space) and k-NN (a nonparametric variant for
// workloads where the mapping is not linear even in log space).
//
// Safety: a global model can systematically under-predict a particular
// job class, which would fail that class's jobs forever. The estimator
// therefore memoizes resource failures per job key (explicit feedback
// names the cause): once a class has been under-provisioned once, its
// later submissions pass the user request through. This is a safety net,
// not group-based learning — usage prediction stays global.
#pragma once

#include <list>
#include <memory>
#include <unordered_map>

#include "core/estimator.hpp"
#include "core/similarity.hpp"
#include "ml/features.hpp"
#include "ml/knn.hpp"
#include "stats/regression.hpp"

namespace resmatch::core {

enum class RegressionModel { kRidge, kKnn };

struct RegressionConfig {
  RegressionModel model = RegressionModel::kRidge;
  /// Pass requests through until this many labeled observations are seen.
  std::size_t min_observations = 100;
  /// Multiplicative headroom over the predicted usage.
  double margin = 1.25;
  /// Ridge damping (kRidge only).
  double lambda = 1e-3;
  /// Refit the ridge model after this many new observations (kRidge only).
  std::size_t refit_interval = 64;
  /// Neighbours (kKnn only).
  std::size_t knn_k = 8;
  /// Cap on memoized under-provisioned job keys. Every distinct failing
  /// key used to stay memoized forever; long-running services with churny
  /// key spaces would grow the set without bound. At the cap the
  /// least-recently-burned key is evicted — losing a memo only means one
  /// class may be under-provisioned once more before being re-memoized.
  std::size_t max_burned_keys = 4096;
};

class RegressionEstimator final : public Estimator {
 public:
  explicit RegressionEstimator(RegressionConfig config = {});

  [[nodiscard]] std::string name() const override {
    return config_.model == RegressionModel::kRidge ? "regression-ridge"
                                                    : "regression-knn";
  }

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const SystemState& state) override;

  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const SystemState& state) const override;

  void feedback(const trace::JobRecord& job, const Feedback& fb) override;

  [[nodiscard]] std::size_t observations() const noexcept { return observed_; }

  /// Job keys currently memoized as under-provisioned (bounded by
  /// max_burned_keys).
  [[nodiscard]] std::size_t burned_key_count() const noexcept {
    return burned_keys_.size();
  }

 private:
  /// Memoize a key as burned, refreshing its recency if already present
  /// and evicting the least-recently-burned key at the cap.
  void burn_key(std::uint64_t key);
  RegressionConfig config_;
  stats::RidgeRegression ridge_;
  ml::KnnRegressor knn_;
  std::size_t observed_ = 0;
  std::size_t since_refit_ = 0;
  bool model_ready_ = false;
  /// Job keys whose estimates under-provisioned: pass-through until the
  /// memo is evicted (least-recently-burned, cap max_burned_keys). The
  /// list carries recency order; the map indexes it for O(1) lookup.
  std::list<std::uint64_t> burned_order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      burned_keys_;

  [[nodiscard]] double predict_target(const std::vector<double>& features,
                                      double request_target) const;
};

}  // namespace resmatch::core
