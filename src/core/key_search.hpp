// Offline similarity-key selection (paper §2.2).
//
// "There is no formal method to determine the best set of job request
// parameters for job similarity. In practice, it is made through
// trial-and-error search and measurements ... done offline, using traces
// of explicit feedback from previous job submissions, as part of the
// training (customization) phase of the estimator."
//
// This module performs that trial-and-error systematically: it enumerates
// candidate key-attribute subsets, partitions a historical trace under
// each, computes the paper's own quality measurements (Figures 3 and 4 —
// job coverage by large groups, tightness of within-group usage, and
// achievable gain), and ranks the candidates by a composite score.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/job_record.hpp"

namespace resmatch::core {

/// Attributes a similarity key may include. `kRuntimeBucket` quantizes
/// the user's runtime estimate into decades, giving a coarse proxy for
/// "same computation" when ids are missing.
enum class KeyAttribute : unsigned {
  kUser = 1u << 0,
  kApp = 1u << 1,
  kRequestedMemory = 1u << 2,
  kNodes = 1u << 3,
  kRuntimeBucket = 1u << 4,
};

/// A candidate key is a bitmask of attributes.
using KeyMask = unsigned;

/// All non-empty subsets of the given attributes.
[[nodiscard]] std::vector<KeyMask> enumerate_key_masks(
    const std::vector<KeyAttribute>& attributes);

/// Human-readable rendering, e.g. "user+app+req_mem".
[[nodiscard]] std::string describe_key(KeyMask mask);

/// Hash a job under a key mask (usable as a trace::GroupKeyFn).
[[nodiscard]] std::uint64_t key_hash(KeyMask mask,
                                     const trace::JobRecord& job) noexcept;

/// The paper's quality measurements for one candidate key, plus a
/// composite score.
struct KeyQuality {
  KeyMask mask = 0;
  std::size_t group_count = 0;
  /// Fraction of jobs in groups of >= 10 submissions (Figure 3's concern:
  /// only large groups amortize the learning).
  double coverage = 0.0;
  /// Job-weighted fraction of groups with similarity range <= 1.5
  /// (Figure 4's x-axis: tight groups estimate safely).
  double tightness = 0.0;
  /// Job-weighted mean of log2(potential gain) over covered jobs
  /// (Figure 4's y-axis: how much capacity estimation could reclaim).
  double mean_log2_gain = 0.0;
  /// coverage * tightness * mean_log2_gain — all three must be good.
  double score = 0.0;
};

struct KeySearchConfig {
  std::size_t large_group_threshold = 10;
  double tight_range = 1.5;
};

/// Evaluate one candidate key against a trace.
[[nodiscard]] KeyQuality evaluate_key(const trace::Workload& workload,
                                      KeyMask mask,
                                      const KeySearchConfig& config = {});

/// Evaluate all candidates and return them ranked by score, best first.
[[nodiscard]] std::vector<KeyQuality> search_keys(
    const trace::Workload& workload, const std::vector<KeyMask>& candidates,
    const KeySearchConfig& config = {});

}  // namespace resmatch::core
