#include "core/similarity.hpp"

#include "trace/analysis.hpp"

namespace resmatch::core {

std::uint64_t default_similarity_key(const trace::JobRecord& job) noexcept {
  return trace::default_group_key(job);
}

SimilarityIndex::SimilarityIndex(SimilarityKeyFn key_fn)
    : key_fn_(std::move(key_fn)) {}

GroupId SimilarityIndex::group_of(const trace::JobRecord& job) {
  const std::uint64_t key = key_fn_(job);
  const auto [it, inserted] =
      ids_.try_emplace(key, static_cast<GroupId>(ids_.size()));
  (void)inserted;
  return it->second;
}

std::optional<GroupId> SimilarityIndex::find(
    const trace::JobRecord& job) const {
  const auto it = ids_.find(key_fn_(job));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace resmatch::core
