#include "core/estimator.hpp"

// The interface is header-only today; this translation unit anchors the
// vtable so the library has a home for future shared estimator logic.
namespace resmatch::core {}
