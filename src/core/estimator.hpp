// The resource-estimator interface (paper §1.3, Figure 2).
//
// The estimator sits between job submission and resource allocation: it
// rewrites the job's requested capacity into an (ideally smaller) effective
// request, and learns from per-execution feedback. It is deliberately
// independent of the scheduling policy and the allocation scheme — any
// Estimator composes with any sched::SchedulingPolicy.
//
// Feedback comes in two flavours (paper §2.1):
//   * implicit — only whether the job completed successfully;
//   * explicit — additionally the actual resources the job used, and
//     whether a failure was actually caused by insufficient resources
//     (ruling out the false positives that plague implicit feedback).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "trace/job_record.hpp"

namespace resmatch::core {

/// Cluster-wide conditions at estimation time; consumed by estimators that
/// learn global policies (the RL quadrant of Table 1). Group-based
/// estimators ignore it.
struct SystemState {
  Seconds now = 0.0;
  double busy_fraction = 0.0;   ///< busy machines / total machines
  std::size_t queue_length = 0;
};

/// Outcome of one execution attempt, reported back to the estimator.
struct Feedback {
  bool success = false;
  /// Memory capacity the job was granted per node (the estimator's own
  /// rounded output, echoed back).
  MiB granted_mib = 0.0;
  /// Explicit feedback only: the actual peak memory used per node.
  std::optional<MiB> used_mib;
  /// Explicit feedback only: whether a failure was due to insufficient
  /// resources (as opposed to program/machine faults). Under implicit
  /// feedback this is unknown and estimators must assume the worst.
  std::optional<bool> resource_failure;
};

/// Introspection snapshot of a learned-model estimator (quantile,
/// ensemble): feeds the resmatch_estimator_* metrics and the estimator
/// shoot-out's coverage column.
struct ModelStats {
  /// Prequential (held-out) coverage: fraction of recent observations the
  /// model's raw prediction covered, evaluated BEFORE training on each.
  double coverage = 0.0;
  /// Current multiplicative safety margin over the raw prediction.
  double margin = 1.0;
  /// Labeled observations the model has trained on.
  std::uint64_t observations = 0;
  /// Ensemble only: similarity groups currently served by the model.
  std::uint64_t groups_model = 0;
  /// Ensemble only: groups stuck on successive approximation after
  /// sustained mispredictions.
  std::uint64_t groups_fallback = 0;
};

/// Base class for all resource estimators.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Stable identifier for reports ("successive-approximation", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Effective per-node memory request for this execution attempt.
  /// Implementations round to the capacity ladder where their algorithm
  /// calls for it. The returned value is also the capacity the job will be
  /// *granted*. Estimate COMMITS internal state (a probe slot, an RL
  /// action): call it exactly once per attempt, when the job is actually
  /// dispatched, and pair it with feedback() or cancel().
  [[nodiscard]] virtual MiB estimate(const trace::JobRecord& job,
                                     const SystemState& state) = 0;

  /// What estimate() would currently return, WITHOUT committing anything.
  /// Schedulers use previews for queue ordering and fit checks; previews
  /// may go stale and need not match the later committed estimate exactly.
  [[nodiscard]] virtual MiB preview(const trace::JobRecord& job,
                                    const SystemState& state) const = 0;

  /// Memoization contract for preview() (simulator hot path): when two
  /// calls for the same job return the same epoch, preview() is
  /// guaranteed to return the same value in between — independent of
  /// SystemState — so callers may reuse a cached preview instead of
  /// recomputing. Epochs are monotone per similarity group and bump on
  /// anything that could change the preview (estimate commits, feedback,
  /// cancel, group creation). The default returns nullopt = no guarantee:
  /// callers must re-call preview() every time. Estimators whose preview
  /// depends on SystemState or hidden mutable state (RL, regression) must
  /// keep that default.
  [[nodiscard]] virtual std::optional<std::uint64_t> preview_epoch(
      const trace::JobRecord& job) const {
    (void)job;
    return std::nullopt;
  }

  /// Undo the state committed by the most recent estimate() for `job`
  /// when the attempt never ran (e.g., the grant no longer fits the
  /// cluster). Default: nothing to undo.
  virtual void cancel(const trace::JobRecord& job, MiB granted) {
    (void)job;
    (void)granted;
  }

  /// Report the outcome of the most recent attempt of `job`.
  virtual void feedback(const trace::JobRecord& job, const Feedback& fb) = 0;

  /// Serialize the estimator's learned state as a flat numeric blob for
  /// durable storage (snapshot rows / WAL frames). The blob is opaque to
  /// the storage layer; load_state() of the same estimator type must accept
  /// it and reproduce byte-identical subsequent decisions. Default: empty —
  /// stateless estimators and those whose state already lives in the group
  /// store have nothing extra to persist.
  [[nodiscard]] virtual std::vector<double> save_state() const { return {}; }

  /// Restore state produced by save_state() on a same-configured instance.
  /// Returns false (leaving the estimator untouched) when the blob does not
  /// match; default accepts only the empty blob.
  [[nodiscard]] virtual bool load_state(const std::vector<double>& state) {
    return state.empty();
  }

  /// Learned-model introspection for metrics and benchmarks; nullopt for
  /// estimators without a trained model.
  [[nodiscard]] virtual std::optional<ModelStats> model_stats() const {
    return std::nullopt;
  }

  /// Install the target cluster's capacity ladder. Called once before
  /// simulation; default retains it for subclasses.
  virtual void set_ladder(CapacityLadder ladder) { ladder_ = std::move(ladder); }

  [[nodiscard]] const CapacityLadder& ladder() const noexcept {
    return ladder_;
  }

 protected:
  CapacityLadder ladder_;
};

/// Baseline: pass the user's request through untouched (the "without
/// estimation" arm of every experiment).
class NoEstimator final : public Estimator {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const SystemState& /*state*/) override {
    // Round up so the grant names an actual machine capacity; with request
    // >= usage this never changes which machines qualify.
    return ladder_.round_up(job.requested_mem_mib);
  }

  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const SystemState& /*state*/) const override {
    return ladder_.round_up(job.requested_mem_mib);
  }

  /// The preview depends only on the job's request and the fixed ladder,
  /// so it is never stale: one constant epoch.
  [[nodiscard]] std::optional<std::uint64_t> preview_epoch(
      const trace::JobRecord& /*job*/) const override {
    return 0;
  }

  void feedback(const trace::JobRecord& /*job*/,
                const Feedback& /*fb*/) override {}
};

}  // namespace resmatch::core
