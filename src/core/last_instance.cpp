#include "core/last_instance.hpp"

#include <cassert>

namespace resmatch::core {

LastInstanceEstimator::LastInstanceEstimator(LastInstanceConfig config,
                                             SimilarityKeyFn key_fn)
    : config_(config), index_(std::move(key_fn)) {
  assert(config_.window >= 1);
  assert(config_.margin >= 1.0);
}

LiGroupState& LastInstanceEstimator::state_for(const trace::JobRecord& job) {
  const GroupId gid = index_.group_of(job);
  if (gid >= groups_.size()) groups_.resize(gid + 1);
  return groups_[gid];
}

MiB LastInstanceEstimator::estimate(const trace::JobRecord& job,
                                    const SystemState& /*state*/) {
  return state_for(job).current_estimate(job.requested_mem_mib, ladder_,
                                         config_.margin);
}

MiB LastInstanceEstimator::preview(const trace::JobRecord& job,
                                   const SystemState& /*state*/) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) {
    return ladder_.round_up(job.requested_mem_mib);
  }
  return groups_[*gid].current_estimate(job.requested_mem_mib, ladder_,
                                        config_.margin);
}

std::optional<std::uint64_t> LastInstanceEstimator::preview_epoch(
    const trace::JobRecord& job) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return 0;
  return groups_[*gid].epoch;
}

void LastInstanceEstimator::feedback(const trace::JobRecord& job,
                                     const Feedback& fb) {
  state_for(job).apply_feedback(fb, config_.window);
}

}  // namespace resmatch::core
