#include "core/last_instance.hpp"

#include <algorithm>
#include <cassert>

namespace resmatch::core {

LastInstanceEstimator::LastInstanceEstimator(LastInstanceConfig config,
                                             SimilarityKeyFn key_fn)
    : config_(config), index_(std::move(key_fn)) {
  assert(config_.window >= 1);
  assert(config_.margin >= 1.0);
}

LastInstanceEstimator::GroupState& LastInstanceEstimator::state_for(
    const trace::JobRecord& job) {
  const GroupId gid = index_.group_of(job);
  if (gid >= groups_.size()) groups_.resize(gid + 1);
  return groups_[gid];
}

MiB LastInstanceEstimator::estimate_from(const GroupState& g,
                                         const trace::JobRecord& job) const {
  if (g.recent_usage.empty() || g.poisoned) {
    // No experience (or a prior under-provisioning event): request as-is.
    return ladder_.round_up(job.requested_mem_mib);
  }
  const MiB peak = *std::max_element(g.recent_usage.begin(),
                                     g.recent_usage.end());
  // Never exceed the original request: the paper assumes requests are
  // sufficient, so the request is always a safe upper bound.
  const MiB target =
      std::min(peak * config_.margin, job.requested_mem_mib);
  return ladder_.round_up(target);
}

MiB LastInstanceEstimator::estimate(const trace::JobRecord& job,
                                    const SystemState& /*state*/) {
  return estimate_from(state_for(job), job);
}

MiB LastInstanceEstimator::preview(const trace::JobRecord& job,
                                   const SystemState& /*state*/) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) {
    return ladder_.round_up(job.requested_mem_mib);
  }
  return estimate_from(groups_[*gid], job);
}

void LastInstanceEstimator::feedback(const trace::JobRecord& job,
                                     const Feedback& fb) {
  GroupState& g = state_for(job);
  if (fb.success) {
    g.poisoned = false;
    if (fb.used_mib) {
      g.recent_usage.push_back(*fb.used_mib);
      while (g.recent_usage.size() > config_.window) {
        g.recent_usage.pop_front();
      }
    }
    return;
  }
  // Failure. Explicit feedback distinguishes resource failures from
  // unrelated faults; only the former invalidates the group's history.
  const bool resource = fb.resource_failure.value_or(true);
  if (resource) {
    g.poisoned = true;
    // The failed attempt still tells us usage exceeded the grant; keep the
    // observation if reported so the next estimate clears the bar.
    if (fb.used_mib) {
      g.recent_usage.push_back(*fb.used_mib);
      while (g.recent_usage.size() > config_.window) {
        g.recent_usage.pop_front();
      }
      g.poisoned = false;  // we know the real requirement now
    }
  }
}

}  // namespace resmatch::core
