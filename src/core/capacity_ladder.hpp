// The cluster's capacity ladder.
//
// Algorithm 1, line 6: the estimated capacity is rounded to the lowest
// machine capacity present in the cluster that is greater than or equal to
// the estimate, because a cluster only offers discrete capacity levels.
// The ladder is the sorted set of distinct capacities; it is handed to
// estimators when the target cluster is known.
#pragma once

#include <optional>
#include <vector>

#include "util/types.hpp"

namespace resmatch::core {

class CapacityLadder {
 public:
  CapacityLadder() = default;

  /// Build from any capacity list; duplicates collapse, order normalizes.
  explicit CapacityLadder(std::vector<MiB> capacities);

  /// Smallest capacity >= value. When the value exceeds every rung (or the
  /// ladder is empty), returns `value` unchanged: the job then simply waits
  /// for resources that do not exist, exactly as the raw request would.
  [[nodiscard]] MiB round_up(MiB value) const noexcept;

  /// Largest capacity <= value, if any.
  [[nodiscard]] std::optional<MiB> round_down(MiB value) const noexcept;

  /// Smallest capacity strictly greater than value, if any.
  [[nodiscard]] std::optional<MiB> next_above(MiB value) const noexcept;

  /// Largest capacity strictly less than value, if any.
  [[nodiscard]] std::optional<MiB> next_below(MiB value) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return rungs_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return rungs_.size(); }
  [[nodiscard]] const std::vector<MiB>& rungs() const noexcept {
    return rungs_;
  }
  [[nodiscard]] MiB max() const noexcept {
    return rungs_.empty() ? 0.0 : rungs_.back();
  }
  [[nodiscard]] MiB min() const noexcept {
    return rungs_.empty() ? 0.0 : rungs_.front();
  }

 private:
  std::vector<MiB> rungs_;  // ascending, distinct
};

}  // namespace resmatch::core
