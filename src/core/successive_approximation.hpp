// Algorithm 1 of the paper: successive approximation of actual job
// requirements using implicit feedback and similarity groups.
//
// Per similarity group i the algorithm keeps the current estimate E_i
// (initialized to the first job's request R) and a learning rate α_i
// (initialized to the global α > 1):
//
//   submission:  E' = round-up-to-ladder(E_i); grant E'
//   success:     remember E_i as last-good, then E_i ← E' / α_i
//   failure:     E_i ← last-good (undo), α_i ← max(1, β·α_i)
//
// With the paper's settings (α = 2, β = 0) a failure freezes the group at
// the last estimate that worked: α collapses to 1 and E' / 1 reproduces
// the same grant forever — exactly the 32→16→8→4(fail)→8 MiB trajectory of
// the paper's Figure 7.
//
// The restore-then-damp step makes the algorithm extremely conservative:
// the paper reports at most 0.01% of executions failing from
// under-estimation while 15–40% of jobs ran with lowered requests.
//
// The per-group transition logic itself lives in core::SaGroupState
// (group_state.hpp) so the online service layer (src/svc) can run the
// identical algorithm on individually-locked group entries; this class
// adds the SimilarityIndex bookkeeping and diagnostics for the offline
// single-threaded path.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/estimator.hpp"
#include "core/group_state.hpp"
#include "core/similarity.hpp"

namespace resmatch::core {

struct SuccessiveApproxConfig {
  double alpha = 2.0;  ///< initial per-group learning rate, must be > 1
  double beta = 0.0;   ///< failure damping of α, in [0, 1)
  /// Keep the per-group sequence of grants for diagnostics (Figure 7).
  bool record_trajectories = false;
  /// Cap on recorded trajectory length per group.
  std::size_t trajectory_cap = 256;
};

class SuccessiveApproximationEstimator final : public Estimator {
 public:
  explicit SuccessiveApproximationEstimator(
      SuccessiveApproxConfig config = {},
      SimilarityKeyFn key_fn = default_similarity_key);

  [[nodiscard]] std::string name() const override {
    return "successive-approximation";
  }

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const SystemState& state) override;

  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const SystemState& state) const override;

  /// Per-group memo epoch (preview ignores SystemState, so the group's
  /// Algorithm 1 state fully determines the preview). 0 = group unknown.
  [[nodiscard]] std::optional<std::uint64_t> preview_epoch(
      const trace::JobRecord& job) const override;

  void cancel(const trace::JobRecord& job, MiB granted) override;

  void feedback(const trace::JobRecord& job, const Feedback& fb) override;

  // --- introspection ------------------------------------------------------

  [[nodiscard]] std::size_t group_count() const noexcept {
    return index_.group_count();
  }

  /// Current raw (unrounded) estimate of a job's group, if the group exists.
  [[nodiscard]] std::optional<MiB> group_estimate(
      const trace::JobRecord& job) const;

  /// Grant trajectory of a job's group (requires record_trajectories).
  [[nodiscard]] std::vector<MiB> trajectory(const trace::JobRecord& job) const;

  /// Totals across all groups, for the paper's §3.2 conservativeness claim.
  [[nodiscard]] std::size_t total_successes() const noexcept {
    return successes_;
  }
  [[nodiscard]] std::size_t total_failures() const noexcept {
    return failures_;
  }

 private:
  struct GroupState {
    SaGroupState core;        ///< the Algorithm 1 state machine
    std::vector<MiB> grants;  ///< recorded E' sequence (optional)
  };

  GroupState& state_for(const trace::JobRecord& job);

  SuccessiveApproxConfig config_;
  SimilarityIndex index_;
  std::vector<GroupState> groups_;
  std::size_t successes_ = 0;
  std::size_t failures_ = 0;
};

}  // namespace resmatch::core
