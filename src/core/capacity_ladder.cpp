#include "core/capacity_ladder.hpp"

#include <algorithm>

namespace resmatch::core {

namespace {
/// Capacities within this relative tolerance are the same rung; protects
/// against floating-point noise when ladders are built from computed MiB.
constexpr double kRelTolerance = 1e-9;
}  // namespace

CapacityLadder::CapacityLadder(std::vector<MiB> capacities)
    : rungs_(std::move(capacities)) {
  std::sort(rungs_.begin(), rungs_.end());
  rungs_.erase(std::unique(rungs_.begin(), rungs_.end(),
                           [](MiB a, MiB b) {
                             return b - a <= kRelTolerance * std::max(1.0, b);
                           }),
               rungs_.end());
}

MiB CapacityLadder::round_up(MiB value) const noexcept {
  const auto it = std::lower_bound(rungs_.begin(), rungs_.end(),
                                   value - kRelTolerance);
  if (it == rungs_.end()) return value;
  return *it;
}

std::optional<MiB> CapacityLadder::next_above(MiB value) const noexcept {
  const auto it = std::upper_bound(rungs_.begin(), rungs_.end(),
                                   value + kRelTolerance * std::max(1.0, value));
  if (it == rungs_.end()) return std::nullopt;
  return *it;
}

std::optional<MiB> CapacityLadder::next_below(MiB value) const noexcept {
  const auto it = std::lower_bound(
      rungs_.begin(), rungs_.end(),
      value - kRelTolerance * std::max(1.0, value));
  if (it == rungs_.begin()) return std::nullopt;
  return *(it - 1);
}

std::optional<MiB> CapacityLadder::round_down(MiB value) const noexcept {
  const auto it = std::upper_bound(rungs_.begin(), rungs_.end(),
                                   value + kRelTolerance);
  if (it == rungs_.begin()) return std::nullopt;
  return *(it - 1);
}

}  // namespace resmatch::core
