#include "core/successive_approximation.hpp"

#include <cassert>

namespace resmatch::core {

SuccessiveApproximationEstimator::SuccessiveApproximationEstimator(
    SuccessiveApproxConfig config, SimilarityKeyFn key_fn)
    : config_(config), index_(std::move(key_fn)) {
  assert(config_.alpha > 1.0);
  assert(config_.beta >= 0.0 && config_.beta < 1.0);
}

SuccessiveApproximationEstimator::GroupState&
SuccessiveApproximationEstimator::state_for(const trace::JobRecord& job) {
  const GroupId gid = index_.group_of(job);
  if (gid >= groups_.size()) {
    // New group: Algorithm 1 line 4 — E_i <- R, alpha_i <- alpha.
    GroupState fresh;
    fresh.core = SaGroupState::fresh(job.requested_mem_mib, config_.alpha);
    groups_.resize(gid + 1, fresh);
  }
  return groups_[gid];
}

MiB SuccessiveApproximationEstimator::preview(const trace::JobRecord& job,
                                              const SystemState& /*state*/) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) {
    // Unknown group: the first estimate will be the request (line 4).
    return ladder_.round_up(job.requested_mem_mib);
  }
  return groups_[*gid].core.preview(ladder_);
}

std::optional<std::uint64_t> SuccessiveApproximationEstimator::preview_epoch(
    const trace::JobRecord& job) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return 0;
  // Live groups start at epoch 1 and every externally reachable mutation
  // bumps before returning, so 0 never collides with a group state.
  return groups_[*gid].core.epoch;
}

void SuccessiveApproximationEstimator::cancel(const trace::JobRecord& job,
                                              MiB granted) {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return;
  groups_[*gid].core.cancel(granted);
}

MiB SuccessiveApproximationEstimator::estimate(const trace::JobRecord& job,
                                               const SystemState& /*state*/) {
  GroupState& g = state_for(job);
  const MiB granted = g.core.commit(ladder_);
  if (config_.record_trajectories && g.grants.size() < config_.trajectory_cap) {
    g.grants.push_back(granted);
  }
  return granted;
}

void SuccessiveApproximationEstimator::feedback(const trace::JobRecord& job,
                                                const Feedback& fb) {
  GroupState& g = state_for(job);
  const bool success =
      g.core.apply_feedback(fb, job.requested_mem_mib, ladder_, config_.beta);
  if (success) {
    ++successes_;
  } else {
    ++failures_;
  }
}

std::optional<MiB> SuccessiveApproximationEstimator::group_estimate(
    const trace::JobRecord& job) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return std::nullopt;
  return groups_[*gid].core.estimate;
}

std::vector<MiB> SuccessiveApproximationEstimator::trajectory(
    const trace::JobRecord& job) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return {};
  return groups_[*gid].grants;
}

}  // namespace resmatch::core
