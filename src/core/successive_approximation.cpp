#include "core/successive_approximation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace resmatch::core {

namespace {
/// Grants within this tolerance are the same capacity rung.
constexpr double kGrantEps = 1e-9;
}  // namespace

SuccessiveApproximationEstimator::SuccessiveApproximationEstimator(
    SuccessiveApproxConfig config, SimilarityKeyFn key_fn)
    : config_(config), index_(std::move(key_fn)) {
  assert(config_.alpha > 1.0);
  assert(config_.beta >= 0.0 && config_.beta < 1.0);
}

SuccessiveApproximationEstimator::GroupState&
SuccessiveApproximationEstimator::state_for(const trace::JobRecord& job) {
  const GroupId gid = index_.group_of(job);
  if (gid >= groups_.size()) {
    // New group: Algorithm 1 line 4 — E_i <- R, alpha_i <- alpha.
    GroupState fresh;
    fresh.estimate = job.requested_mem_mib;
    fresh.last_good = job.requested_mem_mib;
    fresh.alpha = config_.alpha;
    groups_.resize(gid + 1, fresh);
  }
  return groups_[gid];
}

MiB SuccessiveApproximationEstimator::preview(const trace::JobRecord& job,
                                              const SystemState& /*state*/) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) {
    // Unknown group: the first estimate will be the request (line 4).
    return ladder_.round_up(job.requested_mem_mib);
  }
  const GroupState& g = groups_[*gid];
  const MiB safe = ladder_.round_up(g.last_good);
  const MiB probe = ladder_.round_up(g.estimate);
  if (probe + kGrantEps < safe && g.probe_outstanding) return safe;
  return probe;
}

void SuccessiveApproximationEstimator::cancel(const trace::JobRecord& job,
                                              MiB granted) {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return;
  GroupState& g = groups_[*gid];
  // Release the probe slot if this cancelled attempt held it.
  if (g.probe_outstanding && std::fabs(granted - g.probe_grant) <= kGrantEps) {
    g.probe_outstanding = false;
  }
}

MiB SuccessiveApproximationEstimator::estimate(const trace::JobRecord& job,
                                               const SystemState& /*state*/) {
  GroupState& g = state_for(job);
  // Line 6: round E_i up to the nearest capacity the cluster offers.
  const MiB safe = ladder_.round_up(g.last_good);
  const MiB probe = ladder_.round_up(g.estimate);

  MiB granted;
  if (probe + kGrantEps < safe) {
    // A grant strictly below the proven capacity is an experiment. The
    // paper's Algorithm 1 is described for serial submissions; with many
    // same-group jobs in flight, handing the experimental value to all of
    // them would turn one mis-probe into a failure storm. We therefore
    // keep AT MOST ONE experiment outstanding per group; concurrent
    // submissions get the last-known-good capacity.
    if (g.probe_outstanding) {
      granted = safe;
    } else {
      g.probe_outstanding = true;
      g.probe_grant = probe;
      granted = probe;
    }
  } else {
    granted = probe;
  }

  if (config_.record_trajectories && g.grants.size() < config_.trajectory_cap) {
    g.grants.push_back(granted);
  }
  return granted;
}

void SuccessiveApproximationEstimator::feedback(const trace::JobRecord& job,
                                                const Feedback& fb) {
  GroupState& g = state_for(job);
  const bool was_probe = g.probe_outstanding &&
                         std::fabs(fb.granted_mib - g.probe_grant) <= kGrantEps;
  if (was_probe) g.probe_outstanding = false;

  if (fb.success) {
    ++successes_;
    // Lines 8-9: the grant worked; remember it and probe lower next time.
    // last_good lives in grant space (a capacity that actually ran a job),
    // so a success at the known-good capacity is naturally a no-op.
    g.last_good = fb.granted_mib;
    g.estimate = fb.granted_mib / g.alpha;
  } else {
    ++failures_;
    // Lines 10-13: assume insufficient resources (implicit feedback cannot
    // tell); undo the reduction and damp the learning rate. beta = 0
    // freezes the group at the last working capacity.
    //
    // A failure AT the known-good capacity is outside Algorithm 1's
    // one-level history: it means a lower-usage group member's success
    // dragged last_good below this member's need (the within-group
    // variance hazard the paper discusses in §2.3). Recover by escalating
    // one ladder rung (capped at the request, always sufficient by the
    // paper's assumption), so a failing job's retries terminate instead
    // of looping at an under-sized grant.
    const bool failed_at_safe =
        std::fabs(fb.granted_mib - ladder_.round_up(g.last_good)) <= kGrantEps;
    if (failed_at_safe) {
      const auto rung = ladder_.next_above(g.last_good);
      MiB escalated = rung ? *rung : job.requested_mem_mib;
      // The request is always sufficient (paper §1.3 assumption); never
      // escalate past it unless last_good already sits above it because
      // the ladder's rounding forced a bigger machine.
      escalated =
          std::min(escalated, std::max(job.requested_mem_mib, g.last_good));
      g.last_good = std::max(g.last_good, escalated);
    }
    g.estimate = g.last_good;
    g.alpha = std::max(1.0, config_.beta * g.alpha);
  }
}

std::optional<MiB> SuccessiveApproximationEstimator::group_estimate(
    const trace::JobRecord& job) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return std::nullopt;
  return groups_[*gid].estimate;
}

std::vector<MiB> SuccessiveApproximationEstimator::trajectory(
    const trace::JobRecord& job) const {
  const auto gid = index_.find(job);
  if (!gid || *gid >= groups_.size()) return {};
  return groups_[*gid].grants;
}

}  // namespace resmatch::core
