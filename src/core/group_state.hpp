// Re-entrant per-similarity-group estimator state.
//
// The estimator classes in this directory were written for the offline
// simulator: one estimator instance owns the state of every group behind a
// SimilarityIndex. The online service layer (src/svc) instead stores one
// state object per group in a shard-striped concurrent store, so the
// Algorithm 1 / last-instance transition logic must be callable on a
// single group's state with no reference to the owning estimator. These
// structs carry exactly that logic; the estimator classes delegate to them
// so the offline and online paths cannot drift apart (the service's
// 1-worker determinism contract depends on it).
//
// Each state is also a value type with a flat numeric wire form
// (to_fields/from_fields) so svc::EstimatorStore can snapshot and restore
// it for warm restarts.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/capacity_ladder.hpp"
#include "core/estimator.hpp"

namespace resmatch::core {

/// Algorithm 1 state of one similarity group (paper §2.3): the current
/// estimate E_i, the last capacity that ran a job successfully, the
/// per-group learning rate alpha_i, and the probe-serialization slot (at
/// most one in-flight grant below the proven capacity; see
/// successive_approximation.hpp for the rationale).
struct SaGroupState {
  MiB estimate = 0.0;   ///< E_i (raw, unrounded)
  MiB last_good = 0.0;  ///< capacity restored on failure (grant space)
  double alpha = 2.0;   ///< alpha_i
  bool probe_outstanding = false;
  MiB probe_grant = 0.0;
  /// Preview-memoization epoch (Estimator::preview_epoch): bumped by every
  /// commit/cancel/apply_feedback so cached previews invalidate. Starts at
  /// 1 so a live group is always distinguishable from "group unknown"
  /// (epoch 0). Deliberately NOT serialized by to_fields()/from_fields():
  /// it is cache-coherency state, not algorithm state, and memos must not
  /// survive a snapshot/restore cycle.
  std::uint64_t epoch = 1;

  /// Algorithm 1 line 4: E_i <- R, alpha_i <- alpha.
  [[nodiscard]] static SaGroupState fresh(MiB requested_mib,
                                          double alpha0) noexcept;

  /// What commit() would grant, without claiming the probe slot.
  [[nodiscard]] MiB preview(const CapacityLadder& ladder) const noexcept;

  /// One submission (Algorithm 1 line 6): round E_i up to the ladder and
  /// grant it, claiming the probe slot when the grant is an experiment
  /// below the proven capacity. Pair with apply_feedback() or cancel().
  [[nodiscard]] MiB commit(const CapacityLadder& ladder) noexcept;

  /// Undo a commit() whose attempt never ran.
  void cancel(MiB granted) noexcept;

  /// Algorithm 1 lines 8-13 plus the safe-grant escalation documented in
  /// successive_approximation.cpp. Returns fb.success for callers keeping
  /// aggregate counters.
  bool apply_feedback(const Feedback& fb, MiB requested_mib,
                      const CapacityLadder& ladder, double beta) noexcept;

  /// The invariants every trajectory must satisfy regardless of the
  /// interleaving of submissions and feedback: alpha_i >= 1 and the
  /// estimate never above the proven capacity (it only moves down between
  /// failures). The concurrent hammer tests assert this per group.
  [[nodiscard]] bool invariants_hold() const noexcept;

  // --- snapshot codec (svc::EstimatorStore) -------------------------------
  static constexpr const char* kKind = "successive-approximation";
  [[nodiscard]] std::vector<double> to_fields() const;
  [[nodiscard]] static std::optional<SaGroupState> from_fields(
      const std::vector<double>& fields);
};

/// Last-instance state of one similarity group (paper §2.3, explicit
/// feedback): the sliding window of recent observed usages and the
/// poisoned flag raised by an unexplained resource failure.
struct LiGroupState {
  std::deque<MiB> recent_usage;  ///< up to `window` most recent usages
  bool poisoned = false;
  /// Preview-memoization epoch (see SaGroupState::epoch): bumped by
  /// apply_feedback, starts at 1, not serialized.
  std::uint64_t epoch = 1;

  /// Estimate for the next submission: max of the window times the margin,
  /// capped at the request, rounded up to the ladder. Empty or poisoned
  /// history passes the request through.
  [[nodiscard]] MiB current_estimate(MiB requested_mib,
                                     const CapacityLadder& ladder,
                                     double margin) const;

  /// Fold one outcome into the window (see last_instance.cpp).
  void apply_feedback(const Feedback& fb, std::size_t window);

  // --- snapshot codec (svc::EstimatorStore) -------------------------------
  static constexpr const char* kKind = "last-instance";
  [[nodiscard]] std::vector<double> to_fields() const;
  [[nodiscard]] static std::optional<LiGroupState> from_fields(
      const std::vector<double>& fields);
};

}  // namespace resmatch::core
