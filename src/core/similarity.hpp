// Online similarity-group identification (paper §2.2).
//
// A similarity group is a disjoint set of job submissions expected to use
// a similar amount of resources. The paper's key for the LANL CM5 trace —
// lacking explicit job IDs — is the (user id, application number,
// requested memory) triple; SimilarityIndex assigns dense group ids to
// keys as they first appear, which is the online counterpart of the
// offline analysis in trace/analysis.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "trace/job_record.hpp"

namespace resmatch::core {

/// Hash key identifying a similarity group.
using SimilarityKeyFn = std::function<std::uint64_t(const trace::JobRecord&)>;

/// The paper's default key (user, app, requested memory). Defined in
/// trace/analysis.cpp; re-exported here so estimators need only this header.
[[nodiscard]] std::uint64_t default_similarity_key(
    const trace::JobRecord& job) noexcept;

/// Assigns dense GroupIds to similarity keys on first sight. Estimators
/// index their per-group state vectors with the returned ids.
class SimilarityIndex {
 public:
  explicit SimilarityIndex(SimilarityKeyFn key_fn = default_similarity_key);

  /// Group id for a job, creating a new group when the key is unseen.
  [[nodiscard]] GroupId group_of(const trace::JobRecord& job);

  /// Group id if the key is already known.
  [[nodiscard]] std::optional<GroupId> find(const trace::JobRecord& job) const;

  [[nodiscard]] std::size_t group_count() const noexcept {
    return ids_.size();
  }

 private:
  SimilarityKeyFn key_fn_;
  std::unordered_map<std::uint64_t, GroupId> ids_;
};

}  // namespace resmatch::core
