#include "core/prereq_estimator.hpp"

#include <cassert>

namespace resmatch::core {

std::vector<bool> PrerequisiteEstimator::estimate(GroupId group,
                                                  std::size_t count) {
  auto [it, inserted] = groups_.try_emplace(group);
  GroupState& g = it->second;
  if (inserted) {
    g.status.assign(count, Status::kUnknown);
  }
  assert(g.status.size() == count);

  // Require everything not proven droppable...
  std::vector<bool> require(count);
  for (std::size_t i = 0; i < count; ++i) {
    require[i] = g.status[i] != Status::kDroppable;
  }
  // ...except one unknown prerequisite we probe this cycle.
  g.probing = false;
  for (std::size_t step = 0; step < count; ++step) {
    const std::size_t candidate = (g.probe + step) % count;
    if (g.status[candidate] == Status::kUnknown) {
      g.probe = candidate;
      g.probing = true;
      require[candidate] = false;
      break;
    }
  }
  g.awaiting_feedback = true;
  return require;
}

void PrerequisiteEstimator::feedback(GroupId group, bool success) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  GroupState& g = it->second;
  if (!g.awaiting_feedback) return;
  g.awaiting_feedback = false;
  if (!g.probing) return;  // nothing was dropped; outcome teaches nothing

  g.status[g.probe] = success ? Status::kDroppable : Status::kRequired;
  g.probe = (g.probe + 1) % g.status.size();
  g.probing = false;
}

PrerequisiteEstimator::Status PrerequisiteEstimator::status(
    GroupId group, std::size_t prereq) const {
  const auto it = groups_.find(group);
  if (it == groups_.end() || prereq >= it->second.status.size()) {
    return Status::kUnknown;
  }
  return it->second.status[prereq];
}

std::size_t PrerequisiteEstimator::droppable_count(GroupId group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return 0;
  std::size_t count = 0;
  for (const Status s : it->second.status) {
    if (s == Status::kDroppable) ++count;
  }
  return count;
}

}  // namespace resmatch::core
