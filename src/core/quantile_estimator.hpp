// Online quantile-regression estimator (explicit feedback, no similarity
// groups — the learning quadrant of the paper's Table 1, upper-bound
// flavoured).
//
// The ridge estimator predicts the *mean* of log-usage, then papers over
// under-prediction with a fixed multiplicative margin. That is the wrong
// loss for capacity planning: granting below actual usage kills the job,
// granting above merely wastes capacity, so the penalty is asymmetric.
// This estimator regresses a configurable high percentile (default 0.95)
// of log2 used memory directly, via pinball-loss SGD over the same
// ml::job_features — the subgradient steps are intrinsically upper-bound
// biased (an under-prediction moves the plane up tau/(1-tau) times as hard
// as an over-prediction moves it down).
//
// On top of the raw quantile prediction sits a risk-aware safety margin:
// feedback tracks the observed kill (resource-failure) rate as an EWMA and
// widens the margin when kills exceed the configured target rate, narrows
// it when kills run well below target. Widening is much faster than
// narrowing — a kill costs a re-execution, slack costs only capacity.
//
// Held-out quality is tracked prequentially: each labeled observation is
// first scored (did the current model's prediction cover the actual
// usage?) and only then trained on, so coverage_ is an honest estimate of
// out-of-sample coverage. The ensemble estimator keys its per-group
// hand-over on this number.
#pragma once

#include "core/estimator.hpp"
#include "ml/features.hpp"
#include "ml/quantile.hpp"

namespace resmatch::core {

struct QuantileEstimatorConfig {
  /// Target percentile of log2 used memory (upper-bound biased).
  double tau = 0.95;
  /// Pinball-loss SGD step size.
  double learning_rate = 0.5;
  /// Pass requests through until this many labeled observations are seen.
  std::size_t min_observations = 100;
  /// Initial multiplicative headroom over the predicted quantile.
  double margin = 1.10;
  /// Risk-aware margin bounds: never below min (raw prediction) nor above
  /// max (at which point the model is not earning its keep). A floor
  /// below 1.0 measurably backfires: shaving the raw quantile converts
  /// slack into kills, and every kill both forces a retry and swings the
  /// controller, costing more capacity than the shave saved.
  double min_margin = 1.0;
  double max_margin = 4.0;
  /// Acceptable resource-failure rate; the margin controller steers the
  /// observed kill EWMA toward this.
  double target_kill_rate = 0.02;
  /// Horizon (in observations) of the kill-rate and coverage EWMAs.
  std::size_t ewma_horizon = 128;
};

class QuantileEstimator final : public Estimator {
 public:
  explicit QuantileEstimator(QuantileEstimatorConfig config = {});

  [[nodiscard]] std::string name() const override { return "quantile"; }

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const SystemState& state) override;

  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const SystemState& state) const override;

  void feedback(const trace::JobRecord& job, const Feedback& fb) override;

  [[nodiscard]] std::vector<double> save_state() const override;
  [[nodiscard]] bool load_state(const std::vector<double>& state) override;
  [[nodiscard]] std::optional<ModelStats> model_stats() const override;

  /// Enough labeled observations to trust predictions over pass-through.
  [[nodiscard]] bool warm() const noexcept {
    return regressor_.observations() >= config_.min_observations;
  }

  /// Prequential coverage of the raw (margin-free) prediction.
  [[nodiscard]] double coverage() const noexcept { return coverage_; }

  [[nodiscard]] double margin() const noexcept { return margin_; }

  [[nodiscard]] std::size_t observations() const noexcept {
    return regressor_.observations();
  }

  /// Score a labeled job against the current model WITHOUT training on it:
  /// would the raw prediction have covered the actual usage? Used by the
  /// ensemble for per-group coverage accounting.
  [[nodiscard]] bool covers(const trace::JobRecord& job, MiB used_mib) const;

 private:
  /// Layout version stamped first in save_state() blobs.
  static constexpr double kStateVersion = 1.0;

  QuantileEstimatorConfig config_;
  ml::OnlineQuantileRegressor regressor_;
  double margin_;
  /// Prequential EWMAs (horizon config_.ewma_horizon): fraction of recent
  /// observations covered by the raw prediction / killed for resources.
  double coverage_ = 0.0;
  double kill_ = 0.0;
};

}  // namespace resmatch::core
