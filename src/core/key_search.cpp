#include "core/key_search.hpp"

#include <algorithm>
#include <cmath>

#include "trace/analysis.hpp"
#include "util/rng.hpp"

namespace resmatch::core {

std::vector<KeyMask> enumerate_key_masks(
    const std::vector<KeyAttribute>& attributes) {
  std::vector<KeyMask> out;
  const std::size_t n = attributes.size();
  for (KeyMask subset = 1; subset < (1u << n); ++subset) {
    KeyMask mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (subset & (1u << i)) mask |= static_cast<KeyMask>(attributes[i]);
    }
    out.push_back(mask);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string describe_key(KeyMask mask) {
  std::string out;
  auto append = [&](KeyAttribute attr, const char* name) {
    if (mask & static_cast<KeyMask>(attr)) {
      if (!out.empty()) out += "+";
      out += name;
    }
  };
  append(KeyAttribute::kUser, "user");
  append(KeyAttribute::kApp, "app");
  append(KeyAttribute::kRequestedMemory, "req_mem");
  append(KeyAttribute::kNodes, "nodes");
  append(KeyAttribute::kRuntimeBucket, "runtime_decade");
  return out.empty() ? "(empty)" : out;
}

std::uint64_t key_hash(KeyMask mask, const trace::JobRecord& job) noexcept {
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  auto fold = [&](std::uint64_t value) { h = util::mix64(h ^ value); };
  if (mask & static_cast<KeyMask>(KeyAttribute::kUser)) fold(job.user);
  if (mask & static_cast<KeyMask>(KeyAttribute::kApp)) {
    fold(static_cast<std::uint64_t>(job.app) + 0x9E37ULL);
  }
  if (mask & static_cast<KeyMask>(KeyAttribute::kRequestedMemory)) {
    fold(static_cast<std::uint64_t>(
        std::llround(job.requested_mem_mib * 1024.0)));
  }
  if (mask & static_cast<KeyMask>(KeyAttribute::kNodes)) fold(job.nodes);
  if (mask & static_cast<KeyMask>(KeyAttribute::kRuntimeBucket)) {
    const double t = std::max(job.requested_time, 1.0);
    fold(static_cast<std::uint64_t>(std::floor(std::log10(t))) + 0xABCDULL);
  }
  return h;
}

KeyQuality evaluate_key(const trace::Workload& workload, KeyMask mask,
                        const KeySearchConfig& config) {
  KeyQuality q;
  q.mask = mask;
  const auto groups = trace::profile_groups(
      workload,
      [mask](const trace::JobRecord& job) { return key_hash(mask, job); });
  q.group_count = groups.size();

  std::size_t total_jobs = 0;
  std::size_t covered_jobs = 0;
  std::size_t tight_jobs = 0;
  double log_gain_sum = 0.0;
  for (const auto& g : groups) {
    total_jobs += g.size;
    if (g.size < config.large_group_threshold) continue;
    covered_jobs += g.size;
    if (g.similarity_range() <= config.tight_range) tight_jobs += g.size;
    log_gain_sum +=
        static_cast<double>(g.size) * std::log2(std::max(1.0, g.potential_gain()));
  }
  if (total_jobs > 0) {
    q.coverage =
        static_cast<double>(covered_jobs) / static_cast<double>(total_jobs);
  }
  if (covered_jobs > 0) {
    q.tightness =
        static_cast<double>(tight_jobs) / static_cast<double>(covered_jobs);
    q.mean_log2_gain = log_gain_sum / static_cast<double>(covered_jobs);
  }
  q.score = q.coverage * q.tightness * q.mean_log2_gain;
  return q;
}

std::vector<KeyQuality> search_keys(const trace::Workload& workload,
                                    const std::vector<KeyMask>& candidates,
                                    const KeySearchConfig& config) {
  std::vector<KeyQuality> out;
  out.reserve(candidates.size());
  for (const KeyMask mask : candidates) {
    out.push_back(evaluate_key(workload, mask, config));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const KeyQuality& a, const KeyQuality& b) {
                     return a.score > b.score;
                   });
  return out;
}

}  // namespace resmatch::core
