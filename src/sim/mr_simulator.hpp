// Multi-resource simulation engine: vector bin-packing over the same
// event loop as sim::simulate().
//
// Jobs carry a per-node request VECTOR (memory, CPU, GPU); pools advertise
// a capacity vector; a machine qualifies only when it covers every
// estimated dimension; and a running job is killed when its time-varying
// footprint crosses its grant in ANY dimension (the culprit dimension —
// and only it — sees resource_failure in the estimator feedback, so blame
// never smears across resources).
//
// Within-job usage follows the job's trace::FootprintProfile: flat jobs
// fail at the paper's uniformly-drawn time, while ramp/step/plateau jobs
// fail exactly when the profile first crosses the grant — so early kills
// (low observed usage) and late kills (near-peak observed usage) give the
// estimator genuinely different explicit feedback.
//
// Equivalence contract (CI-gated by tests/mr_equiv_test.cpp and
// bench/scenario_sweep --gate-dims1): with dims == 1 and flat profiles
// this engine makes byte-identical decisions to sim::simulate() — same
// RNG draw sequence, same queue mechanics, same aggregates — because
// every vector operation reduces to its scalar counterpart exactly.
#pragma once

#include <array>
#include <cstddef>

#include "core/multi_resource.hpp"
#include "sim/cluster.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/scenario.hpp"

namespace resmatch::sim {

struct MrSimulationConfig {
  SimulationConfig base;
  /// Resource dimensions the engine packs (1 = memory only).
  std::size_t dims = 1;
};

struct MrSimulationResult {
  SimulationResult base;
  /// Resource kills attributed to each dimension (memory, CPU, GPU).
  std::array<std::size_t, kMaxResourceDims> kills_by_dim{};
  /// Resource kills timed by a footprint crossing (non-flat profiles)
  /// rather than the paper's uniform draw.
  std::size_t midjob_kills = 0;
  /// Mean fraction of the runtime completed when a resource kill fired.
  double mean_kill_progress = 0.0;
};

/// Run one multi-resource simulation. `scenario.base.jobs` must be sorted
/// by submit time and `scenario.mr` parallel to it (trace::scenario_from
/// or one of the scenario generators). config.dims must not exceed
/// scenario.dims. The estimator's per-dimension ladders are installed from
/// the cluster. Unsupported base-config fields (baseline_loop, heap_queue,
/// shards, runtime_predictor) throw std::invalid_argument.
[[nodiscard]] MrSimulationResult simulate_mr(
    const trace::ScenarioWorkload& scenario, const ClusterSpec& cluster_spec,
    core::VectorEstimator& estimator, sched::SchedulingPolicy& policy,
    const MrSimulationConfig& config = {});

}  // namespace resmatch::sim
