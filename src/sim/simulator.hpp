// The trace-driven cluster simulator (paper §3.1).
//
// Reproduces the paper's simulation methodology:
//   * jobs arrive per the trace and enter the scheduler queue;
//   * at each scheduling point the policy picks queued jobs to start; the
//     estimator has already rewritten each job's effective request, and a
//     job is granted exactly that capacity on every machine it occupies
//     (memory-limit semantics: machine capacity bounds the grant, the
//     grant bounds the job);
//   * a job granted less than it actually uses "fails after a random
//     time, drawn uniformly between zero and the execution run-time" and
//     "returns to the head of the queue";
//   * the estimator receives feedback after every attempt — implicit
//     (success flag only) or explicit (plus true usage and failure cause).
//
// The run is fully deterministic given the seed.
#pragma once

#include <cstdint>

#include "core/estimator.hpp"
#include "core/runtime_predictor.hpp"
#include "sched/policy.hpp"
#include "sim/cluster.hpp"
#include "sim/metrics.hpp"
#include "trace/job_record.hpp"

namespace resmatch::obs {
class Registry;
}

namespace resmatch::trace {
class JobStream;
}

namespace resmatch::sim {

/// A scheduled change in machine availability (paper §1: machines join
/// and leave dynamically). Applies to an existing capacity class.
struct AvailabilityEvent {
  Seconds time = 0.0;
  MiB capacity = 0.0;
  /// Positive: machines join. Negative: machines leave (busy ones drain).
  long long delta = 0;
};

struct SimulationConfig {
  AllocationPolicy allocation = AllocationPolicy::kBestFit;
  /// Explicit feedback: report true usage and failure cause to the
  /// estimator (paper §2.1). Implicit (false) reports only success/failure.
  bool explicit_feedback = false;
  std::uint64_t seed = 7;
  /// Bounded-slowdown runtime floor (Feitelson's tau), seconds.
  Seconds bounded_slowdown_tau = 10.0;
  /// Safety valve: a job repeatedly under-provisioned beyond this many
  /// attempts is dropped (and counted) instead of looping forever.
  std::uint32_t max_attempts_per_job = 64;
  /// Optional occupancy/queue sampler (not owned; must outlive the run).
  class TimeSeries* timeseries = nullptr;
  /// Optional learned runtime prediction (Tsafrir-style): when set, the
  /// scheduler's runtime inputs (backfilling reservations) use predictions
  /// instead of user estimates, and the predictor observes completions.
  /// Not owned; must outlive the run.
  core::RuntimePredictor* runtime_predictor = nullptr;
  /// Machine join/leave schedule. Utilization is measured against the
  /// time-integrated machine count when this is non-empty.
  std::vector<AvailabilityEvent> availability;
  /// Optional engine observability (not owned; must outlive the run):
  /// exports resmatch_sim_events_total, resmatch_sim_events_per_sec,
  /// resmatch_sim_wall_seconds, and the resmatch_sim_schedule_seconds
  /// scheduler-decision histogram. Wall-clock feeds metrics only — the
  /// simulated timeline stays seed-deterministic.
  obs::Registry* metrics = nullptr;
  /// Run the pre-optimization reference engine: per-event pool snapshot
  /// allocation, per-iteration running-set rebuild, per-event active-job
  /// recount, no preview memoization, tail-shifting queue removal. The
  /// reference engine makes the SAME decisions — SimulationResult and any
  /// attached TimeSeries are byte-identical to the default engine for the
  /// same seed (tests/perf_equiv_test enforces this) — it exists only as
  /// the A/B anchor for bench/micro_core --baseline-loop.
  bool baseline_loop = false;
  /// Run the pre-calendar-queue engine: every event (all arrivals up
  /// front, availability, job ends) flows through the binary-heap
  /// EventQueue, and the trace is fully materialized. The default engine
  /// instead merges an arrival cursor, an availability cursor, and a
  /// calendar queue holding only job-end events — same decisions, byte
  /// identical results (tests/scale_equiv_test enforces this) — so this
  /// flag exists only as the A/B anchor for bench/micro_core --scale,
  /// exactly as baseline_loop anchors the PR 4 loop optimizations.
  /// Implied by baseline_loop. Incompatible with shards.
  bool heap_queue = false;
  /// Shard the per-pool occupancy bookkeeping across this many worker
  /// threads (0 = inline, the default). Scheduling decisions are made on
  /// the simulation thread either way — decisions are global, so they
  /// cannot be partitioned without changing results — while the per-event
  /// O(#pools) busy/present integration is replayed from the cluster's
  /// delta log by workers owning pool i when i % shards == worker. Same
  /// scenario + seed => byte-identical SimulationResult for any shard
  /// count (CI-gated), because each pool's integral is the same sequence
  /// of adds no matter which thread runs it.
  std::size_t shards = 0;
};

/// Run one simulation. `workload` must be sorted by submit time (see
/// trace::sort_by_submit); violating that is an error. The estimator and
/// policy are mutated (they learn / keep state) — pass fresh instances for
/// independent runs.
[[nodiscard]] SimulationResult simulate(const trace::Workload& workload,
                                        const ClusterSpec& cluster_spec,
                                        core::Estimator& estimator,
                                        sched::SchedulingPolicy& policy,
                                        const SimulationConfig& config = {});

/// Run one simulation from a job stream without materializing the trace:
/// peak memory is O(jobs in the system), not O(trace length). The stream
/// must yield jobs in non-decreasing submit order (checked as records are
/// pulled). Byte-identical to materializing the same stream and calling
/// the overload above. With config.heap_queue/baseline_loop set the
/// anchor engines need the full vector, so the stream is materialized
/// internally first.
[[nodiscard]] SimulationResult simulate(trace::JobStream& stream,
                                        const ClusterSpec& cluster_spec,
                                        core::Estimator& estimator,
                                        sched::SchedulingPolicy& policy,
                                        const SimulationConfig& config = {});

}  // namespace resmatch::sim
