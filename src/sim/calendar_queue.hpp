// Deterministic multi-tier calendar (ladder) event queue.
//
// Drop-in alternative to sim::EventQueue for the simulator's hot path.
// The binary heap costs O(log n) cache-missing compares per operation; at
// cluster scale (10M+ pending events) that is the engine's dominant cost.
// This queue buckets events by time so push and pop are amortized O(1):
//
//   top      unsorted spill list for events beyond the ladder's horizon;
//   rungs    a ladder of bucket arrays, each deeper rung refining one
//            bucket of the rung above with a finer bucket width — the
//            "ladder degradation" that keeps heavily skewed time
//            distributions (bursty arrivals, synchronized job ends) from
//            degenerating into one giant bucket;
//   bottom   the imminent window: one bucket's events, sorted, popped in
//            order.
//
// Ordering contract — identical to EventQueue: strict (time, insertion
// seq) order, so ties pop in insertion order and whole simulations are
// bit-for-bit reproducible. tests/calendar_queue_test differentially
// fuzzes this against the heap.
//
// Requirement inherited from discrete-event semantics: pushed times must
// be >= the last popped event's time (the simulator never schedules into
// the past). Asserted in debug builds.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace resmatch::sim {

template <typename Payload>
class CalendarQueue {
 public:
  struct Event {
    Seconds time = 0.0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(Seconds time, Payload payload) {
    assert(time >= frontier_);
    Event e{time, next_seq_++, std::move(payload)};
    ++size_;
    // Imminent window: keep the sorted bottom exact. Only the unconsumed
    // suffix is live, so the insert shifts a short tail.
    if (bottom_pos_ < bottom_.size() && time < bottom_limit_) {
      const auto it = std::lower_bound(
          bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_pos_),
          bottom_.end(), e, EventLess{});
      bottom_.insert(it, std::move(e));
      return;
    }
    if (time < bottom_limit_) {
      // Bottom window still open but fully consumed: the event is the new
      // sole imminent entry.
      bottom_.clear();
      bottom_pos_ = 0;
      bottom_.push_back(std::move(e));
      return;
    }
    // Deepest (finest) rung covering the time wins; spans nest, so walk
    // from the back of the ladder. Times below every rung's live window
    // were handled by the bottom branches above; times past rung 0's
    // horizon spill to top.
    for (std::size_t r = rungs_.size(); r-- > 0;) {
      Rung& rung = rungs_[r];
      if (time < rung.limit && time >= rung.cur_start()) {
        rung_insert(rung, std::move(e));
        return;
      }
    }
    top_push(std::move(e));
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Smallest (time, seq) event. Invalidated by the next push/pop.
  [[nodiscard]] const Event& top() {
    assert(size_ > 0);
    prepare_bottom();
    return bottom_[bottom_pos_];
  }

  Event pop() {
    assert(size_ > 0);
    prepare_bottom();
    Event e = std::move(bottom_[bottom_pos_]);
    ++bottom_pos_;
    --size_;
    frontier_ = e.time;
    return e;
  }

  /// Size hint for the spill list (the only tier that grows unbounded).
  void reserve(std::size_t n) { top_.reserve(n); }

 private:
  struct EventLess {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  struct Rung {
    double start = 0.0;  ///< time at bucket[0]'s left edge
    double width = 0.0;  ///< bucket width (> 0)
    /// Exclusive bound for accepting pushes. A rung's buckets extend one
    /// past its nominal span (so the right edge lands in range under FP
    /// rounding), but a child rung refining a parent bucket [lo, hi) must
    /// NOT accept pushes in that overhang [hi, hi + width): the parent's
    /// next bucket already holds earlier events from the same sliver, and
    /// they would pop after the child's. Top-spill rungs own their whole
    /// span, so their limit is end().
    double limit = std::numeric_limits<double>::infinity();
    std::size_t cur = 0;  ///< buckets below cur are spent
    std::size_t count = 0;
    std::vector<std::vector<Event>> buckets;

    [[nodiscard]] double cur_start() const noexcept {
      return start + static_cast<double>(cur) * width;
    }
    [[nodiscard]] double end() const noexcept {
      return start + static_cast<double>(buckets.size()) * width;
    }
  };

  // Tuning: spawn a finer rung instead of sorting when a bucket holds more
  // than kSpawnThreshold events; cap ladder depth and bucket counts so
  // adversarial time distributions degrade to O(B log B) sorts, never to
  // unbounded recursion.
  static constexpr std::size_t kSpawnThreshold = 64;
  static constexpr std::size_t kMaxRungs = 12;
  static constexpr std::size_t kMaxBuckets = 1u << 15;

  void rung_insert(Rung& rung, Event e) {
    double raw = (e.time - rung.start) / rung.width;
    auto idx = raw <= 0.0 ? std::size_t{0} : static_cast<std::size_t>(raw);
    // Clamp FP edge cases into the live range: never below the cursor
    // (those buckets are spent), never past the last bucket.
    idx = std::min(std::max(idx, rung.cur), rung.buckets.size() - 1);
    rung.buckets[idx].push_back(std::move(e));
    ++rung.count;
  }

  void top_push(Event e) {
    if (top_.empty()) {
      top_min_ = top_max_ = e.time;
    } else {
      top_min_ = std::min(top_min_, e.time);
      top_max_ = std::max(top_max_, e.time);
    }
    top_.push_back(std::move(e));
  }

  /// Build a rung over `events` spanning [lo, hi] and distribute them.
  /// `limit` is the exclusive push-acceptance bound: the spawning parent
  /// bucket's right edge (clamped by the parent's own limit), or +inf for
  /// a top-spill rung, which then owns its whole bucket range.
  void spawn_rung(std::vector<Event>&& events, double lo, double hi,
                  double limit) {
    Rung rung;
    std::size_t nb =
        std::min(std::max<std::size_t>(events.size(), 2), kMaxBuckets);
    rung.start = lo;
    // +1 bucket so hi itself lands in range even when the division is
    // exact; lo < hi by caller contract, but guard against the quotient
    // underflowing to zero on denormal-scale spans (one wide bucket then
    // degrades to a sort when taken).
    rung.width = (hi - lo) / static_cast<double>(nb);
    if (!(rung.width > 0.0)) {
      nb = 1;
      rung.width = hi - lo;
    }
    rung.buckets.resize(nb + 1);
    rung.limit = std::min(limit, rung.start + static_cast<double>(nb + 1) *
                                                  rung.width);
    rungs_.push_back(std::move(rung));
    Rung& dst = rungs_.back();
    for (Event& e : events) rung_insert(dst, std::move(e));
    events.clear();
  }

  /// Ensure bottom_[bottom_pos_] is the global minimum event.
  void prepare_bottom() {
    if (bottom_pos_ < bottom_.size()) return;
    bottom_.clear();
    bottom_pos_ = 0;
    for (;;) {
      // Drain the deepest rung first (its span is the earliest).
      while (!rungs_.empty() && rungs_.back().count == 0) rungs_.pop_back();
      if (rungs_.empty()) {
        if (top_.empty()) {
          assert(size_ == 0);
          return;
        }
        if (top_max_ == top_min_) {
          // Degenerate span: every event at one time — sort is exact.
          bottom_ = std::move(top_);
          top_ = {};
          std::sort(bottom_.begin(), bottom_.end(), EventLess{});
          bottom_limit_ = top_max_;  // equal-time pushes go to top_ (later seq)
          reset_top();
          return;
        }
        std::vector<Event> spill = std::move(top_);
        top_ = {};
        const double lo = top_min_, hi = top_max_;
        reset_top();
        spawn_rung(std::move(spill), lo, hi,
                   std::numeric_limits<double>::infinity());
        continue;
      }
      Rung& rung = rungs_.back();
      while (rung.cur < rung.buckets.size() && rung.buckets[rung.cur].empty())
        ++rung.cur;
      assert(rung.cur < rung.buckets.size());
      std::vector<Event>& bucket = rung.buckets[rung.cur];
      const double lo = rung.cur_start();
      const double hi = lo + rung.width;
      // A bucket's span may poke past the rung's acceptance limit (the
      // +1 overflow bucket); times beyond the limit belong to an outer
      // tier, so neither a child rung nor the bottom window may claim
      // them.
      const double claim = std::min(hi, rung.limit);
      if (bucket.size() > kSpawnThreshold && rungs_.size() < kMaxRungs &&
          hi > lo && rung.width / static_cast<double>(bucket.size()) > 0.0) {
        // Ladder degradation: refine this bucket with a finer rung rather
        // than sorting a huge block.
        std::vector<Event> block = std::move(bucket);
        bucket = {};
        rung.count -= block.size();
        // Note: `rung` may dangle after push_back in spawn_rung.
        spawn_rung(std::move(block), lo, hi, claim);
        continue;
      }
      rung.count -= bucket.size();
      bottom_ = std::move(bucket);
      bucket = {};
      ++rung.cur;
      std::sort(bottom_.begin(), bottom_.end(), EventLess{});
      bottom_limit_ = claim;
      if (!bottom_.empty()) return;
    }
  }

  void reset_top() {
    top_min_ = std::numeric_limits<double>::infinity();
    top_max_ = -std::numeric_limits<double>::infinity();
  }

  std::vector<Event> bottom_;
  std::size_t bottom_pos_ = 0;
  /// Exclusive upper edge of the bottom window; pushes below it must join
  /// the (sorted) bottom to preserve global order.
  double bottom_limit_ = -std::numeric_limits<double>::infinity();

  std::vector<Rung> rungs_;

  std::vector<Event> top_;
  double top_min_ = std::numeric_limits<double>::infinity();
  double top_max_ = -std::numeric_limits<double>::infinity();

  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  double frontier_ = -std::numeric_limits<double>::infinity();
};

}  // namespace resmatch::sim
