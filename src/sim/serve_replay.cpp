#include "sim/serve_replay.hpp"

#include <algorithm>
#include <utility>

#include "core/successive_approximation.hpp"
#include "sched/factory.hpp"
#include "sim/cluster.hpp"

namespace resmatch::sim {

namespace {

/// Transparent estimator wrapper that logs every committed grant in the
/// order the simulator asked for it.
class RecordingEstimator final : public core::Estimator {
 public:
  struct Entry {
    JobId job_id = 0;
    MiB granted = 0.0;
  };

  RecordingEstimator(core::Estimator& inner, std::vector<Entry>& log)
      : inner_(&inner), log_(&log) {}

  [[nodiscard]] std::string name() const override {
    return "recording[" + inner_->name() + "]";
  }

  [[nodiscard]] MiB estimate(const trace::JobRecord& job,
                             const core::SystemState& state) override {
    const MiB granted = inner_->estimate(job, state);
    log_->push_back({job.id, granted});
    return granted;
  }

  [[nodiscard]] MiB preview(const trace::JobRecord& job,
                            const core::SystemState& state) const override {
    return inner_->preview(job, state);
  }

  void cancel(const trace::JobRecord& job, MiB granted) override {
    inner_->cancel(job, granted);
  }

  void feedback(const trace::JobRecord& job,
                const core::Feedback& fb) override {
    inner_->feedback(job, fb);
  }

  void set_ladder(core::CapacityLadder ladder) override {
    Estimator::set_ladder(ladder);
    inner_->set_ladder(std::move(ladder));
  }

 private:
  core::Estimator* inner_;
  std::vector<Entry>* log_;
};

}  // namespace

ServeReplayResult serve_replay(const trace::Workload& workload,
                               const ClusterSpec& cluster_spec,
                               ServeReplayConfig config) {
  ServeReplayResult result;
  std::vector<RecordingEstimator::Entry> offline_log;
  std::vector<RecordingEstimator::Entry> service_log;

  {
    core::SuccessiveApproxConfig sa;
    sa.alpha = config.matchd.alpha;
    sa.beta = config.matchd.beta;
    core::SuccessiveApproximationEstimator offline(
        sa, config.matchd.key_fn ? config.matchd.key_fn
                                 : core::default_similarity_key);
    RecordingEstimator recorder(offline, offline_log);
    auto policy = sched::make_policy(config.policy);
    // The offline reference run stays uninstrumented: feeding the same
    // registry from both runs would double every sim counter.
    SimulationConfig offline_sim = config.sim;
    offline_sim.metrics = nullptr;
    result.offline =
        simulate(workload, cluster_spec, recorder, *policy, offline_sim);
  }

  {
    svc::Matchd service(config.matchd);
    svc::MatchdEstimator adapter(service);
    RecordingEstimator recorder(adapter, service_log);
    auto policy = sched::make_policy(config.policy);
    result.service =
        simulate(workload, cluster_spec, recorder, *policy, config.sim);
    service.drain();
    result.stats = service.stats();
  }

  result.decisions = std::max(offline_log.size(), service_log.size());
  const std::size_t common = std::min(offline_log.size(), service_log.size());
  for (std::size_t i = 0; i < result.decisions; ++i) {
    ReplayDecision d;
    if (i < offline_log.size()) {
      d.job_id = offline_log[i].job_id;
      d.offline_mib = offline_log[i].granted;
    }
    if (i < service_log.size()) {
      if (i >= common) d.job_id = service_log[i].job_id;
      d.service_mib = service_log[i].granted;
    }
    const bool length_mismatch = i >= common;
    const bool job_mismatch =
        !length_mismatch && offline_log[i].job_id != service_log[i].job_id;
    if (length_mismatch || job_mismatch || !d.matches()) {
      ++result.mismatches;
      if (result.first_mismatches.size() < 8) {
        result.first_mismatches.push_back(d);
      }
    }
  }
  return result;
}

namespace {

/// Submit one job and immediately report its outcome — the serial
/// learn-per-job drive both crash_replay runs share. Explicit feedback
/// (actual usage echoed back) so group state converges deterministically.
/// With workers configured, each call round-trips the admission queue and
/// batch-drain worker path via the adapter, so crash_replay also pins the
/// batched pipeline to the same byte-identical decision stream.
MiB drive_job(svc::Matchd& service, const trace::JobRecord& job) {
  MiB granted = 0.0;
  if (service.async_enabled()) {
    svc::MatchdEstimator adapter(service);
    granted = adapter.estimate(job, core::SystemState{});
    core::Feedback fb;
    fb.granted_mib = granted;
    fb.success = job.used_mem_mib <= granted;
    fb.used_mib = job.used_mem_mib;
    fb.resource_failure = !fb.success;
    adapter.feedback(job, fb);
    return granted;
  }
  const svc::MatchDecision decision = service.submit(job);
  granted = decision.granted_mib;
  core::Feedback fb;
  fb.granted_mib = granted;
  fb.success = job.used_mem_mib <= granted;
  fb.used_mib = job.used_mem_mib;
  fb.resource_failure = !fb.success;
  service.feedback(job, fb);
  return granted;
}

}  // namespace

CrashReplayResult crash_replay(const trace::Workload& workload,
                               const ClusterSpec& cluster_spec,
                               CrashReplayConfig config) {
  CrashReplayResult result;
  const core::CapacityLadder ladder = Cluster(cluster_spec).ladder();
  const std::size_t crash_after =
      std::min(config.crash_after, workload.jobs.size());

  // Reference: one uninterrupted, fault-free, WAL-free run.
  std::vector<MiB> reference;
  reference.reserve(workload.jobs.size());
  {
    svc::MatchdConfig cfg = config.matchd;
    cfg.durability = svc::DurabilityConfig{};
    cfg.metrics = nullptr;
    svc::Matchd service(cfg);
    service.set_ladder(ladder);
    for (const trace::JobRecord& job : workload.jobs) {
      reference.push_back(drive_job(service, job));
    }
  }

  // Crashed run: serve, crash mid-stream, recover a fresh instance from
  // the WAL directory, finish the workload there.
  std::vector<MiB> recovered;
  recovered.reserve(workload.jobs.size());
  {
    svc::Matchd service(config.matchd);
    service.set_ladder(ladder);
    for (std::size_t i = 0; i < crash_after; ++i) {
      recovered.push_back(drive_job(service, workload.jobs[i]));
    }
    service.simulate_crash(config.torn_tail);
  }
  {
    svc::Matchd service(config.matchd);
    service.set_ladder(ladder);
    auto recovery = service.recover();
    if (recovery) result.recovery = recovery.value();
    for (std::size_t i = crash_after; i < workload.jobs.size(); ++i) {
      recovered.push_back(drive_job(service, workload.jobs[i]));
    }
    service.drain();
    result.stats = service.stats();
  }

  result.decisions = reference.size();
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference[i] != recovered[i]) {
      ++result.mismatches;
      if (result.first_mismatches.size() < 8) {
        ReplayDecision d;
        d.job_id = workload.jobs[i].id;
        d.offline_mib = reference[i];
        d.service_mib = recovered[i];
        result.first_mismatches.push_back(d);
      }
    }
  }
  return result;
}

}  // namespace resmatch::sim
