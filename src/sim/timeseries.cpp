#include "sim/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace resmatch::sim {

TimeSeries::TimeSeries(Seconds interval) : interval_(interval) {
  assert(interval > 0.0);
}

void TimeSeries::observe(Seconds now, double busy_fraction,
                         std::size_t queue_length, std::size_t running_jobs) {
  if (now < next_sample_) return;
  points_.push_back({now, busy_fraction, queue_length, running_jobs});
  next_sample_ = now + interval_;
}

double TimeSeries::mean_busy_fraction() const noexcept {
  if (points_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& p : points_) total += p.busy_fraction;
  return total / static_cast<double>(points_.size());
}

std::size_t TimeSeries::max_queue_length() const noexcept {
  std::size_t best = 0;
  for (const auto& p : points_) best = std::max(best, p.queue_length);
  return best;
}

}  // namespace resmatch::sim
